# Stacks the `workload` ctest label on top of a suite's primary label
# (-DTESTS_FILE=... -DBASE_LABEL=...) by rewriting the LABELS property
# of every test in a generated gtest discovery script, so
# `ctest -L workload -R <family>` isolates one benchmark family's whole
# pinned surface.
#
# Run as a POST_BUILD step immediately after gtest discovery regenerates
# TESTS_FILE (commands run in registration order, so the file is always
# fresh here). Patching the generated script is the only route left:
# gtest_discover_tests cannot forward a two-label list (its property
# plumbing re-expands the list at every hop and splits it into two
# arguments), and ctest's testfile interpreter does not implement
# set_property(TEST), so a later TEST_INCLUDE_FILES script cannot append
# either -- only a full set_tests_properties LABELS rewrite works, which
# is why the primary label is passed back in.

if(NOT EXISTS "${TESTS_FILE}")
  return()
endif()
file(READ "${TESTS_FILE}" _wl_content)
if(_wl_content MATCHES "Appended workload labels")
  return()
endif()
file(STRINGS "${TESTS_FILE}" _wl_lines REGEX "^add_test")
set(_wl_out "\n# Appended workload labels (cmake/AppendWorkloadLabels.cmake)\n")
foreach(_wl_line IN LISTS _wl_lines)
  if(_wl_line MATCHES "add_test\\(\\[=+\\[([^]]+)\\]")
    string(APPEND _wl_out
      "set_tests_properties([=[${CMAKE_MATCH_1}]=] PROPERTIES LABELS \"${BASE_LABEL};workload\")\n")
  endif()
endforeach()
file(APPEND "${TESTS_FILE}" "${_wl_out}")

//===- tools/PbtServe.cpp - pbt-serve daemon entry point -------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pbt-serve binary: loads one or more trained model files into a
/// multi-tenant ModelRegistry, binds a Unix-domain socket, and serves
/// framed prediction requests until a Shutdown frame or SIGINT/SIGTERM.
/// Lives under tools/ (not src/) because the pbtuner OBJECT library
/// globs every src/*.cpp into the test binaries, which already have a
/// main.
///
///   pbt-serve --socket=/tmp/pbt.sock --model=sort1.pbt \
///             --model=fast=other.pbt --workers=4 --queue=128
///
//===----------------------------------------------------------------------===//

#include "daemon/ModelRegistry.h"
#include "daemon/Server.h"
#include "support/ParseNumber.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace pbt;

namespace {

std::atomic<bool> GSignalled{false};

void onSignal(int) { GSignalled.store(true); }

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--socket=PATH | --listen=HOST:PORT) "
      "--model=[NAME=]FILE[,[NAME=]FILE...] [options]\n"
      "\n"
      "A multi-tenant prediction daemon over Unix-domain and/or TCP\n"
      "stream sockets. Each --model entry becomes one tenant, addressed\n"
      "by NAME on the wire (default: the model's benchmark key). Clients\n"
      "speak the framed protocol of src/daemon/Protocol.h; `pbt-bench\n"
      "loadgen` is the reference client and load driver.\n"
      "\n"
      "options:\n"
      "  --socket=PATH      listening Unix socket path (short paths only\n"
      "                     -- sun_path caps ~107 bytes). At least one of\n"
      "                     --socket / --listen is required\n"
      "  --listen=HOST:PORT additional TCP listen endpoint (repeatable;\n"
      "                     port 0 binds an ephemeral port -- pair with\n"
      "                     --port-file so a supervisor can find it)\n"
      "  --port-file=PATH   after binding, atomically write the bound\n"
      "                     endpoint specs (one per line, TCP first) to\n"
      "                     PATH; a fleet supervisor reads the real port\n"
      "                     back from here\n"
      "  --read-deadline=S  once a frame starts arriving, the rest must\n"
      "                     land within S seconds or the session is\n"
      "                     dropped (default 30; 0 disables). Idle\n"
      "                     sessions are never timed out\n"
      "  --max-sessions=N   concurrent session-thread cap (default 256);\n"
      "                     connections over the cap get one Shed frame\n"
      "                     and are closed\n"
      "  --model=SPEC       tenant model file(s); NAME=FILE to name one\n"
      "  --store=SPEC       tenant model store dir(s); NAME=DIR to name\n"
      "                     one. The daemon serves the store's CURRENT\n"
      "                     epoch (checksum-verified) and hot-swaps the\n"
      "                     tenant whenever a rollout promotes a new one\n"
      "  --store-poll-ms=N  store promotion poll interval (default 250)\n"
      "  --workers=N        batch worker threads (default 2)\n"
      "  --queue=N          bounded request queue capacity (default 64);\n"
      "                     a full queue sheds, it never grows\n"
      "  --batch-max=N      micro-batch cap per worker gather (default 64)\n"
      "  --adapt            serve through the drift-adaptation loop\n"
      "                     (per-tenant DriftMonitor + shadow retrain)\n"
      "  --window=N         drift-monitor window per tenant (default 64)\n"
      "  --reservoir=N      retrain reservoir per tenant (default 48)\n"
      "  --threads=N        retrain thread pool size (default 0 = none)\n",
      Argv0);
}

int badValue(const char *Flag, const std::string &Value, const char *Expect) {
  std::fprintf(stderr, "pbt-serve: bad %s value '%s' (expected %s)\n", Flag,
               Value.c_str(), Expect);
  return 2;
}

/// Splits --model=a.pbt,fast=b.pbt into (name, path) pairs; empty name
/// means "use the model's benchmark key".
void splitModelSpec(const std::string &Spec,
                    std::vector<std::pair<std::string, std::string>> &Out) {
  size_t Start = 0;
  while (Start <= Spec.size()) {
    size_t Comma = Spec.find(',', Start);
    std::string Entry = Spec.substr(
        Start, Comma == std::string::npos ? std::string::npos : Comma - Start);
    if (!Entry.empty()) {
      size_t Eq = Entry.find('=');
      if (Eq == std::string::npos)
        Out.emplace_back("", Entry);
      else
        Out.emplace_back(Entry.substr(0, Eq), Entry.substr(Eq + 1));
    }
    if (Comma == std::string::npos)
      break;
    Start = Comma + 1;
  }
}

} // namespace

int main(int argc, char **argv) {
  daemon::ServerOptions SO;
  daemon::ModelRegistryOptions RO;
  std::vector<std::pair<std::string, std::string>> Models;
  std::vector<std::pair<std::string, std::string>> Stores;
  std::string PortFile;
  unsigned PoolThreads = 0;
  unsigned StorePollMs = 250;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Value = [&](const char *Prefix) -> const char * {
      size_t N = std::strlen(Prefix);
      return Arg.compare(0, N, Prefix) == 0 ? Arg.c_str() + N : nullptr;
    };
    if (Arg == "--help" || Arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (const char *V = Value("--socket=")) {
      SO.SocketPath = V;
    } else if (const char *V = Value("--listen=")) {
      SO.Listen.emplace_back(V);
    } else if (const char *V = Value("--port-file=")) {
      PortFile = V;
    } else if (const char *V = Value("--read-deadline=")) {
      if (!support::parseDouble(V, SO.ReadDeadline) || SO.ReadDeadline < 0)
        return badValue("--read-deadline", V, "a non-negative number");
    } else if (const char *V = Value("--max-sessions=")) {
      if (!support::parseUnsigned(V, SO.MaxSessions, 1u << 16) ||
          SO.MaxSessions == 0)
        return badValue("--max-sessions", V, "an integer in [1, 65536]");
    } else if (const char *V = Value("--model=")) {
      splitModelSpec(V, Models);
    } else if (const char *V = Value("--store=")) {
      splitModelSpec(V, Stores);
    } else if (const char *V = Value("--store-poll-ms=")) {
      if (!support::parseUnsigned(V, StorePollMs, 60000) || StorePollMs == 0)
        return badValue("--store-poll-ms", V, "an integer in [1, 60000]");
    } else if (const char *V = Value("--workers=")) {
      if (!support::parseUnsigned(V, SO.Workers, 256))
        return badValue("--workers", V, "an integer in [0, 256]");
    } else if (const char *V = Value("--queue=")) {
      unsigned Cap = 0;
      if (!support::parseUnsigned(V, Cap, 1u << 20))
        return badValue("--queue", V, "an integer in [0, 2^20]");
      SO.QueueCapacity = Cap;
    } else if (const char *V = Value("--batch-max=")) {
      if (!support::parseUnsigned(V, SO.BatchMax, daemon::kMaxBatchInputs))
        return badValue("--batch-max", V, "an integer in [0, 65536]");
    } else if (Arg == "--adapt") {
      SO.Adapt = true;
      RO.AutoAdapt = true;
    } else if (const char *V = Value("--window=")) {
      if (!support::parseUnsigned(V, RO.Window, 1u << 20))
        return badValue("--window", V, "an integer in [0, 2^20]");
    } else if (const char *V = Value("--reservoir=")) {
      if (!support::parseUnsigned(V, RO.Reservoir, 1u << 20))
        return badValue("--reservoir", V, "an integer in [0, 2^20]");
    } else if (const char *V = Value("--threads=")) {
      if (!support::parseUnsigned(V, PoolThreads, 1024))
        return badValue("--threads", V, "an integer in [0, 1024]");
    } else {
      std::fprintf(stderr, "pbt-serve: unknown argument '%s'\n",
                   Arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  if ((SO.SocketPath.empty() && SO.Listen.empty()) ||
      (Models.empty() && Stores.empty())) {
    usage(argv[0]);
    return 2;
  }

  std::unique_ptr<support::ThreadPool> Pool;
  if (PoolThreads > 0) {
    Pool = std::make_unique<support::ThreadPool>(PoolThreads);
    RO.Pool = Pool.get();
  }

  daemon::ModelRegistry Registry(RO);
  for (const auto &[Name, Path] : Models) {
    serialize::LoadStatus St = Registry.addTenant(Name, Path);
    if (!St) {
      std::fprintf(stderr, "pbt-serve: cannot load tenant from '%s': %s\n",
                   Path.c_str(), St.Error.c_str());
      return 1;
    }
  }
  for (const auto &[Name, Dir] : Stores) {
    serialize::LoadStatus St = Registry.addStoreTenant(Name, Dir);
    if (!St) {
      std::fprintf(stderr, "pbt-serve: cannot load tenant from store '%s': "
                           "%s\n",
                   Dir.c_str(), St.Error.c_str());
      return 1;
    }
  }

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  std::signal(SIGPIPE, SIG_IGN);

  daemon::Server Srv(Registry, SO);
  std::string Err;
  if (!Srv.start(Err)) {
    std::fprintf(stderr, "pbt-serve: %s\n", Err.c_str());
    return 1;
  }

  std::vector<std::string> Bound = Srv.boundEndpoints();
  // TCP endpoints first: a supervisor reading the port file wants the
  // cross-host endpoint on line 1.
  std::stable_sort(Bound.begin(), Bound.end(),
                   [](const std::string &A, const std::string &B) {
                     return (A.compare(0, 4, "tcp:") == 0) >
                            (B.compare(0, 4, "tcp:") == 0);
                   });

  if (!PortFile.empty()) {
    // Write-to-temp + rename so a supervisor polling the path never
    // observes a partial file.
    std::string Tmp = PortFile + ".tmp";
    std::FILE *F = std::fopen(Tmp.c_str(), "w");
    bool Ok = F != nullptr;
    if (F) {
      for (const std::string &E : Bound)
        Ok = Ok && std::fprintf(F, "%s\n", E.c_str()) >= 0;
      Ok = std::fclose(F) == 0 && Ok;
    }
    if (!Ok || std::rename(Tmp.c_str(), PortFile.c_str()) != 0) {
      std::fprintf(stderr, "pbt-serve: cannot write port file '%s'\n",
                   PortFile.c_str());
      Srv.stop();
      return 1;
    }
  }

  {
    std::string Names, Where;
    for (const std::string &N : Registry.names())
      Names += (Names.empty() ? "" : ", ") + N;
    for (const std::string &E : Bound)
      Where += (Where.empty() ? "" : ", ") + E;
    std::fprintf(stderr,
                 "pbt-serve: listening on %s (%zu tenant%s: %s; workers=%u "
                 "queue=%zu batch-max=%u max-sessions=%u%s)\n",
                 Where.c_str(), Registry.size(),
                 Registry.size() == 1 ? "" : "s", Names.c_str(), SO.Workers,
                 SO.QueueCapacity, SO.BatchMax, SO.MaxSessions,
                 SO.Adapt ? " adapt" : "");
    std::fflush(stderr);
  }

  // Park until a client's Shutdown frame flips the server's stop flag or
  // a signal lands. Polling keeps the signal handler async-signal-safe
  // (it only stores a flag). Store-backed tenants piggyback on the park
  // loop: every --store-poll-ms the registry checks each watched store's
  // CURRENT pointer and hot-swaps promoted epochs.
  unsigned TicksPerPoll = std::max(1u, StorePollMs / 50);
  for (uint64_t Tick = 1; Srv.running() && !GSignalled.load(); ++Tick) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (!Stores.empty() && Tick % TicksPerPoll == 0) {
      size_t Swapped = Registry.pollStores();
      if (Swapped > 0) {
        std::fprintf(stderr, "pbt-serve: hot-swapped %zu tenant%s onto newly "
                             "promoted store epochs\n",
                     Swapped, Swapped == 1 ? "" : "s");
        std::fflush(stderr);
      }
    }
  }

  std::string FinalStats = Srv.statsJson();
  Srv.stop();
  std::printf("%s\n", FinalStats.c_str());
  return 0;
}

//===- examples/quickstart.cpp - Five-minute tour of the library ------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: train the two-level input-sensitive autotuning system on
/// the Sort benchmark and use the resulting classifier on fresh inputs.
/// The program is constructed by name through the BenchmarkRegistry --
/// no concrete benchmark type appears here, so swapping "sort2" for any
/// name printed by `pbt-bench list` retargets the whole walkthrough.
///
/// The flow is the paper's Figure 3:
///   1. a program with algorithmic choices + input features,
///   2. input-aware learning (core::trainSystem = Level 1 + Level 2),
///   3. deployment: classify each new input, run its landmark config.
///
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "registry/BenchmarkRegistry.h"
#include "support/Table.h"

#include <cstdio>

using namespace pbt;

int main() {
  // --- 1. The program under tuning, by registry name: Sort with five
  // algorithms, a recursive selector, and four input features at three
  // sampling levels. Scale 0.75 gives 120 inputs.
  const registry::BenchmarkFactory &Factory =
      registry::BenchmarkRegistry::instance().get("sort2");
  registry::ProgramPtr Sort = Factory.makeProgram(/*Scale=*/0.75, /*Seed=*/42);
  std::printf("program: %s  (search space ~10^%.0f configurations)\n",
              Sort->name().c_str(), Sort->space().searchSpaceLog10());

  // --- 2. Input-aware learning: cluster training inputs, tune one
  // landmark per cluster, measure, refine, train + select a classifier.
  core::PipelineOptions Opts = Factory.defaultOptions(0.75);
  Opts.L1.NumLandmarks = 8;
  Opts.L1.Tuner.PopulationSize = 14;
  Opts.L1.Tuner.Generations = 10;
  core::TrainedSystem System = core::trainSystem(*Sort, Opts);
  std::printf("trained %zu landmark configurations; selected classifier: "
              "%s\n",
              System.L1.Landmarks.size(), System.L2.SelectedName.c_str());

  // --- 3. Evaluation on the held-out half of the inputs.
  core::EvaluationResult R = core::evaluateSystem(*Sort, System);
  support::TextTable Table;
  Table.setHeader({"method", "mean speedup vs static oracle"});
  Table.addRow({"dynamic oracle (upper bound)",
                support::formatSpeedup(R.DynamicOracle)});
  Table.addRow({"two-level classifier (w/ feature cost)",
                support::formatSpeedup(R.TwoLevelWithFeat)});
  Table.addRow({"one-level baseline (w/ feature cost)",
                support::formatSpeedup(R.OneLevelWithFeat)});
  std::printf("\n%s\n", Table.format().c_str());

  // --- 4. Deployment: classify a few test inputs through the live
  // feature extractors and show which polyalgorithm each one gets.
  runtime::FeatureIndex Index(Sort->features());
  std::printf("deployment decisions on four test inputs:\n");
  for (size_t I = 0; I != 4 && I != System.TestRows.size(); ++I) {
    size_t Input = System.TestRows[I];
    core::FeatureProbe Probe = core::probeFromProgram(*Sort, Input, Index);
    unsigned Landmark = System.L2.Production->classify(Probe);
    std::printf("  input %-4zu (%-20s) -> landmark %u  %s "
                "(%u features extracted, %.0f cost units)\n",
                Input, Sort->describeInput(Input).c_str(), Landmark,
                Sort->describeConfiguration(System.L1.Landmarks[Landmark])
                    .c_str(),
                Probe.numExtracted(), Probe.totalCost());
  }
  return 0;
}

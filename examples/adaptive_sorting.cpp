//===- examples/adaptive_sorting.cpp - Input-sensitive sorting deep dive -----==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's motivating scenario in detail: different list shapes favour
/// radically different sorting strategies. This example
///
///   1. measures every pure algorithm on every input family, printing the
///      winner per family (the "no single best algorithm" motivation);
///   2. trains the two-level system and shows the per-family speedup of
///      the adaptive classifier over the best single configuration.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/SortBenchmark.h"
#include "core/Pipeline.h"
#include "support/Statistics.h"
#include "support/Table.h"

#include <cstdio>
#include <map>

using namespace pbt;
using namespace pbt::bench;

int main() {
  // --- Part 1: who wins on which input family?
  const size_t N = 2048;
  support::Rng Rng(7);
  const char *AlgoNames[] = {"insertion", "quick", "merge", "radix",
                             "bitonic"};
  support::TextTable Winners;
  Winners.setHeader({"input family", "insertion", "quick", "merge", "radix",
                     "bitonic", "winner"});
  for (unsigned G = 0; G != NumSortGens; ++G) {
    std::vector<double> Input =
        generateSortInput(static_cast<SortGen>(G), N, Rng);
    std::vector<std::string> Row{sortGenName(static_cast<SortGen>(G))};
    double Best = 1e300;
    unsigned BestAlgo = 0;
    for (unsigned A = 0; A != NumSortAlgos; ++A) {
      runtime::Selector Always({{UINT64_MAX, A}});
      PolySorter Sorter(Always, 4);
      std::vector<double> Work = Input;
      support::CostCounter Cost;
      Sorter.sort(Work, Cost);
      Row.push_back(support::formatDouble(Cost.units() / 1000.0, 0) + "k");
      if (Cost.units() < Best) {
        Best = Cost.units();
        BestAlgo = A;
      }
    }
    Row.push_back(AlgoNames[BestAlgo]);
    Winners.addRow(Row);
  }
  std::printf("Pure-algorithm cost (work units) per input family, n = %zu:\n"
              "\n%s\n",
              N, Winners.format().c_str());

  // --- Part 2: the adaptive system exploits exactly this diversity.
  SortBenchmark::Options ProgOpts;
  ProgOpts.Data = SortBenchmark::Dataset::SyntheticMix;
  ProgOpts.NumInputs = 160;
  ProgOpts.MinSize = 256;
  ProgOpts.MaxSize = 2048;
  ProgOpts.Seed = 11;
  SortBenchmark Sort(ProgOpts);

  core::PipelineOptions Opts;
  Opts.L1.NumLandmarks = 8;
  core::TrainedSystem System = core::trainSystem(Sort, Opts);
  core::EvaluationResult R = core::evaluateSystem(Sort, System);

  // Per-family mean speedup of the classifier over the static oracle.
  std::map<std::string, std::vector<double>> ByFamily;
  for (size_t I = 0; I != System.TestRows.size(); ++I)
    ByFamily[Sort.inputTag(System.TestRows[I])].push_back(
        R.PerInputSpeedups[I]);

  support::TextTable Table;
  Table.setHeader({"input family", "inputs", "mean speedup", "max speedup"});
  for (const auto &[Family, Speedups] : ByFamily)
    Table.addRow({Family, std::to_string(Speedups.size()),
                  support::formatSpeedup(support::mean(Speedups)),
                  support::formatSpeedup(support::maxOf(Speedups))});
  std::printf("Two-level classifier speedup over the static oracle, by "
              "input family (overall mean %s):\n\n%s\n",
              support::formatSpeedup(R.TwoLevelWithFeat).c_str(),
              Table.format().c_str());
  std::printf("Note how families the static configuration handles badly "
              "(e.g. ones where its pivot/cutoff choices degenerate) show "
              "the largest adaptive gains -- the paper's Figure 6 story.\n");
  return 0;
}

//===- examples/pde_solver_selection.cpp - Input-aware PDE solver choice ----==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Demonstrates input-sensitive solver selection on the 2D Poisson
/// benchmark: smooth right-hand sides need aggressive coarse-grid
/// correction (multigrid/direct), high-frequency ones fall to smoothers
/// almost immediately, and the accuracy target (10^7 error reduction)
/// rules out under-iterated configurations. The example prints the cost
/// of each solver family per input family, then shows which solvers the
/// trained landmarks use and how the classifier routes inputs to them.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Poisson2DBenchmark.h"
#include "core/Pipeline.h"
#include "support/Table.h"

#include <cstdio>
#include <map>

using namespace pbt;
using namespace pbt::bench;

static const char *solverName(pde::SolverKind K) {
  switch (K) {
  case pde::SolverKind::Multigrid:
    return "multigrid";
  case pde::SolverKind::Jacobi:
    return "jacobi";
  case pde::SolverKind::GaussSeidel:
    return "gauss-seidel";
  case pde::SolverKind::SOR:
    return "sor";
  case pde::SolverKind::ConjugateGradient:
    return "cg";
  case pde::SolverKind::Direct:
    return "direct";
  }
  return "?";
}

int main() {
  Poisson2DBenchmark::Options ProgOpts;
  ProgOpts.NumInputs = 100;
  ProgOpts.GridN = 33;
  ProgOpts.Seed = 17;
  Poisson2DBenchmark Poisson(ProgOpts);

  // --- Part 1: cost to *meet the accuracy target* per solver family on
  // one smooth and one high-frequency input.
  auto FindTagged = [&](const char *Tag) -> long {
    for (size_t I = 0; I != Poisson.numInputs(); ++I)
      if (Poisson.inputTag(I) == Tag)
        return static_cast<long>(I);
    return -1;
  };
  long Smooth = FindTagged("smooth-modes");
  long HighFreq = FindTagged("high-frequency");

  // Hand-rolled representative configurations per solver family
  // (parameter order: solver, cycles, pre, post, mu, smoother, omega,
  // statIters, cgIters).
  auto Config = [](unsigned Solver, double Cycles, double StatIters,
                   double CGIters) {
    return runtime::Configuration(std::vector<double>{
        static_cast<double>(Solver), Cycles, 2, 2, 1, 1, 1.8, StatIters,
        CGIters});
  };
  support::TextTable Costs;
  Costs.setHeader({"solver", "smooth: cost", "smooth: accuracy",
                   "high-freq: cost", "high-freq: accuracy"});
  struct Family {
    const char *Name;
    runtime::Configuration C;
  };
  std::vector<Family> Families = {
      {"multigrid (8 cycles)", Config(0, 8, 100, 100)},
      {"jacobi (2000 sweeps)", Config(1, 4, 2000, 100)},
      {"sor (400 sweeps)", Config(3, 4, 400, 100)},
      {"cg (300 iters)", Config(4, 4, 100, 300)},
      {"direct", Config(5, 4, 100, 100)},
  };
  for (const Family &F : Families) {
    std::vector<std::string> Row{F.Name};
    for (long Input : {Smooth, HighFreq}) {
      if (Input < 0) {
        Row.push_back("-");
        Row.push_back("-");
        continue;
      }
      support::CostCounter Cost;
      runtime::RunResult R =
          Poisson.run(static_cast<size_t>(Input), F.C, Cost);
      Row.push_back(support::formatDouble(Cost.units() / 1000.0, 0) + "k");
      Row.push_back(support::formatDouble(R.Accuracy, 1) +
                    (R.Accuracy >= 7.0 ? " (meets)" : " (MISSES)"));
    }
    Costs.addRow(Row);
  }
  std::printf("Solver cost and accuracy (log10 error reduction, target 7) "
              "on a smooth vs a high-frequency right-hand side:\n\n%s\n",
              Costs.format().c_str());

  // --- Part 2: what the tuned system learned.
  core::PipelineOptions Opts;
  Opts.L1.NumLandmarks = 8;
  core::TrainedSystem System = core::trainSystem(Poisson, Opts);
  core::EvaluationResult R = core::evaluateSystem(Poisson, System);

  std::printf("Landmark solver choices after tuning:\n");
  for (size_t K = 0; K != System.L1.Landmarks.size(); ++K)
    std::printf("  landmark %zu: %s\n", K,
                solverName(Poisson.scheme().solver(System.L1.Landmarks[K])));

  // Which solver family serves which input family, per the classifier.
  std::map<std::string, std::map<std::string, unsigned>> Routing;
  for (size_t Row : System.TestRows) {
    core::FeatureProbe Probe = core::probeFromTable(
        System.L1.Features, System.L1.ExtractCosts, Row);
    unsigned L = System.L2.Production->classify(Probe);
    Routing[Poisson.inputTag(Row)]
           [solverName(Poisson.scheme().solver(System.L1.Landmarks[L]))]++;
  }
  std::printf("\nClassifier routing (input family -> solver of the chosen "
              "landmark):\n");
  for (const auto &[Family, Solvers] : Routing) {
    std::printf("  %-15s ", Family.c_str());
    for (const auto &[Solver, Count] : Solvers)
      std::printf("%s x%u  ", Solver.c_str(), Count);
    std::printf("\n");
  }
  std::printf("\nTwo-level speedup over the static oracle: %s "
              "(satisfaction %s); dynamic oracle: %s\n",
              support::formatSpeedup(R.TwoLevelWithFeat).c_str(),
              support::formatPercent(R.TwoLevelSatisfaction).c_str(),
              support::formatSpeedup(R.DynamicOracle).c_str());
  return 0;
}

//===- examples/binpacking_accuracy.cpp - Variable accuracy in action -------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Demonstrates the variable-accuracy machinery (paper Sections 2.3/3.3)
/// on bin packing: algorithms trade packing quality (mean bin occupancy,
/// the accuracy metric) against execution cost, and the right trade
/// depends on the input. The two-level system must hit the accuracy
/// threshold on 95% of inputs while minimising time -- so it learns to
/// use cheap heuristics on easy inputs and expensive ones (sort-based,
/// MFFD) only where needed.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/BinPackingBenchmark.h"
#include "core/Pipeline.h"
#include "support/Statistics.h"
#include "support/Table.h"

#include <cstdio>

using namespace pbt;
using namespace pbt::bench;

int main() {
  // --- Part 1: the accuracy/cost landscape of the 13 heuristics.
  support::Rng Rng(3);
  support::TextTable Landscape;
  Landscape.setHeader({"algorithm", "easy: occupancy", "easy: cost",
                       "hard: occupancy", "hard: cost"});
  std::vector<double> Easy = generatePackInput(PackGen::SmallUniform, 256, Rng);
  std::vector<double> Hard = generatePackInput(PackGen::Bimodal, 256, Rng);
  for (unsigned A = 0; A != NumPackAlgos; ++A) {
    support::CostCounter CE, CH;
    PackingResult RE = pack(static_cast<PackAlgo>(A), Easy, CE);
    PackingResult RH = pack(static_cast<PackAlgo>(A), Hard, CH);
    Landscape.addRow({packAlgoName(static_cast<PackAlgo>(A)),
                      support::formatPercent(RE.averageOccupancy()),
                      support::formatDouble(CE.units() / 1000.0, 1) + "k",
                      support::formatPercent(RH.averageOccupancy()),
                      support::formatDouble(CH.units() / 1000.0, 1) + "k"});
  }
  std::printf("Occupancy (accuracy metric, target 95%%) and cost of every "
              "heuristic on an easy and a hard input:\n\n%s\n",
              Landscape.format().c_str());

  // --- Part 2: train the two-level system under the accuracy target.
  BinPackingBenchmark::Options ProgOpts;
  ProgOpts.NumInputs = 200;
  ProgOpts.MinItems = 64;
  ProgOpts.MaxItems = 384;
  ProgOpts.Seed = 5;
  BinPackingBenchmark Pack(ProgOpts);

  core::PipelineOptions Opts;
  Opts.L1.NumLandmarks = 8;
  core::TrainedSystem System = core::trainSystem(Pack, Opts);
  core::EvaluationResult R = core::evaluateSystem(Pack, System);

  std::printf("Trained system (accuracy threshold %.2f, satisfaction "
              "threshold %.0f%%):\n",
              Pack.accuracy()->AccuracyThreshold,
              Pack.accuracy()->SatisfactionThreshold * 100.0);
  std::printf("  landmark algorithms: ");
  for (const runtime::Configuration &L : System.L1.Landmarks)
    std::printf("%s ", packAlgoName(Pack.algoFor(L)));
  std::printf("\n  selected classifier: %s\n",
              System.L2.SelectedName.c_str());
  std::printf("  two-level: %s speedup, %s of inputs meet the target\n",
              support::formatSpeedup(R.TwoLevelWithFeat).c_str(),
              support::formatPercent(R.TwoLevelSatisfaction).c_str());
  std::printf("  one-level: %s speedup, %s satisfaction (accuracy-oblivious"
              " clustering)\n",
              support::formatSpeedup(R.OneLevelWithFeat).c_str(),
              support::formatPercent(R.OneLevelSatisfaction).c_str());
  return 0;
}

//===- bench/bench_fig8_landmarks.cpp - Reproduces the paper's Figure 8 -----==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 8: measured speedup over the static oracle as the
/// number of landmark configurations changes, over random subsets of the
/// trained landmarks (min / Q1 / median / Q3 / max error bars per count).
/// The paper's shape to reproduce: diminishing returns matching the
/// Figure 7b model -- rapid growth over the first few landmarks, then a
/// plateau.
///
/// Per-benchmark series are printed and written to fig8_<benchmark>.csv.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Table.h"

#include <cstdio>

using namespace pbt;
using namespace pbt::benchharness;

int main() {
  double Scale = scaleFromEnv();
  support::ThreadPool Pool;
  std::vector<SuiteEntry> Suite = makeStandardSuite(Scale, &Pool);
  const unsigned Trials = 60;

  for (SuiteEntry &E : Suite) {
    core::TrainedSystem System = core::trainSystem(*E.Program, E.Options);
    unsigned K = static_cast<unsigned>(System.L1.Landmarks.size());
    std::vector<unsigned> Counts;
    for (unsigned C = 1; C <= K; ++C)
      Counts.push_back(C);
    std::vector<core::LandmarkSweepPoint> Sweep = core::landmarkCountSweep(
        *E.Program, System, Counts, Trials, /*Seed=*/0xF1680 + K);

    support::TextTable Table;
    Table.setHeader({"landmarks", "min", "Q1", "median", "Q3", "max"});
    support::CsvWriter Csv;
    Csv.setHeader({"landmarks", "min", "q1", "median", "q3", "max", "mean"});
    for (const core::LandmarkSweepPoint &P : Sweep) {
      Table.addRow({std::to_string(P.NumLandmarks),
                    support::formatSpeedup(P.Speedups.Min),
                    support::formatSpeedup(P.Speedups.Q1),
                    support::formatSpeedup(P.Speedups.Median),
                    support::formatSpeedup(P.Speedups.Q3),
                    support::formatSpeedup(P.Speedups.Max)});
      Csv.addRow({std::to_string(P.NumLandmarks),
                  support::formatDouble(P.Speedups.Min, 6),
                  support::formatDouble(P.Speedups.Q1, 6),
                  support::formatDouble(P.Speedups.Median, 6),
                  support::formatDouble(P.Speedups.Q3, 6),
                  support::formatDouble(P.Speedups.Max, 6),
                  support::formatDouble(P.Speedups.Mean, 6)});
    }
    Csv.writeFile("fig8_" + E.Name + ".csv");
    std::printf("Figure 8 (%s): speedup over static oracle vs number of "
                "landmarks (%u random subsets per count)\n\n%s\n",
                E.Name.c_str(), Trials, Table.format().c_str());
  }
  std::printf("Shape check: medians rise steeply for the first few "
              "landmarks and plateau, matching the Figure 7b model "
              "(PBT_BENCH_SCALE=%.2f).\n",
              Scale);
  return 0;
}

//===- bench/bench_ablation_eta.cpp - Cost-matrix blend factor sweep --------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the in-text tuning of Section 3.2: the cost matrix blends
/// the accuracy penalty and the performance penalty as
/// C = eta * Ca * max(Cp) + Cp; the paper "tried different settings for
/// eta ranging from 0.001 to 1 ... found 0.5 to be the best". This sweep
/// re-runs Level 2 for each eta on the variable-accuracy benchmarks and
/// reports the two-level speedup and satisfaction rate.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Table.h"

#include <cstdio>

using namespace pbt;
using namespace pbt::benchharness;

int main() {
  double Scale = scaleFromEnv();
  support::ThreadPool Pool;
  const double Etas[] = {0.001, 0.01, 0.1, 0.5, 1.0};

  for (const std::string &Name :
       {std::string("binpacking"), std::string("clustering2"),
        std::string("poisson2d")}) {
    support::TextTable Table;
    Table.setHeader({"eta", "two-level (w/ feat.)", "satisfaction",
                     "selected classifier"});
    for (double Eta : Etas) {
      std::vector<SuiteEntry> Suite = makeSuiteSubset({Name}, Scale, &Pool);
      SuiteEntry &E = Suite.front();
      E.Options.L2.Eta = Eta;
      core::TrainedSystem System = core::trainSystem(*E.Program, E.Options);
      core::EvaluationResult R = core::evaluateSystem(*E.Program, System);
      Table.addRow({support::formatDouble(Eta, 3),
                    support::formatSpeedup(R.TwoLevelWithFeat),
                    support::formatPercent(R.TwoLevelSatisfaction),
                    System.L2.SelectedName});
    }
    std::printf("Ablation E7 (%s): cost-matrix blend factor eta\n\n%s\n",
                Name.c_str(), Table.format().c_str());
  }
  std::printf("Shape check: speedup/satisfaction should be robust in a "
              "band around eta = 0.5, the paper's setting "
              "(PBT_BENCH_SCALE=%.2f).\n",
              Scale);
  return 0;
}

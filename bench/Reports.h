//===- bench/Reports.h - pbt-bench subcommand implementations -------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The experiment subcommands of the unified `pbt-bench` driver. Each
/// reproduces one table/figure/in-text result of the paper over the
/// benchmarks enumerated by the BenchmarkRegistry, sharing one options
/// struct (scale, suite subset, thread pool, output directory).
///
//===----------------------------------------------------------------------===//

#ifndef PBT_BENCH_REPORTS_H
#define PBT_BENCH_REPORTS_H

#include "registry/BenchmarkRegistry.h"
#include "support/ThreadPool.h"

#include <string>
#include <vector>

namespace pbt {
namespace benchharness {

/// Options shared by every subcommand, parsed once in main.
struct DriverOptions {
  /// Input-count scale (PBT_BENCH_SCALE or --scale).
  double Scale = 1.0;
  /// Suite subset (--only=a,b,c); empty = the full registered suite.
  std::vector<std::string> Only;
  /// Worker threads (--threads); 0 = hardware concurrency.
  unsigned Threads = 0;
  /// --sequential: run without a pool (reference path).
  bool Sequential = false;
  /// Directory CSV series are written into (--out-dir).
  std::string OutDir = ".";
  /// Trials per landmark count in fig8 (--trials).
  unsigned Fig8Trials = 60;
  /// `train` only: explicit model output path (single benchmark); when
  /// empty each model lands in OutDir/<name>.pbt.
  std::string Out;
  /// `predict`/`serve`/`stream`: the model file to serve from (--model).
  /// `serve` accepts a comma-separated list and reports every entry in
  /// one JSON "models" array.
  std::string Model;
  /// `predict` only: which recorded rows to serve (--rows=test|train|all).
  std::string Rows = "test";
  /// `predict` only: passes over the row set (--repeat); passes beyond
  /// the first exercise the feature memo.
  unsigned Repeat = 1;
  /// `predict` only: optional CSV of per-input decisions (--csv).
  std::string Csv;
  /// `serve` only: decisions per decideBatch call (--batch).
  unsigned Batch = 256;
  /// `serve` only: wall-clock budget per measurement phase (--seconds).
  double Seconds = 1.0;
  /// `serve`/`stream`/`kernels`: also write BENCH_<sub>.json into OutDir
  /// (--json), the machine-readable perf-trajectory record CI uploads as
  /// artifacts.
  bool Json = false;
  /// True when --scale was given explicitly (stream: overrides the
  /// model's recorded scale for the traffic universe).
  bool ScaleExplicit = false;
  /// `stream` only: mixture schedule (--schedule=abrupt|ramp|periodic).
  std::string StreamSchedule = "abrupt";
  /// `stream` only: requests in the generated stream (--requests).
  unsigned StreamRequests = 2000;
  /// `stream` only: stream seed (--stream-seed).
  uint64_t StreamSeed = 0xD81F7;
  /// `stream` only: drift-key property index (--key).
  unsigned StreamKey = 0;
  /// `stream` only: periodic half-period in requests (--period; 0 =
  /// requests/4).
  unsigned StreamPeriod = 0;
  /// `stream` only: drift-monitor window (--window).
  unsigned StreamWindow = 64;
  /// `stream` only: retrain reservoir capacity (--reservoir).
  unsigned StreamReservoir = 48;
  /// `stream` only: --mix. Serve several models as tenants of one
  /// deterministic multi-tenant MixedStream through the daemon's
  /// ModelRegistry instead of one model's single-workload stream.
  bool StreamMix = false;
  /// `loadgen` only: Unix-domain socket of a running pbt-serve (--socket).
  std::string Socket;
  /// `loadgen` only: spawn a private pbt-serve for the run (--spawn).
  bool Spawn = false;
  /// `loadgen` only: pbt-serve binary for --spawn (--server-exe; empty =
  /// the `pbt-serve` sitting beside the running pbt-bench).
  std::string ServerExe;
  /// `loadgen` only: concurrent client connections (--connections).
  unsigned Connections = 4;
  /// `loadgen --spawn` only: server request-queue bound (--queue).
  unsigned QueueCapacity = 64;
  /// `loadgen --spawn` only: server batch workers (--workers).
  unsigned Workers = 2;
  /// `loadgen --spawn` only: server micro-batch cap (--batch-max).
  unsigned BatchMax = 64;
  /// `loadgen --spawn` only: per-tenant drift adaptation (--adapt).
  bool Adapt = false;
  /// `rollout` only: serving replicas in the simulated fleet (--replicas).
  unsigned Replicas = 3;
  /// `rollout` only: publish/canary/promote cycles to drive (--cycles).
  unsigned Cycles = 8;
  /// `rollout` only: inject a randomized failpoint each cycle (--faults).
  bool Faults = false;
  /// `rollout` only: failpoint-schedule seed (--fault-seed).
  uint64_t FaultSeed = 0xFA117;
  /// `fleet` only: run the chaos wall (--chaos): SIGKILL random replicas
  /// mid-load and assert parity / no-lost-answers / reconvergence.
  bool Chaos = false;
  /// `fleet --chaos` only: randomized replica kills to deliver (--kills).
  unsigned Kills = 50;
  /// `fleet` only: replica transport, "unix" or "tcp" (--transport).
  std::string FleetTransport = "unix";
  /// The pool built from Threads/Sequential; owned by main.
  support::ThreadPool *Pool = nullptr;
};

/// JSON emission helpers shared by the report subcommands (serve, stream,
/// trainbench, loadgen): a %.6g number and a string escaped for embedding
/// in a JSON literal.
std::string jsonNumber(double V);
std::string jsonString(const std::string &S);

/// Builds the suite the subcommand operates on (Only or the full suite).
std::vector<registry::SuiteEntry> suiteFor(const DriverOptions &Opts);

/// `list`: the registered catalog, one row per benchmark.
int runList(const DriverOptions &Opts);
/// `table1`: mean speedups over the static oracle (paper Table 1).
int runTable1(const DriverOptions &Opts);
/// `fig6`: distribution of per-input speedups (paper Figure 6).
int runFig6(const DriverOptions &Opts);
/// `fig7`: the closed-form landmark model (paper Figure 7, no programs).
int runFig7(const DriverOptions &Opts);
/// `fig8`: speedup vs landmark count over random subsets (paper Figure 8).
int runFig8(const DriverOptions &Opts);
/// `ablation-eta`: cost-matrix blend factor sweep (Section 3.2).
int runAblationEta(const DriverOptions &Opts);
/// `ablation-landmarks`: K-means vs random landmark selection (Section 3.1).
int runAblationLandmarks(const DriverOptions &Opts);
/// `ablation-twolevel`: refinement disparity + classifier zoo (Section 4.2).
int runAblationTwoLevel(const DriverOptions &Opts);
/// `kernels`: google-benchmark micro-benchmarks of the substrate kernels
/// plus the parallel-pipeline wall-clock comparison. Extra argv is passed
/// through to google-benchmark (e.g. --benchmark_filter=...).
int runKernels(const DriverOptions &Opts, int Argc, char **Argv);
/// `train`: train the suite (or --only subset) and persist each trained
/// system as a versioned model file for later `predict` processes.
int runTrain(const DriverOptions &Opts);
/// `predict`: load a persisted model in a fresh process and serve
/// per-input configuration decisions through a PredictionService.
int runPredict(const DriverOptions &Opts);
/// `serve`: the serving-throughput harness. Loads a model, compiles it,
/// warms the feature memo, then measures the interpreted baseline, the
/// compiled single-thread path, and the compiled batched path over the
/// thread pool, reporting decisions/sec and p50/p99 batch latency as
/// machine-readable JSON (stdout; also OutDir/BENCH_serve.json with
/// --json).
int runServe(const DriverOptions &Opts);
/// `trainbench`: the training-performance harness. For each suite entry
/// it times `Pipeline::train` end to end on the pre-optimisation
/// reference path (physical sort kernels, no autotuner memo, no
/// measurement dedup, row-major Level 2) and on the default fast path
/// (charge-exact kernel simulation + run memo, memoized tuning, columnar
/// ml::Dataset Level 2), interleaved best-of `--repeat` passes, and
/// verifies the two paths' serialized models are byte-identical -- the
/// refactor changes how training computes, never what it computes. Exits
/// nonzero on any byte mismatch. JSON to stdout; also
/// OutDir/BENCH_train.json with --json.
int runTrainBench(const DriverOptions &Opts);
/// `stream`: the nonstationary-traffic harness. Loads a model, replays a
/// seeded mixture-schedule request stream (streams/WorkloadStream.h)
/// against an AdaptiveService AND a frozen no-adaptation control of the
/// same model, and reports decisions/sec, drift detections, swap history
/// and mean-cost/regret-vs-oracle per inter-swap segment as JSON (stdout;
/// also OutDir/BENCH_stream.json with --json). --seconds caps the wall
/// clock of each serving loop; --requests bounds it deterministically.
int runStream(const DriverOptions &Opts);
/// `stream --mix`: the multi-tenant traffic harness. Loads every --model
/// entry as a tenant of a daemon ModelRegistry (the same tenant table
/// pbt-serve serves from), builds one per-tenant WorkloadStream over
/// each tenant's own program -- schedules rotated abrupt/ramp/periodic,
/// per-tenant seeds -- interleaves them into one deterministic
/// streams::MixedStream, and replays the global sequence through each
/// tenant's registered service. Every decision is parity-checked against
/// an independent in-process PredictionService replay of the same model
/// file; any divergence is a nonzero exit. Per-tenant decisions/sec and
/// the interleave census go to JSON (stdout; also
/// OutDir/BENCH_stream_mix.json with --json).
int runStreamMix(const DriverOptions &Opts);
/// `interact`: the input-vs-config interaction sweep (the paper's core
/// premise, quantified per workload). For each suite entry it trains the
/// landmark evidence table, then measures how far the inputs-by-configs
/// cost matrix departs from an additive (input effect + config effect)
/// model: 1 - R^2 of the additive fit -- the interaction strength that
/// makes input-adaptive choice worth anything -- plus the oracle-vs-
/// best-static speedup it buys. JSON to stdout; also
/// OutDir/BENCH_interact.json with --json.
int runInteract(const DriverOptions &Opts);
/// `loadgen`: the multi-client daemon harness. Connects --connections
/// concurrent clients to a pbt-serve daemon (an existing one via
/// --socket, or a private child via --spawn) and drives each tenant's
/// WorkloadStream schedule through the framed Unix-socket protocol,
/// measuring sustained decisions/sec with p50/p99/p999 request latency,
/// then an oversubscribed saturation phase recording shed behavior at
/// the admission-control boundary. Every daemon decision is compared
/// with an in-process PredictionService::decideBatch replay of the same
/// model and inputs; any divergence is a nonzero exit. JSON to stdout;
/// also OutDir/BENCH_serve_daemon.json with --json. \p Argv0 locates the
/// default pbt-serve binary for --spawn.
int runLoadgen(const DriverOptions &Opts, const char *Argv0);
/// `rollout`: the crash-safe fleet-rollout harness. Trains one model,
/// seeds a model store, then drives --cycles staged rollouts (publish ->
/// canary -> promote/rollback) through a RolloutController fleet of
/// --replicas in-process replicas, alternating clone candidates (equal
/// shadow score: promote) with landmark-rotated degraded candidates
/// (worse: rollback). With --faults each cycle arms one randomized
/// failpoint (torn write, crash-before-rename, crash-before-manifest,
/// crash-between-manifest-and-CURRENT, checksum corruption, failing
/// fsync); an injected crash kills the fleet mid-protocol, and the
/// harness restarts it from the store, timing recovery and verifying the
/// recovered fleet's decisions are golden-identical to the last durable
/// epoch's. Reports publish/canary/promote latency, recovery time, torn
/// reads prevented, and the zero-torn-reads-served assertion as JSON
/// (stdout; also OutDir/BENCH_rollout.json with --json). Any torn read
/// served, golden divergence, or failed recovery is a nonzero exit.
int runRollout(const DriverOptions &Opts);
/// `fleet`: the supervised cross-process serving-fleet harness. Trains
/// one model, seeds a crash-safe model store, fork/execs --replicas
/// real pbt-serve processes (Unix sockets by default, --transport=tcp
/// for the cross-host path) under a fleet::Supervisor, and drives
/// --connections FailoverClient threads against the fleet while a
/// publisher promotes clone epochs through the store. With --chaos it
/// SIGKILLs --kills random replicas mid-load, waits for the supervisor
/// to restart each one and the fleet to reconverge onto CURRENT, then
/// crash-loops one replica into quarantine and proves the survivors
/// keep answering. Every successful prediction is parity-checked
/// against an in-process PredictionService replay; any mismatch, any
/// lost admitted request, or a reconvergence failure is a nonzero exit.
/// Reports availability, failover latency p50/p99, restart/quarantine
/// counts as JSON (stdout; also OutDir/BENCH_fleet.json with --json).
/// \p Argv0 locates the default pbt-serve binary (same rule as loadgen).
int runFleet(const DriverOptions &Opts, const char *Argv0);

} // namespace benchharness
} // namespace pbt

#endif // PBT_BENCH_REPORTS_H

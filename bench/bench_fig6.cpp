//===- bench/bench_fig6.cpp - Reproduces the paper's Figure 6 ---------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 6: the distribution of per-input speedups of the
/// two-level method over the static oracle, sorted ascending per
/// benchmark. The paper's observation to reproduce: speedups are very
/// non-uniform -- most inputs see modest gains while a small set of
/// inputs gets dramatically faster, so the mean depends strongly on the
/// input distribution.
///
/// Prints decile summaries per benchmark and writes the full sorted
/// series to fig6_<benchmark>.csv for plotting.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Statistics.h"
#include "support/Table.h"

#include <algorithm>
#include <cstdio>

using namespace pbt;
using namespace pbt::benchharness;

int main() {
  double Scale = scaleFromEnv();
  support::ThreadPool Pool;
  std::vector<SuiteEntry> Suite = makeStandardSuite(Scale, &Pool);

  support::TextTable Table;
  Table.setHeader({"Benchmark", "min", "p25", "median", "p75", "p90", "p99",
                   "max", "mean"});

  for (SuiteEntry &E : Suite) {
    core::TrainedSystem System = core::trainSystem(*E.Program, E.Options);
    core::EvaluationResult R = core::evaluateSystem(*E.Program, System);
    std::vector<double> S = R.PerInputSpeedups;
    std::sort(S.begin(), S.end());
    std::fprintf(stderr, "[fig6] %-12s %zu test inputs\n", E.Name.c_str(),
                 S.size());

    Table.addRow({E.Name, support::formatSpeedup(support::quantile(S, 0.0)),
                  support::formatSpeedup(support::quantile(S, 0.25)),
                  support::formatSpeedup(support::quantile(S, 0.5)),
                  support::formatSpeedup(support::quantile(S, 0.75)),
                  support::formatSpeedup(support::quantile(S, 0.9)),
                  support::formatSpeedup(support::quantile(S, 0.99)),
                  support::formatSpeedup(support::quantile(S, 1.0)),
                  support::formatSpeedup(support::mean(S))});

    support::CsvWriter Csv;
    Csv.setHeader({"rank", "speedup"});
    for (size_t I = 0; I != S.size(); ++I)
      Csv.addRow({std::to_string(I), support::formatDouble(S[I], 6)});
    Csv.writeFile("fig6_" + E.Name + ".csv");
  }

  std::printf("Figure 6: distribution of per-input speedups of the "
              "two-level method over the static oracle\n"
              "(sorted series written to fig6_<benchmark>.csv; "
              "PBT_BENCH_SCALE=%.2f)\n\n%s\n",
              Scale, Table.format().c_str());
  std::printf("Shape check: per-benchmark max >> median reproduces the "
              "paper's 'small sets of inputs with very large speedups'.\n");
  return 0;
}

//===- bench/KernelBench.cpp - `pbt-bench kernels` micro-benchmarks --------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark micro-benchmarks of the substrate kernels: the five
/// sorting algorithms across input families, the bin packing heuristics,
/// the SVD methods, the PDE smoothers/solvers, K-means, and classifier
/// prediction -- plus wall-clock comparisons of sequential vs pooled
/// pipeline training and evaluation. Kernel benchmarks measure real time
/// of our implementations (the pipeline itself uses the deterministic
/// cost model). When google-benchmark is unavailable the subcommand
/// degrades to an explanatory stub.
///
//===----------------------------------------------------------------------===//

#include "Reports.h"

#ifdef PBT_HAVE_GOOGLE_BENCHMARK

#include "benchmarks/BinPackingAlgorithms.h"
#include "benchmarks/SortAlgorithms.h"
#include "core/FeatureProbe.h"
#include "core/Pipeline.h"
#include "linalg/SVD.h"
#include "ml/CrossValidation.h"
#include "ml/DecisionTree.h"
#include "ml/KMeans.h"
#include "pde/Poisson2D.h"
#include "registry/BenchmarkRegistry.h"
#include "runtime/PredictionService.h"
#include "serialize/ModelIO.h"

#include <benchmark/benchmark.h>

#include <cmath>
#include <optional>
#include <string>
#include <vector>

using namespace pbt;

//===----------------------------------------------------------------------===//
// Sorting kernels
//===----------------------------------------------------------------------===//

static void BM_Sort(benchmark::State &State, bench::SortAlgo Algo,
                    bench::SortGen Gen) {
  support::Rng Rng(1);
  size_t N = static_cast<size_t>(State.range(0));
  std::vector<double> Input = bench::generateSortInput(Gen, N, Rng);
  runtime::Selector Always({{UINT64_MAX, static_cast<unsigned>(Algo)}});
  bench::PolySorter Sorter(Always, 4);
  double Units = 0.0;
  for (auto _ : State) {
    std::vector<double> Work = Input;
    support::CostCounter Cost;
    Sorter.sort(Work, Cost);
    Units = Cost.units();
    benchmark::DoNotOptimize(Work.data());
  }
  State.counters["work_units"] = Units;
}

BENCHMARK_CAPTURE(BM_Sort, insertion_random, bench::SortAlgo::Insertion,
                  bench::SortGen::Uniform)
    ->Arg(256)->Arg(1024);
BENCHMARK_CAPTURE(BM_Sort, insertion_sorted, bench::SortAlgo::Insertion,
                  bench::SortGen::Sorted)
    ->Arg(4096);
BENCHMARK_CAPTURE(BM_Sort, quick_random, bench::SortAlgo::Quick,
                  bench::SortGen::Uniform)
    ->Arg(1024)->Arg(4096);
BENCHMARK_CAPTURE(BM_Sort, quick_sorted_pathological, bench::SortAlgo::Quick,
                  bench::SortGen::Sorted)
    ->Arg(1024);
BENCHMARK_CAPTURE(BM_Sort, merge_random, bench::SortAlgo::Merge,
                  bench::SortGen::Uniform)
    ->Arg(1024)->Arg(4096);
BENCHMARK_CAPTURE(BM_Sort, radix_random, bench::SortAlgo::Radix,
                  bench::SortGen::Uniform)
    ->Arg(1024)->Arg(4096);
BENCHMARK_CAPTURE(BM_Sort, bitonic_random, bench::SortAlgo::Bitonic,
                  bench::SortGen::Uniform)
    ->Arg(1024);

static void BM_PolySortFigure2(benchmark::State &State) {
  support::Rng Rng(2);
  std::vector<double> Input =
      bench::generateSortInput(bench::SortGen::Uniform, 8192, Rng);
  runtime::Selector Fig2({{600, 0}, {1420, 1}, {UINT64_MAX, 2}});
  bench::PolySorter Sorter(Fig2, 2);
  for (auto _ : State) {
    std::vector<double> Work = Input;
    support::CostCounter Cost;
    Sorter.sort(Work, Cost);
    benchmark::DoNotOptimize(Work.data());
  }
}
BENCHMARK(BM_PolySortFigure2);

//===----------------------------------------------------------------------===//
// Bin packing kernels
//===----------------------------------------------------------------------===//

static void BM_Pack(benchmark::State &State, bench::PackAlgo Algo) {
  support::Rng Rng(3);
  std::vector<double> Items = bench::generatePackInput(
      bench::PackGen::WideUniform, static_cast<size_t>(State.range(0)), Rng);
  double Occupancy = 0.0;
  for (auto _ : State) {
    support::CostCounter Cost;
    bench::PackingResult R = bench::pack(Algo, Items, Cost);
    Occupancy = R.averageOccupancy();
    benchmark::DoNotOptimize(R.BinLoads.data());
  }
  State.counters["occupancy"] = Occupancy;
}

BENCHMARK_CAPTURE(BM_Pack, next_fit, bench::PackAlgo::NextFit)->Arg(512);
BENCHMARK_CAPTURE(BM_Pack, first_fit, bench::PackAlgo::FirstFit)->Arg(512);
BENCHMARK_CAPTURE(BM_Pack, best_fit_decreasing,
                  bench::PackAlgo::BestFitDecreasing)
    ->Arg(512);
BENCHMARK_CAPTURE(BM_Pack, mffd, bench::PackAlgo::ModifiedFirstFitDecreasing)
    ->Arg(512);

//===----------------------------------------------------------------------===//
// SVD kernels
//===----------------------------------------------------------------------===//

static void BM_SVDJacobi(benchmark::State &State) {
  support::Rng Rng(4);
  size_t N = static_cast<size_t>(State.range(0));
  linalg::Matrix A = linalg::Matrix::gaussian(N, N, Rng);
  for (auto _ : State) {
    linalg::SVDResult R = linalg::jacobiSVD(A);
    benchmark::DoNotOptimize(R.Sigma.data());
  }
}
BENCHMARK(BM_SVDJacobi)->Arg(24)->Arg(48);

static void BM_SVDRandomized(benchmark::State &State) {
  support::Rng Rng(5);
  size_t N = static_cast<size_t>(State.range(0));
  linalg::Matrix A = linalg::Matrix::gaussian(N, N, Rng);
  for (auto _ : State) {
    linalg::SVDResult R = linalg::randomizedSVD(A, 4, 6, 1, Rng);
    benchmark::DoNotOptimize(R.Sigma.data());
  }
}
BENCHMARK(BM_SVDRandomized)->Arg(24)->Arg(48);

//===----------------------------------------------------------------------===//
// PDE kernels
//===----------------------------------------------------------------------===//

static pde::Grid2D poissonRHS(size_t N) {
  pde::Grid2D F(N);
  for (size_t I = 1; I + 1 < N; ++I)
    for (size_t J = 1; J + 1 < N; ++J)
      F.at(I, J) = std::sin(M_PI * I / (N - 1.0)) *
                   std::sin(M_PI * J / (N - 1.0));
  return F;
}

static void BM_PoissonMultigridVCycle(benchmark::State &State) {
  pde::Grid2D F = poissonRHS(static_cast<size_t>(State.range(0)));
  pde::MultigridOptions O;
  O.Cycles = 1;
  for (auto _ : State) {
    pde::Grid2D U = pde::multigridSolve(F, O);
    benchmark::DoNotOptimize(U.data().data());
  }
}
BENCHMARK(BM_PoissonMultigridVCycle)->Arg(33)->Arg(65);

static void BM_PoissonDirect(benchmark::State &State) {
  pde::Grid2D F = poissonRHS(static_cast<size_t>(State.range(0)));
  for (auto _ : State) {
    pde::Grid2D U = pde::directSolve(F);
    benchmark::DoNotOptimize(U.data().data());
  }
}
BENCHMARK(BM_PoissonDirect)->Arg(33)->Arg(65);

static void BM_PoissonSORSweeps(benchmark::State &State) {
  pde::Grid2D F = poissonRHS(33);
  for (auto _ : State) {
    pde::Grid2D U(33);
    pde::smoothSOR(U, F, 1.8, static_cast<unsigned>(State.range(0)));
    benchmark::DoNotOptimize(U.data().data());
  }
}
BENCHMARK(BM_PoissonSORSweeps)->Arg(10)->Arg(100);

//===----------------------------------------------------------------------===//
// ML kernels
//===----------------------------------------------------------------------===//

static void BM_KMeans(benchmark::State &State) {
  support::Rng Rng(6);
  size_t N = static_cast<size_t>(State.range(0));
  linalg::Matrix P(N, 2);
  for (double &V : P.data())
    V = Rng.uniform(0, 100);
  ml::KMeansOptions O;
  O.K = 8;
  O.MaxIterations = 20;
  for (auto _ : State) {
    ml::KMeansResult R = ml::kMeans(P, O);
    benchmark::DoNotOptimize(R.Assignment.data());
  }
}
BENCHMARK(BM_KMeans)->Arg(512)->Arg(2048);

static void BM_DecisionTreePredict(benchmark::State &State) {
  support::Rng Rng(7);
  linalg::Matrix X(512, 12);
  std::vector<unsigned> Y(512);
  for (size_t I = 0; I != 512; ++I) {
    for (size_t J = 0; J != 12; ++J)
      X.at(I, J) = Rng.uniform(0, 1);
    Y[I] = X.at(I, 0) > 0.5 ? 1 : 0;
  }
  ml::DecisionTree T;
  T.fit(X, Y, 2);
  std::vector<double> Row(12, 0.3);
  for (auto _ : State) {
    unsigned P = T.predict(Row);
    benchmark::DoNotOptimize(P);
  }
}
BENCHMARK(BM_DecisionTreePredict);

/// Tree training over a multi-class table: the timing that pins the
/// build() hot-loop rewrite (scratch (value, label) sort + sweep instead
/// of per-(node, feature) index re-sorts through Matrix::at).
static void BM_DecisionTreeFit(benchmark::State &State) {
  support::Rng Rng(9);
  size_t N = static_cast<size_t>(State.range(0));
  linalg::Matrix X(N, 12);
  std::vector<unsigned> Y(N);
  for (size_t I = 0; I != N; ++I) {
    for (size_t J = 0; J != 12; ++J)
      X.at(I, J) = Rng.uniform(0, 1);
    Y[I] = static_cast<unsigned>(X.at(I, 0) * 2.0) * 2 +
           (X.at(I, 1) > 0.6 ? 1 : 0);
  }
  for (auto _ : State) {
    ml::DecisionTree T;
    T.fit(X, Y, 4);
    benchmark::DoNotOptimize(T.numNodes());
  }
}
BENCHMARK(BM_DecisionTreeFit)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

static void BM_MatrixTranspose(benchmark::State &State) {
  support::Rng Rng(10);
  size_t N = static_cast<size_t>(State.range(0));
  linalg::Matrix A = linalg::Matrix::gaussian(N, N, Rng);
  for (auto _ : State) {
    linalg::Matrix T = A.transposed();
    benchmark::DoNotOptimize(T.data().data());
  }
}
BENCHMARK(BM_MatrixTranspose)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

//===----------------------------------------------------------------------===//
// Serving kernels: compiled vs interpreted decisions from one trained
// sort1 model (memoized features -- the steady serving state the
// acceptance bar measures; `pbt-bench serve` reports the same ratio over
// whole batches).
//===----------------------------------------------------------------------===//

namespace {
struct ServeFixture {
  registry::ProgramPtr Program;
  runtime::PredictionService Service;
  std::vector<size_t> Rows;
};

ServeFixture &serveFixture() {
  static ServeFixture *F = [] {
    auto *S = new ServeFixture();
    const registry::BenchmarkFactory &Fac =
        registry::BenchmarkRegistry::instance().get("sort1");
    const double Scale = 0.1;
    S->Program = Fac.makeProgram(Scale, Fac.defaultProgramSeed());
    core::TrainedSystem System =
        core::trainSystem(*S->Program, Fac.defaultOptions(Scale));
    serialize::TrainedModel Model =
        serialize::makeModel("sort1", Scale, Fac.defaultProgramSeed(),
                             *S->Program, std::move(System));
    S->Service = runtime::PredictionService(std::move(Model));
    S->Service.bind(*S->Program);
    S->Rows = S->Service.model().System.TestRows;
    for (size_t Row : S->Rows)
      S->Service.decide(Row); // warm the feature memo
    return S;
  }();
  return *F;
}
} // namespace

/// The served hot path: decide() on warm inputs, i.e. decision-cache
/// hits. This is what a deployment pays for repeat traffic.
static void BM_ServeDecideCompiled(benchmark::State &State) {
  ServeFixture &F = serveFixture();
  size_t I = 0;
  for (auto _ : State) {
    runtime::PredictionService::Decision D =
        F.Service.decide(F.Rows[I++ % F.Rows.size()]);
    benchmark::DoNotOptimize(D.Landmark);
  }
}
BENCHMARK(BM_ServeDecideCompiled);

static void BM_ServeDecideInterpreted(benchmark::State &State) {
  ServeFixture &F = serveFixture();
  size_t I = 0;
  for (auto _ : State) {
    runtime::PredictionService::Decision D =
        F.Service.decideInterpreted(F.Rows[I++ % F.Rows.size()]);
    benchmark::DoNotOptimize(D.Landmark);
  }
}
BENCHMARK(BM_ServeDecideInterpreted);

/// Classifier-only pair (decision cache bypassed): the compiled arena
/// walk vs the polymorphic classifier over the same recorded feature
/// table -- the regression signal for the lowering itself.
static void BM_ClassifyCompiled(benchmark::State &State) {
  ServeFixture &F = serveFixture();
  const runtime::CompiledModel &M = F.Service.compiled();
  const linalg::Matrix &Features = F.Service.model().System.L1.Features;
  runtime::CompiledModel::Scratch S = M.makeScratch();
  size_t I = 0;
  for (auto _ : State) {
    size_t Row = F.Rows[I++ % F.Rows.size()];
    unsigned L = M.decideProduction(
        S, [&Features, Row](unsigned Flat) { return Features.at(Row, Flat); });
    benchmark::DoNotOptimize(L);
  }
}
BENCHMARK(BM_ClassifyCompiled);

static void BM_ClassifyInterpreted(benchmark::State &State) {
  ServeFixture &F = serveFixture();
  const core::TrainedSystem &System = F.Service.model().System;
  size_t I = 0;
  for (auto _ : State) {
    size_t Row = F.Rows[I++ % F.Rows.size()];
    core::FeatureProbe Probe =
        core::probeFromTable(System.L1.Features, System.L1.ExtractCosts, Row);
    unsigned L = System.L2.Production->classify(Probe);
    benchmark::DoNotOptimize(L);
  }
}
BENCHMARK(BM_ClassifyInterpreted);

//===----------------------------------------------------------------------===//
// Pipeline parallelism: sequential vs ThreadPool-backed training and
// evaluation of a small registry suite entry. The pooled variant must be
// bitwise-identical in results (covered by tests); this measures the
// wall-clock effect on multi-core hosts.
//===----------------------------------------------------------------------===//

static void BM_PipelineTrain(benchmark::State &State, bool Pooled,
                             bool FastPath) {
  const double Scale = 0.2; // small: ~32 inputs, 5 landmarks
  // Pool lives outside the timed loop (and only for the pooled variant)
  // so the comparison measures the pipeline, not thread startup.
  std::optional<support::ThreadPool> Pool;
  if (Pooled)
    Pool.emplace();
  bench::setSortSimulation(FastPath);
  for (auto _ : State) {
    std::vector<registry::SuiteEntry> Suite = registry::makeSuite(
        {"sort2"}, Scale, Pooled ? &*Pool : nullptr);
    registry::SuiteEntry &E = Suite.front();
    E.Options.L1.Tuner.Memoize = FastPath;
    E.Options.L1.DedupMeasurementSweep = FastPath;
    E.Options.L2.UseDataset = FastPath;
    core::TrainedSystem System = core::trainSystem(*E.Program, E.Options);
    core::EvaluationResult R =
        core::evaluateSystem(*E.Program, System, E.Options.Pool);
    benchmark::DoNotOptimize(R.TwoLevelWithFeat);
  }
  bench::setSortSimulation(true);
  State.counters["threads"] =
      Pooled ? support::ThreadPool::hardwareThreads() : 1;
}
BENCHMARK_CAPTURE(BM_PipelineTrain, sequential, false, true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PipelineTrain, pooled, true, true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PipelineTrain, sequential_legacy, false, false)
    ->Unit(benchmark::kMillisecond);

/// The Level-2 classifier zoo alone (the tentpole's core refactor): one
/// trained Level-1 fixture, the full cross-validated candidate sweep per
/// iteration -- row-major reference vs the columnar ml::Dataset path
/// (presorted tree fits, direct-column scoring, fitted-tree eval cache).
static void BM_LevelTwoZoo(benchmark::State &State, bool UseDataset) {
  struct ZooFixture {
    registry::ProgramPtr Program;
    core::PipelineOptions Options;
    std::vector<size_t> TrainRows;
    core::LevelOneResult L1;
  };
  static ZooFixture *F = [] {
    auto *Z = new ZooFixture();
    std::vector<registry::SuiteEntry> Suite =
        registry::makeSuite({"sort2"}, 0.2, nullptr);
    Z->Program = std::move(Suite.front().Program);
    Z->Options = Suite.front().Options;
    support::Rng SplitRng(Z->Options.SplitSeed);
    ml::FoldSplit Split = ml::trainTestSplit(
        Z->Program->numInputs(), Z->Options.TrainFraction, SplitRng);
    Z->TrainRows = std::move(Split.Train);
    Z->L1 = core::runLevelOne(*Z->Program, Z->TrainRows, Z->Options.L1);
    return Z;
  }();
  core::LevelTwoOptions L2 = F->Options.L2;
  L2.UseDataset = UseDataset;
  for (auto _ : State) {
    core::LevelTwoResult R =
        core::runLevelTwo(*F->Program, F->L1, F->TrainRows, L2);
    benchmark::DoNotOptimize(R.SelectedName.data());
  }
}
BENCHMARK_CAPTURE(BM_LevelTwoZoo, dataset, true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_LevelTwoZoo, legacy, false)
    ->Unit(benchmark::kMillisecond);

/// OutDir-qualified path of the machine-readable kernels record.
static std::string kernelsJsonPath(const benchharness::DriverOptions &Opts) {
  if (Opts.OutDir.empty() || Opts.OutDir == ".")
    return "BENCH_kernels.json";
  return Opts.OutDir + "/BENCH_kernels.json";
}

int pbt::benchharness::runKernels(const DriverOptions &Opts, int Argc,
                                  char **Argv) {
  // --json lowers to google-benchmark's own JSON reporter so the file
  // carries full per-benchmark timings. google-benchmark's flag parsing
  // is last-occurrence-wins, so our flags are inserted *before* the
  // user's passthrough args: an explicit --benchmark_out still wins.
  std::vector<char *> Args;
  Args.push_back(Argv[0]);
  std::string OutFlag, FormatFlag;
  if (Opts.Json) {
    OutFlag = "--benchmark_out=" + kernelsJsonPath(Opts);
    FormatFlag = "--benchmark_out_format=json";
    Args.push_back(OutFlag.data());
    Args.push_back(FormatFlag.data());
  }
  Args.insert(Args.end(), Argv + 1, Argv + Argc);
  int N = static_cast<int>(Args.size());
  benchmark::Initialize(&N, Args.data());
  if (benchmark::ReportUnrecognizedArguments(N, Args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

#else // !PBT_HAVE_GOOGLE_BENCHMARK

#include <cstdio>
#include <string>

int pbt::benchharness::runKernels(const DriverOptions &Opts, int, char **) {
  std::fprintf(stderr,
               "pbt-bench kernels: built without google-benchmark; install "
               "libbenchmark-dev and reconfigure to enable this "
               "subcommand.\n");
  if (Opts.Json) {
    // Perf-trajectory pipelines expect the artifact to exist; emit an
    // explicit "not available" marker instead of silently nothing.
    std::string Path = (Opts.OutDir.empty() || Opts.OutDir == ".")
                           ? std::string("BENCH_kernels.json")
                           : Opts.OutDir + "/BENCH_kernels.json";
    if (FILE *Out = std::fopen(Path.c_str(), "wb")) {
      std::fputs("{\"available\": false, "
                 "\"reason\": \"built without google-benchmark\"}\n",
                 Out);
      std::fclose(Out);
      return 0;
    }
  }
  return 2;
}

#endif // PBT_HAVE_GOOGLE_BENCHMARK

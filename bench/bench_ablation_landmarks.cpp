//===- bench/bench_ablation_landmarks.cpp - K-means vs random landmarks -----==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the in-text claim of Section 3.1: choosing tuning
/// representatives by K-means centroids beats choosing them uniformly at
/// random, especially at small landmark counts ("with 5 configurations,
/// uniformly picked landmarks result in 41% degradation of performance
/// than selection with kmeans. As the number of configurations increases,
/// the gap shrinks.").
///
/// For each landmark count we train both variants and compare the dynamic
/// oracle speedup achievable with the resulting landmarks (isolating
/// landmark quality from classifier effects).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Table.h"

#include <cstdio>

using namespace pbt;
using namespace pbt::benchharness;

int main() {
  double Scale = scaleFromEnv();
  support::ThreadPool Pool;

  for (const std::string &Name : {std::string("sort2"),
                                  std::string("clustering2")}) {
    support::TextTable Table;
    Table.setHeader({"landmarks", "kmeans-selected", "random-selected",
                     "degradation"});
    for (unsigned K : {2u, 5u, 8u, 12u}) {
      double SpeedKMeans = 0.0, SpeedRandom = 0.0;
      for (core::LandmarkSelection Sel :
           {core::LandmarkSelection::KMeansCentroids,
            core::LandmarkSelection::UniformRandom}) {
        std::vector<SuiteEntry> Suite = makeSuiteSubset({Name}, Scale, &Pool);
        SuiteEntry &E = Suite.front();
        E.Options.L1.NumLandmarks = K;
        E.Options.L1.Selection = Sel;
        core::TrainedSystem System = core::trainSystem(*E.Program, E.Options);
        core::EvaluationResult R = core::evaluateSystem(*E.Program, System);
        if (Sel == core::LandmarkSelection::KMeansCentroids)
          SpeedKMeans = R.DynamicOracle;
        else
          SpeedRandom = R.DynamicOracle;
      }
      double Degradation =
          SpeedKMeans > 0.0 ? (SpeedKMeans - SpeedRandom) / SpeedKMeans : 0.0;
      Table.addRow({std::to_string(K), support::formatSpeedup(SpeedKMeans),
                    support::formatSpeedup(SpeedRandom),
                    support::formatPercent(Degradation)});
    }
    std::printf("Ablation E5 (%s): landmark selection strategy "
                "(dynamic-oracle speedup over the static oracle)\n\n%s\n",
                Name.c_str(), Table.format().c_str());
  }
  std::printf("Shape check: random selection degrades small landmark "
              "counts most; the gap shrinks as counts grow "
              "(PBT_BENCH_SCALE=%.2f).\n",
              Scale);
  return 0;
}

//===- bench/PbtBench.cpp - The unified experiment driver ------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `pbt-bench <subcommand> [options]` reproduces the paper's experiments
/// over the benchmarks enumerated by the BenchmarkRegistry:
///
///   list                the registered workload catalog
///   table1              Table 1 speedup/satisfaction summary
///   fig6                per-input speedup distributions
///   fig7                closed-form landmark model curves
///   fig8                speedup vs landmark count sweep
///   ablation-eta        cost-matrix blend factor sweep
///   ablation-landmarks  K-means vs random landmark selection
///   ablation-twolevel   refinement disparity + classifier zoo
///   kernels             google-benchmark substrate micro-benchmarks
///
/// Shared options: --scale=S (or PBT_BENCH_SCALE), --only=a,b,c,
/// --threads=N, --sequential, --out-dir=DIR, --trials=N. Unrecognised
/// arguments of `kernels` pass through to google-benchmark.
///
//===----------------------------------------------------------------------===//

#include "Reports.h"

#include "support/ParseNumber.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

using namespace pbt;
using namespace pbt::benchharness;

static void printUsage() {
  std::fprintf(
      stderr,
      "usage: pbt-bench <subcommand> [options]\n"
      "\n"
      "subcommands:\n"
      "  list                 enumerate the registered benchmarks\n"
      "  table1               paper Table 1 (speedups over static oracle)\n"
      "  fig6                 paper Figure 6 (per-input speedup spread)\n"
      "  fig7                 paper Figure 7 (closed-form landmark model)\n"
      "  fig8                 paper Figure 8 (speedup vs landmark count)\n"
      "  ablation-eta         Section 3.2 cost-matrix blend sweep\n"
      "  ablation-landmarks   Section 3.1 landmark selection ablation\n"
      "  ablation-twolevel    Section 4.2 second-level evidence\n"
      "  kernels              substrate micro-benchmarks (google-benchmark)\n"
      "  train                train once, persist models for `predict`\n"
      "  predict              serve per-input decisions from a saved model\n"
      "  serve                compiled-path serving throughput/latency report\n"
      "  stream               nonstationary-traffic adaptation report;\n"
      "                       with --mix, a multi-tenant mixed-schedule\n"
      "                       replay through the daemon model registry\n"
      "  interact             input-vs-config interaction-strength sweep;\n"
      "                       BENCH_interact.json report\n"
      "  trainbench           training-performance report: fast vs\n"
      "                       pre-optimisation path, byte-identity gated\n"
      "  loadgen              drive a pbt-serve daemon over N concurrent\n"
      "                       connections; BENCH_serve_daemon.json report\n"
      "  rollout              staged fleet-rollout harness over the crash-\n"
      "                       safe model store; with --faults, kill-during-\n"
      "                       publish crash injection + recovery timing;\n"
      "                       BENCH_rollout.json report\n"
      "  fleet                supervised cross-process serving fleet: real\n"
      "                       pbt-serve replicas under restart/backoff\n"
      "                       supervision with client failover; with\n"
      "                       --chaos, the SIGKILL wall (parity + no lost\n"
      "                       answers + reconvergence); BENCH_fleet.json\n"
      "\n"
      "options:\n"
      "  --scale=S            input-count scale (default: PBT_BENCH_SCALE or 1)\n"
      "  --only=a,b,c         restrict to named benchmarks (see `list`)\n"
      "  --threads=N          worker threads (default: hardware concurrency)\n"
      "  --sequential         disable the thread pool (reference path)\n"
      "  --out-dir=DIR        directory for CSV series and models (default: .)\n"
      "  --trials=N           random subsets per fig8 landmark count\n"
      "  --out=FILE           train: model path (single benchmark only)\n"
      "  --model=FILE[,FILE]  predict/serve: model file(s) to serve from\n"
      "                       (serve accepts a comma-separated list)\n"
      "  --rows=WHICH         predict/serve: test|train|all recorded rows\n"
      "  --repeat=N           predict: passes over the rows (memo check);\n"
      "                       trainbench: timing passes per path (best-of)\n"
      "  --csv=FILE           predict: write per-input decisions as CSV\n"
      "  --batch=N            serve: decisions per decideBatch call\n"
      "  --seconds=S          serve: wall-clock budget per phase;\n"
      "                       stream: wall-clock cap per serving loop\n"
      "  --json               serve/stream/kernels: also write\n"
      "                       BENCH_<sub>.json into --out-dir\n"
      "  --schedule=KIND      stream: abrupt|ramp|periodic mixture\n"
      "  --requests=N         stream: request count (the deterministic\n"
      "                       bound; default 2000)\n"
      "  --stream-seed=N      stream: request-sequence seed\n"
      "  --key=P              stream: drift-key feature property index\n"
      "  --period=N           stream: periodic half-period in requests\n"
      "  --window=N           stream: drift-monitor window length\n"
      "  --reservoir=N        stream: retrain reservoir capacity\n"
      "                       (stream --scale overrides the model's\n"
      "                       recorded scale for the traffic universe)\n"
      "  --mix                stream: serve --model=a.pbt,b.pbt,... as\n"
      "                       tenants of one interleaved multi-tenant\n"
      "                       stream (BENCH_stream_mix.json report)\n"
      "  --socket=PATH        loadgen: Unix socket of a running pbt-serve\n"
      "  --spawn              loadgen: spawn a private pbt-serve for the\n"
      "                       run (needs --model; shut down afterwards)\n"
      "  --server-exe=PATH    loadgen: pbt-serve binary for --spawn\n"
      "                       (default: pbt-serve beside pbt-bench)\n"
      "  --connections=N      loadgen: concurrent client connections\n"
      "  --queue=N            loadgen --spawn: server request-queue bound\n"
      "  --workers=N          loadgen --spawn: server batch workers\n"
      "  --batch-max=N        loadgen --spawn: server micro-batch cap\n"
      "  --adapt              loadgen --spawn: per-tenant drift adaptation\n"
      "  --replicas=N         rollout: simulated serving replicas (default 3)\n"
      "  --cycles=N           rollout: staged rollout cycles (default 8)\n"
      "  --faults             rollout: arm one randomized failpoint per\n"
      "                       cycle (crash/corruption injection)\n"
      "  --fault-seed=N       rollout: failpoint-schedule seed\n"
      "  --chaos              fleet: SIGKILL random replicas mid-load and\n"
      "                       assert parity/no-loss/reconvergence\n"
      "  --kills=N            fleet --chaos: randomized kills (default 50)\n"
      "  --transport=KIND     fleet: unix|tcp replica transport\n"
      "\n"
      "`kernels` ignores the other options above; it takes\n"
      "google-benchmark flags (e.g. --benchmark_filter=...) instead.\n");
}

static std::vector<std::string> splitCommas(const std::string &Text) {
  std::vector<std::string> Out;
  size_t Start = 0;
  while (Start <= Text.size()) {
    size_t Comma = Text.find(',', Start);
    if (Comma == std::string::npos)
      Comma = Text.size();
    if (Comma > Start)
      Out.push_back(Text.substr(Start, Comma - Start));
    Start = Comma + 1;
  }
  return Out;
}

enum class ParseResult { Ok, Error, Help };

/// Loud rejection of a malformed numeric value: the checked parsers
/// (support/ParseNumber.h) refuse garbage, half-parses and out-of-range
/// values outright -- `--threads=abc` or `--seconds=1e` is an error and
/// a nonzero exit, never a silent zero.
static ParseResult badValue(const char *Flag, const char *Value,
                            const char *Expect) {
  std::fprintf(stderr, "pbt-bench: bad %s value '%s' (expected %s)\n", Flag,
               Value, Expect);
  return ParseResult::Error;
}

/// Consumes the shared --flag=value options from \p Args, leaving any
/// unrecognised ones (passed through to `kernels`) in place.
static ParseResult parseSharedOptions(std::vector<std::string> &Args,
                                      DriverOptions &Opts) {
  using support::parseDouble;
  using support::parseUint64;
  using support::parseUnsigned;
  std::vector<std::string> Rest;
  for (const std::string &Arg : Args) {
    auto Value = [&](const char *Flag) -> const char * {
      size_t Len = std::strlen(Flag);
      if (Arg.compare(0, Len, Flag) == 0 && Arg.size() > Len &&
          Arg[Len] == '=')
        return Arg.c_str() + Len + 1;
      return nullptr;
    };
    if (const char *V = Value("--scale")) {
      double S = 0.0;
      if (!parseDouble(V, S) || S <= 0.0)
        return badValue("--scale", V, "a positive number");
      Opts.Scale = std::clamp(S, 0.1, 100.0);
      Opts.ScaleExplicit = true;
    } else if (const char *V = Value("--only")) {
      Opts.Only = splitCommas(V);
      if (Opts.Only.empty()) {
        std::fprintf(stderr,
                     "pbt-bench: --only requires at least one benchmark "
                     "name (see `pbt-bench list`)\n");
        return ParseResult::Error;
      }
    } else if (const char *V = Value("--threads")) {
      if (!parseUnsigned(V, Opts.Threads))
        return badValue("--threads", V, "a non-negative integer");
    } else if (Arg == "--sequential") {
      Opts.Sequential = true;
    } else if (const char *V = Value("--out-dir")) {
      Opts.OutDir = V;
    } else if (const char *V = Value("--trials")) {
      if (!parseUnsigned(V, Opts.Fig8Trials) || Opts.Fig8Trials < 1)
        return badValue("--trials", V, "a positive integer");
    } else if (const char *V = Value("--out")) {
      Opts.Out = V;
    } else if (const char *V = Value("--model")) {
      Opts.Model = V;
    } else if (const char *V = Value("--rows")) {
      Opts.Rows = V;
    } else if (const char *V = Value("--repeat")) {
      if (!parseUnsigned(V, Opts.Repeat) || Opts.Repeat < 1)
        return badValue("--repeat", V, "a positive integer");
    } else if (const char *V = Value("--csv")) {
      Opts.Csv = V;
    } else if (const char *V = Value("--batch")) {
      if (!parseUnsigned(V, Opts.Batch) || Opts.Batch < 1)
        return badValue("--batch", V, "a positive integer");
    } else if (const char *V = Value("--seconds")) {
      double S = 0.0;
      if (!parseDouble(V, S) || S <= 0.0)
        return badValue("--seconds", V, "a positive number");
      Opts.Seconds = S;
    } else if (Arg == "--json") {
      Opts.Json = true;
    } else if (const char *V = Value("--schedule")) {
      Opts.StreamSchedule = V;
    } else if (const char *V = Value("--requests")) {
      if (!parseUnsigned(V, Opts.StreamRequests) || Opts.StreamRequests < 1)
        return badValue("--requests", V, "a positive integer");
    } else if (const char *V = Value("--stream-seed")) {
      if (!parseUint64(V, Opts.StreamSeed))
        return badValue("--stream-seed", V, "an unsigned integer");
    } else if (const char *V = Value("--key")) {
      if (!parseUnsigned(V, Opts.StreamKey))
        return badValue("--key", V, "a non-negative integer");
    } else if (const char *V = Value("--period")) {
      if (!parseUnsigned(V, Opts.StreamPeriod))
        return badValue("--period", V, "a non-negative integer");
    } else if (const char *V = Value("--window")) {
      if (!parseUnsigned(V, Opts.StreamWindow) || Opts.StreamWindow < 8)
        return badValue("--window", V, "an integer >= 8");
    } else if (const char *V = Value("--reservoir")) {
      if (!parseUnsigned(V, Opts.StreamReservoir) || Opts.StreamReservoir < 8)
        return badValue("--reservoir", V, "an integer >= 8");
    } else if (const char *V = Value("--socket")) {
      Opts.Socket = V;
    } else if (const char *V = Value("--server-exe")) {
      Opts.ServerExe = V;
    } else if (Arg == "--spawn") {
      Opts.Spawn = true;
    } else if (const char *V = Value("--connections")) {
      if (!parseUnsigned(V, Opts.Connections) || Opts.Connections < 1)
        return badValue("--connections", V, "a positive integer");
    } else if (const char *V = Value("--queue")) {
      if (!parseUnsigned(V, Opts.QueueCapacity) || Opts.QueueCapacity < 1)
        return badValue("--queue", V, "a positive integer");
    } else if (const char *V = Value("--workers")) {
      if (!parseUnsigned(V, Opts.Workers) || Opts.Workers < 1)
        return badValue("--workers", V, "a positive integer");
    } else if (const char *V = Value("--batch-max")) {
      if (!parseUnsigned(V, Opts.BatchMax) || Opts.BatchMax < 1)
        return badValue("--batch-max", V, "a positive integer");
    } else if (Arg == "--mix") {
      Opts.StreamMix = true;
    } else if (Arg == "--adapt") {
      Opts.Adapt = true;
    } else if (const char *V = Value("--replicas")) {
      if (!parseUnsigned(V, Opts.Replicas) || Opts.Replicas < 1)
        return badValue("--replicas", V, "a positive integer");
    } else if (const char *V = Value("--cycles")) {
      if (!parseUnsigned(V, Opts.Cycles) || Opts.Cycles < 1)
        return badValue("--cycles", V, "a positive integer");
    } else if (Arg == "--faults") {
      Opts.Faults = true;
    } else if (const char *V = Value("--fault-seed")) {
      if (!parseUint64(V, Opts.FaultSeed))
        return badValue("--fault-seed", V, "an unsigned integer");
    } else if (Arg == "--chaos") {
      Opts.Chaos = true;
    } else if (const char *V = Value("--kills")) {
      if (!parseUnsigned(V, Opts.Kills) || Opts.Kills < 1)
        return badValue("--kills", V, "a positive integer");
    } else if (const char *V = Value("--transport")) {
      Opts.FleetTransport = V;
      if (Opts.FleetTransport != "unix" && Opts.FleetTransport != "tcp")
        return badValue("--transport", V, "unix or tcp");
    } else if (Arg == "--help" || Arg == "-h") {
      printUsage();
      return ParseResult::Help;
    } else {
      Rest.push_back(Arg);
    }
  }
  Args = std::move(Rest);
  return ParseResult::Ok;
}

int main(int argc, char **argv) {
  if (argc < 2) {
    printUsage();
    return 1;
  }
  std::string Sub = argv[1];
  if (Sub == "help" || Sub == "--help" || Sub == "-h") {
    printUsage();
    return 0;
  }
  std::vector<std::string> Args(argv + 2, argv + argc);

  DriverOptions Opts;
  Opts.Scale = registry::scaleFromEnv();
  switch (parseSharedOptions(Args, Opts)) {
  case ParseResult::Ok:
    break;
  case ParseResult::Help:
    return 0;
  case ParseResult::Error:
    return 1;
  }
  if (!Opts.OutDir.empty() && Opts.OutDir != ".") {
    std::error_code EC;
    std::filesystem::create_directories(Opts.OutDir, EC);
    if (EC) {
      std::fprintf(stderr, "pbt-bench: cannot create --out-dir '%s': %s\n",
                   Opts.OutDir.c_str(), EC.message().c_str());
      return 1;
    }
  }

  // Everything except `kernels` must have consumed all arguments.
  if (Sub != "kernels" && !Args.empty()) {
    std::fprintf(stderr, "pbt-bench %s: unknown argument '%s'\n", Sub.c_str(),
                 Args.front().c_str());
    printUsage();
    return 1;
  }

  try {
    if (Sub == "list") {
      return runList(Opts);
    } else if (Sub == "fig7") {
      // Pure model evaluation; no programs, no pool.
      return runFig7(Opts);
    } else if (Sub == "predict") {
      // Online serving is deliberately single-threaded and cheap.
      return runPredict(Opts);
    } else if (Sub == "kernels") {
      // google-benchmark owns the remaining argv (argv[0] + passthrough).
      std::vector<char *> KArgv;
      KArgv.push_back(argv[0]);
      for (std::string &A : Args)
        KArgv.push_back(A.data());
      int KArgc = static_cast<int>(KArgv.size());
      return runKernels(Opts, KArgc, KArgv.data());
    }

    // The remaining subcommands train pipelines or serve batches: give
    // them the pool (not constructed at all under --sequential).
    std::optional<support::ThreadPool> Pool;
    if (!Opts.Sequential) {
      Pool.emplace(Opts.Threads);
      Opts.Pool = &*Pool;
    }

    if (Sub == "serve")
      return runServe(Opts);
    if (Sub == "loadgen")
      return runLoadgen(Opts, argv[0]);
    if (Sub == "rollout")
      return runRollout(Opts);
    if (Sub == "fleet")
      return runFleet(Opts, argv[0]);
    if (Sub == "stream")
      return Opts.StreamMix ? runStreamMix(Opts) : runStream(Opts);
    if (Sub == "interact")
      return runInteract(Opts);
    if (Sub == "train")
      return runTrain(Opts);
    if (Sub == "trainbench")
      return runTrainBench(Opts);
    if (Sub == "table1")
      return runTable1(Opts);
    if (Sub == "fig6")
      return runFig6(Opts);
    if (Sub == "fig8")
      return runFig8(Opts);
    if (Sub == "ablation-eta")
      return runAblationEta(Opts);
    if (Sub == "ablation-landmarks")
      return runAblationLandmarks(Opts);
    if (Sub == "ablation-twolevel")
      return runAblationTwoLevel(Opts);
  } catch (const std::exception &E) {
    std::fprintf(stderr, "pbt-bench %s: %s\n", Sub.c_str(), E.what());
    return 1;
  }

  std::fprintf(stderr, "pbt-bench: unknown subcommand '%s'\n", Sub.c_str());
  printUsage();
  return 1;
}

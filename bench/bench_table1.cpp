//===- bench/bench_table1.cpp - Reproduces the paper's Table 1 --------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 1: mean speedup over the static oracle for the
/// dynamic oracle, the two-level method (with and without feature
/// extraction time) and the one-level baseline (with and without feature
/// extraction time), plus the one-level accuracy-satisfaction rate, on
/// all eight test instances.
///
/// Absolute numbers differ from the paper (deterministic cost model,
/// reduced scale); the shape to check: two-level always close to the
/// dynamic oracle and at/above 1x; one-level collapsing once feature
/// extraction cost is charged and/or missing accuracy targets.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Table.h"

#include <cstdio>

using namespace pbt;
using namespace pbt::benchharness;

int main() {
  double Scale = scaleFromEnv();
  support::ThreadPool Pool;
  std::vector<SuiteEntry> Suite = makeStandardSuite(Scale, &Pool);

  support::TextTable Table;
  Table.setHeader({"Benchmark", "Dynamic", "Two-level", "Two-level",
                   "One-level", "One-level", "One-level", "Two-level"});
  support::TextTable Units;
  Table.addRow({"", "Oracle", "(w/o feat.)", "(w/ feat.)", "(w/o feat.)",
                "(w/ feat.)", "accuracy", "accuracy"});

  support::WallTimer Total;
  for (SuiteEntry &E : Suite) {
    support::WallTimer T;
    core::TrainedSystem System = core::trainSystem(*E.Program, E.Options);
    core::EvaluationResult R = core::evaluateSystem(*E.Program, System);
    std::fprintf(stderr, "[table1] %-12s trained+evaluated in %.1fs "
                         "(K=%zu landmarks, %zu train, %zu test, "
                         "oracle-sat %.0f%%, static-sat %.0f%%)\n",
                 E.Name.c_str(), T.elapsedSeconds(),
                 System.L1.Landmarks.size(), System.TrainRows.size(),
                 System.TestRows.size(), 100.0 * R.DynamicOracleSatisfaction,
                 100.0 * R.StaticOracleSatisfaction);

    bool HasAccuracy = E.Program->accuracy().has_value();
    Table.addRow({E.Name, support::formatSpeedup(R.DynamicOracle),
                  support::formatSpeedup(R.TwoLevelNoFeat),
                  support::formatSpeedup(R.TwoLevelWithFeat),
                  support::formatSpeedup(R.OneLevelNoFeat),
                  support::formatSpeedup(R.OneLevelWithFeat),
                  HasAccuracy ? support::formatPercent(R.OneLevelSatisfaction)
                              : std::string("-"),
                  HasAccuracy ? support::formatPercent(R.TwoLevelSatisfaction)
                              : std::string("-")});
  }

  std::printf("Table 1: mean speedup over the static oracle "
              "(PBT_BENCH_SCALE=%.2f)\n\n%s\n",
              Scale, Table.format().c_str());
  std::printf("Total wall time: %.1fs\n", Total.elapsedSeconds());
  return 0;
}

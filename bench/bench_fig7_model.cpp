//===- bench/bench_fig7_model.cpp - Reproduces the paper's Figure 7 ---------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 7 from the closed-form model of Section 4.3:
///
///   (a) the expected speedup loss contributed by an input-space region
///       as a function of its size, for 2..9 sampled configurations --
///       each curve peaks at the worst-case region size 1/(k+1);
///   (b) the predicted fraction of the full speedup achieved with k
///       landmark configurations under worst-case region sizes -- the
///       diminishing-returns curve.
///
/// Pure model evaluation; no program runs. Series are printed and written
/// to fig7a.csv / fig7b.csv.
///
//===----------------------------------------------------------------------===//

#include "core/TheoreticalModel.h"
#include "support/Table.h"

#include <cstdio>
#include <string>

using namespace pbt;
using namespace pbt::core;

int main() {
  // --- Figure 7a ---
  support::CsvWriter CsvA;
  {
    std::vector<std::string> Header{"region_size"};
    for (unsigned K = 2; K <= 9; ++K)
      Header.push_back("loss_k" + std::to_string(K));
    CsvA.setHeader(Header);
  }
  support::TextTable A;
  A.setHeader({"p", "k=2", "k=3", "k=4", "k=5", "k=6", "k=7", "k=8", "k=9"});
  for (double P = 0.0; P <= 1.0001; P += 0.05) {
    std::vector<std::string> Row{support::formatDouble(P, 2)};
    std::vector<std::string> CsvRow{support::formatDouble(P, 4)};
    for (unsigned K = 2; K <= 9; ++K) {
      double L = regionLossContribution(P, K);
      Row.push_back(support::formatDouble(L, 4));
      CsvRow.push_back(support::formatDouble(L, 6));
    }
    A.addRow(Row);
    CsvA.addRow(CsvRow);
  }
  CsvA.writeFile("fig7a.csv");

  std::printf("Figure 7a: predicted loss in speedup contributed by input "
              "space regions of different sizes\n\n%s\n",
              A.format().c_str());
  for (unsigned K = 2; K <= 9; ++K)
    std::printf("  worst-case region size for k=%u configs: 1/(k+1) = %.4f\n",
                K, worstCaseRegionSize(K));

  // --- Figure 7b ---
  support::TextTable B;
  B.setHeader({"landmarks", "predicted fraction of full speedup"});
  support::CsvWriter CsvB;
  CsvB.setHeader({"landmarks", "fraction"});
  for (unsigned K = 1; K <= 100; ++K) {
    double F = predictedSpeedupFraction(K);
    if (K <= 10 || K % 10 == 0)
      B.addRow({std::to_string(K), support::formatDouble(F, 4)});
    CsvB.addRow({std::to_string(K), support::formatDouble(F, 6)});
  }
  CsvB.writeFile("fig7b.csv");

  std::printf("\nFigure 7b: predicted speedup (worst-case region sizes) vs "
              "number of landmarks\n\n%s\n",
              B.format().c_str());
  std::printf("Shape check: steep gains up to ~10 landmarks, saturation "
              "after ~10-30 (the paper's diminishing-returns argument).\n");
  return 0;
}

//===- bench/BenchCommon.h - Shared harness for the paper's experiments ----==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the paper's eight test instances (sort1, sort2, clustering1,
/// clustering2, binpacking, svd, poisson2d, helmholtz3d) at a laptop-scale
/// default, with every count scalable through the PBT_BENCH_SCALE
/// environment variable (e.g. PBT_BENCH_SCALE=2 doubles input counts and
/// landmark counts towards the paper's original scale).
///
//===----------------------------------------------------------------------===//

#ifndef PBT_BENCH_BENCHCOMMON_H
#define PBT_BENCH_BENCHCOMMON_H

#include "core/Pipeline.h"
#include "runtime/TunableProgram.h"
#include "support/ThreadPool.h"

#include <memory>
#include <string>
#include <vector>

namespace pbt {
namespace benchharness {

/// One of the paper's eight evaluation rows.
struct SuiteEntry {
  std::string Name;
  std::unique_ptr<runtime::TunableProgram> Program;
  core::PipelineOptions Options;
};

/// Reads PBT_BENCH_SCALE (default 1.0, clamped to [0.1, 100]).
double scaleFromEnv();

/// Builds the full eight-benchmark suite. \p Pool is wired into every
/// pipeline's Level-1 options (may be null).
std::vector<SuiteEntry> makeStandardSuite(double Scale,
                                          support::ThreadPool *Pool);

/// Builds a subset of the suite by name (for the focused ablations).
std::vector<SuiteEntry> makeSuiteSubset(const std::vector<std::string> &Names,
                                        double Scale,
                                        support::ThreadPool *Pool);

} // namespace benchharness
} // namespace pbt

#endif // PBT_BENCH_BENCHCOMMON_H

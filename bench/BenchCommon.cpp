//===- bench/BenchCommon.cpp --------------------------------------------------=//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "benchmarks/BinPackingBenchmark.h"
#include "benchmarks/ClusteringBenchmark.h"
#include "benchmarks/Helmholtz3DBenchmark.h"
#include "benchmarks/Poisson2DBenchmark.h"
#include "benchmarks/SVDBenchmark.h"
#include "benchmarks/SortBenchmark.h"

#include <algorithm>
#include <cstdlib>

using namespace pbt;
using namespace pbt::benchharness;

double benchharness::scaleFromEnv() {
  const char *Env = std::getenv("PBT_BENCH_SCALE");
  if (!Env)
    return 1.0;
  double Scale = std::atof(Env);
  if (Scale <= 0.0)
    return 1.0;
  return std::clamp(Scale, 0.1, 100.0);
}

/// Shared pipeline defaults; landmark count scales with sqrt of the input
/// scale so the evidence table stays roughly linear in Scale.
static core::PipelineOptions pipelineOptions(double Scale,
                                             support::ThreadPool *Pool,
                                             uint64_t Seed) {
  core::PipelineOptions O;
  O.L1.NumLandmarks = std::max<unsigned>(
      4, static_cast<unsigned>(12.0 * std::sqrt(Scale)));
  O.L1.Seed = Seed;
  O.L1.Tuner.PopulationSize = 14;
  O.L1.Tuner.Generations = 10;
  // Tune each landmark against a neighbourhood of its centroid so
  // variable-accuracy configurations stay safe on unseen cluster members;
  // this is what makes adaptive classifiers (not just static-best)
  // clear the satisfaction threshold at reduced scale.
  O.L1.TuningNeighborhood = 6;
  O.L1.Pool = Pool;
  O.L2.CVFolds = 5;
  O.L2.Seed = Seed ^ 0xABCDEF;
  // Shallow trees generalise better at laptop-scale training-set sizes,
  // keeping cross-validated satisfaction honest.
  O.L2.Tree.MaxDepth = 8;
  O.L2.Tree.MinSamplesLeaf = 3;
  O.TrainFraction = 0.5;
  O.SplitSeed = Seed * 31 + 7;
  return O;
}

static size_t scaled(double Scale, size_t Base) {
  return std::max<size_t>(24, static_cast<size_t>(Base * Scale));
}

std::vector<SuiteEntry>
benchharness::makeStandardSuite(double Scale, support::ThreadPool *Pool) {
  std::vector<SuiteEntry> Suite;

  {
    bench::SortBenchmark::Options O;
    O.Data = bench::SortBenchmark::Dataset::RegistryLike;
    O.NumInputs = scaled(Scale, 160);
    O.MinSize = 256;
    O.MaxSize = 2048;
    O.Seed = 101;
    Suite.push_back({"sort1", std::make_unique<bench::SortBenchmark>(O),
                     pipelineOptions(Scale, Pool, 1001)});
  }
  {
    bench::SortBenchmark::Options O;
    O.Data = bench::SortBenchmark::Dataset::SyntheticMix;
    O.NumInputs = scaled(Scale, 160);
    O.MinSize = 256;
    O.MaxSize = 2048;
    O.Seed = 102;
    Suite.push_back({"sort2", std::make_unique<bench::SortBenchmark>(O),
                     pipelineOptions(Scale, Pool, 1002)});
  }
  {
    bench::ClusteringBenchmark::Options O;
    O.Data = bench::ClusteringBenchmark::Dataset::LatticeMix;
    O.NumInputs = scaled(Scale, 160);
    O.MinPoints = 150;
    O.MaxPoints = 500;
    O.Seed = 103;
    Suite.push_back({"clustering1",
                     std::make_unique<bench::ClusteringBenchmark>(O),
                     pipelineOptions(Scale, Pool, 1003)});
  }
  {
    bench::ClusteringBenchmark::Options O;
    O.Data = bench::ClusteringBenchmark::Dataset::SyntheticMix;
    O.NumInputs = scaled(Scale, 160);
    O.MinPoints = 150;
    O.MaxPoints = 500;
    O.Seed = 104;
    Suite.push_back({"clustering2",
                     std::make_unique<bench::ClusteringBenchmark>(O),
                     pipelineOptions(Scale, Pool, 1004)});
  }
  {
    bench::BinPackingBenchmark::Options O;
    O.NumInputs = scaled(Scale, 200);
    O.MinItems = 64;
    O.MaxItems = 384;
    O.Seed = 105;
    Suite.push_back({"binpacking",
                     std::make_unique<bench::BinPackingBenchmark>(O),
                     pipelineOptions(Scale, Pool, 1005)});
  }
  {
    bench::SVDBenchmark::Options O;
    O.NumInputs = scaled(Scale, 160);
    O.MinDim = 20;
    O.MaxDim = 36;
    O.Seed = 106;
    Suite.push_back({"svd", std::make_unique<bench::SVDBenchmark>(O),
                     pipelineOptions(Scale, Pool, 1006)});
  }
  {
    bench::Poisson2DBenchmark::Options O;
    O.NumInputs = scaled(Scale, 100);
    O.GridN = 33;
    O.Seed = 107;
    Suite.push_back({"poisson2d",
                     std::make_unique<bench::Poisson2DBenchmark>(O),
                     pipelineOptions(Scale, Pool, 1007)});
  }
  {
    bench::Helmholtz3DBenchmark::Options O;
    O.NumInputs = scaled(Scale, 100);
    O.GridN = 9;
    O.Seed = 108;
    Suite.push_back({"helmholtz3d",
                     std::make_unique<bench::Helmholtz3DBenchmark>(O),
                     pipelineOptions(Scale, Pool, 1008)});
  }
  return Suite;
}

std::vector<SuiteEntry>
benchharness::makeSuiteSubset(const std::vector<std::string> &Names,
                              double Scale, support::ThreadPool *Pool) {
  std::vector<SuiteEntry> All = makeStandardSuite(Scale, Pool);
  std::vector<SuiteEntry> Subset;
  for (SuiteEntry &E : All)
    for (const std::string &Name : Names)
      if (E.Name == Name)
        Subset.push_back(std::move(E));
  return Subset;
}

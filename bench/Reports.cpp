//===- bench/Reports.cpp - pbt-bench subcommand implementations -----------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "Reports.h"

#include "core/TheoreticalModel.h"
#include "runtime/PredictionService.h"
#include "serialize/ModelIO.h"
#include "support/Cost.h"
#include "support/Statistics.h"
#include "support/Table.h"

#include <algorithm>
#include <cstdio>

using namespace pbt;
using namespace pbt::benchharness;

std::vector<registry::SuiteEntry>
benchharness::suiteFor(const DriverOptions &Opts) {
  if (Opts.Only.empty())
    return registry::makeSuite(Opts.Scale, Opts.Pool);
  return registry::makeSuite(Opts.Only, Opts.Scale, Opts.Pool);
}

static std::string csvPath(const DriverOptions &Opts, const std::string &Name) {
  if (Opts.OutDir.empty() || Opts.OutDir == ".")
    return Name;
  return Opts.OutDir + "/" + Name;
}

//===----------------------------------------------------------------------===//
// list
//===----------------------------------------------------------------------===//

int benchharness::runList(const DriverOptions &Opts) {
  support::TextTable Table;
  Table.setHeader({"name", "inputs@scale", "description"});
  for (const registry::BenchmarkFactory *F :
       registry::BenchmarkRegistry::instance().all()) {
    registry::ProgramPtr Program =
        F->makeProgram(Opts.Scale, F->defaultProgramSeed());
    Table.addRow({F->name(), std::to_string(Program->numInputs()),
                  F->describe()});
  }
  std::printf("Registered benchmarks (PBT_BENCH_SCALE=%.2f):\n\n%s\n",
              Opts.Scale, Table.format().c_str());
  return 0;
}

//===----------------------------------------------------------------------===//
// table1
//===----------------------------------------------------------------------===//

int benchharness::runTable1(const DriverOptions &Opts) {
  std::vector<registry::SuiteEntry> Suite = suiteFor(Opts);

  support::TextTable Table;
  Table.setHeader({"Benchmark", "Dynamic", "Two-level", "Two-level",
                   "One-level", "One-level", "One-level", "Two-level"});
  Table.addRow({"", "Oracle", "(w/o feat.)", "(w/ feat.)", "(w/o feat.)",
                "(w/ feat.)", "accuracy", "accuracy"});

  support::WallTimer Total;
  for (registry::SuiteEntry &E : Suite) {
    support::WallTimer T;
    core::TrainedSystem System = core::trainSystem(*E.Program, E.Options);
    core::EvaluationResult R =
        core::evaluateSystem(*E.Program, System, Opts.Pool);
    std::fprintf(stderr, "[table1] %-12s trained+evaluated in %.1fs "
                         "(K=%zu landmarks, %zu train, %zu test, "
                         "oracle-sat %.0f%%, static-sat %.0f%%)\n",
                 E.Name.c_str(), T.elapsedSeconds(),
                 System.L1.Landmarks.size(), System.TrainRows.size(),
                 System.TestRows.size(), 100.0 * R.DynamicOracleSatisfaction,
                 100.0 * R.StaticOracleSatisfaction);

    bool HasAccuracy = E.Program->accuracy().has_value();
    Table.addRow({E.Name, support::formatSpeedup(R.DynamicOracle),
                  support::formatSpeedup(R.TwoLevelNoFeat),
                  support::formatSpeedup(R.TwoLevelWithFeat),
                  support::formatSpeedup(R.OneLevelNoFeat),
                  support::formatSpeedup(R.OneLevelWithFeat),
                  HasAccuracy ? support::formatPercent(R.OneLevelSatisfaction)
                              : std::string("-"),
                  HasAccuracy ? support::formatPercent(R.TwoLevelSatisfaction)
                              : std::string("-")});
  }

  std::printf("Table 1: mean speedup over the static oracle "
              "(PBT_BENCH_SCALE=%.2f)\n\n%s\n",
              Opts.Scale, Table.format().c_str());
  std::printf("Total wall time: %.1fs\n", Total.elapsedSeconds());
  return 0;
}

//===----------------------------------------------------------------------===//
// fig6
//===----------------------------------------------------------------------===//

int benchharness::runFig6(const DriverOptions &Opts) {
  std::vector<registry::SuiteEntry> Suite = suiteFor(Opts);

  support::TextTable Table;
  Table.setHeader({"Benchmark", "min", "p25", "median", "p75", "p90", "p99",
                   "max", "mean"});

  for (registry::SuiteEntry &E : Suite) {
    core::TrainedSystem System = core::trainSystem(*E.Program, E.Options);
    core::EvaluationResult R =
        core::evaluateSystem(*E.Program, System, Opts.Pool);
    std::vector<double> S = R.PerInputSpeedups;
    std::sort(S.begin(), S.end());
    std::fprintf(stderr, "[fig6] %-12s %zu test inputs\n", E.Name.c_str(),
                 S.size());

    Table.addRow({E.Name, support::formatSpeedup(support::quantile(S, 0.0)),
                  support::formatSpeedup(support::quantile(S, 0.25)),
                  support::formatSpeedup(support::quantile(S, 0.5)),
                  support::formatSpeedup(support::quantile(S, 0.75)),
                  support::formatSpeedup(support::quantile(S, 0.9)),
                  support::formatSpeedup(support::quantile(S, 0.99)),
                  support::formatSpeedup(support::quantile(S, 1.0)),
                  support::formatSpeedup(support::mean(S))});

    support::CsvWriter Csv;
    Csv.setHeader({"rank", "speedup"});
    for (size_t I = 0; I != S.size(); ++I)
      Csv.addRow({std::to_string(I), support::formatDouble(S[I], 6)});
    Csv.writeFile(csvPath(Opts, "fig6_" + E.Name + ".csv"));
  }

  std::printf("Figure 6: distribution of per-input speedups of the "
              "two-level method over the static oracle\n"
              "(sorted series written to fig6_<benchmark>.csv; "
              "PBT_BENCH_SCALE=%.2f)\n\n%s\n",
              Opts.Scale, Table.format().c_str());
  std::printf("Shape check: per-benchmark max >> median reproduces the "
              "paper's 'small sets of inputs with very large speedups'.\n");
  return 0;
}

//===----------------------------------------------------------------------===//
// fig7 (pure model evaluation; ignores the suite)
//===----------------------------------------------------------------------===//

int benchharness::runFig7(const DriverOptions &Opts) {
  // --- Figure 7a ---
  support::CsvWriter CsvA;
  {
    std::vector<std::string> Header{"region_size"};
    for (unsigned K = 2; K <= 9; ++K)
      Header.push_back("loss_k" + std::to_string(K));
    CsvA.setHeader(Header);
  }
  support::TextTable A;
  A.setHeader({"p", "k=2", "k=3", "k=4", "k=5", "k=6", "k=7", "k=8", "k=9"});
  for (double P = 0.0; P <= 1.0001; P += 0.05) {
    std::vector<std::string> Row{support::formatDouble(P, 2)};
    std::vector<std::string> CsvRow{support::formatDouble(P, 4)};
    for (unsigned K = 2; K <= 9; ++K) {
      double L = core::regionLossContribution(P, K);
      Row.push_back(support::formatDouble(L, 4));
      CsvRow.push_back(support::formatDouble(L, 6));
    }
    A.addRow(Row);
    CsvA.addRow(CsvRow);
  }
  CsvA.writeFile(csvPath(Opts, "fig7a.csv"));

  std::printf("Figure 7a: predicted loss in speedup contributed by input "
              "space regions of different sizes\n\n%s\n",
              A.format().c_str());
  for (unsigned K = 2; K <= 9; ++K)
    std::printf("  worst-case region size for k=%u configs: 1/(k+1) = %.4f\n",
                K, core::worstCaseRegionSize(K));

  // --- Figure 7b ---
  support::TextTable B;
  B.setHeader({"landmarks", "predicted fraction of full speedup"});
  support::CsvWriter CsvB;
  CsvB.setHeader({"landmarks", "fraction"});
  for (unsigned K = 1; K <= 100; ++K) {
    double F = core::predictedSpeedupFraction(K);
    if (K <= 10 || K % 10 == 0)
      B.addRow({std::to_string(K), support::formatDouble(F, 4)});
    CsvB.addRow({std::to_string(K), support::formatDouble(F, 6)});
  }
  CsvB.writeFile(csvPath(Opts, "fig7b.csv"));

  std::printf("\nFigure 7b: predicted speedup (worst-case region sizes) vs "
              "number of landmarks\n\n%s\n",
              B.format().c_str());
  std::printf("Shape check: steep gains up to ~10 landmarks, saturation "
              "after ~10-30 (the paper's diminishing-returns argument).\n");
  return 0;
}

//===----------------------------------------------------------------------===//
// fig8
//===----------------------------------------------------------------------===//

int benchharness::runFig8(const DriverOptions &Opts) {
  std::vector<registry::SuiteEntry> Suite = suiteFor(Opts);
  const unsigned Trials = Opts.Fig8Trials;

  for (registry::SuiteEntry &E : Suite) {
    core::TrainedSystem System = core::trainSystem(*E.Program, E.Options);
    unsigned K = static_cast<unsigned>(System.L1.Landmarks.size());
    std::vector<unsigned> Counts;
    for (unsigned C = 1; C <= K; ++C)
      Counts.push_back(C);
    std::vector<core::LandmarkSweepPoint> Sweep = core::landmarkCountSweep(
        *E.Program, System, Counts, Trials, /*Seed=*/0xF1680 + K, Opts.Pool);

    support::TextTable Table;
    Table.setHeader({"landmarks", "min", "Q1", "median", "Q3", "max"});
    support::CsvWriter Csv;
    Csv.setHeader({"landmarks", "min", "q1", "median", "q3", "max", "mean"});
    for (const core::LandmarkSweepPoint &P : Sweep) {
      Table.addRow({std::to_string(P.NumLandmarks),
                    support::formatSpeedup(P.Speedups.Min),
                    support::formatSpeedup(P.Speedups.Q1),
                    support::formatSpeedup(P.Speedups.Median),
                    support::formatSpeedup(P.Speedups.Q3),
                    support::formatSpeedup(P.Speedups.Max)});
      Csv.addRow({std::to_string(P.NumLandmarks),
                  support::formatDouble(P.Speedups.Min, 6),
                  support::formatDouble(P.Speedups.Q1, 6),
                  support::formatDouble(P.Speedups.Median, 6),
                  support::formatDouble(P.Speedups.Q3, 6),
                  support::formatDouble(P.Speedups.Max, 6),
                  support::formatDouble(P.Speedups.Mean, 6)});
    }
    Csv.writeFile(csvPath(Opts, "fig8_" + E.Name + ".csv"));
    std::printf("Figure 8 (%s): speedup over static oracle vs number of "
                "landmarks (%u random subsets per count)\n\n%s\n",
                E.Name.c_str(), Trials, Table.format().c_str());
  }
  std::printf("Shape check: medians rise steeply for the first few "
              "landmarks and plateau, matching the Figure 7b model "
              "(PBT_BENCH_SCALE=%.2f).\n",
              Opts.Scale);
  return 0;
}

//===----------------------------------------------------------------------===//
// train / predict
//===----------------------------------------------------------------------===//

int benchharness::runTrain(const DriverOptions &Opts) {
  std::vector<registry::SuiteEntry> Suite = suiteFor(Opts);
  if (!Opts.Out.empty() && Suite.size() != 1) {
    std::fprintf(stderr,
                 "pbt-bench train: --out targets a single model; use "
                 "--only=<name> or --out-dir for a whole suite\n");
    return 1;
  }

  support::TextTable Table;
  Table.setHeader({"Benchmark", "landmarks", "selected classifier", "bytes",
                   "model file"});
  for (registry::SuiteEntry &E : Suite) {
    support::WallTimer T;
    core::TrainedSystem System = core::trainSystem(*E.Program, E.Options);
    const registry::BenchmarkFactory &F =
        registry::BenchmarkRegistry::instance().get(E.Name);
    serialize::TrainedModel Model =
        serialize::makeModel(E.Name, Opts.Scale, F.defaultProgramSeed(),
                             *E.Program, std::move(System));
    std::string Path =
        Opts.Out.empty() ? csvPath(Opts, E.Name + ".pbt") : Opts.Out;
    std::string Text = serialize::serializeModel(Model);
    serialize::LoadStatus Saved = serialize::writeModelText(Path, Text);
    if (!Saved) {
      std::fprintf(stderr, "pbt-bench train: %s\n", Saved.Error.c_str());
      return 1;
    }
    size_t Bytes = Text.size();
    std::fprintf(stderr, "[train] %-12s trained+persisted in %.1fs\n",
                 E.Name.c_str(), T.elapsedSeconds());
    Table.addRow({E.Name,
                  std::to_string(Model.System.L1.Landmarks.size()),
                  Model.System.L2.SelectedName, std::to_string(Bytes), Path});
  }
  std::printf("Trained models (format v%u, PBT_BENCH_SCALE=%.2f):\n\n%s\n",
              serialize::kFormatVersion, Opts.Scale, Table.format().c_str());
  std::printf("Serve with: pbt-bench predict --model=<file>\n");
  return 0;
}

int benchharness::runPredict(const DriverOptions &Opts) {
  if (Opts.Model.empty()) {
    std::fprintf(stderr, "pbt-bench predict: --model=FILE is required\n");
    return 1;
  }
  runtime::PredictionService Service;
  serialize::LoadStatus Loaded = Service.loadFile(Opts.Model);
  if (!Loaded) {
    std::fprintf(stderr, "pbt-bench predict: cannot load '%s': %s\n",
                 Opts.Model.c_str(), Loaded.Error.c_str());
    return 1;
  }
  const serialize::TrainedModel &Model = Service.model();

  // Rebuild the exact program the model was trained on from its recorded
  // provenance; the registry key, scale, and seed all live in the file.
  const registry::BenchmarkFactory *Factory =
      registry::BenchmarkRegistry::instance().lookup(Model.Meta.Benchmark);
  if (!Factory) {
    std::fprintf(stderr,
                 "pbt-bench predict: model benchmark '%s' is not registered\n",
                 Model.Meta.Benchmark.c_str());
    return 1;
  }
  registry::ProgramPtr Program =
      Factory->makeProgram(Model.Meta.Scale, Model.Meta.ProgramSeed);
  serialize::LoadStatus Bound = Service.bind(*Program);
  if (!Bound) {
    std::fprintf(stderr, "pbt-bench predict: model/program mismatch: %s\n",
                 Bound.Error.c_str());
    return 1;
  }

  std::vector<size_t> Rows;
  if (Opts.Rows == "test") {
    Rows = Model.System.TestRows;
  } else if (Opts.Rows == "train") {
    Rows = Model.System.TrainRows;
  } else if (Opts.Rows == "all") {
    Rows = Model.System.TrainRows;
    Rows.insert(Rows.end(), Model.System.TestRows.begin(),
                Model.System.TestRows.end());
    std::sort(Rows.begin(), Rows.end());
  } else {
    std::fprintf(stderr,
                 "pbt-bench predict: bad --rows value '%s' "
                 "(test|train|all)\n",
                 Opts.Rows.c_str());
    return 1;
  }

  support::TextTable Table;
  Table.setHeader({"input", "landmark", "feat. cost", "configuration"});
  support::CsvWriter Csv;
  Csv.setHeader({"input", "landmark"});
  unsigned Repeat = std::max(1u, Opts.Repeat);
  for (unsigned Pass = 0; Pass != Repeat; ++Pass) {
    for (size_t Row : Rows) {
      runtime::PredictionService::Decision D = Service.decide(Row);
      if (Pass != 0)
        continue; // later passes only exercise the memo
      Table.addRow({Program->describeInput(Row), std::to_string(D.Landmark),
                    support::formatDouble(D.FeatureCost, 1),
                    Program->describeConfiguration(*D.Config)});
      Csv.addRow({std::to_string(Row), std::to_string(D.Landmark)});
    }
  }
  if (!Opts.Csv.empty() && !Csv.writeFile(Opts.Csv)) {
    std::fprintf(stderr, "pbt-bench predict: cannot write '%s'\n",
                 Opts.Csv.c_str());
    return 1;
  }

  const runtime::PredictionService::Stats &S = Service.stats();
  std::printf("Online decisions from %s (benchmark %s, %zu rows, "
              "%u pass%s, production classifier: %s)\n\n%s\n",
              Opts.Model.c_str(), Model.Meta.Benchmark.c_str(), Rows.size(),
              Repeat, Repeat == 1 ? "" : "es",
              Model.System.L2.SelectedName.c_str(), Table.format().c_str());
  std::printf("Service stats: %llu calls, %llu memoized, %llu features "
              "extracted, total extraction cost %.1f units\n",
              static_cast<unsigned long long>(S.Calls),
              static_cast<unsigned long long>(S.MemoizedCalls),
              static_cast<unsigned long long>(S.FeaturesExtracted),
              S.FeatureCostPaid);
  return 0;
}

//===----------------------------------------------------------------------===//
// ablation-eta
//===----------------------------------------------------------------------===//

int benchharness::runAblationEta(const DriverOptions &Opts) {
  const double Etas[] = {0.001, 0.01, 0.1, 0.5, 1.0};
  std::vector<std::string> Names = Opts.Only;
  if (Names.empty())
    Names = {"binpacking", "clustering2", "poisson2d"};

  for (const std::string &Name : Names) {
    support::TextTable Table;
    Table.setHeader({"eta", "two-level (w/ feat.)", "satisfaction",
                     "selected classifier"});
    for (double Eta : Etas) {
      std::vector<registry::SuiteEntry> Suite =
          registry::makeSuite({Name}, Opts.Scale, Opts.Pool);
      registry::SuiteEntry &E = Suite.front();
      E.Options.L2.Eta = Eta;
      core::TrainedSystem System = core::trainSystem(*E.Program, E.Options);
      core::EvaluationResult R =
          core::evaluateSystem(*E.Program, System, Opts.Pool);
      Table.addRow({support::formatDouble(Eta, 3),
                    support::formatSpeedup(R.TwoLevelWithFeat),
                    support::formatPercent(R.TwoLevelSatisfaction),
                    System.L2.SelectedName});
    }
    std::printf("Ablation E7 (%s): cost-matrix blend factor eta\n\n%s\n",
                Name.c_str(), Table.format().c_str());
  }
  std::printf("Shape check: speedup/satisfaction should be robust in a "
              "band around eta = 0.5, the paper's setting "
              "(PBT_BENCH_SCALE=%.2f).\n",
              Opts.Scale);
  return 0;
}

//===----------------------------------------------------------------------===//
// ablation-landmarks
//===----------------------------------------------------------------------===//

int benchharness::runAblationLandmarks(const DriverOptions &Opts) {
  std::vector<std::string> Names = Opts.Only;
  if (Names.empty())
    Names = {"sort2", "clustering2"};

  for (const std::string &Name : Names) {
    support::TextTable Table;
    Table.setHeader({"landmarks", "kmeans-selected", "random-selected",
                     "degradation"});
    for (unsigned K : {2u, 5u, 8u, 12u}) {
      double SpeedKMeans = 0.0, SpeedRandom = 0.0;
      for (core::LandmarkSelection Sel :
           {core::LandmarkSelection::KMeansCentroids,
            core::LandmarkSelection::UniformRandom}) {
        std::vector<registry::SuiteEntry> Suite =
            registry::makeSuite({Name}, Opts.Scale, Opts.Pool);
        registry::SuiteEntry &E = Suite.front();
        E.Options.L1.NumLandmarks = K;
        E.Options.L1.Selection = Sel;
        core::TrainedSystem System = core::trainSystem(*E.Program, E.Options);
        core::EvaluationResult R =
            core::evaluateSystem(*E.Program, System, Opts.Pool);
        if (Sel == core::LandmarkSelection::KMeansCentroids)
          SpeedKMeans = R.DynamicOracle;
        else
          SpeedRandom = R.DynamicOracle;
      }
      double Degradation =
          SpeedKMeans > 0.0 ? (SpeedKMeans - SpeedRandom) / SpeedKMeans : 0.0;
      Table.addRow({std::to_string(K), support::formatSpeedup(SpeedKMeans),
                    support::formatSpeedup(SpeedRandom),
                    support::formatPercent(Degradation)});
    }
    std::printf("Ablation E5 (%s): landmark selection strategy "
                "(dynamic-oracle speedup over the static oracle)\n\n%s\n",
                Name.c_str(), Table.format().c_str());
  }
  std::printf("Shape check: random selection degrades small landmark "
              "counts most; the gap shrinks as counts grow "
              "(PBT_BENCH_SCALE=%.2f).\n",
              Opts.Scale);
  return 0;
}

//===----------------------------------------------------------------------===//
// ablation-twolevel
//===----------------------------------------------------------------------===//

int benchharness::runAblationTwoLevel(const DriverOptions &Opts) {
  std::vector<registry::SuiteEntry> Suite = suiteFor(Opts);

  support::TextTable Table;
  Table.setHeader({"Benchmark", "moved", "selected classifier",
                   "two-level", "one-level", "advantage"});

  for (registry::SuiteEntry &E : Suite) {
    core::TrainedSystem System = core::trainSystem(*E.Program, E.Options);
    core::EvaluationResult R =
        core::evaluateSystem(*E.Program, System, Opts.Pool);
    double Advantage = R.OneLevelWithFeat > 0.0
                           ? R.TwoLevelWithFeat / R.OneLevelWithFeat
                           : 0.0;
    Table.addRow({E.Name,
                  support::formatPercent(System.L2.RefinementMoveFraction),
                  System.L2.SelectedName,
                  support::formatSpeedup(R.TwoLevelWithFeat),
                  support::formatSpeedup(R.OneLevelWithFeat),
                  support::formatSpeedup(Advantage)});
    std::fprintf(stderr, "[twolevel] %-12s done\n", E.Name.c_str());
  }

  std::printf("Ablation E6: second-level cluster refinement and classifier "
              "selection (speedups over the static oracle, with feature "
              "extraction time)\n\n%s\n",
              Table.format().c_str());
  std::printf("Shape check: large 'moved' fractions show the feature-space "
              "clusters disagree with the performance-space labels (the "
              "paper reports 73.4%% for kmeans); 'advantage' is the paper's "
              "two-level-over-one-level factor (up to 34x in the paper) "
              "(PBT_BENCH_SCALE=%.2f).\n",
              Opts.Scale);
  return 0;
}

//===- bench/Reports.cpp - pbt-bench subcommand implementations -----------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "Reports.h"

#include "benchmarks/SortAlgorithms.h"
#include "benchmarks/SortBenchmark.h"
#include "core/FeatureProbe.h"
#include "core/TheoreticalModel.h"
#include "daemon/ModelRegistry.h"
#include "runtime/AdaptiveService.h"
#include "runtime/PredictionService.h"
#include "runtime/SimdLanes.h"
#include "serialize/ModelIO.h"
#include "streams/WorkloadStream.h"
#include "support/Cost.h"
#include "support/SimdDispatch.h"
#include "support/Statistics.h"
#include "support/Table.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <string>

using namespace pbt;
using namespace pbt::benchharness;

std::vector<registry::SuiteEntry>
benchharness::suiteFor(const DriverOptions &Opts) {
  if (Opts.Only.empty())
    return registry::makeSuite(Opts.Scale, Opts.Pool);
  return registry::makeSuite(Opts.Only, Opts.Scale, Opts.Pool);
}

static std::string csvPath(const DriverOptions &Opts, const std::string &Name) {
  if (Opts.OutDir.empty() || Opts.OutDir == ".")
    return Name;
  return Opts.OutDir + "/" + Name;
}

//===----------------------------------------------------------------------===//
// list
//===----------------------------------------------------------------------===//

int benchharness::runList(const DriverOptions &Opts) {
  support::TextTable Table;
  Table.setHeader({"name", "inputs@scale", "description"});
  for (const registry::BenchmarkFactory *F :
       registry::BenchmarkRegistry::instance().all()) {
    registry::ProgramPtr Program =
        F->makeProgram(Opts.Scale, F->defaultProgramSeed());
    Table.addRow({F->name(), std::to_string(Program->numInputs()),
                  F->describe()});
  }
  std::printf("Registered benchmarks (PBT_BENCH_SCALE=%.2f):\n\n%s\n",
              Opts.Scale, Table.format().c_str());
  return 0;
}

//===----------------------------------------------------------------------===//
// table1
//===----------------------------------------------------------------------===//

int benchharness::runTable1(const DriverOptions &Opts) {
  std::vector<registry::SuiteEntry> Suite = suiteFor(Opts);

  support::TextTable Table;
  Table.setHeader({"Benchmark", "Dynamic", "Two-level", "Two-level",
                   "One-level", "One-level", "One-level", "Two-level"});
  Table.addRow({"", "Oracle", "(w/o feat.)", "(w/ feat.)", "(w/o feat.)",
                "(w/ feat.)", "accuracy", "accuracy"});

  support::WallTimer Total;
  for (registry::SuiteEntry &E : Suite) {
    support::WallTimer T;
    core::TrainedSystem System = core::trainSystem(*E.Program, E.Options);
    core::EvaluationResult R =
        core::evaluateSystem(*E.Program, System, Opts.Pool);
    std::fprintf(stderr, "[table1] %-12s trained+evaluated in %.1fs "
                         "(K=%zu landmarks, %zu train, %zu test, "
                         "oracle-sat %.0f%%, static-sat %.0f%%)\n",
                 E.Name.c_str(), T.elapsedSeconds(),
                 System.L1.Landmarks.size(), System.TrainRows.size(),
                 System.TestRows.size(), 100.0 * R.DynamicOracleSatisfaction,
                 100.0 * R.StaticOracleSatisfaction);

    bool HasAccuracy = E.Program->accuracy().has_value();
    Table.addRow({E.Name, support::formatSpeedup(R.DynamicOracle),
                  support::formatSpeedup(R.TwoLevelNoFeat),
                  support::formatSpeedup(R.TwoLevelWithFeat),
                  support::formatSpeedup(R.OneLevelNoFeat),
                  support::formatSpeedup(R.OneLevelWithFeat),
                  HasAccuracy ? support::formatPercent(R.OneLevelSatisfaction)
                              : std::string("-"),
                  HasAccuracy ? support::formatPercent(R.TwoLevelSatisfaction)
                              : std::string("-")});
  }

  std::printf("Table 1: mean speedup over the static oracle "
              "(PBT_BENCH_SCALE=%.2f)\n\n%s\n",
              Opts.Scale, Table.format().c_str());
  std::printf("Total wall time: %.1fs\n", Total.elapsedSeconds());
  return 0;
}

//===----------------------------------------------------------------------===//
// fig6
//===----------------------------------------------------------------------===//

int benchharness::runFig6(const DriverOptions &Opts) {
  std::vector<registry::SuiteEntry> Suite = suiteFor(Opts);

  support::TextTable Table;
  Table.setHeader({"Benchmark", "min", "p25", "median", "p75", "p90", "p99",
                   "max", "mean"});

  for (registry::SuiteEntry &E : Suite) {
    core::TrainedSystem System = core::trainSystem(*E.Program, E.Options);
    core::EvaluationResult R =
        core::evaluateSystem(*E.Program, System, Opts.Pool);
    std::vector<double> S = R.PerInputSpeedups;
    std::sort(S.begin(), S.end());
    std::fprintf(stderr, "[fig6] %-12s %zu test inputs\n", E.Name.c_str(),
                 S.size());

    Table.addRow({E.Name, support::formatSpeedup(support::quantile(S, 0.0)),
                  support::formatSpeedup(support::quantile(S, 0.25)),
                  support::formatSpeedup(support::quantile(S, 0.5)),
                  support::formatSpeedup(support::quantile(S, 0.75)),
                  support::formatSpeedup(support::quantile(S, 0.9)),
                  support::formatSpeedup(support::quantile(S, 0.99)),
                  support::formatSpeedup(support::quantile(S, 1.0)),
                  support::formatSpeedup(support::mean(S))});

    support::CsvWriter Csv;
    Csv.setHeader({"rank", "speedup"});
    for (size_t I = 0; I != S.size(); ++I)
      Csv.addRow({std::to_string(I), support::formatDouble(S[I], 6)});
    Csv.writeFile(csvPath(Opts, "fig6_" + E.Name + ".csv"));
  }

  std::printf("Figure 6: distribution of per-input speedups of the "
              "two-level method over the static oracle\n"
              "(sorted series written to fig6_<benchmark>.csv; "
              "PBT_BENCH_SCALE=%.2f)\n\n%s\n",
              Opts.Scale, Table.format().c_str());
  std::printf("Shape check: per-benchmark max >> median reproduces the "
              "paper's 'small sets of inputs with very large speedups'.\n");
  return 0;
}

//===----------------------------------------------------------------------===//
// fig7 (pure model evaluation; ignores the suite)
//===----------------------------------------------------------------------===//

int benchharness::runFig7(const DriverOptions &Opts) {
  // --- Figure 7a ---
  support::CsvWriter CsvA;
  {
    std::vector<std::string> Header{"region_size"};
    for (unsigned K = 2; K <= 9; ++K)
      Header.push_back("loss_k" + std::to_string(K));
    CsvA.setHeader(Header);
  }
  support::TextTable A;
  A.setHeader({"p", "k=2", "k=3", "k=4", "k=5", "k=6", "k=7", "k=8", "k=9"});
  for (double P = 0.0; P <= 1.0001; P += 0.05) {
    std::vector<std::string> Row{support::formatDouble(P, 2)};
    std::vector<std::string> CsvRow{support::formatDouble(P, 4)};
    for (unsigned K = 2; K <= 9; ++K) {
      double L = core::regionLossContribution(P, K);
      Row.push_back(support::formatDouble(L, 4));
      CsvRow.push_back(support::formatDouble(L, 6));
    }
    A.addRow(Row);
    CsvA.addRow(CsvRow);
  }
  CsvA.writeFile(csvPath(Opts, "fig7a.csv"));

  std::printf("Figure 7a: predicted loss in speedup contributed by input "
              "space regions of different sizes\n\n%s\n",
              A.format().c_str());
  for (unsigned K = 2; K <= 9; ++K)
    std::printf("  worst-case region size for k=%u configs: 1/(k+1) = %.4f\n",
                K, core::worstCaseRegionSize(K));

  // --- Figure 7b ---
  support::TextTable B;
  B.setHeader({"landmarks", "predicted fraction of full speedup"});
  support::CsvWriter CsvB;
  CsvB.setHeader({"landmarks", "fraction"});
  for (unsigned K = 1; K <= 100; ++K) {
    double F = core::predictedSpeedupFraction(K);
    if (K <= 10 || K % 10 == 0)
      B.addRow({std::to_string(K), support::formatDouble(F, 4)});
    CsvB.addRow({std::to_string(K), support::formatDouble(F, 6)});
  }
  CsvB.writeFile(csvPath(Opts, "fig7b.csv"));

  std::printf("\nFigure 7b: predicted speedup (worst-case region sizes) vs "
              "number of landmarks\n\n%s\n",
              B.format().c_str());
  std::printf("Shape check: steep gains up to ~10 landmarks, saturation "
              "after ~10-30 (the paper's diminishing-returns argument).\n");
  return 0;
}

//===----------------------------------------------------------------------===//
// fig8
//===----------------------------------------------------------------------===//

int benchharness::runFig8(const DriverOptions &Opts) {
  std::vector<registry::SuiteEntry> Suite = suiteFor(Opts);
  const unsigned Trials = Opts.Fig8Trials;

  for (registry::SuiteEntry &E : Suite) {
    core::TrainedSystem System = core::trainSystem(*E.Program, E.Options);
    unsigned K = static_cast<unsigned>(System.L1.Landmarks.size());
    std::vector<unsigned> Counts;
    for (unsigned C = 1; C <= K; ++C)
      Counts.push_back(C);
    std::vector<core::LandmarkSweepPoint> Sweep = core::landmarkCountSweep(
        *E.Program, System, Counts, Trials, /*Seed=*/0xF1680 + K, Opts.Pool);

    support::TextTable Table;
    Table.setHeader({"landmarks", "min", "Q1", "median", "Q3", "max"});
    support::CsvWriter Csv;
    Csv.setHeader({"landmarks", "min", "q1", "median", "q3", "max", "mean"});
    for (const core::LandmarkSweepPoint &P : Sweep) {
      Table.addRow({std::to_string(P.NumLandmarks),
                    support::formatSpeedup(P.Speedups.Min),
                    support::formatSpeedup(P.Speedups.Q1),
                    support::formatSpeedup(P.Speedups.Median),
                    support::formatSpeedup(P.Speedups.Q3),
                    support::formatSpeedup(P.Speedups.Max)});
      Csv.addRow({std::to_string(P.NumLandmarks),
                  support::formatDouble(P.Speedups.Min, 6),
                  support::formatDouble(P.Speedups.Q1, 6),
                  support::formatDouble(P.Speedups.Median, 6),
                  support::formatDouble(P.Speedups.Q3, 6),
                  support::formatDouble(P.Speedups.Max, 6),
                  support::formatDouble(P.Speedups.Mean, 6)});
    }
    Csv.writeFile(csvPath(Opts, "fig8_" + E.Name + ".csv"));
    std::printf("Figure 8 (%s): speedup over static oracle vs number of "
                "landmarks (%u random subsets per count)\n\n%s\n",
                E.Name.c_str(), Trials, Table.format().c_str());
  }
  std::printf("Shape check: medians rise steeply for the first few "
              "landmarks and plateau, matching the Figure 7b model "
              "(PBT_BENCH_SCALE=%.2f).\n",
              Opts.Scale);
  return 0;
}

//===----------------------------------------------------------------------===//
// train / predict
//===----------------------------------------------------------------------===//

int benchharness::runTrain(const DriverOptions &Opts) {
  std::vector<registry::SuiteEntry> Suite = suiteFor(Opts);
  if (!Opts.Out.empty() && Suite.size() != 1) {
    std::fprintf(stderr,
                 "pbt-bench train: --out targets a single model; use "
                 "--only=<name> or --out-dir for a whole suite\n");
    return 1;
  }

  support::TextTable Table;
  Table.setHeader({"Benchmark", "landmarks", "selected classifier", "bytes",
                   "model file"});
  for (registry::SuiteEntry &E : Suite) {
    support::WallTimer T;
    core::TrainedSystem System = core::trainSystem(*E.Program, E.Options);
    const registry::BenchmarkFactory &F =
        registry::BenchmarkRegistry::instance().get(E.Name);
    serialize::TrainedModel Model =
        serialize::makeModel(E.Name, Opts.Scale, F.defaultProgramSeed(),
                             *E.Program, std::move(System));
    std::string Path =
        Opts.Out.empty() ? csvPath(Opts, E.Name + ".pbt") : Opts.Out;
    std::string Text = serialize::serializeModel(Model);
    serialize::LoadStatus Saved = serialize::writeModelText(Path, Text);
    if (!Saved) {
      std::fprintf(stderr, "pbt-bench train: %s\n", Saved.Error.c_str());
      return 1;
    }
    size_t Bytes = Text.size();
    std::fprintf(stderr, "[train] %-12s trained+persisted in %.1fs\n",
                 E.Name.c_str(), T.elapsedSeconds());
    Table.addRow({E.Name,
                  std::to_string(Model.System.L1.Landmarks.size()),
                  Model.System.L2.SelectedName, std::to_string(Bytes), Path});
  }
  std::printf("Trained models (format v%u, PBT_BENCH_SCALE=%.2f):\n\n%s\n",
              serialize::kFormatVersion, Opts.Scale, Table.format().c_str());
  std::printf("Serve with: pbt-bench predict --model=<file>\n");
  return 0;
}

/// Shared by predict/serve: load --model, rebuild the exact program the
/// model was trained on from its recorded provenance (the registry key,
/// scale, and seed all live in the file), and bind. Returns a nonzero
/// exit code on failure, 0 on success.
static int loadAndBind(const DriverOptions &Opts, const char *Sub,
                       runtime::PredictionService &Service,
                       registry::ProgramPtr &Program) {
  if (Opts.Model.empty()) {
    std::fprintf(stderr, "pbt-bench %s: --model=FILE is required\n", Sub);
    return 1;
  }
  serialize::LoadStatus Loaded = Service.loadFile(Opts.Model);
  if (!Loaded) {
    std::fprintf(stderr, "pbt-bench %s: cannot load '%s': %s\n", Sub,
                 Opts.Model.c_str(), Loaded.Error.c_str());
    return 1;
  }
  const serialize::TrainedModel &Model = Service.model();
  const registry::BenchmarkFactory *Factory =
      registry::BenchmarkRegistry::instance().lookup(Model.Meta.Benchmark);
  if (!Factory) {
    std::fprintf(stderr,
                 "pbt-bench %s: model benchmark '%s' is not registered\n",
                 Sub, Model.Meta.Benchmark.c_str());
    return 1;
  }
  Program = Factory->makeProgram(Model.Meta.Scale, Model.Meta.ProgramSeed);
  serialize::LoadStatus Bound = Service.bind(*Program);
  if (!Bound) {
    std::fprintf(stderr, "pbt-bench %s: model/program mismatch: %s\n", Sub,
                 Bound.Error.c_str());
    return 1;
  }
  return 0;
}

/// Decodes --rows (test|train|all) against a loaded model. Returns false
/// (with a message) on a bad value.
static bool selectRows(const DriverOptions &Opts, const char *Sub,
                       const serialize::TrainedModel &Model,
                       std::vector<size_t> &Rows) {
  if (Opts.Rows == "test") {
    Rows = Model.System.TestRows;
  } else if (Opts.Rows == "train") {
    Rows = Model.System.TrainRows;
  } else if (Opts.Rows == "all") {
    Rows = Model.System.TrainRows;
    Rows.insert(Rows.end(), Model.System.TestRows.begin(),
                Model.System.TestRows.end());
    std::sort(Rows.begin(), Rows.end());
  } else {
    std::fprintf(stderr,
                 "pbt-bench %s: bad --rows value '%s' (test|train|all)\n",
                 Sub, Opts.Rows.c_str());
    return false;
  }
  return true;
}

int benchharness::runPredict(const DriverOptions &Opts) {
  runtime::PredictionService Service;
  registry::ProgramPtr Program;
  if (int Failed = loadAndBind(Opts, "predict", Service, Program))
    return Failed;
  const serialize::TrainedModel &Model = Service.model();

  std::vector<size_t> Rows;
  if (!selectRows(Opts, "predict", Model, Rows))
    return 1;

  support::TextTable Table;
  Table.setHeader({"input", "landmark", "feat. cost", "configuration"});
  support::CsvWriter Csv;
  Csv.setHeader({"input", "landmark"});
  unsigned Repeat = std::max(1u, Opts.Repeat);
  for (unsigned Pass = 0; Pass != Repeat; ++Pass) {
    for (size_t Row : Rows) {
      runtime::PredictionService::Decision D = Service.decide(Row);
      if (Pass != 0)
        continue; // later passes only exercise the memo
      Table.addRow({Program->describeInput(Row), std::to_string(D.Landmark),
                    support::formatDouble(D.FeatureCost, 1),
                    Program->describeConfiguration(*D.Config)});
      Csv.addRow({std::to_string(Row), std::to_string(D.Landmark)});
    }
  }
  if (!Opts.Csv.empty() && !Csv.writeFile(Opts.Csv)) {
    std::fprintf(stderr, "pbt-bench predict: cannot write '%s'\n",
                 Opts.Csv.c_str());
    return 1;
  }

  const runtime::PredictionService::Stats &S = Service.stats();
  std::printf("Online decisions from %s (benchmark %s, %zu rows, "
              "%u pass%s, production classifier: %s)\n\n%s\n",
              Opts.Model.c_str(), Model.Meta.Benchmark.c_str(), Rows.size(),
              Repeat, Repeat == 1 ? "" : "es",
              Model.System.L2.SelectedName.c_str(), Table.format().c_str());
  std::printf("Service stats: %llu calls, %llu memoized, %llu features "
              "extracted, total extraction cost %.1f units\n",
              static_cast<unsigned long long>(S.Calls),
              static_cast<unsigned long long>(S.MemoizedCalls),
              static_cast<unsigned long long>(S.FeaturesExtracted),
              S.FeatureCostPaid);
  return 0;
}

//===----------------------------------------------------------------------===//
// serve
//===----------------------------------------------------------------------===//

namespace {
/// One measured serving mode.
struct ServePhase {
  double DecisionsPerSec = 0.0;
  double P50BatchUs = 0.0;
  double P99BatchUs = 0.0;
  uint64_t Decisions = 0;
  uint64_t Batches = 0;
};
} // namespace

/// Runs decideBatch over \p Batch repeatedly for ~\p Seconds of wall
/// clock, recording each call's latency.
static ServePhase measureCompiled(runtime::PredictionService &Service,
                                  const std::vector<size_t> &Batch,
                                  support::ThreadPool *Pool, double Seconds) {
  ServePhase P;
  std::vector<double> Latencies;
  // One untimed warm-up pass: first-touch faults, pool wake-up and any
  // one-time setup never land in a latency sample (the percentiles must
  // reflect steady-state serving).
  Service.decideBatch(Batch, Pool);
  support::WallTimer Total;
  double Elapsed = 0.0;
  do {
    support::WallTimer T;
    std::vector<runtime::PredictionService::Decision> D =
        Service.decideBatch(Batch, Pool);
    Latencies.push_back(T.elapsedSeconds());
    P.Decisions += D.size();
    Elapsed = Total.elapsedSeconds();
  } while (Elapsed < Seconds);
  P.Batches = Latencies.size();
  P.DecisionsPerSec =
      Elapsed > 0.0 ? static_cast<double>(P.Decisions) / Elapsed : 0.0;
  P.P50BatchUs = support::quantile(Latencies, 0.5) * 1e6;
  P.P99BatchUs = support::quantile(Latencies, 0.99) * 1e6;
  return P;
}

/// Cold serving: every pass drops the memo first, so each decision pays
/// feature extraction -- the fresh-traffic regime where batching across
/// the pool actually amortises (hot repeat decisions are one cached load
/// and too cheap to shard profitably).
static ServePhase measureCold(runtime::PredictionService &Service,
                              const std::vector<size_t> &Batch,
                              support::ThreadPool *Pool, double Seconds) {
  ServePhase P;
  std::vector<double> Latencies;
  // Untimed warm-up pass (see measureCompiled).
  Service.clearMemo();
  Service.decideBatch(Batch, Pool);
  support::WallTimer Total;
  double Elapsed = 0.0;
  double Spent = 0.0;
  do {
    // The memo teardown is serving-infrastructure bookkeeping, not
    // per-batch serving work: exclude it from the batch latency but
    // count it against the phase budget.
    Service.clearMemo();
    support::WallTimer T;
    std::vector<runtime::PredictionService::Decision> D =
        Service.decideBatch(Batch, Pool);
    Latencies.push_back(T.elapsedSeconds());
    Spent += Latencies.back();
    P.Decisions += D.size();
    Elapsed = Total.elapsedSeconds();
  } while (Elapsed < Seconds);
  P.Batches = Latencies.size();
  P.DecisionsPerSec =
      Spent > 0.0 ? static_cast<double>(P.Decisions) / Spent : 0.0;
  P.P50BatchUs = support::quantile(Latencies, 0.5) * 1e6;
  P.P99BatchUs = support::quantile(Latencies, 0.99) * 1e6;
  return P;
}

/// Decision-classification phases with the feature memo warm AND
/// complete: every pass drops only the cached decisions -- outside the
/// timed region, like measureCold's teardown -- so each timed batch
/// re-classifies every input from memoized features, through the
/// dispatched SIMD lanes or (with \p LaneServing off) the frozen scalar
/// compiled path. The scalar-vs-SIMD ratio of this phase at the pool's
/// thread count is the number BENCH_serve.json pins.
static ServePhase measureDecide(runtime::PredictionService &Service,
                                const std::vector<size_t> &Batch,
                                support::ThreadPool *Pool, double Seconds,
                                bool LaneServing) {
  bool Restore = Service.laneServing();
  Service.setLaneServing(LaneServing);
  ServePhase P;
  std::vector<double> Latencies;
  // Untimed warm-up pass (see measureCompiled).
  Service.clearDecisions();
  Service.decideBatch(Batch, Pool);
  support::WallTimer Total;
  double Elapsed = 0.0;
  double Spent = 0.0;
  do {
    Service.clearDecisions();
    support::WallTimer T;
    std::vector<runtime::PredictionService::Decision> D =
        Service.decideBatch(Batch, Pool);
    Latencies.push_back(T.elapsedSeconds());
    Spent += Latencies.back();
    P.Decisions += D.size();
    Elapsed = Total.elapsedSeconds();
  } while (Elapsed < Seconds);
  Service.setLaneServing(Restore);
  P.Batches = Latencies.size();
  P.DecisionsPerSec =
      Spent > 0.0 ? static_cast<double>(P.Decisions) / Spent : 0.0;
  P.P50BatchUs = support::quantile(Latencies, 0.5) * 1e6;
  P.P99BatchUs = support::quantile(Latencies, 0.99) * 1e6;
  return P;
}

/// Classifier-only phases: drive the lowered production classifier (and
/// its interpreted twin) directly over the model's recorded feature
/// table, bypassing the service's decision cache. This is the pure
/// "arena walk vs polymorphic walk over memoized features" ratio -- the
/// regression signal for the compiled subsystem itself, independent of
/// how effective decision caching is.
static ServePhase measureClassifyCompiled(
    const runtime::CompiledModel &Compiled, const linalg::Matrix &Features,
    const std::vector<size_t> &Batch, double Seconds) {
  ServePhase P;
  std::vector<double> Latencies;
  runtime::CompiledModel::Scratch S = Compiled.makeScratch();
  // Untimed warm-up pass (see measureCompiled).
  for (size_t Row : Batch)
    (void)Compiled.decideProduction(
        S, [&Features, Row](unsigned F) { return Features.at(Row, F); });
  support::WallTimer Total;
  double Elapsed = 0.0;
  do {
    support::WallTimer T;
    for (size_t Row : Batch) {
      unsigned L = Compiled.decideProduction(
          S, [&Features, Row](unsigned F) { return Features.at(Row, F); });
      (void)L;
    }
    Latencies.push_back(T.elapsedSeconds());
    P.Decisions += Batch.size();
    Elapsed = Total.elapsedSeconds();
  } while (Elapsed < Seconds);
  P.Batches = Latencies.size();
  P.DecisionsPerSec =
      Elapsed > 0.0 ? static_cast<double>(P.Decisions) / Elapsed : 0.0;
  P.P50BatchUs = support::quantile(Latencies, 0.5) * 1e6;
  P.P99BatchUs = support::quantile(Latencies, 0.99) * 1e6;
  return P;
}

/// Lane twin of measureClassifyCompiled: the same rows from the same
/// recorded feature table, classified a lane at a time through the
/// dispatched engine's classifyProductionBlock. Against the scalar
/// compiled phase this is the pure kernel ratio, with feature plumbing
/// and the decision cache held constant.
static ServePhase measureClassifyLanes(const runtime::CompiledModel &Compiled,
                                       const runtime::LaneEngine &Engine,
                                       const linalg::Matrix &Features,
                                       const std::vector<size_t> &Batch,
                                       double Seconds) {
  ServePhase P;
  std::vector<double> Latencies;
  runtime::CompiledModel::Scratch S = Compiled.makeScratch();
  const std::vector<uint32_t> &Reads = Compiled.productionReads();
  const unsigned W = Engine.Width;
  unsigned Labels[runtime::kMaxLaneWidth];
  auto Pass = [&]() {
    for (size_t Base = 0; Base < Batch.size(); Base += W) {
      unsigned Count =
          static_cast<unsigned>(std::min<size_t>(W, Batch.size() - Base));
      for (unsigned L = 0; L != Count; ++L) {
        size_t Row = Batch[Base + L];
        for (uint32_t F : Reads)
          S.LaneBlock[static_cast<size_t>(F) * W + L] = Features.at(Row, F);
      }
      Compiled.classifyProductionBlock(Engine, S, Count, Labels);
    }
  };
  // Untimed warm-up pass (see measureCompiled).
  Pass();
  support::WallTimer Total;
  double Elapsed = 0.0;
  do {
    support::WallTimer T;
    Pass();
    Latencies.push_back(T.elapsedSeconds());
    P.Decisions += Batch.size();
    Elapsed = Total.elapsedSeconds();
  } while (Elapsed < Seconds);
  P.Batches = Latencies.size();
  P.DecisionsPerSec =
      Elapsed > 0.0 ? static_cast<double>(P.Decisions) / Elapsed : 0.0;
  P.P50BatchUs = support::quantile(Latencies, 0.5) * 1e6;
  P.P99BatchUs = support::quantile(Latencies, 0.99) * 1e6;
  return P;
}

static ServePhase measureClassifyInterpreted(
    const core::InputClassifier &Classifier, const linalg::Matrix &Features,
    const linalg::Matrix &Costs, const std::vector<size_t> &Batch,
    double Seconds) {
  ServePhase P;
  std::vector<double> Latencies;
  // Untimed warm-up pass (see measureCompiled).
  for (size_t Row : Batch) {
    core::FeatureProbe Probe = core::probeFromTable(Features, Costs, Row);
    (void)Classifier.classify(Probe);
  }
  support::WallTimer Total;
  double Elapsed = 0.0;
  do {
    support::WallTimer T;
    for (size_t Row : Batch) {
      core::FeatureProbe Probe = core::probeFromTable(Features, Costs, Row);
      unsigned L = Classifier.classify(Probe);
      (void)L;
    }
    Latencies.push_back(T.elapsedSeconds());
    P.Decisions += Batch.size();
    Elapsed = Total.elapsedSeconds();
  } while (Elapsed < Seconds);
  P.Batches = Latencies.size();
  P.DecisionsPerSec =
      Elapsed > 0.0 ? static_cast<double>(P.Decisions) / Elapsed : 0.0;
  P.P50BatchUs = support::quantile(Latencies, 0.5) * 1e6;
  P.P99BatchUs = support::quantile(Latencies, 0.99) * 1e6;
  return P;
}

/// The pre-compile baseline: a plain single-threaded decideInterpreted()
/// loop over \p Batch, timed per pass so the two paths see identical
/// work per "batch".
static ServePhase measureInterpreted(runtime::PredictionService &Service,
                                     const std::vector<size_t> &Batch,
                                     double Seconds) {
  ServePhase P;
  std::vector<double> Latencies;
  // Untimed warm-up pass (see measureCompiled).
  for (size_t Row : Batch)
    Service.decideInterpreted(Row);
  support::WallTimer Total;
  double Elapsed = 0.0;
  do {
    support::WallTimer T;
    for (size_t Row : Batch)
      Service.decideInterpreted(Row);
    Latencies.push_back(T.elapsedSeconds());
    P.Decisions += Batch.size();
    Elapsed = Total.elapsedSeconds();
  } while (Elapsed < Seconds);
  P.Batches = Latencies.size();
  P.DecisionsPerSec =
      Elapsed > 0.0 ? static_cast<double>(P.Decisions) / Elapsed : 0.0;
  P.P50BatchUs = support::quantile(Latencies, 0.5) * 1e6;
  P.P99BatchUs = support::quantile(Latencies, 0.99) * 1e6;
  return P;
}

std::string benchharness::jsonNumber(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  return Buf;
}

/// Escapes a string for embedding in a JSON literal (paths and names are
/// user-controlled; a quote or backslash must not corrupt the report).
std::string benchharness::jsonString(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

static std::string jsonPhase(const ServePhase &P) {
  // A phase that recorded no batches has no latency sample to take a
  // percentile of: support::quantile on an empty vector returns 0.0,
  // which would read as an impossible zero-latency measurement. Report
  // the percentiles as null so downstream consumers see "empty phase",
  // never a fake sample.
  bool Empty = P.Batches == 0;
  return "{\"decisions_per_sec\": " + jsonNumber(P.DecisionsPerSec) +
         ", \"p50_batch_us\": " + (Empty ? "null" : jsonNumber(P.P50BatchUs)) +
         ", \"p99_batch_us\": " + (Empty ? "null" : jsonNumber(P.P99BatchUs)) +
         ", \"decisions\": " + std::to_string(P.Decisions) +
         ", \"batches\": " + std::to_string(P.Batches) + "}";
}

/// Splits a comma-separated --model value: `serve` accepts a list so one
/// run (and one BENCH_serve.json) covers every golden model.
static std::vector<std::string> splitModels(const std::string &Value) {
  std::vector<std::string> Out;
  size_t Start = 0;
  while (Start <= Value.size()) {
    size_t Comma = Value.find(',', Start);
    if (Comma == std::string::npos)
      Comma = Value.size();
    if (Comma > Start)
      Out.push_back(Value.substr(Start, Comma - Start));
    Start = Comma + 1;
  }
  return Out;
}

/// Ratio of two phase throughputs (0 when the denominator is empty).
static double speedupOf(const ServePhase &Num, const ServePhase &Den) {
  return Den.DecisionsPerSec > 0.0
             ? Num.DecisionsPerSec / Den.DecisionsPerSec
             : 0.0;
}

/// Benchmarks one model file end to end and appends its JSON object
/// (one entry of the report's "models" array) to \p Json. Returns a
/// nonzero exit code when the model cannot be loaded; a parity failure
/// clears \p ChoicesMatch but still reports the numbers.
static int serveOneModel(const DriverOptions &Opts, const std::string &Path,
                         std::string &Json, bool &ChoicesMatch) {
  DriverOptions ModelOpts = Opts;
  ModelOpts.Model = Path;
  runtime::PredictionService Service;
  registry::ProgramPtr Program;
  // Load + arena lowering is a one-time cost, reported on its own line:
  // it must never land inside a measured region, so no latency
  // percentile (in particular no cold-phase p99) includes compile time.
  support::WallTimer LoadTimer;
  if (int Failed = loadAndBind(ModelOpts, "serve", Service, Program))
    return Failed;
  double LoadCompileSeconds = LoadTimer.elapsedSeconds();
  const serialize::TrainedModel &Model = Service.model();

  std::vector<size_t> Rows;
  if (!selectRows(ModelOpts, "serve", Model, Rows))
    return 1;
  if (Rows.empty()) {
    std::fprintf(stderr, "pbt-bench serve: '%s' records no %s rows\n",
                 Path.c_str(), Opts.Rows.c_str());
    return 1;
  }

  // The request stream: the recorded rows cycled up to the batch size.
  unsigned BatchSize = std::max(1u, Opts.Batch);
  std::vector<size_t> Batch(BatchSize);
  for (unsigned I = 0; I != BatchSize; ++I)
    Batch[I] = Rows[I % Rows.size()];

  // Warm the feature memo once so every phase measures pure decision
  // throughput (the steady serving state; extraction is paid exactly
  // once per input either way and reported by `predict`).
  Service.decideBatch(Rows, nullptr);

  // Parity gate: the compiled path must agree with the interpreted
  // classifier on every row before any number is reported.
  for (size_t Row : Rows)
    if (Service.decide(Row).Landmark !=
        Service.decideInterpreted(Row).Landmark)
      ChoicesMatch = false;

  double Seconds = std::max(0.01, Opts.Seconds);
  ServePhase Interpreted = measureInterpreted(Service, Batch, Seconds);
  ServePhase Single = measureCompiled(Service, Batch, nullptr, Seconds);
  ServePhase Batched = measureCompiled(Service, Batch, Opts.Pool, Seconds);
  ServePhase ColdSingle = measureCold(Service, Batch, nullptr, Seconds);
  ServePhase ColdBatched = measureCold(Service, Batch, Opts.Pool, Seconds);

  // Decision-classification phases, scalar vs SIMD side by side. The
  // cold phases above dropped the memo; rebuild it feature-complete so
  // every model kind is lane-eligible (steady-state serving keeps the
  // memo warm anyway -- this is the regime the tentpole targets).
  Service.decideBatch(Rows, nullptr);
  for (size_t Row : Rows)
    Service.warmFeatureMemo(Row);
  ServePhase DecideScalarSingle =
      measureDecide(Service, Batch, nullptr, Seconds, /*LaneServing=*/false);
  ServePhase DecideSimdSingle =
      measureDecide(Service, Batch, nullptr, Seconds, /*LaneServing=*/true);
  ServePhase DecideScalarThreads =
      measureDecide(Service, Batch, Opts.Pool, Seconds, /*LaneServing=*/false);
  ServePhase DecideSimdThreads =
      measureDecide(Service, Batch, Opts.Pool, Seconds, /*LaneServing=*/true);

  // Classifier-only ratios (decision cache bypassed): the compiled arena
  // walk and its lane twin vs the polymorphic classifier, all over the
  // same recorded features.
  ServePhase ClassifyCompiled = measureClassifyCompiled(
      Service.compiled(), Model.System.L1.Features, Batch, Seconds);
  ServePhase ClassifyLanes = measureClassifyLanes(
      Service.compiled(), runtime::laneEngine(Service.simdTier()),
      Model.System.L1.Features, Batch, Seconds);
  ServePhase ClassifyInterpreted = measureClassifyInterpreted(
      *Model.System.L2.Production, Model.System.L1.Features,
      Model.System.L1.ExtractCosts, Batch, Seconds);

  Json += std::string("    {\n") +
          "      \"model\": \"" + jsonString(Path) + "\",\n" +
          "      \"benchmark\": \"" + jsonString(Model.Meta.Benchmark) +
          "\",\n" +
          "      \"classifier\": \"" + jsonString(Model.System.L2.SelectedName) +
          "\",\n" +
          "      \"rows\": " + std::to_string(Rows.size()) + ",\n" +
          "      \"arena_bytes\": " +
          std::to_string(Service.compiled().arenaBytes()) + ",\n" +
          "      \"load_compile_seconds\": " + jsonNumber(LoadCompileSeconds) +
          ",\n" +
          "      \"choices_match_interpreted\": " +
          (ChoicesMatch ? "true" : "false") + ",\n" +
          "      \"interpreted_single\": " + jsonPhase(Interpreted) + ",\n" +
          "      \"compiled_single\": " + jsonPhase(Single) + ",\n" +
          "      \"compiled_batched\": " + jsonPhase(Batched) + ",\n" +
          "      \"compiled_cold_single\": " + jsonPhase(ColdSingle) + ",\n" +
          "      \"compiled_cold_batched\": " + jsonPhase(ColdBatched) +
          ",\n" +
          "      \"decide_scalar_single\": " + jsonPhase(DecideScalarSingle) +
          ",\n" +
          "      \"decide_simd_single\": " + jsonPhase(DecideSimdSingle) +
          ",\n" +
          "      \"decide_scalar_threads\": " + jsonPhase(DecideScalarThreads) +
          ",\n" +
          "      \"decide_simd_threads\": " + jsonPhase(DecideSimdThreads) +
          ",\n" +
          "      \"classify_compiled_single\": " + jsonPhase(ClassifyCompiled) +
          ",\n" +
          "      \"classify_lanes_single\": " + jsonPhase(ClassifyLanes) +
          ",\n" +
          "      \"classify_interpreted_single\": " +
          jsonPhase(ClassifyInterpreted) + ",\n" +
          "      \"compiled_vs_interpreted_speedup\": " +
          jsonNumber(speedupOf(Single, Interpreted)) + ",\n" +
          "      \"classify_compiled_vs_interpreted_speedup\": " +
          jsonNumber(speedupOf(ClassifyCompiled, ClassifyInterpreted)) +
          ",\n" +
          "      \"classify_lanes_vs_compiled_speedup\": " +
          jsonNumber(speedupOf(ClassifyLanes, ClassifyCompiled)) + ",\n" +
          "      \"batched_vs_single_scaling\": " +
          jsonNumber(speedupOf(Batched, Single)) + ",\n" +
          "      \"cold_batched_vs_single_scaling\": " +
          jsonNumber(speedupOf(ColdBatched, ColdSingle)) + ",\n" +
          "      \"simd_vs_scalar_single_speedup\": " +
          jsonNumber(speedupOf(DecideSimdSingle, DecideScalarSingle)) + ",\n" +
          "      \"simd_vs_scalar_threads_speedup\": " +
          jsonNumber(speedupOf(DecideSimdThreads, DecideScalarThreads)) +
          "\n" +
          "    }";
  std::fprintf(stderr,
               "[serve] %-12s simd/scalar %.2fx single, %.2fx pooled "
               "(%s lanes)\n",
               Model.Meta.Benchmark.c_str(),
               speedupOf(DecideSimdSingle, DecideScalarSingle),
               speedupOf(DecideSimdThreads, DecideScalarThreads),
               support::simdTierName(Service.simdTier()));
  return 0;
}

int benchharness::runServe(const DriverOptions &Opts) {
  std::vector<std::string> Models = splitModels(Opts.Model);
  if (Models.empty()) {
    std::fprintf(stderr,
                 "pbt-bench serve: --model=FILE[,FILE...] is required\n");
    return 1;
  }
  unsigned Threads = Opts.Pool ? Opts.Pool->numThreads() : 1;
  const runtime::LaneEngine &Active =
      runtime::laneEngine(support::activeSimdTier());

  std::string Json =
      std::string("{\n") +
      "  \"subcommand\": \"serve\",\n" +
      "  \"threads\": " + std::to_string(Threads) + ",\n" +
      "  \"batch\": " + std::to_string(std::max(1u, Opts.Batch)) + ",\n" +
      "  \"seconds_per_phase\": " +
      jsonNumber(std::max(0.01, Opts.Seconds)) + ",\n" +
      "  \"simd_tier\": \"" + support::simdTierName(Active.Tier) + "\",\n" +
      "  \"simd_lane_width\": " + std::to_string(Active.Width) + ",\n" +
      "  \"models\": [\n";
  bool AllMatch = true;
  for (size_t I = 0; I != Models.size(); ++I) {
    bool ChoicesMatch = true;
    if (int Failed = serveOneModel(Opts, Models[I], Json, ChoicesMatch))
      return Failed;
    AllMatch = AllMatch && ChoicesMatch;
    Json += I + 1 != Models.size() ? ",\n" : "\n";
  }
  Json += "  ]\n}\n";

  std::fputs(Json.c_str(), stdout);
  if (Opts.Json) {
    std::string Path = csvPath(Opts, "BENCH_serve.json");
    FILE *Out = std::fopen(Path.c_str(), "wb");
    if (!Out || std::fwrite(Json.data(), 1, Json.size(), Out) != Json.size()) {
      if (Out)
        std::fclose(Out);
      std::fprintf(stderr, "pbt-bench serve: cannot write '%s'\n",
                   Path.c_str());
      return 1;
    }
    std::fclose(Out);
  }
  return AllMatch ? 0 : 1;
}

//===----------------------------------------------------------------------===//
// trainbench
//===----------------------------------------------------------------------===//

/// Flips every exactness-preserving training optimisation this PR
/// introduced. The "legacy" configuration reproduces the pre-optimisation
/// path: physical sort kernels (no simulation, no run memo), re-evaluated
/// autotuner candidates, duplicate measurement sweeps, and the row-major
/// Level-2 zoo.
static void applyTrainingPathMode(core::PipelineOptions &Opt, bool Fast) {
  Opt.L1.Tuner.Memoize = Fast;
  Opt.L1.DedupMeasurementSweep = Fast;
  Opt.L2.UseDataset = Fast;
}

int benchharness::runTrainBench(const DriverOptions &Opts) {
  // Factory names only -- every timing pass constructs its own fresh
  // program, so materialising a suite's programs up front (suiteFor)
  // would generate every input vector once just to discard it.
  std::vector<std::string> Names =
      Opts.Only.empty() ? registry::BenchmarkRegistry::instance().names()
                        : Opts.Only;
  unsigned Repeat = std::max(1u, Opts.Repeat);

  struct BenchRow {
    std::string Name;
    double LegacySeconds = 0.0;
    double FastSeconds = 0.0;
    bool BytesMatch = false;
    std::string Selected;
    size_t ModelBytes = 0;
  };
  std::vector<BenchRow> Results;
  bool AllMatch = true;

  for (const std::string &Name : Names) {
    const registry::BenchmarkFactory &F =
        registry::BenchmarkRegistry::instance().get(Name);
    BenchRow Row;
    Row.Name = Name;
    double Best[2] = {1e300, 1e300};
    std::string Bytes[2];
    // Interleaved passes, best-of: alternating legacy/fast inside each
    // repeat cancels the machine's slow drift; a fresh program per pass
    // keeps the sort-kernel run memo cold, so "fast" is a from-scratch
    // training time, not a warm-cache replay.
    for (unsigned R = 0; R != Repeat; ++R) {
      for (int Mode = 0; Mode != 2; ++Mode) {
        bool Fast = Mode == 1;
        bench::setSortSimulation(Fast);
        registry::ProgramPtr Program =
            F.makeProgram(Opts.Scale, F.defaultProgramSeed());
        core::PipelineOptions Opt = F.defaultOptions(Opts.Scale);
        Opt.Pool = Opts.Pool;
        applyTrainingPathMode(Opt, Fast);
        support::WallTimer T;
        core::TrainedSystem Sys = core::trainSystem(*Program, Opt);
        Best[Mode] = std::min(Best[Mode], T.elapsedSeconds());
        if (R == 0) {
          serialize::TrainedModel Model = serialize::makeModel(
              Name, Opts.Scale, F.defaultProgramSeed(), *Program,
              std::move(Sys));
          Bytes[Mode] = serialize::serializeModel(Model);
          if (Fast)
            Row.Selected = Model.System.L2.SelectedName;
        }
      }
    }
    bench::setSortSimulation(true);
    Row.LegacySeconds = Best[0];
    Row.FastSeconds = Best[1];
    Row.BytesMatch = Bytes[0] == Bytes[1];
    Row.ModelBytes = Bytes[1].size();
    AllMatch = AllMatch && Row.BytesMatch;
    std::fprintf(stderr,
                 "[trainbench] %-12s legacy %.3fs  fast %.3fs  %.2fx  %s\n",
                 Name.c_str(), Row.LegacySeconds, Row.FastSeconds,
                 Row.FastSeconds > 0.0 ? Row.LegacySeconds / Row.FastSeconds
                                       : 0.0,
                 Row.BytesMatch ? "bytes-identical" : "BYTE MISMATCH");
    Results.push_back(std::move(Row));
  }

  bench::SortRunMemoStats Memo = bench::sortRunMemoStats();
  std::string Json = std::string("{\n") +
                     "  \"subcommand\": \"trainbench\",\n" +
                     "  \"scale\": " + jsonNumber(Opts.Scale) + ",\n" +
                     "  \"threads\": " +
                     std::to_string(Opts.Pool ? Opts.Pool->numThreads() : 1) +
                     ",\n" +
                     "  \"repeat\": " + std::to_string(Repeat) + ",\n" +
                     "  \"sort_run_memo\": {\"hits\": " +
                     std::to_string(Memo.Hits) +
                     ", \"misses\": " + std::to_string(Memo.Misses) + "},\n" +
                     "  \"benchmarks\": [";
  for (size_t I = 0; I != Results.size(); ++I) {
    const BenchRow &Row = Results[I];
    double Speedup =
        Row.FastSeconds > 0.0 ? Row.LegacySeconds / Row.FastSeconds : 0.0;
    Json += std::string(I ? "," : "") + "\n    {\"benchmark\": \"" +
            jsonString(Row.Name) + "\"" +
            ", \"legacy_train_seconds\": " + jsonNumber(Row.LegacySeconds) +
            ", \"train_seconds\": " + jsonNumber(Row.FastSeconds) +
            ", \"speedup\": " + jsonNumber(Speedup) +
            ", \"bytes_match\": " + (Row.BytesMatch ? "true" : "false") +
            ", \"model_bytes\": " + std::to_string(Row.ModelBytes) +
            ", \"selected_classifier\": \"" + jsonString(Row.Selected) +
            "\"}";
  }
  Json += Results.empty() ? "]\n" : "\n  ]\n";
  Json += "}\n";

  std::fputs(Json.c_str(), stdout);
  if (Opts.Json) {
    std::string Path = csvPath(Opts, "BENCH_train.json");
    FILE *Out = std::fopen(Path.c_str(), "wb");
    if (!Out || std::fwrite(Json.data(), 1, Json.size(), Out) != Json.size()) {
      if (Out)
        std::fclose(Out);
      std::fprintf(stderr, "pbt-bench trainbench: cannot write '%s'\n",
                   Path.c_str());
      return 1;
    }
    std::fclose(Out);
  }
  return AllMatch ? 0 : 1;
}

//===----------------------------------------------------------------------===//
// stream
//===----------------------------------------------------------------------===//

namespace {
/// Per-request record of one serving loop over the stream.
struct StreamTrace {
  std::vector<unsigned> Landmarks;
  std::vector<uint64_t> Epochs;
  std::vector<double> Costs;
  std::vector<size_t> DetectTicks;
  std::vector<size_t> SwapTicks;
  /// Every distinct epoch encountered, kept alive for oracle evaluation.
  std::map<uint64_t, runtime::AdaptiveService::EpochPtr> EpochsSeen;
  double ServeSeconds = 0.0;
  size_t Served = 0;
};

/// Replays the stream through \p Service. \p Adapt selects serve() (the
/// full observe-and-adapt loop) vs decide() (the frozen control). Only
/// the decide/serve call itself is timed; running the input under the
/// decision -- the cost measurement -- happens off the clock.
StreamTrace replayStream(const streams::WorkloadStream &Stream,
                         const runtime::TunableProgram &Universe,
                         runtime::AdaptiveService &Service, bool Adapt,
                         double SecondsBudget, size_t MaxRequests) {
  StreamTrace T;
  support::WallTimer Budget;
  for (size_t Tick = 0; Tick != Stream.length() && Tick != MaxRequests;
       ++Tick) {
    size_t Input = Stream.inputAt(Tick);
    support::WallTimer Timer;
    runtime::AdaptiveService::Decision D =
        Adapt ? Service.serve(Input) : Service.decide(Input);
    T.ServeSeconds += Timer.elapsedSeconds();
    T.Landmarks.push_back(D.Landmark);
    T.Epochs.push_back(D.Epoch);
    T.Costs.push_back(Universe.runOnce(Input, *D.Config).TimeUnits);
    if (D.DriftFlagged)
      T.DetectTicks.push_back(Tick);
    if (D.Swapped)
      T.SwapTicks.push_back(Tick);
    T.EpochsSeen.emplace(D.Epoch, D.Hold);
    ++T.Served;
    if (Budget.elapsedSeconds() > SecondsBudget)
      break; // wall-clock cap; --requests is the deterministic bound
  }
  return T;
}

/// Mean cost of the best landmark of \p Epoch's model for \p Input (the
/// dynamic oracle restricted to what that model could have chosen).
double oracleCostFor(const runtime::TunableProgram &Universe,
                     const runtime::AdaptiveService::ModelEpoch &Epoch,
                     size_t Input,
                     std::map<std::pair<uint64_t, size_t>, double> &Cache) {
  auto Key = std::make_pair(Epoch.Model.Meta.Epoch, Input);
  auto It = Cache.find(Key);
  if (It != Cache.end())
    return It->second;
  double Best = 0.0;
  bool First = true;
  for (const runtime::Configuration &C : Epoch.Model.System.L1.Landmarks) {
    double Cost = Universe.runOnce(Input, C).TimeUnits;
    if (First || Cost < Best)
      Best = Cost;
    First = false;
  }
  Cache[Key] = Best;
  return Best;
}

struct SegmentStats {
  size_t From = 0, To = 0;
  uint64_t Epoch = 0;
  double AdaptiveMeanCost = 0.0, FrozenMeanCost = 0.0;
  double AdaptiveRegret = 0.0, FrozenRegret = 0.0;
};
} // namespace

int benchharness::runStream(const DriverOptions &Opts) {
  if (Opts.Model.empty()) {
    std::fprintf(stderr, "pbt-bench stream: --model=FILE is required\n");
    return 1;
  }
  streams::Schedule Kind;
  if (!streams::parseSchedule(Opts.StreamSchedule, Kind)) {
    std::fprintf(stderr,
                 "pbt-bench stream: bad --schedule '%s' "
                 "(abrupt|ramp|periodic)\n",
                 Opts.StreamSchedule.c_str());
    return 1;
  }

  serialize::TrainedModel Initial;
  serialize::LoadStatus Loaded = serialize::loadModelFile(Opts.Model, Initial);
  if (!Loaded) {
    std::fprintf(stderr, "pbt-bench stream: cannot load '%s': %s\n",
                 Opts.Model.c_str(), Loaded.Error.c_str());
    return 1;
  }
  const registry::BenchmarkFactory *Factory =
      registry::BenchmarkRegistry::instance().lookup(Initial.Meta.Benchmark);
  if (!Factory) {
    std::fprintf(stderr,
                 "pbt-bench stream: model benchmark '%s' is not registered\n",
                 Initial.Meta.Benchmark.c_str());
    return 1;
  }

  // The traffic universe: the model's own provenance, optionally
  // stretched to a larger --scale (the same generator produces a
  // superset population, so the model still binds).
  double UniverseScale =
      Opts.ScaleExplicit ? Opts.Scale : Initial.Meta.Scale;
  registry::ProgramPtr Universe =
      Factory->makeProgram(UniverseScale, Initial.Meta.ProgramSeed);

  streams::WorkloadStreamOptions SO;
  SO.Kind = Kind;
  SO.Requests = std::max(1u, Opts.StreamRequests);
  SO.Seed = Opts.StreamSeed;
  SO.KeyProperty = Opts.StreamKey;
  SO.Period = Opts.StreamPeriod;
  std::unique_ptr<streams::WorkloadStream> Stream;
  try {
    Stream = std::make_unique<streams::WorkloadStream>(*Universe, SO);
  } catch (const std::invalid_argument &E) {
    std::fprintf(stderr, "pbt-bench stream: %s\n", E.what());
    return 1;
  }

  runtime::AdaptiveServiceOptions AO;
  AO.Monitor.Window = std::max(8u, Opts.StreamWindow);
  AO.Monitor.MinSamples = AO.Monitor.Window / 2;
  AO.Monitor.Cooldown = AO.Monitor.Window;
  AO.ReservoirSize = std::max(8u, Opts.StreamReservoir);
  AO.MinRetrainInputs = std::min<size_t>(16, AO.ReservoirSize);
  AO.Retrain = registry::reservoirRetrainOptions(*Factory, UniverseScale,
                                                 AO.ReservoirSize, Opts.Pool);
  AO.Pool = Opts.Pool;

  // Frozen control: a second service from the same bytes, never adapted.
  serialize::TrainedModel FrozenInitial;
  if (!serialize::loadModelFile(Opts.Model, FrozenInitial)) {
    std::fprintf(stderr, "pbt-bench stream: cannot reload '%s'\n",
                 Opts.Model.c_str());
    return 1;
  }
  runtime::AdaptiveServiceOptions FO = AO;
  FO.AutoAdapt = false;

  runtime::AdaptiveService Adaptive(*Universe, std::move(Initial), AO);
  if (!Adaptive.ready()) {
    std::fprintf(stderr, "pbt-bench stream: model/universe mismatch: %s\n",
                 Adaptive.status().Error.c_str());
    return 1;
  }
  runtime::AdaptiveService Frozen(*Universe, std::move(FrozenInitial), FO);
  if (!Frozen.ready()) {
    std::fprintf(stderr, "pbt-bench stream: %s\n",
                 Frozen.status().Error.c_str());
    return 1;
  }

  double Seconds = std::max(0.01, Opts.Seconds);
  StreamTrace Ada = replayStream(*Stream, *Universe, Adaptive, true, Seconds,
                                 Stream->length());
  // The control replays exactly the prefix the adaptive run served.
  StreamTrace Frz = replayStream(*Stream, *Universe, Frozen, false, Seconds,
                                 Ada.Served);

  size_t Served = std::min(Ada.Served, Frz.Served);
  runtime::AdaptiveService::StatsSnapshot AStats = Adaptive.stats();
  std::vector<runtime::AdaptiveService::SwapRecord> History =
      Adaptive.history();

  // Drift-to-swap latency over the accepted swaps: how long live traffic
  // kept being served by the stale champion after each detection. This is
  // the window the columnar training substrate shrinks.
  double SwapLatencySum = 0.0, SwapLatencyMax = 0.0;
  size_t AcceptedSwaps = 0;
  for (const runtime::AdaptiveService::SwapRecord &Rec : History)
    if (Rec.Accepted) {
      ++AcceptedSwaps;
      SwapLatencySum += Rec.DriftToSwapSeconds;
      SwapLatencyMax = std::max(SwapLatencyMax, Rec.DriftToSwapSeconds);
    }

  // Inter-swap segments with mean cost and regret vs each model's own
  // dynamic oracle.
  std::map<std::pair<uint64_t, size_t>, double> OracleCache;
  std::vector<SegmentStats> Segments;
  std::vector<size_t> Bounds;
  Bounds.push_back(0);
  for (size_t Tick : Ada.SwapTicks)
    if (Tick + 1 < Served)
      Bounds.push_back(Tick + 1);
  Bounds.push_back(Served);
  for (size_t B = 0; B + 1 < Bounds.size(); ++B) {
    SegmentStats Seg;
    Seg.From = Bounds[B];
    Seg.To = Bounds[B + 1];
    if (Seg.From >= Seg.To)
      continue;
    Seg.Epoch = Ada.Epochs[Seg.From];
    double N = static_cast<double>(Seg.To - Seg.From);
    for (size_t T = Seg.From; T != Seg.To; ++T) {
      size_t Input = Stream->inputAt(T);
      Seg.AdaptiveMeanCost += Ada.Costs[T];
      Seg.FrozenMeanCost += Frz.Costs[T];
      Seg.AdaptiveRegret +=
          Ada.Costs[T] - oracleCostFor(*Universe,
                                       *Ada.EpochsSeen.at(Ada.Epochs[T]),
                                       Input, OracleCache);
      Seg.FrozenRegret +=
          Frz.Costs[T] - oracleCostFor(*Universe,
                                       *Frz.EpochsSeen.at(Frz.Epochs[T]),
                                       Input, OracleCache);
    }
    Seg.AdaptiveMeanCost /= N;
    Seg.FrozenMeanCost /= N;
    Seg.AdaptiveRegret /= N;
    Seg.FrozenRegret /= N;
    Segments.push_back(Seg);
  }

  auto MeanCost = [Served](const StreamTrace &T) {
    double Sum = 0.0;
    for (size_t I = 0; I != Served; ++I)
      Sum += T.Costs[I];
    return Served ? Sum / static_cast<double>(Served) : 0.0;
  };

  std::string Json =
      std::string("{\n") + "  \"subcommand\": \"stream\",\n" +
      "  \"model\": \"" + jsonString(Opts.Model) + "\",\n" +
      "  \"benchmark\": \"" +
      jsonString(Adaptive.currentEpoch()->Model.Meta.Benchmark) + "\",\n" +
      "  \"schedule\": \"" + streams::scheduleName(Kind) + "\",\n" +
      "  \"requests\": " + std::to_string(Stream->length()) + ",\n" +
      "  \"served\": " + std::to_string(Served) + ",\n" +
      "  \"universe_scale\": " + jsonNumber(UniverseScale) + ",\n" +
      "  \"universe_inputs\": " + std::to_string(Universe->numInputs()) +
      ",\n" +
      "  \"key_property\": " + std::to_string(SO.KeyProperty) + ",\n" +
      "  \"first_shift_tick\": " + std::to_string(Stream->firstShiftTick()) +
      ",\n" +
      "  \"threads\": " +
      std::to_string(Opts.Pool ? Opts.Pool->numThreads() : 1) + ",\n" +
      "  \"window\": " + std::to_string(AO.Monitor.Window) + ",\n" +
      "  \"reservoir\": " + std::to_string(AO.ReservoirSize) + ",\n" +
      "  \"decisions_per_sec\": " +
      jsonNumber(Ada.ServeSeconds > 0.0
                     ? static_cast<double>(Ada.Served) / Ada.ServeSeconds
                     : 0.0) +
      ",\n" +
      "  \"frozen_decisions_per_sec\": " +
      jsonNumber(Frz.ServeSeconds > 0.0
                     ? static_cast<double>(Frz.Served) / Frz.ServeSeconds
                     : 0.0) +
      ",\n" +
      "  \"drift_detections\": " + std::to_string(AStats.DriftDetections) +
      ",\n" +
      "  \"retrains\": " + std::to_string(AStats.Retrains) + ",\n" +
      "  \"swaps\": " + std::to_string(AStats.Swaps) + ",\n" +
      "  \"rejected_candidates\": " +
      std::to_string(AStats.RejectedCandidates) + ",\n" +
      "  \"skipped_retrains\": " + std::to_string(AStats.SkippedRetrains) +
      ",\n" +
      "  \"last_skip_reason\": \"" + jsonString(AStats.LastSkipReason) +
      "\",\n" +
      "  \"final_epoch\": " + std::to_string(Adaptive.epoch()) + ",\n" +
      "  \"adaptive_mean_cost\": " + jsonNumber(MeanCost(Ada)) + ",\n" +
      "  \"frozen_mean_cost\": " + jsonNumber(MeanCost(Frz)) + ",\n" +
      "  \"mean_drift_to_swap_seconds\": " +
      jsonNumber(AcceptedSwaps ? SwapLatencySum /
                                     static_cast<double>(AcceptedSwaps)
                               : 0.0) +
      ",\n" +
      "  \"max_drift_to_swap_seconds\": " + jsonNumber(SwapLatencyMax) +
      ",\n";
  Json += "  \"swap_history\": [";
  for (size_t I = 0; I != History.size(); ++I) {
    const runtime::AdaptiveService::SwapRecord &R = History[I];
    Json += std::string(I ? "," : "") + "\n    {\"from_epoch\": " +
            std::to_string(R.FromEpoch) +
            ", \"to_epoch\": " + std::to_string(R.ToEpoch) +
            ", \"at_decision\": " + std::to_string(R.AtDecision) +
            ", \"champion_shadow_cost\": " +
            jsonNumber(R.ChampionShadowCost) +
            ", \"candidate_shadow_cost\": " +
            jsonNumber(R.CandidateShadowCost) +
            ", \"retrain_seconds\": " + jsonNumber(R.RetrainSeconds) +
            ", \"shadow_seconds\": " + jsonNumber(R.ShadowSeconds) +
            ", \"drift_to_swap_seconds\": " +
            jsonNumber(R.DriftToSwapSeconds) + ", \"accepted\": " +
            (R.Accepted ? "true" : "false") + "}";
  }
  Json += History.empty() ? "],\n" : "\n  ],\n";
  Json += "  \"segments\": [";
  for (size_t I = 0; I != Segments.size(); ++I) {
    const SegmentStats &S = Segments[I];
    Json += std::string(I ? "," : "") + "\n    {\"from\": " +
            std::to_string(S.From) + ", \"to\": " + std::to_string(S.To) +
            ", \"epoch\": " + std::to_string(S.Epoch) +
            ", \"adaptive_mean_cost\": " + jsonNumber(S.AdaptiveMeanCost) +
            ", \"frozen_mean_cost\": " + jsonNumber(S.FrozenMeanCost) +
            ", \"adaptive_regret\": " + jsonNumber(S.AdaptiveRegret) +
            ", \"frozen_regret\": " + jsonNumber(S.FrozenRegret) + "}";
  }
  Json += Segments.empty() ? "]\n" : "\n  ]\n";
  Json += "}\n";

  std::fputs(Json.c_str(), stdout);
  if (Opts.Json) {
    std::string Path = csvPath(Opts, "BENCH_stream.json");
    FILE *Out = std::fopen(Path.c_str(), "wb");
    if (!Out || std::fwrite(Json.data(), 1, Json.size(), Out) != Json.size()) {
      if (Out)
        std::fclose(Out);
      std::fprintf(stderr, "pbt-bench stream: cannot write '%s'\n",
                   Path.c_str());
      return 1;
    }
    std::fclose(Out);
  }
  return 0;
}

//===----------------------------------------------------------------------===//
// stream --mix
//===----------------------------------------------------------------------===//

int benchharness::runStreamMix(const DriverOptions &Opts) {
  std::vector<std::string> Models = splitModels(Opts.Model);
  if (Models.size() < 2) {
    std::fprintf(stderr,
                 "pbt-bench stream --mix: --model=a.pbt,b.pbt,... needs at "
                 "least two models (one tenant each)\n");
    return 1;
  }

  // The tenant table is the daemon's own: the same registry type
  // pbt-serve hands its batch workers, each tenant named by its model's
  // benchmark key with the program rebuilt from recorded provenance.
  daemon::ModelRegistryOptions RO;
  RO.Window = std::max(8u, Opts.StreamWindow);
  RO.Reservoir = std::max(8u, Opts.StreamReservoir);
  RO.AutoAdapt = false; // frozen tenants: parity-checkable serving
  RO.Pool = Opts.Pool;
  daemon::ModelRegistry Registry(RO);
  for (const std::string &Path : Models) {
    serialize::LoadStatus St = Registry.addTenant("", Path);
    if (!St) {
      std::fprintf(stderr, "pbt-bench stream --mix: cannot register '%s': %s\n",
                   Path.c_str(), St.Error.c_str());
      return 1;
    }
  }

  // One WorkloadStream per tenant over its own program: schedules
  // rotated through the three kinds and seeds decorrelated per tenant,
  // so every tenant drifts on its own clock inside the shared sequence.
  const streams::Schedule Rotation[3] = {streams::Schedule::Abrupt,
                                         streams::Schedule::Ramp,
                                         streams::Schedule::Periodic};
  std::vector<std::unique_ptr<streams::WorkloadStream>> Streams;
  std::vector<streams::MixedTenantSpec> Specs;
  for (size_t I = 0; I != Registry.size(); ++I) {
    daemon::Tenant *T = Registry.at(I);
    streams::WorkloadStreamOptions SO;
    SO.Kind = Rotation[I % 3];
    SO.Requests = std::max(1u, Opts.StreamRequests);
    SO.Seed = Opts.StreamSeed + 0x9E3779B97F4A7C15ull * (I + 1);
    SO.KeyProperty = Opts.StreamKey;
    SO.Period = Opts.StreamPeriod;
    try {
      Streams.push_back(
          std::make_unique<streams::WorkloadStream>(*T->Program, SO));
    } catch (const std::invalid_argument &E) {
      std::fprintf(stderr, "pbt-bench stream --mix: tenant '%s': %s\n",
                   T->Name.c_str(), E.what());
      return 1;
    }
    Specs.push_back({T->Name, Streams.back().get(), 1.0});
  }
  streams::MixedStreamOptions MO;
  MO.Requests = std::max(1u, Opts.StreamRequests);
  MO.Seed = Opts.StreamSeed;
  std::unique_ptr<streams::MixedStream> Mixed;
  try {
    Mixed = std::make_unique<streams::MixedStream>(std::move(Specs), MO);
  } catch (const std::invalid_argument &E) {
    std::fprintf(stderr, "pbt-bench stream --mix: %s\n", E.what());
    return 1;
  }

  // Replay the global sequence through the registry, holding each
  // tenant's ServeMutex per decision exactly like the daemon's batch
  // workers pass the serving-thread role around.
  struct TenantTrace {
    std::vector<unsigned> Landmarks;
    double ServeSeconds = 0.0;
  };
  std::vector<TenantTrace> Traces(Registry.size());
  double SecondsBudget = std::max(0.01, Opts.Seconds);
  support::WallTimer Budget;
  size_t Served = 0;
  for (size_t T = 0; T != Mixed->length(); ++T) {
    const streams::MixedStream::Tick &K = Mixed->at(T);
    daemon::Tenant *Ten = Registry.at(K.Tenant);
    TenantTrace &Trace = Traces[K.Tenant];
    support::WallTimer Timer;
    unsigned Landmark;
    {
      std::lock_guard<std::mutex> Lock(Ten->ServeMutex);
      Landmark = Ten->Service->decide(K.Input).Landmark;
    }
    Trace.ServeSeconds += Timer.elapsedSeconds();
    Trace.Landmarks.push_back(Landmark);
    Ten->Requests.fetch_add(1, std::memory_order_relaxed);
    Ten->Decisions.fetch_add(1, std::memory_order_relaxed);
    ++Served;
    if (Budget.elapsedSeconds() > SecondsBudget)
      break; // wall-clock cap; --requests is the deterministic bound
  }

  // The parity wall: an independent PredictionService replay of each
  // tenant's model file over exactly its subsequence of the mix must
  // agree decision for decision with what the registry served.
  size_t Mismatches = 0;
  for (size_t I = 0; I != Registry.size(); ++I) {
    daemon::Tenant *T = Registry.at(I);
    runtime::PredictionService Replay;
    serialize::LoadStatus St = Replay.loadFile(T->ModelPath);
    if (!St) {
      std::fprintf(stderr, "pbt-bench stream --mix: parity reload '%s': %s\n",
                   T->ModelPath.c_str(), St.Error.c_str());
      return 1;
    }
    const registry::BenchmarkFactory &F =
        registry::BenchmarkRegistry::instance().get(T->Benchmark);
    registry::ProgramPtr Program = F.makeProgram(
        Replay.model().Meta.Scale, Replay.model().Meta.ProgramSeed);
    serialize::LoadStatus Bound = Replay.bind(*Program);
    if (!Bound) {
      std::fprintf(stderr, "pbt-bench stream --mix: parity bind '%s': %s\n",
                   T->Name.c_str(), Bound.Error.c_str());
      return 1;
    }
    std::vector<size_t> Inputs = Mixed->tenantInputs(static_cast<unsigned>(I));
    Inputs.resize(Traces[I].Landmarks.size()); // the served prefix
    std::vector<runtime::PredictionService::Decision> Ref =
        Replay.decideBatch(Inputs);
    for (size_t R = 0; R != Ref.size(); ++R)
      if (Ref[R].Landmark != Traces[I].Landmarks[R]) {
        ++Mismatches;
        std::fprintf(stderr,
                     "pbt-bench stream --mix: tenant '%s' request %zu "
                     "(input %zu): registry chose %u, replay chose %u\n",
                     T->Name.c_str(), R, Inputs[R], Traces[I].Landmarks[R],
                     Ref[R].Landmark);
      }
  }

  std::string Json = std::string("{\n") +
                     "  \"subcommand\": \"stream-mix\",\n" +
                     "  \"requests\": " + std::to_string(Mixed->length()) +
                     ",\n" + "  \"served\": " + std::to_string(Served) +
                     ",\n" + "  \"mix_seed\": " +
                     std::to_string(MO.Seed) + ",\n" +
                     "  \"window\": " + std::to_string(RO.Window) + ",\n" +
                     "  \"reservoir\": " + std::to_string(RO.Reservoir) +
                     ",\n" + "  \"parity_mismatches\": " +
                     std::to_string(Mismatches) + ",\n" +
                     "  \"parity_ok\": " +
                     (Mismatches == 0 ? "true" : "false") + ",\n";
  Json += "  \"tenants\": [";
  for (size_t I = 0; I != Registry.size(); ++I) {
    daemon::Tenant *T = Registry.at(I);
    const TenantTrace &Trace = Traces[I];
    const streams::WorkloadStream &S = *Streams[I];
    Json += std::string(I ? "," : "") + "\n    {\"name\": \"" +
            jsonString(T->Name) + "\", \"benchmark\": \"" +
            jsonString(T->Benchmark) + "\", \"model\": \"" +
            jsonString(T->ModelPath) + "\", \"schedule\": \"" +
            streams::scheduleName(S.options().Kind) + "\", \"requests\": " +
            std::to_string(Trace.Landmarks.size()) +
            ", \"decisions_per_sec\": " +
            jsonNumber(Trace.ServeSeconds > 0.0
                           ? static_cast<double>(Trace.Landmarks.size()) /
                                 Trace.ServeSeconds
                           : 0.0) +
            ", \"first_shift_tick\": " + std::to_string(S.firstShiftTick()) +
            "}";
  }
  Json += Registry.size() ? "\n  ]\n" : "]\n";
  Json += "}\n";

  std::fputs(Json.c_str(), stdout);
  if (Opts.Json) {
    std::string Path = csvPath(Opts, "BENCH_stream_mix.json");
    FILE *Out = std::fopen(Path.c_str(), "wb");
    if (!Out || std::fwrite(Json.data(), 1, Json.size(), Out) != Json.size()) {
      if (Out)
        std::fclose(Out);
      std::fprintf(stderr, "pbt-bench stream --mix: cannot write '%s'\n",
                   Path.c_str());
      return 1;
    }
    std::fclose(Out);
  }
  return Mismatches == 0 ? 0 : 1;
}

//===----------------------------------------------------------------------===//
// interact
//===----------------------------------------------------------------------===//

int benchharness::runInteract(const DriverOptions &Opts) {
  std::vector<registry::SuiteEntry> Suite = suiteFor(Opts);

  std::string Json = std::string("{\n") + "  \"subcommand\": \"interact\",\n" +
                     "  \"scale\": " + jsonNumber(Opts.Scale) + ",\n" +
                     "  \"workloads\": [";
  support::TextTable Table;
  Table.setHeader({"Benchmark", "inputs", "landmarks", "interaction",
                   "oracle/static"});

  for (size_t W = 0; W != Suite.size(); ++W) {
    registry::SuiteEntry &E = Suite[W];
    support::WallTimer T;
    core::TrainedSystem System = core::trainSystem(*E.Program, E.Options);
    const linalg::Matrix &C = System.L1.Time; // inputs x landmarks
    size_t N = C.rows(), K = C.cols();
    if (N == 0 || K == 0)
      continue;

    // Two-way decomposition of the inputs-by-configs cost surface. The
    // additive model (grand mean + input effect + config effect) is the
    // least-squares fit without interaction; the fraction of variance it
    // cannot explain IS the input-config interaction -- zero would mean
    // one static choice is as good as an oracle, and the paper's whole
    // premise (Section 2) is that real workloads leave this large.
    double Grand = 0.0;
    std::vector<double> RowMean(N, 0.0), ColMean(K, 0.0);
    for (size_t I = 0; I != N; ++I)
      for (size_t J = 0; J != K; ++J) {
        double V = C.at(I, J);
        Grand += V;
        RowMean[I] += V;
        ColMean[J] += V;
      }
    Grand /= static_cast<double>(N * K);
    for (double &M : RowMean)
      M /= static_cast<double>(K);
    for (double &M : ColMean)
      M /= static_cast<double>(N);
    double SSTotal = 0.0, SSResid = 0.0;
    for (size_t I = 0; I != N; ++I)
      for (size_t J = 0; J != K; ++J) {
        double V = C.at(I, J);
        double Fit = RowMean[I] + ColMean[J] - Grand;
        SSTotal += (V - Grand) * (V - Grand);
        SSResid += (V - Fit) * (V - Fit);
      }
    double Interaction = SSTotal > 0.0 ? SSResid / SSTotal : 0.0;

    // What that interaction buys: dynamic oracle vs the best single
    // static landmark, as a mean-cost speedup.
    double OracleMean = 0.0;
    for (size_t I = 0; I != N; ++I) {
      double Best = C.at(I, 0);
      for (size_t J = 1; J != K; ++J)
        Best = std::min(Best, C.at(I, J));
      OracleMean += Best;
    }
    OracleMean /= static_cast<double>(N);
    size_t StaticBest = 0;
    for (size_t J = 1; J != K; ++J)
      if (ColMean[J] < ColMean[StaticBest])
        StaticBest = J;
    double Speedup =
        OracleMean > 0.0 ? ColMean[StaticBest] / OracleMean : 1.0;

    std::fprintf(stderr,
                 "[interact] %-12s interaction %.3f, oracle/static %.2fx "
                 "(%zux%zu table, %.1fs)\n",
                 E.Name.c_str(), Interaction, Speedup, N, K,
                 T.elapsedSeconds());
    Table.addRow({E.Name, std::to_string(N), std::to_string(K),
                  jsonNumber(Interaction), support::formatSpeedup(Speedup)});

    Json += std::string(W ? "," : "") + "\n    {\"name\": \"" +
            jsonString(E.Name) + "\", \"inputs\": " + std::to_string(N) +
            ", \"landmarks\": " + std::to_string(K) +
            ", \"interaction_strength\": " + jsonNumber(Interaction) +
            ", \"oracle_over_static\": " + jsonNumber(Speedup) +
            ", \"best_static_landmark\": " + std::to_string(StaticBest) +
            "}";
  }
  Json += Suite.empty() ? "]\n" : "\n  ]\n";
  Json += "}\n";

  std::fprintf(stderr,
               "\nInteraction strength per workload "
               "(PBT_BENCH_SCALE=%.2f):\n\n%s\n",
               Opts.Scale, Table.format().c_str());
  std::fputs(Json.c_str(), stdout);
  if (Opts.Json) {
    std::string Path = csvPath(Opts, "BENCH_interact.json");
    FILE *Out = std::fopen(Path.c_str(), "wb");
    if (!Out || std::fwrite(Json.data(), 1, Json.size(), Out) != Json.size()) {
      if (Out)
        std::fclose(Out);
      std::fprintf(stderr, "pbt-bench interact: cannot write '%s'\n",
                   Path.c_str());
      return 1;
    }
    std::fclose(Out);
  }
  return 0;
}

//===----------------------------------------------------------------------===//
// ablation-eta
//===----------------------------------------------------------------------===//

int benchharness::runAblationEta(const DriverOptions &Opts) {
  const double Etas[] = {0.001, 0.01, 0.1, 0.5, 1.0};
  std::vector<std::string> Names = Opts.Only;
  if (Names.empty())
    Names = {"binpacking", "clustering2", "poisson2d"};

  for (const std::string &Name : Names) {
    support::TextTable Table;
    Table.setHeader({"eta", "two-level (w/ feat.)", "satisfaction",
                     "selected classifier"});
    for (double Eta : Etas) {
      std::vector<registry::SuiteEntry> Suite =
          registry::makeSuite({Name}, Opts.Scale, Opts.Pool);
      registry::SuiteEntry &E = Suite.front();
      E.Options.L2.Eta = Eta;
      core::TrainedSystem System = core::trainSystem(*E.Program, E.Options);
      core::EvaluationResult R =
          core::evaluateSystem(*E.Program, System, Opts.Pool);
      Table.addRow({support::formatDouble(Eta, 3),
                    support::formatSpeedup(R.TwoLevelWithFeat),
                    support::formatPercent(R.TwoLevelSatisfaction),
                    System.L2.SelectedName});
    }
    std::printf("Ablation E7 (%s): cost-matrix blend factor eta\n\n%s\n",
                Name.c_str(), Table.format().c_str());
  }
  std::printf("Shape check: speedup/satisfaction should be robust in a "
              "band around eta = 0.5, the paper's setting "
              "(PBT_BENCH_SCALE=%.2f).\n",
              Opts.Scale);
  return 0;
}

//===----------------------------------------------------------------------===//
// ablation-landmarks
//===----------------------------------------------------------------------===//

int benchharness::runAblationLandmarks(const DriverOptions &Opts) {
  std::vector<std::string> Names = Opts.Only;
  if (Names.empty())
    Names = {"sort2", "clustering2"};

  for (const std::string &Name : Names) {
    support::TextTable Table;
    Table.setHeader({"landmarks", "kmeans-selected", "random-selected",
                     "degradation"});
    for (unsigned K : {2u, 5u, 8u, 12u}) {
      double SpeedKMeans = 0.0, SpeedRandom = 0.0;
      for (core::LandmarkSelection Sel :
           {core::LandmarkSelection::KMeansCentroids,
            core::LandmarkSelection::UniformRandom}) {
        std::vector<registry::SuiteEntry> Suite =
            registry::makeSuite({Name}, Opts.Scale, Opts.Pool);
        registry::SuiteEntry &E = Suite.front();
        E.Options.L1.NumLandmarks = K;
        E.Options.L1.Selection = Sel;
        core::TrainedSystem System = core::trainSystem(*E.Program, E.Options);
        core::EvaluationResult R =
            core::evaluateSystem(*E.Program, System, Opts.Pool);
        if (Sel == core::LandmarkSelection::KMeansCentroids)
          SpeedKMeans = R.DynamicOracle;
        else
          SpeedRandom = R.DynamicOracle;
      }
      double Degradation =
          SpeedKMeans > 0.0 ? (SpeedKMeans - SpeedRandom) / SpeedKMeans : 0.0;
      Table.addRow({std::to_string(K), support::formatSpeedup(SpeedKMeans),
                    support::formatSpeedup(SpeedRandom),
                    support::formatPercent(Degradation)});
    }
    std::printf("Ablation E5 (%s): landmark selection strategy "
                "(dynamic-oracle speedup over the static oracle)\n\n%s\n",
                Name.c_str(), Table.format().c_str());
  }
  std::printf("Shape check: random selection degrades small landmark "
              "counts most; the gap shrinks as counts grow "
              "(PBT_BENCH_SCALE=%.2f).\n",
              Opts.Scale);
  return 0;
}

//===----------------------------------------------------------------------===//
// ablation-twolevel
//===----------------------------------------------------------------------===//

int benchharness::runAblationTwoLevel(const DriverOptions &Opts) {
  std::vector<registry::SuiteEntry> Suite = suiteFor(Opts);

  support::TextTable Table;
  Table.setHeader({"Benchmark", "moved", "selected classifier",
                   "two-level", "one-level", "advantage"});

  for (registry::SuiteEntry &E : Suite) {
    core::TrainedSystem System = core::trainSystem(*E.Program, E.Options);
    core::EvaluationResult R =
        core::evaluateSystem(*E.Program, System, Opts.Pool);
    double Advantage = R.OneLevelWithFeat > 0.0
                           ? R.TwoLevelWithFeat / R.OneLevelWithFeat
                           : 0.0;
    Table.addRow({E.Name,
                  support::formatPercent(System.L2.RefinementMoveFraction),
                  System.L2.SelectedName,
                  support::formatSpeedup(R.TwoLevelWithFeat),
                  support::formatSpeedup(R.OneLevelWithFeat),
                  support::formatSpeedup(Advantage)});
    std::fprintf(stderr, "[twolevel] %-12s done\n", E.Name.c_str());
  }

  std::printf("Ablation E6: second-level cluster refinement and classifier "
              "selection (speedups over the static oracle, with feature "
              "extraction time)\n\n%s\n",
              Table.format().c_str());
  std::printf("Shape check: large 'moved' fractions show the feature-space "
              "clusters disagree with the performance-space labels (the "
              "paper reports 73.4%% for kmeans); 'advantage' is the paper's "
              "two-level-over-one-level factor (up to 34x in the paper) "
              "(PBT_BENCH_SCALE=%.2f).\n",
              Opts.Scale);
  return 0;
}

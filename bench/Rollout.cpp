//===- bench/Rollout.cpp - pbt-bench rollout: crash-safe fleet harness -----==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `pbt-bench rollout`: drives publish -> canary -> promote/rollback
/// cycles through an in-process RolloutController fleet over the
/// crash-safe model store, optionally under randomized fault injection
/// (--faults), and reports the rollout-path latencies and crash-recovery
/// behavior as BENCH_rollout.json. See Reports.h for the contract.
///
//===----------------------------------------------------------------------===//

#include "Reports.h"

#include "core/Pipeline.h"
#include "rollout/RolloutController.h"
#include "runtime/PredictionService.h"
#include "serialize/ModelIO.h"
#include "store/ModelStore.h"
#include "support/Cost.h"
#include "support/FaultInject.h"
#include "support/Random.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <iterator>
#include <map>
#include <string>
#include <vector>

namespace pbt {
namespace benchharness {

namespace {

struct Series {
  std::vector<double> V;
  void add(double X) { V.push_back(X); }
  double mean() const {
    if (V.empty())
      return 0.0;
    double S = 0.0;
    for (double X : V)
      S += X;
    return S / static_cast<double>(V.size());
  }
  double max() const {
    double M = 0.0;
    for (double X : V)
      M = std::max(M, X);
    return M;
  }
  std::string json() const {
    return "{\"count\": " + std::to_string(V.size()) +
           ", \"mean_s\": " + jsonNumber(mean()) +
           ", \"max_s\": " + jsonNumber(max()) + "}";
  }
};

/// Decisions (landmark per probe input) of a service -- the golden unit.
std::vector<unsigned> probeChoices(runtime::PredictionService &Service,
                                   const std::vector<size_t> &Probe) {
  std::vector<unsigned> Out;
  Out.reserve(Probe.size());
  for (size_t Input : Probe)
    Out.push_back(Service.decide(Input).Landmark);
  return Out;
}

} // namespace

int runRollout(const DriverOptions &Opts) {
  using rollout::RolloutController;
  using serialize::LoadStatus;
  using support::FaultInjector;
  using support::FaultPoint;

  std::vector<registry::SuiteEntry> Suite = suiteFor(Opts);
  registry::SuiteEntry &E = Suite.front();
  std::fprintf(stderr, "[rollout] training %s at scale %.2f...\n",
               E.Name.c_str(), Opts.Scale);
  core::TrainedSystem System = core::trainSystem(*E.Program, E.Options);
  const registry::BenchmarkFactory &F =
      registry::BenchmarkRegistry::instance().get(E.Name);
  serialize::TrainedModel Base = serialize::makeModel(
      E.Name, Opts.Scale, F.defaultProgramSeed(), *E.Program,
      std::move(System));
  Base.System.Data.reset();

  // A fresh store per run: the harness owns the whole lifecycle.
  std::string StoreDir = Opts.OutDir + "/rollout-store";
  std::error_code EC;
  std::filesystem::remove_all(StoreDir, EC);

  rollout::RolloutOptions RO;
  RO.Replicas = Opts.Replicas;
  auto Ctl = std::make_unique<RolloutController>(*E.Program, StoreDir, RO);
  LoadStatus St = Ctl->start(Base);
  if (!St) {
    std::fprintf(stderr, "pbt-bench rollout: store bootstrap failed: %s\n",
                 St.Error.c_str());
    return 1;
  }

  // Golden decisions per epoch: the first time an epoch serves, its
  // probe choices are recorded; every later sighting (post-promotion
  // syncs, post-crash recoveries) must reproduce them exactly.
  std::vector<size_t> Probe;
  for (size_t I = 0; I != std::min<size_t>(32, E.Program->numInputs()); ++I)
    Probe.push_back(I);
  std::map<uint64_t, std::vector<unsigned>> Golden;
  uint64_t GoldenMismatches = 0;
  auto checkGolden = [&](RolloutController &C) {
    for (size_t I = 0; I != C.replicaCount(); ++I) {
      rollout::Replica &R = C.replica(I);
      if (!R.serving())
        continue;
      std::vector<unsigned> Choices = probeChoices(R.service(), Probe);
      auto It = Golden.find(R.epoch());
      if (It == Golden.end())
        Golden.emplace(R.epoch(), std::move(Choices));
      else if (It->second != Choices)
        ++GoldenMismatches;
    }
  };
  checkGolden(*Ctl);

  // The randomized failpoint schedule. Crash-class points kill the
  // "fleet" mid-protocol (FaultCrash); the harness then restarts it from
  // the store like a supervisor would. Corruption/fsync points degrade
  // in place and must be survived without a restart.
  const FaultPoint Schedule[] = {
      FaultPoint::TornWrite,     FaultPoint::CrashBeforeRename,
      FaultPoint::CrashBeforeManifest,
      FaultPoint::CrashBetweenManifestAndCurrent,
      FaultPoint::CorruptChecksum, FaultPoint::FsyncFail,
      FaultPoint::FsyncSlow,
  };
  support::Rng FaultRng(Opts.FaultSeed);
  FaultInjector &Inj = FaultInjector::instance();
  Inj.reset();

  Series Publish, Canary, Promote, Recovery;
  unsigned Promoted = 0, RolledBack = 0, FailedPublishes = 0;
  unsigned Crashes = 0, Recoveries = 0;
  std::map<std::string, unsigned> FaultsArmed;

  for (unsigned Cycle = 0; Cycle != Opts.Cycles; ++Cycle) {
    // Alternate a clone of the base champion (equal shadow score ->
    // promote, exercising Retired) with a landmark-rotated degraded
    // candidate (worse decisions -> rollback).
    bool Degrade = (Cycle % 2) == 1;
    serialize::TrainedModel Candidate;
    St = serialize::loadModel(serialize::serializeModel(Base), Candidate);
    if (!St) {
      std::fprintf(stderr, "pbt-bench rollout: clone failed: %s\n",
                   St.Error.c_str());
      return 1;
    }
    if (Degrade && Candidate.System.L1.Landmarks.size() > 1)
      std::rotate(Candidate.System.L1.Landmarks.begin(),
                  Candidate.System.L1.Landmarks.begin() + 1,
                  Candidate.System.L1.Landmarks.end());

    if (Opts.Faults) {
      FaultPoint P = Schedule[FaultRng.index(std::size(Schedule))];
      // Hit 0 or 1: the same point fires on the image write or on the
      // manifest write behind it, widening the crash surface.
      Inj.arm(P, FaultRng.index(2));
      ++FaultsArmed[support::faultPointName(P)];
    }

    RolloutController::CycleReport Report;
    try {
      St = Ctl->rollout(std::move(Candidate), Report);
    } catch (const support::FaultCrash &Crash) {
      ++Crashes;
      std::fprintf(stderr, "[rollout] cycle %u: %s; restarting fleet\n",
                   Cycle, Crash.what());
      // The fleet "process" died: throw the controller away with the
      // store directory exactly as the crash left it, and restart.
      support::WallTimer RecoveryTimer;
      Ctl = std::make_unique<RolloutController>(*E.Program, StoreDir, RO);
      LoadStatus Resumed = Ctl->resume();
      if (!Resumed) {
        std::fprintf(stderr,
                     "pbt-bench rollout: recovery FAILED after %s: %s\n",
                     Crash.what(), Resumed.Error.c_str());
        return 1;
      }
      Recovery.add(RecoveryTimer.elapsedSeconds());
      ++Recoveries;
      checkGolden(*Ctl);
      continue;
    }
    Inj.reset(); // a non-crash fault may still be armed; clear it

    if (!St) {
      // Failing fsync / corrupt candidate image: the rollout refused to
      // ship. Nothing durable may have changed for the fleet.
      ++FailedPublishes;
      checkGolden(*Ctl);
      continue;
    }
    Publish.add(Report.PublishSeconds);
    Canary.add(Report.CanarySeconds);
    Promote.add(Report.PromoteSeconds);
    if (Report.Promoted)
      ++Promoted;
    else
      ++RolledBack;
    checkGolden(*Ctl);
  }
  Inj.reset();

  // Torn reads: every store image rejected by size/checksum verification
  // before a good epoch served. Prevented is expected to be nonzero
  // under --faults; SERVED torn reads (a replica acting on a bad image)
  // would surface as golden mismatches and must be zero.
  uint64_t TornPrevented = 0;
  for (size_t I = 0; I != Ctl->replicaCount(); ++I)
    TornPrevented += Ctl->replica(I).tornReadsPrevented();

  std::string J = "{\n";
  J += "  \"benchmark\": \"" + jsonString(E.Name) + "\",\n";
  J += "  \"scale\": " + jsonNumber(Opts.Scale) + ",\n";
  J += "  \"replicas\": " + std::to_string(Opts.Replicas) + ",\n";
  J += "  \"cycles\": " + std::to_string(Opts.Cycles) + ",\n";
  J += "  \"faults_enabled\": " + std::string(Opts.Faults ? "true" : "false") +
       ",\n";
  J += "  \"fault_seed\": " + std::to_string(Opts.FaultSeed) + ",\n";
  J += "  \"faults_armed\": {";
  {
    bool First = true;
    for (const auto &[Name, N] : FaultsArmed) {
      J += std::string(First ? "" : ", ") + "\"" + jsonString(Name) +
           "\": " + std::to_string(N);
      First = false;
    }
  }
  J += "},\n";
  J += "  \"promoted\": " + std::to_string(Promoted) + ",\n";
  J += "  \"rolled_back\": " + std::to_string(RolledBack) + ",\n";
  J += "  \"failed_publishes\": " + std::to_string(FailedPublishes) + ",\n";
  J += "  \"crashes_injected\": " + std::to_string(Crashes) + ",\n";
  J += "  \"recoveries\": " + std::to_string(Recoveries) + ",\n";
  J += "  \"publish\": " + Publish.json() + ",\n";
  J += "  \"canary\": " + Canary.json() + ",\n";
  J += "  \"promote\": " + Promote.json() + ",\n";
  J += "  \"recovery\": " + Recovery.json() + ",\n";
  J += "  \"current_epoch\": " + std::to_string(Ctl->currentEpoch()) + ",\n";
  J += "  \"torn_reads_prevented\": " + std::to_string(TornPrevented) + ",\n";
  J += "  \"torn_reads_served\": 0,\n";
  J += "  \"golden_mismatches\": " + std::to_string(GoldenMismatches) + "\n";
  J += "}\n";
  std::fputs(J.c_str(), stdout);

  if (Opts.Json) {
    std::string Path = Opts.OutDir + "/BENCH_rollout.json";
    if (FILE *Out = std::fopen(Path.c_str(), "w")) {
      std::fputs(J.c_str(), Out);
      std::fclose(Out);
      std::fprintf(stderr, "[rollout] wrote %s\n", Path.c_str());
    } else {
      std::fprintf(stderr, "pbt-bench rollout: cannot write '%s'\n",
                   Path.c_str());
      return 1;
    }
  }

  if (GoldenMismatches != 0) {
    std::fprintf(stderr,
                 "pbt-bench rollout: %llu golden decision mismatches -- a "
                 "replica served state that diverged from its epoch\n",
                 static_cast<unsigned long long>(GoldenMismatches));
    return 1;
  }
  if (Crashes != Recoveries) {
    std::fprintf(stderr, "pbt-bench rollout: %u crashes but %u recoveries\n",
                 Crashes, Recoveries);
    return 1;
  }
  return 0;
}

} // namespace benchharness
} // namespace pbt

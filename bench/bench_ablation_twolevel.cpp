//===- bench/bench_ablation_twolevel.cpp - Second-level refinement ----------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the in-text evidence of Section 4.2 for the second level of
/// learning:
///
///   * the fraction of training inputs whose performance-based label
///     differs from their Level-1 feature-space cluster (the paper reports
///     73.4% moved for kmeans) -- the "mapping disparity" the second level
///     closes;
///   * which production classifier the zoo selection picked, and how the
///     selected two-level classifier compares against the one-level
///     baseline on the same landmarks.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Table.h"

#include <cstdio>

using namespace pbt;
using namespace pbt::benchharness;

int main() {
  double Scale = scaleFromEnv();
  support::ThreadPool Pool;
  std::vector<SuiteEntry> Suite = makeStandardSuite(Scale, &Pool);

  support::TextTable Table;
  Table.setHeader({"Benchmark", "moved", "selected classifier",
                   "two-level", "one-level", "advantage"});

  for (SuiteEntry &E : Suite) {
    core::TrainedSystem System = core::trainSystem(*E.Program, E.Options);
    core::EvaluationResult R = core::evaluateSystem(*E.Program, System);
    double Advantage = R.OneLevelWithFeat > 0.0
                           ? R.TwoLevelWithFeat / R.OneLevelWithFeat
                           : 0.0;
    Table.addRow({E.Name,
                  support::formatPercent(System.L2.RefinementMoveFraction),
                  System.L2.SelectedName,
                  support::formatSpeedup(R.TwoLevelWithFeat),
                  support::formatSpeedup(R.OneLevelWithFeat),
                  support::formatSpeedup(Advantage)});
    std::fprintf(stderr, "[twolevel] %-12s done\n", E.Name.c_str());
  }

  std::printf("Ablation E6: second-level cluster refinement and classifier "
              "selection (speedups over the static oracle, with feature "
              "extraction time)\n\n%s\n",
              Table.format().c_str());
  std::printf("Shape check: large 'moved' fractions show the feature-space "
              "clusters disagree with the performance-space labels (the "
              "paper reports 73.4%% for kmeans); 'advantage' is the paper's "
              "two-level-over-one-level factor (up to 34x in the paper) "
              "(PBT_BENCH_SCALE=%.2f).\n",
              Scale);
  return 0;
}

//===- bench/Fleet.cpp - pbt-bench fleet: cross-process chaos wall ---------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `pbt-bench fleet`: the supervised cross-process serving harness and
/// its chaos wall. Real pbt-serve processes (fork/exec'd by a
/// fleet::Supervisor) serve one store-backed tenant; FailoverClient
/// threads drive load across the replica endpoints while the harness
/// SIGKILLs random replicas, promotes clone epochs through the store
/// mid-chaos, and finally crash-loops one replica into quarantine.
///
/// The wall's invariants (any violation is a nonzero exit):
///
///   * parity  -- every successful answer matches an in-process
///     PredictionService replay of the same model (promotions are clone
///     epochs, so decisions are epoch-invariant by construction);
///   * no loss -- no predict() call exhausts the replica list while a
///     survivor is healthy (Shed is an answer, not a loss);
///   * reconvergence -- after every kill the supervisor restarts the
///     victim and the whole fleet reports the store's CURRENT epoch;
///   * quarantine -- a crash-looping replica stops being restarted
///     while the survivors keep answering throughout.
///
/// See Reports.h for the full contract; BENCH_fleet.json is the
/// machine-readable record.
///
//===----------------------------------------------------------------------===//

#include "Reports.h"

#include "core/Pipeline.h"
#include "daemon/Client.h"
#include "fleet/Supervisor.h"
#include "rollout/RolloutController.h"
#include "runtime/PredictionService.h"
#include "serialize/ModelIO.h"
#include "support/Cost.h"
#include "support/Random.h"
#include "support/Statistics.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

namespace pbt {
namespace benchharness {

namespace {

using Clock = std::chrono::steady_clock;

double monotonic() {
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

std::string dirnameOf(const std::string &Path) {
  size_t Slash = Path.rfind('/');
  return Slash == std::string::npos ? std::string(".") : Path.substr(0, Slash);
}

/// What one load thread saw. Shed is admission control (an answer);
/// Lost is a predict() that exhausted every replica -- the wall's
/// no-loss invariant says this stays zero while a survivor lives.
struct LoadResult {
  uint64_t Ok = 0;
  uint64_t Shed = 0;
  uint64_t Lost = 0;
  uint64_t Decisions = 0;
  uint64_t ParityChecked = 0;
  uint64_t ParityMismatches = 0;
  uint64_t Failovers = 0;
  std::vector<double> LatenciesUs;
  std::vector<double> FailoverLatenciesUs;
  std::string FirstError;
  daemon::FailoverClient::Stats Client;
};

/// One load thread: a FailoverClient replaying its stride of the input
/// universe in small batches until the stop flag, parity-checking every
/// answer against the golden in-process decisions.
void loadThread(const std::vector<std::string> &Endpoints,
                const std::string &Tenant,
                const std::vector<uint32_t> &Golden, unsigned Offset,
                unsigned Stride, const std::atomic<bool> &Stop,
                std::atomic<uint64_t> &OkPulse, LoadResult &R) {
  daemon::FailoverOptions FO;
  FO.Client.ConnectTimeout = 1.0;
  FO.Client.IoTimeout = 10.0;
  FO.Client.MaxConnectAttempts = 1; // failover beats hammering a corpse
  FO.CooldownSeconds = 0.25;
  FO.PassesPerCall = 3;
  daemon::FailoverClient C(Endpoints, Tenant, FO);

  const size_t N = Golden.size();
  size_t Cursor = Offset % N;
  std::vector<uint64_t> Batch;
  std::vector<daemon::PredictedChoice> Choices;
  std::string Err;
  while (!Stop.load(std::memory_order_relaxed)) {
    Batch.clear();
    for (unsigned K = 0; K < 8; ++K) {
      Batch.push_back(static_cast<uint64_t>(Cursor));
      Cursor = (Cursor + Stride) % N;
    }
    auto T0 = Clock::now();
    daemon::DaemonClient::PredictOutcome O = C.predict(Batch, Choices, Err);
    double Us =
        std::chrono::duration<double, std::micro>(Clock::now() - T0).count();
    if (O == daemon::DaemonClient::PredictOutcome::Error) {
      ++R.Lost;
      if (R.FirstError.empty())
        R.FirstError = Err;
      continue;
    }
    R.LatenciesUs.push_back(Us);
    R.Failovers += C.lastFailovers();
    if (C.lastFailovers() > 0)
      R.FailoverLatenciesUs.push_back(Us);
    if (O == daemon::DaemonClient::PredictOutcome::Shed) {
      ++R.Shed;
      continue;
    }
    ++R.Ok;
    OkPulse.fetch_add(1, std::memory_order_relaxed);
    R.Decisions += Choices.size();
    for (size_t K = 0; K < Batch.size() && K < Choices.size(); ++K) {
      ++R.ParityChecked;
      if (Choices[K].Landmark != Golden[Batch[K]])
        ++R.ParityMismatches;
    }
  }
  R.Client = C.stats();
  C.close();
}

std::string jsonQuantile(const std::vector<double> &V, double Q) {
  if (V.empty())
    return "null";
  return jsonNumber(support::quantile(V, Q));
}

} // namespace

int runFleet(const DriverOptions &Opts, const char *Argv0) {
  using rollout::RolloutController;
  using serialize::LoadStatus;

  // --- Train one model and seed a fresh crash-safe store. -------------
  std::vector<registry::SuiteEntry> Suite = suiteFor(Opts);
  registry::SuiteEntry &E = Suite.front();
  std::fprintf(stderr, "[fleet] training %s at scale %.2f...\n",
               E.Name.c_str(), Opts.Scale);
  core::TrainedSystem System = core::trainSystem(*E.Program, E.Options);
  const registry::BenchmarkFactory &F =
      registry::BenchmarkRegistry::instance().get(E.Name);
  serialize::TrainedModel Base = serialize::makeModel(
      E.Name, Opts.Scale, F.defaultProgramSeed(), *E.Program,
      std::move(System));
  Base.System.Data.reset();

  std::string StoreDir = Opts.OutDir + "/fleet-store";
  std::error_code EC;
  std::filesystem::remove_all(StoreDir, EC);

  // One in-process replica: the publisher's canary. The real fleet is
  // the external pbt-serve processes below.
  rollout::RolloutOptions RO;
  RO.Replicas = 1;
  RolloutController Ctl(*E.Program, StoreDir, RO);
  LoadStatus St = Ctl.start(Base);
  if (!St) {
    std::fprintf(stderr, "pbt-bench fleet: store bootstrap failed: %s\n",
                 St.Error.c_str());
    return 1;
  }

  // --- Golden decisions: the parity baseline. Every promoted epoch is
  // a clone of Base, so one in-process replay covers the whole run.
  std::string ModelPath = Opts.OutDir + "/fleet-model.pbt";
  St = serialize::saveModelFile(ModelPath, Base);
  if (!St) {
    std::fprintf(stderr, "pbt-bench fleet: cannot save parity model: %s\n",
                 St.Error.c_str());
    return 1;
  }
  runtime::PredictionService Parity;
  St = Parity.loadFile(ModelPath);
  if (St)
    St = Parity.bind(*E.Program);
  if (!St || !Parity.ready()) {
    std::fprintf(stderr, "pbt-bench fleet: parity replica: %s\n",
                 St.Error.c_str());
    return 1;
  }
  std::vector<size_t> AllInputs(E.Program->numInputs());
  for (size_t I = 0; I < AllInputs.size(); ++I)
    AllInputs[I] = I;
  std::vector<runtime::PredictionService::Decision> GoldenDecisions =
      Parity.decideBatch(AllInputs, Opts.Pool);
  std::vector<uint32_t> Golden(GoldenDecisions.size());
  for (size_t I = 0; I < Golden.size(); ++I)
    Golden[I] = GoldenDecisions[I].Landmark;

  // --- The supervised fleet: N real pbt-serve processes on the store. -
  bool Tcp = Opts.FleetTransport == "tcp";
  std::atomic<uint64_t> Resumes{0};
  fleet::SupervisorOptions SUP;
  SUP.ServerExe = Opts.ServerExe.empty() ? dirnameOf(Argv0) + "/pbt-serve"
                                         : Opts.ServerExe;
  SUP.ServerArgs = {"--store=" + E.Name + "=" + StoreDir,
                    "--store-poll-ms=25",
                    "--workers=" + std::to_string(std::max(1u, Opts.Workers)),
                    "--queue=" + std::to_string(std::max<size_t>(
                                     1, Opts.QueueCapacity)),
                    "--read-deadline=10"};
  SUP.Replicas = std::max(2u, Opts.Replicas);
  SUP.Tcp = Tcp;
  SUP.RuntimeDir = "/tmp/pbt-fleet-" + std::to_string(::getpid());
  SUP.HealthIntervalSeconds = 0.1;
  SUP.BackoffSeconds = 0.05;
  SUP.BackoffCapSeconds = 0.5;
  SUP.BackoffResetSeconds = 2.0;
  // The window must be generous: under ASan/TSan a respawn (fork, exec,
  // sanitizer init, model load) plus the capped backoff can take a
  // couple of seconds, and quarantine only engages if the kill-loop's
  // restarts all land inside one window.
  SUP.QuarantineRestarts = 4;
  SUP.QuarantineWindowSeconds = 12.0;
  // The supervisor, not the publisher, drives the resume path: before
  // each respawn the store's recovery is re-run and the canary
  // re-synced, so a replacement process always loads a durable CURRENT.
  SUP.OnRestart = [&](size_t) {
    Ctl.resume();
    Resumes.fetch_add(1, std::memory_order_relaxed);
  };
  fleet::Supervisor Sup(SUP);
  std::string Err;
  if (!Sup.start(Err)) {
    std::fprintf(stderr, "pbt-bench fleet: supervisor start: %s\n",
                 Err.c_str());
    return 1;
  }

  auto Fail = [&](const char *Why) {
    std::fprintf(stderr, "pbt-bench fleet: %s\n", Why);
    Sup.stop();
    return 1;
  };

  support::WallTimer StartupTimer;
  if (!Sup.waitConverged(Ctl.currentEpoch(), 120.0))
    return Fail("fleet never converged onto the bootstrap epoch");
  double StartupSeconds = StartupTimer.elapsedSeconds();

  // --- Load: FailoverClient threads over the (stable) endpoint list. --
  std::vector<std::string> Endpoints = Sup.endpoints();
  unsigned Conns = std::max(2u, Opts.Connections);
  std::vector<LoadResult> Results(Conns);
  std::atomic<bool> StopLoad{false};
  std::atomic<uint64_t> OkPulse{0};
  std::vector<std::thread> Threads;
  for (unsigned C = 0; C < Conns; ++C)
    Threads.emplace_back([&, C] {
      loadThread(Endpoints, E.Name, Golden, C, Conns, StopLoad, OkPulse,
                 Results[C]);
    });

  auto StopAll = [&] {
    StopLoad.store(true);
    for (std::thread &T : Threads)
      T.join();
    Threads.clear();
  };

  // --- Chaos: SIGKILL random replicas, reconverge after every kill,
  // promote clone epochs mid-chaos. Victim choice is random but rate-
  // limited per replica (at most 1 kill in any trailing 5 s: at most 3
  // restarts inside a 12 s quarantine window, below the threshold of 4)
  // so phase 1 chaos never trips quarantine by accident -- phase 2
  // tests quarantine deliberately.
  support::Rng Rng(Opts.FaultSeed);
  unsigned Kills = Opts.Chaos ? std::max(1u, Opts.Kills) : 0;
  unsigned Promotions = 0;
  uint64_t ConvergeFailures = 0;
  std::vector<double> ConvergeSeconds;
  std::vector<std::deque<double>> KillTimes(SUP.Replicas);
  for (unsigned Kill = 0; Kill < Kills; ++Kill) {
    size_t Victim = SUP.Replicas;
    for (unsigned Spin = 0; Spin < 600 && Victim == SUP.Replicas; ++Spin) {
      size_t I = Rng.index(SUP.Replicas);
      std::deque<double> &KT = KillTimes[I];
      double Now = monotonic();
      while (!KT.empty() && Now - KT.front() > 5.0)
        KT.pop_front();
      if (KT.empty() && Sup.pid(I) > 0)
        Victim = I;
      else
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    if (Victim == SUP.Replicas)
      return (StopAll(), Fail("no eligible chaos victim (fleet wedged?)"));
    KillTimes[Victim].push_back(monotonic());
    Sup.killReplica(Victim, SIGKILL);

    // Every 5th kill, promote a clone epoch while the victim is down:
    // reconvergence then proves restart and hot-swap compose.
    if (Kill % 5 == 4) {
      serialize::TrainedModel Clone;
      if (serialize::loadModel(serialize::serializeModel(Base), Clone)) {
        RolloutController::CycleReport Report;
        if (Ctl.rollout(std::move(Clone), Report) && Report.Promoted)
          ++Promotions;
      }
    }

    support::WallTimer ConvergeTimer;
    if (!Sup.waitConverged(Ctl.currentEpoch(), 120.0)) {
      ++ConvergeFailures;
      std::fprintf(stderr,
                   "[fleet] kill %u (replica %zu): fleet failed to "
                   "reconverge onto epoch %llu\n",
                   Kill, Victim,
                   static_cast<unsigned long long>(Ctl.currentEpoch()));
      break;
    }
    ConvergeSeconds.push_back(ConvergeTimer.elapsedSeconds());
  }

  // --- Quarantine: crash-loop replica 0 until the supervisor gives up
  // on it, while the survivors keep answering.
  bool QuarantineEngaged = false;
  uint64_t OkDuringQuarantine = 0;
  if (Opts.Chaos && ConvergeFailures == 0) {
    uint64_t PulseBefore = OkPulse.load();
    double Deadline = monotonic() + 120.0;
    while (monotonic() < Deadline) {
      if (Sup.quarantinedCount() > 0) {
        QuarantineEngaged = true;
        break;
      }
      std::vector<fleet::ReplicaStatus> Sts = Sup.statuses();
      if (Sts[0].State == fleet::ReplicaState::Starting ||
          Sts[0].State == fleet::ReplicaState::Healthy ||
          Sts[0].State == fleet::ReplicaState::Degraded)
        Sup.killReplica(0, SIGKILL);
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
    if (QuarantineEngaged) {
      // Survivors must still be answering *after* quarantine engaged.
      uint64_t PulseAt = OkPulse.load();
      double Until = monotonic() + 10.0;
      while (monotonic() < Until && OkPulse.load() == PulseAt)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      OkDuringQuarantine = OkPulse.load() - PulseBefore;
    }
  }

  // Let the load settle briefly on the final fleet shape, then stop.
  std::this_thread::sleep_for(std::chrono::milliseconds(
      static_cast<long>(std::max(0.05, Opts.Chaos ? 0.2 : Opts.Seconds) *
                        1000)));
  StopAll();

  uint64_t Restarts = Sup.totalRestarts();
  size_t Quarantined = Sup.quarantinedCount();
  size_t HealthyAtEnd = Sup.healthyCount();
  Sup.stop();
  std::filesystem::remove_all(SUP.RuntimeDir, EC);

  // --- Merge + report. ------------------------------------------------
  LoadResult Sum;
  std::string FirstError;
  for (LoadResult &R : Results) {
    Sum.Ok += R.Ok;
    Sum.Shed += R.Shed;
    Sum.Lost += R.Lost;
    Sum.Decisions += R.Decisions;
    Sum.ParityChecked += R.ParityChecked;
    Sum.ParityMismatches += R.ParityMismatches;
    Sum.Failovers += R.Failovers;
    Sum.Client.Failovers += R.Client.Failovers;
    Sum.Client.MarkDowns += R.Client.MarkDowns;
    Sum.Client.Reconnects += R.Client.Reconnects;
    Sum.Client.Exhausted += R.Client.Exhausted;
    Sum.LatenciesUs.insert(Sum.LatenciesUs.end(), R.LatenciesUs.begin(),
                           R.LatenciesUs.end());
    Sum.FailoverLatenciesUs.insert(Sum.FailoverLatenciesUs.end(),
                                   R.FailoverLatenciesUs.begin(),
                                   R.FailoverLatenciesUs.end());
    if (FirstError.empty())
      FirstError = R.FirstError;
  }
  double Answered = static_cast<double>(Sum.Ok + Sum.Shed);
  double Availability =
      Answered + Sum.Lost > 0 ? Answered / (Answered + Sum.Lost) : 1.0;

  std::string J = "{\n";
  J += "  \"subcommand\": \"fleet\",\n";
  J += "  \"benchmark\": \"" + jsonString(E.Name) + "\",\n";
  J += "  \"scale\": " + jsonNumber(Opts.Scale) + ",\n";
  J += "  \"replicas\": " + std::to_string(SUP.Replicas) + ",\n";
  J += "  \"transport\": \"" + jsonString(Opts.FleetTransport) + "\",\n";
  J += "  \"connections\": " + std::to_string(Conns) + ",\n";
  J += "  \"chaos\": " + std::string(Opts.Chaos ? "true" : "false") + ",\n";
  J += "  \"kills\": " + std::to_string(Kills) + ",\n";
  J += "  \"promotions_mid_chaos\": " + std::to_string(Promotions) + ",\n";
  J += "  \"startup_converge_s\": " + jsonNumber(StartupSeconds) + ",\n";
  J += "  \"requests_ok\": " + std::to_string(Sum.Ok) + ",\n";
  J += "  \"requests_shed\": " + std::to_string(Sum.Shed) + ",\n";
  J += "  \"requests_lost\": " + std::to_string(Sum.Lost) + ",\n";
  J += "  \"decisions\": " + std::to_string(Sum.Decisions) + ",\n";
  J += "  \"availability\": " + jsonNumber(Availability) + ",\n";
  J += "  \"latency_p50_us\": " + jsonQuantile(Sum.LatenciesUs, 0.5) + ",\n";
  J += "  \"latency_p99_us\": " + jsonQuantile(Sum.LatenciesUs, 0.99) + ",\n";
  J += "  \"failovers\": " + std::to_string(Sum.Failovers) + ",\n";
  J += "  \"failover_latency_p50_us\": " +
       jsonQuantile(Sum.FailoverLatenciesUs, 0.5) + ",\n";
  J += "  \"failover_latency_p99_us\": " +
       jsonQuantile(Sum.FailoverLatenciesUs, 0.99) + ",\n";
  J += "  \"mark_downs\": " + std::to_string(Sum.Client.MarkDowns) + ",\n";
  J += "  \"reconnects\": " + std::to_string(Sum.Client.Reconnects) + ",\n";
  J += "  \"restarts\": " + std::to_string(Restarts) + ",\n";
  J += "  \"supervisor_resumes\": " + std::to_string(Resumes.load()) + ",\n";
  J += "  \"converge_p50_s\": " + jsonQuantile(ConvergeSeconds, 0.5) + ",\n";
  J += "  \"converge_max_s\": " +
       (ConvergeSeconds.empty() ? "null"
                                : jsonNumber(support::maxOf(ConvergeSeconds))) +
       ",\n";
  J += "  \"converge_failures\": " + std::to_string(ConvergeFailures) + ",\n";
  J += "  \"quarantine_engaged\": " +
       std::string(QuarantineEngaged ? "true" : "false") + ",\n";
  J += "  \"quarantined\": " + std::to_string(Quarantined) + ",\n";
  J += "  \"healthy_at_end\": " + std::to_string(HealthyAtEnd) + ",\n";
  J += "  \"ok_during_quarantine\": " + std::to_string(OkDuringQuarantine) +
       ",\n";
  J += "  \"parity_inputs\": " + std::to_string(Sum.ParityChecked) + ",\n";
  J += "  \"parity_mismatches\": " + std::to_string(Sum.ParityMismatches) +
       ",\n";
  J += "  \"final_epoch\": " + std::to_string(Ctl.currentEpoch()) + "\n";
  J += "}\n";
  std::fputs(J.c_str(), stdout);

  if (Opts.Json) {
    std::string Path = Opts.OutDir + "/BENCH_fleet.json";
    if (FILE *Out = std::fopen(Path.c_str(), "w")) {
      std::fputs(J.c_str(), Out);
      std::fclose(Out);
      std::fprintf(stderr, "[fleet] wrote %s\n", Path.c_str());
    } else {
      std::fprintf(stderr, "pbt-bench fleet: cannot write '%s'\n",
                   Path.c_str());
      return 1;
    }
  }

  // --- The wall. ------------------------------------------------------
  int Rc = 0;
  if (Sum.ParityMismatches != 0) {
    std::fprintf(stderr,
                 "pbt-bench fleet: %llu PARITY MISMATCHES -- a replica "
                 "answered differently from the in-process replay\n",
                 static_cast<unsigned long long>(Sum.ParityMismatches));
    Rc = 1;
  }
  if (Sum.Lost != 0) {
    std::fprintf(stderr,
                 "pbt-bench fleet: %llu requests LOST (all replicas "
                 "exhausted; first error: %s)\n",
                 static_cast<unsigned long long>(Sum.Lost),
                 FirstError.c_str());
    Rc = 1;
  }
  if (ConvergeFailures != 0) {
    std::fprintf(stderr, "pbt-bench fleet: fleet failed to reconverge after "
                         "a kill\n");
    Rc = 1;
  }
  if (Opts.Chaos && ConvergeFailures == 0) {
    if (!QuarantineEngaged) {
      std::fprintf(stderr, "pbt-bench fleet: crash-looping replica was "
                           "never quarantined\n");
      Rc = 1;
    } else if (OkDuringQuarantine == 0) {
      std::fprintf(stderr, "pbt-bench fleet: survivors answered nothing "
                           "during the quarantine phase\n");
      Rc = 1;
    }
  }
  if (Sum.Ok == 0) {
    std::fprintf(stderr, "pbt-bench fleet: no request ever succeeded\n");
    Rc = 1;
  }
  return Rc;
}

} // namespace benchharness
} // namespace pbt

//===- bench/Loadgen.cpp - Multi-client daemon load harness ----------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `pbt-bench loadgen`: the measurement client for the pbt-serve
/// daemon. It drives N concurrent connections, each replaying a slice
/// of a tenant's deterministic WorkloadStream schedule through the
/// framed Unix-socket protocol, in two phases:
///
///   * sustained -- --connections clients for --seconds, measuring
///     end-to-end request latency (p50/p99/p999) and decisions/sec at
///     the configured concurrency;
///   * saturation -- the connection count is multiplied past the
///     server's queue bound and each request carries one input, so the
///     admission controller must shed; the phase records tail latency
///     and the shed rate at the overload boundary.
///
/// Every landmark the daemon answered during the sustained phase is
/// then replayed in-process through PredictionService::decideBatch on
/// the same model file; any divergence is a nonzero exit. That is the
/// serving-stack parity wall extended across the process boundary: the
/// daemon may batch, shard, and interleave tenants however load
/// dictates, but it must never change an answer.
///
/// With --spawn the harness forks its own pbt-serve (so CI needs no
/// background-process choreography) and shuts it down over the
/// protocol when done.
///
//===----------------------------------------------------------------------===//

#include "Reports.h"

#include "daemon/Client.h"
#include "daemon/Protocol.h"
#include "runtime/PredictionService.h"
#include "serialize/ModelIO.h"
#include "streams/WorkloadStream.h"
#include "support/Statistics.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

namespace pbt {
namespace benchharness {

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point T0) {
  return std::chrono::duration<double>(Clock::now() - T0).count();
}

/// One tenant as the harness sees it: the daemon-side name, the model
/// file, and the in-process replica used for stream generation and the
/// parity replay.
struct LoadTenant {
  std::string Name;
  std::string ModelPath;
  std::string Benchmark;
  registry::ProgramPtr Program;
  std::unique_ptr<runtime::PredictionService> Replica;
  std::unique_ptr<streams::WorkloadStream> Stream;
};

/// What one connection thread measured.
struct ConnResult {
  std::vector<double> LatenciesUs;
  uint64_t Requests = 0;
  uint64_t Decisions = 0;
  uint64_t Shed = 0;
  /// input id -> daemon landmark, first answer per input (parity).
  std::unordered_map<uint64_t, uint32_t> Answers;
  bool Failed = false;
  std::string Error;
};

struct PhaseSummary {
  double Seconds = 0;
  uint64_t Requests = 0;
  uint64_t Decisions = 0;
  uint64_t Shed = 0;
  std::vector<double> LatenciesUs;
  bool Failed = false;
  std::string Error;
};

PhaseSummary mergeConns(std::vector<ConnResult> &Conns, double Seconds) {
  PhaseSummary P;
  P.Seconds = Seconds;
  for (ConnResult &C : Conns) {
    P.Requests += C.Requests;
    P.Decisions += C.Decisions;
    P.Shed += C.Shed;
    P.LatenciesUs.insert(P.LatenciesUs.end(), C.LatenciesUs.begin(),
                         C.LatenciesUs.end());
    if (C.Failed && !P.Failed) {
      P.Failed = true;
      P.Error = C.Error;
    }
  }
  return P;
}

std::string jsonQuantile(const std::vector<double> &V, double Q) {
  // An empty phase has no percentiles; support::quantile would
  // fabricate 0.0 (the zero-batch bug the serve harness had).
  if (V.empty())
    return "null";
  return jsonNumber(support::quantile(V, Q));
}

std::string jsonPhaseSummary(const PhaseSummary &P, unsigned Connections) {
  double Dps = P.Seconds > 0 ? static_cast<double>(P.Decisions) / P.Seconds
                             : 0.0;
  double Total = static_cast<double>(P.Requests + P.Shed);
  std::string J = "{";
  J += "\"connections\": " + std::to_string(Connections);
  J += ", \"seconds\": " + jsonNumber(P.Seconds);
  J += ", \"requests\": " + std::to_string(P.Requests);
  J += ", \"decisions\": " + std::to_string(P.Decisions);
  J += ", \"decisions_per_sec\": " + jsonNumber(Dps);
  J += ", \"shed\": " + std::to_string(P.Shed);
  J += ", \"shed_rate\": " +
       (Total > 0 ? jsonNumber(static_cast<double>(P.Shed) / Total) : "null");
  J += ", \"p50_us\": " + jsonQuantile(P.LatenciesUs, 0.5);
  J += ", \"p99_us\": " + jsonQuantile(P.LatenciesUs, 0.99);
  J += ", \"p999_us\": " + jsonQuantile(P.LatenciesUs, 0.999);
  J += ", \"max_us\": " +
       (P.LatenciesUs.empty() ? "null"
                              : jsonNumber(support::maxOf(P.LatenciesUs)));
  J += "}";
  return J;
}

/// Splits --model=a.pbt,fast=b.pbt into (name, path); empty name means
/// "the model's benchmark key" (mirrors pbt-serve).
std::vector<std::pair<std::string, std::string>>
splitModelSpec(const std::string &Spec) {
  std::vector<std::pair<std::string, std::string>> Out;
  size_t Start = 0;
  while (Start <= Spec.size()) {
    size_t Comma = Spec.find(',', Start);
    std::string Entry = Spec.substr(
        Start, Comma == std::string::npos ? std::string::npos : Comma - Start);
    if (!Entry.empty()) {
      size_t Eq = Entry.find('=');
      if (Eq == std::string::npos)
        Out.emplace_back("", Entry);
      else
        Out.emplace_back(Entry.substr(0, Eq), Entry.substr(Eq + 1));
    }
    if (Comma == std::string::npos)
      break;
    Start = Comma + 1;
  }
  return Out;
}

std::string dirnameOf(const std::string &Path) {
  size_t Slash = Path.rfind('/');
  return Slash == std::string::npos ? std::string(".")
                                    : Path.substr(0, Slash);
}

/// One connection's sustained-phase loop: attach, then replay this
/// connection's stride of the tenant's stream in --batch chunks until
/// the deadline.
void sustainedConn(const std::string &Socket, const LoadTenant &T,
                   unsigned Stride, unsigned Offset, unsigned BatchSize,
                   Clock::time_point Deadline, ConnResult &R) {
  daemon::DaemonClient C;
  std::string Err;
  daemon::DaemonClient::AttachInfo Info;
  if (!C.connect(Socket, Err) || !C.attach(T.Name, Info, Err)) {
    R.Failed = true;
    R.Error = Err;
    return;
  }
  const std::vector<size_t> &Seq = T.Stream->sequence();
  bool FirstPass = true;
  std::vector<uint64_t> Batch;
  std::vector<daemon::PredictedChoice> Choices;
  while (Clock::now() < Deadline) {
    for (size_t Tick = Offset; Tick < Seq.size(); Tick += Stride) {
      Batch.clear();
      for (size_t K = Tick; K < Seq.size() && Batch.size() < BatchSize;
           K += Stride) {
        Batch.push_back(Seq[K]);
        Tick = K;
      }
      if (Batch.empty())
        break;
      auto T0 = Clock::now();
      daemon::DaemonClient::PredictOutcome O = C.predict(Batch, Choices, Err);
      double Us =
          std::chrono::duration<double, std::micro>(Clock::now() - T0)
              .count();
      if (O == daemon::DaemonClient::PredictOutcome::Error) {
        R.Failed = true;
        R.Error = Err;
        return;
      }
      R.LatenciesUs.push_back(Us);
      if (O == daemon::DaemonClient::PredictOutcome::Shed) {
        ++R.Shed;
      } else {
        ++R.Requests;
        R.Decisions += Choices.size();
        if (FirstPass)
          for (size_t K = 0; K < Batch.size(); ++K)
            R.Answers.emplace(Batch[K], Choices[K].Landmark);
      }
      if (Clock::now() >= Deadline)
        return;
    }
    FirstPass = false;
  }
}

/// One connection's saturation-phase loop: single-input requests fired
/// back to back, so concurrency (not batching) stresses the admission
/// controller.
void saturationConn(const std::string &Socket, const LoadTenant &T,
                    unsigned Offset, Clock::time_point Deadline,
                    ConnResult &R) {
  daemon::DaemonClient C;
  std::string Err;
  daemon::DaemonClient::AttachInfo Info;
  if (!C.connect(Socket, Err) || !C.attach(T.Name, Info, Err)) {
    R.Failed = true;
    R.Error = Err;
    return;
  }
  const std::vector<size_t> &Seq = T.Stream->sequence();
  std::vector<daemon::PredictedChoice> Choices;
  size_t Tick = Offset % Seq.size();
  while (Clock::now() < Deadline) {
    std::vector<uint64_t> One{static_cast<uint64_t>(Seq[Tick])};
    Tick = (Tick + 1) % Seq.size();
    auto T0 = Clock::now();
    daemon::DaemonClient::PredictOutcome O = C.predict(One, Choices, Err);
    double Us = std::chrono::duration<double, std::micro>(Clock::now() - T0)
                    .count();
    if (O == daemon::DaemonClient::PredictOutcome::Error) {
      R.Failed = true;
      R.Error = Err;
      return;
    }
    R.LatenciesUs.push_back(Us);
    if (O == daemon::DaemonClient::PredictOutcome::Shed)
      ++R.Shed;
    else {
      ++R.Requests;
      R.Decisions += Choices.size();
    }
  }
}

} // namespace

int runLoadgen(const DriverOptions &Opts, const char *Argv0) {
  if (Opts.Model.empty()) {
    std::fprintf(stderr,
                 "pbt-bench loadgen: --model=[NAME=]FILE[,...] is required "
                 "(the files the daemon serves; also the parity replica)\n");
    return 1;
  }
  if (Opts.Socket.empty() && !Opts.Spawn) {
    std::fprintf(stderr, "pbt-bench loadgen: need --socket=PATH of a running "
                         "pbt-serve, or --spawn\n");
    return 1;
  }
  streams::Schedule Kind;
  if (!streams::parseSchedule(Opts.StreamSchedule, Kind)) {
    std::fprintf(stderr,
                 "pbt-bench loadgen: bad --schedule '%s' "
                 "(abrupt|ramp|periodic)\n",
                 Opts.StreamSchedule.c_str());
    return 1;
  }

  // Build the in-process tenant replicas: model -> provenance program ->
  // PredictionService (parity) + WorkloadStream (the request schedule).
  std::vector<LoadTenant> Tenants;
  for (const auto &[Name, Path] : splitModelSpec(Opts.Model)) {
    LoadTenant T;
    T.ModelPath = Path;
    serialize::TrainedModel Model;
    serialize::LoadStatus Loaded = serialize::loadModelFile(Path, Model);
    if (!Loaded) {
      std::fprintf(stderr, "pbt-bench loadgen: cannot load '%s': %s\n",
                   Path.c_str(), Loaded.Error.c_str());
      return 1;
    }
    T.Benchmark = Model.Meta.Benchmark;
    T.Name = Name.empty() ? Model.Meta.Benchmark : Name;
    const registry::BenchmarkFactory *Factory =
        registry::BenchmarkRegistry::instance().lookup(Model.Meta.Benchmark);
    if (!Factory) {
      std::fprintf(stderr,
                   "pbt-bench loadgen: model benchmark '%s' is not "
                   "registered\n",
                   Model.Meta.Benchmark.c_str());
      return 1;
    }
    T.Program =
        Factory->makeProgram(Model.Meta.Scale, Model.Meta.ProgramSeed);

    T.Replica = std::make_unique<runtime::PredictionService>();
    serialize::LoadStatus St = T.Replica->loadFile(Path);
    if (St)
      St = T.Replica->bind(*T.Program);
    if (!St || !T.Replica->ready()) {
      std::fprintf(stderr, "pbt-bench loadgen: parity replica for '%s': %s\n",
                   Path.c_str(), St.Error.c_str());
      return 1;
    }

    streams::WorkloadStreamOptions SO;
    SO.Kind = Kind;
    SO.Requests = std::max(1u, Opts.StreamRequests);
    // Distinct per-tenant seeds so tenants do not replay each other.
    SO.Seed = Opts.StreamSeed + Tenants.size() * 0x9E37u;
    SO.KeyProperty = Opts.StreamKey;
    SO.Period = Opts.StreamPeriod;
    try {
      T.Stream = std::make_unique<streams::WorkloadStream>(*T.Program, SO);
    } catch (const std::invalid_argument &E) {
      std::fprintf(stderr, "pbt-bench loadgen: %s: %s\n", T.Name.c_str(),
                   E.what());
      return 1;
    }
    Tenants.push_back(std::move(T));
  }

  // Spawn a private daemon when asked.
  std::string Socket = Opts.Socket;
  pid_t Server = -1;
  if (Opts.Spawn) {
    if (Socket.empty())
      Socket = "/tmp/pbt-lg-" + std::to_string(::getpid()) + ".sock";
    std::string Exe = Opts.ServerExe.empty()
                          ? dirnameOf(Argv0) + "/pbt-serve"
                          : Opts.ServerExe;
    std::vector<std::string> Args = {
        Exe,
        "--socket=" + Socket,
        "--model=" + Opts.Model,
        "--workers=" + std::to_string(Opts.Workers),
        "--queue=" + std::to_string(Opts.QueueCapacity),
        "--batch-max=" + std::to_string(Opts.BatchMax)};
    if (Opts.Adapt)
      Args.push_back("--adapt");
    Server = ::fork();
    if (Server < 0) {
      std::fprintf(stderr, "pbt-bench loadgen: fork(): %s\n",
                   std::strerror(errno));
      return 1;
    }
    if (Server == 0) {
      std::vector<char *> Argv;
      for (std::string &A : Args)
        Argv.push_back(A.data());
      Argv.push_back(nullptr);
      ::execv(Argv[0], Argv.data());
      std::fprintf(stderr, "pbt-bench loadgen: execv('%s'): %s\n",
                   Exe.c_str(), std::strerror(errno));
      ::_exit(127);
    }
  }

  auto FailShutdown = [&](int Code) {
    if (Server > 0) {
      daemon::DaemonClient C;
      std::string E;
      if (C.connect(Socket, E))
        C.shutdownServer(E);
      int Status = 0;
      ::waitpid(Server, &Status, 0);
    }
    return Code;
  };

  // Control connection: wait for the server, check the tenant table.
  daemon::DaemonClient Control;
  std::string Err;
  if (!Control.connectWithRetry(Socket, 10.0, Err)) {
    std::fprintf(stderr, "pbt-bench loadgen: cannot reach pbt-serve at %s: "
                         "%s\n",
                 Socket.c_str(), Err.c_str());
    return FailShutdown(1);
  }
  std::vector<std::string> ServerTenants;
  if (!Control.listTenants(ServerTenants, Err)) {
    std::fprintf(stderr, "pbt-bench loadgen: ListTenants: %s\n", Err.c_str());
    return FailShutdown(1);
  }
  for (const LoadTenant &T : Tenants) {
    if (std::find(ServerTenants.begin(), ServerTenants.end(), T.Name) ==
        ServerTenants.end()) {
      std::fprintf(stderr,
                   "pbt-bench loadgen: daemon has no tenant '%s' (it serves:",
                   T.Name.c_str());
      for (const std::string &N : ServerTenants)
        std::fprintf(stderr, " %s", N.c_str());
      std::fprintf(stderr, ")\n");
      return FailShutdown(1);
    }
  }

  double Seconds = std::max(0.05, Opts.Seconds);
  unsigned Conns = std::max(1u, Opts.Connections);
  unsigned BatchSize =
      std::max(1u, std::min(Opts.Batch, daemon::kMaxBatchInputs));

  // Sustained phase.
  std::vector<ConnResult> SusConns(Conns);
  {
    // Connections round-robin over tenants; a tenant's connections
    // stride-partition its stream so together they replay the whole
    // schedule.
    std::vector<unsigned> PerTenant(Tenants.size(), 0);
    std::vector<std::thread> Threads;
    auto Deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                       std::chrono::duration<double>(Seconds));
    for (unsigned C = 0; C < Conns; ++C) {
      unsigned TIdx = C % Tenants.size();
      unsigned Offset = PerTenant[TIdx]++;
      unsigned Stride = Conns / Tenants.size() +
                        (TIdx < Conns % Tenants.size() ? 1 : 0);
      Threads.emplace_back([&, C, TIdx, Offset, Stride] {
        sustainedConn(Socket, Tenants[TIdx], std::max(1u, Stride), Offset,
                      BatchSize, Deadline, SusConns[C]);
      });
    }
    for (std::thread &T : Threads)
      T.join();
  }
  PhaseSummary Sustained = mergeConns(SusConns, Seconds);
  if (Sustained.Failed) {
    std::fprintf(stderr, "pbt-bench loadgen: sustained phase failed: %s\n",
                 Sustained.Error.c_str());
    return FailShutdown(1);
  }

  // Saturation phase: oversubscribe past the queue bound with
  // single-input requests so admission control must engage.
  unsigned SatConns = std::max(
      Conns * 4, static_cast<unsigned>(Opts.QueueCapacity) + Conns + 4);
  double SatSeconds = std::max(0.05, Seconds / 2);
  std::vector<ConnResult> SatResults(SatConns);
  {
    std::vector<std::thread> Threads;
    auto Deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                       std::chrono::duration<double>(
                                           SatSeconds));
    for (unsigned C = 0; C < SatConns; ++C) {
      unsigned TIdx = C % Tenants.size();
      Threads.emplace_back([&, C, TIdx] {
        saturationConn(Socket, Tenants[TIdx], C, Deadline, SatResults[C]);
      });
    }
    for (std::thread &T : Threads)
      T.join();
  }
  PhaseSummary Saturation = mergeConns(SatResults, SatSeconds);
  if (Saturation.Failed) {
    std::fprintf(stderr, "pbt-bench loadgen: saturation phase failed: %s\n",
                 Saturation.Error.c_str());
    return FailShutdown(1);
  }

  // Parity wall: every sustained-phase answer must match an in-process
  // decideBatch replay of the same model file. Skipped under --adapt
  // (the daemon may legitimately hot-swap to a retrained epoch).
  bool ParityChecked = !Opts.Adapt;
  bool ParityOk = true;
  uint64_t ParityInputs = 0;
  if (ParityChecked) {
    for (size_t TIdx = 0; TIdx < Tenants.size(); ++TIdx) {
      std::unordered_map<uint64_t, uint32_t> Answers;
      for (unsigned C = 0; C < Conns; ++C)
        if (C % Tenants.size() == TIdx)
          Answers.insert(SusConns[C].Answers.begin(),
                         SusConns[C].Answers.end());
      std::vector<size_t> Inputs;
      Inputs.reserve(Answers.size());
      for (const auto &[In, L] : Answers)
        Inputs.push_back(static_cast<size_t>(In));
      std::sort(Inputs.begin(), Inputs.end());
      std::vector<runtime::PredictionService::Decision> Local =
          Tenants[TIdx].Replica->decideBatch(Inputs, Opts.Pool);
      for (size_t K = 0; K < Inputs.size(); ++K) {
        ++ParityInputs;
        uint32_t DaemonL = Answers[static_cast<uint64_t>(Inputs[K])];
        if (Local[K].Landmark != DaemonL) {
          if (ParityOk)
            std::fprintf(stderr,
                         "pbt-bench loadgen: PARITY MISMATCH tenant %s "
                         "input %zu: daemon landmark %u, in-process %u\n",
                         Tenants[TIdx].Name.c_str(), Inputs[K], DaemonL,
                         Local[K].Landmark);
          ParityOk = false;
        }
      }
    }
  }

  // Server-side stats, then shut a spawned daemon down cleanly.
  std::string ServerStatsJson = "null";
  if (!Control.stats(ServerStatsJson, Err))
    ServerStatsJson = "null";
  int ServerExit = -1;
  if (Server > 0) {
    if (Control.shutdownServer(Err)) {
      int Status = 0;
      ::waitpid(Server, &Status, 0);
      ServerExit = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
    } else {
      std::fprintf(stderr, "pbt-bench loadgen: shutdown: %s\n", Err.c_str());
      ::kill(Server, SIGTERM);
      int Status = 0;
      ::waitpid(Server, &Status, 0);
    }
  }
  Control.close();

  std::string Json = "{\n  \"subcommand\": \"loadgen\",\n";
  Json += "  \"socket\": \"" + jsonString(Socket) + "\",\n";
  Json += std::string("  \"spawned\": ") + (Opts.Spawn ? "true" : "false") +
          ",\n";
  Json += "  \"schedule\": \"" + jsonString(Opts.StreamSchedule) + "\",\n";
  Json += "  \"requests_per_tenant\": " +
          std::to_string(std::max(1u, Opts.StreamRequests)) + ",\n";
  Json += "  \"batch\": " + std::to_string(BatchSize) + ",\n";
  Json += "  \"queue_capacity\": " + std::to_string(Opts.QueueCapacity) +
          ",\n";
  Json += "  \"workers\": " + std::to_string(Opts.Workers) + ",\n";
  Json += std::string("  \"adapt\": ") + (Opts.Adapt ? "true" : "false") +
          ",\n";
  Json += "  \"tenants\": [";
  for (size_t I = 0; I < Tenants.size(); ++I) {
    if (I)
      Json += ", ";
    Json += "{\"name\": \"" + jsonString(Tenants[I].Name) +
            "\", \"benchmark\": \"" + jsonString(Tenants[I].Benchmark) +
            "\", \"model\": \"" + jsonString(Tenants[I].ModelPath) +
            "\", \"inputs\": " +
            std::to_string(Tenants[I].Program->numInputs()) + "}";
  }
  Json += "],\n";
  Json += "  \"sustained\": " + jsonPhaseSummary(Sustained, Conns) + ",\n";
  Json += "  \"saturation\": " + jsonPhaseSummary(Saturation, SatConns) +
          ",\n";
  Json += "  \"parity_checked\": " +
          std::string(ParityChecked ? "true" : "false") + ",\n";
  Json += "  \"parity_inputs\": " + std::to_string(ParityInputs) + ",\n";
  Json += "  \"choices_match_inprocess\": " +
          std::string(ParityOk ? "true" : "false") + ",\n";
  Json += "  \"server_exit\": " + std::to_string(ServerExit) + ",\n";
  Json += "  \"server_stats\": " + ServerStatsJson + "\n";
  Json += "}\n";

  std::fputs(Json.c_str(), stdout);
  if (Opts.Json) {
    std::string Path = (Opts.OutDir.empty() || Opts.OutDir == ".")
                           ? std::string("BENCH_serve_daemon.json")
                           : Opts.OutDir + "/BENCH_serve_daemon.json";
    FILE *Out = std::fopen(Path.c_str(), "wb");
    if (!Out || std::fwrite(Json.data(), 1, Json.size(), Out) != Json.size()) {
      if (Out)
        std::fclose(Out);
      std::fprintf(stderr, "pbt-bench loadgen: cannot write '%s'\n",
                   Path.c_str());
      return 1;
    }
    std::fclose(Out);
  }

  if (!ParityOk) {
    std::fprintf(stderr, "pbt-bench loadgen: daemon decisions diverged from "
                         "the in-process replay\n");
    return 1;
  }
  return 0;
}

} // namespace benchharness
} // namespace pbt

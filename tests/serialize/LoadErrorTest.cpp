//===- tests/serialize/LoadErrorTest.cpp -------------------------------------=//
//
// Load-failure diagnostics: every loadModel error names the 1-based line
// it was detected on (syntactic errors through the Reader's sticky
// tagging, semantic shape/range checks through the loader's own), and
// loadModelFile prefixes the file path -- so "which file, which line"
// is answerable straight from the message when an operator feeds the
// daemon a truncated or hand-edited model.
//
//===----------------------------------------------------------------------===//

#include "serialize/ModelIO.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include <unistd.h>

using namespace pbt;
using serialize::LoadStatus;
using serialize::TrainedModel;

namespace {

/// `pbt-model v<current>\n` -- the tests below probe errors past the
/// version check, so they must carry the live format version.
std::string header() {
  return "pbt-model v" + std::to_string(serialize::kFormatVersion) + "\n";
}

TEST(LoadErrorTest, SemanticErrorsCarryTheLineNumber) {
  // Line 1 is well-formed for the Reader but semantically wrong: the
  // version check is the loader's, so the loader must tag the position.
  TrainedModel M;
  LoadStatus St = serialize::loadModel("pbt-model v99\n", M);
  ASSERT_FALSE(St.Ok);
  EXPECT_NE(St.Error.find("line 1:"), std::string::npos) << St.Error;
  EXPECT_NE(St.Error.find("unsupported model format version"),
            std::string::npos);
}

TEST(LoadErrorTest, DeepSemanticErrorsPointAtTheirOwnLine) {
  const std::string Text = header() +
                           "benchmark sort1\n"
                           "scale 0.5\n"
                           "program-seed 7\n"
                           "epoch 1\n"
                           "features 1\n"
                           "feature 0 n\n"; // zero sampling levels: line 7
  TrainedModel M;
  LoadStatus St = serialize::loadModel(Text, M);
  ASSERT_FALSE(St.Ok);
  EXPECT_NE(St.Error.find("line 7:"), std::string::npos) << St.Error;
  EXPECT_NE(St.Error.find("at least one sampling level"), std::string::npos);
}

TEST(LoadErrorTest, SyntacticErrorsKeepTheReadersLineTag) {
  TrainedModel M;
  LoadStatus St = serialize::loadModel(header() + "benchmark sort1\n"
                                                  "scale not-a-number\n",
                                       M);
  ASSERT_FALSE(St.Ok);
  EXPECT_NE(St.Error.find("line 3"), std::string::npos) << St.Error;
}

TEST(LoadErrorTest, FileLoadsPrefixThePath) {
  TrainedModel M;
  // Missing file: the path is in the message.
  std::string Missing = ::testing::TempDir() + "pbt-no-such-model.pbt";
  LoadStatus St = serialize::loadModelFile(Missing, M);
  ASSERT_FALSE(St.Ok);
  EXPECT_NE(St.Error.find(Missing), std::string::npos) << St.Error;

  // Corrupt file: path AND line, in one message.
  std::string Garbled = ::testing::TempDir() + "pbt-garbled-" +
                        std::to_string(::getpid()) + ".pbt";
  {
    std::ofstream Out(Garbled, std::ios::binary);
    Out << "pbt-model v99\n";
  }
  St = serialize::loadModelFile(Garbled, M);
  ASSERT_FALSE(St.Ok);
  EXPECT_NE(St.Error.find(Garbled), std::string::npos) << St.Error;
  EXPECT_NE(St.Error.find("line 1:"), std::string::npos) << St.Error;
  std::remove(Garbled.c_str());
}

} // namespace

//===- tests/serialize/RoundTripTest.cpp -------------------------------------=//
//
// Round-trip serialization of every learner: deserialize(serialize(x))
// produces identical predictions on a probe grid, and re-serialization is
// byte-identical (the invariant the golden-file suite relies on).
//
//===----------------------------------------------------------------------===//

#include "core/Classifiers.h"
#include "core/FeatureProbe.h"
#include "ml/CostMatrix.h"
#include "ml/DecisionTree.h"
#include "ml/IncrementalBayes.h"
#include "ml/KMeans.h"
#include "ml/MaxApriori.h"
#include "ml/Normalizer.h"
#include "serialize/ModelIO.h"
#include "serialize/TextFormat.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>

using namespace pbt;

namespace {

/// Deterministic feature matrix with varied scales per column.
linalg::Matrix probeMatrix(size_t Rows, size_t Cols, uint64_t Seed) {
  support::Rng Rng(Seed);
  linalg::Matrix X(Rows, Cols);
  for (size_t R = 0; R != Rows; ++R)
    for (size_t C = 0; C != Cols; ++C)
      X.at(R, C) = Rng.gaussian(static_cast<double>(C), 1.0 + 0.5 * C);
  return X;
}

/// Labels correlated with the features so trees actually split.
std::vector<unsigned> probeLabels(const linalg::Matrix &X,
                                  unsigned NumClasses) {
  std::vector<unsigned> Y(X.rows());
  for (size_t R = 0; R != X.rows(); ++R) {
    double S = X.at(R, 0) + 0.5 * X.at(R, X.cols() - 1);
    Y[R] = static_cast<unsigned>(std::abs(static_cast<long>(S * 2))) %
           NumClasses;
  }
  return Y;
}

TEST(RoundTripTest, DoubleFormattingIsExact) {
  const double Cases[] = {0.0,
                          -0.0,
                          1.0,
                          -1.5,
                          1.0 / 3.0,
                          1e-300,
                          -1e300,
                          0.10000000000000001,
                          3.1415926535897931};
  for (double V : Cases) {
    std::string Text = serialize::formatDouble(V);
    double Back = std::strtod(Text.c_str(), nullptr);
    EXPECT_EQ(std::memcmp(&V, &Back, sizeof V), 0) << Text;
  }
}

TEST(RoundTripTest, Normalizer) {
  linalg::Matrix X = probeMatrix(40, 5, 1);
  ml::Normalizer Norm;
  Norm.fit(X);

  serialize::Writer W;
  Norm.saveTo(W);
  serialize::Reader R(W.str());
  ml::Normalizer Back;
  ASSERT_TRUE(Back.loadFrom(R)) << R.error();

  serialize::Writer W2;
  Back.saveTo(W2);
  EXPECT_EQ(W.str(), W2.str());

  linalg::Matrix Grid = probeMatrix(20, 5, 2);
  for (size_t I = 0; I != Grid.rows(); ++I) {
    std::vector<double> A(Grid.rowPtr(I), Grid.rowPtr(I) + Grid.cols());
    std::vector<double> B = A;
    Norm.transformRow(A);
    Back.transformRow(B);
    EXPECT_EQ(A, B);
  }
}

TEST(RoundTripTest, DecisionTree) {
  linalg::Matrix X = probeMatrix(120, 6, 3);
  std::vector<unsigned> Y = probeLabels(X, 4);
  ml::DecisionTree Tree;
  Tree.fit(X, Y, 4);
  ASSERT_TRUE(Tree.trained());

  serialize::Writer W;
  Tree.saveTo(W);
  serialize::Reader R(W.str());
  ml::DecisionTree Back;
  ASSERT_TRUE(Back.loadFrom(R, 4)) << R.error();

  serialize::Writer W2;
  Back.saveTo(W2);
  EXPECT_EQ(W.str(), W2.str());
  EXPECT_EQ(Tree.numNodes(), Back.numNodes());
  EXPECT_EQ(Tree.depth(), Back.depth());
  EXPECT_EQ(Tree.usedFeatures(), Back.usedFeatures());

  linalg::Matrix Grid = probeMatrix(200, 6, 4);
  for (size_t I = 0; I != Grid.rows(); ++I) {
    std::vector<double> Row(Grid.rowPtr(I), Grid.rowPtr(I) + Grid.cols());
    EXPECT_EQ(Tree.predict(Row), Back.predict(Row));
  }
}

TEST(RoundTripTest, DecisionTreeCostSensitiveLeaves) {
  linalg::Matrix X = probeMatrix(80, 4, 5);
  std::vector<unsigned> Y = probeLabels(X, 3);
  ml::CostMatrix Costs(3);
  Costs.at(0, 1) = 5.0;
  Costs.at(1, 0) = 0.25;
  Costs.at(2, 1) = 2.0;
  ml::DecisionTreeOptions Opts;
  Opts.Costs = &Costs;
  ml::DecisionTree Tree;
  Tree.fit(X, Y, 3, Opts);

  serialize::Writer W;
  Tree.saveTo(W);
  serialize::Reader R(W.str());
  ml::DecisionTree Back;
  ASSERT_TRUE(Back.loadFrom(R, 3)) << R.error();
  linalg::Matrix Grid = probeMatrix(100, 4, 6);
  for (size_t I = 0; I != Grid.rows(); ++I) {
    std::vector<double> Row(Grid.rowPtr(I), Grid.rowPtr(I) + Grid.cols());
    EXPECT_EQ(Tree.predict(Row), Back.predict(Row));
  }
}

TEST(RoundTripTest, IncrementalBayes) {
  linalg::Matrix X = probeMatrix(150, 5, 7);
  std::vector<unsigned> Y = probeLabels(X, 3);
  ml::IncrementalBayes Model;
  Model.fit(X, Y, 3, {4, 0, 2, 1, 3});
  ASSERT_TRUE(Model.trained());

  serialize::Writer W;
  Model.saveTo(W);
  serialize::Reader R(W.str());
  ml::IncrementalBayes Back;
  ASSERT_TRUE(Back.loadFrom(R, 5)) << R.error();

  serialize::Writer W2;
  Back.saveTo(W2);
  EXPECT_EQ(W.str(), W2.str());
  EXPECT_EQ(Model.featureOrder(), Back.featureOrder());
  EXPECT_EQ(Model.numClasses(), Back.numClasses());

  linalg::Matrix Grid = probeMatrix(200, 5, 8);
  for (size_t I = 0; I != Grid.rows(); ++I) {
    std::vector<double> Row(Grid.rowPtr(I), Grid.rowPtr(I) + Grid.cols());
    ml::IncrementalPrediction A = Model.predict(Row);
    ml::IncrementalPrediction B = Back.predict(Row);
    EXPECT_EQ(A.Label, B.Label);
    EXPECT_EQ(A.FeaturesUsed, B.FeaturesUsed);
    EXPECT_EQ(A.Confidence, B.Confidence);
  }
}

TEST(RoundTripTest, KMeansResult) {
  linalg::Matrix Points = probeMatrix(60, 4, 9);
  ml::KMeansOptions Opts;
  Opts.K = 5;
  Opts.Seed = 3;
  ml::KMeansResult Result = ml::kMeans(Points, Opts);

  serialize::Writer W;
  ml::saveKMeansResult(W, Result);
  serialize::Reader R(W.str());
  ml::KMeansResult Back;
  ASSERT_TRUE(ml::loadKMeansResult(R, Back)) << R.error();

  serialize::Writer W2;
  ml::saveKMeansResult(W2, Back);
  EXPECT_EQ(W.str(), W2.str());
  EXPECT_EQ(Result.Assignment, Back.Assignment);
  EXPECT_EQ(Result.Inertia, Back.Inertia);
  EXPECT_EQ(Result.IterationsRun, Back.IterationsRun);

  linalg::Matrix Grid = probeMatrix(50, 4, 10);
  for (size_t I = 0; I != Grid.rows(); ++I) {
    std::vector<double> Row(Grid.rowPtr(I), Grid.rowPtr(I) + Grid.cols());
    EXPECT_EQ(ml::nearestCentroid(Result.Centroids, Row),
              ml::nearestCentroid(Back.Centroids, Row));
  }
}

TEST(RoundTripTest, MaxApriori) {
  ml::MaxApriori Model;
  Model.fit({0, 1, 1, 2, 1, 0, 1}, 4);

  serialize::Writer W;
  Model.saveTo(W);
  serialize::Reader R(W.str());
  ml::MaxApriori Back;
  ASSERT_TRUE(Back.loadFrom(R)) << R.error();

  serialize::Writer W2;
  Back.saveTo(W2);
  EXPECT_EQ(W.str(), W2.str());
  EXPECT_EQ(Model.predict(), Back.predict());
  EXPECT_EQ(Model.priors(), Back.priors());
}

TEST(RoundTripTest, CostMatrix) {
  ml::CostMatrix Costs(3);
  for (unsigned I = 0; I != 3; ++I)
    for (unsigned J = 0; J != 3; ++J)
      Costs.at(I, J) = I == J ? 0.0 : 0.125 * (I * 3 + J + 1);

  serialize::Writer W;
  Costs.saveTo(W);
  serialize::Reader R(W.str());
  ml::CostMatrix Back;
  ASSERT_TRUE(Back.loadFrom(R)) << R.error();

  serialize::Writer W2;
  Back.saveTo(W2);
  EXPECT_EQ(W.str(), W2.str());
  ASSERT_EQ(Back.numClasses(), 3u);
  for (unsigned I = 0; I != 3; ++I)
    for (unsigned J = 0; J != 3; ++J)
      EXPECT_EQ(Costs.at(I, J), Back.at(I, J));
}

TEST(RoundTripTest, SelectorAndConfiguration) {
  runtime::Selector Sel({{600, 2}, {1420, 1}, {UINT64_MAX, 0}});
  serialize::Writer W;
  serialize::saveSelector(W, Sel);
  serialize::Reader R(W.str());
  runtime::Selector BackSel;
  ASSERT_TRUE(serialize::loadSelector(R, BackSel)) << R.error();
  ASSERT_EQ(BackSel.levels().size(), Sel.levels().size());
  for (uint64_t N = 0; N < 4000; N += 13)
    EXPECT_EQ(Sel.choose(N), BackSel.choose(N));
  EXPECT_EQ(Sel.choose(UINT64_MAX), BackSel.choose(UINT64_MAX));

  runtime::Configuration Config(
      std::vector<double>{1.0, 0.25, 1e-7, 4096.0, -3.5});
  serialize::Writer WC;
  serialize::saveConfiguration(WC, Config);
  serialize::Reader RC(WC.str());
  runtime::Configuration BackConfig;
  ASSERT_TRUE(serialize::loadConfiguration(RC, BackConfig)) << RC.error();
  EXPECT_EQ(Config.values(), BackConfig.values());
}

/// Classifies every row of \p X through a table-backed probe.
std::vector<unsigned> classifyAll(const core::InputClassifier &C,
                                  const linalg::Matrix &X,
                                  const linalg::Matrix &Costs) {
  std::vector<unsigned> Out;
  for (size_t R = 0; R != X.rows(); ++R) {
    core::FeatureProbe Probe = core::probeFromTable(X, Costs, R);
    Out.push_back(C.classify(Probe));
  }
  return Out;
}

/// Round-trips a polymorphic classifier and checks behavioural equality.
void expectClassifierRoundTrip(const core::InputClassifier &C,
                               unsigned NumClasses, const linalg::Matrix &X) {
  serialize::Writer W;
  serialize::saveClassifier(W, C);
  serialize::Reader R(W.str());
  std::unique_ptr<core::InputClassifier> Back = serialize::loadClassifier(
      R, NumClasses, static_cast<unsigned>(X.cols()));
  ASSERT_NE(Back, nullptr) << R.error();

  serialize::Writer W2;
  serialize::saveClassifier(W2, *Back);
  EXPECT_EQ(W.str(), W2.str());
  EXPECT_EQ(C.describe(), Back->describe());
  EXPECT_EQ(C.referencedFeatures(), Back->referencedFeatures());

  linalg::Matrix Costs(X.rows(), X.cols(), 1.0);
  EXPECT_EQ(classifyAll(C, X, Costs), classifyAll(*Back, X, Costs));
}

TEST(RoundTripTest, EveryClassifierKind) {
  linalg::Matrix X = probeMatrix(90, 6, 11);
  std::vector<unsigned> Y = probeLabels(X, 3);

  expectClassifierRoundTrip(core::ConstantClassifier(2), 3, X);

  ml::MaxApriori Prior;
  Prior.fit(Y, 3);
  expectClassifierRoundTrip(core::MaxAprioriClassifier(std::move(Prior)), 3,
                            X);

  ml::DecisionTreeOptions TreeOpts;
  TreeOpts.AllowedFeatures = {1, 4};
  ml::DecisionTree Tree;
  Tree.fit(X, Y, 3, TreeOpts);
  expectClassifierRoundTrip(
      core::SubsetTreeClassifier(std::move(Tree), {1, 4}, "tree{a@1,b@0}"), 3,
      X);

  ml::IncrementalBayes Bayes;
  Bayes.fit(X, Y, 3, {0, 1, 2, 3, 4, 5});
  expectClassifierRoundTrip(
      core::IncrementalClassifier(std::move(Bayes), "incremental{all}"), 3,
      X);

  ml::Normalizer Norm;
  Norm.fit(X);
  ml::KMeansOptions KOpts;
  KOpts.K = 3;
  ml::KMeansResult Clusters = ml::kMeans(Norm.transform(X), KOpts);
  expectClassifierRoundTrip(
      core::OneLevelClassifier(Clusters.Centroids, Norm, {2, 0, 1}), 3, X);
}

} // namespace

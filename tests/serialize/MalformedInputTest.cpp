//===- tests/serialize/MalformedInputTest.cpp --------------------------------=//
//
// Property tests for the model deserializer on malformed input: truncated
// files, unknown versions, out-of-range indices, corrupt counts, and
// random byte fuzzing must all return errors -- never crash, hang, or
// silently mis-load.
//
//===----------------------------------------------------------------------===//

#include "core/Classifiers.h"
#include "core/FeatureProbe.h"
#include "serialize/ModelIO.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace pbt;
using namespace pbt::serialize;

namespace {

/// A small but complete hand-built model: 2 properties x 2 levels, 8
/// inputs, 2 landmarks, a subset-tree production classifier.
TrainedModel tinyModel() {
  const size_t N = 8;
  const unsigned Flat = 4, K = 2;

  TrainedModel M;
  M.Meta.Benchmark = "tiny";
  M.Meta.Scale = 1.0;
  M.Meta.ProgramSeed = 7;
  M.Meta.Features = {{"alpha", 2}, {"beta", 2}};
  // A conditional space so the config-space section (parent/mask fields
  // included) sits under every truncation/fuzz pass below: the cutoff
  // only exists under mode=1.
  M.Meta.Space.addCategorical("mode", 2);
  M.Meta.Space.addInteger("cutoff", 1, 128, /*LogScale=*/true);
  M.Meta.Space.addReal("blend", 0.0, 1.0);
  M.Meta.Space.makeConditional(1, 0, {1});

  core::TrainedSystem &S = M.System;
  S.L1.Features = linalg::Matrix(N, Flat);
  S.L1.ExtractCosts = linalg::Matrix(N, Flat, 1.0);
  S.L1.Time = linalg::Matrix(N, K);
  S.L1.Acc = linalg::Matrix(N, K, 1.0);
  support::Rng Rng(13);
  for (size_t R = 0; R != N; ++R) {
    for (unsigned F = 0; F != Flat; ++F)
      S.L1.Features.at(R, F) = Rng.gaussian(F, 1.0);
    for (unsigned L = 0; L != K; ++L)
      S.L1.Time.at(R, L) = 10.0 + Rng.uniform();
  }
  S.TrainRows = {0, 1, 2, 3};
  S.TestRows = {4, 5, 6, 7};
  S.StaticOracleLandmark = 1;
  S.L1.Norm.fit(S.L1.Features);
  ml::KMeansOptions KOpts;
  KOpts.K = K;
  KOpts.Seed = 5;
  S.L1.Clusters = ml::kMeans(S.L1.Norm.transform(S.L1.Features), KOpts);
  S.L1.Clusters.Assignment.resize(S.TrainRows.size());
  S.L1.Representatives = {0, 3};
  // Landmark 0 takes the mode=1 branch (cutoff live); landmark 1 takes
  // mode=0, so canonicalize pins its dead cutoff -- the loader rejects
  // non-canonical dead-branch values.
  runtime::Configuration L0(std::vector<double>{1.0, 8.0, 0.5});
  runtime::Configuration L1(std::vector<double>{0.0, 64.0, 0.25});
  M.Meta.Space.canonicalize(L0);
  M.Meta.Space.canonicalize(L1);
  S.L1.Landmarks.push_back(std::move(L0));
  S.L1.Landmarks.push_back(std::move(L1));

  S.L2.TrainLabels = {0, 1, 1, 0};
  S.L2.Costs = ml::CostMatrix::zeroOne(K);
  S.L2.RefinementMoveFraction = 0.25;
  core::CandidateScore C1;
  C1.Name = "max-apriori";
  C1.Objective = 11.5;
  S.L2.Candidates.push_back(C1);
  core::CandidateScore C2;
  C2.Name = "tree{alpha@1}";
  C2.Objective = 10.5;
  S.L2.Candidates.push_back(C2);
  S.L2.SelectedName = "tree{alpha@1}";

  std::vector<unsigned> Y(N);
  for (size_t R = 0; R != N; ++R)
    Y[R] = S.L1.Features.at(R, 1) > 1.0 ? 1 : 0;
  ml::DecisionTreeOptions TreeOpts;
  TreeOpts.AllowedFeatures = {1};
  TreeOpts.MinSamplesLeaf = 1;
  TreeOpts.MinSamplesSplit = 2;
  ml::DecisionTree Tree;
  Tree.fit(S.L1.Features, Y, K, TreeOpts);
  S.L2.Production = std::make_unique<core::SubsetTreeClassifier>(
      std::move(Tree), std::vector<unsigned>{1}, "tree{alpha@1}");

  S.OneLevel = std::make_unique<core::OneLevelClassifier>(
      S.L1.Clusters.Centroids, S.L1.Norm, std::vector<unsigned>{0, 1});
  return M;
}

const std::string &canonicalText() {
  static const std::string Text = serializeModel(tinyModel());
  return Text;
}

/// Replaces the first line starting with `Key ` (or equal to Key) by
/// \p Replacement. Returns false when no such line exists.
bool replaceLine(std::string &Text, const std::string &Key,
                 const std::string &Replacement) {
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      End = Text.size();
    std::string Line = Text.substr(Pos, End - Pos);
    if (Line == Key || Line.compare(0, Key.size() + 1, Key + " ") == 0) {
      Text.replace(Pos, End - Pos, Replacement);
      return true;
    }
    Pos = End + 1;
  }
  return false;
}

/// Loads \p Text expecting a clean failure.
void expectLoadFails(const std::string &Text, const std::string &What) {
  TrainedModel Out;
  LoadStatus Status = loadModel(Text, Out);
  EXPECT_FALSE(Status.Ok) << What;
  EXPECT_FALSE(Status.Error.empty()) << What;
}

TEST(MalformedInputTest, CanonicalTextLoadsAndReserializesIdentically) {
  TrainedModel Out;
  LoadStatus Status = loadModel(canonicalText(), Out);
  ASSERT_TRUE(Status.Ok) << Status.Error;
  EXPECT_EQ(serializeModel(Out), canonicalText());
}

TEST(MalformedInputTest, EmptyAndGarbageInputs) {
  expectLoadFails("", "empty input");
  expectLoadFails("\n\n\n", "blank lines");
  expectLoadFails("\n" + canonicalText(), "leading blank line");
  expectLoadFails("not a model at all", "garbage");
  expectLoadFails(std::string(4096, 'x'), "long garbage");
  expectLoadFails(std::string("pbt-model v") +
                      std::to_string(kFormatVersion) + "\n" +
                      std::string(100, '\n'),
                  "header then blanks");
}

TEST(MalformedInputTest, UnknownVersionIsRejected) {
  std::string Text = canonicalText();
  ASSERT_TRUE(replaceLine(Text, "pbt-model", "pbt-model v999"));
  TrainedModel Out;
  LoadStatus Status = loadModel(Text, Out);
  ASSERT_FALSE(Status.Ok);
  EXPECT_NE(Status.Error.find("version"), std::string::npos) << Status.Error;

  ASSERT_TRUE(replaceLine(Text, "pbt-model", "pbt-model"));
  expectLoadFails(Text, "missing version token");
}

TEST(MalformedInputTest, TruncationAtEveryLineBoundaryFailsCleanly) {
  const std::string &Text = canonicalText();
  size_t Pos = 0;
  size_t Boundaries = 0;
  while ((Pos = Text.find('\n', Pos)) != std::string::npos) {
    ++Pos;
    if (Pos >= Text.size())
      break; // the full text, which must load
    expectLoadFails(Text.substr(0, Pos),
                    "truncated at byte " + std::to_string(Pos));
    ++Boundaries;
  }
  EXPECT_GT(Boundaries, 50u);
}

TEST(MalformedInputTest, TruncationAtArbitraryBytesFailsCleanly) {
  // Every strict prefix must be rejected -- except the one that only
  // drops the final newline, which is still a complete model.
  const std::string &Text = canonicalText();
  for (size_t Len = 0; Len + 1 < Text.size(); Len += 7) {
    TrainedModel Out;
    LoadStatus Status = loadModel(Text.substr(0, Len), Out);
    EXPECT_FALSE(Status.Ok) << "prefix of length " << Len << " loaded";
  }
}

TEST(MalformedInputTest, OutOfRangeIndicesAreRejected) {
  struct Case {
    const char *Key;
    const char *Replacement;
    const char *What;
  };
  const Case Cases[] = {
      {"static-oracle", "static-oracle 99", "static oracle landmark"},
      {"train-rows", "train-rows 4 0 1 2 999", "train row id"},
      {"test-rows", "test-rows 4 4 5 6 12345", "test row id"},
      {"train-labels", "train-labels 4 0 1 1 7", "train label"},
      {"representatives", "representatives 2 0 9", "representative id"},
      {"assignment", "assignment 4 0 1 0 5", "cluster assignment"},
      {"landmarks", "landmarks 7", "landmark count"},
      {"candidates", "candidates 18446744073709551615", "candidate count"},
      {"features", "features 90000", "feature count"},
      {"cost-matrix", "cost-matrix 3", "cost matrix size"},
  };
  for (const Case &C : Cases) {
    std::string Text = canonicalText();
    ASSERT_TRUE(replaceLine(Text, C.Key, C.Replacement)) << C.Key;
    expectLoadFails(Text, C.What);
  }
}

TEST(MalformedInputTest, ZeroNodeTreeIsRejected) {
  // An empty node list would make prediction read past the vector.
  std::string Text = canonicalText();
  size_t Pos = Text.find("\ndecision-tree ");
  ASSERT_NE(Pos, std::string::npos);
  size_t End = Text.find('\n', Pos + 1);
  Text.replace(Pos + 1, End - Pos - 1, "decision-tree 0 4");
  expectLoadFails(Text, "zero-node tree");
}

TEST(MalformedInputTest, CorruptTreeStructureIsRejected) {
  // Children referring backwards (cycles) or out of range must fail.
  for (const char *Bad : {"split 1 0.5 0 2 ", "split 1 0.5 99 2 ",
                          "split 99 0.5 1 2 "}) {
    std::string Text = canonicalText();
    size_t Pos = Text.find("\nsplit ");
    ASSERT_NE(Pos, std::string::npos);
    size_t End = Text.find('\n', Pos + 1);
    Text.replace(Pos + 1, End - Pos - 1, Bad);
    expectLoadFails(Text, Bad);
  }
  // Leaf label out of range.
  std::string Text = canonicalText();
  size_t Pos = Text.find("\nleaf ");
  ASSERT_NE(Pos, std::string::npos);
  size_t End = Text.find('\n', Pos + 1);
  Text.replace(Pos + 1, End - Pos - 1, "leaf 42");
  expectLoadFails(Text, "leaf label");
}

TEST(MalformedInputTest, ConfigSpaceSectionCorruptionsAreRejected) {
  struct Case {
    const char *Replacement;
    const char *What;
  };
  // The canonical text's first `param` line is the categorical root
  // ("param categorical 0 1 2 0 0 0 mode"); each case rewrites it.
  const Case ParamCases[] = {
      {"param banana 0 1 2 0 0 0 mode", "unknown parameter kind"},
      {"param categorical 0 1 0 0 0 0 mode", "zero cardinality"},
      {"param categorical 0 5 2 0 0 0 mode", "bounds vs cardinality"},
      {"param categorical 0 1 2 1 0 0 mode", "log-scaled categorical"},
      {"param categorical 0 1 2 0 1 1 mode", "self/forward parent"},
      {"param categorical 0 1 2 0 0 0", "missing name"},
      {"param real 1 0 0 0 0 0 mode", "inverted real bounds"},
      {"param integer 0.5 4 0 0 0 0 mode", "non-integral integer bound"},
  };
  for (const Case &C : ParamCases) {
    std::string Text = canonicalText();
    ASSERT_TRUE(replaceLine(Text, "param", C.Replacement)) << C.What;
    expectLoadFails(Text, C.What);
  }

  // Count mismatches and a corrupt section header.
  std::string Text = canonicalText();
  ASSERT_TRUE(replaceLine(Text, "config-space", "config-space 99"));
  expectLoadFails(Text, "config-space count too large");
  Text = canonicalText();
  ASSERT_TRUE(replaceLine(Text, "config-space", "config-space 0"));
  expectLoadFails(Text, "config-space count too small");

  // The conditional child's mask must stay within the parent's
  // cardinality, point backwards, and be nonzero. The child line is
  // "param integer 1 128 0 1 1 2 cutoff" (parent+1 = 1, mask 0b10).
  const Case ChildCases[] = {
      {"param integer 1 128 0 1 1 4 cutoff", "mask beyond cardinality"},
      {"param integer 1 128 0 1 1 0 cutoff", "conditional without mask"},
      {"param integer 1 128 0 1 9 2 cutoff", "parent out of range"},
      {"param integer 1 128 0 1 3 1 cutoff", "non-categorical parent"},
      {"param integer 1 128 0 1 0 2 cutoff", "mask without parent"},
  };
  for (const Case &C : ChildCases) {
    Text = canonicalText();
    size_t Pos = Text.find("\nparam integer");
    ASSERT_NE(Pos, std::string::npos);
    size_t End = Text.find('\n', Pos + 1);
    Text.replace(Pos + 1, End - Pos - 1, C.Replacement);
    expectLoadFails(Text, C.What);
  }

  // A landmark carrying a non-canonical value in a dead branch: landmark
  // 1 sits on mode=0, so its cutoff must hold the canonical pin.
  Text = canonicalText();
  size_t Pos = Text.find("config 3 0 ");
  ASSERT_NE(Pos, std::string::npos) << "landmark 1 line not found";
  size_t End = Text.find('\n', Pos);
  Text.replace(Pos, End - Pos, "config 3 0 64 0.25");
  expectLoadFails(Text, "non-canonical dead-branch landmark");
}

TEST(MalformedInputTest, HugeCountsDoNotAllocate) {
  // A corrupt matrix header claiming astronomic dimensions must fail on
  // the count guard (or missing data), not by attempting the allocation.
  std::string Text = canonicalText();
  ASSERT_TRUE(replaceLine(Text, "matrix",
                          "matrix features 123456789012 123456789012"));
  expectLoadFails(Text, "huge matrix dims");

  Text = canonicalText();
  ASSERT_TRUE(
      replaceLine(Text, "train-rows", "train-rows 18446744073709551615 0"));
  expectLoadFails(Text, "huge row count");
}

TEST(MalformedInputTest, NonNumericTokensAreRejected) {
  const char *Lines[] = {"scale banana", "program-seed -3",
                         "static-oracle 1.5x", "refinement-moved 0..5"};
  const char *Keys[] = {"scale", "program-seed", "static-oracle",
                        "refinement-moved"};
  for (size_t I = 0; I != 4; ++I) {
    std::string Text = canonicalText();
    ASSERT_TRUE(replaceLine(Text, Keys[I], Lines[I]));
    expectLoadFails(Text, Lines[I]);
  }
}

TEST(MalformedInputTest, TrailingContentIsRejected) {
  expectLoadFails(canonicalText() + "surprise\n", "trailing line");
}

TEST(MalformedInputTest, RandomSingleCharFuzzNeverCrashes) {
  // Mutate one character at a random position; the loader must either
  // reject the text or produce a model whose classifiers stay in bounds.
  const std::string &Canonical = canonicalText();
  support::Rng Rng(0xF022);
  const char Alphabet[] = "0123456789 .-abcz\n";
  for (int Trial = 0; Trial != 500; ++Trial) {
    std::string Text = Canonical;
    size_t Pos = Rng.index(Text.size());
    Text[Pos] = Alphabet[Rng.index(sizeof(Alphabet) - 1)];
    TrainedModel Out;
    LoadStatus Status = loadModel(Text, Out);
    if (!Status.Ok)
      continue;
    // A loaded model must be safely usable end to end.
    const core::TrainedSystem &S = Out.System;
    for (size_t Row : S.TestRows) {
      core::FeatureProbe Probe =
          core::probeFromTable(S.L1.Features, S.L1.ExtractCosts, Row);
      unsigned Pred = S.L2.Production->classify(Probe);
      EXPECT_LT(Pred, S.L1.Landmarks.size());
    }
    EXPECT_FALSE(serializeModel(Out).empty());
  }
}

TEST(MalformedInputTest, MissingFileReportsError) {
  TrainedModel Out;
  LoadStatus Status = loadModelFile("/nonexistent/path/model.pbt", Out);
  EXPECT_FALSE(Status.Ok);
  EXPECT_NE(Status.Error.find("cannot open"), std::string::npos);
}

} // namespace

//===- tests/daemon/TransportTest.cpp ----------------------------------------=//
//
// The transport layer under the daemon: endpoint-spec parsing, raw
// Listener/connectEndpoint round-trips over Unix and TCP, the framed
// protocol served over a TCP listener (choice parity with the
// in-process oracle), the Ping/Health liveness probe, the mid-frame
// read deadline (a stalled peer is dropped, an idle one is not), and
// the session-thread cap under a connection storm (Shed + close over
// the cap, capacity restored when a session ends).
//
//===----------------------------------------------------------------------===//

#include "daemon/Client.h"
#include "daemon/ModelRegistry.h"
#include "daemon/Protocol.h"
#include "daemon/Server.h"
#include "daemon/Transport.h"

#include "registry/BenchmarkRegistry.h"
#include "runtime/PredictionService.h"
#include "serialize/ModelIO.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

using namespace pbt;
using namespace pbt::daemon;

namespace {

constexpr double kScale = 0.1;

/// Trains the sort1 model once per process; tests serve it from a temp
/// file like a real deployment (the DaemonServerTest idiom; statics are
/// per-TU, so this TU pays for one training of its own).
const std::string &modelPath() {
  static const std::string Path = [] {
    const registry::BenchmarkFactory &F =
        registry::BenchmarkRegistry::instance().get("sort1");
    registry::ProgramPtr P = F.makeProgram(kScale, F.defaultProgramSeed());
    core::TrainedSystem Sys = core::trainSystem(*P, F.defaultOptions(kScale));
    serialize::TrainedModel M = serialize::makeModel(
        "sort1", kScale, F.defaultProgramSeed(), *P, std::move(Sys));
    std::string Out =
        "/tmp/pbt-tt-model-" + std::to_string(::getpid()) + ".pbt";
    EXPECT_TRUE(
        serialize::writeModelText(Out, serialize::serializeModel(M)).Ok);
    return Out;
  }();
  return Path;
}

std::string freshSocket() {
  static std::atomic<int> Counter{0};
  return "/tmp/pbt-tt-" + std::to_string(::getpid()) + "-" +
         std::to_string(Counter.fetch_add(1)) + ".sock";
}

/// A running server over the trained tenant; TCP-only unless a socket
/// path is requested via the options.
struct Harness {
  daemon::ModelRegistry Registry;
  std::unique_ptr<daemon::Server> Srv;

  explicit Harness(daemon::ServerOptions SO = {})
      : Registry(daemon::ModelRegistryOptions{}) {
    serialize::LoadStatus St = Registry.addTenant("", modelPath());
    EXPECT_TRUE(St.Ok) << St.Error;
    if (SO.SocketPath.empty() && SO.Listen.empty())
      SO.Listen = {"127.0.0.1:0"};
    Srv = std::make_unique<daemon::Server>(Registry, SO);
    std::string Err;
    EXPECT_TRUE(Srv->start(Err)) << Err;
  }

  std::string endpoint() const { return Srv->boundEndpoints().front(); }

  ~Harness() { Srv->stop(); }
};

std::vector<unsigned> inProcessLandmarks(const std::vector<size_t> &Inputs) {
  runtime::PredictionService Service;
  EXPECT_TRUE(Service.loadFile(modelPath()).Ok);
  const registry::BenchmarkFactory &F =
      registry::BenchmarkRegistry::instance().get("sort1");
  registry::ProgramPtr P = F.makeProgram(kScale, F.defaultProgramSeed());
  EXPECT_TRUE(Service.bind(*P).Ok);
  std::vector<unsigned> Out;
  for (const runtime::PredictionService::Decision &D :
       Service.decideBatch(Inputs, nullptr))
    Out.push_back(D.Landmark);
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Endpoint specs
//===----------------------------------------------------------------------===//

TEST(TransportTest, ParseEndpointSpecs) {
  Endpoint E;
  std::string Err;
  ASSERT_TRUE(parseEndpoint("unix:/tmp/x.sock", E, Err)) << Err;
  EXPECT_EQ(E.K, Endpoint::Kind::Unix);
  EXPECT_EQ(E.Path, "/tmp/x.sock");

  // Bare paths stay valid: every pre-TCP caller passed one.
  ASSERT_TRUE(parseEndpoint("/tmp/bare.sock", E, Err)) << Err;
  EXPECT_EQ(E.K, Endpoint::Kind::Unix);
  EXPECT_EQ(E.Path, "/tmp/bare.sock");

  ASSERT_TRUE(parseEndpoint("tcp:127.0.0.1:8080", E, Err)) << Err;
  EXPECT_EQ(E.K, Endpoint::Kind::Tcp);
  EXPECT_EQ(E.Host, "127.0.0.1");
  EXPECT_EQ(E.Port, 8080);
  EXPECT_EQ(endpointString(E), "tcp:127.0.0.1:8080");

  EXPECT_FALSE(parseEndpoint("", E, Err));
  EXPECT_FALSE(parseEndpoint("tcp:nohost", E, Err));
  EXPECT_FALSE(parseEndpoint("tcp:host:notaport", E, Err));
  EXPECT_FALSE(parseEndpoint("tcp:host:99999", E, Err));
}

TEST(TransportTest, TcpListenerEphemeralPortRoundTrip) {
  Endpoint Spec;
  std::string Err;
  ASSERT_TRUE(parseEndpoint("tcp:127.0.0.1:0", Spec, Err)) << Err;
  Listener L;
  ASSERT_TRUE(L.open(Spec, Err)) << Err;
  ASSERT_NE(L.bound().Port, 0) << "ephemeral port was not resolved";

  int Client = connectEndpoint(L.bound(), 2.0, Err);
  ASSERT_GE(Client, 0) << Err;
  int Conn = L.acceptConnection();
  ASSERT_GE(Conn, 0);

  char Byte = 'x';
  ASSERT_EQ(::send(Client, &Byte, 1, 0), 1);
  char Got = 0;
  ASSERT_EQ(::recv(Conn, &Got, 1, 0), 1);
  EXPECT_EQ(Got, 'x');
  ::close(Client);
  ::close(Conn);
}

TEST(TransportTest, UnixListenerPrefixedSpecRoundTrip) {
  std::string Path = freshSocket();
  Endpoint Spec;
  std::string Err;
  ASSERT_TRUE(parseEndpoint("unix:" + Path, Spec, Err)) << Err;
  Listener L;
  ASSERT_TRUE(L.open(Spec, Err)) << Err;
  int Client = connectEndpoint(Spec, 2.0, Err);
  ASSERT_GE(Client, 0) << Err;
  int Conn = L.acceptConnection();
  ASSERT_GE(Conn, 0);
  ::close(Client);
  ::close(Conn);
  L.close();
  // close() unlinks the socket path.
  EXPECT_LT(::access(Path.c_str(), F_OK), 0);
}

//===----------------------------------------------------------------------===//
// The framed protocol over TCP
//===----------------------------------------------------------------------===//

TEST(TransportTest, TcpServerAnswersMatchInProcessOracle) {
  Harness H;
  ASSERT_EQ(H.endpoint().rfind("tcp:", 0), 0u) << H.endpoint();

  DaemonClient C;
  std::string Err;
  ASSERT_TRUE(C.connect(H.endpoint(), Err)) << Err;
  DaemonClient::AttachInfo Info;
  ASSERT_TRUE(C.attach("sort1", Info, Err)) << Err;
  ASSERT_GT(Info.NumInputs, 0u);

  std::vector<size_t> Inputs;
  std::vector<uint64_t> Wire;
  for (size_t I = 0; I < std::min<uint64_t>(Info.NumInputs, 64); ++I) {
    Inputs.push_back(I);
    Wire.push_back(I);
  }
  std::vector<PredictedChoice> Choices;
  ASSERT_EQ(C.predict(Wire, Choices, Err), DaemonClient::PredictOutcome::Ok)
      << Err;
  std::vector<unsigned> Oracle = inProcessLandmarks(Inputs);
  ASSERT_EQ(Choices.size(), Oracle.size());
  for (size_t I = 0; I < Oracle.size(); ++I)
    EXPECT_EQ(Choices[I].Landmark, Oracle[I]) << "input " << I;
}

TEST(TransportTest, DualTransportServesBothListeners) {
  daemon::ServerOptions SO;
  SO.SocketPath = freshSocket();
  SO.Listen = {"127.0.0.1:0"};
  Harness H(SO);
  std::vector<std::string> Bound = H.Srv->boundEndpoints();
  ASSERT_EQ(Bound.size(), 2u);

  for (const std::string &Spec : Bound) {
    DaemonClient C;
    std::string Err;
    ASSERT_TRUE(C.connect(Spec, Err)) << Spec << ": " << Err;
    DaemonClient::AttachInfo Info;
    ASSERT_TRUE(C.attach("sort1", Info, Err)) << Spec << ": " << Err;
  }
}

TEST(TransportTest, PingReportsPidSessionsAndTenantEpochs) {
  Harness H;
  DaemonClient C;
  std::string Err;
  ASSERT_TRUE(C.connect(H.endpoint(), Err)) << Err;

  DaemonClient::HealthInfo Health;
  ASSERT_TRUE(C.ping(Health, Err)) << Err;
  // The server runs in this process: the pid answers "is the process I
  // think I'm probing the one actually behind this socket".
  EXPECT_EQ(Health.Pid, static_cast<uint64_t>(::getpid()));
  EXPECT_GE(Health.Sessions, 1u); // at least this probe's session
  ASSERT_EQ(Health.Tenants.size(), 1u);
  EXPECT_EQ(Health.Tenants[0].Name, "sort1");
}

//===----------------------------------------------------------------------===//
// Read deadline: a mid-frame stall is dropped, an idle session is not
//===----------------------------------------------------------------------===//

TEST(TransportTest, MidFrameStallIsDroppedIdleSessionIsNot) {
  daemon::ServerOptions SO;
  SO.ReadDeadline = 0.15;
  Harness H(SO);

  // Idle is legitimate: a connected session that sends nothing must
  // outlive many deadlines.
  DaemonClient Idle;
  std::string Err;
  ASSERT_TRUE(Idle.connect(H.endpoint(), Err)) << Err;
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  DaemonClient::AttachInfo Info;
  EXPECT_TRUE(Idle.attach("sort1", Info, Err))
      << "idle session was dropped: " << Err;

  // A peer that starts a frame and stalls is not: the session must end
  // within the deadline, freeing its thread.
  DaemonClient Stall;
  ASSERT_TRUE(Stall.connect(H.endpoint(), Err)) << Err;
  const char Partial[2] = {0x10, 0x00}; // 2 of 4 length-prefix bytes
  ASSERT_TRUE(Stall.sendRaw(Partial, sizeof(Partial)));
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool SawEof = false;
  while (std::chrono::steady_clock::now() < Deadline) {
    char Buf[64];
    ssize_t N = ::recv(Stall.fd(), Buf, sizeof(Buf), 0);
    if (N == 0) {
      SawEof = true;
      break;
    }
    if (N < 0 && errno != EINTR && errno != EAGAIN)
      break;
    if (N < 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(SawEof) << "stalled session was never dropped";
  EXPECT_EQ(H.Srv->stats().Stalled, 1u);
}

//===----------------------------------------------------------------------===//
// Session cap: a connection storm degrades to visible refusals
//===----------------------------------------------------------------------===//

TEST(TransportTest, ConnectionStormShedsOverSessionCap) {
  daemon::ServerOptions SO;
  SO.MaxSessions = 2;
  Harness H(SO);

  // Fill the cap with two attached sessions.
  DaemonClient A, B;
  std::string Err;
  DaemonClient::AttachInfo Info;
  ASSERT_TRUE(A.connect(H.endpoint(), Err) && A.attach("sort1", Info, Err))
      << Err;
  ASSERT_TRUE(B.connect(H.endpoint(), Err) && B.attach("sort1", Info, Err))
      << Err;

  // The storm: every extra connection gets one Shed frame and a close,
  // never a session thread. Read the refusal raw (no request first) so
  // the frame cannot be raced away by the server's close.
  Endpoint Spec;
  ASSERT_TRUE(parseEndpoint(H.endpoint(), Spec, Err)) << Err;
  unsigned Refused = 0;
  for (int I = 0; I < 8; ++I) {
    int Fd = connectEndpoint(Spec, 2.0, Err);
    ASSERT_GE(Fd, 0) << Err;
    std::string Payload;
    Message M;
    if (readFrame(Fd, Payload) == FrameStatus::Ok &&
        decodeMessage(Payload, M) && M.Type == MsgType::Shed) {
      EXPECT_NE(M.Text.find("session limit"), std::string::npos) << M.Text;
      ++Refused;
    }
    ::close(Fd);
  }
  EXPECT_EQ(Refused, 8u);
  EXPECT_GE(H.Srv->stats().ShedSessions, 8u);

  // Capped, not broken: the attached sessions still serve...
  std::vector<PredictedChoice> Choices;
  EXPECT_EQ(A.predict({0, 1, 2}, Choices, Err),
            DaemonClient::PredictOutcome::Ok)
      << Err;

  // ...and closing one restores capacity once the acceptor reaps it.
  B.close();
  bool Reattached = false;
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < Deadline) {
    DaemonClient C;
    DaemonClient::AttachInfo Again;
    if (C.connect(H.endpoint(), Err) && C.attach("sort1", Again, Err)) {
      Reattached = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(Reattached) << "cap never freed after a session ended";
}

//===----------------------------------------------------------------------===//
// Per-tenant shed/error counters surface in the stats JSON
//===----------------------------------------------------------------------===//

TEST(TransportTest, PerTenantErrorCounterSurfacesInStatsJson) {
  Harness H;
  DaemonClient C;
  std::string Err;
  ASSERT_TRUE(C.connect(H.endpoint(), Err)) << Err;
  DaemonClient::AttachInfo Info;
  ASSERT_TRUE(C.attach("sort1", Info, Err)) << Err;

  // An out-of-range input is a per-tenant Error answer, not a transport
  // failure -- the counter attributes it to the tenant that sent it.
  std::vector<PredictedChoice> Choices;
  EXPECT_EQ(C.predict({Info.NumInputs + 5}, Choices, Err),
            DaemonClient::PredictOutcome::Error);

  std::string Json = H.Srv->statsJson();
  EXPECT_NE(Json.find("\"errors\": 1"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"shed\": 0"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"max_sessions\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"shed_sessions\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"stalled\""), std::string::npos) << Json;
}

//===- tests/daemon/StoreTenantTest.cpp --------------------------------------=//
//
// Store-backed tenants in the daemon registry: addStoreTenant loads the
// CURRENT epoch checksum-verified, pollStores() hot-swaps the tenant
// when a rollout promotes a new epoch, and the provenance wall keeps a
// store that suddenly serves a different benchmark from ever reaching
// the tenant. This is the daemon end of the trainer/server split; the
// trainer end (RolloutController publishing into the same directory) is
// tested in tests/rollout/.
//
//===----------------------------------------------------------------------===//

#include "daemon/ModelRegistry.h"

#include "core/Pipeline.h"
#include "registry/BenchmarkRegistry.h"
#include "store/ModelStore.h"
#include "support/FaultInject.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include <unistd.h>

using namespace pbt;
using daemon::ModelRegistry;
using daemon::Tenant;

namespace {

constexpr double kScale = 0.1;

const std::string &modelBytes(const char *Benchmark) {
  auto Train = [](const char *Name) {
    const registry::BenchmarkFactory &F =
        registry::BenchmarkRegistry::instance().get(Name);
    registry::ProgramPtr P = F.makeProgram(kScale, F.defaultProgramSeed());
    core::TrainedSystem Sys = core::trainSystem(*P, F.defaultOptions(kScale));
    serialize::TrainedModel M = serialize::makeModel(
        Name, kScale, F.defaultProgramSeed(), *P, std::move(Sys));
    M.System.Data.reset();
    return serialize::serializeModel(M);
  };
  static const std::string Sort = Train("sort1");
  static const std::string Packing = Train("binpacking");
  return std::string(Benchmark) == "sort1" ? Sort : Packing;
}

class StoreTenantTest : public ::testing::Test {
protected:
  void SetUp() override {
    support::FaultInjector::instance().reset();
    Dir = ::testing::TempDir() + "pbt-store-tenant-" +
          ::testing::UnitTest::GetInstance()->current_test_info()->name() +
          "-" + std::to_string(::getpid());
    std::filesystem::remove_all(Dir);
    Store = std::make_unique<store::ModelStore>(Dir);
    ASSERT_TRUE(Store->open().Ok);
  }
  void TearDown() override {
    Store.reset();
    std::filesystem::remove_all(Dir);
    support::FaultInjector::instance().reset();
  }

  uint64_t publishAndPromote(const std::string &Image) {
    uint64_t E = 0;
    EXPECT_TRUE(Store->publish(Image, E).Ok);
    EXPECT_TRUE(Store->promote(E).Ok);
    return E;
  }

  std::string Dir;
  std::unique_ptr<store::ModelStore> Store;
};

TEST_F(StoreTenantTest, AddStoreTenantServesTheCurrentEpoch) {
  publishAndPromote(modelBytes("sort1"));
  ModelRegistry Reg;
  ASSERT_TRUE(Reg.addStoreTenant("sorter", Dir).Ok);

  Tenant *T = Reg.find("sorter");
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->Benchmark, "sort1");
  EXPECT_EQ(T->StoreDir, Dir);
  EXPECT_EQ(T->StoreEpoch.load(), 1u);
  ASSERT_TRUE(T->Service->ready());
  EXPECT_GT(T->Landmarks.load(), 0u);
}

TEST_F(StoreTenantTest, AddStoreTenantRefusesAnEmptyStore) {
  ModelRegistry Reg;
  EXPECT_FALSE(Reg.addStoreTenant("sorter", Dir).Ok); // nothing promoted
  EXPECT_EQ(Reg.size(), 0u);
}

TEST_F(StoreTenantTest, PollSwapsOnPromotionAndIsOtherwiseIdle) {
  publishAndPromote(modelBytes("sort1"));
  ModelRegistry Reg;
  ASSERT_TRUE(Reg.addStoreTenant("sorter", Dir).Ok);
  Tenant *T = Reg.find("sorter");

  // No promotion since the tenant loaded: nothing to do.
  EXPECT_EQ(Reg.pollStores(), 0u);
  EXPECT_EQ(T->StoreSwaps.load(), 0u);
  uint64_t EpochBefore = T->Service->epoch();

  // The trainer side promotes epoch 2; the next poll hot-swaps.
  publishAndPromote(modelBytes("sort1"));
  EXPECT_EQ(Reg.pollStores(), 1u);
  EXPECT_EQ(T->StoreEpoch.load(), 2u);
  EXPECT_EQ(T->StoreSwaps.load(), 1u);
  EXPECT_GT(T->Service->epoch(), EpochBefore); // service epoch bumped
  EXPECT_TRUE(T->Service->ready());

  // Idempotent again after convergence.
  EXPECT_EQ(Reg.pollStores(), 0u);
  EXPECT_EQ(T->StoreSwaps.load(), 1u);
}

TEST_F(StoreTenantTest, ProvenanceWallRejectsAForeignModel) {
  publishAndPromote(modelBytes("sort1"));
  ModelRegistry Reg;
  ASSERT_TRUE(Reg.addStoreTenant("sorter", Dir).Ok);
  Tenant *T = Reg.find("sorter");

  // The store suddenly serves binpacking (a misconfigured trainer
  // pointed at the wrong directory). The tenant must keep its epoch.
  publishAndPromote(modelBytes("binpacking"));
  EXPECT_EQ(Reg.pollStores(), 0u);
  EXPECT_EQ(T->StoreEpoch.load(), 1u);
  EXPECT_EQ(T->StoreRejects.load(), 1u);
  EXPECT_EQ(T->Benchmark, "sort1");
  EXPECT_TRUE(T->Service->ready());
}

TEST_F(StoreTenantTest, FileAndStoreTenantsCoexist) {
  publishAndPromote(modelBytes("sort1"));
  std::string FilePath = Dir + "-model.pbt";
  {
    std::ofstream Out(FilePath, std::ios::binary);
    Out << modelBytes("binpacking");
  }
  ModelRegistry Reg;
  ASSERT_TRUE(Reg.addTenant("packer", FilePath).Ok);
  ASSERT_TRUE(Reg.addStoreTenant("sorter", Dir).Ok);
  EXPECT_EQ(Reg.size(), 2u);

  // pollStores leaves file tenants alone.
  publishAndPromote(modelBytes("sort1"));
  EXPECT_EQ(Reg.pollStores(), 1u);
  EXPECT_EQ(Reg.find("packer")->StoreSwaps.load(), 0u);
  EXPECT_EQ(Reg.find("sorter")->StoreEpoch.load(), 2u);
  std::filesystem::remove(FilePath);
}

} // namespace

//===- tests/daemon/MixedTenantsTest.cpp -------------------------------------=//
//
// The multi-tenant acceptance wall: three different benchmarks, trained
// and persisted separately, are registered as tenants of one pbt-serve
// daemon and served CONCURRENTLY from one deterministic
// streams::MixedStream -- one client thread per tenant, each driving
// exactly its tenant's subsequence of the global mixed schedule over the
// real Unix-socket protocol. Every daemon answer must match an
// independent in-process PredictionService replay of the same model
// file, and the per-tenant accounting must add up to the mix. Runs under
// the sanitizer CI matrix like every integration-labelled test.
//
//===----------------------------------------------------------------------===//

#include "daemon/Client.h"
#include "daemon/ModelRegistry.h"
#include "daemon/Server.h"

#include "registry/BenchmarkRegistry.h"
#include "runtime/PredictionService.h"
#include "serialize/ModelIO.h"
#include "streams/WorkloadStream.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace pbt;

namespace {

constexpr double kScale = 0.1;
const char *const kTenants[3] = {"sort1", "clustering1", "binpacking"};

/// One trained+persisted model per tenant benchmark, built once per
/// process (the DaemonServerTest idiom, three ways).
const std::string &tenantModelPath(const std::string &Name) {
  static std::map<std::string, std::string> Paths = [] {
    std::map<std::string, std::string> Out;
    for (const char *Name : kTenants) {
      const registry::BenchmarkFactory &F =
          registry::BenchmarkRegistry::instance().get(Name);
      registry::ProgramPtr P = F.makeProgram(kScale, F.defaultProgramSeed());
      core::TrainedSystem Sys = core::trainSystem(*P, F.defaultOptions(kScale));
      serialize::TrainedModel M = serialize::makeModel(
          Name, kScale, F.defaultProgramSeed(), *P, std::move(Sys));
      std::string Path = "/tmp/pbt-mixed-" + std::to_string(::getpid()) +
                         "-" + Name + ".pbt";
      EXPECT_TRUE(
          serialize::writeModelText(Path, serialize::serializeModel(M)).Ok);
      Out[Name] = Path;
    }
    return Out;
  }();
  return Paths.at(Name);
}

std::string freshSocket() {
  static std::atomic<int> Counter{0};
  return "/tmp/pbt-mx-" + std::to_string(::getpid()) + "-" +
         std::to_string(Counter.fetch_add(1)) + ".sock";
}

/// The in-process oracle for one tenant: decisions straight from a fresh
/// PredictionService over the same model file and provenance-rebuilt
/// program the daemon serves from.
std::vector<unsigned> oracleLandmarks(const std::string &Name,
                                      const std::vector<size_t> &Inputs) {
  runtime::PredictionService Service;
  EXPECT_TRUE(Service.loadFile(tenantModelPath(Name)).Ok);
  const registry::BenchmarkFactory &F =
      registry::BenchmarkRegistry::instance().get(Name);
  registry::ProgramPtr P = F.makeProgram(kScale, F.defaultProgramSeed());
  EXPECT_TRUE(Service.bind(*P).Ok);
  std::vector<unsigned> Out;
  for (const runtime::PredictionService::Decision &D :
       Service.decideBatch(Inputs, nullptr))
    Out.push_back(D.Landmark);
  return Out;
}

TEST(MixedTenantsTest, ThreeTenantsOneMixedStreamFullParity) {
  // The registry the daemon serves from: one tenant per benchmark.
  daemon::ModelRegistry Registry;
  for (const char *Name : kTenants) {
    serialize::LoadStatus St = Registry.addTenant(Name, tenantModelPath(Name));
    ASSERT_TRUE(St.Ok) << Name << ": " << St.Error;
  }

  // One WorkloadStream per tenant over its own program -- rotated
  // schedules, decorrelated seeds -- interleaved into one global mix.
  const streams::Schedule Rotation[3] = {streams::Schedule::Abrupt,
                                         streams::Schedule::Ramp,
                                         streams::Schedule::Periodic};
  std::vector<std::unique_ptr<streams::WorkloadStream>> Streams;
  std::vector<streams::MixedTenantSpec> Specs;
  for (size_t I = 0; I != 3; ++I) {
    daemon::Tenant *T = Registry.find(kTenants[I]);
    ASSERT_NE(T, nullptr);
    streams::WorkloadStreamOptions SO;
    SO.Kind = Rotation[I];
    SO.Requests = 240;
    SO.Seed = 0xA11CE + 101 * I;
    Streams.push_back(
        std::make_unique<streams::WorkloadStream>(*T->Program, SO));
    Specs.push_back({kTenants[I], Streams.back().get(), 1.0});
  }
  streams::MixedStreamOptions MO;
  MO.Requests = 720;
  streams::MixedStream Mixed(Specs, MO);

  daemon::ServerOptions SO;
  SO.SocketPath = freshSocket();
  SO.Workers = 3;
  SO.QueueCapacity = 64;
  SO.BatchMax = 8;
  daemon::Server Server(Registry, SO);
  std::string Err;
  ASSERT_TRUE(Server.start(Err)) << Err;

  // One client thread per tenant, all live at once: each drives its
  // tenant's subsequence of the mix in small batches and checks every
  // answer against the in-process oracle.
  std::atomic<int> Mismatches{0}, Failures{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != 3; ++T)
    Threads.emplace_back([&, T] {
      std::vector<size_t> Inputs = Mixed.tenantInputs(T);
      std::vector<unsigned> Oracle = oracleLandmarks(kTenants[T], Inputs);
      daemon::DaemonClient C;
      std::string CErr;
      daemon::DaemonClient::AttachInfo Info;
      if (!C.connect(SO.SocketPath, CErr) ||
          !C.attach(kTenants[T], Info, CErr)) {
        Failures.fetch_add(1);
        return;
      }
      for (size_t Base = 0; Base < Inputs.size(); Base += 8) {
        std::vector<uint64_t> Wire;
        for (size_t K = Base; K < Inputs.size() && Wire.size() < 8; ++K)
          Wire.push_back(Inputs[K]);
        std::vector<daemon::PredictedChoice> Choices;
        auto O = C.predict(Wire, Choices, CErr);
        if (O == daemon::DaemonClient::PredictOutcome::Shed) {
          Base -= 8; // retry the same batch; shedding is not an answer
          continue;
        }
        if (O != daemon::DaemonClient::PredictOutcome::Ok ||
            Choices.size() != Wire.size()) {
          Failures.fetch_add(1);
          return;
        }
        for (size_t K = 0; K < Wire.size(); ++K)
          if (Choices[K].Landmark != Oracle[Base + K])
            Mismatches.fetch_add(1);
      }
    });
  for (std::thread &Th : Threads)
    Th.join();

  EXPECT_EQ(Failures.load(), 0);
  EXPECT_EQ(Mismatches.load(), 0)
      << "daemon answers diverged from the in-process replay";

  // The mix's per-tenant request counts must be what the daemon billed:
  // nothing dropped, nothing double-served (shed retries excepted --
  // Requests counts admitted work, and every admitted batch answered).
  size_t TotalAnswered = 0;
  for (unsigned T = 0; T != 3; ++T) {
    daemon::Tenant *Ten = Registry.find(kTenants[T]);
    ASSERT_NE(Ten, nullptr);
    EXPECT_GE(Ten->Decisions.load(), Mixed.tenantRequests(T))
        << kTenants[T] << " answered fewer decisions than its share";
    TotalAnswered += Mixed.tenantRequests(T);
  }
  EXPECT_EQ(TotalAnswered, Mixed.length());

  Server.stop();
}

} // namespace

//===- tests/daemon/ClientRetryTest.cpp --------------------------------------=//
//
// The DaemonClient retry/backoff policy, pinned deterministically via
// ClientOptions::SleepHook: exact attempt counts, the exact bounded
// exponential sleep sequence, deadline-respecting early exit, and a
// mid-retry server arrival being caught on the next attempt -- all in
// zero wall-clock sleep time.
//
//===----------------------------------------------------------------------===//

#include "daemon/Client.h"
#include "daemon/Transport.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

using namespace pbt::daemon;

namespace {

std::string missingSocket() {
  static std::atomic<int> Counter{0};
  return "/tmp/pbt-crt-none-" + std::to_string(::getpid()) + "-" +
         std::to_string(Counter.fetch_add(1)) + ".sock";
}

} // namespace

TEST(ClientRetryTest, BoundedExponentialBackoffSchedule) {
  ClientOptions CO;
  CO.ConnectTimeout = 0.1;
  CO.MaxConnectAttempts = 5;
  CO.BackoffSeconds = 0.01;
  CO.BackoffCapSeconds = 0.04;
  std::vector<double> Sleeps;
  CO.SleepHook = [&](double S) { Sleeps.push_back(S); };

  DaemonClient C(CO);
  std::string Err;
  EXPECT_FALSE(C.connectWithRetry(missingSocket(), 3600.0, Err));
  // 5 attempts, 4 inter-attempt sleeps: base, doubled, capped, capped.
  ASSERT_EQ(Sleeps.size(), 4u);
  EXPECT_DOUBLE_EQ(Sleeps[0], 0.01);
  EXPECT_DOUBLE_EQ(Sleeps[1], 0.02);
  EXPECT_DOUBLE_EQ(Sleeps[2], 0.04);
  EXPECT_DOUBLE_EQ(Sleeps[3], 0.04);
  EXPECT_NE(Err.find("5 attempts"), std::string::npos) << Err;
}

TEST(ClientRetryTest, ZeroDeadlineMeansSingleAttempt) {
  ClientOptions CO;
  CO.ConnectTimeout = 0.1;
  CO.MaxConnectAttempts = 10;
  std::vector<double> Sleeps;
  CO.SleepHook = [&](double S) { Sleeps.push_back(S); };

  DaemonClient C(CO);
  std::string Err;
  EXPECT_FALSE(C.connectWithRetry(missingSocket(), 0.0, Err));
  // The wall-clock deadline trips before any backoff sleep happens.
  EXPECT_TRUE(Sleeps.empty());
}

TEST(ClientRetryTest, ServerArrivingMidRetryIsCaughtNextAttempt) {
  std::string Path = missingSocket();
  Listener L; // not yet open: first attempts must fail

  ClientOptions CO;
  CO.ConnectTimeout = 0.5;
  CO.MaxConnectAttempts = 10;
  CO.BackoffSeconds = 0.01;
  std::vector<double> Sleeps;
  CO.SleepHook = [&](double S) {
    Sleeps.push_back(S);
    // "The server comes up" after the second failed attempt; a plain
    // listening socket is enough for connect() to succeed.
    if (Sleeps.size() == 2) {
      Endpoint E;
      std::string Err;
      ASSERT_TRUE(parseEndpoint(Path, E, Err)) << Err;
      ASSERT_TRUE(L.open(E, Err)) << Err;
    }
  };

  DaemonClient C(CO);
  std::string Err;
  EXPECT_TRUE(C.connectWithRetry(Path, 3600.0, Err)) << Err;
  EXPECT_TRUE(C.connected());
  EXPECT_EQ(Sleeps.size(), 2u) << "third attempt should have connected";
  C.close();
}

//===- tests/daemon/ProtocolTest.cpp -----------------------------------------=//
//
// The pbt-serve wire protocol in isolation: encode/decode round-trips
// for every message type, strict rejection of malformed payloads
// (truncation at every byte boundary, trailing garbage, lying counts,
// unknown tags), and a deterministic random-bytes fuzz sweep -- the
// in-process half of the daemon fuzz wall (DaemonServerTest drives the
// same hostility through a live socket).
//
//===----------------------------------------------------------------------===//

#include "daemon/Protocol.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

using namespace pbt::daemon;

namespace {

/// Deterministic xorshift so the fuzz sweep replays bit-identically.
struct Rng {
  uint64_t S = 0x9E3779B97F4A7C15ull;
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
};

} // namespace

TEST(ProtocolTest, HelloRoundTrip) {
  std::string P = makeHello("sort1");
  Message M;
  ASSERT_TRUE(decodeMessage(P, M));
  EXPECT_EQ(M.Type, MsgType::Hello);
  EXPECT_EQ(M.Text, "sort1");
}

TEST(ProtocolTest, PredictRoundTrip) {
  std::vector<uint64_t> Inputs = {0, 7, 42, 1ull << 40};
  std::string P = makePredict(Inputs);
  Message M;
  ASSERT_TRUE(decodeMessage(P, M));
  EXPECT_EQ(M.Type, MsgType::Predict);
  EXPECT_EQ(M.Inputs, Inputs);
}

TEST(ProtocolTest, BodylessRoundTrips) {
  for (auto [Payload, Type] :
       {std::pair{makeStats(), MsgType::Stats},
        std::pair{makeListTenants(), MsgType::ListTenants},
        std::pair{makeShutdown(), MsgType::Shutdown},
        std::pair{makeBye(), MsgType::Bye}}) {
    Message M;
    ASSERT_TRUE(decodeMessage(Payload, M));
    EXPECT_EQ(M.Type, Type);
  }
}

TEST(ProtocolTest, TenantOkRoundTrip) {
  std::string P = makeTenantOk(3, 12, 480);
  Message M;
  ASSERT_TRUE(decodeMessage(P, M));
  EXPECT_EQ(M.Type, MsgType::TenantOk);
  EXPECT_EQ(M.Epoch, 3u);
  EXPECT_EQ(M.Landmarks, 12u);
  EXPECT_EQ(M.NumInputs, 480u);
}

TEST(ProtocolTest, PredictionsRoundTrip) {
  std::vector<PredictedChoice> C = {{0, 1}, {5, 1}, {11, 2}};
  std::string P = makePredictions(C);
  Message M;
  ASSERT_TRUE(decodeMessage(P, M));
  EXPECT_EQ(M.Type, MsgType::Predictions);
  ASSERT_EQ(M.Choices.size(), C.size());
  for (size_t I = 0; I < C.size(); ++I) {
    EXPECT_EQ(M.Choices[I].Landmark, C[I].Landmark);
    EXPECT_EQ(M.Choices[I].Epoch, C[I].Epoch);
  }
}

TEST(ProtocolTest, ShedErrorStatsListRoundTrips) {
  Message M;
  ASSERT_TRUE(decodeMessage(makeShed(17, "queue full"), M));
  EXPECT_EQ(M.Type, MsgType::Shed);
  EXPECT_EQ(M.QueueDepth, 17u);
  EXPECT_EQ(M.Text, "queue full");

  ASSERT_TRUE(decodeMessage(makeError("boom"), M));
  EXPECT_EQ(M.Type, MsgType::Error);
  EXPECT_EQ(M.Text, "boom");

  ASSERT_TRUE(decodeMessage(makeStatsReply("{\"x\": 1}"), M));
  EXPECT_EQ(M.Type, MsgType::StatsReply);
  EXPECT_EQ(M.Text, "{\"x\": 1}");

  ASSERT_TRUE(decodeMessage(makeTenantList({"a", "b", "c"}), M));
  EXPECT_EQ(M.Type, MsgType::TenantList);
  EXPECT_EQ(M.Names, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(ProtocolTest, EmptyAndUnknownTagRejected) {
  Message M;
  EXPECT_FALSE(decodeMessage(std::string(), M));
  // 0x88 is Health's tag, but a bare Health without its body is still
  // malformed (0x06 left this list when it became Ping).
  for (uint8_t Tag : {0x00, 0x07, 0x42, 0x80, 0x88, 0xFF}) {
    std::string P(1, static_cast<char>(Tag));
    EXPECT_FALSE(decodeMessage(P, M)) << "tag " << int(Tag);
  }
}

TEST(ProtocolTest, PingRoundTrip) {
  Message M;
  ASSERT_TRUE(decodeMessage(makePing(), M));
  EXPECT_EQ(M.Type, MsgType::Ping);
}

TEST(ProtocolTest, HealthRoundTrip) {
  std::vector<TenantHealth> T = {{"sort1", 3, 5}, {"helmholtz3d", 1, 1}};
  std::string P = makeHealth(4242, 7, T);
  Message M;
  ASSERT_TRUE(decodeMessage(P, M));
  EXPECT_EQ(M.Type, MsgType::Health);
  EXPECT_EQ(M.Pid, 4242u);
  EXPECT_EQ(M.Sessions, 7u);
  ASSERT_EQ(M.Tenants.size(), T.size());
  for (size_t I = 0; I < T.size(); ++I) {
    EXPECT_EQ(M.Tenants[I].Name, T[I].Name);
    EXPECT_EQ(M.Tenants[I].ServiceEpoch, T[I].ServiceEpoch);
    EXPECT_EQ(M.Tenants[I].StoreEpoch, T[I].StoreEpoch);
  }
}

TEST(ProtocolTest, HealthWithNoTenantsRoundTrips) {
  Message M;
  ASSERT_TRUE(decodeMessage(makeHealth(1, 0, {}), M));
  EXPECT_EQ(M.Type, MsgType::Health);
  EXPECT_TRUE(M.Tenants.empty());
}

TEST(ProtocolTest, TruncationAtEveryBoundaryRejected) {
  // Every strict prefix of a valid payload must fail to decode, for
  // every message type with a body.
  for (const std::string &P :
       {makeHello("tenant"), makePredict({1, 2, 3}), makeTenantOk(1, 2, 3),
        makePredictions({{1, 1}, {2, 1}}), makeShed(4, "full"),
        makeError("message"), makeStatsReply("{}"),
        makeTenantList({"x", "yz"}),
        makeHealth(99, 2, {{"t", 1, 2}, {"u", 3, 4}})}) {
    for (size_t Cut = 1; Cut < P.size(); ++Cut) {
      Message M;
      EXPECT_FALSE(decodeMessage(P.substr(0, Cut), M))
          << "prefix " << Cut << "/" << P.size();
    }
  }
}

TEST(ProtocolTest, TrailingGarbageRejected) {
  for (std::string P : {makeHello("tenant"), makePredict({1}), makeStats(),
                        makeBye(), makePing(), makeHealth(1, 0, {})}) {
    P.push_back('\0');
    Message M;
    EXPECT_FALSE(decodeMessage(P, M));
  }
}

TEST(ProtocolTest, LyingCountsRejected) {
  // Predict claiming 5 inputs but carrying 2.
  std::string P = makePredict({1, 2, 3, 4, 5});
  P.resize(1 + 4 + 2 * 8);
  Message M;
  EXPECT_FALSE(decodeMessage(P, M));

  // Zero-input predict is meaningless on the wire.
  std::string Z;
  Z.push_back(static_cast<char>(MsgType::Predict));
  Z.append(4, '\0');
  EXPECT_FALSE(decodeMessage(Z, M));

  // A count far past the cap must be rejected before any allocation
  // sized off it.
  std::string Huge;
  Huge.push_back(static_cast<char>(MsgType::Predict));
  for (int I = 0; I < 4; ++I)
    Huge.push_back(static_cast<char>(0xFF));
  EXPECT_FALSE(decodeMessage(Huge, M));

  // String length past the remaining payload.
  std::string S;
  S.push_back(static_cast<char>(MsgType::Hello));
  S.push_back(static_cast<char>(0xFF));
  S.push_back(static_cast<char>(0x0F));
  S.append(3, 'a');
  EXPECT_FALSE(decodeMessage(S, M));
}

TEST(ProtocolTest, BuilderTruncatesOversizedStrings) {
  // Builders clamp at the wire cap instead of emitting an invalid frame.
  std::string Long(2 * kMaxStringBytes, 'x');
  Message M;
  ASSERT_TRUE(decodeMessage(makeError(Long), M));
  EXPECT_EQ(M.Text.size(), kMaxStringBytes - 1);
}

TEST(ProtocolTest, RandomBytesNeverCrash) {
  Rng R;
  Message M;
  for (int Round = 0; Round < 2000; ++Round) {
    size_t Len = R.next() % 64;
    std::string P;
    P.reserve(Len);
    for (size_t I = 0; I < Len; ++I)
      P.push_back(static_cast<char>(R.next()));
    // Must never crash, over-read, or throw; the return value is free
    // to be either (a random payload can be a valid tiny message).
    (void)decodeMessage(P, M);
  }
}

TEST(ProtocolTest, MutatedValidPayloadsNeverCrash) {
  Rng R;
  Message M;
  const std::string Seeds[] = {makeHello("sort1"), makePredict({1, 2, 3}),
                               makePredictions({{1, 1}}),
                               makeTenantList({"a", "b"})};
  for (int Round = 0; Round < 2000; ++Round) {
    std::string P = Seeds[R.next() % 4];
    size_t Flips = 1 + R.next() % 4;
    for (size_t F = 0; F < Flips; ++F)
      P[R.next() % P.size()] ^= static_cast<char>(1u << (R.next() % 8));
    (void)decodeMessage(P, M);
  }
}

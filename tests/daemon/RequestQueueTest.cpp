//===- tests/daemon/RequestQueueTest.cpp -------------------------------------=//
//
// The bounded MPMC queue that is pbt-serve's admission controller:
// capacity is a hard bound (tryPush refuses, never blocks, never
// grows), FIFO order, timed pops for micro-batch gathering, and the
// drain-on-close guarantee that every admitted item is still popped
// after close(). The concurrency sweep (many producers, many consumers,
// racing close) is the TSan target for the daemon's queue.
//
//===----------------------------------------------------------------------===//

#include "daemon/RequestQueue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

using namespace pbt::daemon;

TEST(RequestQueueTest, CapacityIsAHardBound) {
  BoundedQueue<int> Q(3);
  EXPECT_EQ(Q.capacity(), 3u);
  EXPECT_TRUE(Q.tryPush(1));
  EXPECT_TRUE(Q.tryPush(2));
  EXPECT_TRUE(Q.tryPush(3));
  EXPECT_FALSE(Q.tryPush(4)) << "full queue must shed";
  EXPECT_EQ(Q.depth(), 3u);
  int V = 0;
  EXPECT_TRUE(Q.tryPop(V));
  EXPECT_EQ(V, 1);
  EXPECT_TRUE(Q.tryPush(4)) << "freed slot readmits";
}

TEST(RequestQueueTest, FifoOrder) {
  BoundedQueue<int> Q(8);
  for (int I = 0; I < 8; ++I)
    ASSERT_TRUE(Q.tryPush(std::move(I)));
  for (int I = 0; I < 8; ++I) {
    int V = -1;
    ASSERT_TRUE(Q.pop(V));
    EXPECT_EQ(V, I);
  }
}

TEST(RequestQueueTest, ZeroCapacityClampsToOne) {
  BoundedQueue<int> Q(0);
  EXPECT_EQ(Q.capacity(), 1u);
  EXPECT_TRUE(Q.tryPush(1));
  EXPECT_FALSE(Q.tryPush(2));
}

TEST(RequestQueueTest, TryPopForTimesOutEmpty) {
  BoundedQueue<int> Q(2);
  int V = 0;
  auto T0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(Q.tryPopFor(V, std::chrono::milliseconds(30)));
  auto Waited = std::chrono::steady_clock::now() - T0;
  EXPECT_GE(Waited, std::chrono::milliseconds(25));
}

TEST(RequestQueueTest, CloseWakesBlockedConsumer) {
  BoundedQueue<int> Q(2);
  std::atomic<bool> Returned{false};
  std::thread Consumer([&] {
    int V = 0;
    EXPECT_FALSE(Q.pop(V)) << "pop after close-and-drain returns false";
    Returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(Returned.load());
  Q.close();
  Consumer.join();
  EXPECT_TRUE(Returned.load());
  EXPECT_FALSE(Q.tryPush(1)) << "closed queue admits nothing";
}

TEST(RequestQueueTest, CloseDrainsQueuedItems) {
  // The shutdown guarantee: items admitted before close() are still
  // popped, so every accepted request gets an answer.
  BoundedQueue<int> Q(4);
  ASSERT_TRUE(Q.tryPush(10));
  ASSERT_TRUE(Q.tryPush(11));
  Q.close();
  int V = 0;
  EXPECT_TRUE(Q.pop(V));
  EXPECT_EQ(V, 10);
  EXPECT_TRUE(Q.pop(V));
  EXPECT_EQ(V, 11);
  EXPECT_FALSE(Q.pop(V));
}

TEST(RequestQueueTest, MpmcNoLossNoDuplication) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> Q(16);

  std::atomic<int> Accepted{0};
  std::vector<std::thread> Producers;
  for (int P = 0; P < kProducers; ++P)
    Producers.emplace_back([&, P] {
      for (int I = 0; I < kPerProducer; ++I) {
        int Item = P * kPerProducer + I;
        // Spin on shed like a real session would retry; counts every
        // item exactly once when finally admitted.
        while (!Q.tryPush(std::move(Item)))
          std::this_thread::yield();
        Accepted.fetch_add(1);
      }
    });

  std::mutex SeenMutex;
  std::set<int> Seen;
  std::vector<std::thread> Consumers;
  for (int C = 0; C < kConsumers; ++C)
    Consumers.emplace_back([&] {
      int V = 0;
      while (Q.pop(V)) {
        std::lock_guard<std::mutex> Lock(SeenMutex);
        EXPECT_TRUE(Seen.insert(V).second) << "duplicate " << V;
      }
    });

  for (auto &T : Producers)
    T.join();
  Q.close();
  for (auto &T : Consumers)
    T.join();

  EXPECT_EQ(Accepted.load(), kProducers * kPerProducer);
  EXPECT_EQ(Seen.size(), static_cast<size_t>(kProducers * kPerProducer));
}

//===- tests/daemon/DaemonServerTest.cpp -------------------------------------=//
//
// The pbt-serve daemon end to end over a real Unix socket: tenant
// registration from persisted model files, choice parity between daemon
// answers and an in-process PredictionService replay, multi-tenant
// isolation, admission control (deterministic shedding with the serve
// path stalled), clean shutdown with the queue draining, and the
// protocol fuzz wall -- truncated frames, oversized length prefixes,
// garbage payloads, hostile tenant names and mid-request disconnects
// must never crash or wedge the server. Runs under the sanitizer CI
// matrix like every integration-labelled test.
//
//===----------------------------------------------------------------------===//

#include "daemon/Client.h"
#include "daemon/ModelRegistry.h"
#include "daemon/Protocol.h"
#include "daemon/Server.h"

#include "registry/BenchmarkRegistry.h"
#include "runtime/PredictionService.h"
#include "serialize/ModelIO.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

using namespace pbt;

namespace {

constexpr double kScale = 0.1;

/// Trains the sort1 model once per process (the AdaptiveServiceTest
/// idiom); tests serve it from a temp file like a real deployment.
const std::string &modelBytes() {
  static const std::string Bytes = [] {
    const registry::BenchmarkFactory &F =
        registry::BenchmarkRegistry::instance().get("sort1");
    registry::ProgramPtr P = F.makeProgram(kScale, F.defaultProgramSeed());
    core::TrainedSystem Sys = core::trainSystem(*P, F.defaultOptions(kScale));
    serialize::TrainedModel M = serialize::makeModel(
        "sort1", kScale, F.defaultProgramSeed(), *P, std::move(Sys));
    return serialize::serializeModel(M);
  }();
  return Bytes;
}

const std::string &modelPath() {
  static const std::string Path = [] {
    std::string P =
        "/tmp/pbt-dt-model-" + std::to_string(::getpid()) + ".pbt";
    EXPECT_TRUE(serialize::writeModelText(P, modelBytes()).Ok);
    return P;
  }();
  return Path;
}

/// Short unique socket paths: sun_path caps at ~107 bytes, so build
/// dirs are out.
std::string freshSocket() {
  static std::atomic<int> Counter{0};
  return "/tmp/pbt-dt-" + std::to_string(::getpid()) + "-" +
         std::to_string(Counter.fetch_add(1)) + ".sock";
}

/// A running server over one or more tenants of the trained model.
struct Harness {
  daemon::ModelRegistry Registry;
  std::unique_ptr<daemon::Server> Srv;
  std::string Socket = freshSocket();

  explicit Harness(daemon::ServerOptions SO = {},
                   daemon::ModelRegistryOptions RO = {},
                   std::vector<std::string> TenantNames = {""})
      : Registry(RO) {
    for (const std::string &Name : TenantNames) {
      serialize::LoadStatus St = Registry.addTenant(Name, modelPath());
      EXPECT_TRUE(St.Ok) << St.Error;
    }
    SO.SocketPath = Socket;
    Srv = std::make_unique<daemon::Server>(Registry, SO);
    std::string Err;
    EXPECT_TRUE(Srv->start(Err)) << Err;
  }

  ~Harness() { Srv->stop(); }
};

/// The in-process oracle: landmark decisions straight from
/// PredictionService::decideBatch on the same model file.
std::vector<unsigned> inProcessLandmarks(const std::vector<size_t> &Inputs) {
  runtime::PredictionService Service;
  EXPECT_TRUE(Service.loadFile(modelPath()).Ok);
  const registry::BenchmarkFactory &F =
      registry::BenchmarkRegistry::instance().get("sort1");
  registry::ProgramPtr P = F.makeProgram(kScale, F.defaultProgramSeed());
  EXPECT_TRUE(Service.bind(*P).Ok);
  std::vector<unsigned> Out;
  for (const runtime::PredictionService::Decision &D :
       Service.decideBatch(Inputs, nullptr))
    Out.push_back(D.Landmark);
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Serving correctness
//===----------------------------------------------------------------------===//

TEST(DaemonServerTest, DaemonChoicesMatchInProcessDecideBatch) {
  Harness H;
  daemon::DaemonClient C;
  std::string Err;
  ASSERT_TRUE(C.connect(H.Socket, Err)) << Err;
  daemon::DaemonClient::AttachInfo Info;
  ASSERT_TRUE(C.attach("sort1", Info, Err)) << Err;
  // Offline-trained models carry epoch 0; adaptation bumps it.
  EXPECT_GT(Info.Landmarks, 0u);
  ASSERT_GT(Info.NumInputs, 0u);

  std::vector<size_t> Inputs;
  std::vector<uint64_t> Wire;
  for (size_t I = 0; I < Info.NumInputs; ++I) {
    Inputs.push_back(I);
    Wire.push_back(I);
  }
  std::vector<daemon::PredictedChoice> Choices;
  ASSERT_EQ(C.predict(Wire, Choices, Err),
            daemon::DaemonClient::PredictOutcome::Ok)
      << Err;
  ASSERT_EQ(Choices.size(), Inputs.size());

  std::vector<unsigned> Oracle = inProcessLandmarks(Inputs);
  for (size_t I = 0; I < Inputs.size(); ++I) {
    EXPECT_EQ(Choices[I].Landmark, Oracle[I]) << "input " << I;
    EXPECT_EQ(Choices[I].Epoch, Info.Epoch);
  }
}

TEST(DaemonServerTest, ConcurrentClientsAllGetParityAnswers) {
  daemon::ServerOptions SO;
  SO.Workers = 3;
  SO.QueueCapacity = 64;
  SO.BatchMax = 8;
  Harness H(SO);

  const std::vector<unsigned> Oracle = [] {
    std::vector<size_t> All;
    runtime::PredictionService Probe;
    EXPECT_TRUE(Probe.loadFile(modelPath()).Ok);
    const size_t N = Probe.model().System.L1.Features.rows();
    for (size_t I = 0; I < N; ++I)
      All.push_back(I);
    return inProcessLandmarks(All);
  }();

  constexpr int kClients = 6;
  std::atomic<int> Mismatches{0};
  std::atomic<int> Failures{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T < kClients; ++T)
    Threads.emplace_back([&, T] {
      daemon::DaemonClient C;
      std::string Err;
      daemon::DaemonClient::AttachInfo Info;
      if (!C.connect(H.Socket, Err) || !C.attach("sort1", Info, Err)) {
        Failures.fetch_add(1);
        return;
      }
      // Each client walks the universe from its own offset, in small
      // batches, twice (second pass hits the decision memo).
      for (int Pass = 0; Pass < 2; ++Pass)
        for (size_t Base = T; Base < Oracle.size(); Base += 7) {
          std::vector<uint64_t> Wire;
          for (size_t K = Base; K < Oracle.size() && Wire.size() < 5; ++K)
            Wire.push_back(K);
          std::vector<daemon::PredictedChoice> Choices;
          auto O = C.predict(Wire, Choices, Err);
          if (O == daemon::DaemonClient::PredictOutcome::Shed)
            continue; // admission refusal is not an answer change
          if (O != daemon::DaemonClient::PredictOutcome::Ok) {
            Failures.fetch_add(1);
            return;
          }
          for (size_t K = 0; K < Wire.size(); ++K)
            if (Choices[K].Landmark != Oracle[Wire[K]])
              Mismatches.fetch_add(1);
        }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0);
  EXPECT_EQ(Mismatches.load(), 0)
      << "daemon batching/interleaving changed an answer";
}

TEST(DaemonServerTest, MultiTenantServingAndListing) {
  Harness H({}, {}, {"alpha", "beta"});
  daemon::DaemonClient C;
  std::string Err;
  ASSERT_TRUE(C.connect(H.Socket, Err)) << Err;

  std::vector<std::string> Names;
  ASSERT_TRUE(C.listTenants(Names, Err)) << Err;
  EXPECT_EQ(Names, (std::vector<std::string>{"alpha", "beta"}));

  // Unknown tenant is an Error reply, not a dropped session.
  daemon::DaemonClient::AttachInfo Info;
  EXPECT_FALSE(C.attach("gamma", Info, Err));
  EXPECT_NE(Err.find("unknown tenant"), std::string::npos) << Err;
  ASSERT_TRUE(C.attach("beta", Info, Err)) << Err;

  std::vector<daemon::PredictedChoice> Choices;
  ASSERT_EQ(C.predict({0, 1, 2}, Choices, Err),
            daemon::DaemonClient::PredictOutcome::Ok)
      << Err;
  EXPECT_EQ(Choices.size(), 3u);

  // Duplicate tenant names are rejected at registration.
  daemon::ModelRegistry Dup;
  ASSERT_TRUE(Dup.addTenant("x", modelPath()).Ok);
  serialize::LoadStatus St = Dup.addTenant("x", modelPath());
  EXPECT_FALSE(St.Ok);
  EXPECT_NE(St.Error.find("duplicate"), std::string::npos) << St.Error;
}

TEST(DaemonServerTest, PredictValidation) {
  Harness H;
  daemon::DaemonClient C;
  std::string Err;
  ASSERT_TRUE(C.connect(H.Socket, Err)) << Err;

  // Predict before Hello: Error reply, session stays usable.
  std::vector<daemon::PredictedChoice> Choices;
  EXPECT_EQ(C.predict({0}, Choices, Err),
            daemon::DaemonClient::PredictOutcome::Error);
  EXPECT_NE(Err.find("Hello"), std::string::npos) << Err;

  daemon::DaemonClient::AttachInfo Info;
  ASSERT_TRUE(C.attach("sort1", Info, Err)) << Err;

  // Out-of-range input id: Error reply, session stays usable.
  EXPECT_EQ(C.predict({Info.NumInputs + 5}, Choices, Err),
            daemon::DaemonClient::PredictOutcome::Error);
  EXPECT_NE(Err.find("out of range"), std::string::npos) << Err;

  EXPECT_EQ(C.predict({0}, Choices, Err),
            daemon::DaemonClient::PredictOutcome::Ok)
      << Err;
}

//===----------------------------------------------------------------------===//
// Admission control + shutdown
//===----------------------------------------------------------------------===//

TEST(DaemonServerTest, ShedsDeterministicallyWhenServingStalls) {
  daemon::ServerOptions SO;
  SO.Workers = 1;
  SO.QueueCapacity = 1;
  SO.BatchMax = 1;
  Harness H(SO);
  daemon::Tenant *T = H.Registry.find("sort1");
  ASSERT_NE(T, nullptr);

  // Stall the serve path: the single worker will pop one request and
  // block on the tenant mutex, so the 1-slot queue must shed overflow.
  std::unique_lock<std::mutex> Stall(T->ServeMutex);

  std::atomic<int> Ok{0}, Shed{0}, Errors{0};
  auto OneClient = [&] {
    daemon::DaemonClient C;
    std::string Err;
    daemon::DaemonClient::AttachInfo Info;
    if (!C.connect(H.Socket, Err) || !C.attach("sort1", Info, Err)) {
      Errors.fetch_add(1);
      return;
    }
    std::vector<daemon::PredictedChoice> Choices;
    switch (C.predict({0}, Choices, Err)) {
    case daemon::DaemonClient::PredictOutcome::Ok:
      Ok.fetch_add(1);
      break;
    case daemon::DaemonClient::PredictOutcome::Shed:
      Shed.fetch_add(1);
      break;
    default:
      Errors.fetch_add(1);
    }
  };

  // First request occupies the worker: it is popped (leaving the queue
  // empty) and its serve blocks on the held mutex.
  std::thread Pioneer(OneClient);
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // Now flood. Exactly one flood request fills the 1-slot queue and
  // stays there (the worker is stalled, so nothing drains); the other
  // three must be shed with an immediate reply -- poll for those
  // replies while the stall is still held.
  std::vector<std::thread> Flood;
  for (int I = 0; I < 4; ++I)
    Flood.emplace_back(OneClient);
  for (int Spin = 0; Spin < 500 && Shed.load() < 3; ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(Shed.load(), 3) << "overflow must be refused while stalled";

  Stall.unlock();
  Pioneer.join();
  for (std::thread &F : Flood)
    F.join();
  EXPECT_EQ(Errors.load(), 0);
  EXPECT_EQ(Ok.load(), 2) << "the pioneer and the one queued request";
  EXPECT_EQ(Ok.load() + Shed.load(), 5);

  daemon::ServerStats Stats = H.Srv->stats();
  EXPECT_EQ(Stats.Shed, static_cast<uint64_t>(Shed.load()));
  EXPECT_EQ(Stats.Decisions, static_cast<uint64_t>(Ok.load()));
}

TEST(DaemonServerTest, ShutdownFrameStopsServerAndDrainsAdmitted) {
  Harness H;
  daemon::DaemonClient C;
  std::string Err;
  ASSERT_TRUE(C.connect(H.Socket, Err)) << Err;
  daemon::DaemonClient::AttachInfo Info;
  ASSERT_TRUE(C.attach("sort1", Info, Err)) << Err;
  std::vector<daemon::PredictedChoice> Choices;
  ASSERT_EQ(C.predict({0, 1}, Choices, Err),
            daemon::DaemonClient::PredictOutcome::Ok)
      << Err;

  daemon::DaemonClient Killer;
  ASSERT_TRUE(Killer.connect(H.Socket, Err)) << Err;
  ASSERT_TRUE(Killer.shutdownServer(Err)) << Err;
  H.Srv->waitForStop(); // returns because the frame flipped the flag
  H.Srv->stop();
  EXPECT_FALSE(H.Srv->running());

  // The socket is unlinked; fresh connections must fail.
  daemon::DaemonClient After;
  EXPECT_FALSE(After.connect(H.Socket, Err));
}

//===----------------------------------------------------------------------===//
// The protocol fuzz wall
//===----------------------------------------------------------------------===//

namespace {

/// Deterministic xorshift (replayable fuzz).
struct Rng {
  uint64_t S = 0xC0FFEE123456789ull;
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
};

/// The liveness probe every hostile scenario ends with: a fresh
/// well-formed session must still be served correctly.
void expectServerAlive(const std::string &Socket) {
  daemon::DaemonClient C;
  std::string Err;
  ASSERT_TRUE(C.connect(Socket, Err)) << "server wedged: " << Err;
  daemon::DaemonClient::AttachInfo Info;
  ASSERT_TRUE(C.attach("sort1", Info, Err)) << "server wedged: " << Err;
  std::vector<daemon::PredictedChoice> Choices;
  ASSERT_EQ(C.predict({0}, Choices, Err),
            daemon::DaemonClient::PredictOutcome::Ok)
      << "server wedged: " << Err;
}

} // namespace

TEST(DaemonServerTest, FuzzWallTruncatedAndOversizedFrames) {
  Harness H;

  // Length prefix promising 100 bytes, 10 delivered, then disconnect.
  {
    daemon::DaemonClient C;
    std::string Err;
    ASSERT_TRUE(C.connect(H.Socket, Err)) << Err;
    uint8_t Hdr[4] = {100, 0, 0, 0};
    ASSERT_TRUE(C.sendRaw(Hdr, 4));
    ASSERT_TRUE(C.sendRaw("0123456789", 10));
    C.close();
  }
  expectServerAlive(H.Socket);

  // Oversized length prefix (4 GiB): must be rejected without the
  // server ever allocating it.
  {
    daemon::DaemonClient C;
    std::string Err;
    ASSERT_TRUE(C.connect(H.Socket, Err)) << Err;
    uint8_t Hdr[4] = {0xFF, 0xFF, 0xFF, 0xFF};
    ASSERT_TRUE(C.sendRaw(Hdr, 4));
    std::string Reply;
    // The server answers Error (best effort) and drops the connection.
    daemon::FrameStatus FS = daemon::readFrame(C.fd(), Reply);
    if (FS == daemon::FrameStatus::Ok) {
      daemon::Message M;
      ASSERT_TRUE(daemon::decodeMessage(Reply, M));
      EXPECT_EQ(M.Type, daemon::MsgType::Error);
    }
    C.close();
  }
  expectServerAlive(H.Socket);

  // Zero-length frame: also a framing violation.
  {
    daemon::DaemonClient C;
    std::string Err;
    ASSERT_TRUE(C.connect(H.Socket, Err)) << Err;
    uint8_t Hdr[4] = {0, 0, 0, 0};
    ASSERT_TRUE(C.sendRaw(Hdr, 4));
    C.close();
  }
  expectServerAlive(H.Socket);

  EXPECT_GT(H.Srv->stats().Malformed, 0u);
}

TEST(DaemonServerTest, FuzzWallGarbageTenantNamesAndPayloads) {
  Harness H;
  std::string Err;

  // Hostile tenant names: huge, embedded NULs, non-UTF8. All must get
  // a clean "unknown tenant" Error on a session that stays usable.
  {
    daemon::DaemonClient C;
    ASSERT_TRUE(C.connect(H.Socket, Err)) << Err;
    daemon::DaemonClient::AttachInfo Info;
    for (const std::string &Name :
         {std::string(8192, 'x'), std::string("a\0b", 3),
          std::string("\xFF\xFE\x80 tenant"), std::string("../../etc")}) {
      EXPECT_FALSE(C.attach(Name, Info, Err));
    }
    ASSERT_TRUE(C.attach("sort1", Info, Err)) << Err;
  }

  // Well-framed garbage payloads: decode must fail server-side, the
  // reply is an Error, and the server survives every round.
  Rng R;
  for (int Round = 0; Round < 60; ++Round) {
    daemon::DaemonClient C;
    ASSERT_TRUE(C.connect(H.Socket, Err)) << Err;
    size_t Len = 1 + R.next() % 48;
    std::string Payload;
    for (size_t I = 0; I < Len; ++I)
      Payload.push_back(static_cast<char>(R.next()));
    (void)daemon::writeFrame(C.fd(), Payload);
    std::string Reply;
    (void)daemon::readFrame(C.fd(), Reply); // Error or close; either is fine
    C.close();
  }
  expectServerAlive(H.Socket);

  // Raw random bytes, no framing discipline at all, disconnect
  // mid-stream: the pure mid-request-disconnect storm.
  for (int Round = 0; Round < 60; ++Round) {
    daemon::DaemonClient C;
    ASSERT_TRUE(C.connect(H.Socket, Err)) << Err;
    size_t Len = R.next() % 64;
    std::string Bytes;
    for (size_t I = 0; I < Len; ++I)
      Bytes.push_back(static_cast<char>(R.next()));
    if (!Bytes.empty())
      (void)C.sendRaw(Bytes.data(), Bytes.size());
    C.close(); // vanish mid-whatever
  }
  expectServerAlive(H.Socket);

  // A client speaking server->client types is a protocol violation.
  {
    daemon::DaemonClient C;
    ASSERT_TRUE(C.connect(H.Socket, Err)) << Err;
    (void)daemon::writeFrame(C.fd(), daemon::makePredictions({{1, 1}}));
    std::string Reply;
    daemon::FrameStatus FS = daemon::readFrame(C.fd(), Reply);
    if (FS == daemon::FrameStatus::Ok) {
      daemon::Message M;
      ASSERT_TRUE(daemon::decodeMessage(Reply, M));
      EXPECT_EQ(M.Type, daemon::MsgType::Error);
    }
    C.close();
  }
  expectServerAlive(H.Socket);
  EXPECT_GT(H.Srv->stats().Malformed, 0u);
}

//===----------------------------------------------------------------------===//
// Adaptation mode
//===----------------------------------------------------------------------===//

TEST(DaemonServerTest, AdaptModeServesAndObserves) {
  daemon::ServerOptions SO;
  SO.Adapt = true;
  daemon::ModelRegistryOptions RO;
  RO.AutoAdapt = true;
  RO.Window = 16;
  RO.Reservoir = 16;
  Harness H(SO, RO);

  daemon::DaemonClient C;
  std::string Err;
  ASSERT_TRUE(C.connect(H.Socket, Err)) << Err;
  daemon::DaemonClient::AttachInfo Info;
  ASSERT_TRUE(C.attach("sort1", Info, Err)) << Err;
  std::vector<daemon::PredictedChoice> Choices;
  for (int Pass = 0; Pass < 3; ++Pass)
    for (uint64_t I = 0; I + 4 <= Info.NumInputs; I += 4) {
      ASSERT_EQ(C.predict({I, I + 1, I + 2, I + 3}, Choices, Err),
                daemon::DaemonClient::PredictOutcome::Ok)
          << Err;
      for (const daemon::PredictedChoice &Ch : Choices) {
        EXPECT_LT(Ch.Landmark, Info.Landmarks);
        EXPECT_GE(Ch.Epoch, Info.Epoch);
      }
    }

  // The tenant's AdaptiveService actually observed the traffic.
  daemon::Tenant *T = H.Registry.find("sort1");
  ASSERT_NE(T, nullptr);
  EXPECT_GT(T->Service->stats().Decisions, 0u);
  EXPECT_GT(T->Service->reservoir().seen(), 0u);
}

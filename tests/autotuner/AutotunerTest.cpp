//===- tests/autotuner/AutotunerTest.cpp -------------------------------------=//

#include "autotuner/EvolutionaryAutotuner.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace pbt;
using namespace pbt::autotuner;
using namespace pbt::runtime;

namespace {

/// A synthetic tunable program with a known optimum: cost is a quadratic
/// bowl over (x, y) plus a categorical penalty; accuracy (when enabled)
/// requires enough "iterations".
class QuadraticProgram : public TunableProgram {
public:
  explicit QuadraticProgram(bool WithAccuracy) : WithAccuracy(WithAccuracy) {
    XParam = Space_.addReal("x", -10.0, 10.0);
    YParam = Space_.addReal("y", -10.0, 10.0);
    AlgoParam = Space_.addCategorical("algo", 4);
    ItersParam = Space_.addInteger("iters", 1, 100, /*LogScale=*/true);
  }

  std::string name() const override { return "quadratic"; }
  const ConfigSpace &space() const override { return Space_; }
  std::vector<FeatureInfo> features() const override { return {{"f", 1}}; }
  std::optional<AccuracySpec> accuracy() const override {
    if (WithAccuracy)
      return AccuracySpec{0.9, 0.95};
    return std::nullopt;
  }
  size_t numInputs() const override { return 1; }
  double extractFeature(size_t, unsigned, unsigned,
                        support::CostCounter &) const override {
    return 0.0;
  }
  RunResult run(size_t, const Configuration &C,
                support::CostCounter &Cost) const override {
    double X = C.real(XParam), Y = C.real(YParam);
    double AlgoPenalty = C.category(AlgoParam) == 2 ? 0.0 : 50.0;
    double Iters = static_cast<double>(C.integer(ItersParam));
    double Units = 10.0 + (X - 3.0) * (X - 3.0) + (Y + 1.0) * (Y + 1.0) +
                   AlgoPenalty + Iters;
    Cost.addOther(Units);
    RunResult R;
    R.TimeUnits = Units;
    R.Accuracy = 1.0 - std::exp(-Iters / 10.0); // needs ~23 iters for 0.9
    return R;
  }

  unsigned XParam, YParam, AlgoParam, ItersParam;

private:
  ConfigSpace Space_;
  bool WithAccuracy;
};

TEST(OutcomeBetterTest, TimeOnlyComparesTime) {
  RunResult A{5.0, 1.0}, B{7.0, 1.0};
  EXPECT_TRUE(outcomeBetter(A, B, std::nullopt));
  EXPECT_FALSE(outcomeBetter(B, A, std::nullopt));
}

TEST(OutcomeBetterTest, MeetingAccuracyBeatsFaster) {
  AccuracySpec Spec{0.9, 0.95};
  RunResult Meets{100.0, 0.95}, FastButBad{1.0, 0.5};
  EXPECT_TRUE(outcomeBetter(Meets, FastButBad, Spec));
  EXPECT_FALSE(outcomeBetter(FastButBad, Meets, Spec));
}

TEST(OutcomeBetterTest, BothMeetFasterWins) {
  AccuracySpec Spec{0.9, 0.95};
  RunResult A{5.0, 0.92}, B{7.0, 0.99};
  EXPECT_TRUE(outcomeBetter(A, B, Spec));
}

TEST(OutcomeBetterTest, NeitherMeetsMoreAccurateWins) {
  AccuracySpec Spec{0.9, 0.95};
  RunResult A{100.0, 0.8}, B{1.0, 0.5};
  EXPECT_TRUE(outcomeBetter(A, B, Spec));
}

TEST(AutotunerTest, FindsNearOptimalQuadratic) {
  QuadraticProgram P(/*WithAccuracy=*/false);
  AutotunerOptions O;
  O.PopulationSize = 30;
  O.Generations = 60;
  O.Seed = 1;
  EvolutionaryAutotuner Tuner(O);
  TuneResult R = Tuner.tune(P, 0);
  // Optimum: x=3, y=-1, algo=2, iters=1 -> cost 11. Allow slack.
  EXPECT_LT(R.BestOutcome.TimeUnits, 20.0);
  EXPECT_EQ(R.Best.category(P.AlgoParam), 2u);
  EXPECT_NEAR(R.Best.real(P.XParam), 3.0, 1.5);
  EXPECT_NEAR(R.Best.real(P.YParam), -1.0, 1.5);
}

TEST(AutotunerTest, RespectsAccuracyTarget) {
  QuadraticProgram P(/*WithAccuracy=*/true);
  AutotunerOptions O;
  O.PopulationSize = 30;
  O.Generations = 60;
  O.Seed = 2;
  EvolutionaryAutotuner Tuner(O);
  TuneResult R = Tuner.tune(P, 0);
  // Must pick enough iterations to reach accuracy 0.9 even though fewer
  // iterations would be faster.
  EXPECT_GE(R.BestOutcome.Accuracy, 0.9);
  EXPECT_GE(R.Best.integer(P.ItersParam), 20);
}

TEST(AutotunerTest, DeterministicForFixedSeed) {
  QuadraticProgram P(false);
  AutotunerOptions O;
  O.PopulationSize = 12;
  O.Generations = 10;
  O.Seed = 3;
  EvolutionaryAutotuner Tuner(O);
  TuneResult A = Tuner.tune(P, 0);
  TuneResult B = Tuner.tune(P, 0);
  EXPECT_EQ(A.Best, B.Best);
  EXPECT_DOUBLE_EQ(A.BestOutcome.TimeUnits, B.BestOutcome.TimeUnits);
}

TEST(AutotunerTest, HistoryIsMonotoneNonIncreasing) {
  QuadraticProgram P(false);
  AutotunerOptions O;
  O.PopulationSize = 16;
  O.Generations = 20;
  O.Seed = 4;
  EvolutionaryAutotuner Tuner(O);
  TuneResult R = Tuner.tune(P, 0);
  ASSERT_EQ(R.History.size(), 20u);
  for (size_t I = 1; I != R.History.size(); ++I)
    EXPECT_LE(R.History[I], R.History[I - 1] + 1e-12)
        << "elitism guarantees monotone best-so-far";
}

TEST(AutotunerTest, ImprovesOverDefaultConfig) {
  QuadraticProgram P(false);
  double DefaultCost = P.runOnce(0, P.space().defaultConfig()).TimeUnits;
  AutotunerOptions O;
  O.PopulationSize = 16;
  O.Generations = 25;
  O.Seed = 5;
  EvolutionaryAutotuner Tuner(O);
  TuneResult R = Tuner.tune(P, 0);
  EXPECT_LE(R.BestOutcome.TimeUnits, DefaultCost);
}

TEST(AutotunerTest, ParallelEvaluationMatchesSequential) {
  QuadraticProgram P(false);
  AutotunerOptions O;
  O.PopulationSize = 16;
  O.Generations = 12;
  O.Seed = 6;
  EvolutionaryAutotuner Seq(O);
  TuneResult A = Seq.tune(P, 0);
  support::ThreadPool Pool(4);
  O.Pool = &Pool;
  EvolutionaryAutotuner Par(O);
  TuneResult B = Par.tune(P, 0);
  EXPECT_EQ(A.Best, B.Best) << "cost model determinism is scheduling-proof";
}

TEST(AutotunerTest, MemoizedEvaluationMatchesUnmemoized) {
  // The run memo only replays deterministic outcomes, so the whole search
  // trajectory -- not just the winner -- must be unchanged, with and
  // without a pool in the mix.
  for (bool WithAccuracy : {false, true}) {
    QuadraticProgram P(WithAccuracy);
    AutotunerOptions O;
    O.PopulationSize = 14;
    O.Generations = 10;
    O.Seed = 17;
    O.Memoize = false;
    TuneResult Plain = EvolutionaryAutotuner(O).tune(P, 0);
    O.Memoize = true;
    TuneResult Memo = EvolutionaryAutotuner(O).tune(P, 0);
    EXPECT_EQ(Plain.Best, Memo.Best);
    EXPECT_EQ(Plain.BestOutcome.TimeUnits, Memo.BestOutcome.TimeUnits);
    EXPECT_EQ(Plain.BestOutcome.Accuracy, Memo.BestOutcome.Accuracy);
    EXPECT_EQ(Plain.History, Memo.History);
    EXPECT_EQ(Plain.Evaluations, Memo.Evaluations)
        << "hits still count as search effort";

    support::ThreadPool Pool(3);
    O.Pool = &Pool;
    TuneResult Pooled = EvolutionaryAutotuner(O).tune(P, 0);
    EXPECT_EQ(Plain.Best, Pooled.Best);
    EXPECT_EQ(Plain.History, Pooled.History);
  }
}

} // namespace

//===- tests/fleet/SupervisorTest.cpp ----------------------------------------=//
//
// The fleet supervisor against real fork/exec'd pbt-serve replicas
// (located via PBT_SERVE_BIN): health-probe convergence, SIGKILL ->
// restart with a changed pid, crash-loop quarantine (exec failure and
// deliberate kill-looping), TCP port pinning across respawns, and a
// FailoverClient riding through a kill without a single lost request.
// Integration-labelled, so the whole file runs under the sanitizer CI
// matrix.
//
//===----------------------------------------------------------------------===//

#include "fleet/Supervisor.h"

#include "daemon/Client.h"
#include "registry/BenchmarkRegistry.h"
#include "serialize/ModelIO.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace pbt;
using namespace pbt::fleet;

#ifndef PBT_SERVE_BIN
#error "PBT_SERVE_BIN must point at the pbt-serve binary"
#endif

namespace {

constexpr double kScale = 0.1;

/// Trains the sort1 model once per process; replicas serve it from a
/// temp file.
const std::string &modelPath() {
  static const std::string Path = [] {
    const registry::BenchmarkFactory &F =
        registry::BenchmarkRegistry::instance().get("sort1");
    registry::ProgramPtr P = F.makeProgram(kScale, F.defaultProgramSeed());
    core::TrainedSystem Sys = core::trainSystem(*P, F.defaultOptions(kScale));
    serialize::TrainedModel M = serialize::makeModel(
        "sort1", kScale, F.defaultProgramSeed(), *P, std::move(Sys));
    std::string Out =
        "/tmp/pbt-ft-model-" + std::to_string(::getpid()) + ".pbt";
    EXPECT_TRUE(
        serialize::writeModelText(Out, serialize::serializeModel(M)).Ok);
    return Out;
  }();
  return Path;
}

std::string freshRuntimeDir() {
  static std::atomic<int> Counter{0};
  return "/tmp/pbt-ft-" + std::to_string(::getpid()) + "-" +
         std::to_string(Counter.fetch_add(1));
}

SupervisorOptions baseOptions(size_t Replicas) {
  SupervisorOptions O;
  O.ServerExe = PBT_SERVE_BIN;
  O.ServerArgs = {"--model=" + modelPath()};
  O.Replicas = Replicas;
  O.RuntimeDir = freshRuntimeDir();
  O.HealthIntervalSeconds = 0.05;
  O.BackoffSeconds = 0.02;
  O.BackoffCapSeconds = 0.2;
  return O;
}

double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

} // namespace

TEST(SupervisorTest, FleetComesUpHealthyAndServes) {
  Supervisor Sup(baseOptions(2));
  std::string Err;
  ASSERT_TRUE(Sup.start(Err)) << Err;
  ASSERT_TRUE(Sup.waitAllHealthy(60.0));
  EXPECT_EQ(Sup.healthyCount(), 2u);
  EXPECT_EQ(Sup.totalRestarts(), 0u);

  // Every replica endpoint answers the framed protocol.
  for (const std::string &Endpoint : Sup.endpoints()) {
    daemon::DaemonClient C;
    daemon::DaemonClient::AttachInfo Info;
    ASSERT_TRUE(C.connect(Endpoint, Err)) << Endpoint << ": " << Err;
    ASSERT_TRUE(C.attach("sort1", Info, Err)) << Err;
    std::vector<daemon::PredictedChoice> Choices;
    EXPECT_EQ(C.predict({0, 1, 2}, Choices, Err),
              daemon::DaemonClient::PredictOutcome::Ok)
        << Err;
  }
  Sup.stop();
}

TEST(SupervisorTest, SigkilledReplicaIsRestartedWithNewPid) {
  Supervisor Sup(baseOptions(2));
  std::string Err;
  ASSERT_TRUE(Sup.start(Err)) << Err;
  ASSERT_TRUE(Sup.waitAllHealthy(60.0));

  pid_t Old = Sup.pid(0);
  ASSERT_GT(Old, 0);
  ASSERT_TRUE(Sup.killReplica(0, SIGKILL));
  ASSERT_TRUE(Sup.waitAllHealthy(60.0)) << "victim never came back";
  EXPECT_NE(Sup.pid(0), Old);
  EXPECT_GE(Sup.totalRestarts(), 1u);
  EXPECT_EQ(Sup.quarantinedCount(), 0u);

  // The restarted replica serves again on its original endpoint.
  daemon::DaemonClient C;
  daemon::DaemonClient::AttachInfo Info;
  ASSERT_TRUE(C.connect(Sup.endpoints()[0], Err)) << Err;
  EXPECT_TRUE(C.attach("sort1", Info, Err)) << Err;
  Sup.stop();
}

TEST(SupervisorTest, ExecFailureCrashLoopIsQuarantined) {
  SupervisorOptions O = baseOptions(2);
  O.ServerExe = "/nonexistent/pbt-serve-missing"; // execv fails, _exit(127)
  O.QuarantineRestarts = 2;
  O.QuarantineWindowSeconds = 30.0;
  Supervisor Sup(O);
  std::string Err;
  ASSERT_TRUE(Sup.start(Err)) << Err;

  double Deadline = nowSeconds() + 60.0;
  while (nowSeconds() < Deadline && Sup.quarantinedCount() < 2)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(Sup.quarantinedCount(), 2u)
      << "crash-looping replicas were never quarantined";
  for (const ReplicaStatus &S : Sup.statuses()) {
    EXPECT_EQ(S.State, ReplicaState::Quarantined);
    EXPECT_GE(S.Restarts, 2u);
  }
  Sup.stop();
}

TEST(SupervisorTest, KillLoopedReplicaQuarantinesWhileSurvivorServes) {
  SupervisorOptions O = baseOptions(2);
  O.QuarantineRestarts = 3;
  O.QuarantineWindowSeconds = 30.0;
  Supervisor Sup(O);
  std::string Err;
  ASSERT_TRUE(Sup.start(Err)) << Err;
  ASSERT_TRUE(Sup.waitAllHealthy(60.0));

  // Crash-loop replica 0 by SIGKILLing it every time it comes back.
  double Deadline = nowSeconds() + 120.0;
  while (nowSeconds() < Deadline && Sup.quarantinedCount() == 0) {
    ReplicaStatus S = Sup.statuses()[0];
    if (S.Pid > 0 && (S.State == ReplicaState::Starting ||
                      S.State == ReplicaState::Healthy ||
                      S.State == ReplicaState::Degraded))
      Sup.killReplica(0, SIGKILL);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_EQ(Sup.quarantinedCount(), 1u);
  EXPECT_EQ(Sup.statuses()[0].State, ReplicaState::Quarantined);

  // The fleet keeps serving on the survivor.
  daemon::DaemonClient C;
  daemon::DaemonClient::AttachInfo Info;
  ASSERT_TRUE(C.connect(Sup.endpoints()[1], Err)) << Err;
  ASSERT_TRUE(C.attach("sort1", Info, Err)) << Err;
  std::vector<daemon::PredictedChoice> Choices;
  EXPECT_EQ(C.predict({0, 1}, Choices, Err),
            daemon::DaemonClient::PredictOutcome::Ok)
      << Err;
  EXPECT_EQ(Sup.healthyCount(), 1u);
  Sup.stop();
}

TEST(SupervisorTest, TcpEndpointIsPinnedAcrossRestart) {
  SupervisorOptions O = baseOptions(1);
  O.Tcp = true;
  Supervisor Sup(O);
  std::string Err;
  ASSERT_TRUE(Sup.start(Err)) << Err;
  ASSERT_TRUE(Sup.waitAllHealthy(60.0));

  std::string Endpoint = Sup.endpoints()[0];
  ASSERT_EQ(Endpoint.rfind("tcp:", 0), 0u) << Endpoint;

  ASSERT_TRUE(Sup.killReplica(0, SIGKILL));
  ASSERT_TRUE(Sup.waitAllHealthy(60.0));
  // The respawn bound the pinned port: the endpoint a client holds
  // stays valid across the restart.
  EXPECT_EQ(Sup.endpoints()[0], Endpoint);
  daemon::DaemonClient C;
  daemon::DaemonClient::AttachInfo Info;
  ASSERT_TRUE(C.connect(Endpoint, Err)) << Err;
  EXPECT_TRUE(C.attach("sort1", Info, Err)) << Err;
  Sup.stop();
}

TEST(SupervisorTest, FailoverClientRidesThroughAKill) {
  Supervisor Sup(baseOptions(2));
  std::string Err;
  ASSERT_TRUE(Sup.start(Err)) << Err;
  ASSERT_TRUE(Sup.waitAllHealthy(60.0));

  daemon::FailoverOptions FO;
  FO.Client.ConnectTimeout = 1.0;
  FO.Client.MaxConnectAttempts = 1;
  FO.CooldownSeconds = 0.1;
  FO.PassesPerCall = 3;
  std::vector<std::string> Endpoints = Sup.endpoints();
  daemon::FailoverClient C(Endpoints, "sort1", FO);

  std::vector<daemon::PredictedChoice> Choices;
  ASSERT_EQ(C.predict({0, 1, 2}, Choices, Err),
            daemon::DaemonClient::PredictOutcome::Ok)
      << Err;

  // Kill the replica that just answered; the next predicts must fail
  // over to the survivor, never surfacing an error.
  size_t Victim = C.lastEndpoint() == Endpoints[0] ? 0 : 1;
  ASSERT_TRUE(Sup.killReplica(Victim, SIGKILL));
  unsigned Failovers = 0;
  for (int I = 0; I < 50; ++I) {
    ASSERT_EQ(C.predict({0, 1, 2}, Choices, Err),
              daemon::DaemonClient::PredictOutcome::Ok)
        << "request lost during failover: " << Err;
    Failovers += C.lastFailovers();
  }
  EXPECT_GE(Failovers, 1u) << "the kill was never even noticed";
  EXPECT_EQ(C.stats().Exhausted, 0u);
  EXPECT_EQ(C.lastEndpoint(), Endpoints[1 - Victim]);

  ASSERT_TRUE(Sup.waitAllHealthy(60.0));
  C.close();
  Sup.stop();
}

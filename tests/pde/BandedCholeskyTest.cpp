//===- tests/pde/BandedCholeskyTest.cpp --------------------------------------=//

#include "pde/BandedCholesky.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace pbt;
using namespace pbt::pde;

namespace {

TEST(BandedCholeskyTest, SolvesTridiagonalSystem) {
  // Classic 1D Laplacian: tridiag(-1, 2, -1), N = 5.
  BandedCholesky A(5, 1);
  for (size_t I = 0; I != 5; ++I) {
    A.entry(I, I) = 2.0;
    if (I > 0)
      A.entry(I, I - 1) = -1.0;
  }
  ASSERT_TRUE(A.factor());
  // Right-hand side = A * [1 2 3 4 5]^T.
  std::vector<double> X{1, 2, 3, 4, 5};
  std::vector<double> B(5);
  for (size_t I = 0; I != 5; ++I) {
    B[I] = 2 * X[I];
    if (I > 0)
      B[I] -= X[I - 1];
    if (I < 4)
      B[I] -= X[I + 1];
  }
  std::vector<double> Got = A.solve(B);
  for (size_t I = 0; I != 5; ++I)
    EXPECT_NEAR(Got[I], X[I], 1e-12);
}

TEST(BandedCholeskyTest, DetectsNonPositiveDefinite) {
  BandedCholesky A(2, 1);
  A.entry(0, 0) = 1.0;
  A.entry(1, 0) = 5.0; // off-diagonal dominates
  A.entry(1, 1) = 1.0;
  EXPECT_FALSE(A.factor());
}

TEST(BandedCholeskyTest, IdentitySolveReturnsRHS) {
  BandedCholesky A(4, 0);
  for (size_t I = 0; I != 4; ++I)
    A.entry(I, I) = 1.0;
  ASSERT_TRUE(A.factor());
  std::vector<double> B{3, -1, 2, 7};
  std::vector<double> X = A.solve(B);
  for (size_t I = 0; I != 4; ++I)
    EXPECT_NEAR(X[I], B[I], 1e-15);
}

TEST(BandedCholeskyTest, WideBandDenseCase) {
  // Full bandwidth == dense SPD matrix M^T M + I.
  support::Rng Rng(1);
  size_t N = 6;
  std::vector<std::vector<double>> M(N, std::vector<double>(N));
  for (auto &Row : M)
    for (double &V : Row)
      V = Rng.gaussian();
  // Dense SPD G = M^T M + I.
  BandedCholesky A(N, N - 1);
  for (size_t I = 0; I != N; ++I)
    for (size_t J = 0; J <= I; ++J) {
      double Sum = I == J ? 1.0 : 0.0;
      for (size_t K = 0; K != N; ++K)
        Sum += M[K][I] * M[K][J];
      A.entry(I, J) = Sum;
    }
  // Keep a copy of the matrix before factoring destroys it.
  std::vector<std::vector<double>> G(N, std::vector<double>(N, 0.0));
  for (size_t I = 0; I != N; ++I)
    for (size_t J = 0; J <= I; ++J)
      G[I][J] = G[J][I] = A.entry(I, J);
  ASSERT_TRUE(A.factor());
  std::vector<double> X{1, -2, 3, -4, 5, -6};
  std::vector<double> B(N, 0.0);
  for (size_t I = 0; I != N; ++I)
    for (size_t J = 0; J != N; ++J)
      B[I] += G[I][J] * X[J];
  std::vector<double> Got = A.solve(B);
  for (size_t I = 0; I != N; ++I)
    EXPECT_NEAR(Got[I], X[I], 1e-9);
}

TEST(BandedCholeskyTest, ChargesFlops) {
  BandedCholesky A(10, 2);
  for (size_t I = 0; I != 10; ++I) {
    A.entry(I, I) = 4.0;
    if (I > 0)
      A.entry(I, I - 1) = -1.0;
    if (I > 1)
      A.entry(I, I - 2) = -0.5;
  }
  support::CostCounter C;
  ASSERT_TRUE(A.factor(&C));
  A.solve(std::vector<double>(10, 1.0), &C);
  EXPECT_GT(C.flops(), 0.0);
}

} // namespace

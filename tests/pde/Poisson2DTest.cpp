//===- tests/pde/Poisson2DTest.cpp -------------------------------------------=//

#include "pde/Poisson2D.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace pbt;
using namespace pbt::pde;

namespace {

/// RHS for the manufactured solution u = sin(pi x) sin(pi y):
/// -laplace u = 2 pi^2 sin(pi x) sin(pi y).
Grid2D manufacturedRHS(size_t N) {
  Grid2D F(N);
  for (size_t I = 1; I + 1 < N; ++I)
    for (size_t J = 1; J + 1 < N; ++J) {
      double X = static_cast<double>(I) / static_cast<double>(N - 1);
      double Y = static_cast<double>(J) / static_cast<double>(N - 1);
      F.at(I, J) = 2.0 * M_PI * M_PI * std::sin(M_PI * X) * std::sin(M_PI * Y);
    }
  return F;
}

Grid2D manufacturedSolution(size_t N) {
  Grid2D U(N);
  for (size_t I = 1; I + 1 < N; ++I)
    for (size_t J = 1; J + 1 < N; ++J) {
      double X = static_cast<double>(I) / static_cast<double>(N - 1);
      double Y = static_cast<double>(J) / static_cast<double>(N - 1);
      U.at(I, J) = std::sin(M_PI * X) * std::sin(M_PI * Y);
    }
  return U;
}

TEST(Poisson2DTest, DirectSolveMatchesManufacturedSolution) {
  size_t N = 33;
  Grid2D U = directSolve(manufacturedRHS(N));
  // Discretisation error is O(h^2) ~ 1e-3 at h = 1/32.
  EXPECT_LT(U.rmsDistance(manufacturedSolution(N)), 2e-3);
}

TEST(Poisson2DTest, DirectSolveZeroResidual) {
  size_t N = 17;
  Grid2D F = manufacturedRHS(N);
  Grid2D U = directSolve(F);
  EXPECT_NEAR(poissonResidualNorm(U, F), 0.0, 1e-9);
}

TEST(Poisson2DTest, MultigridConvergesToDirectSolution) {
  size_t N = 33;
  Grid2D F = manufacturedRHS(N);
  Grid2D Direct = directSolve(F);
  MultigridOptions O;
  O.Cycles = 10;
  O.Smoother = SmootherKind::GaussSeidel;
  Grid2D MG = multigridSolve(F, O);
  EXPECT_LT(MG.rmsDistance(Direct), 1e-8 * (1.0 + Direct.rms()));
}

TEST(Poisson2DTest, MultigridResidualDropsPerCycle) {
  size_t N = 33;
  Grid2D F = manufacturedRHS(N);
  double Prev = F.rms();
  for (unsigned Cycles : {1u, 2u, 4u}) {
    MultigridOptions O;
    O.Cycles = Cycles;
    Grid2D U = multigridSolve(F, O);
    double R = poissonResidualNorm(U, F);
    EXPECT_LT(R, Prev);
    Prev = R;
  }
}

TEST(Poisson2DTest, WCycleAtLeastAsAccurateAsVCycle) {
  size_t N = 33;
  Grid2D F = manufacturedRHS(N);
  MultigridOptions V, W;
  V.Cycles = W.Cycles = 3;
  V.Mu = 1;
  W.Mu = 2;
  double RV = poissonResidualNorm(multigridSolve(F, V), F);
  double RW = poissonResidualNorm(multigridSolve(F, W), F);
  EXPECT_LE(RW, RV * 1.5);
}

TEST(Poisson2DTest, CGMatchesDirect) {
  size_t N = 17;
  Grid2D F = manufacturedRHS(N);
  Grid2D Direct = directSolve(F);
  CGOptions O;
  O.MaxIterations = 500;
  Grid2D CG = cgSolve(F, O);
  EXPECT_LT(CG.rmsDistance(Direct), 1e-9 * (1.0 + Direct.rms()));
}

TEST(Poisson2DTest, SORBeatsJacobiPerSweep) {
  size_t N = 33;
  Grid2D F = manufacturedRHS(N);
  StationaryOptions O;
  O.Iterations = 100;
  O.Omega = 1.8;
  Grid2D SOR = stationarySolve(F, SolverKind::SOR, O);
  Grid2D Jac = stationarySolve(F, SolverKind::Jacobi, O);
  EXPECT_LT(poissonResidualNorm(SOR, F), poissonResidualNorm(Jac, F));
}

TEST(Poisson2DTest, SmootherReducesResidual) {
  size_t N = 17;
  Grid2D F = manufacturedRHS(N);
  Grid2D U(N);
  double R0 = poissonResidualNorm(U, F);
  smoothSOR(U, F, 1.0, 5);
  EXPECT_LT(poissonResidualNorm(U, F), R0);
}

TEST(Poisson2DTest, RestrictionProducesCoarserGrid) {
  Grid2D Fine(17, 0.0);
  Fine.at(8, 8) = 1.0;
  Grid2D Coarse = restrictFullWeighting(Fine);
  EXPECT_EQ(Coarse.size(), 9u);
  EXPECT_GT(Coarse.at(4, 4), 0.0);
}

TEST(Poisson2DTest, ProlongationOfZeroBoundaryStaysZeroOnBoundary) {
  Grid2D Coarse(9, 0.0);
  for (size_t I = 1; I + 1 < 9; ++I)
    for (size_t J = 1; J + 1 < 9; ++J)
      Coarse.at(I, J) = 1.0;
  Grid2D Fine(17, 0.0);
  prolongAddBilinear(Coarse, Fine);
  for (size_t I = 0; I != 17; ++I) {
    EXPECT_DOUBLE_EQ(Fine.at(I, 0), 0.0);
    EXPECT_DOUBLE_EQ(Fine.at(0, I), 0.0);
    EXPECT_DOUBLE_EQ(Fine.at(I, 16), 0.0);
    EXPECT_DOUBLE_EQ(Fine.at(16, I), 0.0);
  }
  EXPECT_GT(Fine.at(8, 8), 0.0);
}

TEST(Poisson2DTest, ReferenceSolutionReaches7Digits) {
  size_t N = 33;
  Grid2D F = manufacturedRHS(N);
  Grid2D Ref = referenceSolution(F);
  Grid2D Direct = directSolve(F);
  double Err = Ref.rmsDistance(Direct);
  EXPECT_LT(Err, 1e-9 * (1.0 + Direct.rms()));
}

TEST(Poisson2DTest, SolversChargeCost) {
  size_t N = 17;
  Grid2D F = manufacturedRHS(N);
  support::CostCounter CMG, CDirect, CCG;
  MultigridOptions O;
  O.Cycles = 2;
  multigridSolve(F, O, &CMG);
  directSolve(F, &CDirect);
  cgSolve(F, {}, &CCG);
  EXPECT_GT(CMG.units(), 0.0);
  EXPECT_GT(CDirect.units(), 0.0);
  EXPECT_GT(CCG.units(), 0.0);
}

TEST(Poisson2DTest, ApplyOperatorOfZeroIsZero) {
  Grid2D U(17, 0.0), Out(17);
  poissonApply(U, Out);
  EXPECT_DOUBLE_EQ(Out.rms(), 0.0);
}

} // namespace

//===- tests/pde/Helmholtz3DTest.cpp -----------------------------------------=//

#include "pde/Helmholtz3D.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace pbt;
using namespace pbt::pde;

namespace {

/// Constant-coefficient problem with a smooth RHS.
HelmholtzProblem smoothProblem(size_t N, double Alpha = 1.0) {
  HelmholtzProblem P;
  P.F = Grid3D(N);
  P.Beta = Grid3D(N, 1.0);
  P.Alpha = Alpha;
  for (size_t I = 1; I + 1 < N; ++I)
    for (size_t J = 1; J + 1 < N; ++J)
      for (size_t K = 1; K + 1 < N; ++K) {
        double X = static_cast<double>(I) / static_cast<double>(N - 1);
        double Y = static_cast<double>(J) / static_cast<double>(N - 1);
        double Z = static_cast<double>(K) / static_cast<double>(N - 1);
        P.F.at(I, J, K) = std::sin(M_PI * X) * std::sin(M_PI * Y) *
                          std::sin(M_PI * Z);
      }
  return P;
}

/// Variable-coefficient problem (layered jump).
HelmholtzProblem layeredProblem(size_t N) {
  HelmholtzProblem P = smoothProblem(N, 2.0);
  for (size_t I = 0; I != N; ++I)
    for (size_t J = 0; J != N; ++J)
      for (size_t K = 0; K != N; ++K)
        P.Beta.at(I, J, K) = I < N / 2 ? 1.0 : 10.0;
  return P;
}

TEST(Helmholtz3DTest, DirectSolveZeroResidual) {
  HelmholtzProblem P = smoothProblem(9);
  Grid3D U = helmholtzDirectSolve(P);
  EXPECT_NEAR(helmholtzResidualNorm(P, U), 0.0, 1e-10);
}

TEST(Helmholtz3DTest, DirectSolveVariableCoefficients) {
  HelmholtzProblem P = layeredProblem(9);
  Grid3D U = helmholtzDirectSolve(P);
  EXPECT_NEAR(helmholtzResidualNorm(P, U), 0.0, 1e-10);
}

TEST(Helmholtz3DTest, KnownConstantCoefficientSolution) {
  // With beta = 1, alpha = a, u = sin sin sin is an eigenfunction:
  // (a + 3 pi^2) u = f => u = f / (a + 3 pi^2) up to discretisation.
  size_t N = 17;
  HelmholtzProblem P = smoothProblem(N, 2.0);
  Grid3D U = helmholtzDirectSolve(P);
  // Discrete eigenvalue of the 7-point Laplacian for mode (1,1,1).
  double H = P.F.h();
  double Lambda = P.Alpha +
                  3.0 * (2.0 - 2.0 * std::cos(M_PI * H)) / (H * H);
  for (size_t I : {size_t(4), size_t(8), size_t(12)})
    EXPECT_NEAR(U.at(I, 8, 8), P.F.at(I, 8, 8) / Lambda, 1e-8);
}

TEST(Helmholtz3DTest, MultigridMatchesDirect) {
  HelmholtzProblem P = layeredProblem(9);
  Grid3D Direct = helmholtzDirectSolve(P);
  MultigridOptions O;
  O.Cycles = 12;
  O.Smoother = SmootherKind::GaussSeidel;
  Grid3D MG = helmholtzMultigridSolve(P, O);
  EXPECT_LT(MG.rmsDistance(Direct), 1e-7 * (1.0 + Direct.rms()));
}

TEST(Helmholtz3DTest, CGMatchesDirect) {
  HelmholtzProblem P = layeredProblem(9);
  Grid3D Direct = helmholtzDirectSolve(P);
  CGOptions O;
  O.MaxIterations = 800;
  Grid3D CG = helmholtzCGSolve(P, O);
  EXPECT_LT(CG.rmsDistance(Direct), 1e-8 * (1.0 + Direct.rms()));
}

TEST(Helmholtz3DTest, OperatorIsSymmetric) {
  HelmholtzProblem P = layeredProblem(9);
  support::Rng Rng(3);
  size_t N = 9;
  Grid3D U(N), V(N);
  for (size_t I = 1; I + 1 < N; ++I)
    for (size_t J = 1; J + 1 < N; ++J)
      for (size_t K = 1; K + 1 < N; ++K) {
        U.at(I, J, K) = Rng.gaussian();
        V.at(I, J, K) = Rng.gaussian();
      }
  Grid3D AU(N), AV(N);
  helmholtzApply(P, U, AU);
  helmholtzApply(P, V, AV);
  double UtAV = 0.0, VtAU = 0.0;
  for (size_t I = 0; I != U.data().size(); ++I) {
    UtAV += U.data()[I] * AV.data()[I];
    VtAU += V.data()[I] * AU.data()[I];
  }
  EXPECT_NEAR(UtAV, VtAU, 1e-8 * (std::abs(UtAV) + 1.0));
}

TEST(Helmholtz3DTest, SmootherReducesResidual) {
  HelmholtzProblem P = smoothProblem(9);
  Grid3D U(9);
  double R0 = helmholtzResidualNorm(P, U);
  helmholtzSmoothSOR(P, U, 1.0, 5);
  EXPECT_LT(helmholtzResidualNorm(P, U), R0);
}

TEST(Helmholtz3DTest, JacobiSmootherReducesResidual) {
  HelmholtzProblem P = smoothProblem(9);
  Grid3D U(9);
  double R0 = helmholtzResidualNorm(P, U);
  helmholtzSmoothJacobi(P, U, 0.8, 10);
  EXPECT_LT(helmholtzResidualNorm(P, U), R0);
}

TEST(Helmholtz3DTest, RestrictionAndInjectionShapes) {
  Grid3D Fine(17, 1.0);
  Grid3D R = restrictFullWeighting3D(Fine);
  Grid3D I = injectCoarse3D(Fine);
  EXPECT_EQ(R.size(), 9u);
  EXPECT_EQ(I.size(), 9u);
  // Interior of a constant grid restricts to the same constant.
  EXPECT_NEAR(R.at(4, 4, 4), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(I.at(4, 4, 4), 1.0);
}

TEST(Helmholtz3DTest, ProlongationKeepsBoundaryZero) {
  Grid3D Coarse(5, 0.0);
  for (size_t I = 1; I + 1 < 5; ++I)
    for (size_t J = 1; J + 1 < 5; ++J)
      for (size_t K = 1; K + 1 < 5; ++K)
        Coarse.at(I, J, K) = 1.0;
  Grid3D Fine(9, 0.0);
  prolongAddTrilinear(Coarse, Fine);
  for (size_t I = 0; I != 9; ++I)
    for (size_t J = 0; J != 9; ++J) {
      EXPECT_DOUBLE_EQ(Fine.at(I, J, 0), 0.0);
      EXPECT_DOUBLE_EQ(Fine.at(0, I, J), 0.0);
      EXPECT_DOUBLE_EQ(Fine.at(I, 0, J), 0.0);
    }
  EXPECT_GT(Fine.at(4, 4, 4), 0.0);
}

TEST(Helmholtz3DTest, ReferenceSolutionNearDirect) {
  HelmholtzProblem P = layeredProblem(9);
  Grid3D Ref = helmholtzReferenceSolution(P);
  Grid3D Direct = helmholtzDirectSolve(P);
  EXPECT_LT(Ref.rmsDistance(Direct), 1e-9 * (1.0 + Direct.rms()));
}

} // namespace

//===- tests/support/RandomTest.cpp ------------------------------------------=//

#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using pbt::support::Rng;

namespace {

TEST(RandomTest, SameSeedSameStream) {
  Rng A(123), B(123);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  bool AnyDiff = false;
  for (int I = 0; I != 16 && !AnyDiff; ++I)
    AnyDiff = A.next() != B.next();
  EXPECT_TRUE(AnyDiff);
}

TEST(RandomTest, ZeroSeedIsUsable) {
  Rng R(0);
  std::set<uint64_t> Values;
  for (int I = 0; I != 32; ++I)
    Values.insert(R.next());
  EXPECT_GT(Values.size(), 30u) << "degenerate state from zero seed";
}

TEST(RandomTest, UniformInHalfOpenUnitInterval) {
  Rng R(7);
  for (int I = 0; I != 10000; ++I) {
    double U = R.uniform();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}

TEST(RandomTest, UniformRangeRespectsBounds) {
  Rng R(8);
  for (int I = 0; I != 1000; ++I) {
    double U = R.uniform(-5.0, 11.0);
    EXPECT_GE(U, -5.0);
    EXPECT_LT(U, 11.0);
  }
}

TEST(RandomTest, IntegerRangeInclusiveAndCovering) {
  Rng R(9);
  std::set<int64_t> Seen;
  for (int I = 0; I != 2000; ++I) {
    int64_t V = R.range(-2, 3);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 3);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 6u) << "all values of a small range must appear";
}

TEST(RandomTest, IndexStaysBelowBound) {
  Rng R(10);
  for (int I = 0; I != 1000; ++I)
    EXPECT_LT(R.index(17), 17u);
}

TEST(RandomTest, GaussianMomentsApproximatelyCorrect) {
  Rng R(11);
  double Sum = 0.0, SumSq = 0.0;
  const int N = 200000;
  for (int I = 0; I != N; ++I) {
    double G = R.gaussian(2.0, 3.0);
    Sum += G;
    SumSq += G * G;
  }
  double Mean = Sum / N;
  double Var = SumSq / N - Mean * Mean;
  EXPECT_NEAR(Mean, 2.0, 0.05);
  EXPECT_NEAR(Var, 9.0, 0.2);
}

TEST(RandomTest, ExponentialIsPositiveWithRoughlyRightMean) {
  Rng R(12);
  double Sum = 0.0;
  const int N = 100000;
  for (int I = 0; I != N; ++I) {
    double E = R.exponential(4.0);
    EXPECT_GT(E, 0.0);
    Sum += E;
  }
  EXPECT_NEAR(Sum / N, 0.25, 0.01);
}

TEST(RandomTest, ChanceEdgeCases) {
  Rng R(13);
  for (int I = 0; I != 100; ++I) {
    EXPECT_FALSE(R.chance(0.0));
    EXPECT_TRUE(R.chance(1.0));
  }
}

TEST(RandomTest, ShuffleIsAPermutation) {
  Rng R(14);
  std::vector<int> V{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> Orig = V;
  R.shuffle(V);
  std::sort(V.begin(), V.end());
  EXPECT_EQ(V, Orig);
}

TEST(RandomTest, SampleWithoutReplacementDistinct) {
  Rng R(15);
  std::vector<size_t> S = R.sampleWithoutReplacement(50, 20);
  EXPECT_EQ(S.size(), 20u);
  std::set<size_t> Set(S.begin(), S.end());
  EXPECT_EQ(Set.size(), 20u);
  for (size_t X : S)
    EXPECT_LT(X, 50u);
}

TEST(RandomTest, SampleWithoutReplacementFullSet) {
  Rng R(16);
  std::vector<size_t> S = R.sampleWithoutReplacement(8, 8);
  std::sort(S.begin(), S.end());
  for (size_t I = 0; I != 8; ++I)
    EXPECT_EQ(S[I], I);
}

TEST(RandomTest, SplitProducesIndependentDeterministicStream) {
  Rng A(42), B(42);
  Rng SA = A.split(), SB = B.split();
  for (int I = 0; I != 32; ++I)
    EXPECT_EQ(SA.next(), SB.next());
}

} // namespace

//===- tests/support/TableTest.cpp -------------------------------------------=//

#include "support/Table.h"

#include <gtest/gtest.h>

using namespace pbt::support;

namespace {

TEST(TableTest, FormatContainsAllCells) {
  TextTable T;
  T.setHeader({"name", "value"});
  T.addRow({"alpha", "1"});
  T.addRow({"beta", "22"});
  std::string S = T.format();
  EXPECT_NE(S.find("name"), std::string::npos);
  EXPECT_NE(S.find("alpha"), std::string::npos);
  EXPECT_NE(S.find("22"), std::string::npos);
}

TEST(TableTest, ColumnsAreAligned) {
  TextTable T;
  T.setHeader({"a", "b"});
  T.addRow({"xxxx", "1"});
  T.addRow({"y", "2"});
  std::string S = T.format();
  // Both data rows should place column b at the same offset.
  size_t R1 = S.find("xxxx");
  size_t R2 = S.find("y", R1);
  size_t C1 = S.find('1', R1) - R1;
  size_t C2 = S.find('2', R2) - R2;
  EXPECT_EQ(C1, C2);
}

TEST(TableTest, FormatDoubleRespectsPrecision) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatDouble(2.0, 0), "2");
}

TEST(TableTest, FormatSpeedupMatchesPaperStyle) {
  EXPECT_EQ(formatSpeedup(2.95), "2.95x");
  EXPECT_EQ(formatSpeedup(0.095), "0.095x");
  EXPECT_EQ(formatSpeedup(0.22), "0.22x");
}

TEST(TableTest, FormatPercent) { EXPECT_EQ(formatPercent(0.5456), "54.56%"); }

TEST(TableTest, CsvEscapesSpecialCharacters) {
  CsvWriter W;
  W.setHeader({"a", "b"});
  W.addRow({"x,y", "quote\"inside"});
  std::string S = W.str();
  EXPECT_NE(S.find("\"x,y\""), std::string::npos);
  EXPECT_NE(S.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(TableTest, CsvRoundTripLineCount) {
  CsvWriter W;
  W.setHeader({"h"});
  W.addRow({"1"});
  W.addRow({"2"});
  std::string S = W.str();
  EXPECT_EQ(std::count(S.begin(), S.end(), '\n'), 3);
}

} // namespace

//===- tests/support/FaultInjectTest.cpp -------------------------------------=//
//
// The failpoint registry in isolation: arm/fire/one-shot semantics, hit
// indexing, spec parsing, and the crash-class throw path. The registry
// is process-global, so every test resets it on entry and exit.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInject.h"

#include <gtest/gtest.h>

using namespace pbt;
using support::FaultInjector;
using support::FaultPoint;

namespace {

class FaultInjectTest : public ::testing::Test {
protected:
  void SetUp() override { FaultInjector::instance().reset(); }
  void TearDown() override { FaultInjector::instance().reset(); }
};

TEST_F(FaultInjectTest, DisarmedPointsNeverFire) {
  FaultInjector &Inj = FaultInjector::instance();
  for (int I = 0; I != 100; ++I)
    EXPECT_FALSE(Inj.fire(FaultPoint::TornWrite));
  EXPECT_EQ(Inj.hits(FaultPoint::TornWrite), 100u);
  EXPECT_EQ(Inj.triggered(FaultPoint::TornWrite), 0u);
  EXPECT_FALSE(Inj.anyArmed());
}

TEST_F(FaultInjectTest, ArmedPointFiresOnceOnNextHit) {
  FaultInjector &Inj = FaultInjector::instance();
  Inj.arm(FaultPoint::FsyncFail);
  EXPECT_TRUE(Inj.anyArmed());
  EXPECT_TRUE(Inj.fire(FaultPoint::FsyncFail));
  // One-shot: the trigger disarmed it.
  EXPECT_FALSE(Inj.anyArmed());
  EXPECT_FALSE(Inj.fire(FaultPoint::FsyncFail));
  EXPECT_EQ(Inj.triggered(FaultPoint::FsyncFail), 1u);
}

TEST_F(FaultInjectTest, HitIndexSkipsEarlierHits) {
  FaultInjector &Inj = FaultInjector::instance();
  Inj.arm(FaultPoint::TornWrite, 2); // the third future hit
  EXPECT_FALSE(Inj.fire(FaultPoint::TornWrite));
  EXPECT_FALSE(Inj.fire(FaultPoint::TornWrite));
  EXPECT_TRUE(Inj.fire(FaultPoint::TornWrite));
  EXPECT_FALSE(Inj.fire(FaultPoint::TornWrite));
}

TEST_F(FaultInjectTest, ArmIsRelativeToPastHits) {
  FaultInjector &Inj = FaultInjector::instance();
  // Burn some hits unarmed, then arm for "the next one".
  for (int I = 0; I != 5; ++I)
    EXPECT_FALSE(Inj.fire(FaultPoint::CrashBeforeRename));
  Inj.arm(FaultPoint::CrashBeforeRename, 0);
  EXPECT_TRUE(Inj.fire(FaultPoint::CrashBeforeRename));
}

TEST_F(FaultInjectTest, DisarmCancelsAPendingTrigger) {
  FaultInjector &Inj = FaultInjector::instance();
  Inj.arm(FaultPoint::CorruptChecksum);
  Inj.disarm(FaultPoint::CorruptChecksum);
  EXPECT_FALSE(Inj.fire(FaultPoint::CorruptChecksum));
  EXPECT_EQ(Inj.triggered(FaultPoint::CorruptChecksum), 0u);
}

TEST_F(FaultInjectTest, FireOrCrashThrowsFaultCrashCarryingThePoint) {
  FaultInjector &Inj = FaultInjector::instance();
  Inj.arm(FaultPoint::CrashBeforeManifest);
  try {
    Inj.fireOrCrash(FaultPoint::CrashBeforeManifest);
    FAIL() << "expected FaultCrash";
  } catch (const support::FaultCrash &C) {
    EXPECT_EQ(C.point(), FaultPoint::CrashBeforeManifest);
    EXPECT_NE(std::string(C.what()).find("crash-before-manifest"),
              std::string::npos);
  }
}

TEST_F(FaultInjectTest, NamesRoundTripThroughTheCatalog) {
  for (unsigned I = 0; I != support::kNumFaultPoints; ++I) {
    const char *Name = support::faultPointName(static_cast<FaultPoint>(I));
    ASSERT_NE(Name, nullptr);
    EXPECT_STRNE(Name, "unknown");
  }
}

TEST_F(FaultInjectTest, SpecParsingArmsNamedPoints) {
  FaultInjector &Inj = FaultInjector::instance();
  std::string Err;
  ASSERT_TRUE(Inj.armFromSpec("torn-write@1,fsync-slow", Err)) << Err;
  EXPECT_FALSE(Inj.fire(FaultPoint::TornWrite)); // hit 0: armed for hit 1
  EXPECT_TRUE(Inj.fire(FaultPoint::TornWrite));
  EXPECT_TRUE(Inj.fire(FaultPoint::FsyncSlow)); // no @: hit 0
}

TEST_F(FaultInjectTest, MalformedSpecsArmNothing) {
  FaultInjector &Inj = FaultInjector::instance();
  std::string Err;
  EXPECT_FALSE(Inj.armFromSpec("no-such-point@0", Err));
  EXPECT_FALSE(Err.empty());
  EXPECT_FALSE(Inj.armFromSpec("torn-write@", Err));
  EXPECT_FALSE(Inj.armFromSpec("torn-write@abc", Err));
  // The bad entries must not have armed the valid-looking prefix.
  EXPECT_FALSE(Inj.anyArmed());
}

} // namespace

//===- tests/support/StatisticsTest.cpp --------------------------------------=//

#include "support/Statistics.h"

#include <gtest/gtest.h>

using namespace pbt::support;

namespace {

TEST(StatisticsTest, MeanKnownValues) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0, 4.0}), 2.5);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({-3.0, 3.0}), 0.0);
}

TEST(StatisticsTest, VarianceAndStdDev) {
  // Population variance of {2,4,4,4,5,5,7,9} is 4.
  std::vector<double> V{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(variance(V), 4.0);
  EXPECT_DOUBLE_EQ(stddev(V), 2.0);
  EXPECT_DOUBLE_EQ(variance({5.0}), 0.0);
}

TEST(StatisticsTest, GeomeanKnownValues) {
  EXPECT_DOUBLE_EQ(geomean({1.0, 4.0}), 2.0);
  EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(StatisticsTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({7.0}), 7.0);
}

TEST(StatisticsTest, QuantileInterpolates) {
  std::vector<double> V{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(V, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(V, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(V, 1.0), 10.0);
}

TEST(StatisticsTest, MinMax) {
  std::vector<double> V{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(minOf(V), -1.0);
  EXPECT_DOUBLE_EQ(maxOf(V), 7.0);
}

TEST(StatisticsTest, SummaryOfSample) {
  Summary S = Summary::of({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(S.Count, 5u);
  EXPECT_DOUBLE_EQ(S.Mean, 3.0);
  EXPECT_DOUBLE_EQ(S.Median, 3.0);
  EXPECT_DOUBLE_EQ(S.Min, 1.0);
  EXPECT_DOUBLE_EQ(S.Max, 5.0);
  EXPECT_DOUBLE_EQ(S.Q1, 2.0);
  EXPECT_DOUBLE_EQ(S.Q3, 4.0);
}

TEST(StatisticsTest, SummaryOfEmpty) {
  Summary S = Summary::of({});
  EXPECT_EQ(S.Count, 0u);
  EXPECT_DOUBLE_EQ(S.Mean, 0.0);
}

} // namespace

//===- tests/support/ParseNumberTest.cpp -------------------------------------=//
//
// The checked CLI number parsing every pbt binary routes its flags
// through (bench/PbtBench.cpp, tools/PbtServe.cpp). The predecessor was
// bare std::atoi/strtoull, which silently turned "--threads=abc" into 0
// and "--queue=-3" into 2^64-3; these tests pin the strict behavior:
// full-string consumption, range enforcement, sign rejection for
// unsigned, finiteness for double, and out-param untouched on failure.
//
//===----------------------------------------------------------------------===//

#include "support/ParseNumber.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

using namespace pbt::support;

TEST(ParseNumberTest, Int64Valid) {
  int64_t V = -1;
  EXPECT_TRUE(parseInt64("0", V, -100, 100));
  EXPECT_EQ(V, 0);
  EXPECT_TRUE(parseInt64("-42", V, -100, 100));
  EXPECT_EQ(V, -42);
  EXPECT_TRUE(parseInt64("+17", V, -100, 100));
  EXPECT_EQ(V, 17);
}

TEST(ParseNumberTest, Int64RejectsGarbageAndRange) {
  int64_t V = 123;
  EXPECT_FALSE(parseInt64("", V, -100, 100));
  EXPECT_FALSE(parseInt64("abc", V, -100, 100));
  EXPECT_FALSE(parseInt64("12abc", V, -100, 100));  // trailing garbage
  EXPECT_FALSE(parseInt64("1 2", V, -100, 100));
  EXPECT_FALSE(parseInt64("101", V, -100, 100));    // above Max
  EXPECT_FALSE(parseInt64("-101", V, -100, 100));   // below Min
  EXPECT_FALSE(parseInt64("99999999999999999999999999", V,
                          std::numeric_limits<int64_t>::min(),
                          std::numeric_limits<int64_t>::max())); // ERANGE
  EXPECT_EQ(V, 123) << "out-param must be untouched on failure";
}

TEST(ParseNumberTest, Uint64RejectsNegativeOutright) {
  // strtoull accepts "-3" and wraps it to 2^64-3; the helper must not.
  uint64_t V = 7;
  EXPECT_FALSE(parseUint64("-3", V, std::numeric_limits<uint64_t>::max()));
  EXPECT_FALSE(parseUint64("-0", V, std::numeric_limits<uint64_t>::max()));
  EXPECT_EQ(V, 7u);
  EXPECT_TRUE(parseUint64("+3", V, 100));
  EXPECT_EQ(V, 3u);
}

TEST(ParseNumberTest, Uint64RangeAndGarbage) {
  uint64_t V = 7;
  EXPECT_FALSE(parseUint64("", V, 100));
  EXPECT_FALSE(parseUint64("0x10", V, 100)); // base 10 only
  EXPECT_FALSE(parseUint64("101", V, 100));
  EXPECT_FALSE(parseUint64("18446744073709551616", V,
                           std::numeric_limits<uint64_t>::max())); // 2^64
  EXPECT_EQ(V, 7u);
  EXPECT_TRUE(parseUint64("18446744073709551615", V,
                          std::numeric_limits<uint64_t>::max()));
  EXPECT_EQ(V, std::numeric_limits<uint64_t>::max());
}

TEST(ParseNumberTest, UnsignedClampsThroughMax) {
  unsigned V = 9;
  EXPECT_TRUE(parseUnsigned("64", V, 1024));
  EXPECT_EQ(V, 64u);
  EXPECT_FALSE(parseUnsigned("1025", V, 1024));
  EXPECT_FALSE(parseUnsigned("4294967296", V, 4294967295u)); // > UINT_MAX
  EXPECT_FALSE(parseUnsigned("banana", V, 1024));
  EXPECT_EQ(V, 64u);
}

TEST(ParseNumberTest, DoubleValid) {
  double V = -1;
  EXPECT_TRUE(parseDouble("0.5", V));
  EXPECT_DOUBLE_EQ(V, 0.5);
  EXPECT_TRUE(parseDouble("-2e3", V));
  EXPECT_DOUBLE_EQ(V, -2000.0);
  EXPECT_TRUE(parseDouble("120", V));
  EXPECT_DOUBLE_EQ(V, 120.0);
}

TEST(ParseNumberTest, DoubleRejectsGarbageInfNan) {
  double V = 0.25;
  EXPECT_FALSE(parseDouble("", V));
  EXPECT_FALSE(parseDouble("1.5banana", V));
  EXPECT_FALSE(parseDouble("banana", V));
  EXPECT_FALSE(parseDouble("inf", V));  // parses, but not finite
  EXPECT_FALSE(parseDouble("nan", V));
  EXPECT_FALSE(parseDouble("1e999", V)); // ERANGE overflow to inf
  EXPECT_DOUBLE_EQ(V, 0.25);
}

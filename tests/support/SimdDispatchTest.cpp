//===- tests/support/SimdDispatchTest.cpp ------------------------------------=//
//
// The runtime ISA dispatch policy for vectorized serving: tier names
// round-trip through the PBT_SIMD parser, override resolution only ever
// clamps DOWN (a request above the host's capability must not dispatch
// an inexecutable tier), and the host's available-tier list is what the
// parity suites iterate -- Scalar always present, ascending, topped by
// the detected tier.
//
//===----------------------------------------------------------------------===//

#include "support/SimdDispatch.h"

#include <gtest/gtest.h>

#include <string>

using namespace pbt;
using support::SimdTier;

namespace {

TEST(SimdDispatchTest, TierNamesRoundTripThroughParser) {
  for (SimdTier Tier :
       {SimdTier::Scalar, SimdTier::Sse42, SimdTier::Avx2}) {
    SimdTier Parsed = SimdTier::Scalar;
    ASSERT_TRUE(support::parseSimdTier(support::simdTierName(Tier), Parsed))
        << support::simdTierName(Tier);
    EXPECT_EQ(Parsed, Tier);
  }
}

TEST(SimdDispatchTest, ParserRejectsUnknownText) {
  SimdTier Out = SimdTier::Avx2;
  EXPECT_FALSE(support::parseSimdTier(nullptr, Out));
  EXPECT_FALSE(support::parseSimdTier("", Out));
  EXPECT_FALSE(support::parseSimdTier("avx512", Out));
  EXPECT_FALSE(support::parseSimdTier("SSE42", Out)); // names are lowercase
  // A failed parse must leave the output untouched.
  EXPECT_EQ(Out, SimdTier::Avx2);
}

TEST(SimdDispatchTest, ClampNeverRisesAboveDetected) {
  using support::clampSimdTier;
  EXPECT_EQ(clampSimdTier(SimdTier::Avx2, SimdTier::Scalar),
            SimdTier::Scalar);
  EXPECT_EQ(clampSimdTier(SimdTier::Avx2, SimdTier::Sse42), SimdTier::Sse42);
  EXPECT_EQ(clampSimdTier(SimdTier::Scalar, SimdTier::Avx2),
            SimdTier::Scalar);
  EXPECT_EQ(clampSimdTier(SimdTier::Sse42, SimdTier::Sse42),
            SimdTier::Sse42);
}

TEST(SimdDispatchTest, ResolutionUsesDetectedUnlessValidOverride) {
  using support::resolveSimdTier;
  // No/invalid override: serve at the detected tier.
  EXPECT_EQ(resolveSimdTier(nullptr, SimdTier::Avx2), SimdTier::Avx2);
  EXPECT_EQ(resolveSimdTier("", SimdTier::Sse42), SimdTier::Sse42);
  EXPECT_EQ(resolveSimdTier("turbo", SimdTier::Avx2), SimdTier::Avx2);
  // Valid override: clamped against the detected tier.
  EXPECT_EQ(resolveSimdTier("scalar", SimdTier::Avx2), SimdTier::Scalar);
  EXPECT_EQ(resolveSimdTier("sse42", SimdTier::Avx2), SimdTier::Sse42);
  EXPECT_EQ(resolveSimdTier("avx2", SimdTier::Scalar), SimdTier::Scalar);
}

TEST(SimdDispatchTest, AvailableTiersAscendFromScalarToDetected) {
  std::vector<SimdTier> Tiers = support::availableSimdTiers();
  ASSERT_FALSE(Tiers.empty());
  EXPECT_EQ(Tiers.front(), SimdTier::Scalar);
  EXPECT_EQ(Tiers.back(), support::detectSimdTier());
  for (size_t I = 1; I < Tiers.size(); ++I)
    EXPECT_LT(static_cast<int>(Tiers[I - 1]), static_cast<int>(Tiers[I]));
  // The active serving tier must always be executable here.
  EXPECT_LE(static_cast<int>(support::activeSimdTier()),
            static_cast<int>(support::detectSimdTier()));
}

} // namespace

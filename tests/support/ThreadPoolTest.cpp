//===- tests/support/ThreadPoolTest.cpp --------------------------------------=//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

using pbt::support::ThreadPool;

namespace {

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Hits(1000);
  Pool.parallelFor(0, Hits.size(), [&](size_t I) { Hits[I].fetch_add(1); });
  for (auto &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

TEST(ThreadPoolTest, EmptyRangeIsANoop) {
  ThreadPool Pool(2);
  std::atomic<int> Count{0};
  Pool.parallelFor(5, 5, [&](size_t) { Count.fetch_add(1); });
  EXPECT_EQ(Count.load(), 0);
}

TEST(ThreadPoolTest, SubrangeRespected) {
  ThreadPool Pool(3);
  std::vector<std::atomic<int>> Hits(100);
  Pool.parallelFor(10, 60, [&](size_t I) { Hits[I].fetch_add(1); });
  for (size_t I = 0; I != 100; ++I)
    EXPECT_EQ(Hits[I].load(), I >= 10 && I < 60 ? 1 : 0);
}

TEST(ThreadPoolTest, SequentialJobsReuseWorkers) {
  ThreadPool Pool(2);
  std::atomic<int> Total{0};
  for (int Round = 0; Round != 10; ++Round)
    Pool.parallelFor(0, 50, [&](size_t) { Total.fetch_add(1); });
  EXPECT_EQ(Total.load(), 500);
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool Pool(1);
  std::atomic<int> Count{0};
  Pool.parallelFor(0, 20, [&](size_t) { Count.fetch_add(1); });
  EXPECT_EQ(Count.load(), 20);
}

TEST(ThreadPoolTest, HardwareThreadsPositive) {
  EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

} // namespace

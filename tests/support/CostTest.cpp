//===- tests/support/CostTest.cpp --------------------------------------------=//

#include "support/Cost.h"

#include <gtest/gtest.h>

using pbt::support::CostCounter;

namespace {

TEST(CostTest, CategoriesAccumulateIndependently) {
  CostCounter C;
  C.addCompares(3);
  C.addMoves(5);
  C.addFlops(7);
  C.addStencil(11);
  C.addOther(13);
  EXPECT_DOUBLE_EQ(C.compares(), 3.0);
  EXPECT_DOUBLE_EQ(C.moves(), 5.0);
  EXPECT_DOUBLE_EQ(C.flops(), 7.0);
  EXPECT_DOUBLE_EQ(C.stencil(), 11.0);
  EXPECT_DOUBLE_EQ(C.other(), 13.0);
  EXPECT_DOUBLE_EQ(C.units(), 39.0);
}

TEST(CostTest, ResetClearsEverything) {
  CostCounter C;
  C.addFlops(10);
  C.reset();
  EXPECT_DOUBLE_EQ(C.units(), 0.0);
  EXPECT_DOUBLE_EQ(C.flops(), 0.0);
}

TEST(CostTest, MergeFoldsCounters) {
  CostCounter A, B;
  A.addCompares(1);
  B.addCompares(2);
  B.addMoves(4);
  A.merge(B);
  EXPECT_DOUBLE_EQ(A.compares(), 3.0);
  EXPECT_DOUBLE_EQ(A.moves(), 4.0);
  EXPECT_DOUBLE_EQ(A.units(), 7.0);
}

TEST(CostTest, WallTimerAdvances) {
  pbt::support::WallTimer T;
  volatile double Sink = 0.0;
  for (int I = 0; I != 100000; ++I)
    Sink = Sink + 1.0;
  EXPECT_GE(T.elapsedSeconds(), 0.0);
}

} // namespace

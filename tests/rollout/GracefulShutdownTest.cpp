//===- tests/rollout/GracefulShutdownTest.cpp --------------------------------=//
//
// The publisher's graceful-shutdown contract: a SIGTERM that lands
// mid-shadow-retrain stops the publisher cleanly -- the retrained
// candidate is discarded in memory and NOTHING durable changes. No
// partial epoch, no in-flight temp file, no store mutation of any kind.
// The signal is delivered for real (raise() through a handler that sets
// the stop flag, exactly the wiring a daemon would install), hooked
// into the retrain phase through PublisherOptions::OnRetrainStart.
//
//===----------------------------------------------------------------------===//

#include "rollout/RolloutController.h"

#include "core/Pipeline.h"
#include "registry/BenchmarkRegistry.h"
#include "runtime/PredictionService.h"
#include "serialize/ModelIO.h"
#include "store/ModelStore.h"
#include "support/FaultInject.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

using namespace pbt;
using rollout::Publisher;
using rollout::RolloutController;

namespace {

constexpr double kScale = 0.1;

std::atomic<bool> GStop{false};

extern "C" void stopOnSigterm(int) {
  GStop.store(true, std::memory_order_relaxed);
}

const std::string &modelBytes() {
  static const std::string Bytes = [] {
    const registry::BenchmarkFactory &F =
        registry::BenchmarkRegistry::instance().get("sort1");
    registry::ProgramPtr P = F.makeProgram(kScale, F.defaultProgramSeed());
    core::TrainedSystem Sys = core::trainSystem(*P, F.defaultOptions(kScale));
    serialize::TrainedModel M = serialize::makeModel(
        "sort1", kScale, F.defaultProgramSeed(), *P, std::move(Sys));
    M.System.Data.reset();
    return serialize::serializeModel(M);
  }();
  return Bytes;
}

serialize::TrainedModel cloneModel(const std::string &Bytes) {
  serialize::TrainedModel M;
  EXPECT_TRUE(serialize::loadModel(Bytes, M).Ok);
  return M;
}

class GracefulShutdownTest : public ::testing::Test {
protected:
  void SetUp() override {
    support::FaultInjector::instance().reset();
    GStop.store(false);
    PrevHandler = std::signal(SIGTERM, stopOnSigterm);
    ASSERT_NE(PrevHandler, SIG_ERR);

    const registry::BenchmarkFactory &F =
        registry::BenchmarkRegistry::instance().get("sort1");
    Program = F.makeProgram(kScale, F.defaultProgramSeed());
    Dir = ::testing::TempDir() + "pbt-shutdown-" +
          ::testing::UnitTest::GetInstance()->current_test_info()->name() +
          "-" + std::to_string(::getpid());
    std::filesystem::remove_all(Dir);

    rollout::RolloutOptions RO;
    RO.Replicas = 2;
    RO.ShadowSample = 8;
    Ctl = std::make_unique<RolloutController>(*Program, Dir, RO);
    ASSERT_TRUE(Ctl->start(cloneModel(modelBytes())).Ok);

    for (size_t I = 0; I != 8; ++I)
      Sample.push_back(I);
  }
  void TearDown() override {
    std::signal(SIGTERM, PrevHandler);
    Ctl.reset();
    std::filesystem::remove_all(Dir);
    support::FaultInjector::instance().reset();
  }

  rollout::PublisherOptions publisherOptions() {
    const registry::BenchmarkFactory &F =
        registry::BenchmarkRegistry::instance().get("sort1");
    rollout::PublisherOptions PO;
    PO.Retrain =
        registry::reservoirRetrainOptions(F, kScale, Sample.size(), nullptr);
    PO.Stop = &GStop;
    return PO;
  }

  /// Everything durable about the store directory, for exact
  /// before/after comparison.
  struct StoreFingerprint {
    uint64_t Current = 0;
    size_t Epochs = 0;
    std::vector<std::string> Files; // sorted directory listing
  };
  StoreFingerprint fingerprint() {
    StoreFingerprint FP;
    store::ReaderSnapshot Snap;
    EXPECT_TRUE(store::readSnapshot(Dir, Snap).Ok);
    FP.Current = Snap.CurrentEpoch;
    FP.Epochs = Snap.Records.size();
    for (const auto &E : std::filesystem::directory_iterator(Dir))
      FP.Files.push_back(E.path().filename().string());
    std::sort(FP.Files.begin(), FP.Files.end());
    return FP;
  }

  registry::ProgramPtr Program;
  std::string Dir;
  std::unique_ptr<RolloutController> Ctl;
  std::vector<size_t> Sample;
  void (*PrevHandler)(int) = nullptr;
};

TEST_F(GracefulShutdownTest, SigtermMidRetrainPublishesNothing) {
  rollout::PublisherOptions PO = publisherOptions();
  // The signal lands while the shadow retrain is running: the handler
  // fires from inside the retrain phase, after the pre-retrain stop
  // check already passed.
  PO.OnRetrainStart = [] { ASSERT_EQ(::raise(SIGTERM), 0); };
  Publisher Pub(*Ctl, *Program, std::move(PO));

  StoreFingerprint Before = fingerprint();
  RolloutController::CycleReport Report;
  std::string Why;
  Publisher::Outcome Out = Pub.retrainAndRollout(Sample, Report, Why);

  EXPECT_EQ(Out, Publisher::Outcome::Stopped);
  EXPECT_NE(Why.find("discarded unpublished"), std::string::npos) << Why;

  // Nothing durable moved: same CURRENT, same epoch count, the exact
  // same directory listing (in particular: no new image, no .tmp).
  StoreFingerprint After = fingerprint();
  EXPECT_EQ(After.Current, Before.Current);
  EXPECT_EQ(After.Epochs, Before.Epochs);
  EXPECT_EQ(After.Files, Before.Files);
  // And the fleet never blinked.
  for (size_t I = 0; I != Ctl->replicaCount(); ++I)
    EXPECT_EQ(Ctl->replica(I).epoch(), 1u);
}

TEST_F(GracefulShutdownTest, StopAlreadySetSkipsTheRetrainEntirely) {
  rollout::PublisherOptions PO = publisherOptions();
  bool RetrainStarted = false;
  PO.OnRetrainStart = [&RetrainStarted] { RetrainStarted = true; };
  Publisher Pub(*Ctl, *Program, std::move(PO));

  GStop.store(true);
  RolloutController::CycleReport Report;
  std::string Why;
  EXPECT_EQ(Pub.retrainAndRollout(Sample, Report, Why),
            Publisher::Outcome::Stopped);
  EXPECT_FALSE(RetrainStarted);
}

TEST_F(GracefulShutdownTest, ThinSampleYieldsNoCandidate) {
  Publisher Pub(*Ctl, *Program, publisherOptions());
  RolloutController::CycleReport Report;
  std::string Why;
  std::vector<size_t> Thin = {0, 1};
  EXPECT_EQ(Pub.retrainAndRollout(Thin, Report, Why),
            Publisher::Outcome::NoCandidate);
  EXPECT_NE(Why.find("too thin"), std::string::npos);
  EXPECT_EQ(Ctl->modelStore().records().size(), 1u);
}

TEST_F(GracefulShutdownTest, UninterruptedRetrainShipsACandidate) {
  Publisher Pub(*Ctl, *Program, publisherOptions());
  RolloutController::CycleReport Report;
  std::string Why;
  Publisher::Outcome Out = Pub.retrainAndRollout(Sample, Report, Why);
  // Promoted or rolled back is the canary's call; either way a durable
  // epoch exists and the machine ran end to end.
  EXPECT_TRUE(Out == Publisher::Outcome::Promoted ||
              Out == Publisher::Outcome::RolledBack)
      << Why;
  EXPECT_EQ(Report.CandidateEpoch, 2u);
  ASSERT_NE(Ctl->modelStore().record(2), nullptr);
}

} // namespace

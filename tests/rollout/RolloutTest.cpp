//===- tests/rollout/RolloutTest.cpp -----------------------------------------=//
//
// The staged rollout state machine on the happy and unhappy paths:
// bootstrap seeding, canary-gated promotion of an equal candidate,
// rollback of a degraded one (with the canary reverting to the champion
// it never stopped trusting), resume after a fleet kill, and the
// provenance/validation walls at the edges. The store-level crash
// windows live in tests/store/; this file is about the machine above
// them.
//
//===----------------------------------------------------------------------===//

#include "rollout/RolloutController.h"

#include "core/Pipeline.h"
#include "registry/BenchmarkRegistry.h"
#include "runtime/PredictionService.h"
#include "serialize/ModelIO.h"
#include "store/ModelStore.h"
#include "support/FaultInject.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>

#include <unistd.h>

using namespace pbt;
using rollout::RolloutController;

namespace {

constexpr double kScale = 0.1;

const std::string &modelBytes() {
  static const std::string Bytes = [] {
    const registry::BenchmarkFactory &F =
        registry::BenchmarkRegistry::instance().get("sort1");
    registry::ProgramPtr P = F.makeProgram(kScale, F.defaultProgramSeed());
    core::TrainedSystem Sys = core::trainSystem(*P, F.defaultOptions(kScale));
    serialize::TrainedModel M = serialize::makeModel(
        "sort1", kScale, F.defaultProgramSeed(), *P, std::move(Sys));
    M.System.Data.reset();
    return serialize::serializeModel(M);
  }();
  return Bytes;
}

serialize::TrainedModel cloneModel(const std::string &Bytes) {
  serialize::TrainedModel M;
  EXPECT_TRUE(serialize::loadModel(Bytes, M).Ok);
  return M;
}

serialize::TrainedModel degradedModel() {
  serialize::TrainedModel M = cloneModel(modelBytes());
  EXPECT_GT(M.System.L1.Landmarks.size(), 1u);
  std::rotate(M.System.L1.Landmarks.begin(),
              M.System.L1.Landmarks.begin() + 1,
              M.System.L1.Landmarks.end());
  return M;
}

class RolloutTest : public ::testing::Test {
protected:
  void SetUp() override {
    support::FaultInjector::instance().reset();
    const registry::BenchmarkFactory &F =
        registry::BenchmarkRegistry::instance().get("sort1");
    Program = F.makeProgram(kScale, F.defaultProgramSeed());
    Dir = ::testing::TempDir() + "pbt-rollout-" +
          ::testing::UnitTest::GetInstance()->current_test_info()->name() +
          "-" + std::to_string(::getpid());
    std::filesystem::remove_all(Dir);
  }
  void TearDown() override {
    support::FaultInjector::instance().reset();
    std::filesystem::remove_all(Dir);
  }

  std::unique_ptr<RolloutController> makeStarted(size_t Replicas = 3) {
    rollout::RolloutOptions RO;
    RO.Replicas = Replicas;
    RO.ShadowSample = 8;
    auto Ctl = std::make_unique<RolloutController>(*Program, Dir, RO);
    EXPECT_TRUE(Ctl->start(cloneModel(modelBytes())).Ok);
    return Ctl;
  }

  registry::ProgramPtr Program;
  std::string Dir;
};

TEST_F(RolloutTest, StartSeedsTheBootstrapEpochFleetWide) {
  auto Ctl = makeStarted();
  EXPECT_EQ(Ctl->currentEpoch(), 1u);
  for (size_t I = 0; I != Ctl->replicaCount(); ++I) {
    rollout::Replica &R = Ctl->replica(I);
    ASSERT_TRUE(R.serving()) << "replica " << I;
    EXPECT_EQ(R.epoch(), 1u);
    // The image is self-describing: Meta.Epoch matches the store epoch
    // it landed as.
    EXPECT_EQ(R.service().model().Meta.Epoch, 1u);
  }
  EXPECT_EQ(Ctl->modelStore().record(1)->State, store::EpochState::Active);

  // start() on a store that already has a promoted epoch does not
  // re-seed: the existing truth wins.
  auto Again = makeStarted();
  EXPECT_EQ(Again->currentEpoch(), 1u);
  EXPECT_EQ(Again->modelStore().records().size(), 1u);
}

TEST_F(RolloutTest, EqualCandidatePromotesThroughTheCanary) {
  auto Ctl = makeStarted();
  RolloutController::CycleReport Report;
  ASSERT_TRUE(Ctl->rollout(cloneModel(modelBytes()), Report).Ok);

  EXPECT_TRUE(Report.Promoted);
  EXPECT_EQ(Report.CandidateEpoch, 2u);
  // An identical model scores identically; the canary is a regression
  // gate, so equality passes.
  EXPECT_DOUBLE_EQ(Report.CandidateScore, Report.ChampionScore);
  EXPECT_GT(Report.ChampionScore, 0.0);

  EXPECT_EQ(Ctl->currentEpoch(), 2u);
  for (size_t I = 0; I != Ctl->replicaCount(); ++I) {
    EXPECT_EQ(Ctl->replica(I).epoch(), 2u);
    EXPECT_EQ(Ctl->replica(I).service().model().Meta.Epoch, 2u);
  }
  EXPECT_EQ(Ctl->modelStore().record(2)->State, store::EpochState::Active);
  EXPECT_EQ(Ctl->modelStore().record(1)->State, store::EpochState::Retired);
}

TEST_F(RolloutTest, DegradedCandidateRollsBackAndTheCanaryReverts) {
  auto Ctl = makeStarted();
  RolloutController::CycleReport Report;
  ASSERT_TRUE(Ctl->rollout(degradedModel(), Report).Ok);

  EXPECT_FALSE(Report.Promoted);
  EXPECT_GT(Report.CandidateScore, Report.ChampionScore);
  EXPECT_EQ(Ctl->currentEpoch(), 1u);
  EXPECT_EQ(Ctl->modelStore().record(2)->State,
            store::EpochState::RolledBack);
  // The canary served the candidate during scoring but reverted: the
  // whole fleet is back on the champion.
  for (size_t I = 0; I != Ctl->replicaCount(); ++I)
    EXPECT_EQ(Ctl->replica(I).epoch(), 1u);
  EXPECT_GT(Ctl->replica(0).swapCount(), Ctl->replica(1).swapCount());
}

TEST_F(RolloutTest, ResumeConvergesAKilledFleetOntoCurrent) {
  {
    auto Ctl = makeStarted();
    RolloutController::CycleReport Report;
    ASSERT_TRUE(Ctl->rollout(cloneModel(modelBytes()), Report).Ok);
    ASSERT_EQ(Ctl->currentEpoch(), 2u);
    // The fleet dies here (handles dropped, store directory survives).
  }
  rollout::RolloutOptions RO;
  RO.Replicas = 2;
  RolloutController Restarted(*Program, Dir, RO);
  ASSERT_TRUE(Restarted.resume().Ok);
  EXPECT_EQ(Restarted.currentEpoch(), 2u);
  for (size_t I = 0; I != Restarted.replicaCount(); ++I) {
    ASSERT_TRUE(Restarted.replica(I).serving());
    EXPECT_EQ(Restarted.replica(I).epoch(), 2u);
  }
}

TEST_F(RolloutTest, ResumeRefusesAStoreThatWasNeverStarted) {
  RolloutController Ctl(*Program, Dir, {});
  serialize::LoadStatus St = Ctl.resume();
  EXPECT_FALSE(St.Ok);
  EXPECT_NE(St.Error.find("no promoted epoch"), std::string::npos);
}

TEST_F(RolloutTest, RolloutRequiresAServingFleet) {
  RolloutController Ctl(*Program, Dir, {});
  RolloutController::CycleReport Report;
  EXPECT_FALSE(Ctl.rollout(cloneModel(modelBytes()), Report).Ok);
}

TEST_F(RolloutTest, StartValidatesTheSeedAgainstTheProgram) {
  const registry::BenchmarkFactory &F =
      registry::BenchmarkRegistry::instance().get("binpacking");
  registry::ProgramPtr Wrong = F.makeProgram(kScale, F.defaultProgramSeed());
  RolloutController Ctl(*Wrong, Dir, {});
  EXPECT_FALSE(Ctl.start(cloneModel(modelBytes())).Ok);
}

TEST_F(RolloutTest, CanaryAdoptRefusesAnUnknownEpoch) {
  auto Ctl = makeStarted();
  rollout::Replica &Canary = Ctl->replica(0);
  uint64_t Before = Canary.tornReadsPrevented();
  EXPECT_FALSE(Canary.adopt(99).Ok);
  EXPECT_EQ(Canary.tornReadsPrevented(), Before + 1);
  EXPECT_EQ(Canary.epoch(), 1u); // still serving the champion
}

} // namespace

//===- tests/linalg/QRTest.cpp -----------------------------------------------=//

#include "linalg/QR.h"

#include <gtest/gtest.h>

using namespace pbt;
using namespace pbt::linalg;

namespace {

void expectOrthonormalColumns(const Matrix &Q, double Tol = 1e-10) {
  Matrix G = multiplyTransposedA(Q, Q);
  for (size_t I = 0; I != G.rows(); ++I)
    for (size_t J = 0; J != G.cols(); ++J)
      EXPECT_NEAR(G.at(I, J), I == J ? 1.0 : 0.0, Tol)
          << "Gram entry (" << I << "," << J << ")";
}

TEST(QRTest, ReconstructsA) {
  support::Rng Rng(1);
  Matrix A = Matrix::gaussian(8, 5, Rng);
  QRResult QR = thinQR(A);
  Matrix Recon = multiply(QR.Q, QR.R);
  EXPECT_NEAR(A.frobeniusDistance(Recon), 0.0, 1e-10);
}

TEST(QRTest, QHasOrthonormalColumns) {
  support::Rng Rng(2);
  Matrix A = Matrix::gaussian(10, 4, Rng);
  expectOrthonormalColumns(thinQR(A).Q);
}

TEST(QRTest, RIsUpperTriangular) {
  support::Rng Rng(3);
  Matrix A = Matrix::gaussian(6, 6, Rng);
  Matrix R = thinQR(A).R;
  for (size_t I = 1; I != R.rows(); ++I)
    for (size_t J = 0; J != I; ++J)
      EXPECT_DOUBLE_EQ(R.at(I, J), 0.0);
}

TEST(QRTest, SquareMatrix) {
  support::Rng Rng(4);
  Matrix A = Matrix::gaussian(5, 5, Rng);
  QRResult QR = thinQR(A);
  EXPECT_NEAR(A.frobeniusDistance(multiply(QR.Q, QR.R)), 0.0, 1e-10);
  expectOrthonormalColumns(QR.Q);
}

TEST(QRTest, RankDeficientMatrixStillFactors) {
  // Two identical columns.
  Matrix A(4, 2);
  for (size_t I = 0; I != 4; ++I) {
    A.at(I, 0) = static_cast<double>(I + 1);
    A.at(I, 1) = static_cast<double>(I + 1);
  }
  QRResult QR = thinQR(A);
  EXPECT_NEAR(A.frobeniusDistance(multiply(QR.Q, QR.R)), 0.0, 1e-10);
}

TEST(QRTest, OrthonormalizeIdempotentOnOrthonormalInput) {
  support::Rng Rng(5);
  Matrix Q1 = orthonormalize(Matrix::gaussian(7, 3, Rng));
  Matrix Q2 = orthonormalize(Q1);
  expectOrthonormalColumns(Q2);
  // Column spaces agree: Q2 = Q1 * (Q1^T Q2) with orthogonal mixing.
  Matrix M = multiplyTransposedA(Q1, Q2);
  Matrix Recon = multiply(Q1, M);
  EXPECT_NEAR(Q2.frobeniusDistance(Recon), 0.0, 1e-9);
}

} // namespace

//===- tests/linalg/SVDTest.cpp ----------------------------------------------=//

#include "linalg/SVD.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

using namespace pbt;
using namespace pbt::linalg;

namespace {

/// A = U diag(S) V^T with random orthonormal factors and given spectrum.
Matrix matrixWithSpectrum(const std::vector<double> &S, size_t N,
                          support::Rng &Rng) {
  Matrix U = Matrix::gaussian(N, S.size(), Rng);
  Matrix V = Matrix::gaussian(N, S.size(), Rng);
  // Orthonormalise through QR by multiplying into SVD later; simpler: use
  // jacobi on random matrices is overkill -- use Gram-Schmidt via QR from
  // the library under test is circular, so construct sums of outer
  // products of *independent* gaussian vectors; for spectral tests we
  // use the diagonal matrix itself instead.
  (void)U;
  (void)V;
  Matrix A(N, N, 0.0);
  for (size_t I = 0; I != S.size(); ++I)
    A.at(I, I) = S[I];
  return A;
}

TEST(SVDTest, JacobiRecoversDiagonalSpectrum) {
  support::Rng Rng(1);
  std::vector<double> Spectrum{9.0, 4.0, 1.0, 0.25};
  Matrix A = matrixWithSpectrum(Spectrum, 4, Rng);
  SVDResult R = jacobiSVD(A);
  ASSERT_EQ(R.Sigma.size(), 4u);
  for (size_t I = 0; I != 4; ++I)
    EXPECT_NEAR(R.Sigma[I], Spectrum[I], 1e-10);
}

TEST(SVDTest, JacobiReconstructsRandomMatrix) {
  support::Rng Rng(2);
  Matrix A = Matrix::gaussian(10, 6, Rng);
  SVDResult R = jacobiSVD(A);
  Matrix Recon = rankKApprox(R, 6);
  EXPECT_NEAR(A.frobeniusDistance(Recon), 0.0, 1e-8);
}

TEST(SVDTest, SigmaSortedDescending) {
  support::Rng Rng(3);
  Matrix A = Matrix::gaussian(8, 8, Rng);
  SVDResult R = jacobiSVD(A);
  for (size_t I = 1; I != R.Sigma.size(); ++I)
    EXPECT_GE(R.Sigma[I - 1], R.Sigma[I]);
}

TEST(SVDTest, SingularVectorsOrthonormal) {
  support::Rng Rng(4);
  Matrix A = Matrix::gaussian(9, 5, Rng);
  SVDResult R = jacobiSVD(A);
  Matrix GU = multiplyTransposedA(R.U, R.U);
  Matrix GV = multiplyTransposedA(R.V, R.V);
  for (size_t I = 0; I != 5; ++I)
    for (size_t J = 0; J != 5; ++J) {
      EXPECT_NEAR(GU.at(I, J), I == J ? 1.0 : 0.0, 1e-8);
      EXPECT_NEAR(GV.at(I, J), I == J ? 1.0 : 0.0, 1e-8);
    }
}

/// Low-rank matrix plus small noise for the truncated methods.
Matrix lowRankMatrix(size_t N, size_t Rank, support::Rng &Rng) {
  Matrix A(N, N, 0.0);
  for (size_t R = 0; R != Rank; ++R) {
    std::vector<double> U(N), V(N);
    for (size_t I = 0; I != N; ++I) {
      U[I] = Rng.gaussian();
      V[I] = Rng.gaussian();
    }
    double Scale = 5.0 / static_cast<double>(R + 1);
    for (size_t I = 0; I != N; ++I)
      for (size_t J = 0; J != N; ++J)
        A.at(I, J) += Scale * U[I] * V[J];
  }
  return A;
}

TEST(SVDTest, SubspaceMatchesJacobiOnTopFactors) {
  support::Rng Rng(5);
  Matrix A = lowRankMatrix(16, 3, Rng);
  SVDResult Full = jacobiSVD(A);
  SVDResult Top = subspaceSVD(A, 3, /*Iterations=*/30, Rng);
  ASSERT_GE(Top.Sigma.size(), 3u);
  for (size_t I = 0; I != 3; ++I)
    EXPECT_NEAR(Top.Sigma[I], Full.Sigma[I], 1e-6 * (1.0 + Full.Sigma[I]));
}

TEST(SVDTest, RandomizedCapturesLowRankStructure) {
  support::Rng Rng(6);
  Matrix A = lowRankMatrix(20, 2, Rng);
  SVDResult R = randomizedSVD(A, 2, /*Oversample=*/6, /*PowerIterations=*/2,
                              Rng);
  Matrix Recon = rankKApprox(R, 2);
  double RelErr = A.frobeniusDistance(Recon) / A.frobeniusNorm();
  EXPECT_LT(RelErr, 1e-6);
}

TEST(SVDTest, RankKErrorDecreasesWithK) {
  support::Rng Rng(7);
  Matrix A = Matrix::gaussian(12, 12, Rng);
  SVDResult R = jacobiSVD(A);
  double PrevErr = 1e300;
  for (unsigned K : {1u, 3u, 6u, 9u, 12u}) {
    double Err = A.frobeniusDistance(rankKApprox(R, K));
    EXPECT_LE(Err, PrevErr + 1e-12);
    PrevErr = Err;
  }
  EXPECT_NEAR(PrevErr, 0.0, 1e-8);
}

TEST(SVDTest, EckartYoungErrorMatchesTailSpectrum) {
  support::Rng Rng(8);
  Matrix A = Matrix::gaussian(10, 10, Rng);
  SVDResult R = jacobiSVD(A);
  unsigned K = 4;
  double TailSq = 0.0;
  for (size_t I = K; I != R.Sigma.size(); ++I)
    TailSq += R.Sigma[I] * R.Sigma[I];
  double Err = A.frobeniusDistance(rankKApprox(R, K));
  EXPECT_NEAR(Err, std::sqrt(TailSq), 1e-8);
}

TEST(SVDTest, ZeroMatrixHandled) {
  Matrix A(5, 3, 0.0);
  SVDResult R = jacobiSVD(A);
  for (double S : R.Sigma)
    EXPECT_DOUBLE_EQ(S, 0.0);
  EXPECT_NEAR(rankKApprox(R, 3).frobeniusNorm(), 0.0, 1e-15);
}

TEST(SVDTest, CostScalesWithMethod) {
  support::Rng Rng(9);
  Matrix A = lowRankMatrix(24, 2, Rng);
  support::CostCounter CJ, CR;
  jacobiSVD(A, {}, &CJ);
  randomizedSVD(A, 2, 4, 1, Rng, &CR);
  // Randomized rank-2 on a 24x24 matrix must be cheaper than a full
  // Jacobi SVD.
  EXPECT_LT(CR.units(), CJ.units());
}

} // namespace

//===- tests/linalg/MatrixTest.cpp -------------------------------------------=//

#include "linalg/Matrix.h"

#include <gtest/gtest.h>

using namespace pbt;
using namespace pbt::linalg;

namespace {

TEST(MatrixTest, MultiplyKnownValues) {
  Matrix A(2, 3), B(3, 2);
  // A = [1 2 3; 4 5 6], B = [7 8; 9 10; 11 12].
  double AV[] = {1, 2, 3, 4, 5, 6};
  double BV[] = {7, 8, 9, 10, 11, 12};
  std::copy(std::begin(AV), std::end(AV), A.data().begin());
  std::copy(std::begin(BV), std::end(BV), B.data().begin());
  Matrix C = multiply(A, B);
  EXPECT_DOUBLE_EQ(C.at(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(C.at(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(C.at(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(C.at(1, 1), 154.0);
}

TEST(MatrixTest, MultiplyChargesFlops) {
  support::Rng Rng(1);
  Matrix A = Matrix::gaussian(4, 5, Rng);
  Matrix B = Matrix::gaussian(5, 6, Rng);
  support::CostCounter C;
  multiply(A, B, &C);
  EXPECT_DOUBLE_EQ(C.flops(), 2.0 * 4 * 5 * 6);
}

TEST(MatrixTest, TransposedMultiplyVariantsAgree) {
  support::Rng Rng(2);
  Matrix A = Matrix::gaussian(5, 4, Rng);
  Matrix B = Matrix::gaussian(5, 3, Rng);
  Matrix Expected = multiply(A.transposed(), B);
  Matrix Got = multiplyTransposedA(A, B);
  ASSERT_TRUE(Expected.sameShape(Got));
  for (size_t I = 0; I != Expected.data().size(); ++I)
    EXPECT_NEAR(Expected.data()[I], Got.data()[I], 1e-12);

  Matrix C = Matrix::gaussian(6, 4, Rng);
  Matrix D = Matrix::gaussian(3, 4, Rng);
  Matrix Expected2 = multiply(C, D.transposed());
  Matrix Got2 = multiplyTransposedB(C, D);
  ASSERT_TRUE(Expected2.sameShape(Got2));
  for (size_t I = 0; I != Expected2.data().size(); ++I)
    EXPECT_NEAR(Expected2.data()[I], Got2.data()[I], 1e-12);
}

TEST(MatrixTest, IdentityMultiplicationIsNoop) {
  support::Rng Rng(3);
  Matrix A = Matrix::gaussian(4, 4, Rng);
  Matrix I = Matrix::identity(4);
  Matrix AI = multiply(A, I);
  for (size_t K = 0; K != A.data().size(); ++K)
    EXPECT_DOUBLE_EQ(A.data()[K], AI.data()[K]);
}

TEST(MatrixTest, FrobeniusNormAndDistance) {
  Matrix A(2, 2);
  A.at(0, 0) = 3.0;
  A.at(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(A.frobeniusNorm(), 5.0);
  Matrix B(2, 2, 0.0);
  EXPECT_DOUBLE_EQ(A.frobeniusDistance(B), 5.0);
  EXPECT_DOUBLE_EQ(A.frobeniusDistance(A), 0.0);
}

TEST(MatrixTest, TransposeShapeAndValues) {
  Matrix A(2, 3);
  A.at(0, 2) = 42.0;
  Matrix T = A.transposed();
  EXPECT_EQ(T.rows(), 3u);
  EXPECT_EQ(T.cols(), 2u);
  EXPECT_DOUBLE_EQ(T.at(2, 0), 42.0);
}

} // namespace

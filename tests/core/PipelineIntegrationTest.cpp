//===- tests/core/PipelineIntegrationTest.cpp --------------------------------=//
//
// End-to-end tests of the two-level pipeline on scaled-down benchmarks,
// asserting the paper's qualitative invariants:
//   * the dynamic oracle dominates every classifier (no feature cost),
//   * the static oracle is a lower bound for the dynamic oracle,
//   * feature extraction cost only ever reduces a method's speedup,
//   * the selected two-level classifier meets the satisfaction threshold
//     on variable-accuracy benchmarks,
//   * restricting the landmark set never helps (Figure 8 monotonicity in
//     expectation; checked via the all-landmarks subset equalling the
//     dynamic oracle).
//
//===----------------------------------------------------------------------===//

#include "benchmarks/BinPackingBenchmark.h"
#include "benchmarks/SortBenchmark.h"
#include "core/Pipeline.h"

#include <gtest/gtest.h>

using namespace pbt;
using namespace pbt::core;

namespace {

PipelineOptions smallOptions() {
  PipelineOptions O;
  O.L1.NumLandmarks = 6;
  O.L1.Seed = 11;
  O.L1.Tuner.PopulationSize = 10;
  O.L1.Tuner.Generations = 8;
  O.L2.CVFolds = 3;
  return O;
}

class SortPipelineTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    bench::SortBenchmark::Options BO;
    BO.Data = bench::SortBenchmark::Dataset::SyntheticMix;
    BO.NumInputs = 60;
    BO.MinSize = 64;
    BO.MaxSize = 512;
    BO.Seed = 21;
    Program = new bench::SortBenchmark(BO);
    System = new TrainedSystem(trainSystem(*Program, smallOptions()));
    Result = new EvaluationResult(evaluateSystem(*Program, *System));
  }
  static void TearDownTestSuite() {
    delete Result;
    delete System;
    delete Program;
    Result = nullptr;
    System = nullptr;
    Program = nullptr;
  }

  static bench::SortBenchmark *Program;
  static TrainedSystem *System;
  static EvaluationResult *Result;
};

bench::SortBenchmark *SortPipelineTest::Program = nullptr;
TrainedSystem *SortPipelineTest::System = nullptr;
EvaluationResult *SortPipelineTest::Result = nullptr;

TEST_F(SortPipelineTest, TrainTestSplitPartitionsInputs) {
  EXPECT_EQ(System->TrainRows.size() + System->TestRows.size(),
            Program->numInputs());
  for (size_t Row : System->TestRows)
    for (size_t T : System->TrainRows)
      EXPECT_NE(Row, T);
}

TEST_F(SortPipelineTest, LandmarksWereTuned) {
  EXPECT_EQ(System->L1.Landmarks.size(), 6u);
  for (const auto &L : System->L1.Landmarks)
    EXPECT_EQ(L.size(), Program->space().size());
}

TEST_F(SortPipelineTest, EvidenceTablesCoverAllInputs) {
  EXPECT_EQ(System->L1.Time.rows(), Program->numInputs());
  EXPECT_EQ(System->L1.Time.cols(), System->L1.Landmarks.size());
  for (size_t I = 0; I != System->L1.Time.rows(); ++I)
    for (size_t K = 0; K != System->L1.Time.cols(); ++K)
      EXPECT_GT(System->L1.Time.at(I, K), 0.0);
}

TEST_F(SortPipelineTest, DynamicOracleDominatesClassifiers) {
  EXPECT_GE(Result->DynamicOracle, Result->TwoLevelNoFeat - 1e-9);
  EXPECT_GE(Result->DynamicOracle, Result->OneLevelNoFeat - 1e-9);
}

TEST_F(SortPipelineTest, DynamicOracleBeatsStaticOracle) {
  // The static oracle is one of the landmarks, so the per-input best is
  // at least as fast on every input.
  EXPECT_GE(Result->DynamicOracle, 1.0 - 1e-9);
}

TEST_F(SortPipelineTest, FeatureCostOnlyHurts) {
  EXPECT_LE(Result->TwoLevelWithFeat, Result->TwoLevelNoFeat + 1e-9);
  EXPECT_LE(Result->OneLevelWithFeat, Result->OneLevelNoFeat + 1e-9);
}

TEST_F(SortPipelineTest, TwoLevelImprovesOnStaticOracle) {
  // Sort is strongly input sensitive; the classifier should recover a
  // meaningful fraction of the oracle speedup even at this tiny scale.
  EXPECT_GT(Result->TwoLevelWithFeat, 1.0);
}

TEST_F(SortPipelineTest, PerInputSpeedupsMatchTestRows) {
  EXPECT_EQ(Result->PerInputSpeedups.size(), System->TestRows.size());
  for (double S : Result->PerInputSpeedups)
    EXPECT_GT(S, 0.0);
}

TEST_F(SortPipelineTest, AllLandmarkSubsetEqualsDynamicOracle) {
  std::vector<unsigned> All(System->L1.Landmarks.size());
  for (unsigned I = 0; I != All.size(); ++I)
    All[I] = I;
  double Speedup = subsetSpeedup(*Program, *System, All);
  EXPECT_NEAR(Speedup, Result->DynamicOracle, 1e-9);
}

TEST_F(SortPipelineTest, LandmarkSweepEndsAtDynamicOracle) {
  std::vector<LandmarkSweepPoint> Sweep = landmarkCountSweep(
      *Program, *System, {1, 3, 6}, /*Trials=*/8, /*Seed=*/5);
  ASSERT_EQ(Sweep.size(), 3u);
  // With all 6 landmarks every subset is the full set.
  EXPECT_NEAR(Sweep[2].Speedups.Median, Result->DynamicOracle, 1e-9);
  // More landmarks help on average (diminishing returns curve).
  EXPECT_LE(Sweep[0].Speedups.Median, Sweep[2].Speedups.Median + 1e-9);
}

TEST_F(SortPipelineTest, ZooContainsExpectedFamilies) {
  // 4 properties x 3 levels: (3+1)^4 - 1 = 255 subset trees, plus
  // max-apriori plus two incremental classifiers.
  EXPECT_EQ(System->L2.Candidates.size(), 255u + 1u + 1u + 2u);
}

class BinPackingPipelineTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    bench::BinPackingBenchmark::Options BO;
    BO.NumInputs = 60;
    BO.MinItems = 40;
    BO.MaxItems = 200;
    BO.Seed = 22;
    Program = new bench::BinPackingBenchmark(BO);
    System = new TrainedSystem(trainSystem(*Program, smallOptions()));
    Result = new EvaluationResult(evaluateSystem(*Program, *System));
  }
  static void TearDownTestSuite() {
    delete Result;
    delete System;
    delete Program;
    Result = nullptr;
    System = nullptr;
    Program = nullptr;
  }

  static bench::BinPackingBenchmark *Program;
  static TrainedSystem *System;
  static EvaluationResult *Result;
};

bench::BinPackingBenchmark *BinPackingPipelineTest::Program = nullptr;
TrainedSystem *BinPackingPipelineTest::System = nullptr;
EvaluationResult *BinPackingPipelineTest::Result = nullptr;

TEST_F(BinPackingPipelineTest, AccuracyIsMeasured) {
  // Accuracy matrix entries are occupancies in (0, 1].
  for (size_t I = 0; I != System->L1.Acc.rows(); ++I)
    for (size_t K = 0; K != System->L1.Acc.cols(); ++K) {
      EXPECT_GT(System->L1.Acc.at(I, K), 0.0);
      EXPECT_LE(System->L1.Acc.at(I, K), 1.0 + 1e-9);
    }
}

TEST_F(BinPackingPipelineTest, DynamicOracleRespectsAccuracy) {
  // The dynamic oracle picks accuracy-meeting landmarks whenever any
  // exists, so its satisfaction dominates the static oracle's.
  EXPECT_GE(Result->DynamicOracleSatisfaction,
            Result->StaticOracleSatisfaction - 1e-9);
}

TEST_F(BinPackingPipelineTest, TwoLevelSatisfactionReasonable) {
  // The production classifier was selected under the satisfaction
  // constraint; allow slack for train/test variance at this tiny scale.
  EXPECT_GE(Result->TwoLevelSatisfaction, 0.7);
}

TEST_F(BinPackingPipelineTest, OracleDominanceHolds) {
  EXPECT_GE(Result->DynamicOracle, 1.0 - 1e-9);
  EXPECT_LE(Result->TwoLevelWithFeat, Result->TwoLevelNoFeat + 1e-9);
}

} // namespace

//===- tests/core/ConcurrentRetrainTest.cpp ----------------------------------=//
//
// Regression test for the parallel-ctest artifact collision and for the
// training path's thread-safety: two full retrains running concurrently
// (as `ctest -j` schedules golden/CLI tests, and as the adaptive
// service shadow-retrains while other pipelines train) must each
// reproduce a sequentially trained reference byte-for-byte, writing
// their artifacts into private scratch directories that stay intact.
//
// Lives under the `integration` label (not `golden`) deliberately: the
// sanitizer CI matrix runs unit+integration, so the race between the
// two trainSystem() calls is exercised under TSan/ASan on every commit.
// Byte-equality against the committed goldens is GoldenFileTest's job.
//
//===----------------------------------------------------------------------===//

#include "registry/BenchmarkRegistry.h"
#include "serialize/ModelIO.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace pbt;

namespace {

constexpr double kScale = 0.1;

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << "missing file " << Path;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// One full train-and-serialize at the golden provenance.
std::string trainOnce() {
  const registry::BenchmarkFactory &F =
      registry::BenchmarkRegistry::instance().get("sort1");
  registry::ProgramPtr Program = F.makeProgram(kScale, F.defaultProgramSeed());
  core::TrainedSystem System =
      core::trainSystem(*Program, F.defaultOptions(kScale));
  serialize::TrainedModel Fresh = serialize::makeModel(
      "sort1", kScale, F.defaultProgramSeed(), *Program, std::move(System));
  return serialize::serializeModel(Fresh);
}

TEST(ConcurrentRetrainTest, ConcurrentRetrainsMatchSequentialReference) {
  const std::string Reference = trainOnce();
  ASSERT_FALSE(Reference.empty());

  // Each retrain gets its own scratch directory -- the discipline every
  // golden/CLI test follows so `ctest -j` cannot interleave artifacts.
  const std::filesystem::path Scratch =
      std::filesystem::path(::testing::TempDir()) / "pbt_concurrent_retrain";
  std::filesystem::remove_all(Scratch);

  constexpr unsigned kRetrains = 2;
  std::vector<std::string> Produced(kRetrains);
  std::vector<std::string> Errors(kRetrains);
  std::vector<std::thread> Workers;
  for (unsigned W = 0; W != kRetrains; ++W) {
    Workers.emplace_back([&, W] {
      std::string Bytes = trainOnce();

      std::filesystem::path Dir = Scratch / ("worker" + std::to_string(W));
      std::error_code EC;
      std::filesystem::create_directories(Dir, EC);
      if (EC) {
        Errors[W] = "cannot create " + Dir.string() + ": " + EC.message();
        return;
      }
      serialize::LoadStatus Written =
          serialize::writeModelText((Dir / "sort1.pbt").string(), Bytes);
      if (!Written) {
        Errors[W] = Written.Error;
        return;
      }
      Produced[W] = Bytes;
    });
  }
  for (std::thread &T : Workers)
    T.join();

  for (unsigned W = 0; W != kRetrains; ++W) {
    ASSERT_TRUE(Errors[W].empty()) << "worker " << W << ": " << Errors[W];
    EXPECT_EQ(Produced[W], Reference)
        << "worker " << W
        << ": a concurrent retrain diverged from the sequential reference";
    // And the artifact written to this worker's private scratch is intact
    // (nobody else wrote over it).
    std::filesystem::path File =
        Scratch / ("worker" + std::to_string(W)) / "sort1.pbt";
    EXPECT_EQ(readFile(File.string()), Reference);
  }
  std::filesystem::remove_all(Scratch);
}

} // namespace

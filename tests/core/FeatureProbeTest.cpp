//===- tests/core/FeatureProbeTest.cpp ---------------------------------------=//

#include "core/FeatureProbe.h"

#include <gtest/gtest.h>

using namespace pbt;
using namespace pbt::core;

namespace {

TEST(FeatureProbeTest, ExtractsLazilyAndCachesValues) {
  int Calls = 0;
  FeatureProbe P(3, [&](unsigned F) {
    ++Calls;
    return std::make_pair(static_cast<double>(F) * 10.0, 1.5);
  });
  EXPECT_EQ(Calls, 0);
  EXPECT_DOUBLE_EQ(P.value(1), 10.0);
  EXPECT_DOUBLE_EQ(P.value(1), 10.0);
  EXPECT_EQ(Calls, 1) << "second access must hit the cache";
  EXPECT_DOUBLE_EQ(P.totalCost(), 1.5);
  EXPECT_EQ(P.numExtracted(), 1u);
}

TEST(FeatureProbeTest, CostAccumulatesAcrossFeatures) {
  FeatureProbe P(4, [](unsigned F) {
    return std::make_pair(0.0, static_cast<double>(F + 1));
  });
  P.value(0);
  P.value(2);
  EXPECT_DOUBLE_EQ(P.totalCost(), 1.0 + 3.0);
  EXPECT_EQ(P.numExtracted(), 2u);
}

TEST(FeatureProbeTest, TableProbeReadsTables) {
  linalg::Matrix V(2, 3), C(2, 3);
  for (size_t I = 0; I != 2; ++I)
    for (size_t J = 0; J != 3; ++J) {
      V.at(I, J) = static_cast<double>(I * 10 + J);
      C.at(I, J) = static_cast<double>(J + 1);
    }
  FeatureProbe P = probeFromTable(V, C, 1);
  EXPECT_DOUBLE_EQ(P.value(2), 12.0);
  EXPECT_DOUBLE_EQ(P.totalCost(), 3.0);
}

} // namespace

//===- tests/core/LevelTwoTest.cpp -------------------------------------------=//

#include "benchmarks/BinPackingBenchmark.h"
#include "core/Labeling.h"
#include "core/LevelTwo.h"

#include <gtest/gtest.h>

#include <set>

using namespace pbt;
using namespace pbt::core;

namespace {

TEST(LevelTwoTest, SubsetEnumerationCountsMatchFormula) {
  // (z+1)^u - 1 subsets for u properties with z levels each.
  runtime::FeatureIndex FourByThree(
      {{"a", 3}, {"b", 3}, {"c", 3}, {"d", 3}});
  EXPECT_EQ(enumerateFeatureSubsets(FourByThree).size(), 255u);
  runtime::FeatureIndex ThreeByThree({{"a", 3}, {"b", 3}, {"c", 3}});
  EXPECT_EQ(enumerateFeatureSubsets(ThreeByThree).size(), 63u);
  runtime::FeatureIndex OneByTwo({{"a", 2}});
  EXPECT_EQ(enumerateFeatureSubsets(OneByTwo).size(), 2u);
}

TEST(LevelTwoTest, SubsetsUseOneLevelPerProperty) {
  runtime::FeatureIndex Index({{"a", 3}, {"b", 3}});
  for (const auto &Subset : enumerateFeatureSubsets(Index)) {
    EXPECT_FALSE(Subset.empty());
    std::set<unsigned> Properties;
    for (unsigned Flat : Subset)
      EXPECT_TRUE(Properties.insert(Index.propertyOf(Flat)).second)
          << "a property may appear at only one level";
  }
}

TEST(LevelTwoTest, CostMatrixZeroDiagonalForTimeOnly) {
  // Two landmarks, two inputs, each fastest under its own landmark.
  linalg::Matrix Time(2, 2), Acc(2, 2, 1.0);
  Time.at(0, 0) = 1;
  Time.at(0, 1) = 5;
  Time.at(1, 0) = 7;
  Time.at(1, 1) = 2;
  std::vector<size_t> Rows{0, 1};
  std::vector<unsigned> Labels{0, 1};
  ml::CostMatrix C =
      buildCostMatrix(Time, Acc, Rows, Labels, 2, std::nullopt, 0.5);
  EXPECT_DOUBLE_EQ(C.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(C.at(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(C.at(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(C.at(1, 0), 5.0);
}

TEST(LevelTwoTest, CostMatrixAddsAccuracyPenalty) {
  linalg::Matrix Time(2, 2), Acc(2, 2, 1.0);
  Time.at(0, 0) = 1;
  Time.at(0, 1) = 5;
  Time.at(1, 0) = 7;
  Time.at(1, 1) = 2;
  Acc.at(0, 1) = 0.1; // landmark 1 fails accuracy on input 0
  std::vector<size_t> Rows{0, 1};
  std::vector<unsigned> Labels{0, 1};
  runtime::AccuracySpec Spec{0.9, 0.95};
  ml::CostMatrix C = buildCostMatrix(Time, Acc, Rows, Labels, 2, Spec, 0.5);
  // C(0,1) = eta * Ca(0,1) * maxCp(0) + Cp(0,1) = 0.5 * 1 * 4 + 4 = 6.
  EXPECT_DOUBLE_EQ(C.at(0, 1), 6.0);
  EXPECT_DOUBLE_EQ(C.at(1, 0), 5.0);
}

TEST(LevelTwoTest, EtaZeroDropsAccuracyPenalty) {
  linalg::Matrix Time(1, 2), Acc(1, 2, 1.0);
  Time.at(0, 0) = 1;
  Time.at(0, 1) = 3;
  Acc.at(0, 1) = 0.0;
  runtime::AccuracySpec Spec{0.9, 0.95};
  ml::CostMatrix C0 =
      buildCostMatrix(Time, Acc, {0}, {0}, 2, Spec, /*Eta=*/0.0);
  ml::CostMatrix C1 =
      buildCostMatrix(Time, Acc, {0}, {0}, 2, Spec, /*Eta=*/1.0);
  EXPECT_DOUBLE_EQ(C0.at(0, 1), 2.0);
  EXPECT_GT(C1.at(0, 1), C0.at(0, 1));
}

/// Full Level 1 + Level 2 on a small binpacking instance.
class LevelTwoPipelineTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    bench::BinPackingBenchmark::Options BO;
    BO.NumInputs = 40;
    BO.MinItems = 30;
    BO.MaxItems = 120;
    BO.Seed = 8;
    Program = new bench::BinPackingBenchmark(BO);
    for (size_t I = 0; I != 30; ++I)
      TrainRows.push_back(I);
    LevelOneOptions O1;
    O1.NumLandmarks = 5;
    O1.Seed = 14;
    O1.Tuner.PopulationSize = 8;
    O1.Tuner.Generations = 6;
    L1 = new LevelOneResult(runLevelOne(*Program, TrainRows, O1));
    LevelTwoOptions O2;
    O2.CVFolds = 3;
    L2 = new LevelTwoResult(runLevelTwo(*Program, *L1, TrainRows, O2));
  }
  static void TearDownTestSuite() {
    delete L2;
    delete L1;
    delete Program;
    L2 = nullptr;
    L1 = nullptr;
    Program = nullptr;
    TrainRows.clear();
  }

  static bench::BinPackingBenchmark *Program;
  static std::vector<size_t> TrainRows;
  static LevelOneResult *L1;
  static LevelTwoResult *L2;
};

bench::BinPackingBenchmark *LevelTwoPipelineTest::Program = nullptr;
std::vector<size_t> LevelTwoPipelineTest::TrainRows;
LevelOneResult *LevelTwoPipelineTest::L1 = nullptr;
LevelTwoResult *LevelTwoPipelineTest::L2 = nullptr;

TEST_F(LevelTwoPipelineTest, LabelsMatchTheLabelingRule) {
  std::vector<unsigned> Expected =
      labelRows(L1->Time, L1->Acc, TrainRows, Program->accuracy());
  EXPECT_EQ(L2->TrainLabels, Expected);
}

TEST_F(LevelTwoPipelineTest, ZooHasAllFamilies) {
  // 4 properties x 3 levels -> 255 trees, + static-best + max-apriori +
  // 2 incremental.
  EXPECT_EQ(L2->Candidates.size(), 259u);
  bool SawMaxApriori = false, SawIncremental = false;
  for (const CandidateScore &S : L2->Candidates) {
    SawMaxApriori |= S.Name == "max-apriori";
    SawIncremental |= S.Name.rfind("incremental", 0) == 0;
    EXPECT_GT(S.Objective + 1e-12, S.ObjectiveNoFeat)
        << "feature cost can only add";
  }
  EXPECT_TRUE(SawMaxApriori);
  EXPECT_TRUE(SawIncremental);
}

TEST_F(LevelTwoPipelineTest, ProductionClassifierPredictsValidLandmarks) {
  ASSERT_NE(L2->Production, nullptr);
  for (size_t Row = 0; Row != Program->numInputs(); ++Row) {
    FeatureProbe Probe = probeFromTable(L1->Features, L1->ExtractCosts, Row);
    unsigned Pred = L2->Production->classify(Probe);
    EXPECT_LT(Pred, L1->Landmarks.size());
  }
}

TEST_F(LevelTwoPipelineTest, SelectedCandidateIsRecorded) {
  bool Found = false;
  for (const CandidateScore &S : L2->Candidates)
    if (S.Name == L2->SelectedName)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST_F(LevelTwoPipelineTest, SelectedBeatsOrMatchesOtherValidCandidates) {
  double SelectedObjective = 0.0;
  for (const CandidateScore &S : L2->Candidates)
    if (S.Name == L2->SelectedName)
      SelectedObjective = S.Objective;
  for (const CandidateScore &S : L2->Candidates)
    if (S.Valid)
      EXPECT_LE(SelectedObjective, S.Objective + 1e-9);
}

TEST_F(LevelTwoPipelineTest, RefinementMoveFractionInUnitRange) {
  EXPECT_GE(L2->RefinementMoveFraction, 0.0);
  EXPECT_LE(L2->RefinementMoveFraction, 1.0);
}

// The tentpole exactness contract: the columnar ml::Dataset zoo (the
// default, which the fixture above ran) and the row-major reference path
// agree bit-for-bit -- every candidate score, the refinement labels, the
// selection, and the production classifier's decision on every row.
TEST_F(LevelTwoPipelineTest, DatasetPathMatchesRowMajorPathExactly) {
  LevelTwoOptions O2;
  O2.CVFolds = 3;
  O2.UseDataset = false;
  LevelTwoResult Ref = runLevelTwo(*Program, *L1, TrainRows, O2);

  EXPECT_EQ(L2->TrainLabels, Ref.TrainLabels);
  EXPECT_EQ(L2->RefinementMoveFraction, Ref.RefinementMoveFraction);
  EXPECT_EQ(L2->SelectedName, Ref.SelectedName);
  ASSERT_EQ(L2->Candidates.size(), Ref.Candidates.size());
  for (size_t I = 0; I != Ref.Candidates.size(); ++I) {
    EXPECT_EQ(L2->Candidates[I].Name, Ref.Candidates[I].Name) << I;
    EXPECT_EQ(L2->Candidates[I].Objective, Ref.Candidates[I].Objective) << I;
    EXPECT_EQ(L2->Candidates[I].ObjectiveNoFeat,
              Ref.Candidates[I].ObjectiveNoFeat)
        << I;
    EXPECT_EQ(L2->Candidates[I].Satisfaction, Ref.Candidates[I].Satisfaction)
        << I;
    EXPECT_EQ(L2->Candidates[I].Valid, Ref.Candidates[I].Valid) << I;
  }
  for (size_t Row = 0; Row != Program->numInputs(); ++Row) {
    FeatureProbe A = probeFromTable(L1->Features, L1->ExtractCosts, Row);
    FeatureProbe B = probeFromTable(L1->Features, L1->ExtractCosts, Row);
    EXPECT_EQ(L2->Production->classify(A), Ref.Production->classify(B))
        << Row;
    EXPECT_EQ(A.totalCost(), B.totalCost()) << Row;
  }
}

} // namespace

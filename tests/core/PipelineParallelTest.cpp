//===- tests/core/PipelineParallelTest.cpp -----------------------------------=//
//
// The acceptance contract of the ThreadPool routing: pooled training and
// evaluation produce results bitwise-identical to the sequential path
// (same seeds -> same configurations), because every measured quantity is
// a deterministic work unit and parallel stages reduce in index order.

#include "core/Pipeline.h"
#include "registry/BenchmarkRegistry.h"
#include "serialize/ModelIO.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>

using namespace pbt;
using namespace pbt::core;

namespace {

struct RunOutput {
  TrainedSystem System;
  EvaluationResult Eval;
};

RunOutput runOnce(const runtime::TunableProgram &Program,
                  PipelineOptions Options, support::ThreadPool *Pool) {
  Options.Pool = Pool;
  RunOutput Out;
  Out.System = trainSystem(Program, Options);
  Out.Eval = evaluateSystem(Program, Out.System, Pool);
  return Out;
}

TEST(PipelineParallelTest, PooledTrainingMatchesSequential) {
  const registry::BenchmarkFactory &F =
      registry::BenchmarkRegistry::instance().get("binpacking");
  registry::ProgramPtr Program = F.makeProgram(0.15, F.defaultProgramSeed());
  PipelineOptions Options = F.defaultOptions(0.15);
  Options.L1.Tuner.PopulationSize = 8;
  Options.L1.Tuner.Generations = 4;

  support::ThreadPool Pool(4);
  RunOutput Seq = runOnce(*Program, Options, nullptr);
  RunOutput Par = runOnce(*Program, Options, &Pool);

  // Level 1: identical landmark configurations, representatives, tables.
  ASSERT_EQ(Seq.System.L1.Landmarks.size(), Par.System.L1.Landmarks.size());
  for (size_t I = 0; I != Seq.System.L1.Landmarks.size(); ++I)
    EXPECT_EQ(Seq.System.L1.Landmarks[I], Par.System.L1.Landmarks[I]) << I;
  EXPECT_EQ(Seq.System.L1.Representatives, Par.System.L1.Representatives);
  EXPECT_EQ(Seq.System.L1.Time.data(), Par.System.L1.Time.data());
  EXPECT_EQ(Seq.System.L1.Acc.data(), Par.System.L1.Acc.data());

  // Level 2: same classifier zoo outcome.
  EXPECT_EQ(Seq.System.L2.SelectedName, Par.System.L2.SelectedName);
  EXPECT_EQ(Seq.System.L2.TrainLabels, Par.System.L2.TrainLabels);
  ASSERT_EQ(Seq.System.L2.Candidates.size(), Par.System.L2.Candidates.size());
  for (size_t I = 0; I != Seq.System.L2.Candidates.size(); ++I) {
    EXPECT_EQ(Seq.System.L2.Candidates[I].Name,
              Par.System.L2.Candidates[I].Name);
    EXPECT_EQ(Seq.System.L2.Candidates[I].Objective,
              Par.System.L2.Candidates[I].Objective);
  }

  // Evaluation: identical summary numbers and per-input series.
  EXPECT_EQ(Seq.Eval.DynamicOracle, Par.Eval.DynamicOracle);
  EXPECT_EQ(Seq.Eval.TwoLevelWithFeat, Par.Eval.TwoLevelWithFeat);
  EXPECT_EQ(Seq.Eval.OneLevelWithFeat, Par.Eval.OneLevelWithFeat);
  EXPECT_EQ(Seq.Eval.TwoLevelSatisfaction, Par.Eval.TwoLevelSatisfaction);
  EXPECT_EQ(Seq.Eval.PerInputSpeedups, Par.Eval.PerInputSpeedups);
}

TEST(PipelineParallelTest, PooledLandmarkSweepMatchesSequential) {
  const registry::BenchmarkFactory &F =
      registry::BenchmarkRegistry::instance().get("sort2");
  registry::ProgramPtr Program = F.makeProgram(0.15, F.defaultProgramSeed());
  PipelineOptions Options = F.defaultOptions(0.15);
  Options.L1.NumLandmarks = 5;
  Options.L1.Tuner.PopulationSize = 8;
  Options.L1.Tuner.Generations = 3;

  TrainedSystem System = trainSystem(*Program, Options);
  std::vector<unsigned> Counts{1, 2, 4};
  support::ThreadPool Pool(3);
  std::vector<LandmarkSweepPoint> Seq =
      landmarkCountSweep(*Program, System, Counts, 12, 99, nullptr);
  std::vector<LandmarkSweepPoint> Par =
      landmarkCountSweep(*Program, System, Counts, 12, 99, &Pool);
  ASSERT_EQ(Seq.size(), Par.size());
  for (size_t I = 0; I != Seq.size(); ++I) {
    EXPECT_EQ(Seq[I].NumLandmarks, Par[I].NumLandmarks);
    EXPECT_EQ(Seq[I].Speedups.Mean, Par[I].Speedups.Mean);
    EXPECT_EQ(Seq[I].Speedups.Min, Par[I].Speedups.Min);
    EXPECT_EQ(Seq[I].Speedups.Max, Par[I].Speedups.Max);
    EXPECT_EQ(Seq[I].Speedups.Median, Par[I].Speedups.Median);
  }
}

// The columnar Dataset path's chunked fold x subset scheduling must be
// invisible in the trained artifact: training at 0 (no pool), 1, 2 and 8
// threads serializes to byte-identical model files.
TEST(PipelineParallelTest, ModelBytesInvariantAcrossThreadCounts) {
  const registry::BenchmarkFactory &F =
      registry::BenchmarkRegistry::instance().get("sort2");
  PipelineOptions Options = F.defaultOptions(0.15);
  Options.L1.Tuner.PopulationSize = 8;
  Options.L1.Tuner.Generations = 3;

  std::vector<std::string> Serialized;
  for (unsigned Threads : {0u, 1u, 2u, 8u}) {
    registry::ProgramPtr Program =
        F.makeProgram(0.15, F.defaultProgramSeed());
    std::optional<support::ThreadPool> Pool;
    PipelineOptions Opt = Options;
    if (Threads > 0) {
      Pool.emplace(Threads);
      Opt.Pool = &*Pool;
    } else {
      Opt.Pool = nullptr;
    }
    TrainedSystem System = trainSystem(*Program, Opt);
    serialize::TrainedModel Model = serialize::makeModel(
        "sort2", 0.15, F.defaultProgramSeed(), *Program, std::move(System));
    Serialized.push_back(serialize::serializeModel(Model));
  }
  for (size_t I = 1; I != Serialized.size(); ++I)
    EXPECT_EQ(Serialized[0], Serialized[I])
        << "thread-count " << (I == 1 ? 1 : I == 2 ? 2 : 8)
        << " diverged from the sequential bytes";
}

} // namespace

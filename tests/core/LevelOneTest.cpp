//===- tests/core/LevelOneTest.cpp -------------------------------------------=//

#include "benchmarks/BinPackingBenchmark.h"
#include "core/LevelOne.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace pbt;
using namespace pbt::core;

namespace {

/// BinPacking is the cheapest benchmark to drive Level 1 end to end.
class LevelOneTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    bench::BinPackingBenchmark::Options BO;
    BO.NumInputs = 40;
    BO.MinItems = 30;
    BO.MaxItems = 120;
    BO.Seed = 7;
    Program = new bench::BinPackingBenchmark(BO);
    for (size_t I = 0; I != 30; ++I)
      TrainRows.push_back(I);
    LevelOneOptions O;
    O.NumLandmarks = 5;
    O.Seed = 13;
    O.Tuner.PopulationSize = 8;
    O.Tuner.Generations = 6;
    Result = new LevelOneResult(runLevelOne(*Program, TrainRows, O));
  }
  static void TearDownTestSuite() {
    delete Result;
    delete Program;
    Result = nullptr;
    Program = nullptr;
    TrainRows.clear();
  }

  static bench::BinPackingBenchmark *Program;
  static std::vector<size_t> TrainRows;
  static LevelOneResult *Result;
};

bench::BinPackingBenchmark *LevelOneTest::Program = nullptr;
std::vector<size_t> LevelOneTest::TrainRows;
LevelOneResult *LevelOneTest::Result = nullptr;

TEST_F(LevelOneTest, FeatureTablesCoverAllInputsAndFeatures) {
  EXPECT_EQ(Result->Features.rows(), 40u);
  EXPECT_EQ(Result->Features.cols(), Program->numMLFeatures());
  EXPECT_EQ(Result->ExtractCosts.rows(), 40u);
  for (size_t I = 0; I != Result->ExtractCosts.rows(); ++I)
    for (size_t J = 0; J != Result->ExtractCosts.cols(); ++J)
      EXPECT_GT(Result->ExtractCosts.at(I, J), 0.0)
          << "every extraction does work";
}

TEST_F(LevelOneTest, ClusteringAssignsEveryTrainInput) {
  EXPECT_EQ(Result->Clusters.Assignment.size(), TrainRows.size());
  for (unsigned A : Result->Clusters.Assignment)
    EXPECT_LT(A, Result->Landmarks.size());
}

TEST_F(LevelOneTest, RepresentativesAreTrainInputs) {
  std::set<size_t> Train(TrainRows.begin(), TrainRows.end());
  for (size_t Rep : Result->Representatives)
    EXPECT_TRUE(Train.count(Rep)) << "representative must be a train input";
}

TEST_F(LevelOneTest, RepresentativeIsNearestToItsCentroid) {
  // For each cluster, no member is strictly closer to the centroid than
  // the chosen representative.
  linalg::Matrix TrainF(TrainRows.size(), Result->Features.cols());
  for (size_t I = 0; I != TrainRows.size(); ++I)
    for (size_t J = 0; J != Result->Features.cols(); ++J)
      TrainF.at(I, J) = Result->Features.at(TrainRows[I], J);
  linalg::Matrix Norm = Result->Norm.transform(TrainF);
  auto Dist2 = [&](size_t Pos, unsigned C) {
    double Sum = 0.0;
    for (size_t J = 0; J != Norm.cols(); ++J) {
      double D = Norm.at(Pos, J) - Result->Clusters.Centroids.at(C, J);
      Sum += D * D;
    }
    return Sum;
  };
  for (unsigned C = 0; C != Result->Landmarks.size(); ++C) {
    size_t RepPos = 0;
    for (size_t I = 0; I != TrainRows.size(); ++I)
      if (TrainRows[I] == Result->Representatives[C])
        RepPos = I;
    double RepDist = Dist2(RepPos, C);
    for (size_t I = 0; I != TrainRows.size(); ++I)
      if (Result->Clusters.Assignment[I] == C)
        EXPECT_GE(Dist2(I, C), RepDist - 1e-9);
  }
}

TEST_F(LevelOneTest, MeasurementTablesAreComplete) {
  EXPECT_EQ(Result->Time.rows(), 40u);
  EXPECT_EQ(Result->Time.cols(), 5u);
  for (size_t I = 0; I != 40; ++I)
    for (size_t K = 0; K != 5; ++K) {
      EXPECT_GT(Result->Time.at(I, K), 0.0);
      EXPECT_GT(Result->Acc.at(I, K), 0.0);
      EXPECT_LE(Result->Acc.at(I, K), 1.0 + 1e-9);
    }
}

TEST_F(LevelOneTest, MeasurementsMatchDirectRuns) {
  // Spot-check: the table must agree with re-running the program.
  for (size_t I : {size_t(0), size_t(17), size_t(39)})
    for (unsigned K = 0; K != 5; ++K) {
      runtime::RunResult R = Program->runOnce(I, Result->Landmarks[K]);
      EXPECT_DOUBLE_EQ(Result->Time.at(I, K), R.TimeUnits);
      EXPECT_DOUBLE_EQ(Result->Acc.at(I, K), R.Accuracy);
    }
}

TEST_F(LevelOneTest, ParallelAndSequentialAgree) {
  LevelOneOptions O;
  O.NumLandmarks = 3;
  O.Seed = 13;
  O.Tuner.PopulationSize = 6;
  O.Tuner.Generations = 4;
  LevelOneResult Seq = runLevelOne(*Program, TrainRows, O);
  support::ThreadPool Pool(4);
  O.Pool = &Pool;
  LevelOneResult Par = runLevelOne(*Program, TrainRows, O);
  EXPECT_EQ(Seq.Representatives, Par.Representatives);
  for (size_t K = 0; K != Seq.Landmarks.size(); ++K)
    EXPECT_EQ(Seq.Landmarks[K], Par.Landmarks[K]);
  for (size_t I = 0; I != Seq.Time.rows(); ++I)
    for (size_t K = 0; K != Seq.Time.cols(); ++K)
      EXPECT_DOUBLE_EQ(Seq.Time.at(I, K), Par.Time.at(I, K));
}

TEST_F(LevelOneTest, LandmarkCountClampedToTrainSize) {
  LevelOneOptions O;
  O.NumLandmarks = 1000;
  O.Seed = 5;
  O.Tuner.PopulationSize = 4;
  O.Tuner.Generations = 2;
  std::vector<size_t> FewRows{0, 1, 2};
  LevelOneResult R = runLevelOne(*Program, FewRows, O);
  EXPECT_LE(R.Landmarks.size(), 3u);
}

} // namespace

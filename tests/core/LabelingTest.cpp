//===- tests/core/LabelingTest.cpp -------------------------------------------=//

#include "core/Labeling.h"

#include <gtest/gtest.h>

using namespace pbt;
using namespace pbt::core;
using runtime::AccuracySpec;

namespace {

/// 3 inputs x 3 landmarks with handcrafted time/accuracy values.
struct Tables {
  linalg::Matrix Time{3, 3};
  linalg::Matrix Acc{3, 3};
};

Tables makeTables() {
  Tables T;
  // Times: row i has minimum at column i.
  double Times[3][3] = {{1, 5, 9}, {7, 2, 9}, {8, 6, 3}};
  // Accuracy: landmark 0 fails on input 0; all pass elsewhere.
  double Accs[3][3] = {{0.5, 0.99, 0.99}, {0.99, 0.99, 0.99},
                       {0.99, 0.99, 0.99}};
  for (size_t I = 0; I != 3; ++I)
    for (size_t J = 0; J != 3; ++J) {
      T.Time.at(I, J) = Times[I][J];
      T.Acc.at(I, J) = Accs[I][J];
    }
  return T;
}

TEST(LabelingTest, TimeOnlyPicksArgmin) {
  Tables T = makeTables();
  EXPECT_EQ(bestLandmark(T.Time, T.Acc, 0, std::nullopt), 0u);
  EXPECT_EQ(bestLandmark(T.Time, T.Acc, 1, std::nullopt), 1u);
  EXPECT_EQ(bestLandmark(T.Time, T.Acc, 2, std::nullopt), 2u);
}

TEST(LabelingTest, AccuracyRuleSkipsFailingLandmark) {
  Tables T = makeTables();
  AccuracySpec Spec{0.9, 0.95};
  // Input 0: landmark 0 is fastest but fails accuracy -> landmark 1.
  EXPECT_EQ(bestLandmark(T.Time, T.Acc, 0, Spec), 1u);
}

TEST(LabelingTest, FallsBackToMostAccurateWhenNoneMeets) {
  linalg::Matrix Time(1, 3), Acc(1, 3);
  Time.at(0, 0) = 1;
  Time.at(0, 1) = 2;
  Time.at(0, 2) = 3;
  Acc.at(0, 0) = 0.2;
  Acc.at(0, 1) = 0.8;
  Acc.at(0, 2) = 0.5;
  AccuracySpec Spec{0.9, 0.95};
  EXPECT_EQ(bestLandmark(Time, Acc, 0, Spec), 1u);
}

TEST(LabelingTest, FallbackTieBreaksByTime) {
  linalg::Matrix Time(1, 2), Acc(1, 2);
  Time.at(0, 0) = 9;
  Time.at(0, 1) = 2;
  Acc.at(0, 0) = 0.5;
  Acc.at(0, 1) = 0.5;
  AccuracySpec Spec{0.9, 0.95};
  EXPECT_EQ(bestLandmark(Time, Acc, 0, Spec), 1u);
}

TEST(LabelingTest, BestLandmarkWithinSubset) {
  Tables T = makeTables();
  EXPECT_EQ(bestLandmarkWithin(T.Time, T.Acc, 0, {1, 2}, std::nullopt), 1u);
  EXPECT_EQ(bestLandmarkWithin(T.Time, T.Acc, 2, {0, 1}, std::nullopt), 1u);
}

TEST(LabelingTest, LabelRowsMapsEveryRow) {
  Tables T = makeTables();
  std::vector<unsigned> L = labelRows(T.Time, T.Acc, {0, 1, 2}, std::nullopt);
  EXPECT_EQ(L, (std::vector<unsigned>{0, 1, 2}));
}

TEST(LabelingTest, SatisfactionCountsMeetingRows) {
  Tables T = makeTables();
  AccuracySpec Spec{0.9, 0.95};
  EXPECT_NEAR(satisfactionOf(T.Acc, {0, 1, 2}, 0, Spec), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(satisfactionOf(T.Acc, {0, 1, 2}, 1, Spec), 1.0);
  EXPECT_DOUBLE_EQ(satisfactionOf(T.Acc, {0, 1, 2}, 1, std::nullopt), 1.0);
}

TEST(LabelingTest, StaticOracleMinimisesTotalTimeWithoutAccuracy) {
  Tables T = makeTables();
  // Totals: L0 = 16, L1 = 13, L2 = 21.
  EXPECT_EQ(selectStaticOracle(T.Time, T.Acc, {0, 1, 2}, std::nullopt), 1u);
}

TEST(LabelingTest, StaticOracleRespectsSatisfactionThreshold) {
  Tables T = makeTables();
  AccuracySpec Spec{0.9, 0.95};
  // Landmark 0 fails on 1/3 of inputs (satisfaction 0.67 < 0.95); even
  // though its total time beats landmark 2, only 1 and 2 qualify.
  EXPECT_EQ(selectStaticOracle(T.Time, T.Acc, {0, 1, 2}, Spec), 1u);
}

TEST(LabelingTest, StaticOracleFallsBackToHighestSatisfaction) {
  linalg::Matrix Time(2, 2), Acc(2, 2);
  Time.at(0, 0) = 1;
  Time.at(0, 1) = 2;
  Time.at(1, 0) = 1;
  Time.at(1, 1) = 2;
  Acc.at(0, 0) = 0.0;
  Acc.at(0, 1) = 0.99;
  Acc.at(1, 0) = 0.0;
  Acc.at(1, 1) = 0.0;
  AccuracySpec Spec{0.9, 0.95};
  // Neither reaches 95% satisfaction; landmark 1 satisfies half, landmark
  // 0 none.
  EXPECT_EQ(selectStaticOracle(Time, Acc, {0, 1}, Spec), 1u);
}

} // namespace

//===- tests/core/TheoreticalModelTest.cpp -----------------------------------=//

#include "core/TheoreticalModel.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace pbt;
using namespace pbt::core;

namespace {

TEST(TheoreticalModelTest, ExtremesLoseNothing) {
  // p = 0: region too small to matter; p = 1: always sampled.
  for (unsigned K : {1u, 4u, 16u}) {
    EXPECT_DOUBLE_EQ(regionLossContribution(0.0, K), 0.0);
    EXPECT_DOUBLE_EQ(regionLossContribution(1.0, K), 0.0);
  }
}

TEST(TheoreticalModelTest, WorstCaseRegionSizeMaximisesLoss) {
  for (unsigned K : {1u, 2u, 5u, 9u, 30u}) {
    double PStar = worstCaseRegionSize(K);
    double LStar = regionLossContribution(PStar, K);
    for (double P = 0.01; P < 1.0; P += 0.01)
      EXPECT_LE(regionLossContribution(P, K), LStar + 1e-12)
          << "K=" << K << " P=" << P;
  }
}

TEST(TheoreticalModelTest, WorstCaseFormulaIsOneOverKPlusOne) {
  EXPECT_DOUBLE_EQ(worstCaseRegionSize(1), 0.5);
  EXPECT_DOUBLE_EQ(worstCaseRegionSize(9), 0.1);
}

TEST(TheoreticalModelTest, MoreConfigsLoseLess) {
  // At a fixed region size, sampling more landmarks shrinks the loss.
  double P = 0.2;
  double Prev = 1.0;
  for (unsigned K = 1; K <= 20; ++K) {
    double L = regionLossContribution(P, K);
    EXPECT_LT(L, Prev);
    Prev = L;
  }
}

TEST(TheoreticalModelTest, SpeedupFractionMonotoneAndSaturating) {
  double Prev = 0.0;
  for (unsigned K = 1; K <= 100; ++K) {
    double F = predictedSpeedupFraction(K);
    EXPECT_GT(F, Prev);
    EXPECT_LT(F, 1.0);
    Prev = F;
  }
  // The curve saturates toward 1 - 1/e ~ 0.632 (the paper's Figure 7b
  // flattens around the 70% gridline).
  EXPECT_NEAR(predictedSpeedupFraction(100), 1.0 - 1.0 / M_E, 5e-3);
  EXPECT_DOUBLE_EQ(predictedSpeedupFraction(1), 0.5);
}

TEST(TheoreticalModelTest, ExpectedLossWeightsBySpeedup) {
  // Two regions; the second carries all the speedup, so only it matters.
  std::vector<double> Sizes{0.5, 0.1};
  std::vector<double> Speedups{0.0, 10.0};
  double L = expectedSpeedupLoss(Sizes, Speedups, 2);
  EXPECT_NEAR(L, 0.9 * 0.9 * 0.1, 1e-12);
}

TEST(TheoreticalModelTest, ExpectedLossZeroWithoutSpeedups) {
  EXPECT_DOUBLE_EQ(expectedSpeedupLoss({}, {}, 3), 0.0);
}

TEST(TheoreticalModelTest, DiminishingReturnsBetweenTenAndThirty) {
  // The paper argues 10-30 landmarks suffice: the marginal gain from 10
  // to 30 landmarks is small compared to the gain from 1 to 10.
  double G1 = predictedSpeedupFraction(10) - predictedSpeedupFraction(1);
  double G2 = predictedSpeedupFraction(30) - predictedSpeedupFraction(10);
  EXPECT_GT(G1, 5.0 * G2);
}

} // namespace

//===- tests/store/StoreRecoveryTest.cpp -------------------------------------=//
//
// Deterministic crash recovery: each test arms one failpoint, drives the
// publish/promote protocol until the injected crash kills the "process"
// (FaultCrash), then reopens the directory with a fresh handle and
// asserts the store converged -- to the last durable epoch for crashes
// before the manifest, and FORWARD to the new epoch for a crash after
// the manifest named it Active (redo, never undo). The randomized wall
// in FaultWallTest covers the same points at volume with real models;
// here every window is pinned individually with legible assertions.
//
//===----------------------------------------------------------------------===//

#include "store/ModelStore.h"

#include "support/FaultInject.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include <unistd.h>

using namespace pbt;
using namespace pbt::store;
using support::FaultCrash;
using support::FaultInjector;
using support::FaultPoint;

namespace fs = std::filesystem;

namespace {

class StoreRecoveryTest : public ::testing::Test {
protected:
  void SetUp() override {
    FaultInjector::instance().reset();
    Dir = ::testing::TempDir() + "pbt-recovery-" +
          ::testing::UnitTest::GetInstance()->current_test_info()->name() +
          "-" + std::to_string(::getpid());
    fs::remove_all(Dir);
  }
  void TearDown() override { FaultInjector::instance().reset(); }

  /// Seeds the store with one promoted champion epoch and returns its
  /// number (always 1).
  uint64_t seedChampion(ModelStore &S) {
    EXPECT_TRUE(S.open().Ok);
    uint64_t E = 0;
    EXPECT_TRUE(S.publish(Champion, E).Ok);
    EXPECT_TRUE(S.promote(E).Ok);
    return E;
  }

  /// Reopens the directory with a fresh handle (the restart) and checks
  /// the invariant every recovery must uphold: CURRENT names a loadable
  /// epoch whose bytes round-trip exactly.
  ModelStore reopenAndVerify(uint64_t WantCurrent,
                             const std::string &WantText) {
    ModelStore S(Dir);
    EXPECT_TRUE(S.open().Ok) << S.open().Error;
    EXPECT_EQ(S.currentEpoch(), WantCurrent);
    VerifiedModel V;
    EXPECT_TRUE(loadCurrentVerified(Dir, V).Ok);
    EXPECT_EQ(V.Epoch, WantCurrent);
    EXPECT_EQ(V.Text, WantText);
    return S;
  }

  bool dirHasEntryWithPrefix(const std::string &Prefix) {
    for (const fs::directory_entry &E : fs::directory_iterator(Dir))
      if (E.path().filename().string().rfind(Prefix, 0) == 0)
        return true;
    return false;
  }

  std::string Dir;
  const std::string Champion = "the champion model image\n";
  const std::string Candidate = "the candidate model image, longer\n";
};

TEST_F(StoreRecoveryTest, TornWriteLeavesATempThatRecoveryRemoves) {
  {
    ModelStore S(Dir);
    seedChampion(S);
    FaultInjector::instance().arm(FaultPoint::TornWrite);
    uint64_t E = 0;
    EXPECT_THROW(S.publish(Candidate, E), FaultCrash);
  }
  // The torn prefix is on disk, invisible to readers (it is a .tmp).
  EXPECT_TRUE(dirHasEntryWithPrefix(".tmp-"));
  VerifiedModel V;
  ASSERT_TRUE(loadCurrentVerified(Dir, V).Ok);
  EXPECT_EQ(V.Text, Champion);

  ModelStore R = reopenAndVerify(1, Champion);
  EXPECT_GE(R.recovery().TempFilesRemoved, 1u);
  EXPECT_FALSE(dirHasEntryWithPrefix(".tmp-"));
  EXPECT_EQ(R.records().size(), 1u); // the candidate never existed
}

TEST_F(StoreRecoveryTest, CrashBeforeRenameLeavesATempThatRecoveryRemoves) {
  {
    ModelStore S(Dir);
    seedChampion(S);
    FaultInjector::instance().arm(FaultPoint::CrashBeforeRename);
    uint64_t E = 0;
    EXPECT_THROW(S.publish(Candidate, E), FaultCrash);
  }
  EXPECT_TRUE(dirHasEntryWithPrefix(".tmp-"));

  ModelStore R = reopenAndVerify(1, Champion);
  EXPECT_GE(R.recovery().TempFilesRemoved, 1u);
  EXPECT_EQ(R.records().size(), 1u);
}

TEST_F(StoreRecoveryTest, CrashBeforeManifestOrphansTheImage) {
  {
    ModelStore S(Dir);
    seedChampion(S);
    FaultInjector::instance().arm(FaultPoint::CrashBeforeManifest);
    uint64_t E = 0;
    EXPECT_THROW(S.publish(Candidate, E), FaultCrash);
  }
  // The image renamed into place but no manifest record references it:
  // it was never durably published.
  EXPECT_TRUE(fs::exists(Dir + "/" + imageFileName(2)));

  ModelStore R = reopenAndVerify(1, Champion);
  EXPECT_EQ(R.recovery().OrphanImagesRemoved, 1u);
  EXPECT_FALSE(fs::exists(Dir + "/" + imageFileName(2)));
  EXPECT_EQ(R.record(2), nullptr);
}

TEST_F(StoreRecoveryTest, CrashBetweenManifestAndCurrentRollsForward) {
  {
    ModelStore S(Dir);
    seedChampion(S);
    uint64_t E = 0;
    ASSERT_TRUE(S.publish(Candidate, E).Ok);
    ASSERT_TRUE(S.setState(E, EpochState::Canary).Ok);
    FaultInjector::instance().arm(
        FaultPoint::CrashBetweenManifestAndCurrent);
    EXPECT_THROW(S.promote(E), FaultCrash);
  }
  // The crash window: MANIFEST already names epoch 2 Active, CURRENT
  // still says 1.
  uint64_t Ptr = 0;
  ASSERT_TRUE(readCurrentPointer(Dir, Ptr).Ok);
  EXPECT_EQ(Ptr, 1u);

  // Recovery REDOES the promotion -- the durable manifest decision wins.
  ModelStore R = reopenAndVerify(2, Candidate);
  EXPECT_TRUE(R.recovery().CurrentRepaired);
  EXPECT_EQ(R.record(2)->State, EpochState::Active);
  EXPECT_EQ(R.record(1)->State, EpochState::Retired);
}

TEST_F(StoreRecoveryTest, CorruptImageIsQuarantinedAndDropped) {
  {
    ModelStore S(Dir);
    seedChampion(S);
    FaultInjector::instance().arm(FaultPoint::CorruptChecksum);
    uint64_t E = 0;
    // Publish "succeeds" -- the rot is silent, exactly like real media
    // corruption after a clean publish.
    ASSERT_TRUE(S.publish(Candidate, E).Ok);
  }
  std::string Text;
  EXPECT_FALSE(loadEpochVerified(Dir, 2, Text).Ok); // checksum catches it

  ModelStore R = reopenAndVerify(1, Champion);
  EXPECT_EQ(R.recovery().CorruptImagesQuarantined, 1u);
  EXPECT_EQ(R.record(2), nullptr);
  EXPECT_TRUE(dirHasEntryWithPrefix(".bad-")); // kept for forensics
  EXPECT_FALSE(fs::exists(Dir + "/" + imageFileName(2)));
}

TEST_F(StoreRecoveryTest, MidRolloutEpochsAreDemotedOnRestart) {
  {
    ModelStore S(Dir);
    seedChampion(S);
    uint64_t E = 0;
    ASSERT_TRUE(S.publish(Candidate, E).Ok);
    ASSERT_TRUE(S.setState(E, EpochState::Canary).Ok);
    // The fleet dies here with a canary in flight (no failpoint needed:
    // dropping the handle IS the kill).
  }
  ModelStore R = reopenAndVerify(1, Champion);
  EXPECT_EQ(R.recovery().InFlightDemoted, 1u);
  EXPECT_EQ(R.record(2)->State, EpochState::RolledBack);
}

TEST_F(StoreRecoveryTest, MissingCurrentIsRebuiltFromTheManifest) {
  {
    ModelStore S(Dir);
    seedChampion(S);
  }
  fs::remove(Dir + "/CURRENT");

  ModelStore R = reopenAndVerify(1, Champion);
  EXPECT_TRUE(R.recovery().CurrentRepaired);
}

TEST_F(StoreRecoveryTest, CurrentAtADeadEpochIsDropped) {
  {
    ModelStore S(Dir);
    ASSERT_TRUE(S.open().Ok);
    uint64_t E = 0;
    ASSERT_TRUE(S.publish(Champion, E).Ok);
    ASSERT_TRUE(S.rollback(E).Ok); // nothing Active anywhere
  }
  {
    std::ofstream Out(Dir + "/CURRENT", std::ios::binary);
    Out << "epoch 99\n"; // hand edit pointing at a ghost
  }
  ModelStore R(Dir);
  ASSERT_TRUE(R.open().Ok);
  EXPECT_TRUE(R.recovery().CurrentRepaired);
  EXPECT_EQ(R.currentEpoch(), 0u);
  EXPECT_FALSE(fs::exists(Dir + "/CURRENT"));
}

TEST_F(StoreRecoveryTest, RecoveryIsIdempotent) {
  {
    ModelStore S(Dir);
    seedChampion(S);
    uint64_t E = 0;
    ASSERT_TRUE(S.publish(Candidate, E).Ok);
    FaultInjector::instance().arm(
        FaultPoint::CrashBetweenManifestAndCurrent);
    EXPECT_THROW(S.promote(E), FaultCrash);
  }
  { ModelStore R1(Dir); ASSERT_TRUE(R1.open().Ok); }
  // A second restart finds nothing left to repair.
  ModelStore R2(Dir);
  ASSERT_TRUE(R2.open().Ok);
  EXPECT_EQ(R2.recovery().TempFilesRemoved, 0u);
  EXPECT_EQ(R2.recovery().OrphanImagesRemoved, 0u);
  EXPECT_EQ(R2.recovery().CorruptImagesQuarantined, 0u);
  EXPECT_EQ(R2.recovery().InFlightDemoted, 0u);
  EXPECT_FALSE(R2.recovery().CurrentRepaired);
  EXPECT_EQ(R2.currentEpoch(), 2u);
}

} // namespace

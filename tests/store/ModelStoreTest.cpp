//===- tests/store/ModelStoreTest.cpp ----------------------------------------=//
//
// The crash-safe store's happy paths: publish/state/promote/rollback/gc
// through the single-writer handle, and the stateless reader functions a
// serving replica uses. The store is content-agnostic (it durably moves
// bytes; serialize/ owns their meaning), so these tests use arbitrary
// text images -- the recovery and fault-wall tests feed it real models.
//
//===----------------------------------------------------------------------===//

#include "store/ModelStore.h"

#include "support/FaultInject.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include <unistd.h>

using namespace pbt;
using namespace pbt::store;

namespace {

/// A fresh, empty directory under the test temp root.
std::string freshDir(const std::string &Name) {
  std::string Dir = ::testing::TempDir() + "pbt-store-" + Name + "-" +
                    std::to_string(::getpid());
  std::filesystem::remove_all(Dir);
  return Dir;
}

class ModelStoreTest : public ::testing::Test {
protected:
  void SetUp() override { support::FaultInjector::instance().reset(); }
  void TearDown() override { support::FaultInjector::instance().reset(); }
};

TEST_F(ModelStoreTest, ChecksumMatchesKnownFnv1aVectors) {
  // Published FNV-1a 64 test vectors.
  EXPECT_EQ(fnv1a64("", 0), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a", 1), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar", 6), 0x85944171f73967e8ull);
}

TEST_F(ModelStoreTest, ImageFileNamesAreZeroPadded) {
  EXPECT_EQ(imageFileName(1), "epoch-000001.pbt");
  EXPECT_EQ(imageFileName(123456), "epoch-123456.pbt");
}

TEST_F(ModelStoreTest, StateNamesRoundTrip) {
  for (unsigned I = 0; I <= static_cast<unsigned>(EpochState::RolledBack);
       ++I) {
    EpochState S = static_cast<EpochState>(I), Back;
    ASSERT_TRUE(parseEpochState(epochStateName(S), Back));
    EXPECT_EQ(Back, S);
  }
  EpochState Ignored;
  EXPECT_FALSE(parseEpochState("promoted", Ignored));
}

TEST_F(ModelStoreTest, OpenCreatesAnEmptyStore) {
  std::string Dir = freshDir("empty");
  ModelStore S(Dir);
  ASSERT_TRUE(S.open().Ok) << S.open().Error;
  EXPECT_EQ(S.currentEpoch(), 0u);
  EXPECT_TRUE(S.records().empty());

  ReaderSnapshot Snap;
  ASSERT_TRUE(readSnapshot(Dir, Snap).Ok);
  EXPECT_EQ(Snap.CurrentEpoch, 0u);
  EXPECT_TRUE(Snap.Records.empty());

  uint64_t Ptr = 99;
  ASSERT_TRUE(readCurrentPointer(Dir, Ptr).Ok);
  EXPECT_EQ(Ptr, 0u);

  VerifiedModel V;
  EXPECT_FALSE(loadCurrentVerified(Dir, V).Ok); // nothing promoted yet
}

TEST_F(ModelStoreTest, OperationsRequireOpen) {
  ModelStore S(freshDir("unopened"));
  uint64_t E = 0;
  EXPECT_FALSE(S.publish("model", E).Ok);
  EXPECT_FALSE(S.promote(1).Ok);
  EXPECT_FALSE(S.setState(1, EpochState::Canary).Ok);
  EXPECT_FALSE(S.gc(1).Ok);
}

TEST_F(ModelStoreTest, PublishPromoteRoundTripsByteIdentically) {
  std::string Dir = freshDir("roundtrip");
  const std::string Image = "choice 1\nweights 0.25 0.5\nblob \x01\x02\x7f\n";
  ModelStore S(Dir);
  ASSERT_TRUE(S.open().Ok);

  uint64_t Epoch = 0;
  ASSERT_TRUE(S.publish(Image, Epoch).Ok);
  EXPECT_EQ(Epoch, 1u);
  ASSERT_NE(S.record(1), nullptr);
  EXPECT_EQ(S.record(1)->State, EpochState::Published);
  EXPECT_EQ(S.record(1)->Size, Image.size());
  EXPECT_EQ(S.currentEpoch(), 0u); // published != promoted

  ASSERT_TRUE(S.setState(1, EpochState::Canary).Ok);
  ASSERT_TRUE(S.promote(1).Ok);
  EXPECT_EQ(S.currentEpoch(), 1u);
  EXPECT_EQ(S.record(1)->State, EpochState::Active);

  // Writer-side and both reader-side load paths, all byte-identical.
  std::string Text;
  ASSERT_TRUE(S.loadVerified(1, Text).Ok);
  EXPECT_EQ(Text, Image);
  Text.clear();
  ASSERT_TRUE(loadEpochVerified(Dir, 1, Text).Ok);
  EXPECT_EQ(Text, Image);
  VerifiedModel V;
  ASSERT_TRUE(loadCurrentVerified(Dir, V).Ok);
  EXPECT_EQ(V.Epoch, 1u);
  EXPECT_EQ(V.Text, Image);
  EXPECT_EQ(V.RejectedLoads, 0u);

  uint64_t Ptr = 0;
  ASSERT_TRUE(readCurrentPointer(Dir, Ptr).Ok);
  EXPECT_EQ(Ptr, 1u);
}

TEST_F(ModelStoreTest, EmptyImagesAreRefused) {
  ModelStore S(freshDir("emptyimage"));
  ASSERT_TRUE(S.open().Ok);
  uint64_t E = 0;
  EXPECT_FALSE(S.publish("", E).Ok);
  EXPECT_TRUE(S.records().empty());
}

TEST_F(ModelStoreTest, SecondPromoteRetiresTheFirst) {
  std::string Dir = freshDir("retire");
  ModelStore S(Dir);
  ASSERT_TRUE(S.open().Ok);
  uint64_t E1 = 0, E2 = 0;
  ASSERT_TRUE(S.publish("one", E1).Ok);
  ASSERT_TRUE(S.promote(E1).Ok);
  ASSERT_TRUE(S.publish("two", E2).Ok);
  EXPECT_EQ(E2, 2u);
  ASSERT_TRUE(S.promote(E2).Ok);

  EXPECT_EQ(S.currentEpoch(), 2u);
  EXPECT_EQ(S.record(E1)->State, EpochState::Retired);
  EXPECT_EQ(S.record(E2)->State, EpochState::Active);
}

TEST_F(ModelStoreTest, RollbackLeavesCurrentOnTheChampion) {
  std::string Dir = freshDir("rollback");
  ModelStore S(Dir);
  ASSERT_TRUE(S.open().Ok);
  uint64_t E1 = 0, E2 = 0;
  ASSERT_TRUE(S.publish("champion", E1).Ok);
  ASSERT_TRUE(S.promote(E1).Ok);
  ASSERT_TRUE(S.publish("challenger", E2).Ok);
  ASSERT_TRUE(S.setState(E2, EpochState::Canary).Ok);
  ASSERT_TRUE(S.rollback(E2).Ok);

  EXPECT_EQ(S.currentEpoch(), E1);
  EXPECT_EQ(S.record(E2)->State, EpochState::RolledBack);
  VerifiedModel V;
  ASSERT_TRUE(loadCurrentVerified(Dir, V).Ok);
  EXPECT_EQ(V.Text, "champion");
}

TEST_F(ModelStoreTest, GcKeepsActiveAndTheNewestFinished) {
  std::string Dir = freshDir("gc");
  ModelStore S(Dir);
  ASSERT_TRUE(S.open().Ok);
  // Epochs 1..5 promoted in turn: 1..4 end Retired, 5 Active.
  for (int I = 1; I <= 5; ++I) {
    uint64_t E = 0;
    ASSERT_TRUE(S.publish("image " + std::to_string(I), E).Ok);
    ASSERT_TRUE(S.promote(E).Ok);
  }
  ASSERT_TRUE(S.gc(/*KeepFinished=*/2).Ok);

  EXPECT_EQ(S.record(1), nullptr);
  EXPECT_EQ(S.record(2), nullptr);
  ASSERT_NE(S.record(3), nullptr); // the two newest finished survive
  ASSERT_NE(S.record(4), nullptr);
  ASSERT_NE(S.record(5), nullptr); // Active is never collected
  EXPECT_FALSE(std::filesystem::exists(Dir + "/" + imageFileName(1)));
  EXPECT_TRUE(std::filesystem::exists(Dir + "/" + imageFileName(3)));

  // The collected epochs are gone for readers too.
  std::string Text;
  EXPECT_FALSE(loadEpochVerified(Dir, 1, Text).Ok);
  EXPECT_TRUE(loadEpochVerified(Dir, 4, Text).Ok);
}

TEST_F(ModelStoreTest, FailingFsyncPublishesNothingDurable) {
  std::string Dir = freshDir("fsyncfail");
  ModelStore S(Dir);
  ASSERT_TRUE(S.open().Ok);
  uint64_t E1 = 0;
  ASSERT_TRUE(S.publish("good", E1).Ok);
  ASSERT_TRUE(S.promote(E1).Ok);

  support::FaultInjector::instance().arm(support::FaultPoint::FsyncFail);
  uint64_t E2 = 0;
  EXPECT_FALSE(S.publish("never lands", E2).Ok);
  support::FaultInjector::instance().reset();

  EXPECT_EQ(S.records().size(), 1u);
  ReaderSnapshot Snap;
  ASSERT_TRUE(readSnapshot(Dir, Snap).Ok);
  EXPECT_EQ(Snap.Records.size(), 1u);
  EXPECT_EQ(Snap.CurrentEpoch, E1);
}

TEST_F(ModelStoreTest, ReadersFallBackPastACorruptCurrentImage) {
  std::string Dir = freshDir("fallback");
  ModelStore S(Dir);
  ASSERT_TRUE(S.open().Ok);
  uint64_t E1 = 0, E2 = 0;
  ASSERT_TRUE(S.publish("old good image", E1).Ok);
  ASSERT_TRUE(S.promote(E1).Ok);
  ASSERT_TRUE(S.publish("new good image", E2).Ok);
  ASSERT_TRUE(S.promote(E2).Ok);

  // Rot the CURRENT epoch's bytes behind the manifest's checksum.
  {
    std::ofstream Out(Dir + "/" + imageFileName(E2), std::ios::binary);
    Out << "new GARBAGE img"; // same length, different bytes
  }

  // Exact-epoch load (the canary path) must refuse outright...
  std::string Text;
  EXPECT_FALSE(loadEpochVerified(Dir, E2, Text).Ok);
  // ...while the replica path falls back to the newest good epoch and
  // reports the rejection as a prevented torn read.
  VerifiedModel V;
  ASSERT_TRUE(loadCurrentVerified(Dir, V).Ok);
  EXPECT_EQ(V.Epoch, E1);
  EXPECT_EQ(V.Text, "old good image");
  EXPECT_GE(V.RejectedLoads, 1u);
}

TEST_F(ModelStoreTest, UnknownEpochLoadsFail) {
  std::string Dir = freshDir("unknown");
  ModelStore S(Dir);
  ASSERT_TRUE(S.open().Ok);
  std::string Text;
  EXPECT_FALSE(S.loadVerified(7, Text).Ok);
  EXPECT_FALSE(loadEpochVerified(Dir, 7, Text).Ok);
}

} // namespace

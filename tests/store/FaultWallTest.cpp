//===- tests/store/FaultWallTest.cpp -----------------------------------------=//
//
// The randomized kill-during-publish wall: hundreds of staged rollouts
// of a real trained model through a RolloutController fleet, each cycle
// arming one randomly chosen failpoint at a random hit. Crash-class
// triggers kill the fleet mid-protocol; the wall restarts it from the
// store like a supervisor and requires resume() to succeed every time.
// The safety property under test: across every injected crash and
// corruption, no replica EVER serves decisions that diverge from the
// golden decisions its epoch produced the first time it served -- a
// torn read that reached serving would show up exactly there.
//
// StoreRecoveryTest pins each crash window individually; this wall is
// the volume/interleaving coverage over the same protocol (the ISSUE's
// ">= 200 injected points, zero torn reads" acceptance gate).
//
//===----------------------------------------------------------------------===//

#include "rollout/RolloutController.h"

#include "core/Pipeline.h"
#include "registry/BenchmarkRegistry.h"
#include "runtime/PredictionService.h"
#include "serialize/ModelIO.h"
#include "store/ModelStore.h"
#include "support/FaultInject.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

using namespace pbt;
using rollout::RolloutController;
using support::FaultCrash;
using support::FaultInjector;
using support::FaultPoint;

namespace {

constexpr double kScale = 0.1;

/// The sort1 model this wall publishes over and over, trained once per
/// process (the AdaptiveServiceTest idiom).
const std::string &modelBytes() {
  static const std::string Bytes = [] {
    const registry::BenchmarkFactory &F =
        registry::BenchmarkRegistry::instance().get("sort1");
    registry::ProgramPtr P = F.makeProgram(kScale, F.defaultProgramSeed());
    core::TrainedSystem Sys = core::trainSystem(*P, F.defaultOptions(kScale));
    serialize::TrainedModel M = serialize::makeModel(
        "sort1", kScale, F.defaultProgramSeed(), *P, std::move(Sys));
    M.System.Data.reset();
    return serialize::serializeModel(M);
  }();
  return Bytes;
}

serialize::TrainedModel cloneModel(const std::string &Bytes) {
  serialize::TrainedModel M;
  EXPECT_TRUE(serialize::loadModel(Bytes, M).Ok);
  return M;
}

TEST(FaultWallTest, RandomizedKillDuringPublishConvergesEveryTime) {
  const registry::BenchmarkFactory &F =
      registry::BenchmarkRegistry::instance().get("sort1");
  registry::ProgramPtr Program =
      F.makeProgram(kScale, F.defaultProgramSeed());

  std::string Dir = ::testing::TempDir() + "pbt-fault-wall-" +
                    std::to_string(::getpid());
  std::filesystem::remove_all(Dir);

  rollout::RolloutOptions RO;
  RO.Replicas = 2;     // canary + one follower is enough fleet
  RO.ShadowSample = 8; // keep per-cycle scoring cheap; volume is the point
  RO.KeepFinished = 3; // keep gc busy reclaiming finished epochs

  auto Ctl = std::make_unique<RolloutController>(*Program, Dir, RO);
  ASSERT_TRUE(Ctl->start(cloneModel(modelBytes())).Ok);

  // Golden decisions: first time an epoch serves anywhere, its probe
  // choices are the truth; every later sighting must reproduce them.
  std::vector<size_t> Probe;
  for (size_t I = 0; I != std::min<size_t>(16, Program->numInputs()); ++I)
    Probe.push_back(I);
  std::map<uint64_t, std::vector<unsigned>> Golden;
  auto checkGolden = [&](RolloutController &C) {
    for (size_t I = 0; I != C.replicaCount(); ++I) {
      rollout::Replica &R = C.replica(I);
      if (!R.serving())
        continue;
      std::vector<unsigned> Choices;
      for (size_t Input : Probe)
        Choices.push_back(R.service().decide(Input).Landmark);
      auto It = Golden.find(R.epoch());
      if (It == Golden.end())
        Golden.emplace(R.epoch(), std::move(Choices));
      else
        ASSERT_EQ(It->second, Choices)
            << "replica " << I << " diverged from golden on epoch "
            << R.epoch() << " -- a torn read reached serving";
    }
  };
  checkGolden(*Ctl);

  const FaultPoint CrashPoints[] = {
      FaultPoint::TornWrite,
      FaultPoint::CrashBeforeRename,
      FaultPoint::CrashBeforeManifest,
      FaultPoint::CrashBetweenManifestAndCurrent,
  };
  const FaultPoint DegradePoints[] = {
      FaultPoint::CorruptChecksum,
      FaultPoint::FsyncFail,
      FaultPoint::FsyncSlow,
  };

  support::Rng WallRng(0xFA17AB1E);
  FaultInjector &Inj = FaultInjector::instance();
  Inj.reset();

  auto drainTriggered = [&Inj] {
    uint64_t N = 0;
    for (unsigned P = 0; P != support::kNumFaultPoints; ++P)
      N += Inj.triggered(static_cast<FaultPoint>(P));
    Inj.reset();
    return N;
  };

  uint64_t Injected = 0, Crashes = 0, Recoveries = 0;
  unsigned Cycle = 0;
  const uint64_t WantInjected = 200;
  const unsigned MaxCycles = 600; // safety valve, never the budget

  for (; Injected < WantInjected && Cycle != MaxCycles; ++Cycle) {
    serialize::TrainedModel Candidate = cloneModel(modelBytes());
    // Every third candidate is degraded (landmark-rotated) so rollback
    // interleaves with promotion in the crash schedule.
    if (Cycle % 3 == 2 && Candidate.System.L1.Landmarks.size() > 1)
      std::rotate(Candidate.System.L1.Landmarks.begin(),
                  Candidate.System.L1.Landmarks.begin() + 1,
                  Candidate.System.L1.Landmarks.end());

    // Crash points arm at hit 0 (their site is reached at most once per
    // cycle); fsync-class points get a random hit so the same fault
    // lands on the image, manifest, or CURRENT write.
    if (WallRng.index(2) == 0)
      Inj.arm(CrashPoints[WallRng.index(std::size(CrashPoints))], 0);
    else
      Inj.arm(DegradePoints[WallRng.index(std::size(DegradePoints))],
              WallRng.index(3));

    RolloutController::CycleReport Report;
    try {
      serialize::LoadStatus St = Ctl->rollout(std::move(Candidate), Report);
      (void)St; // a refused rollout (injected fsync failure) is fine
    } catch (const FaultCrash &) {
      ++Crashes;
      Injected += drainTriggered();
      // The fleet died mid-protocol. Restart from the directory exactly
      // as the crash left it; resume must always find durable truth.
      Ctl = std::make_unique<RolloutController>(*Program, Dir, RO);
      ASSERT_TRUE(Ctl->resume().Ok)
          << "recovery failed after injected crash, cycle " << Cycle;
      ++Recoveries;
      checkGolden(*Ctl);
      continue;
    }
    Injected += drainTriggered();
    checkGolden(*Ctl);
  }
  Inj.reset();

  EXPECT_GE(Injected, WantInjected)
      << "wall exhausted " << MaxCycles << " cycles";
  EXPECT_EQ(Crashes, Recoveries);
  EXPECT_GT(Crashes, 0u) << "the schedule never crashed the fleet";
  EXPECT_GT(Ctl->currentEpoch(), 1u) << "no rollout ever promoted";

  // Torn reads were prevented (checksums rejected images), never served
  // (checkGolden would have failed above).
  uint64_t TornPrevented = 0;
  for (size_t I = 0; I != Ctl->replicaCount(); ++I)
    TornPrevented += Ctl->replica(I).tornReadsPrevented();
  // Not asserted > 0: whether a *reader* ever raced a bad image depends
  // on the schedule; the invariant is that serving never diverged.
  (void)TornPrevented;

  std::filesystem::remove_all(Dir);
}

} // namespace

//===- tests/streams/WorkloadStreamTest.cpp ----------------------------------=//
//
// The nonstationary traffic generator: pools must partition the universe
// at the drift-key median, every schedule must emit its documented
// mixture weights, and the materialised request sequence must be a pure
// function of (universe, options) -- the reproducibility the adaptive
// serving tests stand on. MixedStream on top: the multi-tenant
// interleaving must be seed-deterministic, preserve each tenant's own
// drift schedule as its global-order subsequence, honor draw weights,
// and reject malformed tenant lists.
//
//===----------------------------------------------------------------------===//

#include "streams/WorkloadStream.h"

#include "registry/BenchmarkRegistry.h"
#include "support/Cost.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <stdexcept>

using namespace pbt;
using namespace pbt::streams;

namespace {

registry::ProgramPtr makeUniverse() {
  const registry::BenchmarkFactory &F =
      registry::BenchmarkRegistry::instance().get("sort1");
  return F.makeProgram(0.2, F.defaultProgramSeed());
}

TEST(WorkloadStreamTest, PoolsPartitionTheUniverseAtTheKeyMedian) {
  registry::ProgramPtr U = makeUniverse();
  WorkloadStreamOptions O;
  O.Requests = 10;
  O.KeyProperty = 2;
  WorkloadStream S(*U, O);

  EXPECT_EQ(S.basePool().size() + S.shiftedPool().size(), U->numInputs());
  std::set<size_t> All(S.basePool().begin(), S.basePool().end());
  All.insert(S.shiftedPool().begin(), S.shiftedPool().end());
  EXPECT_EQ(All.size(), U->numInputs()) << "pools overlap or drop inputs";

  double MaxBase = -1e300, MinShifted = 1e300;
  for (size_t I : S.basePool())
    MaxBase = std::max(MaxBase, S.keyOf(I));
  for (size_t I : S.shiftedPool())
    MinShifted = std::min(MinShifted, S.keyOf(I));
  EXPECT_LE(MaxBase, MinShifted) << "pools are not split by the key";

  // The key really is the declared feature probe.
  size_t Probe = S.basePool().front();
  support::CostCounter C;
  EXPECT_EQ(S.keyOf(Probe), U->extractFeature(Probe, 2, 0, C));
}

TEST(WorkloadStreamTest, SequencesAreSeedDeterministic) {
  registry::ProgramPtr U = makeUniverse();
  WorkloadStreamOptions O;
  O.Requests = 500;
  O.Seed = 42;
  WorkloadStream A(*U, O), B(*U, O);
  EXPECT_EQ(A.sequence(), B.sequence());

  O.Seed = 43;
  WorkloadStream C(*U, O);
  EXPECT_NE(C.sequence(), A.sequence());
  EXPECT_EQ(A.length(), 500u);
}

TEST(WorkloadStreamTest, AbruptScheduleSwitchesPoolsExactlyOnce) {
  registry::ProgramPtr U = makeUniverse();
  WorkloadStreamOptions O;
  O.Kind = Schedule::Abrupt;
  O.Requests = 400;
  O.SwitchFraction = 0.25;
  WorkloadStream S(*U, O);

  EXPECT_EQ(S.firstShiftTick(), 100u);
  std::set<size_t> Base(S.basePool().begin(), S.basePool().end());
  for (size_t T = 0; T != S.length(); ++T) {
    bool InBase = Base.count(S.inputAt(T)) != 0;
    EXPECT_EQ(InBase, T < 100) << "tick " << T;
    EXPECT_EQ(S.mixtureWeight(T), T < 100 ? 0.0 : 1.0);
  }
}

TEST(WorkloadStreamTest, RampScheduleMigratesGradually) {
  registry::ProgramPtr U = makeUniverse();
  WorkloadStreamOptions O;
  O.Kind = Schedule::Ramp;
  O.Requests = 1000;
  WorkloadStream S(*U, O);

  EXPECT_EQ(S.mixtureWeight(0), 0.0);
  EXPECT_EQ(S.mixtureWeight(999), 1.0);
  EXPECT_NEAR(S.mixtureWeight(500), 0.5, 1e-3);

  // Early requests come (almost) only from the base pool, late ones
  // (almost) only from the shifted pool.
  std::set<size_t> Base(S.basePool().begin(), S.basePool().end());
  size_t EarlyShifted = 0, LateShifted = 0;
  for (size_t T = 0; T != 200; ++T)
    EarlyShifted += Base.count(S.inputAt(T)) == 0;
  for (size_t T = 800; T != 1000; ++T)
    LateShifted += Base.count(S.inputAt(T)) == 0;
  EXPECT_LT(EarlyShifted, 40u);
  EXPECT_GT(LateShifted, 160u);
}

TEST(WorkloadStreamTest, PeriodicScheduleAlternatesRegimes) {
  registry::ProgramPtr U = makeUniverse();
  WorkloadStreamOptions O;
  O.Kind = Schedule::Periodic;
  O.Requests = 400;
  O.Period = 50;
  WorkloadStream S(*U, O);

  for (size_t T = 0; T != 400; ++T) {
    double W = (T / 50) % 2 == 0 ? 0.0 : 1.0;
    ASSERT_EQ(S.mixtureWeight(T), W) << "tick " << T;
  }
  EXPECT_EQ(S.firstShiftTick(), 50u);
}

TEST(WorkloadStreamTest, RejectsBadOptions) {
  registry::ProgramPtr U = makeUniverse();
  WorkloadStreamOptions O;
  O.KeyProperty = 99;
  EXPECT_THROW(WorkloadStream(*U, O), std::invalid_argument);
  O.KeyProperty = 0;
  O.KeyLevel = 99;
  EXPECT_THROW(WorkloadStream(*U, O), std::invalid_argument);
  O.KeyLevel = 0;
  O.Requests = 0;
  EXPECT_THROW(WorkloadStream(*U, O), std::invalid_argument);
}

//===----------------------------------------------------------------------===//
// MixedStream: the multi-tenant interleaving
//===----------------------------------------------------------------------===//

/// Three tenants over two distinct universes with rotated schedules --
/// the smallest shape exercising per-tenant drift inside one mix.
struct MixFixture {
  registry::ProgramPtr SortU, ClusterU;
  std::unique_ptr<WorkloadStream> A, B, C;
  std::vector<MixedTenantSpec> Specs;

  MixFixture() {
    SortU = makeUniverse();
    const registry::BenchmarkFactory &F =
        registry::BenchmarkRegistry::instance().get("clustering1");
    ClusterU = F.makeProgram(0.2, F.defaultProgramSeed());
    WorkloadStreamOptions O;
    O.Requests = 300;
    O.Kind = Schedule::Abrupt;
    O.Seed = 11;
    A = std::make_unique<WorkloadStream>(*SortU, O);
    O.Kind = Schedule::Ramp;
    O.Seed = 22;
    B = std::make_unique<WorkloadStream>(*ClusterU, O);
    O.Kind = Schedule::Periodic;
    O.Seed = 33;
    C = std::make_unique<WorkloadStream>(*SortU, O);
    Specs = {{"sort-a", A.get(), 1.0},
             {"cluster-b", B.get(), 1.0},
             {"sort-c", C.get(), 2.0}};
  }
};

TEST(MixedStreamTest, InterleavingIsSeedDeterministic) {
  MixFixture F;
  MixedStreamOptions O;
  O.Requests = 900;
  O.Seed = 7;
  MixedStream X(F.Specs, O), Y(F.Specs, O);
  ASSERT_EQ(X.length(), 900u);
  for (size_t T = 0; T != X.length(); ++T) {
    EXPECT_EQ(X.at(T).Tenant, Y.at(T).Tenant);
    EXPECT_EQ(X.at(T).TenantTick, Y.at(T).TenantTick);
    EXPECT_EQ(X.at(T).Input, Y.at(T).Input);
  }
  O.Seed = 8;
  MixedStream Z(F.Specs, O);
  bool Differs = false;
  for (size_t T = 0; T != Z.length() && !Differs; ++T)
    Differs = Z.at(T).Tenant != X.at(T).Tenant;
  EXPECT_TRUE(Differs) << "reseeding did not change the interleaving";
}

TEST(MixedStreamTest, TenantSubsequencesPreserveEachStreamsDrift) {
  // The property multi-tenant serving stands on: tenant T's requests, in
  // global order, ARE tenant T's own stream (wrapped) -- the other
  // tenants only dilute it in time, never reorder or resample it.
  MixFixture F;
  MixedStreamOptions O;
  O.Requests = 1200;
  MixedStream X(F.Specs, O);

  size_t Total = 0;
  for (unsigned T = 0; T != 3; ++T) {
    const WorkloadStream &Own = *F.Specs[T].Stream;
    std::vector<size_t> Got = X.tenantInputs(T);
    EXPECT_EQ(Got.size(), X.tenantRequests(T));
    Total += Got.size();
    for (size_t R = 0; R != Got.size(); ++R)
      ASSERT_EQ(Got[R], Own.inputAt(R % Own.length()))
          << "tenant " << T << " request " << R;
  }
  EXPECT_EQ(Total, X.length());

  // TenantTick is each tenant's private clock: consecutive within the
  // tenant, increasing along the global sequence.
  std::vector<size_t> Next(3, 0);
  for (size_t T = 0; T != X.length(); ++T) {
    const MixedStream::Tick &K = X.at(T);
    ASSERT_EQ(K.TenantTick, Next[K.Tenant]++);
  }
}

TEST(MixedStreamTest, WeightsShapeTheTenantShares) {
  MixFixture F; // weights 1:1:2
  MixedStreamOptions O;
  O.Requests = 4000;
  MixedStream X(F.Specs, O);
  double N = static_cast<double>(X.length());
  EXPECT_NEAR(static_cast<double>(X.tenantRequests(0)) / N, 0.25, 0.05);
  EXPECT_NEAR(static_cast<double>(X.tenantRequests(1)) / N, 0.25, 0.05);
  EXPECT_NEAR(static_cast<double>(X.tenantRequests(2)) / N, 0.50, 0.05);
}

TEST(MixedStreamTest, RejectsBadTenantLists) {
  MixFixture F;
  MixedStreamOptions O;
  EXPECT_THROW(MixedStream({}, O), std::invalid_argument);

  std::vector<MixedTenantSpec> NoStream = {{"a", nullptr, 1.0}};
  EXPECT_THROW(MixedStream(NoStream, O), std::invalid_argument);

  std::vector<MixedTenantSpec> NoName = {{"", F.A.get(), 1.0}};
  EXPECT_THROW(MixedStream(NoName, O), std::invalid_argument);

  std::vector<MixedTenantSpec> Dup = {{"a", F.A.get(), 1.0},
                                      {"a", F.B.get(), 1.0}};
  EXPECT_THROW(MixedStream(Dup, O), std::invalid_argument);

  std::vector<MixedTenantSpec> BadWeight = {{"a", F.A.get(), 0.0}};
  EXPECT_THROW(MixedStream(BadWeight, O), std::invalid_argument);

  O.Requests = 0;
  EXPECT_THROW(MixedStream(F.Specs, O), std::invalid_argument);
}

//===----------------------------------------------------------------------===//
// Every registered family under the stream harness
//===----------------------------------------------------------------------===//

/// The scenario-diversity wall: every workload family must stream under
/// every schedule -- deterministic replay, a valid median pool split,
/// in-range inputs, and a real shift -- so the drift/adaptation suites
/// are never silently sort-only.
class FamilyStreamTest : public ::testing::TestWithParam<const char *> {};

TEST_P(FamilyStreamTest, StreamsDeterministicallyUnderEverySchedule) {
  const registry::BenchmarkFactory &F =
      registry::BenchmarkRegistry::instance().get(GetParam());
  registry::ProgramPtr U = F.makeProgram(0.1, F.defaultProgramSeed());
  for (Schedule K : {Schedule::Abrupt, Schedule::Ramp, Schedule::Periodic}) {
    WorkloadStreamOptions O;
    O.Kind = K;
    O.Requests = 200;
    O.Seed = 5;
    WorkloadStream A(*U, O), B(*U, O);
    EXPECT_EQ(A.sequence(), B.sequence());
    EXPECT_EQ(A.basePool().size() + A.shiftedPool().size(), U->numInputs());
    EXPECT_FALSE(A.basePool().empty());
    EXPECT_FALSE(A.shiftedPool().empty());
    EXPECT_LT(A.firstShiftTick(), A.length());
    for (size_t T = 0; T != A.length(); ++T)
      ASSERT_LT(A.inputAt(T), U->numInputs());
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilyStreamTest,
                         ::testing::Values("sort1", "sort2", "binpacking",
                                           "clustering1", "clustering2", "svd",
                                           "poisson2d", "helmholtz3d"));

TEST(WorkloadStreamTest, ScheduleNamesRoundTrip) {
  Schedule K;
  EXPECT_TRUE(parseSchedule("abrupt", K));
  EXPECT_EQ(K, Schedule::Abrupt);
  EXPECT_TRUE(parseSchedule("ramp", K));
  EXPECT_EQ(K, Schedule::Ramp);
  EXPECT_TRUE(parseSchedule("periodic", K));
  EXPECT_EQ(K, Schedule::Periodic);
  EXPECT_FALSE(parseSchedule("sudden", K));
  EXPECT_STREQ(scheduleName(Schedule::Abrupt), "abrupt");
  EXPECT_STREQ(scheduleName(Schedule::Ramp), "ramp");
  EXPECT_STREQ(scheduleName(Schedule::Periodic), "periodic");
}

} // namespace

//===- tests/streams/WorkloadStreamTest.cpp ----------------------------------=//
//
// The nonstationary traffic generator: pools must partition the universe
// at the drift-key median, every schedule must emit its documented
// mixture weights, and the materialised request sequence must be a pure
// function of (universe, options) -- the reproducibility the adaptive
// serving tests stand on.
//
//===----------------------------------------------------------------------===//

#include "streams/WorkloadStream.h"

#include "registry/BenchmarkRegistry.h"
#include "support/Cost.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

using namespace pbt;
using namespace pbt::streams;

namespace {

registry::ProgramPtr makeUniverse() {
  const registry::BenchmarkFactory &F =
      registry::BenchmarkRegistry::instance().get("sort1");
  return F.makeProgram(0.2, F.defaultProgramSeed());
}

TEST(WorkloadStreamTest, PoolsPartitionTheUniverseAtTheKeyMedian) {
  registry::ProgramPtr U = makeUniverse();
  WorkloadStreamOptions O;
  O.Requests = 10;
  O.KeyProperty = 2;
  WorkloadStream S(*U, O);

  EXPECT_EQ(S.basePool().size() + S.shiftedPool().size(), U->numInputs());
  std::set<size_t> All(S.basePool().begin(), S.basePool().end());
  All.insert(S.shiftedPool().begin(), S.shiftedPool().end());
  EXPECT_EQ(All.size(), U->numInputs()) << "pools overlap or drop inputs";

  double MaxBase = -1e300, MinShifted = 1e300;
  for (size_t I : S.basePool())
    MaxBase = std::max(MaxBase, S.keyOf(I));
  for (size_t I : S.shiftedPool())
    MinShifted = std::min(MinShifted, S.keyOf(I));
  EXPECT_LE(MaxBase, MinShifted) << "pools are not split by the key";

  // The key really is the declared feature probe.
  size_t Probe = S.basePool().front();
  support::CostCounter C;
  EXPECT_EQ(S.keyOf(Probe), U->extractFeature(Probe, 2, 0, C));
}

TEST(WorkloadStreamTest, SequencesAreSeedDeterministic) {
  registry::ProgramPtr U = makeUniverse();
  WorkloadStreamOptions O;
  O.Requests = 500;
  O.Seed = 42;
  WorkloadStream A(*U, O), B(*U, O);
  EXPECT_EQ(A.sequence(), B.sequence());

  O.Seed = 43;
  WorkloadStream C(*U, O);
  EXPECT_NE(C.sequence(), A.sequence());
  EXPECT_EQ(A.length(), 500u);
}

TEST(WorkloadStreamTest, AbruptScheduleSwitchesPoolsExactlyOnce) {
  registry::ProgramPtr U = makeUniverse();
  WorkloadStreamOptions O;
  O.Kind = Schedule::Abrupt;
  O.Requests = 400;
  O.SwitchFraction = 0.25;
  WorkloadStream S(*U, O);

  EXPECT_EQ(S.firstShiftTick(), 100u);
  std::set<size_t> Base(S.basePool().begin(), S.basePool().end());
  for (size_t T = 0; T != S.length(); ++T) {
    bool InBase = Base.count(S.inputAt(T)) != 0;
    EXPECT_EQ(InBase, T < 100) << "tick " << T;
    EXPECT_EQ(S.mixtureWeight(T), T < 100 ? 0.0 : 1.0);
  }
}

TEST(WorkloadStreamTest, RampScheduleMigratesGradually) {
  registry::ProgramPtr U = makeUniverse();
  WorkloadStreamOptions O;
  O.Kind = Schedule::Ramp;
  O.Requests = 1000;
  WorkloadStream S(*U, O);

  EXPECT_EQ(S.mixtureWeight(0), 0.0);
  EXPECT_EQ(S.mixtureWeight(999), 1.0);
  EXPECT_NEAR(S.mixtureWeight(500), 0.5, 1e-3);

  // Early requests come (almost) only from the base pool, late ones
  // (almost) only from the shifted pool.
  std::set<size_t> Base(S.basePool().begin(), S.basePool().end());
  size_t EarlyShifted = 0, LateShifted = 0;
  for (size_t T = 0; T != 200; ++T)
    EarlyShifted += Base.count(S.inputAt(T)) == 0;
  for (size_t T = 800; T != 1000; ++T)
    LateShifted += Base.count(S.inputAt(T)) == 0;
  EXPECT_LT(EarlyShifted, 40u);
  EXPECT_GT(LateShifted, 160u);
}

TEST(WorkloadStreamTest, PeriodicScheduleAlternatesRegimes) {
  registry::ProgramPtr U = makeUniverse();
  WorkloadStreamOptions O;
  O.Kind = Schedule::Periodic;
  O.Requests = 400;
  O.Period = 50;
  WorkloadStream S(*U, O);

  for (size_t T = 0; T != 400; ++T) {
    double W = (T / 50) % 2 == 0 ? 0.0 : 1.0;
    ASSERT_EQ(S.mixtureWeight(T), W) << "tick " << T;
  }
  EXPECT_EQ(S.firstShiftTick(), 50u);
}

TEST(WorkloadStreamTest, RejectsBadOptions) {
  registry::ProgramPtr U = makeUniverse();
  WorkloadStreamOptions O;
  O.KeyProperty = 99;
  EXPECT_THROW(WorkloadStream(*U, O), std::invalid_argument);
  O.KeyProperty = 0;
  O.KeyLevel = 99;
  EXPECT_THROW(WorkloadStream(*U, O), std::invalid_argument);
  O.KeyLevel = 0;
  O.Requests = 0;
  EXPECT_THROW(WorkloadStream(*U, O), std::invalid_argument);
}

TEST(WorkloadStreamTest, ScheduleNamesRoundTrip) {
  Schedule K;
  EXPECT_TRUE(parseSchedule("abrupt", K));
  EXPECT_EQ(K, Schedule::Abrupt);
  EXPECT_TRUE(parseSchedule("ramp", K));
  EXPECT_EQ(K, Schedule::Ramp);
  EXPECT_TRUE(parseSchedule("periodic", K));
  EXPECT_EQ(K, Schedule::Periodic);
  EXPECT_FALSE(parseSchedule("sudden", K));
  EXPECT_STREQ(scheduleName(Schedule::Abrupt), "abrupt");
  EXPECT_STREQ(scheduleName(Schedule::Ramp), "ramp");
  EXPECT_STREQ(scheduleName(Schedule::Periodic), "periodic");
}

} // namespace

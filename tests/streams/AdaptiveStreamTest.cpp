//===- tests/streams/AdaptiveStreamTest.cpp ----------------------------------=//
//
// The acceptance test of the online-adaptation subsystem, end to end: a
// seeded abrupt-shift sort1 stream is served by an AdaptiveService whose
// initial model was trained on pre-shift traffic only. The service must
//
//   (1) detect the distribution shift through its DriftMonitor,
//   (2) shadow-retrain and hot-swap at least once, and
//   (3) beat the frozen (no-adaptation) baseline's mean cost on the
//       post-swap segment of the very same request sequence,
//
// and the entire outcome -- decision sequence, detection ticks, swap
// history -- must be bit-identical whether the retrain pipeline runs on
// 1, 2 or 8 worker threads (the pipeline's thread-count invariance,
// extended to the serving loop).
//
//===----------------------------------------------------------------------===//

#include "registry/BenchmarkRegistry.h"
#include "runtime/AdaptiveService.h"
#include "runtime/SubsetProgram.h"
#include "streams/WorkloadStream.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

using namespace pbt;

namespace {

constexpr double kScale = 0.5;
constexpr unsigned kKeyProperty = 2; // sort1 "sortedness"

struct Scenario {
  registry::ProgramPtr Universe;
  std::unique_ptr<streams::WorkloadStream> Stream;
  serialize::TrainedModel Initial;
};

/// Builds the shared scenario: a sort1 universe, an abrupt-shift stream
/// over it, and an initial model trained on base-pool (pre-shift)
/// traffic only -- the "training sample matched yesterday's traffic"
/// deployment the adaptation loop exists for.
Scenario makeScenario(support::ThreadPool *Pool) {
  Scenario S;
  const registry::BenchmarkFactory &F =
      registry::BenchmarkRegistry::instance().get("sort1");
  S.Universe = F.makeProgram(kScale, F.defaultProgramSeed());

  streams::WorkloadStreamOptions SO;
  SO.Kind = streams::Schedule::Abrupt;
  SO.Requests = 600;
  SO.Seed = 0xABCD01;
  SO.KeyProperty = kKeyProperty;
  S.Stream = std::make_unique<streams::WorkloadStream>(*S.Universe, SO);

  const std::vector<size_t> &Pretrain = S.Stream->basePool();
  runtime::SubsetProgram View(*S.Universe, Pretrain);
  core::PipelineOptions Opt = registry::reservoirRetrainOptions(
      F, kScale, Pretrain.size(), Pool);
  core::TrainedSystem Sys = core::trainSystem(View, Opt);
  S.Initial = serialize::makeModel("sort1", kScale, F.defaultProgramSeed(),
                                   View, std::move(Sys));
  return S;
}

runtime::AdaptiveServiceOptions serviceOptions(const Scenario &S,
                                               support::ThreadPool *Pool) {
  const registry::BenchmarkFactory &F =
      registry::BenchmarkRegistry::instance().get("sort1");
  runtime::AdaptiveServiceOptions O;
  O.Monitor.Window = 48;
  O.Monitor.MinSamples = 24;
  O.Monitor.Cooldown = 48;
  O.ReservoirSize = 40;
  O.MinRetrainInputs = 16;
  O.Retrain = registry::reservoirRetrainOptions(F, kScale, O.ReservoirSize,
                                                Pool);
  O.Pool = Pool;
  return O;
}

struct RunOutcome {
  std::vector<unsigned> Landmarks;  // per request
  std::vector<uint64_t> Epochs;     // per request
  std::vector<double> Costs;        // per request (run under the decision)
  std::vector<size_t> DetectTicks;  // requests where drift was flagged
  std::vector<size_t> SwapTicks;    // requests whose response swapped
  runtime::AdaptiveService::StatsSnapshot Stats;
  std::vector<runtime::AdaptiveService::SwapRecord> History;
};

RunOutcome serveStream(const Scenario &S, runtime::AdaptiveService &Service) {
  RunOutcome R;
  for (size_t T = 0; T != S.Stream->length(); ++T) {
    size_t Input = S.Stream->inputAt(T);
    runtime::AdaptiveService::Decision D = Service.serve(Input);
    R.Landmarks.push_back(D.Landmark);
    R.Epochs.push_back(D.Epoch);
    R.Costs.push_back(S.Universe->runOnce(Input, *D.Config).TimeUnits);
    if (D.DriftFlagged)
      R.DetectTicks.push_back(T);
    if (D.Swapped)
      R.SwapTicks.push_back(T);
  }
  R.Stats = Service.stats();
  R.History = Service.history();
  return R;
}

double meanFrom(const std::vector<double> &Costs, size_t From) {
  double Sum = 0.0;
  size_t N = 0;
  for (size_t I = From; I < Costs.size(); ++I, ++N)
    Sum += Costs[I];
  return N ? Sum / static_cast<double>(N) : 0.0;
}

TEST(AdaptiveStreamTest, AbruptShiftDetectSwapAndBeatFrozenBaseline) {
  support::ThreadPool Pool(2);
  Scenario S = makeScenario(&Pool);

  // Frozen baseline: the same initial model serving the same sequence
  // with adaptation disabled.
  runtime::AdaptiveServiceOptions FrozenOpts = serviceOptions(S, &Pool);
  FrozenOpts.AutoAdapt = false;
  serialize::TrainedModel FrozenInitial;
  {
    // Models are move-only; rebuild the initial model from its own bytes
    // so both services start from identical state.
    std::string Bytes = serialize::serializeModel(S.Initial);
    ASSERT_TRUE(serialize::loadModel(Bytes, FrozenInitial).Ok);
  }
  runtime::AdaptiveService Frozen(*S.Universe, std::move(FrozenInitial),
                                  FrozenOpts);
  ASSERT_TRUE(Frozen.ready()) << Frozen.status().Error;

  runtime::AdaptiveService Adaptive(*S.Universe, std::move(S.Initial),
                                    serviceOptions(S, &Pool));
  ASSERT_TRUE(Adaptive.ready()) << Adaptive.status().Error;

  RunOutcome Frz = serveStream(S, Frozen);
  RunOutcome Ada = serveStream(S, Adaptive);

  // (1) The shift is detected -- and only after it happened.
  size_t Shift = S.Stream->firstShiftTick();
  ASSERT_GE(Ada.Stats.DriftDetections, 1u);
  ASSERT_FALSE(Ada.DetectTicks.empty());
  EXPECT_GE(Ada.DetectTicks.front(), Shift);

  // (2) At least one accepted hot swap, recorded in the epoch history.
  ASSERT_GE(Ada.Stats.Swaps, 1u);
  ASSERT_FALSE(Ada.SwapTicks.empty());
  bool AnyAccepted = false;
  for (const auto &Rec : Ada.History) {
    AnyAccepted |= Rec.Accepted;
    // The drift-to-swap window (what `pbt-bench stream` reports) must be
    // populated and contain its retrain component.
    EXPECT_GE(Rec.RetrainSeconds, 0.0);
    EXPECT_GE(Rec.ShadowSeconds, 0.0);
    EXPECT_GE(Rec.DriftToSwapSeconds, 0.0);
    if (Rec.Accepted) {
      EXPECT_GT(Rec.DriftToSwapSeconds, 0.0);
      EXPECT_GE(Rec.DriftToSwapSeconds, Rec.RetrainSeconds);
    }
  }
  EXPECT_TRUE(AnyAccepted);
  // The served epoch actually advanced.
  EXPECT_GT(Ada.Epochs.back(), Ada.Epochs.front());

  // The frozen control never adapts.
  EXPECT_EQ(Frz.Stats.Swaps, 0u);
  EXPECT_EQ(Frz.Epochs.back(), Frz.Epochs.front());

  // (3) Post-swap, adaptation strictly beats no-adaptation on the same
  // seeded request sequence.
  size_t FirstSwap = Ada.SwapTicks.front();
  double AdaMean = meanFrom(Ada.Costs, FirstSwap + 1);
  double FrzMean = meanFrom(Frz.Costs, FirstSwap + 1);
  EXPECT_LT(AdaMean, FrzMean)
      << "post-swap mean cost (adaptive " << AdaMean << " vs frozen "
      << FrzMean << ") did not improve; first swap at tick " << FirstSwap;

  ::testing::Test::RecordProperty("first_swap_tick",
                                  static_cast<int>(FirstSwap));
  std::printf("[stream] shift@%zu detect@%zu swap@%zu detections=%llu "
              "retrains=%llu swaps=%llu rejected=%llu skipped=%llu\n"
              "[stream] post-swap mean cost: adaptive %.1f vs frozen %.1f "
              "(%.1f%% lower)\n",
              Shift, Ada.DetectTicks.front(), FirstSwap,
              static_cast<unsigned long long>(Ada.Stats.DriftDetections),
              static_cast<unsigned long long>(Ada.Stats.Retrains),
              static_cast<unsigned long long>(Ada.Stats.Swaps),
              static_cast<unsigned long long>(Ada.Stats.RejectedCandidates),
              static_cast<unsigned long long>(Ada.Stats.SkippedRetrains),
              AdaMean, FrzMean, 100.0 * (1.0 - AdaMean / FrzMean));
}

TEST(AdaptiveStreamTest, OutcomeIsThreadCountInvariant) {
  // The whole adaptive run -- decisions, detection ticks, swap ticks,
  // epochs, shadow scores -- must not depend on how many workers the
  // retrain pipeline uses (1/2/8 threads and no pool at all).
  std::vector<RunOutcome> Runs;
  for (int Threads : {0, 1, 2, 8}) {
    std::unique_ptr<support::ThreadPool> Pool;
    if (Threads > 0)
      Pool = std::make_unique<support::ThreadPool>(
          static_cast<unsigned>(Threads));
    Scenario S = makeScenario(Pool.get());
    runtime::AdaptiveService Service(*S.Universe, std::move(S.Initial),
                                     serviceOptions(S, Pool.get()));
    ASSERT_TRUE(Service.ready()) << Service.status().Error;
    Runs.push_back(serveStream(S, Service));
  }

  for (size_t R = 1; R != Runs.size(); ++R) {
    EXPECT_EQ(Runs[R].Landmarks, Runs[0].Landmarks)
        << "decisions depend on the retrain thread count";
    EXPECT_EQ(Runs[R].Epochs, Runs[0].Epochs);
    EXPECT_EQ(Runs[R].DetectTicks, Runs[0].DetectTicks);
    EXPECT_EQ(Runs[R].SwapTicks, Runs[0].SwapTicks);
    ASSERT_EQ(Runs[R].History.size(), Runs[0].History.size());
    for (size_t I = 0; I != Runs[0].History.size(); ++I) {
      EXPECT_EQ(Runs[R].History[I].Accepted, Runs[0].History[I].Accepted);
      EXPECT_DOUBLE_EQ(Runs[R].History[I].ChampionShadowCost,
                       Runs[0].History[I].ChampionShadowCost);
      EXPECT_DOUBLE_EQ(Runs[R].History[I].CandidateShadowCost,
                       Runs[0].History[I].CandidateShadowCost);
    }
    EXPECT_EQ(Runs[R].Costs, Runs[0].Costs);
  }
  // At least one swap must have happened for the invariance to be
  // meaningful.
  EXPECT_GE(Runs[0].Stats.Swaps, 1u);
}

} // namespace

//===- tests/runtime/FeatureIndexTest.cpp ------------------------------------=//

#include "runtime/TunableProgram.h"

#include <gtest/gtest.h>

using namespace pbt;
using namespace pbt::runtime;

namespace {

TEST(FeatureIndexTest, FlatMappingRoundTrips) {
  FeatureIndex Index({{"a", 3}, {"b", 2}, {"c", 3}});
  EXPECT_EQ(Index.numProperties(), 3u);
  EXPECT_EQ(Index.numFlat(), 8u);
  for (unsigned P = 0; P != 3; ++P)
    for (unsigned L = 0; L != Index.levels(P); ++L) {
      unsigned Flat = Index.flat(P, L);
      EXPECT_EQ(Index.propertyOf(Flat), P);
      EXPECT_EQ(Index.levelOf(Flat), L);
    }
}

TEST(FeatureIndexTest, FlatOrderIsPropertyMajor) {
  FeatureIndex Index({{"a", 2}, {"b", 2}});
  EXPECT_EQ(Index.flat(0, 0), 0u);
  EXPECT_EQ(Index.flat(0, 1), 1u);
  EXPECT_EQ(Index.flat(1, 0), 2u);
  EXPECT_EQ(Index.flat(1, 1), 3u);
}

TEST(FeatureIndexTest, FlatNamesIncludePropertyAndLevel) {
  FeatureIndex Index({{"sortedness", 3}});
  EXPECT_EQ(Index.flatName(0), "sortedness@0");
  EXPECT_EQ(Index.flatName(2), "sortedness@2");
}

TEST(FeatureIndexTest, SingleProperty) {
  FeatureIndex Index({{"only", 1}});
  EXPECT_EQ(Index.numFlat(), 1u);
  EXPECT_EQ(Index.propertyOf(0), 0u);
  EXPECT_EQ(Index.levelOf(0), 0u);
}

} // namespace

//===- tests/runtime/AdaptiveServiceTest.cpp ---------------------------------=//
//
// The adaptive serving wrapper in isolation: construction/validation,
// parity with PredictionService on the same model, epoch-keyed decision
// caching across hot swaps, batch thread-count invariance, and the
// concurrency stress the subsystem's thread contract promises -- many
// small decideBatch calls on an oversubscribed pool racing a hot-swapper
// thread (the TSan target).
//
//===----------------------------------------------------------------------===//

#include "runtime/AdaptiveService.h"

#include "registry/BenchmarkRegistry.h"
#include "runtime/PredictionService.h"
#include "runtime/SubsetProgram.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

using namespace pbt;

namespace {

constexpr double kScale = 0.1;

/// Trains the sort1 model once per process; tests clone it through the
/// serializer (TrainedModel is move-only).
const std::string &modelBytes() {
  static const std::string Bytes = [] {
    const registry::BenchmarkFactory &F =
        registry::BenchmarkRegistry::instance().get("sort1");
    registry::ProgramPtr P = F.makeProgram(kScale, F.defaultProgramSeed());
    core::TrainedSystem Sys = core::trainSystem(*P, F.defaultOptions(kScale));
    serialize::TrainedModel M = serialize::makeModel(
        "sort1", kScale, F.defaultProgramSeed(), *P, std::move(Sys));
    return serialize::serializeModel(M);
  }();
  return Bytes;
}

/// A second, genuinely different model: trained on the first half of the
/// inputs only.
const std::string &altModelBytes() {
  static const std::string Bytes = [] {
    const registry::BenchmarkFactory &F =
        registry::BenchmarkRegistry::instance().get("sort1");
    registry::ProgramPtr P = F.makeProgram(kScale, F.defaultProgramSeed());
    std::vector<size_t> Half;
    for (size_t I = 0; I != P->numInputs() / 2; ++I)
      Half.push_back(I);
    runtime::SubsetProgram View(*P, Half);
    core::PipelineOptions Opt =
        registry::reservoirRetrainOptions(F, kScale, Half.size(), nullptr);
    core::TrainedSystem Sys = core::trainSystem(View, Opt);
    serialize::TrainedModel M = serialize::makeModel(
        "sort1", kScale, F.defaultProgramSeed(), View, std::move(Sys));
    return serialize::serializeModel(M);
  }();
  return Bytes;
}

serialize::TrainedModel cloneModel(const std::string &Bytes) {
  serialize::TrainedModel M;
  EXPECT_TRUE(serialize::loadModel(Bytes, M).Ok);
  return M;
}

registry::ProgramPtr makeProgram() {
  const registry::BenchmarkFactory &F =
      registry::BenchmarkRegistry::instance().get("sort1");
  return F.makeProgram(kScale, F.defaultProgramSeed());
}

TEST(AdaptiveServiceTest, RejectsMismatchedProgram) {
  const registry::BenchmarkFactory &F =
      registry::BenchmarkRegistry::instance().get("binpacking");
  registry::ProgramPtr Wrong = F.makeProgram(kScale, F.defaultProgramSeed());
  runtime::AdaptiveService Service(*Wrong, cloneModel(modelBytes()));
  EXPECT_FALSE(Service.ready());
  EXPECT_FALSE(Service.status().Ok);
  EXPECT_FALSE(Service.status().Error.empty());
}

TEST(AdaptiveServiceTest, DecisionsMatchPredictionService) {
  registry::ProgramPtr P = makeProgram();
  runtime::AdaptiveService Adaptive(*P, cloneModel(modelBytes()));
  ASSERT_TRUE(Adaptive.ready()) << Adaptive.status().Error;

  runtime::PredictionService Reference(cloneModel(modelBytes()));
  ASSERT_TRUE(Reference.bind(*P).Ok);

  for (size_t I = 0; I != P->numInputs(); ++I) {
    runtime::AdaptiveService::Decision A = Adaptive.decide(I);
    runtime::PredictionService::Decision R = Reference.decide(I);
    EXPECT_EQ(A.Landmark, R.Landmark) << "input " << I;
    EXPECT_DOUBLE_EQ(A.FeatureCost, R.FeatureCost);
    EXPECT_EQ(A.FeaturesExtracted, R.FeaturesExtracted);
    EXPECT_EQ(A.Config->values(), R.Config->values());
  }
  // Repeat decisions are memoized with identical semantics.
  runtime::AdaptiveService::Decision Second = Adaptive.decide(0);
  EXPECT_TRUE(Second.Memoized);
  EXPECT_EQ(Second.FeatureCost, 0.0);
}

TEST(AdaptiveServiceTest, ServeObservesIntoMonitorAndReservoir) {
  registry::ProgramPtr P = makeProgram();
  runtime::AdaptiveServiceOptions O;
  O.AutoAdapt = false;
  O.ReservoirSize = 8;
  runtime::AdaptiveService Service(*P, cloneModel(modelBytes()), O);
  ASSERT_TRUE(Service.ready());

  for (size_t I = 0; I != 12; ++I)
    Service.serve(I % P->numInputs());
  EXPECT_EQ(Service.monitor().observations(), 12u);
  EXPECT_EQ(Service.reservoir().seen(), 12u);
  EXPECT_EQ(Service.reservoir().size(), 8u);
  // The monitor pre-extracts the full feature vector; its cost is
  // accounted apart from per-decision cost.
  EXPECT_GT(Service.stats().MonitorCostPaid, 0.0);
  EXPECT_EQ(Service.stats().Decisions, 12u);
}

TEST(AdaptiveServiceTest, SwapModelBumpsEpochAndInvalidatesDecisionCache) {
  registry::ProgramPtr P = makeProgram();
  runtime::AdaptiveService Service(*P, cloneModel(modelBytes()));
  ASSERT_TRUE(Service.ready());
  uint64_t E0 = Service.epoch();

  std::vector<runtime::AdaptiveService::Decision> Before;
  for (size_t I = 0; I != P->numInputs(); ++I)
    Before.push_back(Service.decide(I));

  ASSERT_TRUE(Service.swapModel(cloneModel(altModelBytes())).Ok);
  EXPECT_EQ(Service.epoch(), E0 + 1);
  EXPECT_EQ(Service.stats().Swaps, 1u);

  // Decisions now come from the new model -- cached landmarks from the
  // old epoch must not leak through. Features stay memoized, so any
  // recomputation is free of extraction cost.
  runtime::PredictionService Alt(cloneModel(altModelBytes()));
  ASSERT_TRUE(Alt.bind(*P).Ok);
  bool AnyChanged = false;
  for (size_t I = 0; I != P->numInputs(); ++I) {
    runtime::AdaptiveService::Decision D = Service.decide(I);
    EXPECT_EQ(D.Landmark, Alt.decide(I).Landmark) << "input " << I;
    EXPECT_EQ(D.Epoch, E0 + 1);
    EXPECT_EQ(D.FeatureCost, 0.0) << "re-extracted a memoized feature";
    AnyChanged |= D.Landmark != Before[I].Landmark;
  }
  EXPECT_TRUE(AnyChanged)
      << "the two models decide identically everywhere; the cache "
         "invalidation is untested";

  // Old decisions' configurations stay valid through their epoch holds.
  for (size_t I = 0; I != Before.size(); ++I) {
    ASSERT_NE(Before[I].Config, nullptr);
    EXPECT_EQ(Before[I].Config->values(),
              Before[I].Hold->Model.System.L1.Landmarks[Before[I].Landmark]
                  .values());
  }
}

TEST(AdaptiveServiceTest, SwapModelValidatesThePushedModel) {
  // An operator-pushed model that does not fit the bound program must be
  // rejected without disturbing the serving epoch.
  const registry::BenchmarkFactory &F =
      registry::BenchmarkRegistry::instance().get("binpacking");
  registry::ProgramPtr P = F.makeProgram(kScale, F.defaultProgramSeed());
  core::TrainedSystem Sys = core::trainSystem(*P, F.defaultOptions(kScale));
  serialize::TrainedModel Foreign = serialize::makeModel(
      "binpacking", kScale, F.defaultProgramSeed(), *P, std::move(Sys));

  registry::ProgramPtr Sort = makeProgram();
  runtime::AdaptiveService Service(*Sort, cloneModel(modelBytes()));
  ASSERT_TRUE(Service.ready());
  uint64_t E0 = Service.epoch();

  serialize::LoadStatus Pushed = Service.swapModel(std::move(Foreign));
  EXPECT_FALSE(Pushed.Ok);
  EXPECT_FALSE(Pushed.Error.empty());
  EXPECT_EQ(Service.epoch(), E0);
  EXPECT_EQ(Service.stats().Swaps, 0u);
}

TEST(AdaptiveServiceTest, ScratchAndMonitorFollowTheModelAcrossSwaps) {
  // Start from the SMALLER model (2 landmarks) and swap in the larger
  // one (4-class incremental Bayes): the serving thread's scratch and
  // the drift monitor's cluster/decision arity must both be re-sized for
  // the new epoch, or decide()/serve() index out of bounds.
  registry::ProgramPtr P = makeProgram();
  runtime::AdaptiveServiceOptions O;
  O.AutoAdapt = false;
  runtime::AdaptiveService Service(*P, cloneModel(altModelBytes()), O);
  ASSERT_TRUE(Service.ready());
  size_t SmallLandmarks =
      Service.currentEpoch()->Model.System.L1.Landmarks.size();
  for (size_t I = 0; I != 8; ++I)
    Service.serve(I);

  ASSERT_TRUE(Service.swapModel(cloneModel(modelBytes())).Ok);
  size_t BigLandmarks =
      Service.currentEpoch()->Model.System.L1.Landmarks.size();
  ASSERT_GT(BigLandmarks, SmallLandmarks)
      << "models coincide in landmark count; the resize goes untested";

  runtime::PredictionService Reference(cloneModel(modelBytes()));
  ASSERT_TRUE(Reference.bind(*P).Ok);
  for (size_t I = 0; I != P->numInputs(); ++I) {
    runtime::AdaptiveService::Decision D = Service.serve(I);
    EXPECT_EQ(D.Landmark, Reference.decide(I).Landmark) << "input " << I;
  }
  // serve() rebased the monitor to the pushed model on first contact.
  EXPECT_EQ(Service.monitor().numDecisions(), BigLandmarks);
}

TEST(AdaptiveServiceTest, BatchDecisionsAreThreadCountInvariant) {
  registry::ProgramPtr P = makeProgram();
  std::vector<size_t> Inputs;
  for (size_t Round = 0; Round != 3; ++Round)
    for (size_t I = 0; I != P->numInputs(); ++I)
      Inputs.push_back(I);

  std::vector<std::vector<runtime::AdaptiveService::Decision>> Runs;
  for (unsigned Threads : {0u, 1u, 2u, 8u}) {
    std::unique_ptr<support::ThreadPool> Pool;
    if (Threads)
      Pool = std::make_unique<support::ThreadPool>(Threads);
    runtime::AdaptiveService Service(*P, cloneModel(modelBytes()));
    ASSERT_TRUE(Service.ready());
    Runs.push_back(Service.decideBatch(Inputs, Pool.get()));
  }
  for (size_t R = 1; R != Runs.size(); ++R) {
    ASSERT_EQ(Runs[R].size(), Runs[0].size());
    for (size_t I = 0; I != Runs[0].size(); ++I) {
      EXPECT_EQ(Runs[R][I].Landmark, Runs[0][I].Landmark);
      EXPECT_DOUBLE_EQ(Runs[R][I].FeatureCost, Runs[0][I].FeatureCost);
      EXPECT_EQ(Runs[R][I].Memoized, Runs[0][I].Memoized);
    }
  }
}

// The stress half of the test wall: an oversubscribed pool serving many
// small batches while another thread hot-swaps models as fast as it can.
// Every batch must be internally consistent (one epoch per batch, every
// landmark valid for that epoch's model); TSan verifies the absence of
// data races in CI.
TEST(AdaptiveServiceStressTest, ConcurrentHotSwapUnderBatchLoad) {
  registry::ProgramPtr P = makeProgram();
  runtime::AdaptiveService Service(*P, cloneModel(modelBytes()));
  ASSERT_TRUE(Service.ready());

  support::ThreadPool Pool(8); // oversubscribed on small CI machines

  constexpr uint64_t kSwaps = 40;
  std::atomic<uint64_t> SwapsDone{0};
  std::thread Swapper([&] {
    // Pre-clone outside the race so each swap is quick and the load/swap
    // interleaving is dense.
    for (uint64_t I = 0; I != kSwaps; ++I) {
      if (Service.swapModel(cloneModel(I % 2 ? altModelBytes() : modelBytes()))
              .Ok)
        SwapsDone.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  std::vector<size_t> Batch;
  for (size_t I = 0; I != 32; ++I)
    Batch.push_back(I % P->numInputs());

  // Serve until every swap has landed (bounded in case the swapper
  // starves), then a few more batches against the final epoch.
  size_t Batches = 0;
  uint64_t MaxEpochSeen = 0;
  for (; Batches < 20000 &&
         SwapsDone.load(std::memory_order_relaxed) < kSwaps;
       ++Batches) {
    std::vector<runtime::AdaptiveService::Decision> Out =
        Service.decideBatch(Batch, &Pool);
    ASSERT_EQ(Out.size(), Batch.size());
    uint64_t Epoch = Out.front().Epoch;
    MaxEpochSeen = std::max(MaxEpochSeen, Epoch);
    for (const runtime::AdaptiveService::Decision &D : Out) {
      // One epoch snapshot per batch, even with the swapper racing.
      ASSERT_EQ(D.Epoch, Epoch) << "batch mixed epochs";
      ASSERT_NE(D.Hold, nullptr);
      ASSERT_LT(D.Landmark, D.Hold->Model.System.L1.Landmarks.size());
      ASSERT_EQ(D.Config,
                &D.Hold->Model.System.L1.Landmarks[D.Landmark]);
    }
  }
  Swapper.join();
  for (size_t I = 0; I != 3; ++I, ++Batches)
    Service.decideBatch(Batch, &Pool);

  EXPECT_EQ(SwapsDone.load(), kSwaps);
  EXPECT_EQ(Service.stats().Decisions, Batches * Batch.size());
  EXPECT_EQ(Service.stats().Swaps, kSwaps);
  EXPECT_GE(Service.epoch(), kSwaps);
  EXPECT_GT(MaxEpochSeen, 0u);
}

} // namespace

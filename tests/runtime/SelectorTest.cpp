//===- tests/runtime/SelectorTest.cpp ----------------------------------------=//

#include "runtime/Selector.h"

#include <gtest/gtest.h>

using namespace pbt;
using namespace pbt::runtime;

namespace {

TEST(SelectorTest, PaperFigure2Semantics) {
  // The paper's example: InsertionSort below 600, QuickSort below 1420,
  // MergeSort above.
  Selector S({{600, 0}, {1420, 1}, {UINT64_MAX, 2}});
  EXPECT_EQ(S.choose(10), 0u);
  EXPECT_EQ(S.choose(599), 0u);
  EXPECT_EQ(S.choose(600), 1u);
  EXPECT_EQ(S.choose(1419), 1u);
  EXPECT_EQ(S.choose(1420), 2u);
  EXPECT_EQ(S.choose(1000000), 2u);
}

TEST(SelectorTest, EmptySelectorDefaultsToChoiceZero) {
  Selector S;
  EXPECT_EQ(S.choose(123), 0u);
}

TEST(SelectorTest, DeclareAddsExpectedParameters) {
  ConfigSpace Space;
  SelectorScheme Scheme =
      SelectorScheme::declare(Space, "sel", /*NumLevels=*/3,
                              /*NumChoices=*/5, 4, 8192);
  // 3 choice params + 2 cutoffs.
  EXPECT_EQ(Space.size(), 5u);
  EXPECT_GE(Space.indexOf("sel.choice0"), 0);
  EXPECT_GE(Space.indexOf("sel.cutoff1"), 0);
}

TEST(SelectorTest, InstantiateSortsCutoffs) {
  ConfigSpace Space;
  SelectorScheme Scheme =
      SelectorScheme::declare(Space, "sel", 3, 4, 2, 10000);
  // choices = 3,1,0; cutoffs deliberately unsorted: 5000, 100.
  Configuration C(std::vector<double>{3, 1, 0, 5000, 100});
  Selector S = Scheme.instantiate(C);
  ASSERT_EQ(S.levels().size(), 3u);
  EXPECT_EQ(S.levels()[0].Cutoff, 100u);
  EXPECT_EQ(S.levels()[1].Cutoff, 5000u);
  EXPECT_EQ(S.choose(50), 3u);
  EXPECT_EQ(S.choose(100), 1u);
  EXPECT_EQ(S.choose(5000), 0u);
}

TEST(SelectorTest, SingleLevelSelectorIsConstant) {
  ConfigSpace Space;
  SelectorScheme Scheme = SelectorScheme::declare(Space, "sel", 1, 7, 2, 10);
  Configuration C(std::vector<double>{4});
  Selector S = Scheme.instantiate(C);
  EXPECT_EQ(S.choose(1), 4u);
  EXPECT_EQ(S.choose(1000000000), 4u);
}

TEST(SelectorTest, RandomConfigsDecodeToValidSelectors) {
  ConfigSpace Space;
  SelectorScheme Scheme = SelectorScheme::declare(Space, "sel", 4, 3, 4, 4096);
  support::Rng Rng(9);
  for (int I = 0; I != 200; ++I) {
    Selector S = Scheme.instantiate(Space.randomConfig(Rng));
    uint64_t PrevCutoff = 0;
    for (const auto &L : S.levels()) {
      EXPECT_LT(L.Choice, 3u);
      EXPECT_GE(L.Cutoff, PrevCutoff);
      PrevCutoff = L.Cutoff;
    }
    for (uint64_t N : {1ull, 10ull, 100ull, 10000ull, 1000000ull})
      EXPECT_LT(S.choose(N), 3u);
  }
}

TEST(SelectorTest, BinarySearchBoundaryCases) {
  // choose() binary-searches the sorted cutoffs; exercise every boundary.
  Selector S({{100, 7}, {1000, 3}, {UINT64_MAX, 1}});
  EXPECT_EQ(S.choose(0), 7u);
  EXPECT_EQ(S.choose(99), 7u);
  EXPECT_EQ(S.choose(100), 3u);   // cutoff is exclusive
  EXPECT_EQ(S.choose(999), 3u);
  EXPECT_EQ(S.choose(1000), 1u);
  EXPECT_EQ(S.choose(UINT64_MAX - 1), 1u);
  // N == UINT64_MAX is past every finite cutoff and not < UINT64_MAX:
  // falls through to the last level's choice.
  EXPECT_EQ(S.choose(UINT64_MAX), 1u);
}

TEST(SelectorTest, OneLevelSelectorAlwaysChooses) {
  Selector S({{UINT64_MAX, 4}});
  EXPECT_EQ(S.choose(0), 4u);
  EXPECT_EQ(S.choose(123456789), 4u);
  EXPECT_EQ(S.choose(UINT64_MAX), 4u);
}

TEST(SelectorTest, FiniteLastCutoffFallsBackToLastChoice) {
  // A selector whose declared levels all have finite cutoffs: sizes past
  // the last cutoff take the last level's choice (the implicit infinite
  // level).
  Selector S({{10, 2}, {20, 5}});
  EXPECT_EQ(S.choose(9), 2u);
  EXPECT_EQ(S.choose(15), 5u);
  EXPECT_EQ(S.choose(20), 5u);
  EXPECT_EQ(S.choose(1000), 5u);
}

TEST(SelectorTest, ConstructorSortsUnorderedLevels) {
  // Direct construction with unordered levels must behave like the
  // decoded (sorted) form.
  Selector S({{1000, 3}, {100, 7}, {UINT64_MAX, 1}});
  EXPECT_EQ(S.choose(50), 7u);
  EXPECT_EQ(S.choose(500), 3u);
  EXPECT_EQ(S.choose(5000), 1u);
  EXPECT_EQ(S.levels().front().Cutoff, 100u);
}

TEST(SelectorTest, MatchesLinearScanOnManyLevels) {
  // Cross-check the binary search against a reference linear scan over a
  // selector with many levels, including duplicate cutoffs.
  std::vector<Selector::Level> Levels;
  for (unsigned I = 0; I != 32; ++I)
    Levels.push_back({static_cast<uint64_t>((I / 2 + 1) * 10), I % 5});
  Levels.push_back({UINT64_MAX, 9});
  Selector S(Levels);
  auto Linear = [&](uint64_t N) -> unsigned {
    for (const Selector::Level &L : S.levels())
      if (N < L.Cutoff)
        return L.Choice;
    return S.levels().back().Choice;
  };
  for (uint64_t N = 0; N != 200; ++N)
    EXPECT_EQ(S.choose(N), Linear(N)) << N;
}

TEST(SelectorTest, TiedCutoffsAreConstructionOrderIndependent) {
  // Levels sharing a cutoff are a redundant encoding: only the first of
  // the tied run is reachable from choose(). The constructor pins the
  // tie-break to the lowest Choice, so the decision rule cannot depend on
  // the order the level list was built in (a cutoff-only stable sort
  // would leak construction order into the decision).
  std::vector<Selector::Level> Levels = {
      {100, 3}, {100, 1}, {100, 2}, {500, 0}, {UINT64_MAX, 4}};
  std::sort(Levels.begin(), Levels.end(),
            [](const Selector::Level &A, const Selector::Level &B) {
              if (A.Cutoff != B.Cutoff)
                return A.Cutoff < B.Cutoff;
              return A.Choice < B.Choice;
            });
  // Try every rotation of the input list (distinct construction orders).
  std::vector<Selector::Level> Rotated = Levels;
  for (size_t Rot = 0; Rot != Rotated.size(); ++Rot) {
    std::rotate(Rotated.begin(), Rotated.begin() + 1, Rotated.end());
    Selector S(Rotated);
    // Canonical level order...
    ASSERT_EQ(S.levels().size(), Levels.size());
    for (size_t I = 0; I != Levels.size(); ++I) {
      EXPECT_EQ(S.levels()[I].Cutoff, Levels[I].Cutoff) << "rotation " << Rot;
      EXPECT_EQ(S.levels()[I].Choice, Levels[I].Choice) << "rotation " << Rot;
    }
    // ...and canonical decisions: below a tied cutoff the lowest choice
    // of the tied run wins.
    EXPECT_EQ(S.choose(0), 1u);
    EXPECT_EQ(S.choose(99), 1u);
    EXPECT_EQ(S.choose(100), 0u);
    EXPECT_EQ(S.choose(499), 0u);
    EXPECT_EQ(S.choose(500), 4u);
  }
}

TEST(SelectorTest, StrMentionsChoices) {
  Selector S({{600, 2}, {UINT64_MAX, 0}});
  std::string Str = S.str();
  EXPECT_NE(Str.find("600"), std::string::npos);
  EXPECT_NE(Str.find("2"), std::string::npos);
}

} // namespace

//===- tests/runtime/CompiledParityFuzzTest.cpp ------------------------------=//
//
// Randomized compiled-vs-interpreted parity: the golden suite pins the
// two committed models, but the lowering claim is universal -- for ANY
// loadable model, decide() must equal decideInterpreted(). This fuzzer
// generates ~200 random TrainedModels spanning every classifier kind the
// zoo can select (constant, max-apriori, subset tree, incremental Bayes,
// one-level nearest-centroid) over both flat and conditional
// (hierarchical) configuration spaces, serves random inputs through a
// PredictionService bound to a matching synthetic program, and asserts
// landmark, extraction-cost and examined-feature parity between the
// compiled and interpreted paths -- for the production classifier and
// the one-level baseline alike.
//
// Everything is seeded through support/Random, so a failure reproduces
// from its printed model index alone.
//
//===----------------------------------------------------------------------===//

#include "runtime/PredictionService.h"

#include "core/Classifiers.h"
#include "registry/BenchmarkRegistry.h"
#include "runtime/CompiledModel.h"
#include "runtime/SimdLanes.h"
#include "runtime/TunableProgram.h"
#include "support/Random.h"
#include "support/SimdDispatch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <vector>

using namespace pbt;

namespace {

/// A synthetic program whose features are a stored random table: exactly
/// what a PredictionService needs to serve decisions (the run() cost
/// model never executes here).
class TableProgram : public runtime::TunableProgram {
public:
  TableProgram(linalg::Matrix Table, std::vector<runtime::FeatureInfo> Props,
               runtime::ConfigSpace SpaceIn)
      : Table(std::move(Table)), Props(std::move(Props)),
        Space(std::move(SpaceIn)) {
    Index.emplace(this->Props);
  }

  std::string name() const override { return "fuzz-table"; }
  const runtime::ConfigSpace &space() const override { return Space; }
  std::vector<runtime::FeatureInfo> features() const override {
    return Props;
  }
  std::optional<runtime::AccuracySpec> accuracy() const override {
    return std::nullopt;
  }
  size_t numInputs() const override { return Table.rows(); }
  double extractFeature(size_t Input, unsigned Feature, unsigned Level,
                        support::CostCounter &Cost) const override {
    // Per-feature extraction cost grows with the sampling level, like the
    // real benchmarks' probes.
    Cost.addFlops(1.0 + Level);
    return Table.at(Input, Index->flat(Feature, Level));
  }
  runtime::RunResult run(size_t, const runtime::Configuration &,
                         support::CostCounter &) const override {
    return {};
  }

private:
  linalg::Matrix Table;
  std::vector<runtime::FeatureInfo> Props;
  runtime::ConfigSpace Space;
  std::optional<runtime::FeatureIndex> Index;
};

struct FuzzCase {
  std::unique_ptr<TableProgram> Program;
  serialize::TrainedModel Model;
};

/// A random configuration space. Every third case is conditional: a
/// categorical root gating each real tunable on a random activation set,
/// plus a two-level chain (categorical mode under the root, log-integer
/// leaf under the mode) so nested dependencies fuzz too.
runtime::ConfigSpace makeFuzzSpace(support::Rng &Rng, unsigned Arity,
                                   bool Conditional) {
  runtime::ConfigSpace S;
  if (!Conditional) {
    for (unsigned P = 0; P != Arity; ++P)
      S.addReal("p" + std::to_string(P), 0.0, 1.0);
    return S;
  }
  unsigned Card = static_cast<unsigned>(Rng.range(2, 4));
  unsigned Root = S.addCategorical("branch", Card);
  for (unsigned P = 0; P != Arity; ++P) {
    unsigned Idx = S.addReal("p" + std::to_string(P), 0.0, 1.0);
    std::vector<unsigned> Vals;
    for (unsigned V = 0; V != Card; ++V)
      if (Rng.chance(0.5))
        Vals.push_back(V);
    if (Vals.empty())
      Vals.push_back(static_cast<unsigned>(Rng.index(Card)));
    S.makeConditional(Idx, Root, Vals);
  }
  unsigned Mode = S.addCategorical("mode", 2);
  S.makeConditional(Mode, Root, {0});
  unsigned Leaf = S.addInteger("leaf", 1, 64, /*LogScale=*/true);
  S.makeConditional(Leaf, Mode, {1});
  return S;
}

/// One random model: random feature geometry, random training table,
/// random labels, the classifier kind cycling with the index.
FuzzCase makeCase(unsigned CaseIndex) {
  support::Rng Rng(0xF022 + 7919ull * CaseIndex);

  unsigned NumProps = static_cast<unsigned>(Rng.range(1, 3));
  std::vector<runtime::FeatureInfo> Props;
  for (unsigned P = 0; P != NumProps; ++P)
    Props.push_back({"f" + std::to_string(P),
                     static_cast<unsigned>(Rng.range(1, 3))});
  runtime::FeatureIndex Index(Props);
  unsigned NumFlat = Index.numFlat();
  unsigned K = static_cast<unsigned>(Rng.range(2, 5));
  size_t N = static_cast<size_t>(Rng.range(20, 40));
  unsigned Arity = static_cast<unsigned>(Rng.range(1, 3));

  linalg::Matrix X(N, NumFlat);
  std::vector<unsigned> Y(N);
  for (size_t I = 0; I != N; ++I) {
    for (unsigned F = 0; F != NumFlat; ++F)
      X.at(I, F) = Rng.uniform(0.0, 10.0);
    Y[I] = static_cast<unsigned>(Rng.index(K));
  }
  // Correlate the labels with one feature so trees/Bayes grow structure
  // more often than pure noise would allow.
  unsigned Pivot = static_cast<unsigned>(Rng.index(NumFlat));
  for (size_t I = 0; I != N; ++I)
    if (X.at(I, Pivot) > 5.0)
      Y[I] = (Y[I] + 1) % K;

  FuzzCase C;
  runtime::ConfigSpace Space =
      makeFuzzSpace(Rng, Arity, /*Conditional=*/CaseIndex % 3 == 0);
  C.Program = std::make_unique<TableProgram>(X, Props, Space);

  serialize::TrainedModel &M = C.Model;
  M.Meta.Benchmark = "fuzz-table";
  M.Meta.Scale = 1.0;
  M.Meta.ProgramSeed = CaseIndex;
  M.Meta.Features = Props;
  M.Meta.Space = Space;
  // randomConfig returns canonical points (dead branches pinned), which
  // is exactly what the loader and validateAgainst demand of landmarks.
  for (unsigned L = 0; L != K; ++L)
    M.System.L1.Landmarks.push_back(Space.randomConfig(Rng));

  // The production classifier: cycle through every kind the zoo knows.
  std::unique_ptr<core::InputClassifier> Production;
  switch (CaseIndex % 5) {
  case 0:
    Production = std::make_unique<core::ConstantClassifier>(
        static_cast<unsigned>(Rng.index(K)));
    break;
  case 1: {
    ml::MaxApriori Prior;
    Prior.fit(Y, K);
    Production = std::make_unique<core::MaxAprioriClassifier>(std::move(Prior));
    break;
  }
  case 2: {
    std::vector<unsigned> Subset(NumFlat);
    std::iota(Subset.begin(), Subset.end(), 0u);
    Rng.shuffle(Subset);
    Subset.resize(Rng.index(NumFlat) + 1);
    std::sort(Subset.begin(), Subset.end());
    ml::DecisionTreeOptions Opts;
    Opts.AllowedFeatures = Subset;
    Opts.MaxDepth = static_cast<unsigned>(Rng.range(1, 10));
    Opts.MinSamplesLeaf = static_cast<unsigned>(Rng.range(1, 4));
    ml::DecisionTree Tree;
    Tree.fit(X, Y, K, Opts);
    Production = std::make_unique<core::SubsetTreeClassifier>(
        std::move(Tree), std::move(Subset), "fuzz-tree");
    break;
  }
  case 3: {
    std::vector<unsigned> Order(NumFlat);
    std::iota(Order.begin(), Order.end(), 0u);
    Rng.shuffle(Order);
    Order.resize(Rng.index(NumFlat) + 1);
    ml::IncrementalBayesOptions Opts;
    Opts.Bins = static_cast<unsigned>(Rng.range(2, 8));
    // Spans the always-stop, sometimes-stop and never-stop regimes.
    Opts.PosteriorThreshold = Rng.uniform(0.4, 1.1);
    ml::IncrementalBayes Model;
    Model.fit(X, Y, K, Order, Opts);
    Production = std::make_unique<core::IncrementalClassifier>(
        std::move(Model), "fuzz-bayes");
    break;
  }
  default: {
    ml::Normalizer Norm;
    Norm.fit(X);
    ml::KMeansOptions Opts;
    Opts.K = K;
    Opts.Seed = Rng.next();
    ml::KMeansResult Clusters = ml::kMeans(Norm.transform(X), Opts);
    std::vector<unsigned> ClusterLandmark;
    for (size_t Cl = 0; Cl != Clusters.Centroids.rows(); ++Cl)
      ClusterLandmark.push_back(static_cast<unsigned>(Rng.index(K)));
    Production = std::make_unique<core::OneLevelClassifier>(
        std::move(Clusters.Centroids), std::move(Norm),
        std::move(ClusterLandmark));
    break;
  }
  }
  M.System.L2.Production = std::move(Production);
  M.System.L2.SelectedName = "fuzz";

  // Every model also carries a one-level baseline, so the baseline
  // lowering fuzzes alongside the production one.
  {
    ml::Normalizer Norm;
    Norm.fit(X);
    ml::KMeansOptions Opts;
    Opts.K = std::min<unsigned>(K, 3);
    Opts.Seed = Rng.next();
    ml::KMeansResult Clusters = ml::kMeans(Norm.transform(X), Opts);
    std::vector<unsigned> ClusterLandmark;
    for (size_t Cl = 0; Cl != Clusters.Centroids.rows(); ++Cl)
      ClusterLandmark.push_back(static_cast<unsigned>(Rng.index(K)));
    M.System.OneLevel = std::make_unique<core::OneLevelClassifier>(
        std::move(Clusters.Centroids), std::move(Norm),
        std::move(ClusterLandmark));
  }
  return C;
}

TEST(CompiledParityFuzzTest, RandomModelsDecideIdenticallyOnBothPaths) {
  constexpr unsigned kModels = 200;
  unsigned PerKind[5] = {0, 0, 0, 0, 0};
  for (unsigned CaseIndex = 0; CaseIndex != kModels; ++CaseIndex) {
    FuzzCase C = makeCase(CaseIndex);
    ++PerKind[CaseIndex % 5];
    std::string Kind = C.Model.System.L2.Production->describe();

    runtime::PredictionService Service(std::move(C.Model));
    ASSERT_TRUE(Service.bind(*C.Program).Ok)
        << "case " << CaseIndex << " (" << Kind << ")";
    ASSERT_TRUE(Service.ready());

    for (size_t Input = 0; Input != C.Program->numInputs(); ++Input) {
      // Fresh-input order: compiled first here, interpreted first on odd
      // inputs, so both paths get to be the cold one.
      runtime::PredictionService::Decision A, B;
      if (Input % 2 == 0) {
        A = Service.decide(Input);
        B = Service.decideInterpreted(Input);
      } else {
        B = Service.decideInterpreted(Input);
        A = Service.decide(Input);
      }
      ASSERT_EQ(A.Landmark, B.Landmark)
          << "case " << CaseIndex << " (" << Kind << ") input " << Input
          << ": compiled and interpreted decisions diverge";
      // The two paths keep separate feature memos, so each input's first
      // call on either path is cold: identical extraction work and cost.
      EXPECT_DOUBLE_EQ(A.FeatureCost, B.FeatureCost)
          << "case " << CaseIndex << " (" << Kind << ") input " << Input;
      EXPECT_EQ(A.FeaturesExtracted, B.FeaturesExtracted)
          << "case " << CaseIndex << " (" << Kind << ") input " << Input;

      // Baseline parity on the same input.
      runtime::PredictionService::Decision OA = Service.decideOneLevel(Input);
      runtime::PredictionService::Decision OB =
          Service.decideOneLevelInterpreted(Input);
      ASSERT_EQ(OA.Landmark, OB.Landmark)
          << "case " << CaseIndex << " input " << Input
          << ": one-level baseline diverges";
    }
  }
  for (unsigned Kind = 0; Kind != 5; ++Kind)
    EXPECT_GE(PerKind[Kind], 40u) << "kind " << Kind << " under-covered";
}

/// Full-Decision equality between two services serving the same batch
/// stream: one lane-serving at a pinned SIMD tier, one with lanes off
/// (the frozen scalar compiled oracle) -- plus the interpreted path as
/// the outer oracle for the chosen landmarks.
void expectLaneBatchParity(runtime::PredictionService &LaneService,
                           runtime::PredictionService &ScalarService,
                           const std::vector<size_t> &Batch,
                           unsigned CaseIndex, const char *Phase) {
  std::vector<runtime::PredictionService::Decision> A =
      LaneService.decideBatch(Batch);
  std::vector<runtime::PredictionService::Decision> B =
      ScalarService.decideBatch(Batch);
  ASSERT_EQ(A.size(), B.size());
  const char *Tier = support::simdTierName(LaneService.simdTier());
  for (size_t I = 0; I != Batch.size(); ++I) {
    ASSERT_EQ(A[I].Landmark, B[I].Landmark)
        << "case " << CaseIndex << " " << Phase << " tier " << Tier
        << " position " << I << " input " << Batch[I]
        << ": lane and scalar decisions diverge";
    EXPECT_DOUBLE_EQ(A[I].FeatureCost, B[I].FeatureCost)
        << "case " << CaseIndex << " " << Phase << " tier " << Tier
        << " position " << I;
    EXPECT_EQ(A[I].FeaturesExtracted, B[I].FeaturesExtracted)
        << "case " << CaseIndex << " " << Phase << " tier " << Tier
        << " position " << I;
    EXPECT_EQ(A[I].Memoized, B[I].Memoized)
        << "case " << CaseIndex << " " << Phase << " tier " << Tier
        << " position " << I;
    ASSERT_EQ(A[I].Landmark,
              ScalarService.decideInterpreted(Batch[I]).Landmark)
        << "case " << CaseIndex << " " << Phase << " tier " << Tier
        << " position " << I << ": lane diverges from interpreted oracle";
  }
}

/// The SIMD parity wall proper: every fuzz model served through every
/// dispatch tier this host can execute, with the scalar compiled path
/// (lane serving off) and the interpreted classifier as frozen oracles.
/// Covers cold batches with in-lane duplicate inputs, lane-remainder
/// batch sizes 1..2*Width, and a forced memo-complete pass so the
/// tree/Bayes lane kernels run too (cold tree/Bayes inputs take the
/// scalar fallback by design -- lazy extraction is value-dependent).
TEST(CompiledParityFuzzTest, LaneServingMatchesScalarOnEveryTier) {
  std::vector<const runtime::LaneEngine *> Engines =
      runtime::availableLaneEngines();
  ASSERT_FALSE(Engines.empty());
  EXPECT_EQ(Engines.front()->Tier, support::SimdTier::Scalar);
  for (const runtime::LaneEngine *E : Engines) {
    EXPECT_EQ(&runtime::laneEngine(E->Tier), E);
    EXPECT_GE(E->Width, 4u);
    EXPECT_LE(E->Width, runtime::kMaxLaneWidth);
    ASSERT_NE(E->ClassifyBlock, nullptr);
  }

  constexpr unsigned kModels = 60;
  for (unsigned CaseIndex = 0; CaseIndex != kModels; ++CaseIndex) {
    for (const runtime::LaneEngine *E : Engines) {
      // makeCase is deterministic in its index: two builds of the same
      // case give the lane and scalar services identical models.
      FuzzCase LaneCase = makeCase(CaseIndex);
      FuzzCase ScalarCase = makeCase(CaseIndex);
      runtime::PredictionService LaneService(std::move(LaneCase.Model));
      runtime::PredictionService ScalarService(std::move(ScalarCase.Model));
      LaneService.setSimdTier(E->Tier);
      ASSERT_EQ(LaneService.simdTier(), E->Tier); // host-executable tier
      ASSERT_TRUE(LaneService.laneServing());
      ScalarService.setLaneServing(false);
      ASSERT_TRUE(LaneService.bind(*LaneCase.Program).Ok);
      ASSERT_TRUE(ScalarService.bind(*ScalarCase.Program).Ok);

      const size_t N = LaneCase.Program->numInputs();
      // Cold pass with each input duplicated adjacently: the repeat of
      // an input still queued in a pending lane must flush and serve
      // from the fresh decision cache, in batch order.
      std::vector<size_t> Cold;
      for (size_t I = 0; I != N; ++I) {
        Cold.push_back(I);
        Cold.push_back(I);
      }
      expectLaneBatchParity(LaneService, ScalarService, Cold, CaseIndex,
                            "cold");

      // Lane-remainder sizes 1..2*Width over re-decided warm inputs.
      for (unsigned Size = 1; Size <= 2 * E->Width; ++Size) {
        LaneService.clearDecisions();
        ScalarService.clearDecisions();
        std::vector<size_t> Batch;
        for (unsigned I = 0; I != Size; ++I)
          Batch.push_back(I % N);
        expectLaneBatchParity(LaneService, ScalarService, Batch, CaseIndex,
                              "remainder");
      }

      // Force memo completeness through the all-features one-level
      // baseline, then re-decide: tree/Bayes models now take the lane
      // path instead of the cold scalar fallback.
      for (size_t I = 0; I != N; ++I) {
        LaneService.decideOneLevel(I);
        ScalarService.decideOneLevel(I);
      }
      LaneService.clearDecisions();
      ScalarService.clearDecisions();
      std::vector<size_t> Warm(N);
      std::iota(Warm.begin(), Warm.end(), size_t{0});
      std::reverse(Warm.begin(), Warm.end());
      expectLaneBatchParity(LaneService, ScalarService, Warm, CaseIndex,
                            "memo-complete");
    }
  }
}

/// The same fuzz population, additionally pushed through the serializer:
/// save -> load -> compile must preserve parity (the loader's bounds
/// checks and the writer's 17-digit doubles both under test).
TEST(CompiledParityFuzzTest, SerializedRoundTripPreservesDecisions) {
  for (unsigned CaseIndex = 0; CaseIndex != 40; ++CaseIndex) {
    FuzzCase C = makeCase(CaseIndex);
    // Minimal-but-valid evidence tables so the whole-model serializer has
    // consistent shapes to write.
    size_t N = C.Program->numInputs();
    unsigned NumFlat = C.Program->numMLFeatures();
    unsigned K = static_cast<unsigned>(C.Model.System.L1.Landmarks.size());
    C.Model.System.L1.Features = linalg::Matrix(N, NumFlat);
    C.Model.System.L1.ExtractCosts = linalg::Matrix(N, NumFlat, 1.0);
    C.Model.System.L1.Time = linalg::Matrix(N, K, 1.0);
    C.Model.System.L1.Acc = linalg::Matrix(N, K, 1.0);
    C.Model.System.L1.Norm.fit(C.Model.System.L1.Features);
    ml::KMeansOptions KOpts;
    KOpts.K = K;
    C.Model.System.L1.Clusters =
        ml::kMeans(C.Model.System.L1.Features, KOpts);
    C.Model.System.L1.Clusters.Assignment.clear();
    C.Model.System.L1.Representatives.assign(K, 0);
    C.Model.System.L2.Costs = ml::CostMatrix::zeroOne(K);

    std::string Bytes = serialize::serializeModel(C.Model);
    serialize::TrainedModel Loaded;
    ASSERT_TRUE(serialize::loadModel(Bytes, Loaded).Ok) << "case "
                                                        << CaseIndex;
    // Byte-identity through the round trip: the reloaded model (its
    // config space -- conditional structure included -- landmarks and
    // classifiers) must re-serialize to the exact same bytes.
    ASSERT_EQ(serialize::serializeModel(Loaded), Bytes)
        << "case " << CaseIndex << ": round trip is not byte-identical";

    // The compiled arenas agree on the conditional structure: identical
    // per-landmark active-parameter masks on both sides of the trip.
    runtime::CompiledModel CompiledA = runtime::CompiledModel::compile(C.Model);
    runtime::CompiledModel CompiledB = runtime::CompiledModel::compile(Loaded);
    ASSERT_EQ(CompiledA.numLandmarks(), CompiledB.numLandmarks());
    for (unsigned L = 0; L != CompiledA.numLandmarks(); ++L) {
      EXPECT_EQ(CompiledA.landmarkActiveMask(L),
                CompiledB.landmarkActiveMask(L))
          << "case " << CaseIndex << " landmark " << L;
      EXPECT_EQ(CompiledA.landmarkActiveMask(L),
                C.Model.Meta.Space.activeMask(C.Model.System.L1.Landmarks[L]))
          << "case " << CaseIndex << " landmark " << L;
    }

    runtime::PredictionService Original(std::move(C.Model));
    runtime::PredictionService Reloaded(std::move(Loaded));
    ASSERT_TRUE(Original.bind(*C.Program).Ok);
    ASSERT_TRUE(Reloaded.bind(*C.Program).Ok);
    for (size_t Input = 0; Input != C.Program->numInputs(); ++Input)
      ASSERT_EQ(Original.decide(Input).Landmark,
                Reloaded.decide(Input).Landmark)
          << "case " << CaseIndex << " input " << Input;
  }
}

} // namespace

//===- tests/runtime/CompiledModelTest.cpp -----------------------------------=//
//
// The compiled inference path must be a faithful lowering: for every
// classifier kind the paper's Level 2 can select (constant, max-apriori,
// subset tree, incremental Bayes, one-level nearest-centroid), a
// CompiledModel decision over the same feature values must equal the
// interpreted InputClassifier::classify() decision -- and examine exactly
// the same features. The suite drives every kind over many random rows,
// directly and after a serialize -> load -> compile round trip.
//
//===----------------------------------------------------------------------===//

#include "runtime/CompiledModel.h"

#include "core/Classifiers.h"
#include "runtime/SimdLanes.h"
#include "serialize/ModelIO.h"
#include "support/AlignedAlloc.h"
#include "support/Random.h"
#include "support/SimdDispatch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

using namespace pbt;

namespace {

constexpr unsigned kNumFlat = 9;
constexpr unsigned kNumClasses = 4;
constexpr size_t kNumRows = 160;

/// A deterministic synthetic training table whose labels correlate with
/// several features, so trees and Bayes models grow real structure.
struct Table {
  linalg::Matrix X;
  std::vector<unsigned> Y;
};

Table makeTable(uint64_t Seed) {
  Table T;
  support::Rng Rng(Seed);
  T.X = linalg::Matrix(kNumRows, kNumFlat);
  T.Y.resize(kNumRows);
  for (size_t I = 0; I != kNumRows; ++I) {
    for (size_t J = 0; J != kNumFlat; ++J)
      T.X.at(I, J) = Rng.uniform(0, 10);
    unsigned L = 0;
    if (T.X.at(I, 0) > 5.0)
      L += 1;
    if (T.X.at(I, 3) + T.X.at(I, 7) > 9.0)
      L += 2;
    T.Y[I] = L % kNumClasses;
  }
  // Column 5 is constant: exercises the normalizer's zero-variance rule.
  for (size_t I = 0; I != kNumRows; ++I)
    T.X.at(I, 5) = 3.25;
  return T;
}

/// Counting probe over a dense row: what the interpreted path sees.
struct RowProbe {
  static core::FeatureProbe make(const linalg::Matrix &X, size_t Row) {
    return core::FeatureProbe(kNumFlat, [&X, Row](unsigned F) {
      return std::make_pair(X.at(Row, F), 1.0);
    });
  }
};

/// Runs the compiled production path over row \p Row, counting feature
/// accesses the same way the probe counts extractions.
unsigned compiledDecide(const runtime::CompiledModel &M,
                        runtime::CompiledModel::Scratch &S,
                        const linalg::Matrix &X, size_t Row,
                        unsigned *ExaminedOut = nullptr) {
  std::vector<char> Seen(kNumFlat, 0);
  unsigned Examined = 0;
  unsigned L = M.decideProduction(S, [&](unsigned F) {
    if (!Seen[F]) {
      Seen[F] = 1;
      ++Examined;
    }
    return X.at(Row, F);
  });
  if (ExaminedOut)
    *ExaminedOut = Examined;
  return L;
}

/// Asserts that every available SIMD lane engine classifies blocks of
/// rows decision-identically to the scalar compiled path, for every
/// partial lane count 1..Width.
void expectLaneParity(const runtime::CompiledModel &M, const Table &T) {
  runtime::CompiledModel::Scratch SScalar = M.makeScratch();
  runtime::CompiledModel::Scratch SLane = M.makeScratch();
  // The declared read set must be sorted, unique and in range -- lane
  // staging fills exactly this set and nothing else.
  const std::vector<uint32_t> &Reads = M.productionReads();
  for (size_t I = 0; I != Reads.size(); ++I) {
    EXPECT_LT(Reads[I], kNumFlat);
    if (I)
      EXPECT_LT(Reads[I - 1], Reads[I]);
  }
  for (const runtime::LaneEngine *E : runtime::availableLaneEngines()) {
    for (unsigned Count = 1; Count <= E->Width; ++Count) {
      for (size_t Base = 0; Base + Count <= T.X.rows(); Base += Count) {
        // Poison the whole block, then stage only the declared read
        // set: a kernel examining any undeclared feature diverges
        // loudly instead of passing on stale-but-plausible values.
        std::fill(SLane.LaneBlock.begin(), SLane.LaneBlock.end(), 1e300);
        for (unsigned L = 0; L != Count; ++L)
          for (uint32_t F : Reads)
            SLane.LaneBlock[static_cast<size_t>(F) * E->Width + L] =
                T.X.at(Base + L, F);
        unsigned Out[runtime::kMaxLaneWidth] = {0};
        M.classifyProductionBlock(*E, SLane, Count, Out);
        for (unsigned L = 0; L != Count; ++L)
          EXPECT_EQ(Out[L], compiledDecide(M, SScalar, T.X, Base + L))
              << support::simdTierName(E->Tier) << " lane " << L << " of "
              << Count << " diverged on row " << Base + L;
      }
    }
  }
}

/// Asserts interpreted/compiled parity for \p Classifier over every row,
/// both compiled directly and compiled from a serialized round trip.
void expectParity(const core::InputClassifier &Classifier,
                  const Table &T) {
  runtime::CompiledModel Direct = runtime::CompiledModel::compileClassifiers(
      Classifier, nullptr, kNumFlat, kNumClasses);
  ASSERT_TRUE(Direct.ready());

  serialize::Writer W;
  serialize::saveClassifier(W, Classifier);
  serialize::Reader R(W.str());
  std::unique_ptr<core::InputClassifier> Loaded =
      serialize::loadClassifier(R, kNumClasses, kNumFlat);
  ASSERT_NE(Loaded, nullptr) << R.error();
  runtime::CompiledModel RoundTripped =
      runtime::CompiledModel::compileClassifiers(*Loaded, nullptr, kNumFlat,
                                                 kNumClasses);
  ASSERT_TRUE(RoundTripped.ready());

  runtime::CompiledModel::Scratch SDirect = Direct.makeScratch();
  runtime::CompiledModel::Scratch SRound = RoundTripped.makeScratch();
  for (size_t Row = 0; Row != T.X.rows(); ++Row) {
    core::FeatureProbe Probe = RowProbe::make(T.X, Row);
    unsigned Interpreted = Classifier.classify(Probe);

    unsigned Examined = 0;
    unsigned Compiled = compiledDecide(Direct, SDirect, T.X, Row, &Examined);
    EXPECT_EQ(Compiled, Interpreted)
        << Classifier.describe() << " diverged on row " << Row;
    EXPECT_EQ(Examined, Probe.numExtracted())
        << Classifier.describe() << " examined different features on row "
        << Row;

    EXPECT_EQ(compiledDecide(RoundTripped, SRound, T.X, Row), Interpreted)
        << Classifier.describe()
        << " diverged after serialize/load/compile on row " << Row;
  }

  // And the SIMD lane engines must agree with the scalar walk they
  // replay, on every tier this host can execute and every partial lane.
  expectLaneParity(Direct, T);
}

TEST(CompiledModelTest, ConstantClassifierParity) {
  Table T = makeTable(11);
  core::ConstantClassifier C(2);
  expectParity(C, T);
}

TEST(CompiledModelTest, MaxAprioriClassifierParity) {
  Table T = makeTable(12);
  ml::MaxApriori Model;
  Model.fit(T.Y, kNumClasses);
  core::MaxAprioriClassifier C(std::move(Model));
  expectParity(C, T);
}

TEST(CompiledModelTest, SubsetTreeClassifierParity) {
  Table T = makeTable(13);
  ml::DecisionTreeOptions Options;
  Options.AllowedFeatures = {0, 3, 7};
  ml::DecisionTree Tree;
  Tree.fit(T.X, T.Y, kNumClasses, Options);
  ASSERT_GT(Tree.numNodes(), 1u) << "degenerate tree defeats the test";
  core::SubsetTreeClassifier C(std::move(Tree), {0, 3, 7}, "tree{0,3,7}");
  expectParity(C, T);
}

TEST(CompiledModelTest, SingleLeafTreeParity) {
  // A pure-label table trains to one leaf: the smallest valid tree must
  // still lower and serve.
  Table T = makeTable(14);
  std::fill(T.Y.begin(), T.Y.end(), 3u);
  ml::DecisionTree Tree;
  Tree.fit(T.X, T.Y, kNumClasses);
  EXPECT_EQ(Tree.numNodes(), 1u);
  core::SubsetTreeClassifier C(std::move(Tree), {}, "tree{leaf}");
  expectParity(C, T);
}

TEST(CompiledModelTest, IncrementalClassifierParity) {
  Table T = makeTable(15);
  std::vector<unsigned> Order = {2, 0, 7, 3, 5};
  ml::IncrementalBayesOptions Options;
  Options.Bins = 6;
  Options.PosteriorThreshold = 0.6;
  ml::IncrementalBayes Model;
  Model.fit(T.X, T.Y, kNumClasses, Order, Options);
  core::IncrementalClassifier C(std::move(Model), "incremental{test}");
  expectParity(C, T);
}

TEST(CompiledModelTest, IncrementalUnreachableThresholdParity) {
  // A threshold no posterior can clear forces the full acquisition loop
  // (the no-early-exit corner of the Bayes lowering).
  Table T = makeTable(16);
  std::vector<unsigned> Order = {1, 4, 6};
  ml::IncrementalBayesOptions Options;
  Options.PosteriorThreshold = 1.1;
  ml::IncrementalBayes Model;
  Model.fit(T.X, T.Y, kNumClasses, Order, Options);
  core::IncrementalClassifier C(std::move(Model), "incremental{noexit}");
  expectParity(C, T);
}

TEST(CompiledModelTest, OneLevelClassifierParity) {
  Table T = makeTable(17);
  ml::Normalizer Norm;
  Norm.fit(T.X);
  linalg::Matrix Normalized = Norm.transform(T.X);
  ml::KMeansOptions Options;
  Options.K = kNumClasses;
  Options.Seed = 5;
  ml::KMeansResult Clusters = ml::kMeans(Normalized, Options);
  std::vector<unsigned> ClusterLandmark = {1, 3, 0, 2};
  core::OneLevelClassifier C(std::move(Clusters.Centroids), std::move(Norm),
                             std::move(ClusterLandmark));
  expectParity(C, T);
}

TEST(CompiledModelTest, ArenaAndLaneScratchAre64ByteAligned) {
  // The SIMD tiers use full-width aligned loads over the arena and the
  // lane scratch; both must sit on cache-line boundaries.
  auto Aligned = [](const void *P) {
    return reinterpret_cast<uintptr_t>(P) % support::kCacheLineBytes == 0;
  };

  ml::CompiledArena Arena;
  const double F[3] = {1.0, 2.0, 3.0};
  const int32_t I[3] = {4, 5, 6};
  Arena.appendF64(F, 3);
  Arena.appendI32(I, 3);
  EXPECT_TRUE(Aligned(Arena.F64.data()));
  EXPECT_TRUE(Aligned(Arena.I32.data()));

  Table T = makeTable(19);
  std::vector<unsigned> Order = {2, 0, 7};
  ml::IncrementalBayes Model;
  Model.fit(T.X, T.Y, kNumClasses, Order, ml::IncrementalBayesOptions());
  core::IncrementalClassifier C(std::move(Model), "incremental{align}");
  runtime::CompiledModel M = runtime::CompiledModel::compileClassifiers(
      C, nullptr, kNumFlat, kNumClasses);
  ASSERT_TRUE(M.ready());

  runtime::CompiledModel::Scratch S = M.makeScratch();
  EXPECT_TRUE(Aligned(S.LaneBlock.data()));
  EXPECT_TRUE(Aligned(S.LaneF64.data()));
  EXPECT_TRUE(Aligned(S.LaneI32.data()));
  // Every carved lane-view section must stay on a 64-byte boundary.
  runtime::LaneScratchView V = S.laneView();
  for (const double *P : {V.LogPost, V.Row, V.V, V.T, V.MaxLog})
    EXPECT_TRUE(Aligned(P));
  for (const int32_t *P : {V.Node, V.Lo, V.Hi, V.Best, V.State})
    EXPECT_TRUE(Aligned(P));
}

TEST(CompiledModelTest, NotReadyWithoutClassifiers) {
  runtime::CompiledModel M;
  EXPECT_FALSE(M.ready());
  serialize::TrainedModel Empty;
  EXPECT_FALSE(runtime::CompiledModel::compile(Empty).ready());
}

TEST(CompiledModelTest, CompileInlinesLandmarkConfigurations) {
  // compile(TrainedModel) also flattens the landmark configurations into
  // the arena; check the inlined values against the originals.
  Table T = makeTable(18);
  serialize::TrainedModel Model;
  Model.Meta.Features = {{"a", 3u}, {"b", 3u}, {"c", 3u}};
  ASSERT_EQ(Model.Meta.numFlatFeatures(), kNumFlat);
  Model.System.L1.Landmarks = {
      runtime::Configuration({1.0, 2.0, 3.0}),
      runtime::Configuration({4.0, 5.0, 6.0}),
      runtime::Configuration({7.0, 8.0, 9.0}),
      runtime::Configuration({10.0, 11.0, 12.0}),
  };
  ml::MaxApriori Prior;
  Prior.fit(T.Y, kNumClasses);
  Model.System.L2.Production =
      std::make_unique<core::MaxAprioriClassifier>(std::move(Prior));

  runtime::CompiledModel M = runtime::CompiledModel::compile(Model);
  ASSERT_TRUE(M.ready());
  EXPECT_FALSE(M.hasOneLevel());
  EXPECT_EQ(M.numLandmarks(), 4u);
  ASSERT_EQ(M.landmarkArity(), 3u);
  for (unsigned L = 0; L != 4; ++L) {
    const double *V = M.landmarkValues(L);
    for (unsigned P = 0; P != 3; ++P)
      EXPECT_EQ(V[P], Model.System.L1.Landmarks[L].real(P));
    // No recorded space: every parameter reads as active.
    EXPECT_EQ(M.landmarkActiveMask(L), uint64_t(0b111));
  }
  EXPECT_GT(M.arenaBytes(), 0u);
}

TEST(CompiledModelTest, CompilePrecomputesLandmarkActiveMasks) {
  // With a conditional space recorded in the model's provenance, compile
  // precomputes which parameters exist under each landmark.
  Table T = makeTable(18);
  serialize::TrainedModel Model;
  Model.Meta.Features = {{"a", 3u}, {"b", 3u}, {"c", 3u}};
  runtime::ConfigSpace &Space = Model.Meta.Space;
  Space.addCategorical("solver", 2);
  Space.addReal("tolerance", 0.0, 1.0);
  Space.addInteger("sweeps", 1, 8);
  Space.makeConditional(1, 0, {1}); // tolerance only under solver=1
  Space.makeConditional(2, 0, {0}); // sweeps only under solver=0
  Model.System.L1.Landmarks = {
      runtime::Configuration({0.0, 0.5, 3.0}),
      runtime::Configuration({1.0, 0.25, 4.0}),
  };
  ml::MaxApriori Prior;
  Prior.fit(T.Y, kNumClasses);
  Model.System.L2.Production =
      std::make_unique<core::MaxAprioriClassifier>(std::move(Prior));

  runtime::CompiledModel M = runtime::CompiledModel::compile(Model);
  ASSERT_TRUE(M.ready());
  ASSERT_EQ(M.numLandmarks(), 2u);
  EXPECT_EQ(M.landmarkActiveMask(0), uint64_t(0b101)); // solver + sweeps
  EXPECT_EQ(M.landmarkActiveMask(1), uint64_t(0b011)); // solver + tolerance
}

} // namespace

//===- tests/runtime/DriftMonitorTest.cpp ------------------------------------=//
//
// The two-window divergence test behind the adaptive serving loop:
// stationary traffic must stay quiet, each of the three signals (feature
// mean shift, cluster-histogram TV, decision-mix TV) must fire on its
// own, and the interval/cooldown/rebase mechanics must behave as
// documented.
//
//===----------------------------------------------------------------------===//

#include "runtime/DriftMonitor.h"

#include "support/Random.h"

#include <gtest/gtest.h>

#include <vector>

using namespace pbt;
using namespace pbt::runtime;

namespace {

constexpr unsigned kFeatures = 3;
constexpr unsigned kClusters = 2;
constexpr unsigned kDecisions = 2;

DriftMonitorOptions tightOptions() {
  DriftMonitorOptions O;
  O.Window = 32;
  O.MinSamples = 16;
  O.CheckInterval = 4;
  O.Cooldown = 16;
  O.MeanShiftThreshold = 2.0;
  O.ClusterTVThreshold = 0.45;
  O.DecisionTVThreshold = 0.45;
  return O;
}

DriftMonitor referenceMonitor() {
  DriftMonitor M(kFeatures, kClusters, kDecisions, tightOptions());
  // Reference: features ~ N(0, 1), both clusters and decisions 50/50.
  M.setReference({0.0, 0.0, 0.0}, {1.0, 1.0, 1.0}, {10.0, 10.0},
                 {10.0, 10.0});
  return M;
}

/// Feeds \p N stationary observations (drawn to match the reference) and
/// returns true when any of them flagged drift.
bool feedStationary(DriftMonitor &M, support::Rng &Rng, size_t N) {
  bool Flagged = false;
  for (size_t I = 0; I != N; ++I) {
    double F[kFeatures] = {Rng.gaussian(), Rng.gaussian(), Rng.gaussian()};
    Flagged |= M.observe(F, Rng.chance(0.5) ? 1u : 0u,
                         Rng.chance(0.5) ? 1u : 0u);
  }
  return Flagged;
}

TEST(DriftMonitorTest, StationaryTrafficStaysQuiet) {
  DriftMonitor M = referenceMonitor();
  support::Rng Rng(7);
  EXPECT_FALSE(feedStationary(M, Rng, 500));
  EXPECT_EQ(M.observations(), 500u);
  EXPECT_FALSE(M.lastSignal().Drifted);
}

TEST(DriftMonitorTest, FeatureMeanShiftFlags) {
  DriftMonitor M = referenceMonitor();
  support::Rng Rng(8);
  bool Flagged = false;
  for (size_t I = 0; I != 64 && !Flagged; ++I) {
    // Feature 1 jumps four reference sigmas; the rest stay put.
    double F[kFeatures] = {Rng.gaussian(), 4.0 + Rng.gaussian(),
                           Rng.gaussian()};
    Flagged = M.observe(F, Rng.chance(0.5) ? 1u : 0u,
                        Rng.chance(0.5) ? 1u : 0u);
  }
  ASSERT_TRUE(Flagged);
  EXPECT_TRUE(M.lastSignal().Drifted);
  EXPECT_EQ(M.lastSignal().MeanShiftFeature, 1u);
  EXPECT_GT(M.lastSignal().MeanShift, 2.0);
}

TEST(DriftMonitorTest, ClusterHistogramShiftFlags) {
  DriftMonitor M = referenceMonitor();
  support::Rng Rng(9);
  bool Flagged = false;
  for (size_t I = 0; I != 64 && !Flagged; ++I) {
    double F[kFeatures] = {Rng.gaussian(), Rng.gaussian(), Rng.gaussian()};
    // Every input suddenly lands in cluster 0 (reference: 50/50, TV 0.5).
    Flagged = M.observe(F, 0u, Rng.chance(0.5) ? 1u : 0u);
  }
  ASSERT_TRUE(Flagged);
  EXPECT_GT(M.lastSignal().ClusterTV, 0.45);
  EXPECT_LE(M.lastSignal().MeanShift, 2.0);
}

TEST(DriftMonitorTest, DecisionMixShiftFlags) {
  DriftMonitor M = referenceMonitor();
  support::Rng Rng(10);
  bool Flagged = false;
  for (size_t I = 0; I != 64 && !Flagged; ++I) {
    double F[kFeatures] = {Rng.gaussian(), Rng.gaussian(), Rng.gaussian()};
    Flagged = M.observe(F, Rng.chance(0.5) ? 1u : 0u, 1u);
  }
  ASSERT_TRUE(Flagged);
  EXPECT_GT(M.lastSignal().DecisionTV, 0.45);
}

TEST(DriftMonitorTest, NoTestBeforeMinSamplesAndOnlyOnTheInterval) {
  DriftMonitor M = referenceMonitor();
  // Massively drifted data, but fewer than MinSamples observations:
  // observe() must not test yet, and check() must stay quiet too.
  for (size_t I = 0; I != 15; ++I) {
    double F[kFeatures] = {50.0, 50.0, 50.0};
    EXPECT_FALSE(M.observe(F, 0u, 0u)) << "flagged before MinSamples";
  }
  EXPECT_FALSE(M.check().Drifted);
  // The 16th observation reaches MinSamples; the next interval boundary
  // (a multiple of CheckInterval = 4) runs the test and flags.
  double F[kFeatures] = {50.0, 50.0, 50.0};
  EXPECT_TRUE(M.observe(F, 0u, 0u));
}

TEST(DriftMonitorTest, RebaseToWindowAdoptsTheNewRegime) {
  DriftMonitor M = referenceMonitor();
  support::Rng Rng(11);
  // Drift into a new regime around mean 4.
  bool Flagged = false;
  for (size_t I = 0; I != 64 && !Flagged; ++I) {
    double F[kFeatures] = {4.0 + Rng.gaussian(), Rng.gaussian(),
                           Rng.gaussian()};
    Flagged = M.observe(F, 0u, 0u);
  }
  ASSERT_TRUE(Flagged);
  M.rebaseToWindow();
  EXPECT_EQ(M.windowFill(), 0u);
  // The same regime is now the null hypothesis: no more flags, even far
  // past the cooldown.
  bool Reflagged = false;
  for (size_t I = 0; I != 200; ++I) {
    double F[kFeatures] = {4.0 + Rng.gaussian(), Rng.gaussian(),
                           Rng.gaussian()};
    Reflagged |= M.observe(F, 0u, 0u);
  }
  EXPECT_FALSE(Reflagged) << "rebased monitor re-flagged its own reference";
}

TEST(DriftMonitorTest, CooldownSuppressesImmediateReflagging) {
  DriftMonitorOptions O = tightOptions();
  O.Cooldown = 1000;
  DriftMonitor M(kFeatures, kClusters, kDecisions, O);
  M.setReference({0.0, 0.0, 0.0}, {1.0, 1.0, 1.0}, {10.0, 10.0},
                 {10.0, 10.0});
  M.rebaseToWindow(); // arms the cooldown at observation 0
  bool Flagged = false;
  for (size_t I = 0; I != 500; ++I) {
    double F[kFeatures] = {50.0, 50.0, 50.0};
    Flagged |= M.observe(F, 0u, 0u);
  }
  EXPECT_FALSE(Flagged) << "flagged during cooldown";
  // check() ignores the cooldown by design (an explicit probe).
  EXPECT_TRUE(M.check().Drifted);
}

TEST(DriftMonitorTest, TotalVariationBasics) {
  EXPECT_DOUBLE_EQ(totalVariation({1.0, 1.0}, {1.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(totalVariation({2.0, 0.0}, {0.0, 2.0}), 1.0);
  EXPECT_NEAR(totalVariation({3.0, 1.0}, {1.0, 1.0}), 0.25, 1e-12);
  // All-zero histograms are treated as uniform.
  EXPECT_DOUBLE_EQ(totalVariation({0.0, 0.0}, {5.0, 5.0}), 0.0);
}

} // namespace

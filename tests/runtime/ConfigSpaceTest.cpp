//===- tests/runtime/ConfigSpaceTest.cpp -------------------------------------=//

#include "runtime/ConfigSpace.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace pbt;
using namespace pbt::runtime;

namespace {

ConfigSpace makeSpace() {
  ConfigSpace S;
  S.addCategorical("algo", 5);
  S.addInteger("cutoff", 4, 4096, /*LogScale=*/true);
  S.addReal("omega", 1.0, 1.95);
  return S;
}

TEST(ConfigSpaceTest, DeclarationAndLookup) {
  ConfigSpace S = makeSpace();
  EXPECT_EQ(S.size(), 3u);
  EXPECT_EQ(S.indexOf("cutoff"), 1);
  EXPECT_EQ(S.indexOf("nonexistent"), -1);
  EXPECT_EQ(S.param(0).Kind, ParamKind::Categorical);
  EXPECT_EQ(S.param(0).Cardinality, 5u);
  EXPECT_TRUE(S.param(1).LogScale);
}

TEST(ConfigSpaceTest, RandomConfigsStayInBounds) {
  ConfigSpace S = makeSpace();
  support::Rng Rng(3);
  for (int I = 0; I != 500; ++I) {
    Configuration C = S.randomConfig(Rng);
    ASSERT_EQ(C.size(), 3u);
    EXPECT_LT(C.category(0), 5u);
    EXPECT_GE(C.integer(1), 4);
    EXPECT_LE(C.integer(1), 4096);
    // Integer params hold exact integral values.
    EXPECT_DOUBLE_EQ(C.real(1), std::round(C.real(1)));
    EXPECT_GE(C.real(2), 1.0);
    EXPECT_LE(C.real(2), 1.95);
  }
}

TEST(ConfigSpaceTest, LogScaleSamplingCoversDecades) {
  ConfigSpace S;
  S.addInteger("cut", 4, 4096, /*LogScale=*/true);
  support::Rng Rng(4);
  int Small = 0, Large = 0;
  for (int I = 0; I != 2000; ++I) {
    int64_t V = S.randomConfig(Rng).integer(0);
    if (V <= 64)
      ++Small;
    if (V >= 512)
      ++Large;
  }
  // Log-uniform sampling gives each decade similar mass; a linear sampler
  // would put <2% below 64.
  EXPECT_GT(Small, 300);
  EXPECT_GT(Large, 300);
}

TEST(ConfigSpaceTest, DefaultConfigIsValidAndDeterministic) {
  ConfigSpace S = makeSpace();
  Configuration A = S.defaultConfig();
  Configuration B = S.defaultConfig();
  EXPECT_EQ(A, B);
  EXPECT_LT(A.category(0), 5u);
  EXPECT_GE(A.integer(1), 4);
  EXPECT_LE(A.integer(1), 4096);
}

TEST(ConfigSpaceTest, MutationPreservesValidity) {
  ConfigSpace S = makeSpace();
  support::Rng Rng(5);
  Configuration C = S.defaultConfig();
  for (int I = 0; I != 1000; ++I) {
    S.mutate(C, Rng, /*Rate=*/0.8, /*Strength=*/0.3);
    EXPECT_LT(C.category(0), 5u);
    EXPECT_GE(C.integer(1), 4);
    EXPECT_LE(C.integer(1), 4096);
    EXPECT_DOUBLE_EQ(C.real(1), std::round(C.real(1)));
    EXPECT_GE(C.real(2), 1.0);
    EXPECT_LE(C.real(2), 1.95);
  }
}

TEST(ConfigSpaceTest, MutationActuallyChangesValues) {
  ConfigSpace S = makeSpace();
  support::Rng Rng(6);
  Configuration C = S.defaultConfig();
  Configuration Orig = C;
  S.mutate(C, Rng, /*Rate=*/1.0, /*Strength=*/0.3);
  EXPECT_FALSE(C == Orig);
}

TEST(ConfigSpaceTest, CrossoverTakesGenesFromParents) {
  ConfigSpace S = makeSpace();
  support::Rng Rng(7);
  Configuration A(std::vector<double>{0.0, 4.0, 1.0});
  Configuration B(std::vector<double>{4.0, 4096.0, 1.95});
  for (int I = 0; I != 100; ++I) {
    Configuration C = S.crossover(A, B, Rng);
    for (unsigned P = 0; P != 3; ++P)
      EXPECT_TRUE(C.real(P) == A.real(P) || C.real(P) == B.real(P));
  }
}

TEST(ConfigSpaceTest, RepairClampsAndRounds) {
  ConfigSpace S = makeSpace();
  Configuration C(std::vector<double>{9.7, 100000.0, 0.2});
  S.repair(C);
  EXPECT_EQ(C.category(0), 4u);
  EXPECT_EQ(C.integer(1), 4096);
  EXPECT_DOUBLE_EQ(C.real(2), 1.0);
}

TEST(ConfigSpaceTest, SearchSpaceLog10Composes) {
  ConfigSpace S;
  S.addCategorical("a", 10);
  S.addCategorical("b", 10);
  EXPECT_NEAR(S.searchSpaceLog10(), 2.0, 1e-12);
}

/// A nested conditional space: solver picks a family; the iterative
/// branch owns a tolerance; the multigrid branch owns a smoother whose
/// SOR choice owns omega (a two-level chain).
ConfigSpace makeConditionalSpace() {
  ConfigSpace S;
  unsigned Solver = S.addCategorical("solver", 3); // 0=direct 1=iter 2=mg
  unsigned Tol = S.addReal("tolerance", 1e-12, 1e-3, /*LogScale=*/true);
  unsigned Smoother = S.addCategorical("smoother", 2); // 0=jacobi 1=sor
  unsigned Omega = S.addReal("omega", 1.0, 1.95);
  S.makeConditional(Tol, Solver, {1});
  S.makeConditional(Smoother, Solver, {2});
  S.makeConditional(Omega, Smoother, {1});
  return S;
}

TEST(ConfigSpaceTest, ConditionalActivityWalksParentChain) {
  ConfigSpace S = makeConditionalSpace();
  EXPECT_FALSE(S.conditional(0));
  EXPECT_TRUE(S.conditional(1));

  Configuration C = S.defaultConfig(); // solver=0 (direct)
  EXPECT_TRUE(S.active(C, 0));
  EXPECT_FALSE(S.active(C, 1));
  EXPECT_FALSE(S.active(C, 2));
  EXPECT_FALSE(S.active(C, 3));
  EXPECT_EQ(S.activeMask(C), uint64_t(0b0001));

  C.set(0, 1.0); // iterative: tolerance opens
  EXPECT_TRUE(S.active(C, 1));
  EXPECT_FALSE(S.active(C, 3));
  EXPECT_EQ(S.activeMask(C), uint64_t(0b0011));

  C.set(0, 2.0); // multigrid: smoother opens, omega still gated
  C.set(2, 0.0);
  EXPECT_FALSE(S.active(C, 1));
  EXPECT_TRUE(S.active(C, 2));
  EXPECT_FALSE(S.active(C, 3));
  C.set(2, 1.0); // SOR: omega opens through the chain
  EXPECT_TRUE(S.active(C, 3));
  EXPECT_EQ(S.activeMask(C), uint64_t(0b1101));
}

TEST(ConfigSpaceTest, CanonicalizePinsDeadBranches) {
  ConfigSpace S = makeConditionalSpace();
  Configuration C = S.defaultConfig();
  C.set(0, 0.0);    // direct: everything conditional is dead
  C.set(1, 5e-4);   // junk in dead branches...
  C.set(2, 1.0);
  C.set(3, 1.5);
  S.canonicalize(C);
  // ...is pinned back to the canonical (default) values.
  EXPECT_DOUBLE_EQ(C.real(1), S.canonicalValue(1));
  EXPECT_DOUBLE_EQ(C.real(2), S.canonicalValue(2));
  EXPECT_DOUBLE_EQ(C.real(3), S.canonicalValue(3));
  // Two configs differing only in nonexistent tunables now compare equal.
  Configuration D = S.defaultConfig();
  D.set(1, 1e-5);
  S.canonicalize(D);
  EXPECT_EQ(C, D);
}

TEST(ConfigSpaceTest, RandomConditionalConfigsAreCanonical) {
  ConfigSpace S = makeConditionalSpace();
  support::Rng Rng(11);
  int SawIter = 0, SawMg = 0;
  for (int I = 0; I != 500; ++I) {
    Configuration C = S.randomConfig(Rng);
    Configuration Copy = C;
    S.canonicalize(Copy);
    EXPECT_EQ(C, Copy) << "randomConfig must return canonical configs";
    if (C.category(0) == 1) {
      ++SawIter;
      // Active tolerance is a genuine sample, in bounds.
      EXPECT_GE(C.real(1), 1e-12);
      EXPECT_LE(C.real(1), 1e-3);
    }
    if (C.category(0) == 2)
      ++SawMg;
  }
  EXPECT_GT(SawIter, 50);
  EXPECT_GT(SawMg, 50);
}

TEST(ConfigSpaceTest, MutationKeepsConditionalConfigsCanonical) {
  ConfigSpace S = makeConditionalSpace();
  support::Rng Rng(12);
  Configuration C = S.defaultConfig();
  int ToleranceChanged = 0;
  for (int I = 0; I != 2000; ++I) {
    double TolBefore = C.real(1);
    bool IterBefore = C.category(0) == 1;
    S.mutate(C, Rng, /*Rate=*/0.6, /*Strength=*/0.3);
    Configuration Copy = C;
    S.canonicalize(Copy);
    ASSERT_EQ(C, Copy) << "mutate must return canonical configs";
    // Newly-opened branches get fresh samples rather than the pin value.
    if (!IterBefore && C.category(0) == 1 && C.real(1) != TolBefore)
      ++ToleranceChanged;
  }
  EXPECT_GT(ToleranceChanged, 0)
      << "a parent flip should resample the activated child";
}

TEST(ConfigSpaceTest, CrossoverAndRepairCanonicalizeConditionals) {
  ConfigSpace S = makeConditionalSpace();
  support::Rng Rng(13);
  Configuration A(std::vector<double>{1.0, 1e-6, 0.0, 1.0});
  Configuration B(std::vector<double>{0.0, 1e-9, 1.0, 1.9});
  S.canonicalize(A);
  S.canonicalize(B);
  for (int I = 0; I != 200; ++I) {
    Configuration C = S.crossover(A, B, Rng);
    Configuration Copy = C;
    S.canonicalize(Copy);
    EXPECT_EQ(C, Copy);
  }
  Configuration Bad(std::vector<double>{7.0, 1.0, 9.0, -3.0});
  S.repair(Bad);
  Configuration Copy = Bad;
  S.canonicalize(Copy);
  EXPECT_EQ(Bad, Copy);
  EXPECT_LT(Bad.category(0), 3u);
}

TEST(ConfigurationTest, StringRoundTrip) {
  Configuration C(std::vector<double>{1.5, -2.0, 3.25e-7});
  Configuration D;
  ASSERT_TRUE(Configuration::fromString(C.toString(), D));
  EXPECT_EQ(C, D);
}

TEST(ConfigurationTest, FromStringRejectsGarbage) {
  Configuration D;
  EXPECT_FALSE(Configuration::fromString("1.0 banana 2.0", D));
}

} // namespace

//===- tests/runtime/ConfigSpaceTest.cpp -------------------------------------=//

#include "runtime/ConfigSpace.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace pbt;
using namespace pbt::runtime;

namespace {

ConfigSpace makeSpace() {
  ConfigSpace S;
  S.addCategorical("algo", 5);
  S.addInteger("cutoff", 4, 4096, /*LogScale=*/true);
  S.addReal("omega", 1.0, 1.95);
  return S;
}

TEST(ConfigSpaceTest, DeclarationAndLookup) {
  ConfigSpace S = makeSpace();
  EXPECT_EQ(S.size(), 3u);
  EXPECT_EQ(S.indexOf("cutoff"), 1);
  EXPECT_EQ(S.indexOf("nonexistent"), -1);
  EXPECT_EQ(S.param(0).Kind, ParamKind::Categorical);
  EXPECT_EQ(S.param(0).Cardinality, 5u);
  EXPECT_TRUE(S.param(1).LogScale);
}

TEST(ConfigSpaceTest, RandomConfigsStayInBounds) {
  ConfigSpace S = makeSpace();
  support::Rng Rng(3);
  for (int I = 0; I != 500; ++I) {
    Configuration C = S.randomConfig(Rng);
    ASSERT_EQ(C.size(), 3u);
    EXPECT_LT(C.category(0), 5u);
    EXPECT_GE(C.integer(1), 4);
    EXPECT_LE(C.integer(1), 4096);
    // Integer params hold exact integral values.
    EXPECT_DOUBLE_EQ(C.real(1), std::round(C.real(1)));
    EXPECT_GE(C.real(2), 1.0);
    EXPECT_LE(C.real(2), 1.95);
  }
}

TEST(ConfigSpaceTest, LogScaleSamplingCoversDecades) {
  ConfigSpace S;
  S.addInteger("cut", 4, 4096, /*LogScale=*/true);
  support::Rng Rng(4);
  int Small = 0, Large = 0;
  for (int I = 0; I != 2000; ++I) {
    int64_t V = S.randomConfig(Rng).integer(0);
    if (V <= 64)
      ++Small;
    if (V >= 512)
      ++Large;
  }
  // Log-uniform sampling gives each decade similar mass; a linear sampler
  // would put <2% below 64.
  EXPECT_GT(Small, 300);
  EXPECT_GT(Large, 300);
}

TEST(ConfigSpaceTest, DefaultConfigIsValidAndDeterministic) {
  ConfigSpace S = makeSpace();
  Configuration A = S.defaultConfig();
  Configuration B = S.defaultConfig();
  EXPECT_EQ(A, B);
  EXPECT_LT(A.category(0), 5u);
  EXPECT_GE(A.integer(1), 4);
  EXPECT_LE(A.integer(1), 4096);
}

TEST(ConfigSpaceTest, MutationPreservesValidity) {
  ConfigSpace S = makeSpace();
  support::Rng Rng(5);
  Configuration C = S.defaultConfig();
  for (int I = 0; I != 1000; ++I) {
    S.mutate(C, Rng, /*Rate=*/0.8, /*Strength=*/0.3);
    EXPECT_LT(C.category(0), 5u);
    EXPECT_GE(C.integer(1), 4);
    EXPECT_LE(C.integer(1), 4096);
    EXPECT_DOUBLE_EQ(C.real(1), std::round(C.real(1)));
    EXPECT_GE(C.real(2), 1.0);
    EXPECT_LE(C.real(2), 1.95);
  }
}

TEST(ConfigSpaceTest, MutationActuallyChangesValues) {
  ConfigSpace S = makeSpace();
  support::Rng Rng(6);
  Configuration C = S.defaultConfig();
  Configuration Orig = C;
  S.mutate(C, Rng, /*Rate=*/1.0, /*Strength=*/0.3);
  EXPECT_FALSE(C == Orig);
}

TEST(ConfigSpaceTest, CrossoverTakesGenesFromParents) {
  ConfigSpace S = makeSpace();
  support::Rng Rng(7);
  Configuration A(std::vector<double>{0.0, 4.0, 1.0});
  Configuration B(std::vector<double>{4.0, 4096.0, 1.95});
  for (int I = 0; I != 100; ++I) {
    Configuration C = S.crossover(A, B, Rng);
    for (unsigned P = 0; P != 3; ++P)
      EXPECT_TRUE(C.real(P) == A.real(P) || C.real(P) == B.real(P));
  }
}

TEST(ConfigSpaceTest, RepairClampsAndRounds) {
  ConfigSpace S = makeSpace();
  Configuration C(std::vector<double>{9.7, 100000.0, 0.2});
  S.repair(C);
  EXPECT_EQ(C.category(0), 4u);
  EXPECT_EQ(C.integer(1), 4096);
  EXPECT_DOUBLE_EQ(C.real(2), 1.0);
}

TEST(ConfigSpaceTest, SearchSpaceLog10Composes) {
  ConfigSpace S;
  S.addCategorical("a", 10);
  S.addCategorical("b", 10);
  EXPECT_NEAR(S.searchSpaceLog10(), 2.0, 1e-12);
}

TEST(ConfigurationTest, StringRoundTrip) {
  Configuration C(std::vector<double>{1.5, -2.0, 3.25e-7});
  Configuration D;
  ASSERT_TRUE(Configuration::fromString(C.toString(), D));
  EXPECT_EQ(C, D);
}

TEST(ConfigurationTest, FromStringRejectsGarbage) {
  Configuration D;
  EXPECT_FALSE(Configuration::fromString("1.0 banana 2.0", D));
}

} // namespace

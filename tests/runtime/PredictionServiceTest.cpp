//===- tests/runtime/PredictionServiceTest.cpp -------------------------------=//
//
// The offline-train / online-predict split: a PredictionService loaded
// from serialized bytes must reproduce, for every test input, exactly the
// configuration the in-process TrainedSystem chooses, while memoizing
// feature extraction across repeated calls.
//
//===----------------------------------------------------------------------===//

#include "runtime/PredictionService.h"

#include "core/FeatureProbe.h"
#include "registry/BenchmarkRegistry.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace pbt;

namespace {

constexpr double kScale = 0.1;

struct Trained {
  registry::ProgramPtr Program;
  std::vector<unsigned> ProductionChoices; // in-process, per test row
  std::vector<unsigned> OneLevelChoices;
  std::vector<double> ProductionCosts;
  std::string Text; // serialized model
};

/// Trains one registry benchmark and records the in-process decisions
/// before the system is moved into its serialized form.
Trained trainAndSerialize(const std::string &Name) {
  const registry::BenchmarkFactory &F =
      registry::BenchmarkRegistry::instance().get(Name);
  Trained T;
  T.Program = F.makeProgram(kScale, F.defaultProgramSeed());
  core::TrainedSystem System =
      core::trainSystem(*T.Program, F.defaultOptions(kScale));

  for (size_t Row : System.TestRows) {
    core::FeatureProbe Probe = core::probeFromTable(
        System.L1.Features, System.L1.ExtractCosts, Row);
    T.ProductionChoices.push_back(System.L2.Production->classify(Probe));
    T.ProductionCosts.push_back(Probe.totalCost());
    core::FeatureProbe OneProbe = core::probeFromTable(
        System.L1.Features, System.L1.ExtractCosts, Row);
    T.OneLevelChoices.push_back(System.OneLevel->classify(OneProbe));
  }

  serialize::TrainedModel Model = serialize::makeModel(
      Name, kScale, F.defaultProgramSeed(), *T.Program, std::move(System));
  T.Text = serialize::serializeModel(Model);
  return T;
}

class PredictionServiceTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() { Sort = new Trained(trainAndSerialize("sort1")); }
  static void TearDownTestSuite() {
    delete Sort;
    Sort = nullptr;
  }
  static Trained *Sort;
};

Trained *PredictionServiceTest::Sort = nullptr;

TEST_F(PredictionServiceTest, SerializedTextRoundTripsByteIdentically) {
  serialize::TrainedModel Loaded;
  serialize::LoadStatus Status = serialize::loadModel(Sort->Text, Loaded);
  ASSERT_TRUE(Status.Ok) << Status.Error;
  EXPECT_EQ(serialize::serializeModel(Loaded), Sort->Text);
}

TEST_F(PredictionServiceTest, ReproducesInProcessChoicesOnFreshLoad) {
  serialize::TrainedModel Loaded;
  ASSERT_TRUE(serialize::loadModel(Sort->Text, Loaded).Ok);
  runtime::PredictionService Service(std::move(Loaded));
  serialize::LoadStatus Bound = Service.bind(*Sort->Program);
  ASSERT_TRUE(Bound.Ok) << Bound.Error;
  ASSERT_TRUE(Service.ready());

  const std::vector<size_t> &Rows = Service.model().System.TestRows;
  ASSERT_EQ(Rows.size(), Sort->ProductionChoices.size());
  for (size_t I = 0; I != Rows.size(); ++I) {
    runtime::PredictionService::Decision D = Service.decide(Rows[I]);
    EXPECT_EQ(D.Landmark, Sort->ProductionChoices[I]) << "row " << Rows[I];
    ASSERT_NE(D.Config, nullptr);
    EXPECT_EQ(D.Config->values(),
              Service.model().System.L1.Landmarks[D.Landmark].values());
    // Live extraction pays exactly what the precomputed tables recorded.
    EXPECT_DOUBLE_EQ(D.FeatureCost, Sort->ProductionCosts[I]);
  }
}

TEST_F(PredictionServiceTest, OneLevelBaselineServedFromTheSameModel) {
  serialize::TrainedModel Loaded;
  ASSERT_TRUE(serialize::loadModel(Sort->Text, Loaded).Ok);
  runtime::PredictionService Service(std::move(Loaded));
  ASSERT_TRUE(Service.bind(*Sort->Program).Ok);

  const std::vector<size_t> &Rows = Service.model().System.TestRows;
  for (size_t I = 0; I != Rows.size(); ++I)
    EXPECT_EQ(Service.decideOneLevel(Rows[I]).Landmark,
              Sort->OneLevelChoices[I]);
}

TEST_F(PredictionServiceTest, MemoizesFeatureExtractionPerInput) {
  serialize::TrainedModel Loaded;
  ASSERT_TRUE(serialize::loadModel(Sort->Text, Loaded).Ok);
  runtime::PredictionService Service(std::move(Loaded));
  ASSERT_TRUE(Service.bind(*Sort->Program).Ok);

  size_t Row = Service.model().System.TestRows.front();
  runtime::PredictionService::Decision First = Service.decide(Row);
  runtime::PredictionService::Decision Second = Service.decide(Row);
  EXPECT_EQ(First.Landmark, Second.Landmark);
  EXPECT_EQ(Second.FeatureCost, 0.0);
  EXPECT_EQ(Second.FeaturesExtracted, 0u);
  EXPECT_TRUE(Second.Memoized);

  // The one-level baseline extracts every feature; it reuses the memo the
  // production classifier already populated where they overlap.
  runtime::PredictionService::Decision One = Service.decideOneLevel(Row);
  runtime::PredictionService::Decision OneAgain = Service.decideOneLevel(Row);
  EXPECT_EQ(One.Landmark, OneAgain.Landmark);
  EXPECT_TRUE(OneAgain.Memoized);

  const runtime::PredictionService::Stats &S = Service.stats();
  EXPECT_EQ(S.Calls, 4u);
  EXPECT_GE(S.MemoizedCalls, 2u);
  EXPECT_EQ(S.FeatureCostPaid, First.FeatureCost + One.FeatureCost);

  // Clearing the memo makes the next call pay again.
  Service.clearMemo();
  runtime::PredictionService::Decision Third = Service.decide(Row);
  EXPECT_EQ(Third.FeatureCost, First.FeatureCost);
  EXPECT_EQ(Third.Landmark, First.Landmark);
}

TEST(PredictionServiceBinPackingTest, ReproducesInProcessChoices) {
  // The variable-accuracy benchmark of the acceptance bar: serving from
  // bytes must equal the in-process system on every test input.
  Trained T = trainAndSerialize("binpacking");
  serialize::TrainedModel Loaded;
  ASSERT_TRUE(serialize::loadModel(T.Text, Loaded).Ok);
  EXPECT_EQ(serialize::serializeModel(Loaded), T.Text);
  runtime::PredictionService Service(std::move(Loaded));
  ASSERT_TRUE(Service.bind(*T.Program).Ok);

  const std::vector<size_t> &Rows = Service.model().System.TestRows;
  ASSERT_EQ(Rows.size(), T.ProductionChoices.size());
  for (size_t I = 0; I != Rows.size(); ++I) {
    EXPECT_EQ(Service.decide(Rows[I]).Landmark, T.ProductionChoices[I]);
    EXPECT_EQ(Service.decideOneLevel(Rows[I]).Landmark, T.OneLevelChoices[I]);
  }
}

TEST_F(PredictionServiceTest, BindRejectsMismatchedProgram) {
  serialize::TrainedModel Loaded;
  ASSERT_TRUE(serialize::loadModel(Sort->Text, Loaded).Ok);
  runtime::PredictionService Service(std::move(Loaded));

  const registry::BenchmarkFactory &F =
      registry::BenchmarkRegistry::instance().get("binpacking");
  registry::ProgramPtr Wrong = F.makeProgram(kScale, F.defaultProgramSeed());
  serialize::LoadStatus Bound = Service.bind(*Wrong);
  EXPECT_FALSE(Bound.Ok);
  EXPECT_FALSE(Bound.Error.empty());
  EXPECT_FALSE(Service.ready());
}

TEST_F(PredictionServiceTest, BindRejectsOutOfRangeLandmarkValues) {
  // A structurally valid file whose landmark values fall outside the
  // program's declared parameter ranges must not be served: the values
  // feed enum casts and array indexing inside the benchmarks.
  serialize::TrainedModel Loaded;
  ASSERT_TRUE(serialize::loadModel(Sort->Text, Loaded).Ok);
  Loaded.System.L1.Landmarks[0].set(0, 1e9);
  runtime::PredictionService Service(std::move(Loaded));
  serialize::LoadStatus Bound = Service.bind(*Sort->Program);
  EXPECT_FALSE(Bound.Ok);
  EXPECT_NE(Bound.Error.find("outside its declared range"),
            std::string::npos)
      << Bound.Error;
}

TEST_F(PredictionServiceTest, FailedLoadEmptiesTheService) {
  std::string Path = ::testing::TempDir() + "pbt_service_goodload.pbt";
  serialize::TrainedModel Model;
  ASSERT_TRUE(serialize::loadModel(Sort->Text, Model).Ok);
  ASSERT_TRUE(serialize::saveModelFile(Path, Model).Ok);

  runtime::PredictionService Service;
  ASSERT_TRUE(Service.loadFile(Path).Ok);
  ASSERT_TRUE(Service.bind(*Sort->Program).Ok);
  ASSERT_TRUE(Service.ready());

  // A failed reload must not keep serving the previous model.
  EXPECT_FALSE(Service.loadFile("/nonexistent/model.pbt").Ok);
  EXPECT_FALSE(Service.ready());
  std::remove(Path.c_str());
}

TEST_F(PredictionServiceTest, UnboundServiceReportsNotReady) {
  runtime::PredictionService Service;
  EXPECT_FALSE(Service.ready());
  EXPECT_FALSE(Service.bind(*Sort->Program).Ok);
}

TEST_F(PredictionServiceTest, FileRoundTripThroughDisk) {
  std::string Path = ::testing::TempDir() + "pbt_service_roundtrip.pbt";
  serialize::TrainedModel Model;
  ASSERT_TRUE(serialize::loadModel(Sort->Text, Model).Ok);
  ASSERT_TRUE(serialize::saveModelFile(Path, Model).Ok);

  runtime::PredictionService Service;
  serialize::LoadStatus Status = Service.loadFile(Path);
  ASSERT_TRUE(Status.Ok) << Status.Error;
  ASSERT_TRUE(Service.bind(*Sort->Program).Ok);
  const std::vector<size_t> &Rows = Service.model().System.TestRows;
  for (size_t I = 0; I != Rows.size(); ++I)
    EXPECT_EQ(Service.decide(Rows[I]).Landmark, Sort->ProductionChoices[I]);
  std::remove(Path.c_str());
}

} // namespace

//===- tests/registry/BenchmarkRegistryTest.cpp ------------------------------=//

#include "registry/BenchmarkRegistry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

using namespace pbt;
using namespace pbt::registry;

namespace {

// The paper's eight suite rows, in Table 1 order, covering all six
// benchmark classes (sort and clustering contribute two dataset flavours
// each).
const char *ExpectedNames[] = {"sort1",      "sort2",     "clustering1",
                               "clustering2", "binpacking", "svd",
                               "poisson2d",  "helmholtz3d"};

TEST(BenchmarkRegistryTest, EnumerationReturnsStandardSuiteInOrder) {
  std::vector<std::string> Names = BenchmarkRegistry::instance().names();
  ASSERT_GE(Names.size(), 8u);
  // The paper rows come first (suiteOrder 0..7); extra workloads may
  // follow.
  for (size_t I = 0; I != 8; ++I)
    EXPECT_EQ(Names[I], ExpectedNames[I]);
}

TEST(BenchmarkRegistryTest, AllSixBenchmarkClassesConstructibleByName) {
  // makeProgram round-trips by name: each registry key builds a live
  // program whose self-reported name equals the key (sort and clustering
  // report their dataset flavour, so all eight keys round-trip exactly).
  for (const char *Key : ExpectedNames) {
    const BenchmarkFactory &F = BenchmarkRegistry::instance().get(Key);
    EXPECT_EQ(F.name(), Key);
    ProgramPtr P = F.makeProgram(0.15, F.defaultProgramSeed());
    ASSERT_NE(P, nullptr) << Key;
    EXPECT_EQ(P->name(), Key);
    EXPECT_GE(P->numInputs(), 4u) << Key;
    EXPECT_FALSE(P->features().empty()) << Key;
  }
}

TEST(BenchmarkRegistryTest, ScaleStretchesInputCounts) {
  const BenchmarkFactory &F = BenchmarkRegistry::instance().get("sort2");
  ProgramPtr Small = F.makeProgram(0.2, 1);
  ProgramPtr Large = F.makeProgram(2.0, 1);
  EXPECT_LT(Small->numInputs(), Large->numInputs());
}

TEST(BenchmarkRegistryTest, SameSeedSameInputs) {
  const BenchmarkFactory &F = BenchmarkRegistry::instance().get("sort2");
  ProgramPtr A = F.makeProgram(0.15, 7);
  ProgramPtr B = F.makeProgram(0.15, 7);
  ASSERT_EQ(A->numInputs(), B->numInputs());
  support::CostCounter CA, CB;
  for (size_t I = 0; I != A->numInputs(); ++I)
    EXPECT_EQ(A->extractFeature(I, 0, 0, CA), B->extractFeature(I, 0, 0, CB));
}

TEST(BenchmarkRegistryTest, LookupUnknownNameReturnsNull) {
  EXPECT_EQ(BenchmarkRegistry::instance().lookup("no-such-benchmark"),
            nullptr);
}

TEST(BenchmarkRegistryTest, GetUnknownNameThrowsListingCatalog) {
  try {
    BenchmarkRegistry::instance().get("no-such-benchmark");
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range &E) {
    std::string Msg = E.what();
    EXPECT_NE(Msg.find("no-such-benchmark"), std::string::npos);
    // The error names the available keys for discoverability.
    EXPECT_NE(Msg.find("sort1"), std::string::npos);
  }
}

TEST(BenchmarkRegistryTest, MakeSuiteUnknownNameThrows) {
  EXPECT_THROW(makeSuite({"sort1", "bogus"}, 0.15, nullptr),
               std::out_of_range);
}

TEST(BenchmarkRegistryTest, DefaultOptionsScaleLandmarks) {
  const BenchmarkFactory &F = BenchmarkRegistry::instance().get("svd");
  core::PipelineOptions Small = F.defaultOptions(0.25);
  core::PipelineOptions Large = F.defaultOptions(4.0);
  EXPECT_LT(Small.L1.NumLandmarks, Large.L1.NumLandmarks);
  EXPECT_GE(Small.L1.NumLandmarks, 4u);
}

TEST(BenchmarkRegistryTest, MakeSuiteWiresPoolIntoOptions) {
  support::ThreadPool Pool(1);
  std::vector<SuiteEntry> Suite = makeSuite({"binpacking"}, 0.15, &Pool);
  ASSERT_EQ(Suite.size(), 1u);
  EXPECT_EQ(Suite[0].Options.Pool, &Pool);
  EXPECT_EQ(Suite[0].Name, "binpacking");
}

TEST(BenchmarkRegistryTest, DescribeIsNonEmptyForEveryEntry) {
  for (const BenchmarkFactory *F : BenchmarkRegistry::instance().all())
    EXPECT_FALSE(F->describe().empty()) << F->name();
}

} // namespace

# Runs the nonstationary-traffic harness through the pbt-bench CLI on an
# abrupt-shift sort1 schedule at small scale:
#
#   1. `pbt-bench stream` must exit 0 and emit the BENCH_stream.json
#      perf-trajectory record into its private scratch dir.
#   2. The record must report the stream fields the CI artifact
#      consumers rely on (drift detections, swap history, segments).
#
# Invoked by ctest (label: integration) with -DPBT_BENCH, -DGOLDEN_DIR
# and -DWORK_DIR defined. WORK_DIR must be unique to this test: ctest -j
# runs CLI tests concurrently, and shared scratch dirs are exactly the
# collision the per-test --out-dir discipline exists to prevent.

file(MAKE_DIRECTORY ${WORK_DIR})

execute_process(
  COMMAND ${PBT_BENCH} stream --model=${GOLDEN_DIR}/sort1.pbt
          --schedule=abrupt --requests=300 --key=2 --scale=0.5
          --window=32 --reservoir=32 --seconds=120 --threads=2
          --json --out-dir=${WORK_DIR}
  RESULT_VARIABLE STREAM_RESULT
  OUTPUT_VARIABLE STREAM_OUTPUT
  ERROR_VARIABLE STREAM_OUTPUT)
if(NOT STREAM_RESULT EQUAL 0)
  message(FATAL_ERROR "pbt-bench stream failed:\n${STREAM_OUTPUT}")
endif()

if(NOT EXISTS ${WORK_DIR}/BENCH_stream.json)
  message(FATAL_ERROR "pbt-bench stream --json wrote no BENCH_stream.json")
endif()

file(READ ${WORK_DIR}/BENCH_stream.json STREAM_JSON)
foreach(field "\"subcommand\": \"stream\"" "\"drift_detections\""
        "\"swap_history\"" "\"segments\"" "\"adaptive_mean_cost\"")
  string(FIND "${STREAM_JSON}" "${field}" FIELD_POS)
  if(FIELD_POS EQUAL -1)
    message(FATAL_ERROR
      "BENCH_stream.json is missing expected field ${field}:\n${STREAM_JSON}")
  endif()
endforeach()

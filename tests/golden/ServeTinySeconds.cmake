# Regression for the zero-batch percentile bug: `pbt-bench serve` with a
# time budget far below one batch must still exit 0, and the JSON must
# never present a 0.0 percentile as if it were a measured latency --
# a phase with no batches reports its percentiles as null. The old
# behavior emitted `"p50_batch_us": 0,` which downstream dashboards
# averaged in as a real (impossibly fast) datapoint.
#
# Invoked by ctest (label: integration) with -DPBT_BENCH, -DGOLDEN_DIR
# and -DWORK_DIR defined.

file(MAKE_DIRECTORY ${WORK_DIR})

execute_process(
  COMMAND ${PBT_BENCH} serve --model=${GOLDEN_DIR}/sort1.pbt
          --seconds=0.01 --batch=16 --threads=2
          --json --out-dir=${WORK_DIR}
  RESULT_VARIABLE SERVE_RESULT
  OUTPUT_VARIABLE SERVE_OUTPUT
  ERROR_VARIABLE SERVE_OUTPUT
  TIMEOUT 120)
if(NOT SERVE_RESULT EQUAL 0)
  message(FATAL_ERROR "pbt-bench serve failed (${SERVE_RESULT}):\n${SERVE_OUTPUT}")
endif()

if(NOT EXISTS ${WORK_DIR}/BENCH_serve.json)
  message(FATAL_ERROR "pbt-bench serve --json wrote no BENCH_serve.json")
endif()

file(READ ${WORK_DIR}/BENCH_serve.json SERVE_JSON)
string(FIND "${SERVE_JSON}" "\"p50_batch_us\"" P50_POS)
if(P50_POS EQUAL -1)
  message(FATAL_ERROR "BENCH_serve.json carries no p50_batch_us field:\n${SERVE_JSON}")
endif()

# A literal integer zero percentile is the bug; real measurements are
# positive and empty phases must be null.
foreach(bad "\"p50_batch_us\": 0," "\"p50_batch_us\": 0}"
        "\"p99_batch_us\": 0," "\"p99_batch_us\": 0}")
  string(FIND "${SERVE_JSON}" "${bad}" BAD_POS)
  if(NOT BAD_POS EQUAL -1)
    message(FATAL_ERROR
      "BENCH_serve.json reports a zero percentile as a measurement (${bad}):\n${SERVE_JSON}")
  endif()
endforeach()

# Runs the offline-train / online-predict workflow through the pbt-bench
# CLI and pins it against the committed goldens:
#
#   1. `pbt-bench train` at the golden provenance (sort1, scale 0.1) must
#      write a model byte-identical to tests/golden/sort1.pbt.
#   2. `pbt-bench predict` in a fresh process must serve decisions whose
#      CSV is byte-identical to tests/golden/sort1.choices.csv.
#
# Invoked by ctest (label: golden) with -DPBT_BENCH, -DGOLDEN_DIR and
# -DWORK_DIR defined.

file(MAKE_DIRECTORY ${WORK_DIR})

execute_process(
  COMMAND ${PBT_BENCH} train --only=sort1 --scale=0.1 --sequential
          --out=${WORK_DIR}/sort1.pbt
  RESULT_VARIABLE TRAIN_RESULT
  OUTPUT_VARIABLE TRAIN_OUTPUT
  ERROR_VARIABLE TRAIN_OUTPUT)
if(NOT TRAIN_RESULT EQUAL 0)
  message(FATAL_ERROR "pbt-bench train failed:\n${TRAIN_OUTPUT}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/sort1.pbt ${GOLDEN_DIR}/sort1.pbt
  RESULT_VARIABLE MODEL_DIFF)
if(NOT MODEL_DIFF EQUAL 0)
  message(FATAL_ERROR
    "pbt-bench train produced a model that differs from the committed "
    "golden (tests/golden/sort1.pbt). If the behaviour change is "
    "intentional, regenerate the goldens as documented in README.md.")
endif()

execute_process(
  COMMAND ${PBT_BENCH} predict --model=${WORK_DIR}/sort1.pbt
          --csv=${WORK_DIR}/sort1.choices.csv
  RESULT_VARIABLE PREDICT_RESULT
  OUTPUT_VARIABLE PREDICT_OUTPUT
  ERROR_VARIABLE PREDICT_OUTPUT)
if(NOT PREDICT_RESULT EQUAL 0)
  message(FATAL_ERROR "pbt-bench predict failed:\n${PREDICT_OUTPUT}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/sort1.choices.csv ${GOLDEN_DIR}/sort1.choices.csv
  RESULT_VARIABLE CSV_DIFF)
if(NOT CSV_DIFF EQUAL 0)
  message(FATAL_ERROR
    "pbt-bench predict decisions differ from the committed golden "
    "choices (tests/golden/sort1.choices.csv).")
endif()

# The pbt-serve daemon end to end through the two shipped binaries:
#
#   1. `pbt-bench loadgen --spawn` forks a private pbt-serve over the
#      committed golden sort1 model, drives N concurrent connections
#      through sustained + saturation phases, and shuts the server down
#      over the protocol (no orphaned daemons, no leftover sockets).
#   2. Every daemon answer is checked against an in-process
#      PredictionService::decideBatch replay; a single differing
#      landmark fails the run (exit 1), so exit 0 *is* the parity gate.
#   3. The BENCH_serve_daemon.json record must carry the fields CI
#      uploads: both phases, tail percentiles (p999), shed accounting
#      and the parity verdict.
#
# Invoked by ctest (label: integration) with -DPBT_BENCH, -DPBT_SERVE,
# -DGOLDEN_DIR and -DWORK_DIR defined.

file(MAKE_DIRECTORY ${WORK_DIR})

execute_process(
  COMMAND ${PBT_BENCH} loadgen --spawn --server-exe=${PBT_SERVE}
          --model=${GOLDEN_DIR}/sort1.pbt
          --connections=4 --workers=2 --queue=16 --batch-max=8
          --seconds=0.4 --threads=2
          --json --out-dir=${WORK_DIR}
  RESULT_VARIABLE LOADGEN_RESULT
  OUTPUT_VARIABLE LOADGEN_OUTPUT
  ERROR_VARIABLE LOADGEN_OUTPUT
  TIMEOUT 120)
if(NOT LOADGEN_RESULT EQUAL 0)
  message(FATAL_ERROR "pbt-bench loadgen failed (${LOADGEN_RESULT}):\n${LOADGEN_OUTPUT}")
endif()

if(NOT EXISTS ${WORK_DIR}/BENCH_serve_daemon.json)
  message(FATAL_ERROR "loadgen --json wrote no BENCH_serve_daemon.json")
endif()

file(READ ${WORK_DIR}/BENCH_serve_daemon.json DAEMON_JSON)
foreach(field "\"subcommand\": \"loadgen\"" "\"spawned\": true"
        "\"sustained\"" "\"saturation\"" "\"p999_us\""
        "\"decisions_per_sec\"" "\"shed\"" "\"parity_checked\": true"
        "\"choices_match_inprocess\": true" "\"server_stats\""
        "\"server_exit\": 0")
  string(FIND "${DAEMON_JSON}" "${field}" FIELD_POS)
  if(FIELD_POS EQUAL -1)
    message(FATAL_ERROR
      "BENCH_serve_daemon.json is missing expected field ${field}:\n${DAEMON_JSON}")
  endif()
endforeach()

//===- tests/golden/GoldenFileTest.cpp ---------------------------------------=//
//
// Golden-file regression suite: serialized models for sort1, binpacking,
// clustering1, clustering2, svd, poisson2d and helmholtz3d, trained at a
// fixed seed/scale, are committed under tests/golden/. The suite asserts
//
//   (1) the committed bytes still load, and re-serialize byte-identically
//       (format stability),
//   (2) retraining from scratch at the recorded provenance reproduces the
//       committed bytes exactly (catches silent behavioral drift anywhere
//       in the two-level pipeline -- feature extraction, clustering,
//       tuning, measurement, cost matrix, classifier selection), and
//   (3) a fresh PredictionService serving the committed model makes
//       exactly the per-input choices recorded in <name>.choices.csv.
//
// The committed bytes were generated on Linux/glibc (the CI platform).
// Training is bit-deterministic for a given libm; a different libc may
// differ in the last ulp of transcendentals -- regenerate there (see
// README, "Golden-file regression suite") if (2) fails without any
// behavioural change.
//
// Regenerate (deliberate behaviour changes only; see README):
//
//   build/pbt-bench train \
//       --only=sort1,binpacking,clustering1,clustering2,svd,poisson2d,helmholtz3d \
//       --scale=0.1 --sequential --out-dir=tests/golden
//   for m in sort1 binpacking clustering1 clustering2 svd poisson2d \
//            helmholtz3d; do \
//     build/pbt-bench predict --model=tests/golden/$m.pbt \
//         --csv=tests/golden/$m.choices.csv; done
//
//===----------------------------------------------------------------------===//

#include "registry/BenchmarkRegistry.h"
#include "runtime/PredictionService.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace pbt;

#ifndef PBT_GOLDEN_DIR
#error "PBT_GOLDEN_DIR must point at the committed golden files"
#endif

namespace {

std::string goldenPath(const std::string &File) {
  return std::string(PBT_GOLDEN_DIR) + "/" + File;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << "missing golden file " << Path;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// Parses the `input,landmark` CSV committed next to each model.
std::vector<std::pair<size_t, unsigned>> readChoices(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "missing golden choices " << Path;
  std::vector<std::pair<size_t, unsigned>> Out;
  std::string Line;
  std::getline(In, Line); // header
  EXPECT_EQ(Line, "input,landmark");
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    size_t Comma = Line.find(',');
    if (Comma == std::string::npos) {
      ADD_FAILURE() << "malformed choices line: " << Line;
      break;
    }
    Out.emplace_back(std::stoull(Line.substr(0, Comma)),
                     static_cast<unsigned>(std::stoul(Line.substr(Comma + 1))));
  }
  return Out;
}

class GoldenFileTest : public ::testing::TestWithParam<const char *> {};

TEST_P(GoldenFileTest, CommittedModelReserializesByteIdentically) {
  std::string Name = GetParam();
  std::string Bytes = readFile(goldenPath(Name + ".pbt"));
  ASSERT_FALSE(Bytes.empty());

  serialize::TrainedModel Model;
  serialize::LoadStatus Status = serialize::loadModel(Bytes, Model);
  ASSERT_TRUE(Status.Ok) << Status.Error;
  EXPECT_EQ(serialize::serializeModel(Model), Bytes)
      << "load+save of the committed model changed its bytes: the text "
         "format drifted";
}

TEST_P(GoldenFileTest, RetrainingReproducesCommittedBytes) {
  std::string Name = GetParam();
  std::string Bytes = readFile(goldenPath(Name + ".pbt"));
  serialize::TrainedModel Committed;
  ASSERT_TRUE(serialize::loadModel(Bytes, Committed).Ok);

  // Retrain from a clean slate at the provenance recorded in the file.
  const registry::BenchmarkFactory &F =
      registry::BenchmarkRegistry::instance().get(Name);
  registry::ProgramPtr Program =
      F.makeProgram(Committed.Meta.Scale, Committed.Meta.ProgramSeed);
  core::TrainedSystem System =
      core::trainSystem(*Program, F.defaultOptions(Committed.Meta.Scale));
  serialize::TrainedModel Fresh = serialize::makeModel(
      Name, Committed.Meta.Scale, Committed.Meta.ProgramSeed, *Program,
      std::move(System));

  EXPECT_EQ(serialize::serializeModel(Fresh), Bytes)
      << "retraining " << Name
      << " no longer reproduces the committed model: the training "
         "pipeline's behaviour drifted (if intentional, regenerate the "
         "goldens; see the file header)";
}

TEST_P(GoldenFileTest, PredictionServiceReproducesCommittedChoices) {
  std::string Name = GetParam();
  runtime::PredictionService Service;
  serialize::LoadStatus Status = Service.loadFile(goldenPath(Name + ".pbt"));
  ASSERT_TRUE(Status.Ok) << Status.Error;

  const serialize::TrainedModel &Model = Service.model();
  const registry::BenchmarkFactory &F =
      registry::BenchmarkRegistry::instance().get(Model.Meta.Benchmark);
  registry::ProgramPtr Program =
      F.makeProgram(Model.Meta.Scale, Model.Meta.ProgramSeed);
  serialize::LoadStatus Bound = Service.bind(*Program);
  ASSERT_TRUE(Bound.Ok) << Bound.Error;

  std::vector<std::pair<size_t, unsigned>> Expected =
      readChoices(goldenPath(Name + ".choices.csv"));
  ASSERT_EQ(Expected.size(), Model.System.TestRows.size());
  for (const auto &[Input, Landmark] : Expected) {
    runtime::PredictionService::Decision D = Service.decide(Input);
    EXPECT_EQ(D.Landmark, Landmark)
        << Name << " input " << Input
        << ": online decision drifted from the committed choice";
  }
}

TEST_P(GoldenFileTest, TruncatedGoldenBytesFailCleanly) {
  // The real committed artifacts under the deserializer's truncation
  // property: every sampled strict prefix ending on a line boundary must
  // be rejected, never crash or half-load.
  std::string Bytes = readFile(goldenPath(std::string(GetParam()) + ".pbt"));
  ASSERT_FALSE(Bytes.empty());
  size_t Pos = 0, Boundary = 0;
  while ((Pos = Bytes.find('\n', Pos)) != std::string::npos) {
    ++Pos;
    if (Pos >= Bytes.size())
      break; // the full file, which must load
    if (Boundary++ % 13 != 0)
      continue;
    serialize::TrainedModel Out;
    serialize::LoadStatus Status = serialize::loadModel(
        Bytes.substr(0, Pos), Out);
    EXPECT_FALSE(Status.Ok) << GetParam() << " truncated at byte " << Pos;
    EXPECT_FALSE(Status.Error.empty());
  }
  EXPECT_GT(Boundary, 13u);
}

TEST_P(GoldenFileTest, SingleCharFuzzOverGoldenNeverCrashes) {
  // One mutated character per trial: the loader either rejects the bytes
  // or yields a model that still re-serializes -- quantified over the
  // full-size committed models, not just the hand-built serializer
  // fixture.
  std::string Canonical =
      readFile(goldenPath(std::string(GetParam()) + ".pbt"));
  ASSERT_FALSE(Canonical.empty());
  support::Rng Rng(std::hash<std::string>{}(std::string(GetParam())) &
                   0xFFFF);
  const char Alphabet[] = "0123456789 .-abcz\n";
  for (int Trial = 0; Trial != 120; ++Trial) {
    std::string Text = Canonical;
    size_t Pos = Rng.index(Text.size());
    Text[Pos] = Alphabet[Rng.index(sizeof(Alphabet) - 1)];
    serialize::TrainedModel Out;
    serialize::LoadStatus Status = serialize::loadModel(Text, Out);
    if (Status.Ok)
      EXPECT_FALSE(serialize::serializeModel(Out).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, GoldenFileTest,
                         ::testing::Values("sort1", "binpacking",
                                           "clustering1", "clustering2",
                                           "svd", "poisson2d",
                                           "helmholtz3d"));

} // namespace

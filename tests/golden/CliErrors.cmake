# Malformed numeric flags must be loud, immediate, nonzero exits from
# both CLIs. The predecessor parsed flags with bare std::atoi/strtoull:
# `--seconds=banana` became 0 (an infinite default elsewhere),
# `--queue=-3` wrapped to 2^64-3, and both ran "successfully". The
# checked parsers (support/ParseNumber.h) make every one of these an
# error; this script pins the contract for a representative sample.
#
# Invoked by ctest (label: unit) with -DPBT_BENCH and -DPBT_SERVE.

function(expect_rejection expected_text)
  execute_process(
    COMMAND ${ARGN}
    RESULT_VARIABLE CMD_RESULT
    OUTPUT_VARIABLE CMD_OUTPUT
    ERROR_VARIABLE CMD_OUTPUT
    TIMEOUT 60)
  if(CMD_RESULT EQUAL 0)
    message(FATAL_ERROR
      "expected a nonzero exit from: ${ARGN}\noutput:\n${CMD_OUTPUT}")
  endif()
  string(FIND "${CMD_OUTPUT}" "${expected_text}" TEXT_POS)
  if(TEXT_POS EQUAL -1)
    message(FATAL_ERROR
      "expected '${expected_text}' in the rejection from: ${ARGN}\noutput:\n${CMD_OUTPUT}")
  endif()
endfunction()

# pbt-bench: garbage, half-parses, sign and range violations.
expect_rejection("bad --seconds value 'banana'"
  ${PBT_BENCH} serve --model=x.pbt --seconds=banana)
expect_rejection("bad --seconds value '1e'"
  ${PBT_BENCH} serve --model=x.pbt --seconds=1e)
expect_rejection("bad --threads value '-2'"
  ${PBT_BENCH} stream --model=x.pbt --threads=-2)
expect_rejection("bad --requests value '12abc'"
  ${PBT_BENCH} stream --model=x.pbt --requests=12abc)
expect_rejection("bad --connections value '0'"
  ${PBT_BENCH} loadgen --model=x.pbt --connections=0)
expect_rejection("bad --scale value '-1'"
  ${PBT_BENCH} table1 --scale=-1)

# pbt-serve: the same parser, the same loudness.
expect_rejection("bad --queue value '-3'"
  ${PBT_SERVE} --socket=/tmp/x.sock --model=x.pbt --queue=-3)
expect_rejection("bad --workers value 'many'"
  ${PBT_SERVE} --socket=/tmp/x.sock --model=x.pbt --workers=many)
expect_rejection("unknown argument"
  ${PBT_SERVE} --socket=/tmp/x.sock --model=x.pbt --frobnicate)
# argv[0] lands in the usage line, so match the flag synopsis instead.
expect_rejection("--model=[NAME=]FILE"
  ${PBT_SERVE} --socket=/tmp/x.sock)

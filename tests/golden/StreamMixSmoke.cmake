# Runs the multi-tenant mixed-stream harness through the pbt-bench CLI:
# three golden models interleaved in one deterministic schedule, served
# through the daemon-side ModelRegistry, every answer replay-checked.
#
#   1. `pbt-bench stream --mix` must exit 0 (nonzero means a served
#      answer diverged from the per-tenant in-process replay) and emit
#      the BENCH_stream_mix.json record into its private scratch dir.
#   2. The record must report the mixed-stream fields the CI artifact
#      consumers rely on (per-tenant accounting, parity verdict).
#
# Invoked by ctest (label: integration) with -DPBT_BENCH, -DGOLDEN_DIR
# and -DWORK_DIR defined. WORK_DIR must be unique to this test: ctest -j
# runs CLI tests concurrently, and shared scratch dirs are exactly the
# collision the per-test --out-dir discipline exists to prevent.

file(MAKE_DIRECTORY ${WORK_DIR})

execute_process(
  COMMAND ${PBT_BENCH} stream --mix
          --model=${GOLDEN_DIR}/sort1.pbt,${GOLDEN_DIR}/clustering1.pbt,${GOLDEN_DIR}/binpacking.pbt
          --requests=300 --window=32 --reservoir=32 --seconds=120
          --threads=2 --json --out-dir=${WORK_DIR}
  RESULT_VARIABLE MIX_RESULT
  OUTPUT_VARIABLE MIX_OUTPUT
  ERROR_VARIABLE MIX_OUTPUT)
if(NOT MIX_RESULT EQUAL 0)
  message(FATAL_ERROR "pbt-bench stream --mix failed:\n${MIX_OUTPUT}")
endif()

if(NOT EXISTS ${WORK_DIR}/BENCH_stream_mix.json)
  message(FATAL_ERROR
    "pbt-bench stream --mix --json wrote no BENCH_stream_mix.json")
endif()

file(READ ${WORK_DIR}/BENCH_stream_mix.json MIX_JSON)
foreach(field "\"subcommand\": \"stream-mix\"" "\"parity_ok\": true"
        "\"parity_mismatches\": 0" "\"tenants\"" "\"first_shift_tick\""
        "\"decisions_per_sec\"")
  string(FIND "${MIX_JSON}" "${field}" FIELD_POS)
  if(FIELD_POS EQUAL -1)
    message(FATAL_ERROR
      "BENCH_stream_mix.json is missing expected field ${field}:\n${MIX_JSON}")
  endif()
endforeach()

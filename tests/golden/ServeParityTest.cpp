//===- tests/golden/ServeParityTest.cpp --------------------------------------=//
//
// The serving-path half of the golden suite: for every committed golden
// model, the compiled fast path, the interpreted reference path, the
// batch API, and the batch API under 1/2/8 worker threads must all make
// exactly the per-input choices recorded in <name>.choices.csv. This is
// the pin behind the compiled subsystem's "bit-identical lowering" claim
// and behind decideBatch's "decisions never depend on the shard count"
// claim.
//
//===----------------------------------------------------------------------===//

#include "registry/BenchmarkRegistry.h"
#include "runtime/PredictionService.h"
#include "runtime/SimdLanes.h"
#include "support/SimdDispatch.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <string>
#include <vector>

using namespace pbt;

#ifndef PBT_GOLDEN_DIR
#error "PBT_GOLDEN_DIR must point at the committed golden files"
#endif

namespace {

std::string goldenPath(const std::string &File) {
  return std::string(PBT_GOLDEN_DIR) + "/" + File;
}

/// Parses the `input,landmark` CSV committed next to each model.
std::vector<std::pair<size_t, unsigned>> readChoices(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "missing golden choices " << Path;
  std::vector<std::pair<size_t, unsigned>> Out;
  std::string Line;
  std::getline(In, Line); // header
  EXPECT_EQ(Line, "input,landmark");
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    size_t Comma = Line.find(',');
    if (Comma == std::string::npos) {
      ADD_FAILURE() << "malformed choices line: " << Line;
      break;
    }
    Out.emplace_back(std::stoull(Line.substr(0, Comma)),
                     static_cast<unsigned>(std::stoul(Line.substr(Comma + 1))));
  }
  return Out;
}

/// One freshly loaded-and-bound service per call: every scenario below
/// must reproduce the goldens from a cold start.
struct Loaded {
  runtime::PredictionService Service;
  registry::ProgramPtr Program;
};

void loadGolden(const std::string &Name, Loaded &L) {
  serialize::LoadStatus Status = L.Service.loadFile(goldenPath(Name + ".pbt"));
  ASSERT_TRUE(Status.Ok) << Status.Error;
  const serialize::TrainedModel &Model = L.Service.model();
  const registry::BenchmarkFactory &F =
      registry::BenchmarkRegistry::instance().get(Model.Meta.Benchmark);
  L.Program = F.makeProgram(Model.Meta.Scale, Model.Meta.ProgramSeed);
  serialize::LoadStatus Bound = L.Service.bind(*L.Program);
  ASSERT_TRUE(Bound.Ok) << Bound.Error;
}

class ServeParityTest : public ::testing::TestWithParam<const char *> {};

TEST_P(ServeParityTest, CompiledAndInterpretedMatchGoldenChoices) {
  std::string Name = GetParam();
  Loaded L;
  loadGolden(Name, L);
  std::vector<std::pair<size_t, unsigned>> Expected =
      readChoices(goldenPath(Name + ".choices.csv"));
  ASSERT_FALSE(Expected.empty());

  for (const auto &[Input, Landmark] : Expected) {
    runtime::PredictionService::Decision Compiled = L.Service.decide(Input);
    runtime::PredictionService::Decision Interpreted =
        L.Service.decideInterpreted(Input);
    EXPECT_EQ(Compiled.Landmark, Landmark)
        << Name << " input " << Input << ": compiled decision drifted";
    EXPECT_EQ(Interpreted.Landmark, Landmark)
        << Name << " input " << Input << ": interpreted decision drifted";
    // Both paths pay the same extraction on their first (cold) call.
    EXPECT_DOUBLE_EQ(Compiled.FeatureCost, Interpreted.FeatureCost);
    EXPECT_EQ(Compiled.FeaturesExtracted, Interpreted.FeaturesExtracted);
  }
}

TEST_P(ServeParityTest, BatchMatchesSingleDecisions) {
  std::string Name = GetParam();
  std::vector<std::pair<size_t, unsigned>> Expected =
      readChoices(goldenPath(Name + ".choices.csv"));

  Loaded Single;
  loadGolden(Name, Single);
  std::vector<size_t> Inputs;
  std::vector<runtime::PredictionService::Decision> PerCall;
  for (const auto &[Input, Landmark] : Expected) {
    Inputs.push_back(Input);
    PerCall.push_back(Single.Service.decide(Input));
    ASSERT_EQ(PerCall.back().Landmark, Landmark);
  }

  Loaded Batched;
  loadGolden(Name, Batched);
  std::vector<runtime::PredictionService::Decision> Batch =
      Batched.Service.decideBatch(Inputs);
  ASSERT_EQ(Batch.size(), PerCall.size());
  for (size_t I = 0; I != Batch.size(); ++I) {
    EXPECT_EQ(Batch[I].Landmark, PerCall[I].Landmark) << "input " << Inputs[I];
    EXPECT_DOUBLE_EQ(Batch[I].FeatureCost, PerCall[I].FeatureCost);
    EXPECT_EQ(Batch[I].FeaturesExtracted, PerCall[I].FeaturesExtracted);
    EXPECT_EQ(Batch[I].Memoized, PerCall[I].Memoized);
  }
  // Deterministic lifetime accounting: one batch == the same calls made
  // one at a time.
  EXPECT_EQ(Batched.Service.stats().Calls, Single.Service.stats().Calls);
  EXPECT_DOUBLE_EQ(Batched.Service.stats().FeatureCostPaid,
                   Single.Service.stats().FeatureCostPaid);
}

TEST_P(ServeParityTest, ThreadCountInvariance) {
  std::string Name = GetParam();
  std::vector<std::pair<size_t, unsigned>> Expected =
      readChoices(goldenPath(Name + ".choices.csv"));
  // Duplicated + reordered inputs: the batch also exercises the
  // same-input-same-shard memo ownership rule.
  std::vector<size_t> Inputs;
  for (const auto &Choice : Expected)
    Inputs.push_back(Choice.first);
  for (const auto &Choice : Expected)
    Inputs.push_back(Choice.first);
  std::reverse(Inputs.begin() + static_cast<long>(Expected.size()),
               Inputs.end());

  std::vector<std::vector<runtime::PredictionService::Decision>> Runs;
  for (unsigned Threads : {1u, 2u, 8u}) {
    support::ThreadPool Pool(Threads);
    Loaded L;
    loadGolden(Name, L);
    Runs.push_back(L.Service.decideBatch(Inputs, &Pool));
  }
  // And the poolless reference.
  {
    Loaded L;
    loadGolden(Name, L);
    Runs.push_back(L.Service.decideBatch(Inputs, nullptr));
  }

  for (size_t Run = 1; Run != Runs.size(); ++Run) {
    ASSERT_EQ(Runs[Run].size(), Runs[0].size());
    for (size_t I = 0; I != Runs[0].size(); ++I) {
      EXPECT_EQ(Runs[Run][I].Landmark, Runs[0][I].Landmark)
          << "thread-count-dependent choice at batch position " << I;
      EXPECT_DOUBLE_EQ(Runs[Run][I].FeatureCost, Runs[0][I].FeatureCost);
      EXPECT_EQ(Runs[Run][I].FeaturesExtracted,
                Runs[0][I].FeaturesExtracted);
      EXPECT_EQ(Runs[Run][I].Memoized, Runs[0][I].Memoized);
    }
  }
  // Every choice still matches the committed goldens.
  for (size_t I = 0; I != Expected.size(); ++I)
    EXPECT_EQ(Runs[0][I].Landmark, Expected[I].second);
}

TEST_P(ServeParityTest, RepeatDecisionsAreCachedAndIdentical) {
  std::string Name = GetParam();
  Loaded L;
  loadGolden(Name, L);
  std::vector<std::pair<size_t, unsigned>> Expected =
      readChoices(goldenPath(Name + ".choices.csv"));
  bool ExtractsFeatures = false;
  for (const auto &[Input, Landmark] : Expected) {
    runtime::PredictionService::Decision First = L.Service.decide(Input);
    runtime::PredictionService::Decision Second = L.Service.decide(Input);
    ExtractsFeatures |= First.FeaturesExtracted > 0;
    EXPECT_EQ(First.Landmark, Landmark);
    EXPECT_EQ(Second.Landmark, Landmark);
    EXPECT_TRUE(Second.Memoized);
    EXPECT_EQ(Second.FeatureCost, 0.0);
    EXPECT_EQ(Second.FeaturesExtracted, 0u);
  }
  // clearMemo really drops the decision cache too: the next call pays
  // extraction again and still answers identically. A model whose
  // production classifier reads no features (e.g. svd's static-best)
  // never pays extraction, so its fresh decisions legitimately report
  // Memoized under the FeaturesExtracted==0 rule.
  L.Service.clearMemo();
  runtime::PredictionService::Decision Fresh =
      L.Service.decide(Expected.front().first);
  EXPECT_EQ(Fresh.Landmark, Expected.front().second);
  if (ExtractsFeatures)
    EXPECT_FALSE(Fresh.Memoized);
}

TEST_P(ServeParityTest, LaneServingMatchesGoldensOnEveryTier) {
  // The SIMD serving wall against the committed decisions: every
  // dispatch tier this host can execute must reproduce the golden
  // choices through the lane-batched path -- cold, and again re-decided
  // from a warm feature memo (where lanes serve every model kind) with
  // duplicated inputs in the batch.
  std::string Name = GetParam();
  std::vector<std::pair<size_t, unsigned>> Expected =
      readChoices(goldenPath(Name + ".choices.csv"));
  ASSERT_FALSE(Expected.empty());

  for (const runtime::LaneEngine *E : runtime::availableLaneEngines()) {
    Loaded L;
    loadGolden(Name, L);
    L.Service.setSimdTier(E->Tier);
    ASSERT_EQ(L.Service.simdTier(), E->Tier);
    ASSERT_EQ(L.Service.laneWidth(), E->Width);

    std::vector<size_t> Inputs;
    for (const auto &Choice : Expected)
      Inputs.push_back(Choice.first);
    std::vector<runtime::PredictionService::Decision> Cold =
        L.Service.decideBatch(Inputs);
    ASSERT_EQ(Cold.size(), Expected.size());
    for (size_t I = 0; I != Expected.size(); ++I)
      EXPECT_EQ(Cold[I].Landmark, Expected[I].second)
          << Name << " tier " << support::simdTierName(E->Tier)
          << " input " << Inputs[I] << ": cold lane decision drifted";

    // Re-decide from the warm memo: feature values stay cached, so the
    // whole batch is lane-eligible; duplicates exercise in-lane repeats.
    L.Service.clearDecisions();
    std::vector<size_t> Doubled;
    for (size_t Input : Inputs) {
      Doubled.push_back(Input);
      Doubled.push_back(Input);
    }
    std::vector<runtime::PredictionService::Decision> Warm =
        L.Service.decideBatch(Doubled);
    for (size_t I = 0; I != Doubled.size(); ++I) {
      EXPECT_EQ(Warm[I].Landmark, Expected[I / 2].second)
          << Name << " tier " << support::simdTierName(E->Tier)
          << " input " << Doubled[I] << ": warm lane decision drifted";
      EXPECT_EQ(Warm[I].FeatureCost, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, ServeParityTest,
                         ::testing::Values("sort1", "binpacking",
                                           "clustering1", "clustering2",
                                           "svd", "poisson2d",
                                           "helmholtz3d"));

} // namespace

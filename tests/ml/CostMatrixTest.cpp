//===- tests/ml/CostMatrixTest.cpp -------------------------------------------=//

#include "ml/CostMatrix.h"

#include <gtest/gtest.h>

using pbt::ml::CostMatrix;

namespace {

TEST(CostMatrixTest, ZeroOneLoss) {
  CostMatrix C = CostMatrix::zeroOne(3);
  for (unsigned I = 0; I != 3; ++I)
    for (unsigned J = 0; J != 3; ++J)
      EXPECT_DOUBLE_EQ(C.at(I, J), I == J ? 0.0 : 1.0);
}

TEST(CostMatrixTest, CheapestPredictionIsMajorityUnderZeroOne) {
  CostMatrix C = CostMatrix::zeroOne(3);
  EXPECT_EQ(C.cheapestPrediction({1.0, 5.0, 2.0}), 1u);
}

TEST(CostMatrixTest, AsymmetricCostsFlipPrediction) {
  CostMatrix C(2);
  C.at(0, 1) = 1.0;   // predicting 1 for a true 0 is cheap
  C.at(1, 0) = 100.0; // predicting 0 for a true 1 is catastrophic
  // 9 of class 0 vs 1 of class 1: zero-one would say 0, costs say 1.
  EXPECT_EQ(C.cheapestPrediction({9.0, 1.0}), 1u);
}

TEST(CostMatrixTest, ExpectedCostComputation) {
  CostMatrix C(2);
  C.at(0, 1) = 2.0;
  C.at(1, 0) = 3.0;
  EXPECT_DOUBLE_EQ(C.expectedCost({4.0, 5.0}, 0), 15.0);
  EXPECT_DOUBLE_EQ(C.expectedCost({4.0, 5.0}, 1), 8.0);
}

TEST(CostMatrixTest, EmptyMatrix) {
  CostMatrix C;
  EXPECT_TRUE(C.empty());
  EXPECT_EQ(C.numClasses(), 0u);
}

} // namespace

//===- tests/ml/NormalizerTest.cpp -------------------------------------------=//

#include "ml/Normalizer.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace pbt;
using namespace pbt::ml;

namespace {

TEST(NormalizerTest, TransformedColumnsHaveZeroMeanUnitVariance) {
  linalg::Matrix X(4, 2);
  double Data[4][2] = {{1, 10}, {2, 20}, {3, 30}, {4, 40}};
  for (size_t I = 0; I != 4; ++I)
    for (size_t J = 0; J != 2; ++J)
      X.at(I, J) = Data[I][J];
  Normalizer N;
  N.fit(X);
  linalg::Matrix Z = N.transform(X);
  for (size_t J = 0; J != 2; ++J) {
    double Mean = 0.0, Var = 0.0;
    for (size_t I = 0; I != 4; ++I)
      Mean += Z.at(I, J);
    Mean /= 4;
    for (size_t I = 0; I != 4; ++I)
      Var += (Z.at(I, J) - Mean) * (Z.at(I, J) - Mean);
    Var /= 4;
    EXPECT_NEAR(Mean, 0.0, 1e-12);
    EXPECT_NEAR(Var, 1.0, 1e-12);
  }
}

TEST(NormalizerTest, ConstantColumnMapsToZero) {
  linalg::Matrix X(3, 1, 7.0);
  Normalizer N;
  N.fit(X);
  linalg::Matrix Z = N.transform(X);
  for (size_t I = 0; I != 3; ++I)
    EXPECT_DOUBLE_EQ(Z.at(I, 0), 0.0);
}

TEST(NormalizerTest, TransformRowMatchesTransform) {
  linalg::Matrix X(5, 3);
  support::Rng Rng(1);
  for (double &V : X.data())
    V = Rng.uniform(-10, 10);
  Normalizer N;
  N.fit(X);
  linalg::Matrix Z = N.transform(X);
  for (size_t I = 0; I != 5; ++I) {
    std::vector<double> Row(3);
    for (size_t J = 0; J != 3; ++J)
      Row[J] = X.at(I, J);
    N.transformRow(Row);
    for (size_t J = 0; J != 3; ++J)
      EXPECT_NEAR(Row[J], Z.at(I, J), 1e-12);
  }
}

TEST(NormalizerTest, NewDataUsesFittedStatistics) {
  linalg::Matrix X(2, 1);
  X.at(0, 0) = 0.0;
  X.at(1, 0) = 2.0; // mean 1, std 1
  Normalizer N;
  N.fit(X);
  std::vector<double> Row{3.0};
  N.transformRow(Row);
  EXPECT_NEAR(Row[0], 2.0, 1e-12);
}

} // namespace

//===- tests/ml/CrossValidationTest.cpp --------------------------------------=//

#include "ml/CrossValidation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace pbt;
using namespace pbt::ml;

namespace {

TEST(CrossValidationTest, FoldsPartitionTheData) {
  support::Rng Rng(1);
  std::vector<FoldSplit> Folds = kFoldSplits(53, 5, Rng);
  ASSERT_EQ(Folds.size(), 5u);
  std::set<size_t> AllTest;
  for (const FoldSplit &F : Folds) {
    EXPECT_EQ(F.Train.size() + F.Test.size(), 53u);
    for (size_t I : F.Test) {
      EXPECT_TRUE(AllTest.insert(I).second) << "index in two test folds";
    }
    // No overlap between train and test within a fold.
    std::set<size_t> TrainSet(F.Train.begin(), F.Train.end());
    for (size_t I : F.Test)
      EXPECT_FALSE(TrainSet.count(I));
  }
  EXPECT_EQ(AllTest.size(), 53u);
}

TEST(CrossValidationTest, FoldSizesBalanced) {
  support::Rng Rng(2);
  std::vector<FoldSplit> Folds = kFoldSplits(10, 3, Rng);
  for (const FoldSplit &F : Folds) {
    EXPECT_GE(F.Test.size(), 3u);
    EXPECT_LE(F.Test.size(), 4u);
  }
}

TEST(CrossValidationTest, StratifiedPreservesClassBalance) {
  support::Rng Rng(3);
  std::vector<unsigned> Y(100);
  for (size_t I = 0; I != 100; ++I)
    Y[I] = I < 80 ? 0 : 1; // 80/20 imbalance
  std::vector<FoldSplit> Folds = stratifiedKFoldSplits(Y, 2, 5, Rng);
  for (const FoldSplit &F : Folds) {
    size_t Ones = 0;
    for (size_t I : F.Test)
      Ones += Y[I];
    EXPECT_EQ(F.Test.size(), 20u);
    EXPECT_EQ(Ones, 4u) << "each fold holds 1/5 of each class";
  }
}

TEST(CrossValidationTest, TrainTestSplitFractionAndPartition) {
  support::Rng Rng(4);
  FoldSplit S = trainTestSplit(100, 0.5, Rng);
  EXPECT_EQ(S.Train.size(), 50u);
  EXPECT_EQ(S.Test.size(), 50u);
  std::set<size_t> All(S.Train.begin(), S.Train.end());
  for (size_t I : S.Test)
    EXPECT_TRUE(All.insert(I).second);
  EXPECT_EQ(All.size(), 100u);
}

TEST(CrossValidationTest, SplitIsDeterministicPerSeed) {
  support::Rng A(5), B(5);
  FoldSplit S1 = trainTestSplit(40, 0.6, A);
  FoldSplit S2 = trainTestSplit(40, 0.6, B);
  EXPECT_EQ(S1.Train, S2.Train);
  EXPECT_EQ(S1.Test, S2.Test);
}

TEST(CrossValidationTest, KClampedToSampleCount) {
  support::Rng Rng(6);
  std::vector<FoldSplit> Folds = kFoldSplits(3, 10, Rng);
  EXPECT_EQ(Folds.size(), 3u);
}

} // namespace

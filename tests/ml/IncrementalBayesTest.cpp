//===- tests/ml/IncrementalBayesTest.cpp -------------------------------------=//

#include "ml/IncrementalBayes.h"

#include <gtest/gtest.h>

#include <set>

using namespace pbt;
using namespace pbt::ml;

namespace {

/// Feature 0 separates the classes perfectly; feature 1 is noise.
void separableData(linalg::Matrix &X, std::vector<unsigned> &Y, size_t N,
                   support::Rng &Rng) {
  X = linalg::Matrix(N, 2);
  Y.resize(N);
  for (size_t I = 0; I != N; ++I) {
    bool ClassOne = Rng.chance(0.5);
    X.at(I, 0) = ClassOne ? Rng.uniform(10, 20) : Rng.uniform(0, 5);
    X.at(I, 1) = Rng.uniform(0, 1);
    Y[I] = ClassOne ? 1 : 0;
  }
}

TEST(IncrementalBayesTest, ClassifiesSeparableData) {
  support::Rng Rng(1);
  linalg::Matrix X;
  std::vector<unsigned> Y;
  separableData(X, Y, 300, Rng);
  IncrementalBayes B;
  B.fit(X, Y, 2, {0, 1});
  size_t Correct = 0;
  for (size_t I = 0; I != X.rows(); ++I)
    if (B.predict({X.at(I, 0), X.at(I, 1)}).Label == Y[I])
      ++Correct;
  EXPECT_GT(Correct, X.rows() * 95 / 100);
}

TEST(IncrementalBayesTest, StopsEarlyWhenFirstFeatureDecisive) {
  support::Rng Rng(2);
  linalg::Matrix X;
  std::vector<unsigned> Y;
  separableData(X, Y, 300, Rng);
  IncrementalBayes B;
  IncrementalBayesOptions O;
  O.PosteriorThreshold = 0.7;
  B.fit(X, Y, 2, {0, 1}, O);
  // A point deep inside class 1 territory should commit after feature 0.
  IncrementalPrediction P = B.predict({15.0, 0.5});
  EXPECT_EQ(P.Label, 1u);
  EXPECT_EQ(P.FeaturesUsed, 1u);
  EXPECT_GT(P.Confidence, 0.7);
}

TEST(IncrementalBayesTest, AcquiresMoreFeaturesWhenUncertain) {
  support::Rng Rng(3);
  // Feature 0 is pure noise; feature 1 separates.
  linalg::Matrix X(300, 2);
  std::vector<unsigned> Y(300);
  for (size_t I = 0; I != 300; ++I) {
    bool ClassOne = Rng.chance(0.5);
    X.at(I, 0) = Rng.uniform(0, 1);
    X.at(I, 1) = ClassOne ? Rng.uniform(10, 20) : Rng.uniform(0, 5);
    Y[I] = ClassOne ? 1 : 0;
  }
  IncrementalBayes B;
  IncrementalBayesOptions O;
  O.PosteriorThreshold = 0.9;
  B.fit(X, Y, 2, {0, 1}, O);
  IncrementalPrediction P = B.predict({0.5, 15.0});
  EXPECT_EQ(P.Label, 1u);
  EXPECT_EQ(P.FeaturesUsed, 2u) << "noise feature alone cannot reach 0.9";
}

TEST(IncrementalBayesTest, LazyAccessOnlyTouchesExaminedFeatures) {
  support::Rng Rng(4);
  linalg::Matrix X;
  std::vector<unsigned> Y;
  separableData(X, Y, 300, Rng);
  IncrementalBayes B;
  IncrementalBayesOptions O;
  O.PosteriorThreshold = 0.7;
  B.fit(X, Y, 2, {0, 1}, O);
  std::set<unsigned> Touched;
  B.predictLazy([&](unsigned F) {
    Touched.insert(F);
    return F == 0 ? 15.0 : 0.5;
  });
  EXPECT_EQ(Touched.size(), 1u);
  EXPECT_TRUE(Touched.count(0));
}

TEST(IncrementalBayesTest, RespectsFeatureOrder) {
  support::Rng Rng(5);
  linalg::Matrix X;
  std::vector<unsigned> Y;
  separableData(X, Y, 200, Rng);
  IncrementalBayes B;
  B.fit(X, Y, 2, {1, 0});
  std::vector<unsigned> Accessed;
  B.predictLazy([&](unsigned F) {
    Accessed.push_back(F);
    return F == 0 ? 15.0 : 0.5;
  });
  ASSERT_FALSE(Accessed.empty());
  EXPECT_EQ(Accessed[0], 1u) << "first examined feature must follow order";
}

TEST(IncrementalBayesTest, HighThresholdExaminesAllFeatures) {
  support::Rng Rng(6);
  linalg::Matrix X;
  std::vector<unsigned> Y;
  separableData(X, Y, 200, Rng);
  IncrementalBayes B;
  IncrementalBayesOptions O;
  O.PosteriorThreshold = 1.0; // unreachable
  B.fit(X, Y, 2, {0, 1}, O);
  IncrementalPrediction P = B.predict({15.0, 0.5});
  EXPECT_EQ(P.FeaturesUsed, 2u);
  EXPECT_EQ(P.Label, 1u);
}

TEST(IncrementalBayesTest, TrainOnRowSubset) {
  support::Rng Rng(7);
  linalg::Matrix X;
  std::vector<unsigned> Y;
  separableData(X, Y, 100, Rng);
  std::vector<size_t> Sample{0, 1, 2, 3, 4, 5, 6, 7, 8, 9,
                             10, 11, 12, 13, 14, 15};
  IncrementalBayes B;
  B.fit(X, Y, 2, {0, 1}, {}, Sample);
  // Still classifies clear-cut points.
  EXPECT_EQ(B.predict({15.0, 0.5}).Label, 1u);
  EXPECT_EQ(B.predict({1.0, 0.5}).Label, 0u);
}

} // namespace

//===- tests/ml/ReservoirTest.cpp --------------------------------------------=//
//
// The stream sampler feeding the adaptive retrain loop: the Recent
// policy must be exactly the last-Capacity sliding window (arrival
// order), the Uniform policy a deterministic, roughly uniform algorithm-R
// sample, and reset() must restart the deterministic state bit-for-bit.
//
//===----------------------------------------------------------------------===//

#include "ml/Reservoir.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

using namespace pbt;
using namespace pbt::ml;

namespace {

TEST(ReservoirTest, RecentPolicyKeepsLastCapacityInArrivalOrder) {
  Reservoir R(4, 99, ReservoirPolicy::Recent);
  EXPECT_EQ(R.sample(), std::vector<size_t>());
  for (size_t I = 0; I != 3; ++I)
    R.add(I);
  EXPECT_FALSE(R.full());
  EXPECT_EQ(R.sample(), (std::vector<size_t>{0, 1, 2}));
  for (size_t I = 3; I != 10; ++I)
    R.add(I);
  EXPECT_TRUE(R.full());
  EXPECT_EQ(R.seen(), 10u);
  EXPECT_EQ(R.sample(), (std::vector<size_t>{6, 7, 8, 9}));
}

TEST(ReservoirTest, RecentPolicyAfterShiftHoldsOnlyPostShiftTraffic) {
  // The property the adaptation loop relies on: once the window length
  // has passed since a regime change, nothing pre-change remains.
  Reservoir R(8, 1, ReservoirPolicy::Recent);
  for (size_t I = 0; I != 100; ++I)
    R.add(1); // old regime
  for (size_t I = 0; I != 8; ++I)
    R.add(2); // new regime
  std::vector<size_t> S = R.sample();
  EXPECT_EQ(S.size(), 8u);
  EXPECT_TRUE(std::all_of(S.begin(), S.end(),
                          [](size_t V) { return V == 2; }));
  EXPECT_EQ(R.distinctCount(), 1u);
}

TEST(ReservoirTest, UniformPolicyIsDeterministicAndCoversTheStream) {
  Reservoir A(16, 7, ReservoirPolicy::Uniform);
  Reservoir B(16, 7, ReservoirPolicy::Uniform);
  for (size_t I = 0; I != 1000; ++I) {
    A.add(I);
    B.add(I);
  }
  EXPECT_EQ(A.sample(), B.sample());
  EXPECT_EQ(A.size(), 16u);
  // A uniform sample of 0..999 should not be the last 16 items: some
  // early item survives with overwhelming probability for this seed.
  std::vector<size_t> S = A.sample();
  EXPECT_TRUE(std::any_of(S.begin(), S.end(),
                          [](size_t V) { return V < 500; }));
  // Different seed, different sample.
  Reservoir C(16, 8, ReservoirPolicy::Uniform);
  for (size_t I = 0; I != 1000; ++I)
    C.add(I);
  EXPECT_NE(C.sample(), A.sample());
}

TEST(ReservoirTest, ResetRestartsTheDeterministicState) {
  Reservoir A(8, 3, ReservoirPolicy::Uniform);
  for (size_t I = 0; I != 200; ++I)
    A.add(I);
  std::vector<size_t> First = A.sample();
  A.reset();
  EXPECT_EQ(A.size(), 0u);
  EXPECT_EQ(A.seen(), 0u);
  for (size_t I = 0; I != 200; ++I)
    A.add(I);
  EXPECT_EQ(A.sample(), First);
}

TEST(ReservoirTest, DistinctCountAndZeroCapacity) {
  Reservoir R(6, 5);
  for (size_t V : {3u, 1u, 3u, 2u, 1u, 3u})
    R.add(V);
  EXPECT_EQ(R.distinctCount(), 3u);

  Reservoir Zero(0, 5);
  Zero.add(1);
  EXPECT_EQ(Zero.size(), 0u);
  EXPECT_EQ(Zero.seen(), 0u);
}

TEST(ReservoirTest, SampleIntoMatchesSampleAndReusesTheBuffer) {
  Reservoir R(4, 9);
  std::vector<size_t> Buf;
  for (size_t V = 0; V != 11; ++V) {
    R.add(V);
    R.sampleInto(Buf);
    EXPECT_EQ(Buf, R.sample()) << "after " << V + 1 << " adds";
  }
  // The buffer keeps its capacity across rounds (the adaptive loop's
  // allocation-churn fix); refills never grow past the reservoir.
  size_t Cap = Buf.capacity();
  R.sampleInto(Buf);
  EXPECT_EQ(Buf.capacity(), Cap);

  Reservoir U(5, 9, ReservoirPolicy::Uniform);
  for (size_t V = 0; V != 40; ++V)
    U.add(V);
  U.sampleInto(Buf);
  EXPECT_EQ(Buf, U.sample());
}

} // namespace

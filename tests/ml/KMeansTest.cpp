//===- tests/ml/KMeansTest.cpp -----------------------------------------------=//

#include "ml/KMeans.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

using namespace pbt;
using namespace pbt::ml;

namespace {

/// Two tight, well-separated blobs.
linalg::Matrix twoBlobs(size_t PerBlob, support::Rng &Rng) {
  linalg::Matrix P(2 * PerBlob, 2);
  for (size_t I = 0; I != PerBlob; ++I) {
    P.at(I, 0) = Rng.gaussian(0.0, 0.1);
    P.at(I, 1) = Rng.gaussian(0.0, 0.1);
    P.at(PerBlob + I, 0) = Rng.gaussian(10.0, 0.1);
    P.at(PerBlob + I, 1) = Rng.gaussian(10.0, 0.1);
  }
  return P;
}

TEST(KMeansTest, SingleClusterCentroidIsMean) {
  linalg::Matrix P(4, 1);
  P.at(0, 0) = 1;
  P.at(1, 0) = 2;
  P.at(2, 0) = 3;
  P.at(3, 0) = 6;
  KMeansOptions O;
  O.K = 1;
  KMeansResult R = kMeans(P, O);
  EXPECT_NEAR(R.Centroids.at(0, 0), 3.0, 1e-12);
}

TEST(KMeansTest, RecoversWellSeparatedBlobs) {
  support::Rng Rng(2);
  linalg::Matrix P = twoBlobs(50, Rng);
  KMeansOptions O;
  O.K = 2;
  O.Seed = 3;
  KMeansResult R = kMeans(P, O);
  // All points of one blob share a cluster, different from the other.
  unsigned C0 = R.Assignment[0];
  unsigned C1 = R.Assignment[50];
  EXPECT_NE(C0, C1);
  for (size_t I = 0; I != 50; ++I) {
    EXPECT_EQ(R.Assignment[I], C0);
    EXPECT_EQ(R.Assignment[50 + I], C1);
  }
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  support::Rng Rng(4);
  linalg::Matrix P(100, 2);
  for (double &V : P.data())
    V = Rng.uniform(0, 100);
  double PrevInertia = 1e300;
  for (unsigned K : {1u, 2u, 4u, 8u, 16u}) {
    KMeansOptions O;
    O.K = K;
    O.Seed = 5;
    O.MaxIterations = 100;
    KMeansResult R = kMeans(P, O);
    EXPECT_LE(R.Inertia, PrevInertia * 1.001);
    PrevInertia = R.Inertia;
  }
}

TEST(KMeansTest, AllInitStrategiesProduceValidResults) {
  support::Rng Rng(6);
  linalg::Matrix P = twoBlobs(30, Rng);
  for (KMeansInit Init :
       {KMeansInit::Random, KMeansInit::Prefix, KMeansInit::CenterPlus}) {
    KMeansOptions O;
    O.K = 4;
    O.Init = Init;
    O.Seed = 7;
    KMeansResult R = kMeans(P, O);
    EXPECT_EQ(R.Centroids.rows(), 4u);
    EXPECT_EQ(R.Assignment.size(), 60u);
    for (unsigned A : R.Assignment)
      EXPECT_LT(A, 4u);
    EXPECT_GE(R.Inertia, 0.0);
  }
}

TEST(KMeansTest, DeterministicForFixedSeed) {
  support::Rng Rng(8);
  linalg::Matrix P = twoBlobs(40, Rng);
  KMeansOptions O;
  O.K = 3;
  O.Seed = 99;
  KMeansResult A = kMeans(P, O);
  KMeansResult B = kMeans(P, O);
  EXPECT_EQ(A.Assignment, B.Assignment);
  EXPECT_DOUBLE_EQ(A.Inertia, B.Inertia);
}

TEST(KMeansTest, KClampedToPointCount) {
  linalg::Matrix P(3, 1);
  P.at(0, 0) = 1;
  P.at(1, 0) = 2;
  P.at(2, 0) = 3;
  KMeansOptions O;
  O.K = 10;
  KMeansResult R = kMeans(P, O);
  EXPECT_LE(R.Centroids.rows(), 3u);
}

TEST(KMeansTest, DuplicatePointsDoNotCrash) {
  linalg::Matrix P(10, 2, 5.0); // all identical
  KMeansOptions O;
  O.K = 3;
  KMeansResult R = kMeans(P, O);
  EXPECT_NEAR(R.Inertia, 0.0, 1e-18);
}

TEST(KMeansTest, CostCounterChargesWork) {
  support::Rng Rng(10);
  linalg::Matrix P = twoBlobs(20, Rng);
  KMeansOptions O;
  O.K = 2;
  support::CostCounter C;
  kMeans(P, O, &C);
  EXPECT_GT(C.units(), 0.0);
}

TEST(KMeansTest, MoreIterationsCostMore) {
  support::Rng Rng(11);
  linalg::Matrix P(200, 2);
  for (double &V : P.data())
    V = Rng.uniform(0, 100);
  KMeansOptions Short, Long;
  Short.K = Long.K = 8;
  Short.MaxIterations = 1;
  Long.MaxIterations = 30;
  Short.EarlyStop = Long.EarlyStop = false;
  support::CostCounter CS, CL;
  kMeans(P, Short, &CS);
  kMeans(P, Long, &CL);
  EXPECT_GT(CL.units(), CS.units());
}

TEST(KMeansTest, NearestCentroidPicksClosest) {
  linalg::Matrix C(2, 2);
  C.at(0, 0) = 0.0;
  C.at(0, 1) = 0.0;
  C.at(1, 0) = 10.0;
  C.at(1, 1) = 10.0;
  EXPECT_EQ(nearestCentroid(C, {1.0, 1.0}), 0u);
  EXPECT_EQ(nearestCentroid(C, {9.0, 9.0}), 1u);
}

} // namespace

//===- tests/ml/DecisionTreeTest.cpp -----------------------------------------=//

#include "ml/DecisionTree.h"

#include <gtest/gtest.h>

#include <set>

using namespace pbt;
using namespace pbt::ml;

namespace {

/// Simple threshold dataset: class = x0 > 5.
void thresholdData(linalg::Matrix &X, std::vector<unsigned> &Y, size_t N,
                   support::Rng &Rng) {
  X = linalg::Matrix(N, 2);
  Y.resize(N);
  for (size_t I = 0; I != N; ++I) {
    X.at(I, 0) = Rng.uniform(0, 10);
    X.at(I, 1) = Rng.uniform(0, 10); // irrelevant feature
    Y[I] = X.at(I, 0) > 5.0 ? 1 : 0;
  }
}

TEST(DecisionTreeTest, PureDataYieldsSingleLeaf) {
  linalg::Matrix X(5, 1, 1.0);
  std::vector<unsigned> Y(5, 2);
  DecisionTree T;
  T.fit(X, Y, 3);
  EXPECT_EQ(T.numNodes(), 1u);
  EXPECT_EQ(T.predict({0.0}), 2u);
}

TEST(DecisionTreeTest, LearnsThresholdSplit) {
  support::Rng Rng(1);
  linalg::Matrix X;
  std::vector<unsigned> Y;
  thresholdData(X, Y, 200, Rng);
  DecisionTree T;
  T.fit(X, Y, 2);
  size_t Correct = 0;
  for (size_t I = 0; I != X.rows(); ++I)
    if (T.predict({X.at(I, 0), X.at(I, 1)}) == Y[I])
      ++Correct;
  EXPECT_EQ(Correct, X.rows());
}

TEST(DecisionTreeTest, GeneralisesOnThresholdData) {
  support::Rng Rng(2);
  linalg::Matrix X;
  std::vector<unsigned> Y;
  thresholdData(X, Y, 400, Rng);
  DecisionTree T;
  T.fit(X, Y, 2);
  // Fresh points.
  size_t Correct = 0, Total = 200;
  for (size_t I = 0; I != Total; ++I) {
    double X0 = Rng.uniform(0, 10), X1 = Rng.uniform(0, 10);
    unsigned Label = X0 > 5.0 ? 1 : 0;
    // Skip points too close to the boundary to be fair.
    if (std::abs(X0 - 5.0) < 0.2) {
      ++Correct;
      continue;
    }
    if (T.predict({X0, X1}) == Label)
      ++Correct;
  }
  EXPECT_GT(Correct, Total * 95 / 100);
}

TEST(DecisionTreeTest, LearnsXorWithDepth) {
  support::Rng Rng(3);
  linalg::Matrix X(400, 2);
  std::vector<unsigned> Y(400);
  for (size_t I = 0; I != 400; ++I) {
    X.at(I, 0) = Rng.uniform(0, 1);
    X.at(I, 1) = Rng.uniform(0, 1);
    Y[I] = (X.at(I, 0) > 0.5) != (X.at(I, 1) > 0.5) ? 1 : 0;
  }
  DecisionTree T;
  DecisionTreeOptions O;
  O.MaxDepth = 6;
  T.fit(X, Y, 2, O);
  size_t Correct = 0;
  for (size_t I = 0; I != 400; ++I)
    if (T.predict({X.at(I, 0), X.at(I, 1)}) == Y[I])
      ++Correct;
  EXPECT_GT(Correct, 380u);
}

TEST(DecisionTreeTest, RespectsAllowedFeatures) {
  support::Rng Rng(4);
  linalg::Matrix X;
  std::vector<unsigned> Y;
  thresholdData(X, Y, 200, Rng);
  DecisionTree T;
  DecisionTreeOptions O;
  O.AllowedFeatures = {1}; // only the irrelevant feature
  T.fit(X, Y, 2, O);
  for (unsigned F : T.usedFeatures())
    EXPECT_EQ(F, 1u);
}

TEST(DecisionTreeTest, UsedFeaturesReportsSplitFeatures) {
  support::Rng Rng(5);
  linalg::Matrix X;
  std::vector<unsigned> Y;
  thresholdData(X, Y, 200, Rng);
  DecisionTree T;
  T.fit(X, Y, 2);
  std::vector<unsigned> Used = T.usedFeatures();
  ASSERT_FALSE(Used.empty());
  // Feature 0 fully determines the label; the root must split on it.
  EXPECT_EQ(Used[0], 0u);
}

TEST(DecisionTreeTest, DepthCapRespected) {
  support::Rng Rng(6);
  linalg::Matrix X(300, 1);
  std::vector<unsigned> Y(300);
  for (size_t I = 0; I != 300; ++I) {
    X.at(I, 0) = Rng.uniform(0, 1);
    Y[I] = static_cast<unsigned>(I % 7); // noisy labels force deep growth
  }
  DecisionTree T;
  DecisionTreeOptions O;
  O.MaxDepth = 3;
  T.fit(X, Y, 7, O);
  EXPECT_LE(T.depth(), 4u); // depth counts nodes; MaxDepth counts splits
}

TEST(DecisionTreeTest, CostMatrixChangesLeafLabels) {
  // 70 samples of class 0, 30 of class 1, indistinguishable features.
  linalg::Matrix X(100, 1, 1.0);
  std::vector<unsigned> Y(100, 0);
  for (size_t I = 70; I != 100; ++I)
    Y[I] = 1;

  DecisionTree Plain;
  Plain.fit(X, Y, 2);
  EXPECT_EQ(Plain.predict({1.0}), 0u) << "majority label without costs";

  // Make predicting 0 for a true 1 catastrophically expensive.
  CostMatrix C(2);
  C.at(1, 0) = 100.0;
  C.at(0, 1) = 1.0;
  DecisionTree Sensitive;
  DecisionTreeOptions O;
  O.Costs = &C;
  Sensitive.fit(X, Y, 2, O);
  EXPECT_EQ(Sensitive.predict({1.0}), 1u) << "cost-aware label flips";
}

TEST(DecisionTreeTest, PredictLazyMatchesDenseAndTouchesOnlyPath) {
  support::Rng Rng(7);
  linalg::Matrix X;
  std::vector<unsigned> Y;
  thresholdData(X, Y, 300, Rng);
  DecisionTree T;
  T.fit(X, Y, 2);
  for (size_t I = 0; I != 50; ++I) {
    std::vector<double> Row{Rng.uniform(0, 10), Rng.uniform(0, 10)};
    std::set<unsigned> Touched;
    unsigned Lazy = T.predictLazy([&](unsigned F) {
      Touched.insert(F);
      return Row[F];
    });
    EXPECT_EQ(Lazy, T.predict(Row));
    // The irrelevant feature should rarely (ideally never) be touched.
    EXPECT_TRUE(Touched.count(0) == 1 || !Touched.empty());
  }
}

TEST(DecisionTreeTest, TrainOnSubsetOfRows) {
  support::Rng Rng(8);
  linalg::Matrix X;
  std::vector<unsigned> Y;
  thresholdData(X, Y, 100, Rng);
  // Poison the rows outside the sample: if the tree read them, accuracy
  // on the sample would collapse.
  std::vector<size_t> Sample;
  for (size_t I = 0; I != 50; ++I)
    Sample.push_back(I);
  for (size_t I = 50; I != 100; ++I)
    Y[I] = 1 - Y[I];
  DecisionTree T;
  T.fit(X, Y, 2, {}, Sample);
  size_t Correct = 0;
  for (size_t I : Sample)
    if (T.predict({X.at(I, 0), X.at(I, 1)}) == Y[I])
      ++Correct;
  EXPECT_EQ(Correct, Sample.size());
}

TEST(DecisionTreeTest, MinSamplesLeafPreventsTinyLeaves) {
  support::Rng Rng(9);
  linalg::Matrix X;
  std::vector<unsigned> Y;
  thresholdData(X, Y, 40, Rng);
  DecisionTree T;
  DecisionTreeOptions O;
  O.MinSamplesLeaf = 20;
  O.MinSamplesSplit = 40;
  T.fit(X, Y, 2, O);
  EXPECT_LE(T.numNodes(), 3u);
}

} // namespace

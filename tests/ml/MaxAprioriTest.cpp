//===- tests/ml/MaxAprioriTest.cpp -------------------------------------------=//

#include "ml/MaxApriori.h"

#include <gtest/gtest.h>

using pbt::ml::MaxApriori;

namespace {

TEST(MaxAprioriTest, PredictsModalLabel) {
  MaxApriori M;
  M.fit({0, 1, 1, 2, 1, 0}, 3);
  EXPECT_EQ(M.predict(), 1u);
}

TEST(MaxAprioriTest, PriorsSumToOne) {
  MaxApriori M;
  M.fit({0, 0, 1, 2}, 3);
  double Sum = 0.0;
  for (double P : M.priors())
    Sum += P;
  EXPECT_NEAR(Sum, 1.0, 1e-12);
  EXPECT_NEAR(M.priors()[0], 0.5, 1e-12);
}

TEST(MaxAprioriTest, TieBreaksToLowestLabel) {
  MaxApriori M;
  M.fit({1, 0, 0, 1}, 2);
  EXPECT_EQ(M.predict(), 0u);
}

TEST(MaxAprioriTest, SingleClass) {
  MaxApriori M;
  M.fit({4, 4, 4}, 5);
  EXPECT_EQ(M.predict(), 4u);
}

} // namespace

//===- tests/ml/DatasetTest.cpp ----------------------------------------------=//
//
// The columnar training substrate's contract: a Dataset is a pure
// reorganisation of the evidence tables (columns mirror the matrices,
// the presorted index matches a naive per-column sort, meets bits match
// the threshold predicate), row views compose, presorted bases/views
// filter correctly, and -- the load-bearing claim -- a DecisionTree fit
// through a PresortedView is structurally identical to the row-major
// fit it replaces.

#include "ml/Dataset.h"
#include "ml/DecisionTree.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

using namespace pbt;
using namespace pbt::ml;

namespace {

struct Tables {
  linalg::Matrix Features, Costs, Time, Acc;
};

/// Random evidence tables with deliberate duplicate feature values (ties
/// exercise the presorted index ordering and the tree's boundary rules).
Tables makeTables(size_t N, unsigned M, unsigned K, uint64_t Seed) {
  support::Rng Rng(Seed);
  Tables T{linalg::Matrix(N, M), linalg::Matrix(N, M), linalg::Matrix(N, K),
           linalg::Matrix(N, K)};
  for (size_t R = 0; R != N; ++R) {
    for (unsigned F = 0; F != M; ++F) {
      T.Features.at(R, F) = static_cast<double>(Rng.index(8)); // many ties
      T.Costs.at(R, F) = Rng.uniform(0.1, 3.0);
    }
    for (unsigned L = 0; L != K; ++L) {
      T.Time.at(R, L) = Rng.uniform(1.0, 100.0);
      T.Acc.at(R, L) = Rng.uniform(0.0, 1.0);
    }
  }
  return T;
}

TEST(DatasetTest, ColumnsMirrorTheTables) {
  Tables T = makeTables(37, 5, 3, 11);
  Dataset D(T.Features, T.Costs, T.Time, T.Acc, 0.5);
  ASSERT_EQ(D.numRows(), 37u);
  ASSERT_EQ(D.numFeatures(), 5u);
  ASSERT_EQ(D.numCandidates(), 3u);
  for (size_t R = 0; R != D.numRows(); ++R) {
    for (unsigned F = 0; F != D.numFeatures(); ++F) {
      EXPECT_EQ(D.feature(R, F), T.Features.at(R, F));
      EXPECT_EQ(D.cost(R, F), T.Costs.at(R, F));
    }
    for (unsigned L = 0; L != D.numCandidates(); ++L) {
      EXPECT_EQ(D.time(R, L), T.Time.at(R, L));
      EXPECT_EQ(D.meets(R, L), T.Acc.at(R, L) >= 0.5);
    }
  }
}

TEST(DatasetTest, NoThresholdMeansEveryRowMeets) {
  Tables T = makeTables(12, 2, 2, 12);
  Dataset D(T.Features, T.Costs, T.Time, T.Acc, std::nullopt);
  for (size_t R = 0; R != D.numRows(); ++R)
    for (unsigned L = 0; L != D.numCandidates(); ++L)
      EXPECT_TRUE(D.meets(R, L));
}

TEST(DatasetTest, PresortedIndexMatchesNaiveSortPerColumn) {
  Tables T = makeTables(64, 4, 2, 13);
  Dataset D(T.Features, T.Costs, T.Time, T.Acc, std::nullopt);
  for (unsigned F = 0; F != D.numFeatures(); ++F) {
    std::vector<uint32_t> Naive(D.numRows());
    std::iota(Naive.begin(), Naive.end(), 0u);
    std::sort(Naive.begin(), Naive.end(), [&](uint32_t A, uint32_t B) {
      if (T.Features.at(A, F) != T.Features.at(B, F))
        return T.Features.at(A, F) < T.Features.at(B, F);
      return A < B;
    });
    const uint32_t *Idx = D.sortedRows(F);
    for (size_t I = 0; I != D.numRows(); ++I)
      EXPECT_EQ(Idx[I], Naive[I]) << "feature " << F << " position " << I;
  }
}

TEST(DatasetTest, LabelColumnRoundTrips) {
  Tables T = makeTables(9, 2, 3, 14);
  Dataset D(T.Features, T.Costs, T.Time, T.Acc, std::nullopt);
  EXPECT_FALSE(D.hasLabels());
  std::vector<unsigned> Labels(9);
  for (size_t R = 0; R != 9; ++R)
    Labels[R] = static_cast<unsigned>(R % 3);
  D.setLabels(Labels);
  ASSERT_TRUE(D.hasLabels());
  for (size_t R = 0; R != 9; ++R)
    EXPECT_EQ(D.label(R), Labels[R]);
}

TEST(DatasetTest, RowViewsCompose) {
  Tables T = makeTables(20, 2, 2, 15);
  Dataset D(T.Features, T.Costs, T.Time, T.Acc, std::nullopt);

  RowView All = RowView::all(D);
  ASSERT_EQ(All.size(), 20u);
  EXPECT_EQ(All[7], 7u);

  // A train split of global rows, then a fold of train *positions*: the
  // composed view must address global row ids.
  RowView Train = RowView::of(D, {2, 3, 5, 8, 13, 19});
  RowView Fold = Train.subset({0, 2, 5});
  ASSERT_EQ(Fold.size(), 3u);
  EXPECT_EQ(Fold[0], 2u);
  EXPECT_EQ(Fold[1], 5u);
  EXPECT_EQ(Fold[2], 19u);
  // Composing again keeps selecting positions of the current view.
  RowView Deep = Fold.subset({1, 2});
  ASSERT_EQ(Deep.size(), 2u);
  EXPECT_EQ(Deep[0], 5u);
  EXPECT_EQ(Deep[1], 19u);
}

TEST(DatasetTest, PresortedBaseFiltersTheGlobalIndex) {
  Tables T = makeTables(40, 3, 2, 16);
  Dataset D(T.Features, T.Costs, T.Time, T.Acc, std::nullopt);
  std::vector<size_t> Rows{1, 4, 9, 16, 25, 36, 39};
  PresortedBase Base(D, Rows);
  ASSERT_EQ(Base.size(), Rows.size());
  for (unsigned F = 0; F != D.numFeatures(); ++F) {
    const uint32_t *Col = Base.column(F);
    // Sorted by (value, row id) and exactly the subset.
    std::vector<uint32_t> Seen(Col, Col + Base.size());
    for (size_t I = 0; I + 1 < Base.size(); ++I) {
      double Va = D.feature(Col[I], F), Vb = D.feature(Col[I + 1], F);
      EXPECT_TRUE(Va < Vb || (Va == Vb && Col[I] < Col[I + 1]));
    }
    std::sort(Seen.begin(), Seen.end());
    std::vector<uint32_t> Expect(Rows.begin(), Rows.end());
    EXPECT_EQ(Seen, Expect);
  }
}

TEST(DatasetTest, PresortedViewSelectsFeatures) {
  Tables T = makeTables(16, 4, 2, 17);
  Dataset D(T.Features, T.Costs, T.Time, T.Acc, std::nullopt);
  std::vector<size_t> Rows(16);
  std::iota(Rows.begin(), Rows.end(), 0);
  PresortedBase Base(D, Rows);

  PresortedView Two(Base, {3, 1});
  ASSERT_EQ(Two.numFeatures(), 2u);
  EXPECT_EQ(Two.featureAt(0), 3u);
  EXPECT_EQ(Two.featureAt(1), 1u);
  for (unsigned CI = 0; CI != 2; ++CI)
    for (size_t I = 0; I != Two.size(); ++I)
      EXPECT_EQ(Two.column(CI)[I], Base.column(Two.featureAt(CI))[I]);

  PresortedView AllF(Base, {});
  EXPECT_EQ(AllF.numFeatures(), D.numFeatures());
}

/// The exactness claim the Level-2 rewrite rests on: presorted fits
/// produce the very tree the row-major fit would, across random tables,
/// subset choices, and tree shapes.
TEST(DatasetTest, PresortedTreeFitMatchesRowMajorFit) {
  support::Rng Rng(99);
  for (unsigned Trial = 0; Trial != 30; ++Trial) {
    size_t N = 12 + Rng.index(60);
    unsigned M = 2 + static_cast<unsigned>(Rng.index(5));
    unsigned K = 2 + static_cast<unsigned>(Rng.index(4));
    Tables T = makeTables(N, M, K, 1000 + Trial);
    Dataset D(T.Features, T.Costs, T.Time, T.Acc, std::nullopt);

    std::vector<unsigned> Y(N);
    for (size_t R = 0; R != N; ++R)
      Y[R] = static_cast<unsigned>(Rng.index(K));

    // A random row subset (at least 4 rows) and a random feature subset.
    std::vector<size_t> Rows;
    for (size_t R = 0; R != N; ++R)
      if (Rows.size() < 4 || Rng.chance(0.7))
        Rows.push_back(R);
    std::vector<unsigned> Feats;
    for (unsigned F = 0; F != M; ++F)
      if (Rng.chance(0.6))
        Feats.push_back(F);

    DecisionTreeOptions Opts;
    Opts.MaxDepth = 1 + static_cast<unsigned>(Rng.index(8));
    Opts.MinSamplesLeaf = 1 + static_cast<unsigned>(Rng.index(3));
    Opts.MinSamplesSplit = 2 + static_cast<unsigned>(Rng.index(4));
    Opts.AllowedFeatures = Feats;

    DecisionTree RowMajor;
    RowMajor.fit(T.Features, Y, K, Opts, Rows);

    PresortedBase Base(D, Rows);
    PresortedView View(Base, Feats);
    DecisionTree Presorted;
    Presorted.fit(D, Y, K, Opts, View);

    EXPECT_EQ(Presorted.structuralKey(), RowMajor.structuralKey())
        << "trial " << Trial << " (N=" << N << ", M=" << M << ", K=" << K
        << ")";
  }
}

} // namespace

//===- tests/benchmarks/BinPackingTest.cpp -----------------------------------=//

#include "benchmarks/BinPackingBenchmark.h"

#include <gtest/gtest.h>

#include <numeric>

using namespace pbt;
using namespace pbt::bench;

namespace {

/// Property sweep: every algorithm produces a valid packing on every
/// generator family.
using AlgoGenParam = std::tuple<unsigned, unsigned>;

class PackingProperty : public ::testing::TestWithParam<AlgoGenParam> {};

TEST_P(PackingProperty, PackingIsValid) {
  auto [AlgoIdx, GenIdx] = GetParam();
  support::Rng Rng(500 + AlgoIdx * 31 + GenIdx);
  for (size_t N : {1ull, 2ull, 17ull, 128ull, 400ull}) {
    std::vector<double> Items =
        generatePackInput(static_cast<PackGen>(GenIdx), N, Rng);
    support::CostCounter Cost;
    PackingResult R = pack(static_cast<PackAlgo>(AlgoIdx), Items, Cost);
    EXPECT_TRUE(packingIsValid(R, Items))
        << packAlgoName(static_cast<PackAlgo>(AlgoIdx)) << " on "
        << packGenName(static_cast<PackGen>(GenIdx)) << " n=" << N;
    EXPECT_GT(Cost.units(), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgosAllGens, PackingProperty,
    ::testing::Combine(::testing::Range(0u, NumPackAlgos),
                       ::testing::Range(0u, NumPackGens)));

TEST(BinPackingTest, KnownFirstFitExample) {
  // Items 0.6, 0.6, 0.4, 0.4: FF opens two bins then fills them.
  std::vector<double> Items{0.6, 0.6, 0.4, 0.4};
  support::CostCounter C;
  PackingResult R = pack(PackAlgo::FirstFit, Items, C);
  EXPECT_EQ(R.numBins(), 2u);
  EXPECT_NEAR(R.averageOccupancy(), 1.0, 1e-12);
}

TEST(BinPackingTest, NextFitMissesEarlierBins) {
  // 0.6, 0.6, 0.4: NextFit cannot return to bin 0 for the 0.4.
  std::vector<double> Items{0.6, 0.6, 0.4};
  support::CostCounter C;
  PackingResult NF = pack(PackAlgo::NextFit, Items, C);
  PackingResult FF = pack(PackAlgo::FirstFit, Items, C);
  EXPECT_EQ(NF.numBins(), 2u);
  EXPECT_EQ(FF.numBins(), 2u);
  // Same bin count here, but loads differ: FF puts 0.4 with the first 0.6.
  EXPECT_NEAR(FF.BinLoads[0], 1.0, 1e-12);
  EXPECT_NEAR(NF.BinLoads[1], 1.0, 1e-12);
}

TEST(BinPackingTest, BestFitPrefersTightestBin) {
  // Open bins with loads 0.5 and 0.7 (via items), then add 0.3: BestFit
  // must put it in the 0.7 bin.
  std::vector<double> Items{0.5, 0.7, 0.3};
  support::CostCounter C;
  PackingResult R = pack(PackAlgo::BestFit, Items, C);
  ASSERT_EQ(R.numBins(), 2u);
  EXPECT_NEAR(R.BinLoads[1], 1.0, 1e-12);
}

TEST(BinPackingTest, WorstFitPrefersEmptiestBin) {
  std::vector<double> Items{0.5, 0.7, 0.3};
  support::CostCounter C;
  PackingResult R = pack(PackAlgo::WorstFit, Items, C);
  ASSERT_EQ(R.numBins(), 2u);
  EXPECT_NEAR(R.BinLoads[0], 0.8, 1e-12);
}

TEST(BinPackingTest, AlmostWorstFitPicksSecondEmptiest) {
  // After 0.9, 0.6, 0.5 the bins are {0.9, 0.6, 0.5}. Item 0.3 fits bins
  // 1 (residual 0.1 after placing) and 2 (residual 0.2): the emptiest is
  // bin 2, so AWF places in the second-emptiest, bin 1.
  std::vector<double> Items{0.9, 0.6, 0.5, 0.3};
  support::CostCounter C;
  PackingResult R = pack(PackAlgo::AlmostWorstFit, Items, C);
  ASSERT_EQ(R.numBins(), 3u);
  EXPECT_NEAR(R.BinLoads[1], 0.9, 1e-12);
  EXPECT_NEAR(R.BinLoads[2], 0.5, 1e-12);
}

TEST(BinPackingTest, AlmostWorstFitUsesOnlyFittingBinWhenUnique) {
  // 0.2 then 0.5: only bin 0 fits the 0.5, so AWF must use it rather
  // than opening a new bin.
  std::vector<double> Items{0.2, 0.5};
  support::CostCounter C;
  PackingResult R = pack(PackAlgo::AlmostWorstFit, Items, C);
  ASSERT_EQ(R.numBins(), 1u);
  EXPECT_NEAR(R.BinLoads[0], 0.7, 1e-12);
}

TEST(BinPackingTest, DecreasingVariantsImproveOnPerfectSplitInputs) {
  support::Rng Rng(7);
  double FFSum = 0.0, FFDSum = 0.0;
  for (int Trial = 0; Trial != 20; ++Trial) {
    std::vector<double> Items =
        generatePackInput(PackGen::PerfectSplit, 200, Rng);
    support::CostCounter C;
    FFSum += pack(PackAlgo::FirstFit, Items, C).averageOccupancy();
    FFDSum += pack(PackAlgo::FirstFitDecreasing, Items, C).averageOccupancy();
  }
  EXPECT_GT(FFDSum, FFSum) << "FFD should pack perfect-split inputs better";
}

TEST(BinPackingTest, MFFDHandlesLargeAndSmallItems) {
  support::Rng Rng(8);
  for (int Trial = 0; Trial != 10; ++Trial) {
    std::vector<double> Items = generatePackInput(PackGen::Bimodal, 150, Rng);
    support::CostCounter C;
    PackingResult R = pack(PackAlgo::ModifiedFirstFitDecreasing, Items, C);
    EXPECT_TRUE(packingIsValid(R, Items));
    // MFFD pairs ~0.62 items with ~0.36 items: occupancy near 0.95+.
    EXPECT_GT(R.averageOccupancy(), 0.85);
  }
}

TEST(BinPackingTest, FFDNeverWorseThanNFOnAverage) {
  support::Rng Rng(9);
  double NF = 0.0, FFD = 0.0;
  for (int Trial = 0; Trial != 30; ++Trial) {
    std::vector<double> Items =
        generatePackInput(static_cast<PackGen>(Trial % NumPackGens), 120, Rng);
    support::CostCounter C;
    NF += static_cast<double>(pack(PackAlgo::NextFit, Items, C).numBins());
    FFD += static_cast<double>(
        pack(PackAlgo::FirstFitDecreasing, Items, C).numBins());
  }
  EXPECT_LE(FFD, NF);
}

TEST(BinPackingTest, EmptyInputYieldsNoBins) {
  support::CostCounter C;
  PackingResult R = pack(PackAlgo::BestFit, {}, C);
  EXPECT_EQ(R.numBins(), 0u);
  EXPECT_DOUBLE_EQ(R.averageOccupancy(), 1.0);
}

TEST(BinPackingBenchmarkTest, AccuracyEqualsAverageOccupancy) {
  BinPackingBenchmark::Options O;
  O.NumInputs = 10;
  O.MinItems = 30;
  O.MaxItems = 60;
  BinPackingBenchmark B(O);
  ASSERT_TRUE(B.accuracy().has_value());
  EXPECT_DOUBLE_EQ(B.accuracy()->AccuracyThreshold, 0.95);
  support::Rng Rng(10);
  runtime::Configuration C = B.space().randomConfig(Rng);
  support::CostCounter Cost;
  runtime::RunResult R = B.run(0, C, Cost);
  support::CostCounter Check;
  PackingResult P = pack(B.algoFor(C), B.input(0), Check);
  EXPECT_DOUBLE_EQ(R.Accuracy, P.averageOccupancy());
  EXPECT_DOUBLE_EQ(R.TimeUnits, Check.units());
}

TEST(BinPackingBenchmarkTest, ThirteenAlgorithmChoices) {
  BinPackingBenchmark::Options O;
  O.NumInputs = 4;
  BinPackingBenchmark B(O);
  ASSERT_EQ(B.space().size(), 1u);
  EXPECT_EQ(B.space().param(0).Cardinality, 13u);
}

TEST(BinPackingBenchmarkTest, FeaturesWithinExpectedRanges) {
  BinPackingBenchmark::Options O;
  O.NumInputs = 20;
  BinPackingBenchmark B(O);
  for (size_t I = 0; I != B.numInputs(); ++I) {
    support::CostCounter C;
    double Avg = B.extractFeature(I, 0, 1, C);
    double Range = B.extractFeature(I, 2, 1, C);
    double Sortedness = B.extractFeature(I, 3, 1, C);
    EXPECT_GT(Avg, 0.0);
    EXPECT_LE(Avg, 1.0);
    EXPECT_GE(Range, 0.0);
    EXPECT_LE(Range, 1.0);
    EXPECT_GE(Sortedness, 0.0);
    EXPECT_LE(Sortedness, 1.0);
  }
}

} // namespace

//===- tests/benchmarks/Helmholtz3DBenchmarkTest.cpp --------------------------=//

#include "benchmarks/Helmholtz3DBenchmark.h"

#include <gtest/gtest.h>

using namespace pbt;
using namespace pbt::bench;

namespace {

Helmholtz3DBenchmark::Options tinyOptions() {
  Helmholtz3DBenchmark::Options O;
  O.NumInputs = 6;
  O.GridN = 9;
  O.Seed = 1;
  return O;
}

runtime::Configuration pdeConfig(unsigned Solver, int64_t Cycles = 8,
                                 int64_t Pre = 2, int64_t Post = 2,
                                 int64_t Mu = 1, unsigned Smoother = 1,
                                 double Omega = 1.5, int64_t StatIters = 100,
                                 int64_t CGIters = 200) {
  return runtime::Configuration(std::vector<double>{
      static_cast<double>(Solver), static_cast<double>(Cycles),
      static_cast<double>(Pre), static_cast<double>(Post),
      static_cast<double>(Mu), static_cast<double>(Smoother), Omega,
      static_cast<double>(StatIters), static_cast<double>(CGIters)});
}

TEST(Helmholtz3DBenchmarkTest, DirectSolverMeetsAccuracyTarget) {
  Helmholtz3DBenchmark B(tinyOptions());
  for (size_t I = 0; I != B.numInputs(); ++I) {
    runtime::RunResult R = B.runOnce(I, pdeConfig(5));
    EXPECT_GE(R.Accuracy, 7.0);
  }
}

TEST(Helmholtz3DBenchmarkTest, HeavyMultigridMeetsAccuracyTarget) {
  Helmholtz3DBenchmark B(tinyOptions());
  size_t Met = 0;
  for (size_t I = 0; I != B.numInputs(); ++I) {
    runtime::RunResult R = B.runOnce(I, pdeConfig(0, /*Cycles=*/12, 3, 3, 2));
    if (R.Accuracy >= 7.0)
      ++Met;
  }
  EXPECT_GE(Met, B.numInputs() - 1);
}

TEST(Helmholtz3DBenchmarkTest, CGConvergesOnSPDProblem) {
  Helmholtz3DBenchmark B(tinyOptions());
  runtime::RunResult R = B.runOnce(0, pdeConfig(4, 8, 2, 2, 1, 1, 1.5, 100,
                                            /*CGIters=*/300));
  EXPECT_GE(R.Accuracy, 7.0);
}

TEST(Helmholtz3DBenchmarkTest, FewStationarySweepsMissTarget) {
  Helmholtz3DBenchmark B(tinyOptions());
  size_t Missed = 0;
  for (size_t I = 0; I != B.numInputs(); ++I) {
    runtime::RunResult R = B.runOnce(I, pdeConfig(1, 8, 2, 2, 1, 1, 1.5,
                                              /*StatIters=*/10));
    if (R.Accuracy < 7.0)
      ++Missed;
  }
  EXPECT_GT(Missed, 0u);
}

TEST(Helmholtz3DBenchmarkTest, ProblemsHavePositiveCoefficients) {
  Helmholtz3DBenchmark B(tinyOptions());
  for (size_t I = 0; I != B.numInputs(); ++I) {
    const pde::HelmholtzProblem &P = B.problem(I);
    EXPECT_GT(P.Alpha, 0.0);
    for (double Beta : P.Beta.data())
      EXPECT_GT(Beta, 0.0);
  }
}

TEST(Helmholtz3DBenchmarkTest, TagsCombineRHSAndBeta) {
  Helmholtz3DBenchmark B(tinyOptions());
  for (size_t I = 0; I != B.numInputs(); ++I)
    EXPECT_NE(B.inputTag(I).find('/'), std::string::npos);
}

TEST(Helmholtz3DBenchmarkTest, FeatureExtractionCostGrowsWithLevel) {
  Helmholtz3DBenchmark B(tinyOptions());
  support::CostCounter C0, C2;
  B.extractFeature(0, 0, 0, C0);
  B.extractFeature(0, 0, 2, C2);
  EXPECT_GE(C2.units(), C0.units());
}

TEST(Helmholtz3DBenchmarkTest, RunMeasuresDelta) {
  Helmholtz3DBenchmark B(tinyOptions());
  support::CostCounter Cost;
  Cost.addOther(999.0);
  runtime::RunResult R = B.runOnce(0, pdeConfig(0, 2));
  support::CostCounter Fresh;
  runtime::RunResult R2 = B.run(0, pdeConfig(0, 2), Fresh);
  EXPECT_DOUBLE_EQ(R.TimeUnits, R2.TimeUnits);
}

} // namespace

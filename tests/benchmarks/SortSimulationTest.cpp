//===- tests/benchmarks/SortSimulationTest.cpp -------------------------------=//
//
// The charge-exact simulation contract: with simulation enabled (the
// default), every sort kernel and SortBenchmark::run produce exactly the
// bytes and exactly the cost-category charges of the physical reference
// path -- across input families, sizes, selector shapes, and repeated
// runs (the canonical-configuration memo replays must be exact too).

#include "benchmarks/SortAlgorithms.h"
#include "benchmarks/SortBenchmark.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <vector>

using namespace pbt;
using namespace pbt::bench;

namespace {

/// Restores the default (enabled) simulation mode on scope exit so a
/// failing assertion cannot leak reference mode into other tests.
struct SimModeGuard {
  ~SimModeGuard() { setSortSimulation(true); }
};

void expectSameCharges(const support::CostCounter &A,
                       const support::CostCounter &B, const char *What) {
  EXPECT_EQ(A.compares(), B.compares()) << What;
  EXPECT_EQ(A.moves(), B.moves()) << What;
  EXPECT_EQ(A.flops(), B.flops()) << What;
  EXPECT_EQ(A.stencil(), B.stencil()) << What;
  EXPECT_EQ(A.other(), B.other()) << What;
}

TEST(SortSimulationTest, KernelsMatchPhysicalReferenceExactly) {
  SimModeGuard Guard;
  support::Rng GenRng(777);
  for (unsigned Trial = 0; Trial != 60; ++Trial) {
    SortGen G = static_cast<SortGen>(GenRng.index(NumSortGens));
    size_t N = 8 + GenRng.index(1500);
    std::vector<double> Input = generateSortInput(G, N, GenRng);

    // A random selector over random cutoffs (including degenerate ones)
    // and a random way count drive the full polyalgorithm recursion.
    std::vector<runtime::Selector::Level> Levels;
    unsigned NumLevels = 1 + static_cast<unsigned>(GenRng.index(3));
    for (unsigned L = 0; L + 1 < NumLevels; ++L)
      Levels.push_back({4 + GenRng.index(2 * N),
                        static_cast<unsigned>(GenRng.index(NumSortAlgos))});
    Levels.push_back({UINT64_MAX,
                      static_cast<unsigned>(GenRng.index(NumSortAlgos))});
    runtime::Selector Sel(std::move(Levels));
    unsigned Ways = 2 + static_cast<unsigned>(GenRng.index(15));
    PolySorter Sorter(Sel, Ways);

    setSortSimulation(false);
    std::vector<double> Physical = Input;
    support::CostCounter PhysicalCost;
    Sorter.sort(Physical, PhysicalCost);

    setSortSimulation(true);
    std::vector<double> Simulated = Input;
    support::CostCounter SimulatedCost;
    Sorter.sort(Simulated, SimulatedCost);

    ASSERT_EQ(Simulated, Physical)
        << "trial " << Trial << " gen " << sortGenName(G) << " n=" << N;
    expectSameCharges(SimulatedCost, PhysicalCost, sortGenName(G));
  }
}

TEST(SortSimulationTest, BenchmarkRunsMatchPhysicalAndMemoReplaysExactly) {
  SimModeGuard Guard;
  SortBenchmark::Options Opts;
  Opts.Data = SortBenchmark::Dataset::SyntheticMix;
  Opts.NumInputs = 24;
  Opts.MinSize = 64;
  Opts.MaxSize = 512;
  Opts.Seed = 31337;
  SortBenchmark Bench(Opts);

  support::Rng Rng(4242);
  for (unsigned Trial = 0; Trial != 120; ++Trial) {
    runtime::Configuration Config = Bench.space().randomConfig(Rng);
    size_t Input = Rng.index(Bench.numInputs());

    setSortSimulation(false);
    support::CostCounter Physical;
    runtime::RunResult PR = Bench.run(Input, Config, Physical);

    setSortSimulation(true);
    support::CostCounter First;
    runtime::RunResult FR = Bench.run(Input, Config, First);
    // Run again: canonical-memo replays (hits are certain the second
    // time) must reproduce the exact charges, not an approximation.
    support::CostCounter Second;
    runtime::RunResult SR = Bench.run(Input, Config, Second);

    EXPECT_EQ(FR.TimeUnits, PR.TimeUnits) << "trial " << Trial;
    EXPECT_EQ(FR.Accuracy, PR.Accuracy);
    expectSameCharges(First, Physical, "first simulated run");
    EXPECT_EQ(SR.TimeUnits, PR.TimeUnits) << "memo replay, trial " << Trial;
    expectSameCharges(Second, Physical, "memo replay");
  }
}

} // namespace

//===- tests/benchmarks/SortAlgorithmsTest.cpp -------------------------------=//

#include "benchmarks/SortAlgorithms.h"
#include "benchmarks/SortBenchmark.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace pbt;
using namespace pbt::bench;

namespace {

/// Selector that always picks one algorithm.
runtime::Selector always(SortAlgo A) {
  return runtime::Selector({{UINT64_MAX, static_cast<unsigned>(A)}});
}

/// Property sweep: every terminal algorithm sorts every generator family.
using AlgoGenParam = std::tuple<unsigned, unsigned>;

class SortAlgoProperty : public ::testing::TestWithParam<AlgoGenParam> {};

TEST_P(SortAlgoProperty, SortsCorrectly) {
  auto [AlgoIdx, GenIdx] = GetParam();
  support::Rng Rng(1000 + AlgoIdx * 17 + GenIdx);
  for (size_t N : {0ull, 1ull, 2ull, 7ull, 64ull, 500ull, 1024ull}) {
    std::vector<double> V = generateSortInput(
        static_cast<SortGen>(GenIdx), std::max<size_t>(N, 1), Rng);
    V.resize(N);
    std::vector<double> Expected = V;
    std::sort(Expected.begin(), Expected.end());
    support::CostCounter Cost;
    PolySorter Sorter(always(static_cast<SortAlgo>(AlgoIdx)), 4);
    Sorter.sort(V, Cost);
    EXPECT_EQ(V, Expected) << "algo " << AlgoIdx << " gen " << GenIdx
                           << " n " << N;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgosAllGens, SortAlgoProperty,
    ::testing::Combine(::testing::Range(0u, NumSortAlgos),
                       ::testing::Range(0u, NumSortGens)));

TEST(SortAlgorithmsTest, QuickSortPathologicalOnSortedInput) {
  support::Rng Rng(2);
  size_t N = 2048;
  std::vector<double> Sorted = generateSortInput(SortGen::Sorted, N, Rng);
  std::vector<double> Random = generateSortInput(SortGen::Uniform, N, Rng);
  support::CostCounter CS, CR;
  PolySorter Q(always(SortAlgo::Quick), 2);
  std::vector<double> A = Sorted;
  Q.sort(A, CS);
  std::vector<double> B = Random;
  Q.sort(B, CR);
  // First-element-pivot quicksort is quadratic on sorted input: the cost
  // gap must be large (n^2/2 vs ~n log n).
  EXPECT_GT(CS.units(), 10.0 * CR.units());
}

TEST(SortAlgorithmsTest, InsertionSortLinearOnSortedInput) {
  support::Rng Rng(3);
  size_t N = 4096;
  std::vector<double> Sorted = generateSortInput(SortGen::Sorted, N, Rng);
  support::CostCounter C;
  PolySorter I(always(SortAlgo::Insertion), 2);
  I.sort(Sorted, C);
  EXPECT_LT(C.units(), 3.0 * static_cast<double>(N));
}

TEST(SortAlgorithmsTest, RadixBeatsInsertionOnLargeRandom) {
  support::Rng Rng(4);
  size_t N = 4096;
  std::vector<double> V = generateSortInput(SortGen::Uniform, N, Rng);
  support::CostCounter CR, CI;
  std::vector<double> A = V;
  PolySorter(always(SortAlgo::Radix), 2).sort(A, CR);
  std::vector<double> B = V;
  PolySorter(always(SortAlgo::Insertion), 2).sort(B, CI);
  EXPECT_LT(CR.units(), CI.units() / 10.0);
}

TEST(SortAlgorithmsTest, RadixHandlesNegativesAndDuplicates) {
  std::vector<double> V{-3.5, 2.0, -3.5, 0.0, -100.25, 7.0, 0.0};
  std::vector<double> Expected = V;
  std::sort(Expected.begin(), Expected.end());
  support::CostCounter C;
  PolySorter(always(SortAlgo::Radix), 2).sort(V, C);
  EXPECT_EQ(V, Expected);
}

TEST(SortAlgorithmsTest, MergeWaysAllSort) {
  support::Rng Rng(5);
  std::vector<double> V = generateSortInput(SortGen::Uniform, 777, Rng);
  std::vector<double> Expected = V;
  std::sort(Expected.begin(), Expected.end());
  for (unsigned Ways : {2u, 3u, 4u, 8u, 16u}) {
    std::vector<double> Work = V;
    support::CostCounter C;
    PolySorter(always(SortAlgo::Merge), Ways).sort(Work, C);
    EXPECT_EQ(Work, Expected) << Ways << "-way merge";
  }
}

TEST(SortAlgorithmsTest, Figure2StylePolyalgorithmSorts) {
  // MergeSort above 1420, QuickSort above 600, InsertionSort below:
  // exactly the paper's Figure 2 selector.
  runtime::Selector Sel({{600, static_cast<unsigned>(SortAlgo::Insertion)},
                         {1420, static_cast<unsigned>(SortAlgo::Quick)},
                         {UINT64_MAX, static_cast<unsigned>(SortAlgo::Merge)}});
  support::Rng Rng(6);
  std::vector<double> V = generateSortInput(SortGen::Gaussian, 5000, Rng);
  std::vector<double> Expected = V;
  std::sort(Expected.begin(), Expected.end());
  support::CostCounter C;
  PolySorter(Sel, 2).sort(V, C);
  EXPECT_EQ(V, Expected);
}

TEST(SortAlgorithmsTest, PolyalgorithmBeatsPureInsertionOnLargeInputs) {
  runtime::Selector Sel({{64, static_cast<unsigned>(SortAlgo::Insertion)},
                         {UINT64_MAX, static_cast<unsigned>(SortAlgo::Merge)}});
  support::Rng Rng(7);
  std::vector<double> V = generateSortInput(SortGen::Uniform, 8192, Rng);
  support::CostCounter CPoly, CIns;
  std::vector<double> A = V;
  PolySorter(Sel, 2).sort(A, CPoly);
  std::vector<double> B = V;
  PolySorter(always(SortAlgo::Insertion), 2).sort(B, CIns);
  EXPECT_LT(CPoly.units(), CIns.units() / 50.0);
}

TEST(SortAlgorithmsTest, BitonicCostsMoreThanMergeSerially) {
  support::Rng Rng(8);
  std::vector<double> V = generateSortInput(SortGen::Uniform, 2048, Rng);
  support::CostCounter CB, CM;
  std::vector<double> A = V;
  PolySorter(always(SortAlgo::Bitonic), 2).sort(A, CB);
  std::vector<double> B = V;
  PolySorter(always(SortAlgo::Merge), 2).sort(B, CM);
  EXPECT_GT(CB.units(), CM.units());
}

TEST(SortAlgorithmsTest, IsSortedHelper) {
  EXPECT_TRUE(isSorted({1, 2, 2, 3}, 0, 4));
  EXPECT_FALSE(isSorted({2, 1}, 0, 2));
  EXPECT_TRUE(isSorted({}, 0, 0));
}

} // namespace

//===- tests/benchmarks/SortBenchmarkTest.cpp --------------------------------=//

#include "benchmarks/SortBenchmark.h"

#include <gtest/gtest.h>

#include <set>

using namespace pbt;
using namespace pbt::bench;

namespace {

SortBenchmark::Options tinyOptions() {
  SortBenchmark::Options O;
  O.NumInputs = 24;
  O.MinSize = 64;
  O.MaxSize = 512;
  O.Seed = 1;
  return O;
}

TEST(SortBenchmarkTest, DeclaresFourFeaturesAtThreeLevels) {
  SortBenchmark B(tinyOptions());
  auto F = B.features();
  ASSERT_EQ(F.size(), 4u);
  for (const auto &Info : F)
    EXPECT_EQ(Info.Levels, 3u);
  EXPECT_EQ(B.numMLFeatures(), 12u);
}

TEST(SortBenchmarkTest, IsExactProgram) {
  SortBenchmark B(tinyOptions());
  EXPECT_FALSE(B.accuracy().has_value());
}

TEST(SortBenchmarkTest, SortednessStaysInUnitInterval) {
  SortBenchmark B(tinyOptions());
  for (size_t I = 0; I != B.numInputs(); ++I)
    for (unsigned L = 0; L != 3; ++L) {
      support::CostCounter C;
      double V = B.extractFeature(I, 2, L, C);
      EXPECT_GE(V, 0.0);
      EXPECT_LE(V, 1.0);
    }
}

TEST(SortBenchmarkTest, SortednessSeparatesSortedFromReversed) {
  // Compare the extractor on hand-picked sorted vs reversed inputs by
  // scanning the benchmark's synthetic mixture for those tags.
  SortBenchmark::Options O = tinyOptions();
  O.NumInputs = 120;
  SortBenchmark B(O);
  double SortedMin = 2.0, ReverseMax = -1.0;
  for (size_t I = 0; I != B.numInputs(); ++I) {
    support::CostCounter C;
    double V = B.extractFeature(I, 2, 2, C);
    if (B.inputTag(I) == "sorted")
      SortedMin = std::min(SortedMin, V);
    if (B.inputTag(I) == "reverse")
      ReverseMax = std::max(ReverseMax, V);
  }
  ASSERT_LE(SortedMin, 1.0) << "mixture must contain sorted inputs";
  ASSERT_GE(ReverseMax, 0.0) << "mixture must contain reversed inputs";
  EXPECT_GT(SortedMin, 0.95);
  EXPECT_LT(ReverseMax, 0.2);
}

TEST(SortBenchmarkTest, FeatureCostGrowsWithLevel) {
  SortBenchmark::Options O = tinyOptions();
  O.MinSize = 4096;
  O.MaxSize = 8192;
  SortBenchmark B(O);
  for (unsigned Feature = 0; Feature != 4; ++Feature) {
    support::CostCounter C0, C2;
    B.extractFeature(0, Feature, 0, C0);
    B.extractFeature(0, Feature, 2, C2);
    EXPECT_GT(C2.units(), C0.units())
        << "feature " << Feature << " level cost must increase";
  }
}

TEST(SortBenchmarkTest, RunSortsAndCharges) {
  SortBenchmark B(tinyOptions());
  support::Rng Rng(3);
  runtime::Configuration C = B.space().randomConfig(Rng);
  support::CostCounter Cost;
  runtime::RunResult R = B.run(0, C, Cost);
  EXPECT_GT(R.TimeUnits, 0.0);
  EXPECT_DOUBLE_EQ(R.TimeUnits, Cost.units());
  EXPECT_DOUBLE_EQ(R.Accuracy, 1.0);
}

TEST(SortBenchmarkTest, RunResultMeasuresDelta) {
  SortBenchmark B(tinyOptions());
  support::Rng Rng(4);
  runtime::Configuration C = B.space().randomConfig(Rng);
  support::CostCounter Cost;
  Cost.addOther(12345.0); // pre-existing charge must not leak into result
  runtime::RunResult R = B.run(0, C, Cost);
  EXPECT_DOUBLE_EQ(R.TimeUnits, Cost.units() - 12345.0);
}

TEST(SortBenchmarkTest, ConfigsDifferInCost) {
  SortBenchmark::Options O = tinyOptions();
  O.MinSize = 1024;
  O.MaxSize = 2048;
  SortBenchmark B(O);
  support::Rng Rng(5);
  double MinCost = 1e300, MaxCost = 0.0;
  for (int I = 0; I != 12; ++I) {
    runtime::Configuration C = B.space().randomConfig(Rng);
    double T = B.runOnce(0, C).TimeUnits;
    MinCost = std::min(MinCost, T);
    MaxCost = std::max(MaxCost, T);
  }
  EXPECT_GT(MaxCost, 1.5 * MinCost)
      << "algorithmic choice must matter for cost";
}

TEST(SortBenchmarkTest, RegistryLikeInputsAreDuplicatedAndMostlySorted) {
  SortBenchmark::Options O = tinyOptions();
  O.Data = SortBenchmark::Dataset::RegistryLike;
  O.NumInputs = 10;
  O.MinSize = 1024;
  O.MaxSize = 2048;
  SortBenchmark B(O);
  EXPECT_EQ(B.name(), "sort1");
  for (size_t I = 0; I != B.numInputs(); ++I) {
    support::CostCounter C;
    double Duplication = B.extractFeature(I, 1, 2, C);
    double Sortedness = B.extractFeature(I, 2, 2, C);
    EXPECT_GT(Duplication, 0.3) << "registry data has heavy duplication";
    EXPECT_GT(Sortedness, 0.6) << "registry data is run-sorted";
  }
}

TEST(SortBenchmarkTest, SyntheticMixCoversGenerators) {
  SortBenchmark::Options O = tinyOptions();
  O.NumInputs = 100;
  SortBenchmark B(O);
  EXPECT_EQ(B.name(), "sort2");
  std::set<std::string> Tags;
  for (size_t I = 0; I != B.numInputs(); ++I)
    Tags.insert(B.inputTag(I));
  EXPECT_GE(Tags.size(), 6u) << "mixture should span many generators";
}

TEST(SortBenchmarkTest, InputSizesWithinBounds) {
  SortBenchmark B(tinyOptions());
  for (size_t I = 0; I != B.numInputs(); ++I) {
    EXPECT_GE(B.input(I).size(), 64u);
    EXPECT_LE(B.input(I).size(), 512u);
  }
}

TEST(SortBenchmarkTest, SearchSpaceIsLarge) {
  SortBenchmark B(tinyOptions());
  // Selector choices + log cutoffs + merge ways: a non-trivial space.
  EXPECT_GT(B.space().searchSpaceLog10(), 5.0);
}

} // namespace

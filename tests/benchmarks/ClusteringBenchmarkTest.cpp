//===- tests/benchmarks/ClusteringBenchmarkTest.cpp --------------------------=//

#include "benchmarks/ClusteringBenchmark.h"

#include <gtest/gtest.h>

using namespace pbt;
using namespace pbt::bench;

namespace {

ClusteringBenchmark::Options tinyOptions() {
  ClusteringBenchmark::Options O;
  O.NumInputs = 12;
  O.MinPoints = 100;
  O.MaxPoints = 300;
  O.Seed = 1;
  return O;
}

TEST(ClusteringBenchmarkTest, GeneratorsProduceRequestedShapes) {
  support::Rng Rng(2);
  for (unsigned G = 0; G != NumClusterGens; ++G) {
    linalg::Matrix P =
        generateClusterInput(static_cast<ClusterGen>(G), 150, Rng);
    EXPECT_EQ(P.rows(), 150u);
    EXPECT_EQ(P.cols(), 2u);
  }
}

TEST(ClusteringBenchmarkTest, CanonicalDistancePositive) {
  ClusteringBenchmark B(tinyOptions());
  for (size_t I = 0; I != B.numInputs(); ++I)
    EXPECT_GE(B.canonicalDistance(I), 0.0);
}

TEST(ClusteringBenchmarkTest, GoodConfigMeetsAccuracyThreshold) {
  ClusteringBenchmark B(tinyOptions());
  // centerplus init, k equal to the canonical k, generous iterations.
  runtime::Configuration C(std::vector<double>{2.0, 10.0, 30.0});
  size_t Met = 0;
  for (size_t I = 0; I != B.numInputs(); ++I) {
    runtime::RunResult R = B.runOnce(I, C);
    if (R.Accuracy >= B.accuracy()->AccuracyThreshold)
      ++Met;
  }
  EXPECT_GE(Met, B.numInputs() - 1) << "matching the canonical config "
                                       "should almost always meet 0.8";
}

TEST(ClusteringBenchmarkTest, TooFewClustersLosesAccuracy) {
  ClusteringBenchmark B(tinyOptions());
  runtime::Configuration Good(std::vector<double>{2.0, 10.0, 30.0});
  runtime::Configuration Bad(std::vector<double>{2.0, 2.0, 2.0});
  double GoodAcc = 0.0, BadAcc = 0.0;
  for (size_t I = 0; I != B.numInputs(); ++I) {
    GoodAcc += B.runOnce(I, Good).Accuracy;
    BadAcc += B.runOnce(I, Bad).Accuracy;
  }
  EXPECT_GT(GoodAcc, BadAcc);
}

TEST(ClusteringBenchmarkTest, MoreIterationsCostMore) {
  ClusteringBenchmark B(tinyOptions());
  runtime::Configuration Short(std::vector<double>{0.0, 8.0, 1.0});
  runtime::Configuration Long(std::vector<double>{0.0, 8.0, 30.0});
  support::CostCounter CS, CL;
  B.run(0, Short, CS);
  B.run(0, Long, CL);
  EXPECT_GT(CL.units(), CS.units());
}

TEST(ClusteringBenchmarkTest, CentersFeatureTracksClusterCount) {
  // Average the centers feature over many-blob vs single-blob inputs.
  support::Rng Rng(3);
  double ManyBlobCenters = 0.0, NoiseCenters = 0.0;
  int Samples = 8;
  ClusteringBenchmark B(tinyOptions());
  (void)B;
  for (int S = 0; S != Samples; ++S) {
    // Construct custom point sets through the generator and measure the
    // feature through a throwaway benchmark with one input each. Using
    // the public interface keeps the test honest.
    ClusteringBenchmark::Options O1 = tinyOptions();
    O1.NumInputs = 1;
    O1.Seed = 100 + S; // different draws
    ClusteringBenchmark B1(O1);
    support::CostCounter C;
    double Centers = B1.extractFeature(0, 1, 2, C);
    if (B1.inputTag(0) == "gaussian-blobs" || B1.inputTag(0) == "blobs+noise")
      ManyBlobCenters += Centers;
    else
      NoiseCenters += Centers;
  }
  // No strict assertion across random tags; just sanity: feature finite.
  EXPECT_GE(ManyBlobCenters + NoiseCenters, 0.0);
}

TEST(ClusteringBenchmarkTest, CentersIsTheExpensiveFeature) {
  ClusteringBenchmark B(tinyOptions());
  support::CostCounter CRadius, CCenters;
  B.extractFeature(0, 0, 2, CRadius);
  B.extractFeature(0, 1, 2, CCenters);
  EXPECT_GT(CCenters.units(), CRadius.units());
}

TEST(ClusteringBenchmarkTest, DatasetFlavoursNamed) {
  ClusteringBenchmark::Options O = tinyOptions();
  O.NumInputs = 4;
  O.Data = ClusteringBenchmark::Dataset::LatticeMix;
  ClusteringBenchmark B1(O);
  EXPECT_EQ(B1.name(), "clustering1");
  O.Data = ClusteringBenchmark::Dataset::SyntheticMix;
  ClusteringBenchmark B2(O);
  EXPECT_EQ(B2.name(), "clustering2");
  for (size_t I = 0; I != B1.numInputs(); ++I)
    EXPECT_EQ(B1.inputTag(I), "lattice");
}

TEST(ClusteringBenchmarkTest, AccuracyCappedAtFive) {
  ClusteringBenchmark B(tinyOptions());
  runtime::Configuration C(std::vector<double>{2.0, 24.0, 30.0});
  for (size_t I = 0; I != 4; ++I) {
    runtime::RunResult R = B.runOnce(I, C);
    EXPECT_LE(R.Accuracy, 5.0);
    EXPECT_GT(R.Accuracy, 0.0);
  }
}

} // namespace

//===- tests/benchmarks/SVDBenchmarkTest.cpp ---------------------------------=//

#include "benchmarks/SVDBenchmark.h"

#include <gtest/gtest.h>

using namespace pbt;
using namespace pbt::bench;

namespace {

SVDBenchmark::Options tinyOptions() {
  SVDBenchmark::Options O;
  O.NumInputs = 10;
  O.MinDim = 16;
  O.MaxDim = 24;
  O.Seed = 1;
  return O;
}

/// Builds a configuration: method, rank fraction, subspace iters,
/// oversample, power iters.
runtime::Configuration config(unsigned Method, double Frac,
                              int64_t SubIters = 4, int64_t Over = 6,
                              int64_t Power = 1) {
  return runtime::Configuration(std::vector<double>{
      static_cast<double>(Method), Frac, static_cast<double>(SubIters),
      static_cast<double>(Over), static_cast<double>(Power)});
}

TEST(SVDBenchmarkTest, FullRankJacobiIsEssentiallyExact) {
  SVDBenchmark B(tinyOptions());
  runtime::RunResult R = B.runOnce(0, config(0, 1.0));
  EXPECT_GT(R.Accuracy, 5.0) << "full reconstruction has tiny error";
}

TEST(SVDBenchmarkTest, AccuracyIncreasesWithRank) {
  SVDBenchmark B(tinyOptions());
  for (size_t I = 0; I != 4; ++I) {
    double Prev = -1e300;
    for (double Frac : {0.05, 0.2, 0.5, 1.0}) {
      runtime::RunResult R = B.runOnce(I, config(0, Frac));
      EXPECT_GE(R.Accuracy, Prev - 0.2)
          << "accuracy should broadly grow with rank";
      Prev = std::max(Prev, R.Accuracy);
    }
  }
}

TEST(SVDBenchmarkTest, LowRankInputsMeetThresholdCheaply) {
  SVDBenchmark B(tinyOptions());
  // Find a low-rank input; small k must already clear the 0.7 target.
  for (size_t I = 0; I != B.numInputs(); ++I) {
    if (B.inputTag(I) != "low-rank")
      continue;
    runtime::RunResult R = B.runOnce(I, config(1, 0.25));
    EXPECT_GE(R.Accuracy, 0.7) << "rank-n/4 subspace on a low-rank input";
  }
}

TEST(SVDBenchmarkTest, RandomizedCheaperThanJacobiAtLowRank) {
  SVDBenchmark B(tinyOptions());
  support::CostCounter CJ, CR;
  B.run(0, config(0, 1.0), CJ);
  B.run(0, config(2, 0.1), CR);
  EXPECT_LT(CR.units(), CJ.units());
}

TEST(SVDBenchmarkTest, RankForClampsToValidRange) {
  SVDBenchmark B(tinyOptions());
  EXPECT_GE(B.rankFor(config(0, 0.001), 20), 1u);
  EXPECT_LE(B.rankFor(config(0, 1.0), 20), 20u);
}

TEST(SVDBenchmarkTest, SparseInputsHaveHighZerosFeature) {
  SVDBenchmark::Options O = tinyOptions();
  O.NumInputs = 40;
  SVDBenchmark B(O);
  bool FoundSparse = false;
  for (size_t I = 0; I != B.numInputs(); ++I) {
    support::CostCounter C;
    double Zeros = B.extractFeature(I, 2, 2, C);
    if (B.inputTag(I) == "sparse") {
      FoundSparse = true;
      EXPECT_GT(Zeros, 0.5);
    }
    if (B.inputTag(I) == "full-random") {
      EXPECT_LT(Zeros, 0.05);
    }
  }
  EXPECT_TRUE(FoundSparse);
}

TEST(SVDBenchmarkTest, DeterministicRuns) {
  SVDBenchmark B(tinyOptions());
  runtime::Configuration C = config(2, 0.2);
  runtime::RunResult A = B.runOnce(1, C);
  runtime::RunResult R = B.runOnce(1, C);
  EXPECT_DOUBLE_EQ(A.TimeUnits, R.TimeUnits);
  EXPECT_DOUBLE_EQ(A.Accuracy, R.Accuracy);
}

TEST(SVDBenchmarkTest, ThreeFeaturesThreeLevels) {
  SVDBenchmark B(tinyOptions());
  EXPECT_EQ(B.features().size(), 3u);
  EXPECT_EQ(B.numMLFeatures(), 9u);
}

} // namespace

//===- tests/benchmarks/Poisson2DBenchmarkTest.cpp ----------------------------=//

#include "benchmarks/Poisson2DBenchmark.h"

#include <gtest/gtest.h>

using namespace pbt;
using namespace pbt::bench;

namespace {

Poisson2DBenchmark::Options tinyOptions() {
  Poisson2DBenchmark::Options O;
  O.NumInputs = 8;
  O.GridN = 17;
  O.Seed = 1;
  return O;
}

/// Builds a configuration for the PDE scheme parameter order:
/// solver, cycles, pre, post, mu, smoother, omega, statIters, cgIters.
runtime::Configuration pdeConfig(unsigned Solver, int64_t Cycles = 8,
                                 int64_t Pre = 2, int64_t Post = 2,
                                 int64_t Mu = 1, unsigned Smoother = 1,
                                 double Omega = 1.5, int64_t StatIters = 100,
                                 int64_t CGIters = 200) {
  return runtime::Configuration(std::vector<double>{
      static_cast<double>(Solver), static_cast<double>(Cycles),
      static_cast<double>(Pre), static_cast<double>(Post),
      static_cast<double>(Mu), static_cast<double>(Smoother), Omega,
      static_cast<double>(StatIters), static_cast<double>(CGIters)});
}

TEST(Poisson2DBenchmarkTest, DirectSolverMeetsAccuracyTarget) {
  Poisson2DBenchmark B(tinyOptions());
  for (size_t I = 0; I != B.numInputs(); ++I) {
    runtime::RunResult R = B.runOnce(I, pdeConfig(5));
    EXPECT_GE(R.Accuracy, B.accuracy()->AccuracyThreshold)
        << "direct solve is exact to machine precision";
  }
}

TEST(Poisson2DBenchmarkTest, HeavyMultigridMeetsAccuracyTarget) {
  Poisson2DBenchmark B(tinyOptions());
  size_t Met = 0;
  for (size_t I = 0; I != B.numInputs(); ++I) {
    runtime::RunResult R = B.runOnce(I, pdeConfig(0, /*Cycles=*/10));
    if (R.Accuracy >= 7.0)
      ++Met;
  }
  EXPECT_EQ(Met, B.numInputs());
}

TEST(Poisson2DBenchmarkTest, FewJacobiIterationsMissTarget) {
  Poisson2DBenchmark B(tinyOptions());
  size_t Missed = 0;
  for (size_t I = 0; I != B.numInputs(); ++I) {
    runtime::RunResult R = B.runOnce(I, pdeConfig(1, 8, 2, 2, 1, 1, 1.5,
                                              /*StatIters=*/20));
    if (R.Accuracy < 7.0)
      ++Missed;
  }
  EXPECT_GT(Missed, B.numInputs() / 2)
      << "20 Jacobi sweeps cannot reduce error by 1e7 on most inputs";
}

TEST(Poisson2DBenchmarkTest, MultigridCheaperThanDirect) {
  Poisson2DBenchmark::Options O = tinyOptions();
  O.GridN = 33;
  O.NumInputs = 3;
  Poisson2DBenchmark B(O);
  support::CostCounter CMG, CD;
  B.run(0, pdeConfig(0, /*Cycles=*/8), CMG);
  B.run(0, pdeConfig(5), CD);
  EXPECT_LT(CMG.units(), CD.units());
}

TEST(Poisson2DBenchmarkTest, MoreCyclesCostMore) {
  Poisson2DBenchmark B(tinyOptions());
  support::CostCounter C2, C8;
  B.run(0, pdeConfig(0, 2), C2);
  B.run(0, pdeConfig(0, 8), C8);
  EXPECT_GT(C8.units(), C2.units());
}

TEST(Poisson2DBenchmarkTest, ResidualFeatureReflectsRHSMagnitude) {
  Poisson2DBenchmark B(tinyOptions());
  for (size_t I = 0; I != B.numInputs(); ++I) {
    support::CostCounter C;
    double Residual = B.extractFeature(I, 0, 2, C);
    EXPECT_GE(Residual, 0.0);
    // The RHS is nonzero for every generator family.
    EXPECT_GT(Residual, 0.0);
  }
}

TEST(Poisson2DBenchmarkTest, ZerosFeatureHighForSparseInputs) {
  Poisson2DBenchmark::Options O = tinyOptions();
  O.NumInputs = 30;
  Poisson2DBenchmark B(O);
  for (size_t I = 0; I != B.numInputs(); ++I) {
    support::CostCounter C;
    double Zeros = B.extractFeature(I, 2, 2, C);
    if (B.inputTag(I) == "point-sources")
      EXPECT_GT(Zeros, 0.8) << "delta sources leave most nodes zero";
    // Boundary nodes are always zero (~21% of a 17x17 grid), so noise
    // inputs sit just above that floor.
    if (B.inputTag(I) == "random-noise") {
      EXPECT_LT(Zeros, 0.3);
    }
  }
}

TEST(Poisson2DBenchmarkTest, AccuracyIsLogErrorReduction) {
  // Jacobi damps smooth error modes at ~cos(pi*h) per sweep, so a handful
  // of sweeps on a *smooth* input cannot reduce the error much: accuracy
  // (the log10 reduction) stays small. High-frequency inputs would decay
  // fast, so restrict the check to smooth-modes inputs.
  Poisson2DBenchmark::Options O = tinyOptions();
  O.NumInputs = 30;
  Poisson2DBenchmark B(O);
  bool FoundSmooth = false;
  for (size_t I = 0; I != B.numInputs(); ++I) {
    if (B.inputTag(I) != "smooth-modes")
      continue;
    FoundSmooth = true;
    runtime::RunResult R = B.runOnce(I, pdeConfig(1, 8, 2, 2, 1, 1, 1.5,
                                                  /*StatIters=*/8));
    EXPECT_LT(R.Accuracy, 4.0);
    EXPECT_GE(R.Accuracy, 0.0);
  }
  EXPECT_TRUE(FoundSmooth);
}

TEST(Poisson2DBenchmarkTest, SatisfactionSpecMatchesPaper) {
  Poisson2DBenchmark B(tinyOptions());
  ASSERT_TRUE(B.accuracy().has_value());
  EXPECT_DOUBLE_EQ(B.accuracy()->AccuracyThreshold, 7.0);
  EXPECT_DOUBLE_EQ(B.accuracy()->SatisfactionThreshold, 0.95);
}

} // namespace

//===- benchmarks/SortBenchmark.h - The Sort benchmark ---------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Sort benchmark: sorting lists of doubles with a recursive
/// polyalgorithm over InsertionSort, QuickSort, MergeSort (tunable ways),
/// RadixSort and BitonicSort. Input features are standard deviation,
/// duplication, sortedness and a test-sort probe, each at three sampling
/// levels. Sort is the suite's only exact (non-variable-accuracy)
/// benchmark.
///
/// Two dataset flavours mirror the paper's sort1/sort2: RegistryLike
/// synthesises inputs shaped like the CCR FOIA contractor registry
/// (concatenated sorted runs, heavy duplication) -- our stand-in for the
/// real-world data; SyntheticMix spans the feature space with ten
/// generators.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_BENCHMARKS_SORTBENCHMARK_H
#define PBT_BENCHMARKS_SORTBENCHMARK_H

#include "benchmarks/SortAlgorithms.h"
#include "runtime/TunableProgram.h"
#include "support/Random.h"

#include <string>
#include <vector>

namespace pbt {
namespace bench {

/// Process-wide counters of the canonical-configuration run memo (see
/// SortBenchmark.cpp): how many run() calls replayed a recorded outcome
/// vs executed the kernels. Diagnostics for `pbt-bench trainbench`.
struct SortRunMemoStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};
SortRunMemoStats sortRunMemoStats();

class SortBenchmark : public runtime::TunableProgram {
public:
  enum class Dataset {
    RegistryLike, ///< sort1: real-world-like inputs
    SyntheticMix, ///< sort2: generator mixture spanning the feature space
  };

  struct Options {
    Dataset Data = Dataset::SyntheticMix;
    size_t NumInputs = 400;
    size_t MinSize = 256;
    size_t MaxSize = 8192;
    uint64_t Seed = 1;
    unsigned SelectorLevels = 3;
  };

  explicit SortBenchmark(const Options &Opts);
  ~SortBenchmark() override;

  // TunableProgram interface.
  std::string name() const override;
  const runtime::ConfigSpace &space() const override { return Space; }
  std::vector<runtime::FeatureInfo> features() const override;
  std::optional<runtime::AccuracySpec> accuracy() const override {
    return std::nullopt; // exact benchmark
  }
  size_t numInputs() const override { return Inputs.size(); }
  double extractFeature(size_t Input, unsigned Feature, unsigned Level,
                        support::CostCounter &Cost) const override;
  runtime::RunResult run(size_t Input, const runtime::Configuration &Config,
                         support::CostCounter &Cost) const override;

  /// Decodes the polyalgorithm a configuration describes (for reports).
  PolySorter sorterFor(const runtime::Configuration &Config) const;

  // Report hooks: input tag + length, and the decoded selector rule.
  std::string describeInput(size_t Input) const override;
  std::string
  describeConfiguration(const runtime::Configuration &Config) const override;

  const std::vector<double> &input(size_t I) const { return Inputs[I]; }
  const std::string &inputTag(size_t I) const { return Tags[I]; }
  const Options &options() const { return Opts; }

private:
  Options Opts;
  runtime::ConfigSpace Space;
  runtime::SelectorScheme Scheme;
  unsigned MergeWaysParam = 0;
  std::vector<std::vector<double>> Inputs;
  std::vector<std::string> Tags;
};

} // namespace bench
} // namespace pbt

#endif // PBT_BENCHMARKS_SORTBENCHMARK_H

//===- benchmarks/SortBenchmark.h - The Sort benchmark ---------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Sort benchmark: sorting lists of doubles with a recursive
/// polyalgorithm over InsertionSort, QuickSort, MergeSort (tunable ways),
/// RadixSort and BitonicSort. Input features are standard deviation,
/// duplication, sortedness and a test-sort probe, each at three sampling
/// levels. Sort is the suite's only exact (non-variable-accuracy)
/// benchmark.
///
/// Two dataset flavours mirror the paper's sort1/sort2: RegistryLike
/// synthesises inputs shaped like the CCR FOIA contractor registry
/// (concatenated sorted runs, heavy duplication) -- our stand-in for the
/// real-world data; SyntheticMix spans the feature space with ten
/// generators.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_BENCHMARKS_SORTBENCHMARK_H
#define PBT_BENCHMARKS_SORTBENCHMARK_H

#include "benchmarks/SortAlgorithms.h"
#include "runtime/TunableProgram.h"
#include "support/Random.h"

#include <string>
#include <vector>

namespace pbt {
namespace bench {

/// Input generator families for Sort.
enum class SortGen : unsigned {
  Uniform = 0,
  Sorted,
  Reverse,
  AlmostSorted,
  FewDistinct,
  OrganPipe,
  Gaussian,
  Exponential,
  Sawtooth,
  Constant,
};
inline constexpr unsigned NumSortGens = 10;

/// Name of a generator (for reports and tests).
const char *sortGenName(SortGen G);

/// Generates one input of the given family and size.
std::vector<double> generateSortInput(SortGen G, size_t N,
                                      support::Rng &Rng);

/// Generates a registry-like input (the paper's sort1 real-world data
/// stand-in): concatenated sorted runs over a small value pool with a
/// fraction of out-of-order updates appended.
std::vector<double> generateRegistryLikeInput(size_t N, support::Rng &Rng);

class SortBenchmark : public runtime::TunableProgram {
public:
  enum class Dataset {
    RegistryLike, ///< sort1: real-world-like inputs
    SyntheticMix, ///< sort2: generator mixture spanning the feature space
  };

  struct Options {
    Dataset Data = Dataset::SyntheticMix;
    size_t NumInputs = 400;
    size_t MinSize = 256;
    size_t MaxSize = 8192;
    uint64_t Seed = 1;
    unsigned SelectorLevels = 3;
  };

  explicit SortBenchmark(const Options &Opts);

  // TunableProgram interface.
  std::string name() const override;
  const runtime::ConfigSpace &space() const override { return Space; }
  std::vector<runtime::FeatureInfo> features() const override;
  std::optional<runtime::AccuracySpec> accuracy() const override {
    return std::nullopt; // exact benchmark
  }
  size_t numInputs() const override { return Inputs.size(); }
  double extractFeature(size_t Input, unsigned Feature, unsigned Level,
                        support::CostCounter &Cost) const override;
  runtime::RunResult run(size_t Input, const runtime::Configuration &Config,
                         support::CostCounter &Cost) const override;

  /// Decodes the polyalgorithm a configuration describes (for reports).
  PolySorter sorterFor(const runtime::Configuration &Config) const;

  const std::vector<double> &input(size_t I) const { return Inputs[I]; }
  const std::string &inputTag(size_t I) const { return Tags[I]; }
  const Options &options() const { return Opts; }

private:
  Options Opts;
  runtime::ConfigSpace Space;
  runtime::SelectorScheme Scheme;
  unsigned MergeWaysParam = 0;
  std::vector<std::vector<double>> Inputs;
  std::vector<std::string> Tags;
};

} // namespace bench
} // namespace pbt

#endif // PBT_BENCHMARKS_SORTBENCHMARK_H

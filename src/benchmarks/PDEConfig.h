//===- benchmarks/PDEConfig.h - Shared PDE solver tunables ------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tunable-parameter scheme shared by the poisson2d and helmholtz3d
/// benchmarks: a top-level solver choice (multigrid / Jacobi / Gauss-Seidel
/// / SOR / CG / direct) plus the multigrid cycle shape (cycles, pre/post
/// smoothing, V-vs-W, smoother, relaxation factor) and iteration budgets
/// for the stationary and Krylov solvers -- the paper's "multigrid, where
/// cycle shapes are determined by the autotuner, and a number of iterative
/// and direct solvers".
///
//===----------------------------------------------------------------------===//

#ifndef PBT_BENCHMARKS_PDECONFIG_H
#define PBT_BENCHMARKS_PDECONFIG_H

#include "pde/SolverOptions.h"
#include "runtime/ConfigSpace.h"

#include <string>

namespace pbt {
namespace bench {

/// Declares and decodes the PDE solver tunables of one benchmark.
class PDEConfigScheme {
public:
  static PDEConfigScheme declare(runtime::ConfigSpace &Space,
                                 const std::string &Prefix,
                                 unsigned MaxStationaryIters,
                                 unsigned MaxCGIters) {
    PDEConfigScheme S;
    S.SolverParam =
        Space.addCategorical(Prefix + ".solver", pde::NumSolverKinds);
    S.CyclesParam = Space.addInteger(Prefix + ".mg.cycles", 1, 12,
                                     /*LogScale=*/true);
    S.PreParam = Space.addInteger(Prefix + ".mg.preSmooth", 0, 4);
    S.PostParam = Space.addInteger(Prefix + ".mg.postSmooth", 1, 4);
    S.MuParam = Space.addInteger(Prefix + ".mg.mu", 1, 2);
    S.SmootherParam =
        Space.addCategorical(Prefix + ".mg.smoother", pde::NumSmootherKinds);
    S.OmegaParam = Space.addReal(Prefix + ".omega", 1.0, 1.95);
    S.StatItersParam = Space.addInteger(Prefix + ".stationary.iterations", 8,
                                        MaxStationaryIters, /*LogScale=*/true);
    S.CGItersParam = Space.addInteger(Prefix + ".cg.iterations", 4, MaxCGIters,
                                      /*LogScale=*/true);
    return S;
  }

  pde::SolverKind solver(const runtime::Configuration &C) const {
    return static_cast<pde::SolverKind>(C.category(SolverParam));
  }

  pde::MultigridOptions multigrid(const runtime::Configuration &C) const {
    pde::MultigridOptions O;
    O.Cycles = static_cast<unsigned>(C.integer(CyclesParam));
    O.PreSmooth = static_cast<unsigned>(C.integer(PreParam));
    O.PostSmooth = static_cast<unsigned>(C.integer(PostParam));
    O.Mu = static_cast<unsigned>(C.integer(MuParam));
    O.Smoother = static_cast<pde::SmootherKind>(C.category(SmootherParam));
    O.Omega = C.real(OmegaParam);
    return O;
  }

  pde::StationaryOptions stationary(const runtime::Configuration &C) const {
    pde::StationaryOptions O;
    O.Iterations = static_cast<unsigned>(C.integer(StatItersParam));
    O.Omega = C.real(OmegaParam);
    return O;
  }

  pde::CGOptions cg(const runtime::Configuration &C) const {
    pde::CGOptions O;
    O.MaxIterations = static_cast<unsigned>(C.integer(CGItersParam));
    return O;
  }

private:
  unsigned SolverParam = 0;
  unsigned CyclesParam = 0;
  unsigned PreParam = 0;
  unsigned PostParam = 0;
  unsigned MuParam = 0;
  unsigned SmootherParam = 0;
  unsigned OmegaParam = 0;
  unsigned StatItersParam = 0;
  unsigned CGItersParam = 0;
};

} // namespace bench
} // namespace pbt

#endif // PBT_BENCHMARKS_PDECONFIG_H

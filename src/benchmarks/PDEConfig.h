//===- benchmarks/PDEConfig.h - Shared PDE solver tunables ------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tunable-parameter scheme shared by the poisson2d and helmholtz3d
/// benchmarks: a top-level solver choice (multigrid / Jacobi / Gauss-Seidel
/// / SOR / CG / direct) plus the multigrid cycle shape (cycles, pre/post
/// smoothing, V-vs-W, smoother, relaxation factor) and iteration budgets
/// for the stationary and Krylov solvers -- the paper's "multigrid, where
/// cycle shapes are determined by the autotuner, and a number of iterative
/// and direct solvers". The scheme is hierarchical: every sub-tunable is
/// declared conditional on the solver branch that actually reads it
/// (ConfigSpace::makeConditional), so dead-branch values are pinned
/// canonical and the autotuner never wastes measurements mutating a
/// multigrid cycle shape under a direct solve.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_BENCHMARKS_PDECONFIG_H
#define PBT_BENCHMARKS_PDECONFIG_H

#include "pde/SolverOptions.h"
#include "runtime/ConfigSpace.h"

#include <string>

namespace pbt {
namespace bench {

/// Declares and decodes the PDE solver tunables of one benchmark.
class PDEConfigScheme {
public:
  static PDEConfigScheme declare(runtime::ConfigSpace &Space,
                                 const std::string &Prefix,
                                 unsigned MaxStationaryIters,
                                 unsigned MaxCGIters) {
    PDEConfigScheme S;
    S.SolverParam =
        Space.addCategorical(Prefix + ".solver", pde::NumSolverKinds);
    S.CyclesParam = Space.addInteger(Prefix + ".mg.cycles", 1, 12,
                                     /*LogScale=*/true);
    S.PreParam = Space.addInteger(Prefix + ".mg.preSmooth", 0, 4);
    S.PostParam = Space.addInteger(Prefix + ".mg.postSmooth", 1, 4);
    S.MuParam = Space.addInteger(Prefix + ".mg.mu", 1, 2);
    S.SmootherParam =
        Space.addCategorical(Prefix + ".mg.smoother", pde::NumSmootherKinds);
    S.OmegaParam = Space.addReal(Prefix + ".omega", 1.0, 1.95);
    S.StatItersParam = Space.addInteger(Prefix + ".stationary.iterations", 8,
                                        MaxStationaryIters, /*LogScale=*/true);
    S.CGItersParam = Space.addInteger(Prefix + ".cg.iterations", 4, MaxCGIters,
                                      /*LogScale=*/true);
    S.CGTolParam = Space.addReal(Prefix + ".cg.tolerance", 1e-12, 1e-4,
                                 /*LogScale=*/true);

    // The hierarchy: each tunable exists only under the solver branch that
    // reads it. The cycle-shape block belongs to multigrid; the iteration
    // budget to the stationary family; the Krylov cap and convergence
    // tolerance to CG; omega to the branches with an over-relaxed sweep
    // (multigrid smoothing and top-level SOR). Everything else is a dead
    // tunable the autotuner should never spend measurements on.
    using SK = pde::SolverKind;
    const unsigned MG = static_cast<unsigned>(SK::Multigrid);
    const unsigned Jac = static_cast<unsigned>(SK::Jacobi);
    const unsigned GS = static_cast<unsigned>(SK::GaussSeidel);
    const unsigned Sor = static_cast<unsigned>(SK::SOR);
    const unsigned CG = static_cast<unsigned>(SK::ConjugateGradient);
    Space.makeConditional(S.CyclesParam, S.SolverParam, {MG});
    Space.makeConditional(S.PreParam, S.SolverParam, {MG});
    Space.makeConditional(S.PostParam, S.SolverParam, {MG});
    Space.makeConditional(S.MuParam, S.SolverParam, {MG});
    Space.makeConditional(S.SmootherParam, S.SolverParam, {MG});
    Space.makeConditional(S.OmegaParam, S.SolverParam, {MG, Sor});
    Space.makeConditional(S.StatItersParam, S.SolverParam, {Jac, GS, Sor});
    Space.makeConditional(S.CGItersParam, S.SolverParam, {CG});
    Space.makeConditional(S.CGTolParam, S.SolverParam, {CG});
    return S;
  }

  pde::SolverKind solver(const runtime::Configuration &C) const {
    return static_cast<pde::SolverKind>(C.category(SolverParam));
  }

  pde::MultigridOptions multigrid(const runtime::Configuration &C) const {
    pde::MultigridOptions O;
    O.Cycles = static_cast<unsigned>(C.integer(CyclesParam));
    O.PreSmooth = static_cast<unsigned>(C.integer(PreParam));
    O.PostSmooth = static_cast<unsigned>(C.integer(PostParam));
    O.Mu = static_cast<unsigned>(C.integer(MuParam));
    O.Smoother = static_cast<pde::SmootherKind>(C.category(SmootherParam));
    O.Omega = C.real(OmegaParam);
    return O;
  }

  pde::StationaryOptions stationary(const runtime::Configuration &C) const {
    pde::StationaryOptions O;
    O.Iterations = static_cast<unsigned>(C.integer(StatItersParam));
    O.Omega = C.real(OmegaParam);
    return O;
  }

  pde::CGOptions cg(const runtime::Configuration &C) const {
    pde::CGOptions O;
    O.MaxIterations = static_cast<unsigned>(C.integer(CGItersParam));
    O.RelativeTolerance = C.real(CGTolParam);
    return O;
  }

private:
  unsigned SolverParam = 0;
  unsigned CyclesParam = 0;
  unsigned PreParam = 0;
  unsigned PostParam = 0;
  unsigned MuParam = 0;
  unsigned SmootherParam = 0;
  unsigned OmegaParam = 0;
  unsigned StatItersParam = 0;
  unsigned CGItersParam = 0;
  unsigned CGTolParam = 0;
};

} // namespace bench
} // namespace pbt

#endif // PBT_BENCHMARKS_PDECONFIG_H

//===- benchmarks/ClusteringBenchmark.h - The clustering benchmark ---------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's clustering benchmark: assign 2D points to clusters with a
/// k-means variant whose initial conditions (random / prefix / centerplus),
/// cluster count k and iteration budget are all set by the autotuner.
/// Accuracy is sum(d_canonical)/sum(d_ours) against a fixed canonical
/// clustering (threshold 0.8), so cheap configurations that under-cluster
/// an input fail the target on exactly the inputs that need more work.
///
/// Dataset flavours mirror clustering1/clustering2: LatticeMix synthesises
/// inputs shaped like the UCI Poker Hand data (low-cardinality discrete
/// attribute tuples -> lattice points with heavy multiplicity); the
/// synthetic mixture spans blobs, rings, noise and elongated clusters.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_BENCHMARKS_CLUSTERINGBENCHMARK_H
#define PBT_BENCHMARKS_CLUSTERINGBENCHMARK_H

#include "linalg/Matrix.h"
#include "ml/KMeans.h"
#include "runtime/TunableProgram.h"
#include "support/Random.h"

#include <string>
#include <vector>

namespace pbt {
namespace bench {

/// Input generator families for clustering.
enum class ClusterGen : unsigned {
  GaussianBlobs = 0,
  UniformNoise,
  Rings,
  Lattice,
  Elongated,
  BlobsPlusNoise,
};
inline constexpr unsigned NumClusterGens = 6;

const char *clusterGenName(ClusterGen G);

/// Generates an (N x 2) point set of the given family.
linalg::Matrix generateClusterInput(ClusterGen G, size_t N,
                                    support::Rng &Rng);

class ClusteringBenchmark : public runtime::TunableProgram {
public:
  enum class Dataset {
    LatticeMix,   ///< clustering1: poker-hand-like discrete inputs
    SyntheticMix, ///< clustering2: generator mixture
  };

  struct Options {
    Dataset Data = Dataset::SyntheticMix;
    size_t NumInputs = 300;
    size_t MinPoints = 200;
    size_t MaxPoints = 1200;
    uint64_t Seed = 3;
    double AccuracyThreshold = 0.8;
    double SatisfactionThreshold = 0.95;
    /// Canonical clustering parameters (ground truth for the accuracy
    /// metric).
    unsigned CanonicalK = 8;
    unsigned CanonicalIterations = 60;
  };

  explicit ClusteringBenchmark(const Options &Opts);

  std::string name() const override;
  const runtime::ConfigSpace &space() const override { return Space; }
  std::vector<runtime::FeatureInfo> features() const override;
  std::optional<runtime::AccuracySpec> accuracy() const override {
    return runtime::AccuracySpec{Opts.AccuracyThreshold,
                                 Opts.SatisfactionThreshold};
  }
  size_t numInputs() const override { return Inputs.size(); }
  double extractFeature(size_t Input, unsigned Feature, unsigned Level,
                        support::CostCounter &Cost) const override;
  runtime::RunResult run(size_t Input, const runtime::Configuration &Config,
                         support::CostCounter &Cost) const override;

  /// Decodes the k-means options a configuration selects.
  ml::KMeansOptions kmeansOptionsFor(const runtime::Configuration &Config) const;

  const linalg::Matrix &input(size_t I) const { return Inputs[I]; }
  const std::string &inputTag(size_t I) const { return Tags[I]; }
  double canonicalDistance(size_t I) const { return CanonicalDist[I]; }

private:
  Options Opts;
  runtime::ConfigSpace Space;
  unsigned InitParam = 0;
  unsigned KParam = 0;
  unsigned ItersParam = 0;
  std::vector<linalg::Matrix> Inputs;
  std::vector<std::string> Tags;
  /// Mean point-to-centre distance of the canonical clustering, per input.
  std::vector<double> CanonicalDist;
};

/// Mean Euclidean point-to-assigned-centroid distance of a clustering.
double meanPointToCenterDistance(const linalg::Matrix &Points,
                                 const ml::KMeansResult &Clustering);

} // namespace bench
} // namespace pbt

#endif // PBT_BENCHMARKS_CLUSTERINGBENCHMARK_H

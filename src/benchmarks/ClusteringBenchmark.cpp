//===- benchmarks/ClusteringBenchmark.cpp ------------------------------------=//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "benchmarks/ClusteringBenchmark.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace pbt;
using namespace pbt::bench;

const char *bench::clusterGenName(ClusterGen G) {
  switch (G) {
  case ClusterGen::GaussianBlobs:
    return "gaussian-blobs";
  case ClusterGen::UniformNoise:
    return "uniform-noise";
  case ClusterGen::Rings:
    return "rings";
  case ClusterGen::Lattice:
    return "lattice";
  case ClusterGen::Elongated:
    return "elongated";
  case ClusterGen::BlobsPlusNoise:
    return "blobs+noise";
  }
  return "unknown";
}

linalg::Matrix bench::generateClusterInput(ClusterGen G, size_t N,
                                           support::Rng &Rng) {
  linalg::Matrix P(N, 2);
  auto Set = [&](size_t I, double X, double Y) {
    P.at(I, 0) = X;
    P.at(I, 1) = Y;
  };
  switch (G) {
  case ClusterGen::GaussianBlobs: {
    unsigned K = 1 + static_cast<unsigned>(Rng.index(12));
    std::vector<std::pair<double, double>> Centers(K);
    for (auto &C : Centers)
      C = {Rng.uniform(0.0, 100.0), Rng.uniform(0.0, 100.0)};
    double Spread = Rng.uniform(1.0, 8.0);
    for (size_t I = 0; I != N; ++I) {
      const auto &C = Centers[Rng.index(K)];
      Set(I, Rng.gaussian(C.first, Spread), Rng.gaussian(C.second, Spread));
    }
    break;
  }
  case ClusterGen::UniformNoise:
    for (size_t I = 0; I != N; ++I)
      Set(I, Rng.uniform(0.0, 100.0), Rng.uniform(0.0, 100.0));
    break;
  case ClusterGen::Rings: {
    unsigned Rings = 1 + static_cast<unsigned>(Rng.index(4));
    double CX = Rng.uniform(30.0, 70.0), CY = Rng.uniform(30.0, 70.0);
    for (size_t I = 0; I != N; ++I) {
      double R = 10.0 * static_cast<double>(1 + Rng.index(Rings)) +
                 Rng.gaussian(0.0, 1.0);
      double Theta = Rng.uniform(0.0, 2.0 * M_PI);
      Set(I, CX + R * std::cos(Theta), CY + R * std::sin(Theta));
    }
    break;
  }
  case ClusterGen::Lattice: {
    // Poker-hand-like: low-cardinality discrete tuples with multiplicity.
    unsigned GridX = 4 + static_cast<unsigned>(Rng.index(10));
    unsigned GridY = 4 + static_cast<unsigned>(Rng.index(10));
    // A subset of lattice sites is "popular" (like common hand classes).
    unsigned Popular = 2 + static_cast<unsigned>(Rng.index(6));
    std::vector<std::pair<double, double>> Sites(Popular);
    for (auto &S : Sites)
      S = {static_cast<double>(Rng.index(GridX)) * (100.0 / GridX),
           static_cast<double>(Rng.index(GridY)) * (100.0 / GridY)};
    for (size_t I = 0; I != N; ++I) {
      if (Rng.chance(0.7)) {
        const auto &S = Sites[Rng.index(Popular)];
        Set(I, S.first, S.second);
      } else {
        Set(I, static_cast<double>(Rng.index(GridX)) * (100.0 / GridX),
            static_cast<double>(Rng.index(GridY)) * (100.0 / GridY));
      }
    }
    break;
  }
  case ClusterGen::Elongated: {
    unsigned K = 1 + static_cast<unsigned>(Rng.index(5));
    for (size_t I = 0; I != N; ++I) {
      unsigned C = static_cast<unsigned>(Rng.index(K));
      double Along = Rng.uniform(0.0, 60.0);
      double Across = Rng.gaussian(0.0, 1.5);
      double Angle = static_cast<double>(C) * 1.1;
      double BaseX = 20.0 + 15.0 * static_cast<double>(C);
      double BaseY = 10.0 + 12.0 * static_cast<double>(C);
      Set(I, BaseX + Along * std::cos(Angle) - Across * std::sin(Angle),
          BaseY + Along * std::sin(Angle) + Across * std::cos(Angle));
    }
    break;
  }
  case ClusterGen::BlobsPlusNoise: {
    unsigned K = 2 + static_cast<unsigned>(Rng.index(6));
    std::vector<std::pair<double, double>> Centers(K);
    for (auto &C : Centers)
      C = {Rng.uniform(10.0, 90.0), Rng.uniform(10.0, 90.0)};
    for (size_t I = 0; I != N; ++I) {
      if (Rng.chance(0.2)) {
        Set(I, Rng.uniform(0.0, 100.0), Rng.uniform(0.0, 100.0));
      } else {
        const auto &C = Centers[Rng.index(K)];
        Set(I, Rng.gaussian(C.first, 2.5), Rng.gaussian(C.second, 2.5));
      }
    }
    break;
  }
  }
  return P;
}

double bench::meanPointToCenterDistance(const linalg::Matrix &Points,
                                        const ml::KMeansResult &Clustering) {
  assert(Points.rows() == Clustering.Assignment.size() &&
         "assignment size mismatch");
  double Sum = 0.0;
  for (size_t I = 0; I != Points.rows(); ++I) {
    unsigned C = Clustering.Assignment[I];
    double DX = Points.at(I, 0) - Clustering.Centroids.at(C, 0);
    double DY = Points.at(I, 1) - Clustering.Centroids.at(C, 1);
    Sum += std::sqrt(DX * DX + DY * DY);
  }
  return Sum / static_cast<double>(Points.rows());
}

ClusteringBenchmark::ClusteringBenchmark(const Options &Opts) : Opts(Opts) {
  InitParam = Space.addCategorical("clustering.init", 3);
  KParam = Space.addInteger("clustering.k", 2, 24, /*LogScale=*/true);
  ItersParam = Space.addInteger("clustering.iterations", 1, 30,
                                /*LogScale=*/true);

  support::Rng Rng(Opts.Seed);
  Inputs.reserve(Opts.NumInputs);
  Tags.reserve(Opts.NumInputs);
  CanonicalDist.reserve(Opts.NumInputs);
  for (size_t I = 0; I != Opts.NumInputs; ++I) {
    size_t N = Opts.MinPoints + Rng.index(Opts.MaxPoints - Opts.MinPoints + 1);
    ClusterGen G;
    if (Opts.Data == Dataset::LatticeMix)
      G = ClusterGen::Lattice;
    else
      G = static_cast<ClusterGen>(Rng.index(NumClusterGens));
    Inputs.push_back(generateClusterInput(G, N, Rng));
    Tags.push_back(clusterGenName(G));

    // Canonical clustering: fixed kmeans++ configuration, not charged to
    // any cost model (computed once at dataset construction).
    ml::KMeansOptions Canon;
    Canon.K = Opts.CanonicalK;
    Canon.MaxIterations = Opts.CanonicalIterations;
    Canon.Init = ml::KMeansInit::CenterPlus;
    Canon.Seed = 0x9999 + I;
    ml::KMeansResult CanonR = ml::kMeans(Inputs.back(), Canon, nullptr);
    CanonicalDist.push_back(meanPointToCenterDistance(Inputs.back(), CanonR));
  }
}

std::string ClusteringBenchmark::name() const {
  return Opts.Data == Dataset::LatticeMix ? "clustering1" : "clustering2";
}

std::vector<runtime::FeatureInfo> ClusteringBenchmark::features() const {
  return {{"radius", 3}, {"centers", 3}, {"density", 3}, {"range", 3}};
}

static size_t clusterSampleSize(unsigned Level, size_t N) {
  size_t S = static_cast<size_t>(48) << (2 * Level);
  return std::min(S, N);
}

double ClusteringBenchmark::extractFeature(size_t Input, unsigned Feature,
                                           unsigned Level,
                                           support::CostCounter &Cost) const {
  assert(Input < Inputs.size() && "input out of range");
  assert(Feature < 4 && Level < 3 && "feature/level out of range");
  const linalg::Matrix &P = Inputs[Input];
  size_t N = P.rows();
  size_t S = clusterSampleSize(Level, N);
  size_t Stride = std::max<size_t>(1, N / S);

  // Sample bounding box and centroid (shared by several features).
  double MinX = 1e300, MaxX = -1e300, MinY = 1e300, MaxY = -1e300;
  double CX = 0.0, CY = 0.0;
  size_t Count = 0;
  for (size_t I = 0; I < N && Count < S; I += Stride, ++Count) {
    double X = P.at(I, 0), Y = P.at(I, 1);
    MinX = std::min(MinX, X);
    MaxX = std::max(MaxX, X);
    MinY = std::min(MinY, Y);
    MaxY = std::max(MaxY, Y);
    CX += X;
    CY += Y;
  }
  Cost.addFlops(6.0 * static_cast<double>(Count));
  if (Count == 0)
    return 0.0;
  CX /= static_cast<double>(Count);
  CY /= static_cast<double>(Count);

  switch (Feature) {
  case 0: { // radius: max distance from the sample centroid
    double MaxR = 0.0;
    size_t C2 = 0;
    for (size_t I = 0; I < N && C2 < S; I += Stride, ++C2) {
      double DX = P.at(I, 0) - CX, DY = P.at(I, 1) - CY;
      MaxR = std::max(MaxR, std::sqrt(DX * DX + DY * DY));
    }
    Cost.addFlops(4.0 * static_cast<double>(C2));
    return MaxR;
  }
  case 1: { // centers: occupancy-grid estimate of cluster-center count.
    // The most expensive feature (the paper calls centers "the most
    // expensive feature relative to execution time").
    unsigned G = 8u << Level; // 8 / 16 / 32 grid
    std::vector<unsigned> Hist(static_cast<size_t>(G) * G, 0);
    double SpanX = std::max(1e-9, MaxX - MinX);
    double SpanY = std::max(1e-9, MaxY - MinY);
    size_t C2 = 0;
    for (size_t I = 0; I < N && C2 < S; I += Stride, ++C2) {
      unsigned GX = std::min<unsigned>(
          G - 1, static_cast<unsigned>((P.at(I, 0) - MinX) / SpanX * G));
      unsigned GY = std::min<unsigned>(
          G - 1, static_cast<unsigned>((P.at(I, 1) - MinY) / SpanY * G));
      ++Hist[static_cast<size_t>(GX) * G + GY];
    }
    Cost.addFlops(4.0 * static_cast<double>(C2));
    Cost.addOther(static_cast<double>(G) * G);
    // Count cells that are local maxima with non-trivial mass.
    unsigned Threshold = std::max<unsigned>(
        2, static_cast<unsigned>(C2 / (4 * static_cast<size_t>(G))));
    unsigned Centers = 0;
    for (unsigned X = 0; X != G; ++X)
      for (unsigned Y = 0; Y != G; ++Y) {
        unsigned H = Hist[static_cast<size_t>(X) * G + Y];
        if (H < Threshold)
          continue;
        bool IsMax = true;
        for (int DX = -1; DX <= 1 && IsMax; ++DX)
          for (int DY = -1; DY <= 1 && IsMax; ++DY) {
            if (DX == 0 && DY == 0)
              continue;
            int NX = static_cast<int>(X) + DX, NY = static_cast<int>(Y) + DY;
            if (NX < 0 || NY < 0 || NX >= static_cast<int>(G) ||
                NY >= static_cast<int>(G))
              continue;
            if (Hist[static_cast<size_t>(NX) * G + NY] > H)
              IsMax = false;
          }
        if (IsMax)
          ++Centers;
      }
    return static_cast<double>(Centers);
  }
  case 2: { // density: sample points per occupied coarse cell
    unsigned G = 8;
    std::vector<unsigned> Hist(static_cast<size_t>(G) * G, 0);
    double SpanX = std::max(1e-9, MaxX - MinX);
    double SpanY = std::max(1e-9, MaxY - MinY);
    size_t C2 = 0;
    for (size_t I = 0; I < N && C2 < S; I += Stride, ++C2) {
      unsigned GX = std::min<unsigned>(
          G - 1, static_cast<unsigned>((P.at(I, 0) - MinX) / SpanX * G));
      unsigned GY = std::min<unsigned>(
          G - 1, static_cast<unsigned>((P.at(I, 1) - MinY) / SpanY * G));
      ++Hist[static_cast<size_t>(GX) * G + GY];
    }
    Cost.addFlops(4.0 * static_cast<double>(C2));
    unsigned Occupied = 0;
    for (unsigned H : Hist)
      if (H > 0)
        ++Occupied;
    return Occupied > 0 ? static_cast<double>(C2) / Occupied : 0.0;
  }
  case 3: // range: bounding-box diagonal
    return std::sqrt((MaxX - MinX) * (MaxX - MinX) +
                     (MaxY - MinY) * (MaxY - MinY));
  default:
    return 0.0;
  }
}

ml::KMeansOptions ClusteringBenchmark::kmeansOptionsFor(
    const runtime::Configuration &Config) const {
  ml::KMeansOptions O;
  switch (Config.category(InitParam)) {
  case 0:
    O.Init = ml::KMeansInit::Random;
    break;
  case 1:
    O.Init = ml::KMeansInit::Prefix;
    break;
  default:
    O.Init = ml::KMeansInit::CenterPlus;
    break;
  }
  O.K = static_cast<unsigned>(Config.integer(KParam));
  O.MaxIterations = static_cast<unsigned>(Config.integer(ItersParam));
  O.EarlyStop = true;
  O.Seed = 0xC0FFEE; // fixed: runs are deterministic per configuration
  return O;
}

runtime::RunResult
ClusteringBenchmark::run(size_t Input, const runtime::Configuration &Config,
                         support::CostCounter &Cost) const {
  assert(Input < Inputs.size() && "input out of range");
  double Before = Cost.units();
  ml::KMeansOptions O = kmeansOptionsFor(Config);
  ml::KMeansResult KR = ml::kMeans(Inputs[Input], O, &Cost);
  double Ours = meanPointToCenterDistance(Inputs[Input], KR);
  runtime::RunResult R;
  R.TimeUnits = Cost.units() - Before;
  double Canon = CanonicalDist[Input];
  if (Ours <= 1e-12)
    R.Accuracy = 5.0; // perfect clustering of a degenerate input
  else
    R.Accuracy = std::min(5.0, Canon / Ours);
  return R;
}

//===----------------------------------------------------------------------===//
// Registry entries: the paper's clustering1 (lattice/poker-hand-like) and
// clustering2 (synthetic mixture) rows.
//===----------------------------------------------------------------------===//

#include "registry/BenchmarkRegistry.h"

static registry::ProgramPtr
makeClusteringProgram(ClusteringBenchmark::Dataset Data, double Scale,
                      uint64_t Seed) {
  ClusteringBenchmark::Options O;
  O.Data = Data;
  O.NumInputs = registry::scaledInputCount(Scale, 160);
  O.MinPoints = 150;
  O.MaxPoints = 500;
  O.Seed = Seed;
  return std::make_unique<ClusteringBenchmark>(O);
}

static registry::RegisterBenchmark
    RegClustering1(std::make_unique<registry::SimpleBenchmarkFactory>(
        "clustering1", "Clustering, lattice-mix discrete inputs (paper clustering1)",
        /*SuiteOrder=*/2, /*ProgramSeed=*/103, /*PipelineSeed=*/1003,
        [](double Scale, uint64_t Seed) {
          return makeClusteringProgram(ClusteringBenchmark::Dataset::LatticeMix,
                                       Scale, Seed);
        }));

static registry::RegisterBenchmark
    RegClustering2(std::make_unique<registry::SimpleBenchmarkFactory>(
        "clustering2", "Clustering, synthetic generator mixture (paper clustering2)",
        /*SuiteOrder=*/3, /*ProgramSeed=*/104, /*PipelineSeed=*/1004,
        [](double Scale, uint64_t Seed) {
          return makeClusteringProgram(
              ClusteringBenchmark::Dataset::SyntheticMix, Scale, Seed);
        }));

//===- benchmarks/SortAlgorithms.cpp -----------------------------------------=//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "benchmarks/SortAlgorithms.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>

using namespace pbt;
using namespace pbt::bench;

bool bench::isSorted(const std::vector<double> &V, size_t Lo, size_t Hi) {
  for (size_t I = Lo; I + 1 < Hi; ++I)
    if (V[I] > V[I + 1])
      return false;
  return true;
}

void bench::insertionSort(std::vector<double> &V, size_t Lo, size_t Hi,
                          support::CostCounter &Cost) {
  if (Hi - Lo < 2)
    return;
  double Compares = 0.0, Moves = 0.0;
  for (size_t I = Lo + 1; I < Hi; ++I) {
    double Key = V[I];
    size_t J = I;
    Compares += 1.0;
    while (J > Lo && V[J - 1] > Key) {
      V[J] = V[J - 1];
      Moves += 1.0;
      --J;
      if (J > Lo)
        Compares += 1.0;
    }
    if (J != I) {
      V[J] = Key;
      Moves += 1.0;
    }
  }
  Cost.addCompares(Compares);
  Cost.addMoves(Moves);
}

/// Maps a double to a uint64 whose unsigned order matches double order
/// (standard sign-flip trick; total order with -0 < +0 collapsed is fine
/// for sorting).
static uint64_t orderedKey(double D) {
  uint64_t Bits;
  std::memcpy(&Bits, &D, sizeof(Bits));
  return (Bits & 0x8000000000000000ull) ? ~Bits : Bits | 0x8000000000000000ull;
}

void bench::radixSort(std::vector<double> &V, size_t Lo, size_t Hi,
                      support::CostCounter &Cost) {
  size_t N = Hi - Lo;
  if (N < 2)
    return;
  std::vector<uint64_t> Keys(N), Scratch(N);
  for (size_t I = 0; I != N; ++I)
    Keys[I] = orderedKey(V[Lo + I]);
  Cost.addOther(static_cast<double>(N)); // key transform

  size_t Counts[256];
  for (unsigned Pass = 0; Pass != 8; ++Pass) {
    unsigned Shift = Pass * 8;
    std::fill(std::begin(Counts), std::end(Counts), 0);
    for (size_t I = 0; I != N; ++I)
      ++Counts[(Keys[I] >> Shift) & 0xff];
    size_t Total = 0;
    for (size_t &C : Counts) {
      size_t Old = C;
      C = Total;
      Total += Old;
    }
    for (size_t I = 0; I != N; ++I)
      Scratch[Counts[(Keys[I] >> Shift) & 0xff]++] = Keys[I];
    Keys.swap(Scratch);
    // One histogram touch plus one scatter move per element per pass.
    Cost.addOther(static_cast<double>(N));
    Cost.addMoves(static_cast<double>(N));
  }

  for (size_t I = 0; I != N; ++I) {
    uint64_t K = Keys[I];
    uint64_t Bits =
        (K & 0x8000000000000000ull) ? K & 0x7fffffffffffffffull : ~K;
    double D;
    std::memcpy(&D, &Bits, sizeof(D));
    V[Lo + I] = D;
  }
  Cost.addMoves(static_cast<double>(N)); // write back
}

void bench::bitonicSort(std::vector<double> &V, size_t Lo, size_t Hi,
                        support::CostCounter &Cost) {
  size_t N = Hi - Lo;
  if (N < 2)
    return;
  size_t P = 1;
  while (P < N)
    P <<= 1;
  std::vector<double> Buf(P, std::numeric_limits<double>::infinity());
  std::copy(V.begin() + static_cast<long>(Lo),
            V.begin() + static_cast<long>(Hi), Buf.begin());
  Cost.addMoves(static_cast<double>(N));

  double Compares = 0.0, Moves = 0.0;
  // Classic iterative bitonic network.
  for (size_t K = 2; K <= P; K <<= 1) {
    for (size_t J = K >> 1; J > 0; J >>= 1) {
      for (size_t I = 0; I != P; ++I) {
        size_t L = I ^ J;
        if (L <= I)
          continue;
        bool Ascending = (I & K) == 0;
        Compares += 1.0;
        if ((Ascending && Buf[I] > Buf[L]) || (!Ascending && Buf[I] < Buf[L])) {
          std::swap(Buf[I], Buf[L]);
          Moves += 3.0;
        }
      }
    }
  }
  std::copy(Buf.begin(), Buf.begin() + static_cast<long>(N),
            V.begin() + static_cast<long>(Lo));
  Moves += static_cast<double>(N);
  Cost.addCompares(Compares);
  Cost.addMoves(Moves);
}

void PolySorter::quickSort(std::vector<double> &V, size_t Lo, size_t Hi,
                           support::CostCounter &Cost) const {
  // Lomuto partition with a first-element pivot (kept deliberately: this
  // is the classic variant that degenerates to quadratic time on sorted
  // and heavily duplicated inputs, the input sensitivity the paper cites).
  // Iterates on the larger side to bound stack depth in those cases.
  size_t CurLo = Lo, CurHi = Hi;
  while (CurHi - CurLo > 1) {
    double Compares = 0.0, Moves = 0.0;
    std::swap(V[CurLo], V[CurHi - 1]); // pivot to the back
    Moves += 3.0;
    double Pivot = V[CurHi - 1];
    size_t Store = CurLo;
    for (size_t I = CurLo; I + 1 < CurHi; ++I) {
      Compares += 1.0;
      if (V[I] < Pivot) {
        if (I != Store) {
          std::swap(V[I], V[Store]);
          Moves += 3.0;
        }
        ++Store;
      }
    }
    std::swap(V[Store], V[CurHi - 1]);
    Moves += 3.0;
    Cost.addCompares(Compares);
    Cost.addMoves(Moves);

    // Recurse (through the selector) into the smaller side, loop on the
    // larger one.
    size_t LeftLo = CurLo, LeftHi = Store;
    size_t RightLo = Store + 1, RightHi = CurHi;
    if (LeftHi - LeftLo <= RightHi - RightLo) {
      sortRange(V, LeftLo, LeftHi, Cost);
      CurLo = RightLo;
      CurHi = RightHi;
    } else {
      sortRange(V, RightLo, RightHi, Cost);
      CurLo = LeftLo;
      CurHi = LeftHi;
    }
    // The remaining side re-enters the selector as well, unless it would
    // re-select quicksort at the same size class, in which case looping
    // here is equivalent and cheaper.
    unsigned Choice = Sel.choose(CurHi - CurLo);
    if (Choice != static_cast<unsigned>(SortAlgo::Quick)) {
      sortRange(V, CurLo, CurHi, Cost);
      return;
    }
  }
}

void PolySorter::mergeSort(std::vector<double> &V, size_t Lo, size_t Hi,
                           support::CostCounter &Cost) const {
  size_t N = Hi - Lo;
  unsigned Ways = static_cast<unsigned>(
      std::min<size_t>(MergeWays, std::max<size_t>(2, N / 2)));
  if (N < 2)
    return;
  if (N <= Ways) {
    insertionSort(V, Lo, Hi, Cost);
    return;
  }

  // Split into Ways chunks and sort each through the selector.
  std::vector<size_t> Bounds(Ways + 1);
  for (unsigned W = 0; W <= Ways; ++W)
    Bounds[W] = Lo + N * W / Ways;
  for (unsigned W = 0; W != Ways; ++W)
    sortRange(V, Bounds[W], Bounds[W + 1], Cost);

  // K-way merge by linear scan over the run heads (Ways is small).
  std::vector<double> Out;
  Out.reserve(N);
  std::vector<size_t> Head(Bounds.begin(), Bounds.end() - 1);
  double Compares = 0.0, Moves = 0.0;
  for (size_t Produced = 0; Produced != N; ++Produced) {
    unsigned Best = Ways;
    for (unsigned W = 0; W != Ways; ++W) {
      if (Head[W] == Bounds[W + 1])
        continue;
      if (Best == Ways) {
        Best = W;
        continue;
      }
      Compares += 1.0;
      if (V[Head[W]] < V[Head[Best]])
        Best = W;
    }
    assert(Best != Ways && "merge ran out of elements");
    Out.push_back(V[Head[Best]++]);
    Moves += 1.0;
  }
  std::copy(Out.begin(), Out.end(), V.begin() + static_cast<long>(Lo));
  Moves += static_cast<double>(N);
  Cost.addCompares(Compares);
  Cost.addMoves(Moves);
}

void PolySorter::sortRange(std::vector<double> &V, size_t Lo, size_t Hi,
                           support::CostCounter &Cost) const {
  size_t N = Hi - Lo;
  if (N < 2)
    return;
  switch (static_cast<SortAlgo>(Sel.choose(N))) {
  case SortAlgo::Insertion:
    insertionSort(V, Lo, Hi, Cost);
    return;
  case SortAlgo::Quick:
    quickSort(V, Lo, Hi, Cost);
    return;
  case SortAlgo::Merge:
    mergeSort(V, Lo, Hi, Cost);
    return;
  case SortAlgo::Radix:
    radixSort(V, Lo, Hi, Cost);
    return;
  case SortAlgo::Bitonic:
    bitonicSort(V, Lo, Hi, Cost);
    return;
  }
  assert(false && "unknown sort choice");
}

void PolySorter::sort(std::vector<double> &V, support::CostCounter &Cost) const {
  sortRange(V, 0, V.size(), Cost);
  assert(isSorted(V, 0, V.size()) && "polyalgorithm produced unsorted output");
}

//===----------------------------------------------------------------------===//
// Input generators
//===----------------------------------------------------------------------===//

const char *bench::sortGenName(SortGen G) {
  switch (G) {
  case SortGen::Uniform:
    return "uniform";
  case SortGen::Sorted:
    return "sorted";
  case SortGen::Reverse:
    return "reverse";
  case SortGen::AlmostSorted:
    return "almost-sorted";
  case SortGen::FewDistinct:
    return "few-distinct";
  case SortGen::OrganPipe:
    return "organ-pipe";
  case SortGen::Gaussian:
    return "gaussian";
  case SortGen::Exponential:
    return "exponential";
  case SortGen::Sawtooth:
    return "sawtooth";
  case SortGen::Constant:
    return "constant";
  }
  return "unknown";
}

std::vector<double> bench::generateSortInput(SortGen G, size_t N,
                                             support::Rng &Rng) {
  std::vector<double> V(N);
  switch (G) {
  case SortGen::Uniform:
    for (double &X : V)
      X = Rng.uniform(0.0, 1e6);
    break;
  case SortGen::Sorted:
    for (size_t I = 0; I != N; ++I)
      V[I] = static_cast<double>(I) + Rng.uniform(0.0, 0.5);
    std::sort(V.begin(), V.end());
    break;
  case SortGen::Reverse:
    for (size_t I = 0; I != N; ++I)
      V[I] = static_cast<double>(N - I) + Rng.uniform(0.0, 0.5);
    std::sort(V.begin(), V.end(), std::greater<double>());
    break;
  case SortGen::AlmostSorted: {
    for (size_t I = 0; I != N; ++I)
      V[I] = static_cast<double>(I);
    // Perturb ~2% of positions with local swaps.
    size_t Swaps = std::max<size_t>(1, N / 50);
    for (size_t S = 0; S != Swaps; ++S) {
      size_t I = Rng.index(N);
      size_t J = std::min(N - 1, I + 1 + Rng.index(8));
      std::swap(V[I], V[J]);
    }
    break;
  }
  case SortGen::FewDistinct: {
    size_t Values = 2 + Rng.index(14);
    for (double &X : V)
      X = static_cast<double>(Rng.index(Values)) * 7.5;
    break;
  }
  case SortGen::OrganPipe:
    for (size_t I = 0; I != N; ++I)
      V[I] = static_cast<double>(I < N / 2 ? I : N - I);
    break;
  case SortGen::Gaussian:
    for (double &X : V)
      X = Rng.gaussian(0.0, 1000.0);
    break;
  case SortGen::Exponential:
    for (double &X : V)
      X = Rng.exponential(1e-3);
    break;
  case SortGen::Sawtooth: {
    size_t Runs = 4 + Rng.index(12);
    size_t RunLen = std::max<size_t>(1, N / Runs);
    for (size_t I = 0; I != N; ++I)
      V[I] = static_cast<double>(I % RunLen) * 3.0 + Rng.uniform(0.0, 1.0);
    break;
  }
  case SortGen::Constant: {
    double C = Rng.uniform(0.0, 100.0);
    for (double &X : V)
      X = C;
    break;
  }
  }
  return V;
}

std::vector<double> bench::generateRegistryLikeInput(size_t N,
                                                     support::Rng &Rng) {
  // Registry extracts are dominated by records sorted by identifier, with
  // a small pool of duplicated identifiers (renewed registrations) and a
  // tail of recent, unsorted updates.
  std::vector<double> V;
  V.reserve(N);
  size_t Pool = std::max<size_t>(8, N / 10);
  size_t Runs = 2 + Rng.index(9);
  size_t Tail = N / 20 + Rng.index(std::max<size_t>(1, N / 20));
  size_t Body = N > Tail ? N - Tail : N;
  for (size_t R = 0; R != Runs; ++R) {
    size_t RunLen = Body / Runs + (R < Body % Runs ? 1 : 0);
    std::vector<double> Run(RunLen);
    for (double &X : Run)
      X = static_cast<double>(Rng.index(Pool)) * 11.0;
    std::sort(Run.begin(), Run.end());
    V.insert(V.end(), Run.begin(), Run.end());
  }
  while (V.size() < N)
    V.push_back(static_cast<double>(Rng.index(Pool)) * 11.0);
  return V;
}

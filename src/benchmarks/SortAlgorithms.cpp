//===- benchmarks/SortAlgorithms.cpp -----------------------------------------=//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "benchmarks/SortAlgorithms.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <utility>

using namespace pbt;
using namespace pbt::bench;

static std::atomic<bool> SortSimulation{true};

bool bench::sortSimulationEnabled() {
  return SortSimulation.load(std::memory_order_relaxed);
}

void bench::setSortSimulation(bool Enabled) {
  SortSimulation.store(Enabled, std::memory_order_relaxed);
}

bool bench::isSorted(const std::vector<double> &V, size_t Lo, size_t Hi) {
  for (size_t I = Lo; I + 1 < Hi; ++I)
    if (V[I] > V[I + 1])
      return false;
  return true;
}

/// Exact simulation of insertionSort. Let m_i = |{j < i : V[j] > V[i]}|
/// (how far element i sinks). The physical algorithm's charges are a
/// closed function of the m_i: per element i >= 1 it pays 1 + m_i
/// compares when the sink stops on a failed comparison, 1 + m_i - 1 when
/// it sinks all the way to Lo (the guard J > Lo short-circuits the last
/// compare), and m_i + 1 moves when m_i > 0 (shifts plus the final
/// placement). Summed:
///
///   Compares = (n-1) + sum(m_i) - |{i : m_i == i}|
///   Moves    = sum(m_i) + |{i : m_i > 0}|
///
/// where sum(m_i) is the range's inversion count (a bottom-up stable
/// merge computes it in O(n log n) while producing the sorted output),
/// m_i == i holds exactly when V[i] undercuts the strict prefix minimum,
/// and m_i > 0 exactly when V[i] undercuts the prefix maximum -- both
/// O(n) scans. The merge is stable, so the written-back output is
/// bit-identical to the physical (stable) insertion result even for
/// bit-distinct equal doubles. Charges are integer-valued doubles, so
/// the reordered accumulation is exact.
static void insertionSortSimulated(std::vector<double> &V, size_t Lo,
                                   size_t Hi, support::CostCounter &Cost) {
  size_t N = Hi - Lo;
  double SinkAll = 0.0, AnyGreater = 0.0;
  {
    double Min = V[Lo], Max = V[Lo];
    for (size_t I = 1; I != N; ++I) {
      double X = V[Lo + I];
      if (X < Max)
        AnyGreater += 1.0;
      if (X < Min) {
        SinkAll += 1.0;
        Min = X;
      }
      if (X > Max)
        Max = X;
    }
  }
  if (AnyGreater == 0.0) { // already non-decreasing: every m_i is 0
    Cost.addCompares(static_cast<double>(N - 1));
    return;
  }

  // Bottom-up stable merge with inversion counting: taking from the right
  // run while the left run is non-empty counts one inversion per left
  // element remaining; ties take from the left (stability, and equal
  // values are not inversions since m_i counts strictly greater).
  thread_local std::vector<double> TLScratch;
  TLScratch.resize(N);
  double *Src = V.data() + Lo;
  double *Dst = TLScratch.data();
  double Inversions = 0.0;
  for (size_t Width = 1; Width < N; Width <<= 1) {
    for (size_t Left = 0; Left < N; Left += 2 * Width) {
      size_t Mid = std::min(Left + Width, N);
      size_t End = std::min(Left + 2 * Width, N);
      size_t A = Left, B = Mid, O = Left;
      while (A != Mid && B != End) {
        if (Src[B] < Src[A]) {
          Inversions += static_cast<double>(Mid - A);
          Dst[O++] = Src[B++];
        } else {
          Dst[O++] = Src[A++];
        }
      }
      while (A != Mid)
        Dst[O++] = Src[A++];
      while (B != End)
        Dst[O++] = Src[B++];
    }
    std::swap(Src, Dst);
  }
  if (Src != V.data() + Lo)
    std::copy(Src, Src + N, V.data() + Lo);

  Cost.addCompares(static_cast<double>(N - 1) + Inversions - SinkAll);
  Cost.addMoves(Inversions + AnyGreater);
}

void bench::insertionSort(std::vector<double> &V, size_t Lo, size_t Hi,
                          support::CostCounter &Cost) {
  if (Hi - Lo < 2)
    return;
  // Below this size the physical quadratic loop is faster than building
  // the rank index; both paths are exact, so the cutover is wall-clock
  // tuning only.
  if (Hi - Lo >= 48 && sortSimulationEnabled()) {
    insertionSortSimulated(V, Lo, Hi, Cost);
    return;
  }
  double Compares = 0.0, Moves = 0.0;
  for (size_t I = Lo + 1; I < Hi; ++I) {
    double Key = V[I];
    size_t J = I;
    Compares += 1.0;
    while (J > Lo && V[J - 1] > Key) {
      V[J] = V[J - 1];
      Moves += 1.0;
      --J;
      if (J > Lo)
        Compares += 1.0;
    }
    if (J != I) {
      V[J] = Key;
      Moves += 1.0;
    }
  }
  Cost.addCompares(Compares);
  Cost.addMoves(Moves);
}

/// Maps a double to a uint64 whose unsigned order matches double order
/// (standard sign-flip trick; total order with -0 < +0 collapsed is fine
/// for sorting).
static uint64_t orderedKey(double D) {
  uint64_t Bits;
  std::memcpy(&Bits, &D, sizeof(Bits));
  return (Bits & 0x8000000000000000ull) ? ~Bits : Bits | 0x8000000000000000ull;
}

void bench::radixSort(std::vector<double> &V, size_t Lo, size_t Hi,
                      support::CostCounter &Cost) {
  size_t N = Hi - Lo;
  if (N < 2)
    return;
  // Radix is a terminal choice (never recurses), so one per-thread pair of
  // key buffers can serve every call; the reference path keeps the
  // original per-call allocations.
  thread_local std::vector<uint64_t> TLKeys, TLScratch;
  std::vector<uint64_t> LocalKeys, LocalScratch;
  bool Reuse = sortSimulationEnabled();
  std::vector<uint64_t> &Keys = Reuse ? TLKeys : LocalKeys;
  std::vector<uint64_t> &Scratch = Reuse ? TLScratch : LocalScratch;
  Keys.resize(N);
  Scratch.resize(N);
  for (size_t I = 0; I != N; ++I)
    Keys[I] = orderedKey(V[Lo + I]);
  Cost.addOther(static_cast<double>(N)); // key transform

  size_t Counts[256];
  for (unsigned Pass = 0; Pass != 8; ++Pass) {
    unsigned Shift = Pass * 8;
    std::fill(std::begin(Counts), std::end(Counts), 0);
    for (size_t I = 0; I != N; ++I)
      ++Counts[(Keys[I] >> Shift) & 0xff];
    // A pass whose byte is constant scatters every key to its own slot (a
    // stable identity permutation); in simulation mode skip the physical
    // scatter and charge the same histogram + move work arithmetically.
    // Doubles from a common magnitude range share their top exponent
    // bytes, so this routinely saves several of the eight passes.
    bool Identity = false;
    if (Reuse)
      for (size_t C : Counts)
        if (C == N) {
          Identity = true;
          break;
        }
    if (!Identity) {
      size_t Total = 0;
      for (size_t &C : Counts) {
        size_t Old = C;
        C = Total;
        Total += Old;
      }
      for (size_t I = 0; I != N; ++I)
        Scratch[Counts[(Keys[I] >> Shift) & 0xff]++] = Keys[I];
      Keys.swap(Scratch);
    }
    // One histogram touch plus one scatter move per element per pass.
    Cost.addOther(static_cast<double>(N));
    Cost.addMoves(static_cast<double>(N));
  }

  for (size_t I = 0; I != N; ++I) {
    uint64_t K = Keys[I];
    uint64_t Bits =
        (K & 0x8000000000000000ull) ? K & 0x7fffffffffffffffull : ~K;
    double D;
    std::memcpy(&D, &Bits, sizeof(D));
    V[Lo + I] = D;
  }
  Cost.addMoves(static_cast<double>(N)); // write back
}

void bench::bitonicSort(std::vector<double> &V, size_t Lo, size_t Hi,
                        support::CostCounter &Cost) {
  size_t N = Hi - Lo;
  if (N < 2)
    return;
  size_t P = 1;
  while (P < N)
    P <<= 1;
  // Terminal like radix: the padded network buffer is reusable per thread.
  thread_local std::vector<double> TLBuf;
  std::vector<double> LocalBuf;
  std::vector<double> &Buf = sortSimulationEnabled() ? TLBuf : LocalBuf;
  Buf.assign(P, std::numeric_limits<double>::infinity());
  std::copy(V.begin() + static_cast<long>(Lo),
            V.begin() + static_cast<long>(Hi), Buf.begin());
  Cost.addMoves(static_cast<double>(N));

  double Compares = 0.0, Moves = 0.0;
  // Classic iterative bitonic network.
  bool Fast = sortSimulationEnabled();
  for (size_t K = 2; K <= P; K <<= 1) {
    for (size_t J = K >> 1; J > 0; J >>= 1) {
      if (Fast) {
        // Identical pair sequence to the reference loop below (ascending I
        // with bit J clear), but enumerated directly instead of skipping
        // half the indices, and with the data-independent per-round
        // compare count (P/2 pairs) charged arithmetically.
        for (size_t Base = 0; Base != P; Base += 2 * J) {
          bool Ascending = (Base & K) == 0;
          // Branch-free exchange: select-on-swap compiles to conditional
          // moves, and Moves accumulates 3.0 or the exact 0.0 -- the same
          // sum as the reference's conditional add.
          if (Ascending) {
            for (size_t I = Base; I != Base + J; ++I) {
              double A = Buf[I], B = Buf[I + J];
              bool Sw = A > B;
              Buf[I] = Sw ? B : A;
              Buf[I + J] = Sw ? A : B;
              Moves += Sw ? 3.0 : 0.0;
            }
          } else {
            for (size_t I = Base; I != Base + J; ++I) {
              double A = Buf[I], B = Buf[I + J];
              bool Sw = A < B;
              Buf[I] = Sw ? B : A;
              Buf[I + J] = Sw ? A : B;
              Moves += Sw ? 3.0 : 0.0;
            }
          }
        }
        Compares += static_cast<double>(P / 2);
        continue;
      }
      for (size_t I = 0; I != P; ++I) {
        size_t L = I ^ J;
        if (L <= I)
          continue;
        bool Ascending = (I & K) == 0;
        Compares += 1.0;
        if ((Ascending && Buf[I] > Buf[L]) || (!Ascending && Buf[I] < Buf[L])) {
          std::swap(Buf[I], Buf[L]);
          Moves += 3.0;
        }
      }
    }
  }
  std::copy(Buf.begin(), Buf.begin() + static_cast<long>(N),
            V.begin() + static_cast<long>(Lo));
  Moves += static_cast<double>(N);
  Cost.addCompares(Compares);
  Cost.addMoves(Moves);
}

void PolySorter::quickSort(std::vector<double> &V, size_t Lo, size_t Hi,
                           support::CostCounter &Cost) const {
  // Lomuto partition with a first-element pivot (kept deliberately: this
  // is the classic variant that degenerates to quadratic time on sorted
  // and heavily duplicated inputs, the input sensitivity the paper cites).
  // Iterates on the larger side to bound stack depth in those cases.
  size_t CurLo = Lo, CurHi = Hi;
  while (CurHi - CurLo > 1) {
    // Simulation fast path: once the range is non-decreasing, the physical
    // loop is fully determined -- the pivot is the minimum, so every
    // partition compares k-1 elements, performs exactly the two pivot
    // swaps (6 moves) which cancel each other, leaves the array unchanged
    // and loops into the still-sorted right side of size k-1. Charge that
    // closed form level by level (identical accumulation to the physical
    // addCompares/addMoves per partition) until the selector hands the
    // rest to another algorithm, instead of paying the quadratic scans.
    // The early-exit isSorted probe costs at most one extra pass over a
    // range that was about to be scanned anyway, and catches ranges that
    // *become* sorted mid-descent.
    if (sortSimulationEnabled() && isSorted(V, CurLo, CurHi)) {
      size_t K = CurHi - CurLo;
      while (K > 1) {
        Cost.addCompares(static_cast<double>(K - 1));
        Cost.addMoves(6.0);
        ++CurLo;
        --K;
        if (Sel.choose(K) != static_cast<unsigned>(SortAlgo::Quick)) {
          sortRange(V, CurLo, CurHi, Cost);
          return;
        }
      }
      return;
    }
    double Compares = 0.0, Moves = 0.0;
    std::swap(V[CurLo], V[CurHi - 1]); // pivot to the back
    Moves += 3.0;
    double Pivot = V[CurHi - 1];
    size_t Store = CurLo;
    for (size_t I = CurLo; I + 1 < CurHi; ++I) {
      Compares += 1.0;
      if (V[I] < Pivot) {
        if (I != Store) {
          std::swap(V[I], V[Store]);
          Moves += 3.0;
        }
        ++Store;
      }
    }
    std::swap(V[Store], V[CurHi - 1]);
    Moves += 3.0;
    Cost.addCompares(Compares);
    Cost.addMoves(Moves);

    // Recurse (through the selector) into the smaller side, loop on the
    // larger one.
    size_t LeftLo = CurLo, LeftHi = Store;
    size_t RightLo = Store + 1, RightHi = CurHi;
    if (LeftHi - LeftLo <= RightHi - RightLo) {
      sortRange(V, LeftLo, LeftHi, Cost);
      CurLo = RightLo;
      CurHi = RightHi;
    } else {
      sortRange(V, RightLo, RightHi, Cost);
      CurLo = LeftLo;
      CurHi = LeftHi;
    }
    // The remaining side re-enters the selector as well, unless it would
    // re-select quicksort at the same size class, in which case looping
    // here is equivalent and cheaper.
    unsigned Choice = Sel.choose(CurHi - CurLo);
    if (Choice != static_cast<unsigned>(SortAlgo::Quick)) {
      sortRange(V, CurLo, CurHi, Cost);
      return;
    }
  }
}

void PolySorter::mergeSort(std::vector<double> &V, size_t Lo, size_t Hi,
                           support::CostCounter &Cost) const {
  size_t N = Hi - Lo;
  unsigned Ways = static_cast<unsigned>(
      std::min<size_t>(MergeWays, std::max<size_t>(2, N / 2)));
  if (N < 2)
    return;
  if (N <= Ways) {
    insertionSort(V, Lo, Hi, Cost);
    return;
  }

  // Split into Ways chunks and sort each through the selector. Bounds and
  // Head live across the child recursion, so in simulation mode they use
  // fixed stack arrays (the config space caps mergeWays at 16) instead of
  // per-level heap vectors.
  bool Reuse = sortSimulationEnabled() && Ways <= 16;
  size_t BoundsStack[17], HeadStack[16];
  std::vector<size_t> BoundsHeap, HeadHeap;
  if (!Reuse) {
    BoundsHeap.resize(Ways + 1);
    HeadHeap.resize(Ways);
  }
  size_t *Bounds = Reuse ? BoundsStack : BoundsHeap.data();
  size_t *Head = Reuse ? HeadStack : HeadHeap.data();
  for (unsigned W = 0; W <= Ways; ++W)
    Bounds[W] = Lo + N * W / Ways;
  for (unsigned W = 0; W != Ways; ++W)
    sortRange(V, Bounds[W], Bounds[W + 1], Cost);

  // K-way merge by linear scan over the run heads (Ways is small). The
  // output buffer is only live between the child recursion above and the
  // copy-back below, so one per-thread buffer serves every level.
  thread_local std::vector<double> TLOut;
  std::vector<double> LocalOut;
  std::vector<double> &Out = Reuse ? TLOut : LocalOut;
  Out.clear();
  Out.reserve(N);
  for (unsigned W = 0; W != Ways; ++W)
    Head[W] = Bounds[W];
  double Compares = 0.0, Moves = 0.0;
  if (Reuse && Ways == 2) {
    // Two runs: a direct two-pointer merge. Ties take run 0 (the lowest
    // index, as the reference scan does); one compare per output while
    // both runs are non-empty, none after -- the reference charge.
    size_t A = Bounds[0], AEnd = Bounds[1];
    size_t B = Bounds[1], BEnd = Bounds[2];
    while (A != AEnd && B != BEnd) {
      Compares += 1.0;
      Out.push_back(V[B] < V[A] ? V[B++] : V[A++]);
    }
    Out.insert(Out.end(), V.begin() + static_cast<long>(A),
               V.begin() + static_cast<long>(AEnd));
    Out.insert(Out.end(), V.begin() + static_cast<long>(B),
               V.begin() + static_cast<long>(BEnd));
    Moves += static_cast<double>(N);
  } else if (Reuse) {
    // Heap-based take: the reference scan below selects the minimal head
    // with ties to the lowest run index and charges (#non-empty runs - 1)
    // compares per output -- a count independent of the values given the
    // emptying schedule. A (value, run) min-heap with lexicographic order
    // reproduces the exact take sequence, so the arithmetic charge equals
    // the reference accumulation while the physical work drops from
    // O(ways) to O(log ways) per output.
    std::pair<double, unsigned> Heap[16];
    size_t HeapN = 0;
    auto Less = [](const std::pair<double, unsigned> &A,
                   const std::pair<double, unsigned> &B) {
      return A.first < B.first || (A.first == B.first && A.second < B.second);
    };
    auto SiftDown = [&] {
      size_t I = 0;
      while (true) {
        size_t Kid = 2 * I + 1;
        if (Kid >= HeapN)
          break;
        if (Kid + 1 < HeapN && Less(Heap[Kid + 1], Heap[Kid]))
          ++Kid;
        if (!Less(Heap[Kid], Heap[I]))
          break;
        std::swap(Heap[Kid], Heap[I]);
        I = Kid;
      }
    };
    for (unsigned W = 0; W != Ways; ++W) { // every run starts non-empty
      size_t I = HeapN++;
      Heap[I] = {V[Head[W]], W};
      while (I > 0 && Less(Heap[I], Heap[(I - 1) / 2])) {
        std::swap(Heap[I], Heap[(I - 1) / 2]);
        I = (I - 1) / 2;
      }
    }
    size_t NonEmpty = Ways;
    for (size_t Produced = 0; Produced != N; ++Produced) {
      Compares += static_cast<double>(NonEmpty - 1);
      unsigned W = Heap[0].second;
      Out.push_back(Heap[0].first);
      Moves += 1.0;
      if (++Head[W] != Bounds[W + 1]) {
        Heap[0] = {V[Head[W]], W};
      } else {
        --NonEmpty;
        Heap[0] = Heap[--HeapN];
      }
      if (HeapN)
        SiftDown();
    }
  } else {
    for (size_t Produced = 0; Produced != N; ++Produced) {
      unsigned Best = Ways;
      for (unsigned W = 0; W != Ways; ++W) {
        if (Head[W] == Bounds[W + 1])
          continue;
        if (Best == Ways) {
          Best = W;
          continue;
        }
        Compares += 1.0;
        if (V[Head[W]] < V[Head[Best]])
          Best = W;
      }
      assert(Best != Ways && "merge ran out of elements");
      Out.push_back(V[Head[Best]++]);
      Moves += 1.0;
    }
  }
  std::copy(Out.begin(), Out.end(), V.begin() + static_cast<long>(Lo));
  Moves += static_cast<double>(N);
  Cost.addCompares(Compares);
  Cost.addMoves(Moves);
}

void PolySorter::sortRange(std::vector<double> &V, size_t Lo, size_t Hi,
                           support::CostCounter &Cost) const {
  size_t N = Hi - Lo;
  if (N < 2)
    return;
  switch (static_cast<SortAlgo>(Sel.choose(N))) {
  case SortAlgo::Insertion:
    insertionSort(V, Lo, Hi, Cost);
    return;
  case SortAlgo::Quick:
    quickSort(V, Lo, Hi, Cost);
    return;
  case SortAlgo::Merge:
    mergeSort(V, Lo, Hi, Cost);
    return;
  case SortAlgo::Radix:
    radixSort(V, Lo, Hi, Cost);
    return;
  case SortAlgo::Bitonic:
    bitonicSort(V, Lo, Hi, Cost);
    return;
  }
  assert(false && "unknown sort choice");
}

void PolySorter::sort(std::vector<double> &V, support::CostCounter &Cost) const {
  sortRange(V, 0, V.size(), Cost);
  assert(isSorted(V, 0, V.size()) && "polyalgorithm produced unsorted output");
}

//===----------------------------------------------------------------------===//
// Input generators
//===----------------------------------------------------------------------===//

const char *bench::sortGenName(SortGen G) {
  switch (G) {
  case SortGen::Uniform:
    return "uniform";
  case SortGen::Sorted:
    return "sorted";
  case SortGen::Reverse:
    return "reverse";
  case SortGen::AlmostSorted:
    return "almost-sorted";
  case SortGen::FewDistinct:
    return "few-distinct";
  case SortGen::OrganPipe:
    return "organ-pipe";
  case SortGen::Gaussian:
    return "gaussian";
  case SortGen::Exponential:
    return "exponential";
  case SortGen::Sawtooth:
    return "sawtooth";
  case SortGen::Constant:
    return "constant";
  }
  return "unknown";
}

std::vector<double> bench::generateSortInput(SortGen G, size_t N,
                                             support::Rng &Rng) {
  std::vector<double> V(N);
  switch (G) {
  case SortGen::Uniform:
    for (double &X : V)
      X = Rng.uniform(0.0, 1e6);
    break;
  case SortGen::Sorted:
    for (size_t I = 0; I != N; ++I)
      V[I] = static_cast<double>(I) + Rng.uniform(0.0, 0.5);
    std::sort(V.begin(), V.end());
    break;
  case SortGen::Reverse:
    for (size_t I = 0; I != N; ++I)
      V[I] = static_cast<double>(N - I) + Rng.uniform(0.0, 0.5);
    std::sort(V.begin(), V.end(), std::greater<double>());
    break;
  case SortGen::AlmostSorted: {
    for (size_t I = 0; I != N; ++I)
      V[I] = static_cast<double>(I);
    // Perturb ~2% of positions with local swaps.
    size_t Swaps = std::max<size_t>(1, N / 50);
    for (size_t S = 0; S != Swaps; ++S) {
      size_t I = Rng.index(N);
      size_t J = std::min(N - 1, I + 1 + Rng.index(8));
      std::swap(V[I], V[J]);
    }
    break;
  }
  case SortGen::FewDistinct: {
    size_t Values = 2 + Rng.index(14);
    for (double &X : V)
      X = static_cast<double>(Rng.index(Values)) * 7.5;
    break;
  }
  case SortGen::OrganPipe:
    for (size_t I = 0; I != N; ++I)
      V[I] = static_cast<double>(I < N / 2 ? I : N - I);
    break;
  case SortGen::Gaussian:
    for (double &X : V)
      X = Rng.gaussian(0.0, 1000.0);
    break;
  case SortGen::Exponential:
    for (double &X : V)
      X = Rng.exponential(1e-3);
    break;
  case SortGen::Sawtooth: {
    size_t Runs = 4 + Rng.index(12);
    size_t RunLen = std::max<size_t>(1, N / Runs);
    for (size_t I = 0; I != N; ++I)
      V[I] = static_cast<double>(I % RunLen) * 3.0 + Rng.uniform(0.0, 1.0);
    break;
  }
  case SortGen::Constant: {
    double C = Rng.uniform(0.0, 100.0);
    for (double &X : V)
      X = C;
    break;
  }
  }
  return V;
}

std::vector<double> bench::generateRegistryLikeInput(size_t N,
                                                     support::Rng &Rng) {
  // Registry extracts are dominated by records sorted by identifier, with
  // a small pool of duplicated identifiers (renewed registrations) and a
  // tail of recent, unsorted updates.
  std::vector<double> V;
  V.reserve(N);
  size_t Pool = std::max<size_t>(8, N / 10);
  size_t Runs = 2 + Rng.index(9);
  size_t Tail = N / 20 + Rng.index(std::max<size_t>(1, N / 20));
  size_t Body = N > Tail ? N - Tail : N;
  for (size_t R = 0; R != Runs; ++R) {
    size_t RunLen = Body / Runs + (R < Body % Runs ? 1 : 0);
    std::vector<double> Run(RunLen);
    for (double &X : Run)
      X = static_cast<double>(Rng.index(Pool)) * 11.0;
    std::sort(Run.begin(), Run.end());
    V.insert(V.end(), Run.begin(), Run.end());
  }
  while (V.size() < N)
    V.push_back(static_cast<double>(Rng.index(Pool)) * 11.0);
  return V;
}

//===- benchmarks/Poisson2DBenchmark.h - The poisson2d benchmark -----------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's poisson2d benchmark: solve the 2D Poisson equation with a
/// solver chosen by the autotuner. Accuracy is the log10 ratio between the
/// RMS error of the initial (zero) guess and the RMS error of the produced
/// solution, both relative to a converged reference solution (threshold
/// 7, i.e. a 10^7 error reduction). Input sensitivity: smooth right-hand
/// sides need aggressive coarse-grid correction while high-frequency ones
/// are cheap for smoothers, so the best solver and cycle shape vary per
/// input. Features: residual measure, deviation, zeros count of the input.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_BENCHMARKS_POISSON2DBENCHMARK_H
#define PBT_BENCHMARKS_POISSON2DBENCHMARK_H

#include "benchmarks/PDEConfig.h"
#include "pde/Poisson2D.h"
#include "runtime/TunableProgram.h"
#include "support/Random.h"

#include <string>
#include <vector>

namespace pbt {
namespace bench {

/// Right-hand-side generator families for poisson2d.
enum class PoissonGen : unsigned {
  SmoothModes = 0, ///< a few low-frequency Fourier modes
  HighFrequency,   ///< high-frequency modes (easy for smoothers)
  RandomNoise,     ///< white noise (broad spectrum)
  PointSources,    ///< a handful of delta sources
  SparseSmooth,    ///< smooth field masked to a subregion
  Mixed,           ///< low + high frequency blend
};
inline constexpr unsigned NumPoissonGens = 6;

const char *poissonGenName(PoissonGen G);

/// Generates a right-hand side of the given family on an N x N grid.
pde::Grid2D generatePoissonInput(PoissonGen G, size_t N, support::Rng &Rng);

class Poisson2DBenchmark : public runtime::TunableProgram {
public:
  struct Options {
    size_t NumInputs = 250;
    size_t GridN = 33; ///< must be 2^l + 1
    uint64_t Seed = 5;
    double AccuracyThreshold = 7.0;
    double SatisfactionThreshold = 0.95;
  };

  explicit Poisson2DBenchmark(const Options &Opts);

  std::string name() const override { return "poisson2d"; }
  const runtime::ConfigSpace &space() const override { return Space; }
  std::vector<runtime::FeatureInfo> features() const override;
  std::optional<runtime::AccuracySpec> accuracy() const override {
    return runtime::AccuracySpec{Opts.AccuracyThreshold,
                                 Opts.SatisfactionThreshold};
  }
  size_t numInputs() const override { return Inputs.size(); }
  double extractFeature(size_t Input, unsigned Feature, unsigned Level,
                        support::CostCounter &Cost) const override;
  runtime::RunResult run(size_t Input, const runtime::Configuration &Config,
                         support::CostCounter &Cost) const override;

  const pde::Grid2D &input(size_t I) const { return Inputs[I]; }
  const pde::Grid2D &reference(size_t I) const { return References[I]; }
  const std::string &inputTag(size_t I) const { return Tags[I]; }
  const PDEConfigScheme &scheme() const { return Scheme; }

private:
  Options Opts;
  runtime::ConfigSpace Space;
  PDEConfigScheme Scheme;
  std::vector<pde::Grid2D> Inputs;
  std::vector<pde::Grid2D> References;
  std::vector<double> ReferenceRMS;
  std::vector<std::string> Tags;
};

} // namespace bench
} // namespace pbt

#endif // PBT_BENCHMARKS_POISSON2DBENCHMARK_H

//===- benchmarks/BinPackingBenchmark.h - The binpacking benchmark ---------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's binpacking benchmark: choose among 13 approximation
/// algorithms to pack items into unit bins. Variable accuracy: the metric
/// is the mean occupied fraction over bins (threshold 0.95), so the
/// autotuner must trade packing quality against the cost of sorting and
/// smarter bin scans. Input features: average, deviation, value range and
/// sortedness of the item list.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_BENCHMARKS_BINPACKINGBENCHMARK_H
#define PBT_BENCHMARKS_BINPACKINGBENCHMARK_H

#include "benchmarks/BinPackingAlgorithms.h"
#include "runtime/TunableProgram.h"
#include "support/Random.h"

#include <string>
#include <vector>

namespace pbt {
namespace bench {

class BinPackingBenchmark : public runtime::TunableProgram {
public:
  struct Options {
    size_t NumInputs = 400;
    size_t MinItems = 64;
    size_t MaxItems = 1024;
    uint64_t Seed = 2;
    double AccuracyThreshold = 0.95;
    double SatisfactionThreshold = 0.95;
  };

  explicit BinPackingBenchmark(const Options &Opts);

  std::string name() const override { return "binpacking"; }
  const runtime::ConfigSpace &space() const override { return Space; }
  std::vector<runtime::FeatureInfo> features() const override;
  std::optional<runtime::AccuracySpec> accuracy() const override {
    return runtime::AccuracySpec{Opts.AccuracyThreshold,
                                 Opts.SatisfactionThreshold};
  }
  size_t numInputs() const override { return Inputs.size(); }
  double extractFeature(size_t Input, unsigned Feature, unsigned Level,
                        support::CostCounter &Cost) const override;
  runtime::RunResult run(size_t Input, const runtime::Configuration &Config,
                         support::CostCounter &Cost) const override;

  /// The algorithm a configuration selects.
  PackAlgo algoFor(const runtime::Configuration &Config) const;

  const std::vector<double> &input(size_t I) const { return Inputs[I]; }
  const std::string &inputTag(size_t I) const { return Tags[I]; }

private:
  Options Opts;
  runtime::ConfigSpace Space;
  unsigned AlgoParam = 0;
  std::vector<std::vector<double>> Inputs;
  std::vector<std::string> Tags;
};

} // namespace bench
} // namespace pbt

#endif // PBT_BENCHMARKS_BINPACKINGBENCHMARK_H

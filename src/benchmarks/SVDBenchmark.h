//===- benchmarks/SVDBenchmark.h - The svd benchmark ------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's svd benchmark: approximate a matrix by a rank-k SVD
/// reconstruction, choosing the number of singular values kept and the
/// technique used to find them (one-sided Jacobi, subspace iteration,
/// randomized sketching). Accuracy metric: log10 of the ratio between the
/// RMS error of the initial guess (the zero matrix) and the RMS error of
/// the reconstruction (threshold 0.7). Inputs with low effective rank pass
/// the target with small k and cheap methods; high-rank inputs need more.
/// Features: value range, deviation and a zeros count -- cheap proxies for
/// the (expensive to measure) eigenvalue structure, as the paper notes.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_BENCHMARKS_SVDBENCHMARK_H
#define PBT_BENCHMARKS_SVDBENCHMARK_H

#include "linalg/SVD.h"
#include "runtime/TunableProgram.h"
#include "support/Random.h"

#include <string>
#include <vector>

namespace pbt {
namespace bench {

/// Input generator families for svd.
enum class SVDGen : unsigned {
  LowRank = 0,     ///< rank-r + small noise, r << n
  MediumRank,      ///< rank ~ n/3 with decaying spectrum
  FullRandom,      ///< i.i.d. uniform (flat spectrum; hard)
  Sparse,          ///< mostly zeros
  BlockDiagonal,   ///< a few dense low-rank blocks
  SmoothOuter,     ///< smooth rank-2 structure + tiny noise
};
inline constexpr unsigned NumSVDGens = 6;

const char *svdGenName(SVDGen G);

/// Generates an (N x N) matrix of the given family.
linalg::Matrix generateSVDInput(SVDGen G, size_t N, support::Rng &Rng);

class SVDBenchmark : public runtime::TunableProgram {
public:
  /// The three technique choices.
  enum class Method : unsigned { Jacobi = 0, Subspace = 1, Randomized = 2 };

  struct Options {
    size_t NumInputs = 300;
    size_t MinDim = 24;
    size_t MaxDim = 48;
    uint64_t Seed = 4;
    double AccuracyThreshold = 0.7;
    double SatisfactionThreshold = 0.95;
  };

  explicit SVDBenchmark(const Options &Opts);

  std::string name() const override { return "svd"; }
  const runtime::ConfigSpace &space() const override { return Space; }
  std::vector<runtime::FeatureInfo> features() const override;
  std::optional<runtime::AccuracySpec> accuracy() const override {
    return runtime::AccuracySpec{Opts.AccuracyThreshold,
                                 Opts.SatisfactionThreshold};
  }
  size_t numInputs() const override { return Inputs.size(); }
  double extractFeature(size_t Input, unsigned Feature, unsigned Level,
                        support::CostCounter &Cost) const override;
  runtime::RunResult run(size_t Input, const runtime::Configuration &Config,
                         support::CostCounter &Cost) const override;

  Method methodFor(const runtime::Configuration &Config) const;
  /// Rank kept for a given configuration and matrix dimension.
  unsigned rankFor(const runtime::Configuration &Config, size_t Dim) const;

  const linalg::Matrix &input(size_t I) const { return Inputs[I]; }
  const std::string &inputTag(size_t I) const { return Tags[I]; }

private:
  Options Opts;
  runtime::ConfigSpace Space;
  unsigned MethodParam = 0;
  unsigned RankFracParam = 0;
  unsigned SubspaceItersParam = 0;
  unsigned OversampleParam = 0;
  unsigned PowerItersParam = 0;
  std::vector<linalg::Matrix> Inputs;
  std::vector<std::string> Tags;
};

} // namespace bench
} // namespace pbt

#endif // PBT_BENCHMARKS_SVDBENCHMARK_H

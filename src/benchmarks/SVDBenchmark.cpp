//===- benchmarks/SVDBenchmark.cpp -------------------------------------------=//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "benchmarks/SVDBenchmark.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace pbt;
using namespace pbt::bench;

const char *bench::svdGenName(SVDGen G) {
  switch (G) {
  case SVDGen::LowRank:
    return "low-rank";
  case SVDGen::MediumRank:
    return "medium-rank";
  case SVDGen::FullRandom:
    return "full-random";
  case SVDGen::Sparse:
    return "sparse";
  case SVDGen::BlockDiagonal:
    return "block-diagonal";
  case SVDGen::SmoothOuter:
    return "smooth-outer";
  }
  return "unknown";
}

linalg::Matrix bench::generateSVDInput(SVDGen G, size_t N,
                                       support::Rng &Rng) {
  linalg::Matrix A(N, N, 0.0);
  switch (G) {
  case SVDGen::LowRank: {
    size_t R = 1 + Rng.index(std::max<size_t>(1, N / 8));
    for (size_t K = 0; K != R; ++K) {
      std::vector<double> U(N), V(N);
      for (size_t I = 0; I != N; ++I) {
        U[I] = Rng.gaussian();
        V[I] = Rng.gaussian();
      }
      double Scale = Rng.uniform(1.0, 4.0) / static_cast<double>(K + 1);
      for (size_t I = 0; I != N; ++I)
        for (size_t J = 0; J != N; ++J)
          A.at(I, J) += Scale * U[I] * V[J];
    }
    // Tiny noise floor.
    for (double &X : A.data())
      X += Rng.gaussian(0.0, 0.01);
    break;
  }
  case SVDGen::MediumRank: {
    size_t R = std::max<size_t>(2, N / 3);
    for (size_t K = 0; K != R; ++K) {
      std::vector<double> U(N), V(N);
      for (size_t I = 0; I != N; ++I) {
        U[I] = Rng.gaussian();
        V[I] = Rng.gaussian();
      }
      double Scale = 2.0 * std::pow(0.8, static_cast<double>(K));
      for (size_t I = 0; I != N; ++I)
        for (size_t J = 0; J != N; ++J)
          A.at(I, J) += Scale * U[I] * V[J];
    }
    break;
  }
  case SVDGen::FullRandom:
    for (double &X : A.data())
      X = Rng.uniform(-1.0, 1.0);
    break;
  case SVDGen::Sparse: {
    double Density = Rng.uniform(0.01, 0.1);
    for (double &X : A.data())
      if (Rng.chance(Density))
        X = Rng.gaussian(0.0, 2.0);
    break;
  }
  case SVDGen::BlockDiagonal: {
    size_t Blocks = 2 + Rng.index(3);
    size_t BlockSize = N / Blocks;
    for (size_t B = 0; B != Blocks; ++B) {
      size_t Lo = B * BlockSize;
      size_t Hi = B + 1 == Blocks ? N : Lo + BlockSize;
      // Each block is rank 1-2.
      size_t R = 1 + Rng.index(2);
      for (size_t K = 0; K != R; ++K) {
        std::vector<double> U(Hi - Lo), V(Hi - Lo);
        for (size_t I = 0; I != U.size(); ++I) {
          U[I] = Rng.gaussian();
          V[I] = Rng.gaussian();
        }
        for (size_t I = Lo; I != Hi; ++I)
          for (size_t J = Lo; J != Hi; ++J)
            A.at(I, J) += 2.0 * U[I - Lo] * V[J - Lo];
      }
    }
    break;
  }
  case SVDGen::SmoothOuter: {
    for (size_t I = 0; I != N; ++I)
      for (size_t J = 0; J != N; ++J) {
        double X = static_cast<double>(I) / static_cast<double>(N);
        double Y = static_cast<double>(J) / static_cast<double>(N);
        A.at(I, J) = std::sin(2.0 * M_PI * X) * std::cos(2.0 * M_PI * Y) +
                     0.5 * X * Y + Rng.gaussian(0.0, 0.002);
      }
    break;
  }
  }
  return A;
}

SVDBenchmark::SVDBenchmark(const Options &Opts) : Opts(Opts) {
  MethodParam = Space.addCategorical("svd.method", 3);
  RankFracParam = Space.addReal("svd.rankFraction", 0.02, 1.0,
                                /*LogScale=*/true);
  SubspaceItersParam = Space.addInteger("svd.subspaceIterations", 1, 8,
                                        /*LogScale=*/true);
  OversampleParam = Space.addInteger("svd.oversample", 2, 16,
                                     /*LogScale=*/true);
  PowerItersParam = Space.addInteger("svd.powerIterations", 0, 3);

  support::Rng Rng(Opts.Seed);
  Inputs.reserve(Opts.NumInputs);
  Tags.reserve(Opts.NumInputs);
  for (size_t I = 0; I != Opts.NumInputs; ++I) {
    size_t N = Opts.MinDim + Rng.index(Opts.MaxDim - Opts.MinDim + 1);
    SVDGen G = static_cast<SVDGen>(Rng.index(NumSVDGens));
    Inputs.push_back(generateSVDInput(G, N, Rng));
    Tags.push_back(svdGenName(G));
  }
}

std::vector<runtime::FeatureInfo> SVDBenchmark::features() const {
  return {{"range", 3}, {"deviation", 3}, {"zeros", 3}};
}

static size_t svdSampleSize(unsigned Level, size_t Total) {
  size_t S = static_cast<size_t>(64) << (3 * Level); // 64 / 512 / 4096
  return std::min(S, Total);
}

double SVDBenchmark::extractFeature(size_t Input, unsigned Feature,
                                    unsigned Level,
                                    support::CostCounter &Cost) const {
  assert(Input < Inputs.size() && "input out of range");
  assert(Feature < 3 && Level < 3 && "feature/level out of range");
  const linalg::Matrix &A = Inputs[Input];
  const std::vector<double> &D = A.data();
  size_t Total = D.size();
  size_t S = svdSampleSize(Level, Total);
  size_t Stride = std::max<size_t>(1, Total / S);

  switch (Feature) {
  case 0: { // range
    double Lo = 1e300, Hi = -1e300;
    size_t Count = 0;
    for (size_t I = 0; I < Total && Count < S; I += Stride, ++Count) {
      Lo = std::min(Lo, D[I]);
      Hi = std::max(Hi, D[I]);
    }
    Cost.addCompares(2.0 * static_cast<double>(Count));
    return Count > 0 ? Hi - Lo : 0.0;
  }
  case 1: { // deviation
    double Sum = 0.0, SumSq = 0.0;
    size_t Count = 0;
    for (size_t I = 0; I < Total && Count < S; I += Stride, ++Count) {
      Sum += D[I];
      SumSq += D[I] * D[I];
    }
    Cost.addFlops(2.0 * static_cast<double>(Count));
    if (Count == 0)
      return 0.0;
    double Mean = Sum / static_cast<double>(Count);
    double Var = SumSq / static_cast<double>(Count) - Mean * Mean;
    return Var > 0.0 ? std::sqrt(Var) : 0.0;
  }
  case 2: { // zeros: fraction of near-zero entries
    size_t Zeros = 0, Count = 0;
    for (size_t I = 0; I < Total && Count < S; I += Stride, ++Count)
      if (std::abs(D[I]) < 1e-9)
        ++Zeros;
    Cost.addCompares(static_cast<double>(Count));
    return Count > 0 ? static_cast<double>(Zeros) / static_cast<double>(Count)
                     : 0.0;
  }
  default:
    return 0.0;
  }
}

SVDBenchmark::Method
SVDBenchmark::methodFor(const runtime::Configuration &Config) const {
  return static_cast<Method>(Config.category(MethodParam));
}

unsigned SVDBenchmark::rankFor(const runtime::Configuration &Config,
                               size_t Dim) const {
  double Frac = Config.real(RankFracParam);
  unsigned K = static_cast<unsigned>(
      std::round(Frac * static_cast<double>(Dim)));
  return std::max(1u, std::min<unsigned>(K, static_cast<unsigned>(Dim)));
}

runtime::RunResult
SVDBenchmark::run(size_t Input, const runtime::Configuration &Config,
                  support::CostCounter &Cost) const {
  assert(Input < Inputs.size() && "input out of range");
  double Before = Cost.units();
  const linalg::Matrix &A = Inputs[Input];
  size_t N = A.rows();
  unsigned K = rankFor(Config, N);

  // Per-run RNG: deterministic in (input, configuration).
  support::Rng Rng(0xABCD0000 + Input * 131 + Config.category(MethodParam));

  linalg::SVDResult SVD;
  switch (methodFor(Config)) {
  case Method::Jacobi:
    SVD = linalg::jacobiSVD(A, {}, &Cost);
    break;
  case Method::Subspace:
    SVD = linalg::subspaceSVD(
        A, K, static_cast<unsigned>(Config.integer(SubspaceItersParam)), Rng,
        &Cost);
    break;
  case Method::Randomized:
    SVD = linalg::randomizedSVD(
        A, K, static_cast<unsigned>(Config.integer(OversampleParam)),
        static_cast<unsigned>(Config.integer(PowerItersParam)), Rng, &Cost);
    break;
  }

  linalg::Matrix Ak = linalg::rankKApprox(SVD, K, &Cost);
  double ErrInitial = A.frobeniusNorm();  // RMS(A - 0) up to a constant
  double ErrFinal = A.frobeniusDistance(Ak);

  runtime::RunResult R;
  R.TimeUnits = Cost.units() - Before;
  if (ErrInitial <= 1e-300)
    R.Accuracy = 16.0; // zero matrix: any reconstruction is exact
  else if (ErrFinal <= 1e-300)
    R.Accuracy = 16.0;
  else
    R.Accuracy = std::log10(ErrInitial / ErrFinal);
  return R;
}

//===----------------------------------------------------------------------===//
// Registry entry: the paper's svd (matrix approximation) row.
//===----------------------------------------------------------------------===//

#include "registry/BenchmarkRegistry.h"

static registry::RegisterBenchmark
    RegSVD(std::make_unique<registry::SimpleBenchmarkFactory>(
        "svd", "Low-rank matrix approximation via Jacobi/randomized SVD",
        /*SuiteOrder=*/5, /*ProgramSeed=*/106, /*PipelineSeed=*/1006,
        [](double Scale, uint64_t Seed) -> registry::ProgramPtr {
          SVDBenchmark::Options O;
          O.NumInputs = registry::scaledInputCount(Scale, 160);
          O.MinDim = 20;
          O.MaxDim = 36;
          O.Seed = Seed;
          return std::make_unique<SVDBenchmark>(O);
        }));

//===- benchmarks/Poisson2DBenchmark.cpp -------------------------------------=//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "benchmarks/Poisson2DBenchmark.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace pbt;
using namespace pbt::bench;

const char *bench::poissonGenName(PoissonGen G) {
  switch (G) {
  case PoissonGen::SmoothModes:
    return "smooth-modes";
  case PoissonGen::HighFrequency:
    return "high-frequency";
  case PoissonGen::RandomNoise:
    return "random-noise";
  case PoissonGen::PointSources:
    return "point-sources";
  case PoissonGen::SparseSmooth:
    return "sparse-smooth";
  case PoissonGen::Mixed:
    return "mixed";
  }
  return "unknown";
}

pde::Grid2D bench::generatePoissonInput(PoissonGen G, size_t N,
                                        support::Rng &Rng) {
  pde::Grid2D F(N);
  auto AddMode = [&](unsigned KX, unsigned KY, double Amp) {
    for (size_t I = 1; I + 1 < N; ++I)
      for (size_t J = 1; J + 1 < N; ++J) {
        double X = static_cast<double>(I) / static_cast<double>(N - 1);
        double Y = static_cast<double>(J) / static_cast<double>(N - 1);
        F.at(I, J) += Amp * std::sin(M_PI * KX * X) * std::sin(M_PI * KY * Y);
      }
  };
  switch (G) {
  case PoissonGen::SmoothModes: {
    unsigned Modes = 1 + static_cast<unsigned>(Rng.index(3));
    for (unsigned M = 0; M != Modes; ++M)
      AddMode(1 + static_cast<unsigned>(Rng.index(3)),
              1 + static_cast<unsigned>(Rng.index(3)),
              Rng.uniform(0.5, 4.0));
    break;
  }
  case PoissonGen::HighFrequency: {
    unsigned HalfN = static_cast<unsigned>((N - 1) / 2);
    unsigned Modes = 1 + static_cast<unsigned>(Rng.index(3));
    for (unsigned M = 0; M != Modes; ++M)
      AddMode(HalfN - static_cast<unsigned>(Rng.index(4)),
              HalfN - static_cast<unsigned>(Rng.index(4)),
              Rng.uniform(0.5, 4.0));
    break;
  }
  case PoissonGen::RandomNoise:
    for (size_t I = 1; I + 1 < N; ++I)
      for (size_t J = 1; J + 1 < N; ++J)
        F.at(I, J) = Rng.gaussian(0.0, 2.0);
    break;
  case PoissonGen::PointSources: {
    unsigned Sources = 1 + static_cast<unsigned>(Rng.index(6));
    for (unsigned S = 0; S != Sources; ++S) {
      size_t I = 1 + Rng.index(N - 2);
      size_t J = 1 + Rng.index(N - 2);
      F.at(I, J) += Rng.uniform(-50.0, 50.0);
    }
    break;
  }
  case PoissonGen::SparseSmooth: {
    // Smooth field restricted to a random quadrant-ish box.
    size_t LoI = 1 + Rng.index(N / 2);
    size_t LoJ = 1 + Rng.index(N / 2);
    size_t HiI = std::min(N - 1, LoI + N / 3);
    size_t HiJ = std::min(N - 1, LoJ + N / 3);
    double Amp = Rng.uniform(1.0, 4.0);
    for (size_t I = LoI; I < HiI; ++I)
      for (size_t J = LoJ; J < HiJ; ++J) {
        double X = static_cast<double>(I - LoI) / std::max<size_t>(1, HiI - LoI);
        double Y = static_cast<double>(J - LoJ) / std::max<size_t>(1, HiJ - LoJ);
        F.at(I, J) = Amp * std::sin(M_PI * X) * std::sin(M_PI * Y);
      }
    break;
  }
  case PoissonGen::Mixed: {
    AddMode(1, 1, Rng.uniform(0.5, 2.0));
    unsigned HalfN = static_cast<unsigned>((N - 1) / 2);
    AddMode(HalfN, HalfN - 1, Rng.uniform(0.5, 2.0));
    break;
  }
  }
  return F;
}

Poisson2DBenchmark::Poisson2DBenchmark(const Options &Opts) : Opts(Opts) {
  assert(pde::Grid2D::validMultigridSize(Opts.GridN) &&
         "grid size must be 2^l + 1");
  Scheme = PDEConfigScheme::declare(Space, "poisson2d",
                                    /*MaxStationaryIters=*/4000,
                                    /*MaxCGIters=*/400);

  support::Rng Rng(Opts.Seed);
  Inputs.reserve(Opts.NumInputs);
  References.reserve(Opts.NumInputs);
  Tags.reserve(Opts.NumInputs);
  for (size_t I = 0; I != Opts.NumInputs; ++I) {
    PoissonGen G = static_cast<PoissonGen>(Rng.index(NumPoissonGens));
    Inputs.push_back(generatePoissonInput(G, Opts.GridN, Rng));
    Tags.push_back(poissonGenName(G));
    // Ground truth for the accuracy metric; amortised at dataset build
    // time, never charged to the cost model.
    References.push_back(pde::referenceSolution(Inputs.back()));
    ReferenceRMS.push_back(References.back().rms());
  }
}

std::vector<runtime::FeatureInfo> Poisson2DBenchmark::features() const {
  return {{"residual", 3}, {"deviation", 3}, {"zeros", 3}};
}

static size_t pdeSampleSize(unsigned Level, size_t Total) {
  size_t S = static_cast<size_t>(64) << (2 * Level); // 64 / 256 / 1024
  return std::min(S, Total);
}

double Poisson2DBenchmark::extractFeature(size_t Input, unsigned Feature,
                                          unsigned Level,
                                          support::CostCounter &Cost) const {
  assert(Input < Inputs.size() && "input out of range");
  assert(Feature < 3 && Level < 3 && "feature/level out of range");
  const std::vector<double> &D = Inputs[Input].data();
  size_t Total = D.size();
  size_t S = pdeSampleSize(Level, Total);
  size_t Stride = std::max<size_t>(1, Total / S);

  switch (Feature) {
  case 0: { // residual measure: RMS of the RHS sample (residual of the
            // zero guess)
    double SumSq = 0.0;
    size_t Count = 0;
    for (size_t I = 0; I < Total && Count < S; I += Stride, ++Count)
      SumSq += D[I] * D[I];
    Cost.addFlops(2.0 * static_cast<double>(Count));
    return Count > 0 ? std::sqrt(SumSq / static_cast<double>(Count)) : 0.0;
  }
  case 1: { // deviation
    double Sum = 0.0, SumSq = 0.0;
    size_t Count = 0;
    for (size_t I = 0; I < Total && Count < S; I += Stride, ++Count) {
      Sum += D[I];
      SumSq += D[I] * D[I];
    }
    Cost.addFlops(2.0 * static_cast<double>(Count));
    if (Count == 0)
      return 0.0;
    double Mean = Sum / static_cast<double>(Count);
    double Var = SumSq / static_cast<double>(Count) - Mean * Mean;
    return Var > 0.0 ? std::sqrt(Var) : 0.0;
  }
  case 2: { // zeros
    size_t Zeros = 0, Count = 0;
    for (size_t I = 0; I < Total && Count < S; I += Stride, ++Count)
      if (std::abs(D[I]) < 1e-12)
        ++Zeros;
    Cost.addCompares(static_cast<double>(Count));
    return Count > 0 ? static_cast<double>(Zeros) / static_cast<double>(Count)
                     : 0.0;
  }
  default:
    return 0.0;
  }
}

runtime::RunResult
Poisson2DBenchmark::run(size_t Input, const runtime::Configuration &Config,
                        support::CostCounter &Cost) const {
  assert(Input < Inputs.size() && "input out of range");
  double Before = Cost.units();
  const pde::Grid2D &F = Inputs[Input];

  pde::Grid2D U;
  switch (Scheme.solver(Config)) {
  case pde::SolverKind::Multigrid:
    U = pde::multigridSolve(F, Scheme.multigrid(Config), &Cost);
    break;
  case pde::SolverKind::Jacobi:
  case pde::SolverKind::GaussSeidel:
  case pde::SolverKind::SOR:
    U = pde::stationarySolve(F, Scheme.solver(Config),
                             Scheme.stationary(Config), &Cost);
    break;
  case pde::SolverKind::ConjugateGradient:
    U = pde::cgSolve(F, Scheme.cg(Config), &Cost);
    break;
  case pde::SolverKind::Direct:
    U = pde::directSolve(F, &Cost);
    break;
  }

  runtime::RunResult R;
  R.TimeUnits = Cost.units() - Before;
  double ErrInitial = ReferenceRMS[Input]; // RMS(ref - 0)
  double ErrFinal = U.rmsDistance(References[Input]);
  if (ErrInitial <= 1e-300)
    R.Accuracy = 16.0; // zero RHS: the zero guess is already exact
  else if (ErrFinal <= 1e-300)
    R.Accuracy = 16.0;
  else
    R.Accuracy = std::min(16.0, std::log10(ErrInitial / ErrFinal));
  return R;
}

//===----------------------------------------------------------------------===//
// Registry entry: the paper's poisson2d row.
//===----------------------------------------------------------------------===//

#include "registry/BenchmarkRegistry.h"

static registry::RegisterBenchmark
    RegPoisson2D(std::make_unique<registry::SimpleBenchmarkFactory>(
        "poisson2d", "2D Poisson solver selection (direct/SOR/multigrid)",
        /*SuiteOrder=*/6, /*ProgramSeed=*/107, /*PipelineSeed=*/1007,
        [](double Scale, uint64_t Seed) -> registry::ProgramPtr {
          Poisson2DBenchmark::Options O;
          O.NumInputs = registry::scaledInputCount(Scale, 100);
          O.GridN = 33;
          O.Seed = Seed;
          return std::make_unique<Poisson2DBenchmark>(O);
        }));

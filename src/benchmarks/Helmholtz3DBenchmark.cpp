//===- benchmarks/Helmholtz3DBenchmark.cpp -----------------------------------=//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "benchmarks/Helmholtz3DBenchmark.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace pbt;
using namespace pbt::bench;

const char *bench::helmholtzGenName(HelmholtzGen G) {
  switch (G) {
  case HelmholtzGen::SmoothModes:
    return "smooth-modes";
  case HelmholtzGen::HighFrequency:
    return "high-frequency";
  case HelmholtzGen::RandomNoise:
    return "random-noise";
  case HelmholtzGen::PointSources:
    return "point-sources";
  case HelmholtzGen::SparseSmooth:
    return "sparse-smooth";
  }
  return "unknown";
}

const char *bench::betaGenName(BetaGen G) {
  switch (G) {
  case BetaGen::Constant:
    return "const-beta";
  case BetaGen::SmoothContrast:
    return "smooth-beta";
  case BetaGen::Layered:
    return "layered-beta";
  case BetaGen::LogNormal:
    return "lognormal-beta";
  }
  return "unknown";
}

pde::Grid3D bench::generateHelmholtzRHS(HelmholtzGen G, size_t N,
                                        support::Rng &Rng) {
  pde::Grid3D F(N);
  auto AddMode = [&](unsigned KX, unsigned KY, unsigned KZ, double Amp) {
    for (size_t I = 1; I + 1 < N; ++I)
      for (size_t J = 1; J + 1 < N; ++J)
        for (size_t K = 1; K + 1 < N; ++K) {
          double X = static_cast<double>(I) / static_cast<double>(N - 1);
          double Y = static_cast<double>(J) / static_cast<double>(N - 1);
          double Z = static_cast<double>(K) / static_cast<double>(N - 1);
          F.at(I, J, K) += Amp * std::sin(M_PI * KX * X) *
                           std::sin(M_PI * KY * Y) * std::sin(M_PI * KZ * Z);
        }
  };
  switch (G) {
  case HelmholtzGen::SmoothModes:
    AddMode(1, 1, 1, Rng.uniform(0.5, 4.0));
    if (Rng.chance(0.5))
      AddMode(2, 1, 2, Rng.uniform(0.3, 2.0));
    break;
  case HelmholtzGen::HighFrequency: {
    unsigned HalfN = static_cast<unsigned>((N - 1) / 2);
    AddMode(HalfN, HalfN, HalfN, Rng.uniform(0.5, 4.0));
    break;
  }
  case HelmholtzGen::RandomNoise:
    for (size_t I = 1; I + 1 < N; ++I)
      for (size_t J = 1; J + 1 < N; ++J)
        for (size_t K = 1; K + 1 < N; ++K)
          F.at(I, J, K) = Rng.gaussian(0.0, 2.0);
    break;
  case HelmholtzGen::PointSources: {
    unsigned Sources = 1 + static_cast<unsigned>(Rng.index(5));
    for (unsigned S = 0; S != Sources; ++S)
      F.at(1 + Rng.index(N - 2), 1 + Rng.index(N - 2), 1 + Rng.index(N - 2)) +=
          Rng.uniform(-40.0, 40.0);
    break;
  }
  case HelmholtzGen::SparseSmooth: {
    size_t Lo = 1 + Rng.index(std::max<size_t>(1, N / 2));
    size_t Hi = std::min(N - 1, Lo + N / 3 + 1);
    double Amp = Rng.uniform(1.0, 4.0);
    for (size_t I = Lo; I < Hi; ++I)
      for (size_t J = Lo; J < Hi; ++J)
        for (size_t K = Lo; K < Hi; ++K)
          F.at(I, J, K) = Amp;
    break;
  }
  }
  return F;
}

pde::Grid3D bench::generateBetaField(BetaGen G, size_t N, support::Rng &Rng) {
  pde::Grid3D B(N, 1.0);
  switch (G) {
  case BetaGen::Constant:
    break;
  case BetaGen::SmoothContrast: {
    double Contrast = Rng.uniform(1.0, 8.0);
    for (size_t I = 0; I != N; ++I)
      for (size_t J = 0; J != N; ++J)
        for (size_t K = 0; K != N; ++K) {
          double X = static_cast<double>(I) / static_cast<double>(N - 1);
          double Y = static_cast<double>(J) / static_cast<double>(N - 1);
          double Z = static_cast<double>(K) / static_cast<double>(N - 1);
          B.at(I, J, K) =
              1.0 + Contrast * 0.5 *
                        (1.0 + std::sin(M_PI * X) * std::sin(M_PI * Y) *
                                   std::sin(M_PI * Z));
        }
    break;
  }
  case BetaGen::Layered: {
    double High = Rng.uniform(5.0, 50.0);
    size_t Layer = 1 + Rng.index(N - 1);
    for (size_t I = 0; I != N; ++I)
      for (size_t J = 0; J != N; ++J)
        for (size_t K = 0; K != N; ++K)
          B.at(I, J, K) = I < Layer ? 1.0 : High;
    break;
  }
  case BetaGen::LogNormal:
    for (double &X : B.data())
      X = std::exp(Rng.gaussian(0.0, 0.8));
    break;
  }
  return B;
}

Helmholtz3DBenchmark::Helmholtz3DBenchmark(const Options &Opts) : Opts(Opts) {
  assert(pde::Grid3D::validMultigridSize(Opts.GridN) &&
         "grid size must be 2^l + 1");
  Scheme = PDEConfigScheme::declare(Space, "helmholtz3d",
                                    /*MaxStationaryIters=*/2000,
                                    /*MaxCGIters=*/300);

  support::Rng Rng(Opts.Seed);
  Problems.reserve(Opts.NumInputs);
  References.reserve(Opts.NumInputs);
  Tags.reserve(Opts.NumInputs);
  for (size_t I = 0; I != Opts.NumInputs; ++I) {
    HelmholtzGen FG = static_cast<HelmholtzGen>(Rng.index(NumHelmholtzGens));
    BetaGen BG = static_cast<BetaGen>(Rng.index(NumBetaGens));
    pde::HelmholtzProblem P;
    P.F = generateHelmholtzRHS(FG, Opts.GridN, Rng);
    P.Beta = generateBetaField(BG, Opts.GridN, Rng);
    P.Alpha = std::exp(Rng.uniform(std::log(0.1), std::log(100.0)));
    Problems.push_back(std::move(P));
    Tags.push_back(std::string(helmholtzGenName(FG)) + "/" + betaGenName(BG));
    References.push_back(pde::helmholtzReferenceSolution(Problems.back()));
    ReferenceRMS.push_back(References.back().rms());
  }
}

std::vector<runtime::FeatureInfo> Helmholtz3DBenchmark::features() const {
  return {{"residual", 3}, {"deviation", 3}, {"zeros", 3}};
}

static size_t h3dSampleSize(unsigned Level, size_t Total) {
  size_t S = static_cast<size_t>(64) << (2 * Level);
  return std::min(S, Total);
}

double Helmholtz3DBenchmark::extractFeature(size_t Input, unsigned Feature,
                                            unsigned Level,
                                            support::CostCounter &Cost) const {
  assert(Input < Problems.size() && "input out of range");
  assert(Feature < 3 && Level < 3 && "feature/level out of range");
  const std::vector<double> &D = Problems[Input].F.data();
  size_t Total = D.size();
  size_t S = h3dSampleSize(Level, Total);
  size_t Stride = std::max<size_t>(1, Total / S);

  switch (Feature) {
  case 0: { // residual measure
    double SumSq = 0.0;
    size_t Count = 0;
    for (size_t I = 0; I < Total && Count < S; I += Stride, ++Count)
      SumSq += D[I] * D[I];
    Cost.addFlops(2.0 * static_cast<double>(Count));
    return Count > 0 ? std::sqrt(SumSq / static_cast<double>(Count)) : 0.0;
  }
  case 1: { // deviation
    double Sum = 0.0, SumSq = 0.0;
    size_t Count = 0;
    for (size_t I = 0; I < Total && Count < S; I += Stride, ++Count) {
      Sum += D[I];
      SumSq += D[I] * D[I];
    }
    Cost.addFlops(2.0 * static_cast<double>(Count));
    if (Count == 0)
      return 0.0;
    double Mean = Sum / static_cast<double>(Count);
    double Var = SumSq / static_cast<double>(Count) - Mean * Mean;
    return Var > 0.0 ? std::sqrt(Var) : 0.0;
  }
  case 2: { // zeros
    size_t Zeros = 0, Count = 0;
    for (size_t I = 0; I < Total && Count < S; I += Stride, ++Count)
      if (std::abs(D[I]) < 1e-12)
        ++Zeros;
    Cost.addCompares(static_cast<double>(Count));
    return Count > 0 ? static_cast<double>(Zeros) / static_cast<double>(Count)
                     : 0.0;
  }
  default:
    return 0.0;
  }
}

runtime::RunResult
Helmholtz3DBenchmark::run(size_t Input, const runtime::Configuration &Config,
                          support::CostCounter &Cost) const {
  assert(Input < Problems.size() && "input out of range");
  double Before = Cost.units();
  const pde::HelmholtzProblem &P = Problems[Input];

  pde::Grid3D U;
  switch (Scheme.solver(Config)) {
  case pde::SolverKind::Multigrid:
    U = pde::helmholtzMultigridSolve(P, Scheme.multigrid(Config), &Cost);
    break;
  case pde::SolverKind::Jacobi:
  case pde::SolverKind::GaussSeidel:
  case pde::SolverKind::SOR:
    U = pde::helmholtzStationarySolve(P, Scheme.solver(Config),
                                      Scheme.stationary(Config), &Cost);
    break;
  case pde::SolverKind::ConjugateGradient:
    U = pde::helmholtzCGSolve(P, Scheme.cg(Config), &Cost);
    break;
  case pde::SolverKind::Direct:
    U = pde::helmholtzDirectSolve(P, &Cost);
    break;
  }

  runtime::RunResult R;
  R.TimeUnits = Cost.units() - Before;
  double ErrInitial = ReferenceRMS[Input];
  double ErrFinal = U.rmsDistance(References[Input]);
  if (ErrInitial <= 1e-300)
    R.Accuracy = 16.0;
  else if (ErrFinal <= 1e-300)
    R.Accuracy = 16.0;
  else
    R.Accuracy = std::min(16.0, std::log10(ErrInitial / ErrFinal));
  return R;
}

//===----------------------------------------------------------------------===//
// Registry entry: the paper's helmholtz3d row.
//===----------------------------------------------------------------------===//

#include "registry/BenchmarkRegistry.h"

static registry::RegisterBenchmark
    RegHelmholtz3D(std::make_unique<registry::SimpleBenchmarkFactory>(
        "helmholtz3d", "3D Helmholtz solver selection (paper helmholtz3d)",
        /*SuiteOrder=*/7, /*ProgramSeed=*/108, /*PipelineSeed=*/1008,
        [](double Scale, uint64_t Seed) -> registry::ProgramPtr {
          Helmholtz3DBenchmark::Options O;
          O.NumInputs = registry::scaledInputCount(Scale, 100);
          O.GridN = 9;
          O.Seed = Seed;
          return std::make_unique<Helmholtz3DBenchmark>(O);
        }));

//===- benchmarks/BinPackingAlgorithms.cpp -----------------------------------=//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "benchmarks/BinPackingAlgorithms.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace pbt;
using namespace pbt::bench;

const char *bench::packAlgoName(PackAlgo A) {
  switch (A) {
  case PackAlgo::AlmostWorstFit:
    return "AlmostWorstFit";
  case PackAlgo::AlmostWorstFitDecreasing:
    return "AlmostWorstFitDecreasing";
  case PackAlgo::BestFit:
    return "BestFit";
  case PackAlgo::BestFitDecreasing:
    return "BestFitDecreasing";
  case PackAlgo::FirstFit:
    return "FirstFit";
  case PackAlgo::FirstFitDecreasing:
    return "FirstFitDecreasing";
  case PackAlgo::LastFit:
    return "LastFit";
  case PackAlgo::LastFitDecreasing:
    return "LastFitDecreasing";
  case PackAlgo::ModifiedFirstFitDecreasing:
    return "ModifiedFirstFitDecreasing";
  case PackAlgo::NextFit:
    return "NextFit";
  case PackAlgo::NextFitDecreasing:
    return "NextFitDecreasing";
  case PackAlgo::WorstFit:
    return "WorstFit";
  case PackAlgo::WorstFitDecreasing:
    return "WorstFitDecreasing";
  }
  return "unknown";
}

double PackingResult::averageOccupancy() const {
  if (BinLoads.empty())
    return 1.0; // empty packing is vacuously perfect
  double Sum = 0.0;
  for (double L : BinLoads)
    Sum += L;
  return Sum / static_cast<double>(BinLoads.size());
}

namespace {
/// Online bin state shared by all heuristics.
class Bins {
public:
  explicit Bins(support::CostCounter &Cost) : Cost(Cost) {}

  size_t count() const { return Loads.size(); }
  double load(size_t B) const { return Loads[B]; }

  bool fits(size_t B, double Item) {
    Cost.addCompares(1.0);
    return Loads[B] + Item <= 1.0 + 1e-12;
  }

  void place(size_t B, double Item) {
    assert(Loads[B] + Item <= 1.0 + 1e-9 && "bin overflow");
    Loads[B] += Item;
    Cost.addMoves(1.0);
  }

  size_t open(double Item) {
    assert(Item <= 1.0 + 1e-9 && "item larger than a bin");
    Loads.push_back(Item);
    Cost.addMoves(1.0);
    return Loads.size() - 1;
  }

  std::vector<double> take() { return std::move(Loads); }

private:
  std::vector<double> Loads;
  support::CostCounter &Cost;
};
} // namespace

/// Places one item according to the non-decreasing family rules.
static void placeOnline(Bins &B, PackAlgo Base, double Item) {
  size_t N = B.count();
  switch (Base) {
  case PackAlgo::NextFit: {
    if (N > 0 && B.fits(N - 1, Item)) {
      B.place(N - 1, Item);
      return;
    }
    B.open(Item);
    return;
  }
  case PackAlgo::FirstFit: {
    for (size_t I = 0; I != N; ++I)
      if (B.fits(I, Item)) {
        B.place(I, Item);
        return;
      }
    B.open(Item);
    return;
  }
  case PackAlgo::LastFit: {
    for (size_t I = N; I != 0; --I)
      if (B.fits(I - 1, Item)) {
        B.place(I - 1, Item);
        return;
      }
    B.open(Item);
    return;
  }
  case PackAlgo::BestFit: {
    size_t Best = N;
    double BestResidual = 2.0;
    for (size_t I = 0; I != N; ++I)
      if (B.fits(I, Item)) {
        double Residual = 1.0 - B.load(I) - Item;
        if (Residual < BestResidual) {
          BestResidual = Residual;
          Best = I;
        }
      }
    if (Best != N) {
      B.place(Best, Item);
      return;
    }
    B.open(Item);
    return;
  }
  case PackAlgo::WorstFit: {
    size_t Best = N;
    double BestResidual = -1.0;
    for (size_t I = 0; I != N; ++I)
      if (B.fits(I, Item)) {
        double Residual = 1.0 - B.load(I) - Item;
        if (Residual > BestResidual) {
          BestResidual = Residual;
          Best = I;
        }
      }
    if (Best != N) {
      B.place(Best, Item);
      return;
    }
    B.open(Item);
    return;
  }
  case PackAlgo::AlmostWorstFit: {
    // Second-emptiest bin that fits; emptiest if it is the only one.
    size_t First = N, Second = N;
    double FirstResidual = -1.0, SecondResidual = -1.0;
    for (size_t I = 0; I != N; ++I)
      if (B.fits(I, Item)) {
        double Residual = 1.0 - B.load(I) - Item;
        if (Residual > FirstResidual) {
          Second = First;
          SecondResidual = FirstResidual;
          First = I;
          FirstResidual = Residual;
        } else if (Residual > SecondResidual) {
          Second = I;
          SecondResidual = Residual;
        }
      }
    if (Second != N) {
      B.place(Second, Item);
      return;
    }
    if (First != N) {
      B.place(First, Item);
      return;
    }
    B.open(Item);
    return;
  }
  default:
    assert(false && "not an online placement rule");
  }
}

/// Sorts a copy of the items in decreasing order, charging the cost model.
static std::vector<double> sortedDecreasing(const std::vector<double> &Items,
                                            support::CostCounter &Cost) {
  std::vector<double> S = Items;
  std::sort(S.begin(), S.end(), std::greater<double>());
  double N = static_cast<double>(S.size());
  if (N > 1) {
    Cost.addCompares(N * std::log2(N));
    Cost.addMoves(N);
  }
  return S;
}

/// Johnson-Garey Modified First Fit Decreasing.
static PackingResult packMFFD(const std::vector<double> &Items,
                              support::CostCounter &Cost) {
  std::vector<double> S = sortedDecreasing(Items, Cost);
  Bins B(Cost);

  // Phase 1: every item > 1/2 opens its own bin (decreasing order).
  std::vector<double> Small;
  for (double Item : S) {
    Cost.addCompares(1.0);
    if (Item > 0.5)
      B.open(Item);
    else
      Small.push_back(Item);
  }
  size_t LargeBins = B.count();

  // Phase 2: visit large bins from the largest gap (last opened) to the
  // smallest. If the two smallest remaining small items fit together, place
  // the smallest, then the largest small item that still fits.
  // Small is sorted decreasing; treat it as a deque.
  size_t Head = 0;            // largest remaining small item
  size_t Tail = Small.size(); // one-past smallest remaining
  for (size_t BinPlus1 = LargeBins; BinPlus1 != 0 && Tail - Head >= 2;
       --BinPlus1) {
    size_t Bin = BinPlus1 - 1;
    double Gap = 1.0 - B.load(Bin);
    double Smallest = Small[Tail - 1];
    double SecondSmallest = Small[Tail - 2];
    Cost.addCompares(2.0);
    if (Smallest + SecondSmallest > Gap)
      continue; // cannot fit two items; leave the bin for phase 3
    // Place the smallest item...
    B.place(Bin, Smallest);
    --Tail;
    Gap -= Smallest;
    // ...then the largest remaining small item that fits the residual gap.
    for (size_t I = Head; I != Tail; ++I) {
      Cost.addCompares(1.0);
      if (Small[I] <= Gap + 1e-12) {
        B.place(Bin, Small[I]);
        Small.erase(Small.begin() + static_cast<long>(I));
        --Tail;
        break;
      }
    }
  }

  // Phase 3: First Fit for everything left.
  for (size_t I = Head; I != Tail; ++I)
    placeOnline(B, PackAlgo::FirstFit, Small[I]);

  PackingResult R;
  R.BinLoads = B.take();
  return R;
}

PackingResult bench::pack(PackAlgo Algo, const std::vector<double> &Items,
                          support::CostCounter &Cost) {
#ifndef NDEBUG
  for (double Item : Items)
    assert(Item > 0.0 && Item <= 1.0 + 1e-12 && "item size out of (0,1]");
#endif

  if (Algo == PackAlgo::ModifiedFirstFitDecreasing)
    return packMFFD(Items, Cost);

  // Map the *Decreasing variants onto their base rule.
  PackAlgo Base = Algo;
  bool Decreasing = false;
  switch (Algo) {
  case PackAlgo::AlmostWorstFitDecreasing:
    Base = PackAlgo::AlmostWorstFit;
    Decreasing = true;
    break;
  case PackAlgo::BestFitDecreasing:
    Base = PackAlgo::BestFit;
    Decreasing = true;
    break;
  case PackAlgo::FirstFitDecreasing:
    Base = PackAlgo::FirstFit;
    Decreasing = true;
    break;
  case PackAlgo::LastFitDecreasing:
    Base = PackAlgo::LastFit;
    Decreasing = true;
    break;
  case PackAlgo::NextFitDecreasing:
    Base = PackAlgo::NextFit;
    Decreasing = true;
    break;
  case PackAlgo::WorstFitDecreasing:
    Base = PackAlgo::WorstFit;
    Decreasing = true;
    break;
  default:
    break;
  }

  Bins B(Cost);
  if (Decreasing) {
    for (double Item : sortedDecreasing(Items, Cost))
      placeOnline(B, Base, Item);
  } else {
    for (double Item : Items)
      placeOnline(B, Base, Item);
  }
  PackingResult R;
  R.BinLoads = B.take();
  return R;
}

bool bench::packingIsValid(const PackingResult &R,
                           const std::vector<double> &Items, double Epsilon) {
  double ItemSum = 0.0;
  for (double Item : Items)
    ItemSum += Item;
  double LoadSum = 0.0;
  for (double L : R.BinLoads) {
    if (L > 1.0 + Epsilon)
      return false; // overfull bin
    LoadSum += L;
  }
  return std::abs(ItemSum - LoadSum) <= Epsilon * (1.0 + ItemSum);
}

//===----------------------------------------------------------------------===//
// Input generators
//===----------------------------------------------------------------------===//

const char *bench::packGenName(PackGen G) {
  switch (G) {
  case PackGen::PerfectSplit:
    return "perfect-split";
  case PackGen::SmallUniform:
    return "small-uniform";
  case PackGen::WideUniform:
    return "wide-uniform";
  case PackGen::Bimodal:
    return "bimodal";
  case PackGen::Triplets:
    return "triplets";
  case PackGen::SortedAscending:
    return "sorted-ascending";
  case PackGen::Skewed:
    return "skewed";
  }
  return "unknown";
}

std::vector<double> bench::generatePackInput(PackGen G, size_t N,
                                             support::Rng &Rng) {
  std::vector<double> V;
  V.reserve(N);
  switch (G) {
  case PackGen::PerfectSplit: {
    // Split unit bins into 2-4 parts until N items exist, then shuffle.
    while (V.size() < N) {
      unsigned Parts = 2 + static_cast<unsigned>(Rng.index(3));
      double Remaining = 1.0;
      for (unsigned P = 0; P + 1 < Parts; ++P) {
        double Mean = Remaining / static_cast<double>(Parts - P);
        double Part =
            std::clamp(Rng.uniform(0.4 * Mean, 1.6 * Mean), 0.02, Remaining - 0.02 * (Parts - P - 1));
        V.push_back(Part);
        Remaining -= Part;
      }
      V.push_back(Remaining);
    }
    V.resize(N);
    Rng.shuffle(V);
    break;
  }
  case PackGen::SmallUniform:
    for (size_t I = 0; I != N; ++I)
      V.push_back(Rng.uniform(0.05, 0.35));
    break;
  case PackGen::WideUniform:
    // The 0.5 upper bound keeps instances packable to high occupancy by
    // good heuristics (mirroring the paper's setup, whose one-level
    // baseline still reached 97.8% accuracy satisfaction) while spreading
    // quality across algorithms.
    for (size_t I = 0; I != N; ++I)
      V.push_back(Rng.uniform(0.1, 0.5));
    break;
  case PackGen::Bimodal:
    // Complementary pairs around 0.6/0.4: pairing-aware algorithms (BFD,
    // MFFD) can approach occupancy 1, naive ones cannot.
    for (size_t I = 0; I != N; ++I) {
      double Big = Rng.uniform(0.56, 0.64);
      V.push_back(Rng.chance(0.5) ? Big
                                  : std::clamp(1.0 - Big +
                                                   Rng.uniform(-0.015, 0.015),
                                               0.02, 1.0));
    }
    break;
  case PackGen::Triplets:
    for (size_t I = 0; I != N; ++I)
      V.push_back(Rng.uniform(0.32, 0.3334));
    break;
  case PackGen::SortedAscending:
    for (size_t I = 0; I != N; ++I)
      V.push_back(Rng.uniform(0.05, 0.4));
    std::sort(V.begin(), V.end());
    break;
  case PackGen::Skewed:
    for (size_t I = 0; I != N; ++I) {
      double X = std::min(0.5, Rng.exponential(6.0) + 0.02);
      V.push_back(X);
    }
    break;
  }
  return V;
}

//===- benchmarks/BinPackingBenchmark.cpp ------------------------------------=//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "benchmarks/BinPackingBenchmark.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace pbt;
using namespace pbt::bench;

BinPackingBenchmark::BinPackingBenchmark(const Options &Opts) : Opts(Opts) {
  AlgoParam = Space.addCategorical("binpacking.algorithm", NumPackAlgos);

  support::Rng Rng(Opts.Seed);
  Inputs.reserve(Opts.NumInputs);
  Tags.reserve(Opts.NumInputs);
  for (size_t I = 0; I != Opts.NumInputs; ++I) {
    size_t N = Opts.MinItems + Rng.index(Opts.MaxItems - Opts.MinItems + 1);
    PackGen G = static_cast<PackGen>(Rng.index(NumPackGens));
    Inputs.push_back(generatePackInput(G, N, Rng));
    Tags.push_back(packGenName(G));
  }
}

std::vector<runtime::FeatureInfo> BinPackingBenchmark::features() const {
  return {{"average", 3}, {"deviation", 3}, {"range", 3}, {"sortedness", 3}};
}

static size_t packSampleSize(unsigned Level, size_t N) {
  size_t S = static_cast<size_t>(24) << (2 * Level);
  return std::min(S, N);
}

double BinPackingBenchmark::extractFeature(size_t Input, unsigned Feature,
                                           unsigned Level,
                                           support::CostCounter &Cost) const {
  assert(Input < Inputs.size() && "input out of range");
  assert(Feature < 4 && Level < 3 && "feature/level out of range");
  const std::vector<double> &V = Inputs[Input];
  size_t N = V.size();
  size_t S = packSampleSize(Level, N);
  size_t Stride = std::max<size_t>(1, N / S);

  switch (Feature) {
  case 0: { // average
    double Sum = 0.0;
    size_t Count = 0;
    for (size_t I = 0; I < N && Count < S; I += Stride, ++Count)
      Sum += V[I];
    Cost.addFlops(static_cast<double>(Count));
    return Count > 0 ? Sum / static_cast<double>(Count) : 0.0;
  }
  case 1: { // deviation
    double Sum = 0.0, SumSq = 0.0;
    size_t Count = 0;
    for (size_t I = 0; I < N && Count < S; I += Stride, ++Count) {
      Sum += V[I];
      SumSq += V[I] * V[I];
    }
    Cost.addFlops(2.0 * static_cast<double>(Count));
    if (Count == 0)
      return 0.0;
    double Mean = Sum / static_cast<double>(Count);
    double Var = SumSq / static_cast<double>(Count) - Mean * Mean;
    return Var > 0.0 ? std::sqrt(Var) : 0.0;
  }
  case 2: { // value range
    double Lo = 2.0, Hi = -1.0;
    size_t Count = 0;
    for (size_t I = 0; I < N && Count < S; I += Stride, ++Count) {
      Lo = std::min(Lo, V[I]);
      Hi = std::max(Hi, V[I]);
    }
    Cost.addCompares(2.0 * static_cast<double>(Count));
    return Count > 0 ? Hi - Lo : 0.0;
  }
  case 3: { // sortedness (same definition as Sort)
    size_t Step = std::max<size_t>(1, N / S);
    size_t SortedCount = 0, Count = 0;
    for (size_t I = 0; I + Step < N; I += Step) {
      if (V[I] <= V[I + Step])
        ++SortedCount;
      ++Count;
    }
    Cost.addCompares(static_cast<double>(Count));
    return Count > 0
               ? static_cast<double>(SortedCount) / static_cast<double>(Count)
               : 0.0;
  }
  default:
    return 0.0;
  }
}

PackAlgo
BinPackingBenchmark::algoFor(const runtime::Configuration &Config) const {
  return static_cast<PackAlgo>(Config.category(AlgoParam));
}

runtime::RunResult
BinPackingBenchmark::run(size_t Input, const runtime::Configuration &Config,
                         support::CostCounter &Cost) const {
  assert(Input < Inputs.size() && "input out of range");
  double Before = Cost.units();
  PackingResult P = pack(algoFor(Config), Inputs[Input], Cost);
  runtime::RunResult R;
  R.TimeUnits = Cost.units() - Before;
  R.Accuracy = P.averageOccupancy();
  return R;
}

//===----------------------------------------------------------------------===//
// Registry entry: the paper's binpacking row.
//===----------------------------------------------------------------------===//

#include "registry/BenchmarkRegistry.h"

static registry::RegisterBenchmark
    RegBinPacking(std::make_unique<registry::SimpleBenchmarkFactory>(
        "binpacking", "Bin packing over four heuristics, occupancy accuracy",
        /*SuiteOrder=*/4, /*ProgramSeed=*/105, /*PipelineSeed=*/1005,
        [](double Scale, uint64_t Seed) -> registry::ProgramPtr {
          BinPackingBenchmark::Options O;
          O.NumInputs = registry::scaledInputCount(Scale, 200);
          O.MinItems = 64;
          O.MaxItems = 384;
          O.Seed = Seed;
          return std::make_unique<BinPackingBenchmark>(O);
        }));

//===- benchmarks/BinPackingBenchmark.cpp ------------------------------------=//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "benchmarks/BinPackingBenchmark.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace pbt;
using namespace pbt::bench;

const char *bench::packGenName(PackGen G) {
  switch (G) {
  case PackGen::PerfectSplit:
    return "perfect-split";
  case PackGen::SmallUniform:
    return "small-uniform";
  case PackGen::WideUniform:
    return "wide-uniform";
  case PackGen::Bimodal:
    return "bimodal";
  case PackGen::Triplets:
    return "triplets";
  case PackGen::SortedAscending:
    return "sorted-ascending";
  case PackGen::Skewed:
    return "skewed";
  }
  return "unknown";
}

std::vector<double> bench::generatePackInput(PackGen G, size_t N,
                                             support::Rng &Rng) {
  std::vector<double> V;
  V.reserve(N);
  switch (G) {
  case PackGen::PerfectSplit: {
    // Split unit bins into 2-4 parts until N items exist, then shuffle.
    while (V.size() < N) {
      unsigned Parts = 2 + static_cast<unsigned>(Rng.index(3));
      double Remaining = 1.0;
      for (unsigned P = 0; P + 1 < Parts; ++P) {
        double Mean = Remaining / static_cast<double>(Parts - P);
        double Part =
            std::clamp(Rng.uniform(0.4 * Mean, 1.6 * Mean), 0.02, Remaining - 0.02 * (Parts - P - 1));
        V.push_back(Part);
        Remaining -= Part;
      }
      V.push_back(Remaining);
    }
    V.resize(N);
    Rng.shuffle(V);
    break;
  }
  case PackGen::SmallUniform:
    for (size_t I = 0; I != N; ++I)
      V.push_back(Rng.uniform(0.05, 0.35));
    break;
  case PackGen::WideUniform:
    // The 0.5 upper bound keeps instances packable to high occupancy by
    // good heuristics (mirroring the paper's setup, whose one-level
    // baseline still reached 97.8% accuracy satisfaction) while spreading
    // quality across algorithms.
    for (size_t I = 0; I != N; ++I)
      V.push_back(Rng.uniform(0.1, 0.5));
    break;
  case PackGen::Bimodal:
    // Complementary pairs around 0.6/0.4: pairing-aware algorithms (BFD,
    // MFFD) can approach occupancy 1, naive ones cannot.
    for (size_t I = 0; I != N; ++I) {
      double Big = Rng.uniform(0.56, 0.64);
      V.push_back(Rng.chance(0.5) ? Big
                                  : std::clamp(1.0 - Big +
                                                   Rng.uniform(-0.015, 0.015),
                                               0.02, 1.0));
    }
    break;
  case PackGen::Triplets:
    for (size_t I = 0; I != N; ++I)
      V.push_back(Rng.uniform(0.32, 0.3334));
    break;
  case PackGen::SortedAscending:
    for (size_t I = 0; I != N; ++I)
      V.push_back(Rng.uniform(0.05, 0.4));
    std::sort(V.begin(), V.end());
    break;
  case PackGen::Skewed:
    for (size_t I = 0; I != N; ++I) {
      double X = std::min(0.5, Rng.exponential(6.0) + 0.02);
      V.push_back(X);
    }
    break;
  }
  return V;
}

BinPackingBenchmark::BinPackingBenchmark(const Options &Opts) : Opts(Opts) {
  AlgoParam = Space.addCategorical("binpacking.algorithm", NumPackAlgos);

  support::Rng Rng(Opts.Seed);
  Inputs.reserve(Opts.NumInputs);
  Tags.reserve(Opts.NumInputs);
  for (size_t I = 0; I != Opts.NumInputs; ++I) {
    size_t N = Opts.MinItems + Rng.index(Opts.MaxItems - Opts.MinItems + 1);
    PackGen G = static_cast<PackGen>(Rng.index(NumPackGens));
    Inputs.push_back(generatePackInput(G, N, Rng));
    Tags.push_back(packGenName(G));
  }
}

std::vector<runtime::FeatureInfo> BinPackingBenchmark::features() const {
  return {{"average", 3}, {"deviation", 3}, {"range", 3}, {"sortedness", 3}};
}

static size_t packSampleSize(unsigned Level, size_t N) {
  size_t S = static_cast<size_t>(24) << (2 * Level);
  return std::min(S, N);
}

double BinPackingBenchmark::extractFeature(size_t Input, unsigned Feature,
                                           unsigned Level,
                                           support::CostCounter &Cost) const {
  assert(Input < Inputs.size() && "input out of range");
  assert(Feature < 4 && Level < 3 && "feature/level out of range");
  const std::vector<double> &V = Inputs[Input];
  size_t N = V.size();
  size_t S = packSampleSize(Level, N);
  size_t Stride = std::max<size_t>(1, N / S);

  switch (Feature) {
  case 0: { // average
    double Sum = 0.0;
    size_t Count = 0;
    for (size_t I = 0; I < N && Count < S; I += Stride, ++Count)
      Sum += V[I];
    Cost.addFlops(static_cast<double>(Count));
    return Count > 0 ? Sum / static_cast<double>(Count) : 0.0;
  }
  case 1: { // deviation
    double Sum = 0.0, SumSq = 0.0;
    size_t Count = 0;
    for (size_t I = 0; I < N && Count < S; I += Stride, ++Count) {
      Sum += V[I];
      SumSq += V[I] * V[I];
    }
    Cost.addFlops(2.0 * static_cast<double>(Count));
    if (Count == 0)
      return 0.0;
    double Mean = Sum / static_cast<double>(Count);
    double Var = SumSq / static_cast<double>(Count) - Mean * Mean;
    return Var > 0.0 ? std::sqrt(Var) : 0.0;
  }
  case 2: { // value range
    double Lo = 2.0, Hi = -1.0;
    size_t Count = 0;
    for (size_t I = 0; I < N && Count < S; I += Stride, ++Count) {
      Lo = std::min(Lo, V[I]);
      Hi = std::max(Hi, V[I]);
    }
    Cost.addCompares(2.0 * static_cast<double>(Count));
    return Count > 0 ? Hi - Lo : 0.0;
  }
  case 3: { // sortedness (same definition as Sort)
    size_t Step = std::max<size_t>(1, N / S);
    size_t SortedCount = 0, Count = 0;
    for (size_t I = 0; I + Step < N; I += Step) {
      if (V[I] <= V[I + Step])
        ++SortedCount;
      ++Count;
    }
    Cost.addCompares(static_cast<double>(Count));
    return Count > 0
               ? static_cast<double>(SortedCount) / static_cast<double>(Count)
               : 0.0;
  }
  default:
    return 0.0;
  }
}

PackAlgo
BinPackingBenchmark::algoFor(const runtime::Configuration &Config) const {
  return static_cast<PackAlgo>(Config.category(AlgoParam));
}

runtime::RunResult
BinPackingBenchmark::run(size_t Input, const runtime::Configuration &Config,
                         support::CostCounter &Cost) const {
  assert(Input < Inputs.size() && "input out of range");
  double Before = Cost.units();
  PackingResult P = pack(algoFor(Config), Inputs[Input], Cost);
  runtime::RunResult R;
  R.TimeUnits = Cost.units() - Before;
  R.Accuracy = P.averageOccupancy();
  return R;
}

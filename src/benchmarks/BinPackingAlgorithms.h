//===- benchmarks/BinPackingAlgorithms.h - 13 packing heuristics -----------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The thirteen bin packing approximation algorithms of the paper's
/// binpacking benchmark: AlmostWorstFit, AlmostWorstFitDecreasing, BestFit,
/// BestFitDecreasing, FirstFit, FirstFitDecreasing, LastFit,
/// LastFitDecreasing, ModifiedFirstFitDecreasing, NextFit,
/// NextFitDecreasing, WorstFit and WorstFitDecreasing. Items are sizes in
/// (0, 1]; bins have unit capacity. Comparisons and item placements charge
/// the deterministic cost model.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_BENCHMARKS_BINPACKINGALGORITHMS_H
#define PBT_BENCHMARKS_BINPACKINGALGORITHMS_H

#include "support/Cost.h"
#include "support/Random.h"

#include <string>
#include <vector>

namespace pbt {
namespace bench {

/// The 13 algorithmic choices, in the paper's listing order.
enum class PackAlgo : unsigned {
  AlmostWorstFit = 0,
  AlmostWorstFitDecreasing,
  BestFit,
  BestFitDecreasing,
  FirstFit,
  FirstFitDecreasing,
  LastFit,
  LastFitDecreasing,
  ModifiedFirstFitDecreasing,
  NextFit,
  NextFitDecreasing,
  WorstFit,
  WorstFitDecreasing,
};
inline constexpr unsigned NumPackAlgos = 13;

const char *packAlgoName(PackAlgo A);

/// Result of packing: the load of every opened bin, in opening order.
struct PackingResult {
  std::vector<double> BinLoads;

  size_t numBins() const { return BinLoads.size(); }
  /// The paper's accuracy metric: mean occupied fraction over bins.
  double averageOccupancy() const;
};

/// Packs \p Items (each in (0, 1]) with algorithm \p Algo.
PackingResult pack(PackAlgo Algo, const std::vector<double> &Items,
                   support::CostCounter &Cost);

/// Validity check for tests: every item assigned, no bin above capacity.
/// (pack() itself guarantees this by construction; the test recomputes.)
bool packingIsValid(const PackingResult &R, const std::vector<double> &Items,
                    double Epsilon = 1e-9);

//===----------------------------------------------------------------------===//
// Input generators. Kept with the algorithms so kernel micro-benchmarks
// and tests can synthesise inputs without the TunableProgram layer.
//===----------------------------------------------------------------------===//

/// Input generator families for binpacking.
enum class PackGen : unsigned {
  /// Items from splitting full bins into 2-4 parts: a perfect packing
  /// exists, decreasing-family algorithms can approach occupancy 1.
  PerfectSplit = 0,
  /// Uniform small items in (0.05, 0.35): most algorithms pack well.
  SmallUniform,
  /// Uniform items in (0.1, 0.5): harder; quality spreads widely while
  /// staying packable to high occupancy by good heuristics.
  WideUniform,
  /// Bimodal ~0.62 / ~0.36 items: pairing matters (BFD/MFFD shine).
  Bimodal,
  /// Near-identical items around 1/3: duplication-heavy.
  Triplets,
  /// Sorted ascending small items: sortedness feature lights up.
  SortedAscending,
  /// Exponential-ish skew towards small items.
  Skewed,
};
inline constexpr unsigned NumPackGens = 7;

const char *packGenName(PackGen G);

/// Generates one item list of the given family.
std::vector<double> generatePackInput(PackGen G, size_t N, support::Rng &Rng);

} // namespace bench
} // namespace pbt

#endif // PBT_BENCHMARKS_BINPACKINGALGORITHMS_H

//===- benchmarks/SortAlgorithms.h - Sorting algorithm suite ---------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The five sorting algorithms of the paper's Sort benchmark (Figure 1):
/// InsertionSort, QuickSort, MergeSort (k-way), RadixSort and BitonicSort,
/// plus the PolySorter recursive driver that consults a runtime::Selector
/// at every recursive invocation -- the either...or semantics of
/// PetaBricks. All algorithms charge comparisons and element moves to the
/// deterministic cost model.
///
/// QuickSort deliberately uses a first-element pivot, preserving the
/// classic pathological behaviour on sorted and heavily duplicated inputs
/// that the paper cites as a source of input sensitivity.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_BENCHMARKS_SORTALGORITHMS_H
#define PBT_BENCHMARKS_SORTALGORITHMS_H

#include "runtime/Selector.h"
#include "support/Cost.h"
#include "support/Random.h"

#include <cstddef>
#include <vector>

namespace pbt {
namespace bench {

/// The either...or choices of the Sort benchmark, in selector order.
enum class SortAlgo : unsigned {
  Insertion = 0,
  Quick = 1,
  Merge = 2,
  Radix = 3,
  Bitonic = 4,
};
inline constexpr unsigned NumSortAlgos = 5;

/// Charge-exact simulation mode for the sort kernels (default: enabled).
///
/// The pipeline consumes only the deterministic cost charges and the
/// sorted output of a run, so kernels whose physical execution is
/// asymptotically slower than their *accounting* can be simulated: the
/// charges are computed by a cheaper exact formula (insertion sort via
/// inversion counting, quicksort's sorted-range degeneration in closed
/// form) and the output produced by an equivalent sort. Charges and
/// output bytes are identical to the physical execution -- pinned by
/// SortSimulationParity tests and the golden retrain suite. Disabling
/// restores the physical reference path (used by parity tests and the
/// `pbt-bench trainbench` pre-optimisation baseline).
bool sortSimulationEnabled();
void setSortSimulation(bool Enabled);

/// In-place insertion sort of V[Lo, Hi).
void insertionSort(std::vector<double> &V, size_t Lo, size_t Hi,
                   support::CostCounter &Cost);

/// LSD radix sort of V[Lo, Hi) (8 passes over order-preserving 64-bit
/// keys).
void radixSort(std::vector<double> &V, size_t Lo, size_t Hi,
               support::CostCounter &Cost);

/// Bitonic sorting network over V[Lo, Hi) (padded to a power of two).
void bitonicSort(std::vector<double> &V, size_t Lo, size_t Hi,
                 support::CostCounter &Cost);

/// Recursive polyalgorithm driver. At each recursive range it asks the
/// selector which algorithm handles that size: terminal algorithms
/// (insertion/radix/bitonic) finish the range; Quick and Merge recurse
/// back through the selector, building exactly the paper's Figure 2 style
/// polyalgorithms.
class PolySorter {
public:
  PolySorter(runtime::Selector Selector, unsigned MergeWays)
      : Sel(std::move(Selector)), MergeWays(MergeWays < 2 ? 2 : MergeWays) {}

  /// Sorts V in place.
  void sort(std::vector<double> &V, support::CostCounter &Cost) const;

  const runtime::Selector &selector() const { return Sel; }

private:
  void sortRange(std::vector<double> &V, size_t Lo, size_t Hi,
                 support::CostCounter &Cost) const;
  void quickSort(std::vector<double> &V, size_t Lo, size_t Hi,
                 support::CostCounter &Cost) const;
  void mergeSort(std::vector<double> &V, size_t Lo, size_t Hi,
                 support::CostCounter &Cost) const;

  runtime::Selector Sel;
  unsigned MergeWays;
};

/// \returns true if V[Lo, Hi) is non-decreasing (test helper; free of
/// cost-model side effects).
bool isSorted(const std::vector<double> &V, size_t Lo, size_t Hi);

//===----------------------------------------------------------------------===//
// Input generators. These live with the algorithms (not the benchmark
// wrapper) so kernel micro-benchmarks and tests can synthesise inputs
// without touching the TunableProgram layer.
//===----------------------------------------------------------------------===//

/// Input generator families for Sort.
enum class SortGen : unsigned {
  Uniform = 0,
  Sorted,
  Reverse,
  AlmostSorted,
  FewDistinct,
  OrganPipe,
  Gaussian,
  Exponential,
  Sawtooth,
  Constant,
};
inline constexpr unsigned NumSortGens = 10;

/// Name of a generator (for reports and tests).
const char *sortGenName(SortGen G);

/// Generates one input of the given family and size.
std::vector<double> generateSortInput(SortGen G, size_t N,
                                      support::Rng &Rng);

/// Generates a registry-like input (the paper's sort1 real-world data
/// stand-in): concatenated sorted runs over a small value pool with a
/// fraction of out-of-order updates appended.
std::vector<double> generateRegistryLikeInput(size_t N, support::Rng &Rng);

} // namespace bench
} // namespace pbt

#endif // PBT_BENCHMARKS_SORTALGORITHMS_H

//===- benchmarks/SortBenchmark.cpp ------------------------------------------=//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "benchmarks/SortBenchmark.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace pbt;
using namespace pbt::bench;

const char *bench::sortGenName(SortGen G) {
  switch (G) {
  case SortGen::Uniform:
    return "uniform";
  case SortGen::Sorted:
    return "sorted";
  case SortGen::Reverse:
    return "reverse";
  case SortGen::AlmostSorted:
    return "almost-sorted";
  case SortGen::FewDistinct:
    return "few-distinct";
  case SortGen::OrganPipe:
    return "organ-pipe";
  case SortGen::Gaussian:
    return "gaussian";
  case SortGen::Exponential:
    return "exponential";
  case SortGen::Sawtooth:
    return "sawtooth";
  case SortGen::Constant:
    return "constant";
  }
  return "unknown";
}

std::vector<double> bench::generateSortInput(SortGen G, size_t N,
                                             support::Rng &Rng) {
  std::vector<double> V(N);
  switch (G) {
  case SortGen::Uniform:
    for (double &X : V)
      X = Rng.uniform(0.0, 1e6);
    break;
  case SortGen::Sorted:
    for (size_t I = 0; I != N; ++I)
      V[I] = static_cast<double>(I) + Rng.uniform(0.0, 0.5);
    std::sort(V.begin(), V.end());
    break;
  case SortGen::Reverse:
    for (size_t I = 0; I != N; ++I)
      V[I] = static_cast<double>(N - I) + Rng.uniform(0.0, 0.5);
    std::sort(V.begin(), V.end(), std::greater<double>());
    break;
  case SortGen::AlmostSorted: {
    for (size_t I = 0; I != N; ++I)
      V[I] = static_cast<double>(I);
    // Perturb ~2% of positions with local swaps.
    size_t Swaps = std::max<size_t>(1, N / 50);
    for (size_t S = 0; S != Swaps; ++S) {
      size_t I = Rng.index(N);
      size_t J = std::min(N - 1, I + 1 + Rng.index(8));
      std::swap(V[I], V[J]);
    }
    break;
  }
  case SortGen::FewDistinct: {
    size_t Values = 2 + Rng.index(14);
    for (double &X : V)
      X = static_cast<double>(Rng.index(Values)) * 7.5;
    break;
  }
  case SortGen::OrganPipe:
    for (size_t I = 0; I != N; ++I)
      V[I] = static_cast<double>(I < N / 2 ? I : N - I);
    break;
  case SortGen::Gaussian:
    for (double &X : V)
      X = Rng.gaussian(0.0, 1000.0);
    break;
  case SortGen::Exponential:
    for (double &X : V)
      X = Rng.exponential(1e-3);
    break;
  case SortGen::Sawtooth: {
    size_t Runs = 4 + Rng.index(12);
    size_t RunLen = std::max<size_t>(1, N / Runs);
    for (size_t I = 0; I != N; ++I)
      V[I] = static_cast<double>(I % RunLen) * 3.0 + Rng.uniform(0.0, 1.0);
    break;
  }
  case SortGen::Constant: {
    double C = Rng.uniform(0.0, 100.0);
    for (double &X : V)
      X = C;
    break;
  }
  }
  return V;
}

std::vector<double> bench::generateRegistryLikeInput(size_t N,
                                                     support::Rng &Rng) {
  // Registry extracts are dominated by records sorted by identifier, with
  // a small pool of duplicated identifiers (renewed registrations) and a
  // tail of recent, unsorted updates.
  std::vector<double> V;
  V.reserve(N);
  size_t Pool = std::max<size_t>(8, N / 10);
  size_t Runs = 2 + Rng.index(9);
  size_t Tail = N / 20 + Rng.index(std::max<size_t>(1, N / 20));
  size_t Body = N > Tail ? N - Tail : N;
  for (size_t R = 0; R != Runs; ++R) {
    size_t RunLen = Body / Runs + (R < Body % Runs ? 1 : 0);
    std::vector<double> Run(RunLen);
    for (double &X : Run)
      X = static_cast<double>(Rng.index(Pool)) * 11.0;
    std::sort(Run.begin(), Run.end());
    V.insert(V.end(), Run.begin(), Run.end());
  }
  while (V.size() < N)
    V.push_back(static_cast<double>(Rng.index(Pool)) * 11.0);
  return V;
}

SortBenchmark::SortBenchmark(const Options &Opts) : Opts(Opts) {
  assert(Opts.MinSize >= 4 && Opts.MinSize <= Opts.MaxSize && "bad sizes");
  // Configuration space: the recursive selector over the five algorithms
  // plus the merge-way count.
  Scheme = runtime::SelectorScheme::declare(
      Space, "sort", Opts.SelectorLevels, NumSortAlgos, /*MinCutoff=*/4,
      /*MaxCutoff=*/2 * Opts.MaxSize);
  MergeWaysParam = Space.addInteger("sort.mergeWays", 2, 16, /*LogScale=*/true);

  // Inputs.
  support::Rng Rng(Opts.Seed);
  Inputs.reserve(Opts.NumInputs);
  Tags.reserve(Opts.NumInputs);
  for (size_t I = 0; I != Opts.NumInputs; ++I) {
    double LogLo = std::log2(static_cast<double>(Opts.MinSize));
    double LogHi = std::log2(static_cast<double>(Opts.MaxSize));
    size_t N = static_cast<size_t>(std::pow(2.0, Rng.uniform(LogLo, LogHi)));
    N = std::max(Opts.MinSize, std::min(Opts.MaxSize, N));
    if (Opts.Data == Dataset::RegistryLike) {
      Inputs.push_back(generateRegistryLikeInput(N, Rng));
      Tags.push_back("registry");
    } else {
      SortGen G = static_cast<SortGen>(Rng.index(NumSortGens));
      Inputs.push_back(generateSortInput(G, N, Rng));
      Tags.push_back(sortGenName(G));
    }
  }
}

std::string SortBenchmark::name() const {
  return Opts.Data == Dataset::RegistryLike ? "sort1" : "sort2";
}

std::vector<runtime::FeatureInfo> SortBenchmark::features() const {
  return {{"deviation", 3}, {"duplication", 3}, {"sortedness", 3},
          {"testsort", 3}};
}

/// Sample size for feature level L: 32, 128, 512 (capped by input size).
static size_t sampleSizeForLevel(unsigned Level, size_t N) {
  size_t S = static_cast<size_t>(32) << (2 * Level);
  return std::min(S, N);
}

double SortBenchmark::extractFeature(size_t Input, unsigned Feature,
                                     unsigned Level,
                                     support::CostCounter &Cost) const {
  assert(Input < Inputs.size() && "input out of range");
  assert(Feature < 4 && Level < 3 && "feature/level out of range");
  const std::vector<double> &V = Inputs[Input];
  size_t N = V.size();
  size_t S = sampleSizeForLevel(Level, N);
  size_t Stride = std::max<size_t>(1, N / S);

  switch (Feature) {
  case 0: { // deviation: stddev of a strided sample
    double Sum = 0.0, SumSq = 0.0;
    size_t Count = 0;
    for (size_t I = 0; I < N && Count < S; I += Stride, ++Count) {
      Sum += V[I];
      SumSq += V[I] * V[I];
    }
    Cost.addFlops(2.0 * static_cast<double>(Count));
    if (Count == 0)
      return 0.0;
    double Mean = Sum / static_cast<double>(Count);
    double Var = SumSq / static_cast<double>(Count) - Mean * Mean;
    return Var > 0.0 ? std::sqrt(Var) : 0.0;
  }
  case 1: { // duplication: 1 - distinct/sample
    std::vector<double> Sample;
    Sample.reserve(S);
    for (size_t I = 0; I < N && Sample.size() < S; I += Stride)
      Sample.push_back(V[I]);
    std::sort(Sample.begin(), Sample.end());
    double Log2S = Sample.size() > 1
                       ? std::log2(static_cast<double>(Sample.size()))
                       : 1.0;
    Cost.addCompares(static_cast<double>(Sample.size()) * Log2S);
    if (Sample.empty())
      return 0.0;
    size_t Distinct = 1;
    for (size_t I = 1; I < Sample.size(); ++I)
      if (Sample[I] != Sample[I - 1])
        ++Distinct;
    Cost.addCompares(static_cast<double>(Sample.size()));
    return 1.0 -
           static_cast<double>(Distinct) / static_cast<double>(Sample.size());
  }
  case 2: { // sortedness: paper Figure 1 pseudocode with step sampling
    size_t Step = std::max<size_t>(1, N / S);
    size_t SortedCount = 0, Count = 0;
    for (size_t I = 0; I + Step < N; I += Step) {
      if (V[I] <= V[I + Step])
        ++SortedCount;
      ++Count;
    }
    Cost.addCompares(static_cast<double>(Count));
    return Count > 0
               ? static_cast<double>(SortedCount) / static_cast<double>(Count)
               : 0.0;
  }
  case 3: { // testsort: insertion-sort work on a strided subsequence
    std::vector<double> Sample;
    Sample.reserve(S);
    for (size_t I = 0; I < N && Sample.size() < S; I += Stride)
      Sample.push_back(V[I]);
    if (Sample.size() < 2)
      return 0.0;
    support::CostCounter Probe;
    insertionSort(Sample, 0, Sample.size(), Probe);
    Cost.merge(Probe);
    // Normalise to per-element work so the feature is size-independent.
    return Probe.units() / static_cast<double>(Sample.size());
  }
  default:
    return 0.0;
  }
}

PolySorter SortBenchmark::sorterFor(const runtime::Configuration &Config) const {
  runtime::Selector Sel = Scheme.instantiate(Config);
  unsigned Ways = static_cast<unsigned>(Config.integer(MergeWaysParam));
  return PolySorter(std::move(Sel), Ways);
}

runtime::RunResult SortBenchmark::run(size_t Input,
                                      const runtime::Configuration &Config,
                                      support::CostCounter &Cost) const {
  assert(Input < Inputs.size() && "input out of range");
  double Before = Cost.units();
  std::vector<double> Work = Inputs[Input];
  Cost.addMoves(static_cast<double>(Work.size())); // initial copy
  PolySorter Sorter = sorterFor(Config);
  Sorter.sort(Work, Cost);
  runtime::RunResult R;
  R.TimeUnits = Cost.units() - Before;
  R.Accuracy = 1.0;
  return R;
}

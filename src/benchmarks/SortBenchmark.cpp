//===- benchmarks/SortBenchmark.cpp ------------------------------------------=//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "benchmarks/SortBenchmark.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace pbt;
using namespace pbt::bench;

SortBenchmark::SortBenchmark(const Options &Opts) : Opts(Opts) {
  assert(Opts.MinSize >= 4 && Opts.MinSize <= Opts.MaxSize && "bad sizes");
  // Configuration space: the recursive selector over the five algorithms
  // plus the merge-way count.
  Scheme = runtime::SelectorScheme::declare(
      Space, "sort", Opts.SelectorLevels, NumSortAlgos, /*MinCutoff=*/4,
      /*MaxCutoff=*/2 * Opts.MaxSize);
  MergeWaysParam = Space.addInteger("sort.mergeWays", 2, 16, /*LogScale=*/true);

  // Inputs.
  support::Rng Rng(Opts.Seed);
  Inputs.reserve(Opts.NumInputs);
  Tags.reserve(Opts.NumInputs);
  for (size_t I = 0; I != Opts.NumInputs; ++I) {
    double LogLo = std::log2(static_cast<double>(Opts.MinSize));
    double LogHi = std::log2(static_cast<double>(Opts.MaxSize));
    size_t N = static_cast<size_t>(std::pow(2.0, Rng.uniform(LogLo, LogHi)));
    N = std::max(Opts.MinSize, std::min(Opts.MaxSize, N));
    if (Opts.Data == Dataset::RegistryLike) {
      Inputs.push_back(generateRegistryLikeInput(N, Rng));
      Tags.push_back("registry");
    } else {
      SortGen G = static_cast<SortGen>(Rng.index(NumSortGens));
      Inputs.push_back(generateSortInput(G, N, Rng));
      Tags.push_back(sortGenName(G));
    }
  }
}

std::string SortBenchmark::name() const {
  return Opts.Data == Dataset::RegistryLike ? "sort1" : "sort2";
}

std::vector<runtime::FeatureInfo> SortBenchmark::features() const {
  return {{"deviation", 3}, {"duplication", 3}, {"sortedness", 3},
          {"testsort", 3}};
}

/// Sample size for feature level L: 32, 128, 512 (capped by input size).
static size_t sampleSizeForLevel(unsigned Level, size_t N) {
  size_t S = static_cast<size_t>(32) << (2 * Level);
  return std::min(S, N);
}

double SortBenchmark::extractFeature(size_t Input, unsigned Feature,
                                     unsigned Level,
                                     support::CostCounter &Cost) const {
  assert(Input < Inputs.size() && "input out of range");
  assert(Feature < 4 && Level < 3 && "feature/level out of range");
  const std::vector<double> &V = Inputs[Input];
  size_t N = V.size();
  size_t S = sampleSizeForLevel(Level, N);
  size_t Stride = std::max<size_t>(1, N / S);

  switch (Feature) {
  case 0: { // deviation: stddev of a strided sample
    double Sum = 0.0, SumSq = 0.0;
    size_t Count = 0;
    for (size_t I = 0; I < N && Count < S; I += Stride, ++Count) {
      Sum += V[I];
      SumSq += V[I] * V[I];
    }
    Cost.addFlops(2.0 * static_cast<double>(Count));
    if (Count == 0)
      return 0.0;
    double Mean = Sum / static_cast<double>(Count);
    double Var = SumSq / static_cast<double>(Count) - Mean * Mean;
    return Var > 0.0 ? std::sqrt(Var) : 0.0;
  }
  case 1: { // duplication: 1 - distinct/sample
    std::vector<double> Sample;
    Sample.reserve(S);
    for (size_t I = 0; I < N && Sample.size() < S; I += Stride)
      Sample.push_back(V[I]);
    std::sort(Sample.begin(), Sample.end());
    double Log2S = Sample.size() > 1
                       ? std::log2(static_cast<double>(Sample.size()))
                       : 1.0;
    Cost.addCompares(static_cast<double>(Sample.size()) * Log2S);
    if (Sample.empty())
      return 0.0;
    size_t Distinct = 1;
    for (size_t I = 1; I < Sample.size(); ++I)
      if (Sample[I] != Sample[I - 1])
        ++Distinct;
    Cost.addCompares(static_cast<double>(Sample.size()));
    return 1.0 -
           static_cast<double>(Distinct) / static_cast<double>(Sample.size());
  }
  case 2: { // sortedness: paper Figure 1 pseudocode with step sampling
    size_t Step = std::max<size_t>(1, N / S);
    size_t SortedCount = 0, Count = 0;
    for (size_t I = 0; I + Step < N; I += Step) {
      if (V[I] <= V[I + Step])
        ++SortedCount;
      ++Count;
    }
    Cost.addCompares(static_cast<double>(Count));
    return Count > 0
               ? static_cast<double>(SortedCount) / static_cast<double>(Count)
               : 0.0;
  }
  case 3: { // testsort: insertion-sort work on a strided subsequence
    std::vector<double> Sample;
    Sample.reserve(S);
    for (size_t I = 0; I < N && Sample.size() < S; I += Stride)
      Sample.push_back(V[I]);
    if (Sample.size() < 2)
      return 0.0;
    support::CostCounter Probe;
    insertionSort(Sample, 0, Sample.size(), Probe);
    Cost.merge(Probe);
    // Normalise to per-element work so the feature is size-independent.
    return Probe.units() / static_cast<double>(Sample.size());
  }
  default:
    return 0.0;
  }
}

PolySorter SortBenchmark::sorterFor(const runtime::Configuration &Config) const {
  runtime::Selector Sel = Scheme.instantiate(Config);
  unsigned Ways = static_cast<unsigned>(Config.integer(MergeWaysParam));
  return PolySorter(std::move(Sel), Ways);
}

runtime::RunResult SortBenchmark::run(size_t Input,
                                      const runtime::Configuration &Config,
                                      support::CostCounter &Cost) const {
  assert(Input < Inputs.size() && "input out of range");
  double Before = Cost.units();
  std::vector<double> Work = Inputs[Input];
  Cost.addMoves(static_cast<double>(Work.size())); // initial copy
  PolySorter Sorter = sorterFor(Config);
  Sorter.sort(Work, Cost);
  runtime::RunResult R;
  R.TimeUnits = Cost.units() - Before;
  R.Accuracy = 1.0;
  return R;
}

std::string SortBenchmark::describeInput(size_t Input) const {
  return Tags[Input] + " n=" + std::to_string(Inputs[Input].size());
}

std::string
SortBenchmark::describeConfiguration(const runtime::Configuration &Config) const {
  return "selector " + sorterFor(Config).selector().str();
}

//===----------------------------------------------------------------------===//
// Registry entries: the paper's sort1 (registry-like real-world inputs)
// and sort2 (synthetic generator mixture) rows.
//===----------------------------------------------------------------------===//

#include "registry/BenchmarkRegistry.h"

static registry::ProgramPtr makeSortProgram(SortBenchmark::Dataset Data,
                                            double Scale, uint64_t Seed) {
  SortBenchmark::Options O;
  O.Data = Data;
  O.NumInputs = registry::scaledInputCount(Scale, 160);
  O.MinSize = 256;
  O.MaxSize = 2048;
  O.Seed = Seed;
  return std::make_unique<SortBenchmark>(O);
}

static registry::RegisterBenchmark
    RegSort1(std::make_unique<registry::SimpleBenchmarkFactory>(
        "sort1", "Sort, registry-like real-world inputs (paper sort1)",
        /*SuiteOrder=*/0, /*ProgramSeed=*/101, /*PipelineSeed=*/1001,
        [](double Scale, uint64_t Seed) {
          return makeSortProgram(SortBenchmark::Dataset::RegistryLike, Scale,
                                 Seed);
        }));

static registry::RegisterBenchmark
    RegSort2(std::make_unique<registry::SimpleBenchmarkFactory>(
        "sort2", "Sort, synthetic generator mixture (paper sort2)",
        /*SuiteOrder=*/1, /*ProgramSeed=*/102, /*PipelineSeed=*/1002,
        [](double Scale, uint64_t Seed) {
          return makeSortProgram(SortBenchmark::Dataset::SyntheticMix, Scale,
                                 Seed);
        }));

//===- benchmarks/SortBenchmark.cpp ------------------------------------------=//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "benchmarks/SortBenchmark.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <map>
#include <optional>
#include <utility>

using namespace pbt;
using namespace pbt::bench;

namespace {
/// Bumped by every SortBenchmark construction and destruction so the
/// per-thread run memos below can never serve a stale entry after a
/// benchmark at the same address is destroyed and another allocated
/// there (the destructor bump alone would suffice -- address reuse
/// requires an intervening destruction -- but bumping on both sides
/// keeps the invariant robust to unconventional allocation schemes).
std::atomic<uint64_t> BenchGeneration{1};
std::atomic<uint64_t> MemoHits{0}, MemoMisses{0};
} // namespace

SortBenchmark::SortBenchmark(const Options &Opts) : Opts(Opts) {
  BenchGeneration.fetch_add(1, std::memory_order_relaxed);
  assert(Opts.MinSize >= 4 && Opts.MinSize <= Opts.MaxSize && "bad sizes");
  // Configuration space: the recursive selector over the five algorithms
  // plus the merge-way count.
  Scheme = runtime::SelectorScheme::declare(
      Space, "sort", Opts.SelectorLevels, NumSortAlgos, /*MinCutoff=*/4,
      /*MaxCutoff=*/2 * Opts.MaxSize);
  MergeWaysParam = Space.addInteger("sort.mergeWays", 2, 16, /*LogScale=*/true);

  // Inputs.
  support::Rng Rng(Opts.Seed);
  Inputs.reserve(Opts.NumInputs);
  Tags.reserve(Opts.NumInputs);
  for (size_t I = 0; I != Opts.NumInputs; ++I) {
    double LogLo = std::log2(static_cast<double>(Opts.MinSize));
    double LogHi = std::log2(static_cast<double>(Opts.MaxSize));
    size_t N = static_cast<size_t>(std::pow(2.0, Rng.uniform(LogLo, LogHi)));
    N = std::max(Opts.MinSize, std::min(Opts.MaxSize, N));
    if (Opts.Data == Dataset::RegistryLike) {
      Inputs.push_back(generateRegistryLikeInput(N, Rng));
      Tags.push_back("registry");
    } else {
      SortGen G = static_cast<SortGen>(Rng.index(NumSortGens));
      Inputs.push_back(generateSortInput(G, N, Rng));
      Tags.push_back(sortGenName(G));
    }
  }
}

std::string SortBenchmark::name() const {
  return Opts.Data == Dataset::RegistryLike ? "sort1" : "sort2";
}

std::vector<runtime::FeatureInfo> SortBenchmark::features() const {
  return {{"deviation", 3}, {"duplication", 3}, {"sortedness", 3},
          {"testsort", 3}};
}

/// Sample size for feature level L: 32, 128, 512 (capped by input size).
static size_t sampleSizeForLevel(unsigned Level, size_t N) {
  size_t S = static_cast<size_t>(32) << (2 * Level);
  return std::min(S, N);
}

double SortBenchmark::extractFeature(size_t Input, unsigned Feature,
                                     unsigned Level,
                                     support::CostCounter &Cost) const {
  assert(Input < Inputs.size() && "input out of range");
  assert(Feature < 4 && Level < 3 && "feature/level out of range");
  const std::vector<double> &V = Inputs[Input];
  size_t N = V.size();
  size_t S = sampleSizeForLevel(Level, N);
  size_t Stride = std::max<size_t>(1, N / S);

  switch (Feature) {
  case 0: { // deviation: stddev of a strided sample
    double Sum = 0.0, SumSq = 0.0;
    size_t Count = 0;
    for (size_t I = 0; I < N && Count < S; I += Stride, ++Count) {
      Sum += V[I];
      SumSq += V[I] * V[I];
    }
    Cost.addFlops(2.0 * static_cast<double>(Count));
    if (Count == 0)
      return 0.0;
    double Mean = Sum / static_cast<double>(Count);
    double Var = SumSq / static_cast<double>(Count) - Mean * Mean;
    return Var > 0.0 ? std::sqrt(Var) : 0.0;
  }
  case 1: { // duplication: 1 - distinct/sample
    std::vector<double> Sample;
    Sample.reserve(S);
    for (size_t I = 0; I < N && Sample.size() < S; I += Stride)
      Sample.push_back(V[I]);
    std::sort(Sample.begin(), Sample.end());
    double Log2S = Sample.size() > 1
                       ? std::log2(static_cast<double>(Sample.size()))
                       : 1.0;
    Cost.addCompares(static_cast<double>(Sample.size()) * Log2S);
    if (Sample.empty())
      return 0.0;
    size_t Distinct = 1;
    for (size_t I = 1; I < Sample.size(); ++I)
      if (Sample[I] != Sample[I - 1])
        ++Distinct;
    Cost.addCompares(static_cast<double>(Sample.size()));
    return 1.0 -
           static_cast<double>(Distinct) / static_cast<double>(Sample.size());
  }
  case 2: { // sortedness: paper Figure 1 pseudocode with step sampling
    size_t Step = std::max<size_t>(1, N / S);
    size_t SortedCount = 0, Count = 0;
    for (size_t I = 0; I + Step < N; I += Step) {
      if (V[I] <= V[I + Step])
        ++SortedCount;
      ++Count;
    }
    Cost.addCompares(static_cast<double>(Count));
    return Count > 0
               ? static_cast<double>(SortedCount) / static_cast<double>(Count)
               : 0.0;
  }
  case 3: { // testsort: insertion-sort work on a strided subsequence
    std::vector<double> Sample;
    Sample.reserve(S);
    for (size_t I = 0; I < N && Sample.size() < S; I += Stride)
      Sample.push_back(V[I]);
    if (Sample.size() < 2)
      return 0.0;
    support::CostCounter Probe;
    insertionSort(Sample, 0, Sample.size(), Probe);
    Cost.merge(Probe);
    // Normalise to per-element work so the feature is size-independent.
    return Probe.units() / static_cast<double>(Sample.size());
  }
  default:
    return 0.0;
  }
}

PolySorter SortBenchmark::sorterFor(const runtime::Configuration &Config) const {
  runtime::Selector Sel = Scheme.instantiate(Config);
  unsigned Ways = static_cast<unsigned>(Config.integer(MergeWaysParam));
  return PolySorter(std::move(Sel), Ways);
}

namespace {
/// The category breakdown of one memoized run. All sort-kernel charges
/// are integer-valued doubles, so re-adding them as one lump per category
/// reproduces the physical accumulation bit-exactly.
struct RunOutcome {
  double Compares = 0.0, Moves = 0.0, Other = 0.0;
};

/// Per-thread run scratch: the work copy every run sorts, the last decoded
/// sorter, and the canonical-configuration run memo. The autotuner
/// evaluates one configuration over a whole tuning neighbourhood back to
/// back, so caching the (benchmark, config) -> PolySorter decode turns
/// most runs' selector instantiation into a vector compare; the memo
/// recognises that *distinct* configurations frequently decode to the
/// same effective polyalgorithm on this benchmark's bounded size domain
/// (cutoffs beyond MaxSize, levels shadowed by earlier ones, mergeWays
/// with merge unreachable) and replays their recorded charges instead of
/// re-running the program. Decoding and the kernels are deterministic, so
/// both reuses are exact.
struct SortRunScratch {
  std::vector<double> Work;
  const void *Bench = nullptr;
  uint64_t Generation = 0;
  std::vector<double> ConfigValues;
  std::optional<PolySorter> Sorter;
  std::vector<uint64_t> Key;     // canonical segments up to MaxSize
  std::vector<uint64_t> RunKey;  // Key truncated to one input's length
  std::map<std::pair<std::vector<uint64_t>, size_t>, RunOutcome> Memo;
};

/// Canonical form of (selector, mergeWays) restricted to sizes [0, MaxN]:
/// the segment-choice step function with adjacent equal-choice segments
/// merged, plus the merge-way count only when merge is reachable. Two
/// configurations with equal canonical keys choose identically at every
/// reachable size, hence run identically on every input.
void canonicalConfigKey(const runtime::Selector &Sel, uint64_t Ways,
                        uint64_t MaxN, std::vector<uint64_t> &Key) {
  Key.clear();
  bool MergeReachable = false;
  uint64_t Prev = 0;
  auto Emit = [&](uint64_t End, unsigned Choice) {
    if (End <= Prev)
      return;
    if (!Key.empty() &&
        (Key.back() & 0x7u) == Choice) // extend the previous segment
      Key.back() = (End << 3) | Choice;
    else
      Key.push_back((End << 3) | Choice);
    if (Choice == static_cast<unsigned>(SortAlgo::Merge))
      MergeReachable = true;
    Prev = End;
  };
  for (const runtime::Selector::Level &L : Sel.levels()) {
    if (Prev > MaxN)
      break;
    Emit(std::min<uint64_t>(L.Cutoff, MaxN + 1), L.Choice);
  }
  if (Prev <= MaxN) // sizes above every cutoff fall back to the last level
    Emit(MaxN + 1, Sel.levels().empty() ? 0u : Sel.levels().back().Choice);
  if (MergeReachable)
    Key.push_back((1ull << 62) | Ways);
}

/// Clips a canonical key to one input's size domain [0, N]: a run on an
/// input of length N never consults the selector above N, so segments
/// beyond it (and the merge-way tag when merge only becomes reachable
/// above N) are invisible -- dropping them lets configurations that
/// differ only at larger sizes share one memo entry.
void truncateKeyTo(const std::vector<uint64_t> &Key, uint64_t N,
                   std::vector<uint64_t> &Out) {
  Out.clear();
  bool MergeReachable = false;
  for (uint64_t Seg : Key) {
    if (Seg >> 62) // the merge-way tag; re-derived below
      break;
    uint64_t End = Seg >> 3;
    unsigned Choice = static_cast<unsigned>(Seg & 0x7u);
    if (End > N) {
      Out.push_back(((N + 1) << 3) | Choice);
      if (Choice == static_cast<unsigned>(SortAlgo::Merge))
        MergeReachable = true;
      break;
    }
    Out.push_back(Seg);
    if (Choice == static_cast<unsigned>(SortAlgo::Merge))
      MergeReachable = true;
  }
  if (MergeReachable && !Key.empty() && (Key.back() >> 62))
    Out.push_back(Key.back());
}
} // namespace

SortRunMemoStats bench::sortRunMemoStats() {
  SortRunMemoStats S;
  S.Hits = MemoHits.load(std::memory_order_relaxed);
  S.Misses = MemoMisses.load(std::memory_order_relaxed);
  return S;
}

SortBenchmark::~SortBenchmark() {
  BenchGeneration.fetch_add(1, std::memory_order_relaxed);
}

runtime::RunResult SortBenchmark::run(size_t Input,
                                      const runtime::Configuration &Config,
                                      support::CostCounter &Cost) const {
  assert(Input < Inputs.size() && "input out of range");
  runtime::RunResult R;
  R.Accuracy = 1.0;
  if (!sortSimulationEnabled()) {
    double Before = Cost.units();
    std::vector<double> Work = Inputs[Input];
    Cost.addMoves(static_cast<double>(Work.size())); // initial copy
    PolySorter Sorter = sorterFor(Config);
    Sorter.sort(Work, Cost);
    R.TimeUnits = Cost.units() - Before;
    return R;
  }

  thread_local SortRunScratch S;
  uint64_t Gen = BenchGeneration.load(std::memory_order_relaxed);
  if (S.Bench != this || S.Generation != Gen) {
    S.Memo.clear();
    S.ConfigValues.clear();
    S.Sorter.reset();
    S.Bench = this;
    S.Generation = Gen;
  }
  if (!S.Sorter || S.ConfigValues != Config.values()) {
    S.Sorter.emplace(sorterFor(Config));
    S.ConfigValues = Config.values();
    uint64_t Ways = std::max<uint64_t>(
        2, static_cast<uint64_t>(Config.integer(MergeWaysParam)));
    canonicalConfigKey(S.Sorter->selector(), Ways, Opts.MaxSize, S.Key);
  }

  // The strongest collapse first: when the top-level choice is a terminal
  // algorithm (insertion / radix / bitonic), the kernels never consult the
  // selector again, so the outcome depends on nothing but (input, choice)
  // -- cutoffs and merge-ways are invisible. Quick and merge tops recurse
  // through the selector and key on the input-truncated canonical form.
  unsigned Top = S.Sorter->selector().choose(Inputs[Input].size());
  if (Top != static_cast<unsigned>(SortAlgo::Quick) &&
      Top != static_cast<unsigned>(SortAlgo::Merge)) {
    S.RunKey.assign(1, (1ull << 63) | Top);
  } else {
    truncateKeyTo(S.Key, Inputs[Input].size(), S.RunKey);
  }
  auto MemoKey = std::make_pair(S.RunKey, Input);
  auto It = S.Memo.find(MemoKey);
  if (It != S.Memo.end()) {
    MemoHits.fetch_add(1, std::memory_order_relaxed);
    const RunOutcome &O = It->second;
    Cost.addCompares(O.Compares);
    Cost.addMoves(O.Moves);
    Cost.addOther(O.Other);
    R.TimeUnits = O.Compares + O.Moves + O.Other;
    return R;
  }

  MemoMisses.fetch_add(1, std::memory_order_relaxed);
  support::CostCounter Local;
  S.Work = Inputs[Input];
  Local.addMoves(static_cast<double>(S.Work.size())); // initial copy
  S.Sorter->sort(S.Work, Local);
  Cost.merge(Local);
  R.TimeUnits = Local.units();
  if (S.Memo.size() >= (1u << 17)) // unbounded streams: cap, then refill
    S.Memo.clear();
  RunOutcome O;
  O.Compares = Local.compares();
  O.Moves = Local.moves();
  O.Other = Local.other();
  S.Memo.emplace(std::move(MemoKey), O);
  return R;
}

std::string SortBenchmark::describeInput(size_t Input) const {
  return Tags[Input] + " n=" + std::to_string(Inputs[Input].size());
}

std::string
SortBenchmark::describeConfiguration(const runtime::Configuration &Config) const {
  return "selector " + sorterFor(Config).selector().str();
}

//===----------------------------------------------------------------------===//
// Registry entries: the paper's sort1 (registry-like real-world inputs)
// and sort2 (synthetic generator mixture) rows.
//===----------------------------------------------------------------------===//

#include "registry/BenchmarkRegistry.h"

static registry::ProgramPtr makeSortProgram(SortBenchmark::Dataset Data,
                                            double Scale, uint64_t Seed) {
  SortBenchmark::Options O;
  O.Data = Data;
  O.NumInputs = registry::scaledInputCount(Scale, 160);
  O.MinSize = 256;
  O.MaxSize = 2048;
  O.Seed = Seed;
  return std::make_unique<SortBenchmark>(O);
}

static registry::RegisterBenchmark
    RegSort1(std::make_unique<registry::SimpleBenchmarkFactory>(
        "sort1", "Sort, registry-like real-world inputs (paper sort1)",
        /*SuiteOrder=*/0, /*ProgramSeed=*/101, /*PipelineSeed=*/1001,
        [](double Scale, uint64_t Seed) {
          return makeSortProgram(SortBenchmark::Dataset::RegistryLike, Scale,
                                 Seed);
        }));

static registry::RegisterBenchmark
    RegSort2(std::make_unique<registry::SimpleBenchmarkFactory>(
        "sort2", "Sort, synthetic generator mixture (paper sort2)",
        /*SuiteOrder=*/1, /*ProgramSeed=*/102, /*PipelineSeed=*/1002,
        [](double Scale, uint64_t Seed) {
          return makeSortProgram(SortBenchmark::Dataset::SyntheticMix, Scale,
                                 Seed);
        }));

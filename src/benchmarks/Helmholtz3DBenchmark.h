//===- benchmarks/Helmholtz3DBenchmark.h - The helmholtz3d benchmark -------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's helmholtz3d benchmark: solve the variable-coefficient 3D
/// Helmholtz equation alpha u - div(beta grad u) = f with an autotuned
/// solver. Same accuracy metric family as poisson2d (log10 error
/// reduction against a converged reference, threshold 7). Inputs vary in
/// right-hand-side character, coefficient contrast and the alpha/beta
/// balance, which shifts the best solver and multigrid cycle shape.
/// Features: residual measure, deviation, zeros count of the input.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_BENCHMARKS_HELMHOLTZ3DBENCHMARK_H
#define PBT_BENCHMARKS_HELMHOLTZ3DBENCHMARK_H

#include "benchmarks/PDEConfig.h"
#include "pde/Helmholtz3D.h"
#include "runtime/TunableProgram.h"
#include "support/Random.h"

#include <string>
#include <vector>

namespace pbt {
namespace bench {

/// Right-hand-side families for helmholtz3d.
enum class HelmholtzGen : unsigned {
  SmoothModes = 0,
  HighFrequency,
  RandomNoise,
  PointSources,
  SparseSmooth,
};
inline constexpr unsigned NumHelmholtzGens = 5;

/// Coefficient-field families.
enum class BetaGen : unsigned {
  Constant = 0,
  SmoothContrast,
  Layered,
  LogNormal,
};
inline constexpr unsigned NumBetaGens = 4;

const char *helmholtzGenName(HelmholtzGen G);
const char *betaGenName(BetaGen G);

/// Generates a right-hand side on an N^3 grid.
pde::Grid3D generateHelmholtzRHS(HelmholtzGen G, size_t N, support::Rng &Rng);
/// Generates a strictly positive coefficient field on an N^3 grid.
pde::Grid3D generateBetaField(BetaGen G, size_t N, support::Rng &Rng);

class Helmholtz3DBenchmark : public runtime::TunableProgram {
public:
  struct Options {
    size_t NumInputs = 200;
    size_t GridN = 9; ///< must be 2^l + 1
    uint64_t Seed = 6;
    double AccuracyThreshold = 7.0;
    double SatisfactionThreshold = 0.95;
  };

  explicit Helmholtz3DBenchmark(const Options &Opts);

  std::string name() const override { return "helmholtz3d"; }
  const runtime::ConfigSpace &space() const override { return Space; }
  std::vector<runtime::FeatureInfo> features() const override;
  std::optional<runtime::AccuracySpec> accuracy() const override {
    return runtime::AccuracySpec{Opts.AccuracyThreshold,
                                 Opts.SatisfactionThreshold};
  }
  size_t numInputs() const override { return Problems.size(); }
  double extractFeature(size_t Input, unsigned Feature, unsigned Level,
                        support::CostCounter &Cost) const override;
  runtime::RunResult run(size_t Input, const runtime::Configuration &Config,
                         support::CostCounter &Cost) const override;

  const pde::HelmholtzProblem &problem(size_t I) const { return Problems[I]; }
  const std::string &inputTag(size_t I) const { return Tags[I]; }

private:
  Options Opts;
  runtime::ConfigSpace Space;
  PDEConfigScheme Scheme;
  std::vector<pde::HelmholtzProblem> Problems;
  std::vector<pde::Grid3D> References;
  std::vector<double> ReferenceRMS;
  std::vector<std::string> Tags;
};

} // namespace bench
} // namespace pbt

#endif // PBT_BENCHMARKS_HELMHOLTZ3DBENCHMARK_H

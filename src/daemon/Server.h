//===- daemon/Server.h - pbt-serve daemon core -----------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pbt-serve daemon: a stream-socket server (Unix-domain and/or TCP,
/// see daemon/Transport.h) answering framed prediction requests
/// (daemon/Protocol.h) for the tenants of a ModelRegistry.
///
/// Thread shape: one accept thread (poll-based, so it can stop), one
/// session thread per connection, and a fixed pool of batch workers
/// behind one BoundedQueue. A session validates and enqueues each
/// Predict and waits for its future; admission control is the queue
/// bound -- when it is full the session answers Shed immediately, so
/// backlog never grows without limit and a client always learns its
/// fate. Workers gather adaptive micro-batches: the gather window
/// widens in proportion to queue depth (amortising per-batch cost under
/// backlog) and collapses to zero when idle (no added latency), capped
/// at BatchMax requests. A gathered batch is grouped by tenant and each
/// group is served under that tenant's ServeMutex with
/// AdaptiveService::decideBatch -- the same input-id-sharded arena walk
/// as PredictionService::decideBatch, so daemon answers are
/// choice-identical to an in-process replay (the loadgen harness and
/// the daemon tests assert exactly that).
///
/// Shutdown (requestStop(), a Shutdown frame, or a signal) is clean by
/// construction: the accept loop notices the flag at its next poll
/// tick, session sockets are shut down to unblock their reads, and the
/// queue drains before workers exit, so every admitted request is
/// answered.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_DAEMON_SERVER_H
#define PBT_DAEMON_SERVER_H

#include "daemon/ModelRegistry.h"
#include "daemon/Protocol.h"
#include "daemon/RequestQueue.h"
#include "daemon/Transport.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace pbt {
namespace daemon {

struct ServerOptions {
  /// Filesystem path of the listening Unix socket (sun_path caps it at
  /// ~107 bytes; keep it short). Unlinked on stop. May be empty when
  /// Listen supplies a TCP endpoint instead; at least one of the two
  /// must be present.
  std::string SocketPath;
  /// Additional TCP listen endpoints, each "HOST:PORT" (port 0 binds an
  /// ephemeral port -- read it back via boundEndpoints()). The same
  /// framed protocol is spoken on every transport.
  std::vector<std::string> Listen;
  /// Cap on concurrent session threads. A connection over the cap is
  /// answered with one Shed frame and closed instead of getting a
  /// thread -- a connection storm degrades to refusals, not to
  /// unbounded thread growth. 0 = 1.
  unsigned MaxSessions = 256;
  /// Once a frame has started arriving on a session, the rest of it
  /// must land within this many seconds or the connection is dropped
  /// (FrameStatus::TimedOut): a stalled or malicious peer cannot pin a
  /// session thread mid-frame. Idle sessions are unaffected. 0 = no
  /// deadline (the pre-TCP behavior).
  double ReadDeadline = 30.0;
  /// Batch worker threads.
  unsigned Workers = 2;
  /// Request-queue bound: the admission-control knob.
  size_t QueueCapacity = 64;
  /// Micro-batch cap per worker gather.
  unsigned BatchMax = 64;
  /// Gather window added per queued request (adaptive micro-batching);
  /// depth * this, capped below, is how long a worker waits for more.
  unsigned WindowPerDepthUs = 25;
  unsigned WindowMaxUs = 2000;
  /// Serve through AdaptiveService::serve() (drift observation + online
  /// adaptation) instead of frozen decideBatch.
  bool Adapt = false;
};

struct ServerStats {
  uint64_t Connections = 0;
  uint64_t Requests = 0;
  uint64_t Decisions = 0;
  uint64_t Shed = 0;
  uint64_t Malformed = 0;
  uint64_t Batches = 0;
  uint64_t BatchedRequests = 0;
  uint64_t MaxQueueDepth = 0;
  /// Connections refused with Shed because MaxSessions was reached.
  uint64_t ShedSessions = 0;
  /// Sessions dropped for stalling mid-frame past ReadDeadline.
  uint64_t Stalled = 0;
};

class Server {
public:
  Server(ModelRegistry &Registry, ServerOptions Options);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds, listens, and starts the accept + worker threads. False with
  /// \p Err set on any socket failure (stale path, path too long, ...).
  bool start(std::string &Err);

  /// Flags the server to stop; safe from any thread (and from the
  /// Shutdown-frame path). Returns immediately.
  void requestStop();

  /// Blocks until requestStop() (e.g. a client's Shutdown frame, or a
  /// signal handler). The pbt-serve main parks here.
  void waitForStop();

  /// Full teardown: stops accepting, unblocks and joins sessions,
  /// drains the queue, joins workers, unlinks the socket. Idempotent.
  void stop();

  bool running() const { return Started && !StopFlag.load(); }
  const ServerOptions &options() const { return Opts; }
  /// The endpoints actually listening, as specs a DaemonClient can
  /// connect to ("unix:/path", "tcp:host:port" with ephemeral ports
  /// resolved). Valid after start().
  std::vector<std::string> boundEndpoints() const;
  ServerStats stats() const;
  /// The StatsReply body: server counters plus per-tenant serving and
  /// adaptation stats as one JSON object.
  std::string statsJson() const;

private:
  struct Request {
    Tenant *T = nullptr;
    std::vector<size_t> Inputs;
    std::promise<std::vector<PredictedChoice>> Reply;
  };
  using RequestPtr = std::unique_ptr<Request>;

  struct Session {
    int Fd = -1;
    std::thread Thread;
    std::atomic<bool> Finished{false};
  };

  void acceptLoop();
  void sessionLoop(Session *S);
  void workerLoop();
  /// One decoded client frame -> exactly one response frame. False ends
  /// the session (Shutdown, or a response write failure).
  bool handleMessage(Session *S, const Message &M, Tenant *&Attached);
  void serveBatch(std::vector<RequestPtr> &Batch);
  void noteQueueDepth(size_t Depth);

  ModelRegistry &Registry;
  ServerOptions Opts;
  BoundedQueue<RequestPtr> Queue;

  std::vector<Listener> Listeners;
  bool Started = false;
  std::atomic<bool> StopFlag{false};
  std::mutex StopMutex;
  std::condition_variable StopCv;

  std::thread Acceptor;
  std::vector<std::thread> Workers;
  std::mutex SessionsMutex;
  std::vector<std::unique_ptr<Session>> Sessions;

  std::atomic<uint64_t> ConnCount{0}, RequestCount{0}, DecisionCount{0},
      ShedCount{0}, MalformedCount{0}, BatchCount{0}, BatchedRequestCount{0},
      MaxDepth{0}, ShedSessionCount{0}, StalledCount{0};
};

} // namespace daemon
} // namespace pbt

#endif // PBT_DAEMON_SERVER_H

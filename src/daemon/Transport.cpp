//===- daemon/Transport.cpp - stream transports for pbt-serve --------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "daemon/Transport.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace pbt {
namespace daemon {

namespace {

void setCloexec(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFD, 0);
  if (Flags >= 0)
    ::fcntl(Fd, F_SETFD, Flags | FD_CLOEXEC);
}

void setNodelay(int Fd) {
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
}

bool parsePort(const std::string &S, uint16_t &Out) {
  if (S.empty() || S.size() > 5)
    return false;
  unsigned long V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + static_cast<unsigned long>(C - '0');
  }
  if (V > 65535)
    return false;
  Out = static_cast<uint16_t>(V);
  return true;
}

bool fillUnixAddr(const std::string &Path, sockaddr_un &Addr,
                  std::string &Err) {
  Addr = sockaddr_un{};
  Addr.sun_family = AF_UNIX;
  if (Path.empty() || Path.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path empty or too long: '" + Path + "'";
    return false;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

/// Resolves a TCP endpoint to its first usable IPv4/IPv6 address.
/// getaddrinfo blocks, but both listen and connect paths are setup-time.
bool resolveTcp(const Endpoint &E, sockaddr_storage &Addr, socklen_t &Len,
                std::string &Err) {
  addrinfo Hints{};
  Hints.ai_family = AF_UNSPEC;
  Hints.ai_socktype = SOCK_STREAM;
  Hints.ai_flags = AI_NUMERICSERV;
  addrinfo *Res = nullptr;
  std::string Service = std::to_string(E.Port);
  int RC = ::getaddrinfo(E.Host.c_str(), Service.c_str(), &Hints, &Res);
  if (RC != 0 || !Res) {
    Err = "resolve('" + E.Host + "'): " + ::gai_strerror(RC);
    return false;
  }
  std::memcpy(&Addr, Res->ai_addr, Res->ai_addrlen);
  Len = static_cast<socklen_t>(Res->ai_addrlen);
  ::freeaddrinfo(Res);
  return true;
}

uint16_t boundPort(int Fd) {
  sockaddr_storage SS{};
  socklen_t Len = sizeof(SS);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&SS), &Len) < 0)
    return 0;
  if (SS.ss_family == AF_INET)
    return ntohs(reinterpret_cast<sockaddr_in *>(&SS)->sin_port);
  if (SS.ss_family == AF_INET6)
    return ntohs(reinterpret_cast<sockaddr_in6 *>(&SS)->sin6_port);
  return 0;
}

} // namespace

bool parseEndpoint(const std::string &Spec, Endpoint &Out, std::string &Err) {
  Out = Endpoint();
  std::string S = Spec;
  if (S.rfind("tcp:", 0) == 0) {
    S = S.substr(4);
    size_t Colon = S.rfind(':');
    if (Colon == std::string::npos || Colon == 0) {
      Err = "tcp endpoint must be tcp:HOST:PORT: '" + Spec + "'";
      return false;
    }
    Out.K = Endpoint::Kind::Tcp;
    Out.Host = S.substr(0, Colon);
    if (!parsePort(S.substr(Colon + 1), Out.Port)) {
      Err = "bad tcp port in '" + Spec + "'";
      return false;
    }
    return true;
  }
  if (S.rfind("unix:", 0) == 0)
    S = S.substr(5);
  if (S.empty()) {
    Err = "empty endpoint spec";
    return false;
  }
  Out.K = Endpoint::Kind::Unix;
  Out.Path = S;
  return true;
}

std::string endpointString(const Endpoint &E) {
  if (E.K == Endpoint::Kind::Tcp)
    return "tcp:" + E.Host + ":" + std::to_string(E.Port);
  return "unix:" + E.Path;
}

Listener::Listener(Listener &&O) noexcept
    : Fd(O.Fd), Bound(std::move(O.Bound)) {
  O.Fd = -1;
}

Listener &Listener::operator=(Listener &&O) noexcept {
  if (this != &O) {
    close();
    Fd = O.Fd;
    Bound = std::move(O.Bound);
    O.Fd = -1;
  }
  return *this;
}

bool Listener::open(const Endpoint &E, std::string &Err) {
  close();
  Bound = E;
  if (E.K == Endpoint::Kind::Unix) {
    sockaddr_un Addr;
    if (!fillUnixAddr(E.Path, Addr, Err))
      return false;
    Fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (Fd < 0) {
      Err = std::string("socket(unix): ") + std::strerror(errno);
      return false;
    }
    ::unlink(E.Path.c_str()); // stale socket from a crashed predecessor
    if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
      Err = "bind('" + E.Path + "'): " + std::strerror(errno);
      close();
      return false;
    }
  } else {
    sockaddr_storage Addr;
    socklen_t Len = 0;
    if (!resolveTcp(E, Addr, Len, Err))
      return false;
    Fd = ::socket(Addr.ss_family, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (Fd < 0) {
      Err = std::string("socket(tcp): ") + std::strerror(errno);
      return false;
    }
    int One = 1;
    ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), Len) < 0) {
      Err = "bind('" + endpointString(E) + "'): " + std::strerror(errno);
      close();
      return false;
    }
    Bound.Port = boundPort(Fd); // resolve an ephemeral-port request
  }
  if (::listen(Fd, 64) < 0) {
    Err = std::string("listen(): ") + std::strerror(errno);
    close();
    return false;
  }
  return true;
}

int Listener::acceptConnection() {
  if (Fd < 0)
    return -1;
  for (;;) {
    int C = ::accept(Fd, nullptr, nullptr);
    if (C < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    setCloexec(C);
    if (Bound.K == Endpoint::Kind::Tcp)
      setNodelay(C);
    return C;
  }
}

void Listener::close() {
  if (Fd < 0)
    return;
  ::close(Fd);
  Fd = -1;
  if (Bound.K == Endpoint::Kind::Unix && !Bound.Path.empty())
    ::unlink(Bound.Path.c_str());
}

int connectEndpoint(const Endpoint &E, double TimeoutSeconds,
                    std::string &Err) {
  sockaddr_storage Addr{};
  socklen_t AddrLen = 0;
  if (E.K == Endpoint::Kind::Unix) {
    sockaddr_un UA;
    if (!fillUnixAddr(E.Path, UA, Err))
      return -1;
    std::memcpy(&Addr, &UA, sizeof(UA));
    AddrLen = sizeof(UA);
  } else if (!resolveTcp(E, Addr, AddrLen, Err)) {
    return -1;
  }
  int Fd = ::socket(Addr.ss_family, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0) {
    Err = std::string("socket(): ") + std::strerror(errno);
    return -1;
  }
  auto Abort = [&](const std::string &Msg) {
    Err = Msg;
    ::close(Fd);
    return -1;
  };
  const std::string Name = endpointString(E);

  // Nonblocking connect + poll bounds the connect itself (a listening
  // socket with a full backlog, or an unroutable host, can otherwise
  // block indefinitely).
  int Flags = 0;
  if (TimeoutSeconds > 0) {
    Flags = ::fcntl(Fd, F_GETFL, 0);
    if (Flags < 0 || ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) < 0)
      return Abort(std::string("fcntl(O_NONBLOCK): ") + std::strerror(errno));
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), AddrLen) < 0) {
    if (TimeoutSeconds <= 0 || errno != EINPROGRESS)
      return Abort("connect('" + Name + "'): " + std::strerror(errno));
    // EINTR recomputes the remaining budget and retries; a supervisor's
    // signals must not surface as spurious connect failures.
    auto Deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration<double>(TimeoutSeconds);
    for (;;) {
      auto Now = std::chrono::steady_clock::now();
      if (Now >= Deadline)
        return Abort("connect('" + Name + "'): timed out");
      auto LeftMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                        Deadline - Now)
                        .count();
      pollfd PFD{};
      PFD.fd = Fd;
      PFD.events = POLLOUT;
      int Ready = ::poll(&PFD, 1, static_cast<int>(LeftMs) + 1);
      if (Ready < 0) {
        if (errno == EINTR)
          continue;
        return Abort(std::string("poll(): ") + std::strerror(errno));
      }
      if (Ready == 0)
        return Abort("connect('" + Name + "'): timed out");
      break;
    }
    int SockErr = 0;
    socklen_t Len = sizeof(SockErr);
    if (::getsockopt(Fd, SOL_SOCKET, SO_ERROR, &SockErr, &Len) < 0 ||
        SockErr != 0)
      return Abort("connect('" + Name +
                   "'): " + std::strerror(SockErr ? SockErr : errno));
  }
  if (TimeoutSeconds > 0 && ::fcntl(Fd, F_SETFL, Flags) < 0)
    return Abort(std::string("fcntl(restore): ") + std::strerror(errno));
  if (E.K == Endpoint::Kind::Tcp)
    setNodelay(Fd);
  return Fd;
}

} // namespace daemon
} // namespace pbt

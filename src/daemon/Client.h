//===- daemon/Client.h - pbt-serve client ----------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Blocking client for the pbt-serve protocol: one connected session
/// with attach / predict / stats / shutdown RPCs. Used by the
/// `pbt-bench loadgen` harness and the daemon tests; the raw fd is
/// exposed so the protocol fuzz wall can also speak garbage through an
/// otherwise-wellformed session.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_DAEMON_CLIENT_H
#define PBT_DAEMON_CLIENT_H

#include "daemon/Protocol.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace pbt {
namespace daemon {

/// Timeout and retry policy for a DaemonClient. The defaults make a
/// hung or wedged server a bounded error, never a hung client.
struct ClientOptions {
  /// Per-attempt connect timeout in seconds (nonblocking connect +
  /// poll). 0 = the OS's blocking connect.
  double ConnectTimeout = 5.0;
  /// Per-read/-write socket timeout in seconds (SO_RCVTIMEO /
  /// SO_SNDTIMEO). 0 = block forever (the pre-timeout behavior).
  double IoTimeout = 10.0;
  /// Connect attempts connectWithRetry makes before giving up, on top
  /// of its wall-clock deadline -- whichever trips first ends the loop.
  unsigned MaxConnectAttempts = 10;
  /// Sleep before the second connect attempt; doubles per attempt
  /// (exponential backoff) up to BackoffCapSeconds.
  double BackoffSeconds = 0.02;
  double BackoffCapSeconds = 0.5;
  /// Test hook: when set, called with each backoff duration instead of
  /// actually sleeping, so the retry schedule is testable in zero time.
  std::function<void(double)> SleepHook;
};

class DaemonClient {
public:
  DaemonClient() = default;
  explicit DaemonClient(ClientOptions Options) : Opts(Options) {}
  ~DaemonClient() { close(); }

  DaemonClient(const DaemonClient &) = delete;
  DaemonClient &operator=(const DaemonClient &) = delete;

  const ClientOptions &options() const { return Opts; }

  /// Connects to a listening pbt-serve endpoint, honoring
  /// ConnectTimeout, and arms the I/O timeouts on the resulting fd.
  /// \p Endpoint is a transport spec ("unix:/path", "tcp:host:port", or
  /// a bare Unix socket path). False with \p Err set on failure; retries
  /// are the caller's policy (see connectWithRetry).
  bool connect(const std::string &Endpoint, std::string &Err);

  /// connect() under the bounded-retry policy: up to MaxConnectAttempts
  /// attempts within \p TimeoutSeconds of wall clock, sleeping with
  /// exponential backoff between attempts -- the "server was just
  /// spawned" path.
  bool connectWithRetry(const std::string &Endpoint, double TimeoutSeconds,
                        std::string &Err);

  void close();
  bool connected() const { return Fd >= 0; }
  int fd() const { return Fd; }

  struct AttachInfo {
    uint64_t Epoch = 0;
    uint32_t Landmarks = 0;
    uint64_t NumInputs = 0;
  };

  /// Hello -> TenantOk. False (with Err) on transport failure, unknown
  /// tenant, or any unexpected reply.
  bool attach(const std::string &Tenant, AttachInfo &Out, std::string &Err);

  enum class PredictOutcome {
    Ok,    ///< Choices filled
    Shed,  ///< admission-control refusal; Err holds the reason
    Error, ///< server Error reply or transport failure; Err says which
  };

  /// Predict -> Predictions/Shed/Error.
  PredictOutcome predict(const std::vector<uint64_t> &Inputs,
                         std::vector<PredictedChoice> &Choices,
                         std::string &Err);

  bool stats(std::string &JsonOut, std::string &Err);
  bool listTenants(std::vector<std::string> &Names, std::string &Err);
  /// Shutdown -> Bye. The server exits afterwards.
  bool shutdownServer(std::string &Err);

  struct HealthInfo {
    uint64_t Pid = 0;
    uint32_t Sessions = 0;
    std::vector<TenantHealth> Tenants;
  };

  /// Ping -> Health. The liveness probe a supervisor drives.
  bool ping(HealthInfo &Out, std::string &Err);

  /// Sends raw bytes on the socket, bypassing framing entirely (fuzz
  /// tests only).
  bool sendRaw(const void *Data, size_t Size);

  /// True when the most recent RPC failed at the transport layer (write
  /// failed, connection closed, malformed frame) rather than being
  /// answered by the server. A FailoverClient fails over only on these:
  /// a server's Error *reply* is an answer and retrying it elsewhere
  /// would just repeat it.
  bool lastRpcTransportFailed() const { return TransportFailed; }

private:
  /// One request frame out, one response frame back, decoded.
  bool roundTrip(const std::string &Payload, Message &Reply,
                 std::string &Err);

  ClientOptions Opts;
  int Fd = -1;
  bool TransportFailed = false;
};

/// Failover policy for a FailoverClient.
struct FailoverOptions {
  /// Per-connection timeouts/backoff. MaxConnectAttempts is usually 1
  /// here: failover to the next replica beats hammering a dead one.
  ClientOptions Client;
  /// How long a failed endpoint stays marked down before it is eligible
  /// again. Expiry is the rejoin path -- a restarted replica gets
  /// traffic back without any external signal.
  double CooldownSeconds = 1.0;
  /// How many times each endpoint may be tried within one predict()
  /// call before the request is declared lost.
  unsigned PassesPerCall = 2;
};

/// A client over a *list* of replica endpoints with transparent
/// failover: endpoints are marked down on connect or I/O failure and
/// rejoin after a cooldown; Predict -- idempotent by construction, the
/// same input batch decides identically on every replica of an epoch --
/// is retried on the next replica when a transport error hits
/// mid-request. A Shed reply is an answer (admission control), never a
/// failover trigger. When every endpoint is in cooldown the
/// least-recently-failed one is probed anyway: with a whole fleet marked
/// down, a forced probe is strictly better than refusing to try.
class FailoverClient {
public:
  FailoverClient(std::vector<std::string> Endpoints, std::string Tenant,
                 FailoverOptions Options = FailoverOptions());

  /// Predict with failover across the endpoint list. Outcome::Error
  /// means every pass over every endpoint failed -- with any replica
  /// alive this should never happen, which is exactly what the chaos
  /// wall asserts.
  DaemonClient::PredictOutcome predict(const std::vector<uint64_t> &Inputs,
                                       std::vector<PredictedChoice> &Choices,
                                       std::string &Err);

  /// Transport failures survived by the most recent predict() call (0 =
  /// first replica answered).
  unsigned lastFailovers() const { return LastFailovers; }

  /// The endpoint that answered the most recent successful predict().
  const std::string &lastEndpoint() const { return LastEndpoint; }

  struct Stats {
    uint64_t Failovers = 0;  ///< transport failures skipped past
    uint64_t MarkDowns = 0;  ///< endpoints marked down
    uint64_t Reconnects = 0; ///< successful (re)connect+attach
    uint64_t Exhausted = 0;  ///< predict() calls that ran out of replicas
  };
  const Stats &stats() const { return Counters; }

  void close();

private:
  struct Replica {
    std::string Endpoint;
    double DownUntil = 0; ///< monotonic seconds; 0 = up
    double LastFail = 0;
  };

  bool ensureAttached(size_t I, std::string &Err);
  void markDown(size_t I);

  std::vector<Replica> Replicas;
  std::string Tenant;
  FailoverOptions Opts;
  DaemonClient Conn;
  size_t Attached = SIZE_MAX; ///< replica Conn is attached to
  size_t RoundRobin = 0;
  unsigned LastFailovers = 0;
  std::string LastEndpoint;
  Stats Counters;
};

} // namespace daemon
} // namespace pbt

#endif // PBT_DAEMON_CLIENT_H

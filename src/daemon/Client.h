//===- daemon/Client.h - pbt-serve client ----------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Blocking client for the pbt-serve protocol: one connected session
/// with attach / predict / stats / shutdown RPCs. Used by the
/// `pbt-bench loadgen` harness and the daemon tests; the raw fd is
/// exposed so the protocol fuzz wall can also speak garbage through an
/// otherwise-wellformed session.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_DAEMON_CLIENT_H
#define PBT_DAEMON_CLIENT_H

#include "daemon/Protocol.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pbt {
namespace daemon {

/// Timeout and retry policy for a DaemonClient. The defaults make a
/// hung or wedged server a bounded error, never a hung client.
struct ClientOptions {
  /// Per-attempt connect timeout in seconds (nonblocking connect +
  /// poll). 0 = the OS's blocking connect.
  double ConnectTimeout = 5.0;
  /// Per-read/-write socket timeout in seconds (SO_RCVTIMEO /
  /// SO_SNDTIMEO). 0 = block forever (the pre-timeout behavior).
  double IoTimeout = 10.0;
  /// Connect attempts connectWithRetry makes before giving up, on top
  /// of its wall-clock deadline -- whichever trips first ends the loop.
  unsigned MaxConnectAttempts = 10;
  /// Sleep before the second connect attempt; doubles per attempt
  /// (exponential backoff) up to BackoffCapSeconds.
  double BackoffSeconds = 0.02;
  double BackoffCapSeconds = 0.5;
};

class DaemonClient {
public:
  DaemonClient() = default;
  explicit DaemonClient(ClientOptions Options) : Opts(Options) {}
  ~DaemonClient() { close(); }

  DaemonClient(const DaemonClient &) = delete;
  DaemonClient &operator=(const DaemonClient &) = delete;

  const ClientOptions &options() const { return Opts; }

  /// Connects to a listening pbt-serve socket, honoring ConnectTimeout,
  /// and arms the I/O timeouts on the resulting fd. False with \p Err
  /// set on failure; retries are the caller's policy (see
  /// connectWithRetry).
  bool connect(const std::string &SocketPath, std::string &Err);

  /// connect() under the bounded-retry policy: up to MaxConnectAttempts
  /// attempts within \p TimeoutSeconds of wall clock, sleeping with
  /// exponential backoff between attempts -- the "server was just
  /// spawned" path.
  bool connectWithRetry(const std::string &SocketPath, double TimeoutSeconds,
                        std::string &Err);

  void close();
  bool connected() const { return Fd >= 0; }
  int fd() const { return Fd; }

  struct AttachInfo {
    uint64_t Epoch = 0;
    uint32_t Landmarks = 0;
    uint64_t NumInputs = 0;
  };

  /// Hello -> TenantOk. False (with Err) on transport failure, unknown
  /// tenant, or any unexpected reply.
  bool attach(const std::string &Tenant, AttachInfo &Out, std::string &Err);

  enum class PredictOutcome {
    Ok,    ///< Choices filled
    Shed,  ///< admission-control refusal; Err holds the reason
    Error, ///< server Error reply or transport failure; Err says which
  };

  /// Predict -> Predictions/Shed/Error.
  PredictOutcome predict(const std::vector<uint64_t> &Inputs,
                         std::vector<PredictedChoice> &Choices,
                         std::string &Err);

  bool stats(std::string &JsonOut, std::string &Err);
  bool listTenants(std::vector<std::string> &Names, std::string &Err);
  /// Shutdown -> Bye. The server exits afterwards.
  bool shutdownServer(std::string &Err);

  /// Sends raw bytes on the socket, bypassing framing entirely (fuzz
  /// tests only).
  bool sendRaw(const void *Data, size_t Size);

private:
  /// One request frame out, one response frame back, decoded.
  bool roundTrip(const std::string &Payload, Message &Reply,
                 std::string &Err);

  ClientOptions Opts;
  int Fd = -1;
};

} // namespace daemon
} // namespace pbt

#endif // PBT_DAEMON_CLIENT_H

//===- daemon/Protocol.cpp - pbt-serve wire protocol -----------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "daemon/Protocol.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace pbt {
namespace daemon {

namespace {

//===----------------------------------------------------------------------===//
// Little-endian append/read helpers
//===----------------------------------------------------------------------===//

void putU8(std::string &B, uint8_t V) { B.push_back(static_cast<char>(V)); }

void putU16(std::string &B, uint16_t V) {
  putU8(B, static_cast<uint8_t>(V));
  putU8(B, static_cast<uint8_t>(V >> 8));
}

void putU32(std::string &B, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    putU8(B, static_cast<uint8_t>(V >> (8 * I)));
}

void putU64(std::string &B, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    putU8(B, static_cast<uint8_t>(V >> (8 * I)));
}

void putStr(std::string &B, const std::string &S) {
  // Builders truncate at the wire cap instead of producing an invalid
  // frame the peer would drop the connection over.
  size_t N = S.size() < kMaxStringBytes ? S.size() : kMaxStringBytes - 1;
  putU16(B, static_cast<uint16_t>(N));
  B.append(S.data(), N);
}

/// Cursor over a received payload. Every take checks the remaining
/// length; once a take fails the reader stays failed.
class WireReader {
public:
  WireReader(const uint8_t *Data, size_t Size) : Cur(Data), Left(Size) {}

  bool u8(uint8_t &V) {
    if (Left < 1)
      return fail();
    V = *Cur;
    Cur += 1;
    Left -= 1;
    return true;
  }

  bool u16(uint16_t &V) {
    if (Left < 2)
      return fail();
    V = static_cast<uint16_t>(Cur[0]) | static_cast<uint16_t>(Cur[1]) << 8;
    Cur += 2;
    Left -= 2;
    return true;
  }

  bool u32(uint32_t &V) {
    if (Left < 4)
      return fail();
    V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(Cur[I]) << (8 * I);
    Cur += 4;
    Left -= 4;
    return true;
  }

  bool u64(uint64_t &V) {
    if (Left < 8)
      return fail();
    V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(Cur[I]) << (8 * I);
    Cur += 8;
    Left -= 8;
    return true;
  }

  bool str(std::string &S) {
    uint16_t N = 0;
    if (!u16(N))
      return false;
    if (N >= kMaxStringBytes || Left < N)
      return fail();
    S.assign(reinterpret_cast<const char *>(Cur), N);
    Cur += N;
    Left -= N;
    return true;
  }

  /// A valid payload is consumed exactly: trailing bytes are garbage.
  bool done() const { return !Failed && Left == 0; }

private:
  bool fail() {
    Failed = true;
    return false;
  }

  const uint8_t *Cur;
  size_t Left;
  bool Failed = false;
};

//===----------------------------------------------------------------------===//
// Raw fd helpers
//===----------------------------------------------------------------------===//

/// Reads exactly \p Len bytes. Returns 1 on success, 0 on clean EOF
/// before the first byte, -1 on mid-read EOF, -2 on errno failure.
int readAll(int Fd, void *Buf, size_t Len) {
  char *P = static_cast<char *>(Buf);
  size_t Got = 0;
  while (Got < Len) {
    ssize_t N = ::recv(Fd, P + Got, Len - Got, 0);
    if (N == 0)
      return Got == 0 ? 0 : -1;
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Got == 0 && (errno == ECONNRESET) ? 0 : -2;
    }
    Got += static_cast<size_t>(N);
  }
  return 1;
}

/// readAll with a wall-clock deadline: poll-before-recv so a peer that
/// stalls mid-frame cannot block forever. Returns 1 on success, -1 on
/// mid-read EOF, -2 on errno failure, -3 on deadline expiry. EINTR on
/// either syscall retries with the remaining budget recomputed.
int readAllDeadline(int Fd, void *Buf, size_t Len,
                    std::chrono::steady_clock::time_point Deadline) {
  char *P = static_cast<char *>(Buf);
  size_t Got = 0;
  while (Got < Len) {
    auto Now = std::chrono::steady_clock::now();
    if (Now >= Deadline)
      return -3;
    auto LeftMs =
        std::chrono::duration_cast<std::chrono::milliseconds>(Deadline - Now)
            .count();
    struct pollfd Pfd = {Fd, POLLIN, 0};
    int PR = ::poll(&Pfd, 1, static_cast<int>(LeftMs) + 1);
    if (PR < 0) {
      if (errno == EINTR)
        continue;
      return -2;
    }
    if (PR == 0)
      return -3;
    ssize_t N = ::recv(Fd, P + Got, Len - Got, 0);
    if (N == 0)
      return -1;
    if (N < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue;
      return -2;
    }
    Got += static_cast<size_t>(N);
  }
  return 1;
}

bool writeAll(int Fd, const void *Buf, size_t Len) {
  const char *P = static_cast<const char *>(Buf);
  size_t Sent = 0;
  while (Sent < Len) {
    ssize_t N = ::send(Fd, P + Sent, Len - Sent, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Sent += static_cast<size_t>(N);
  }
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Payload builders
//===----------------------------------------------------------------------===//

std::string makeHello(const std::string &Tenant) {
  std::string B;
  putU8(B, static_cast<uint8_t>(MsgType::Hello));
  putStr(B, Tenant);
  return B;
}

std::string makePredict(const std::vector<uint64_t> &Inputs) {
  std::string B;
  putU8(B, static_cast<uint8_t>(MsgType::Predict));
  putU32(B, static_cast<uint32_t>(Inputs.size()));
  for (uint64_t In : Inputs)
    putU64(B, In);
  return B;
}

std::string makeStats() {
  return std::string(1, static_cast<char>(MsgType::Stats));
}

std::string makeListTenants() {
  return std::string(1, static_cast<char>(MsgType::ListTenants));
}

std::string makeShutdown() {
  return std::string(1, static_cast<char>(MsgType::Shutdown));
}

std::string makePing() {
  return std::string(1, static_cast<char>(MsgType::Ping));
}

std::string makeTenantOk(uint64_t Epoch, uint32_t Landmarks,
                         uint64_t NumInputs) {
  std::string B;
  putU8(B, static_cast<uint8_t>(MsgType::TenantOk));
  putU64(B, Epoch);
  putU32(B, Landmarks);
  putU64(B, NumInputs);
  return B;
}

std::string makePredictions(const std::vector<PredictedChoice> &Choices) {
  std::string B;
  putU8(B, static_cast<uint8_t>(MsgType::Predictions));
  putU32(B, static_cast<uint32_t>(Choices.size()));
  for (const PredictedChoice &C : Choices) {
    putU32(B, C.Landmark);
    putU64(B, C.Epoch);
  }
  return B;
}

std::string makeShed(uint32_t QueueDepth, const std::string &Reason) {
  std::string B;
  putU8(B, static_cast<uint8_t>(MsgType::Shed));
  putU32(B, QueueDepth);
  putStr(B, Reason);
  return B;
}

std::string makeError(const std::string &Message) {
  std::string B;
  putU8(B, static_cast<uint8_t>(MsgType::Error));
  putStr(B, Message);
  return B;
}

std::string makeStatsReply(const std::string &Json) {
  std::string B;
  putU8(B, static_cast<uint8_t>(MsgType::StatsReply));
  putStr(B, Json);
  return B;
}

std::string makeTenantList(const std::vector<std::string> &Names) {
  std::string B;
  putU8(B, static_cast<uint8_t>(MsgType::TenantList));
  putU32(B, static_cast<uint32_t>(Names.size()));
  for (const std::string &N : Names)
    putStr(B, N);
  return B;
}

std::string makeBye() {
  return std::string(1, static_cast<char>(MsgType::Bye));
}

std::string makeHealth(uint64_t Pid, uint32_t Sessions,
                       const std::vector<TenantHealth> &Tenants) {
  std::string B;
  putU8(B, static_cast<uint8_t>(MsgType::Health));
  putU64(B, Pid);
  putU32(B, Sessions);
  putU32(B, static_cast<uint32_t>(Tenants.size()));
  for (const TenantHealth &T : Tenants) {
    putStr(B, T.Name);
    putU64(B, T.ServiceEpoch);
    putU64(B, T.StoreEpoch);
  }
  return B;
}

//===----------------------------------------------------------------------===//
// Decode
//===----------------------------------------------------------------------===//

bool decodeMessage(const uint8_t *Data, size_t Size, Message &Out) {
  WireReader R(Data, Size);
  uint8_t Tag = 0;
  if (!R.u8(Tag))
    return false;
  Out = Message();
  Out.Type = static_cast<MsgType>(Tag);
  switch (Out.Type) {
  case MsgType::Hello:
    return R.str(Out.Text) && R.done();
  case MsgType::Predict: {
    uint32_t Count = 0;
    if (!R.u32(Count) || Count == 0 || Count > kMaxBatchInputs)
      return false;
    Out.Inputs.reserve(Count);
    for (uint32_t I = 0; I < Count; ++I) {
      uint64_t In = 0;
      if (!R.u64(In))
        return false;
      Out.Inputs.push_back(In);
    }
    return R.done();
  }
  case MsgType::Stats:
  case MsgType::ListTenants:
  case MsgType::Shutdown:
  case MsgType::Ping:
  case MsgType::Bye:
    return R.done();
  case MsgType::TenantOk:
    return R.u64(Out.Epoch) && R.u32(Out.Landmarks) && R.u64(Out.NumInputs) &&
           R.done();
  case MsgType::Predictions: {
    uint32_t Count = 0;
    if (!R.u32(Count) || Count > kMaxBatchInputs)
      return false;
    Out.Choices.reserve(Count);
    for (uint32_t I = 0; I < Count; ++I) {
      PredictedChoice C;
      if (!R.u32(C.Landmark) || !R.u64(C.Epoch))
        return false;
      Out.Choices.push_back(C);
    }
    return R.done();
  }
  case MsgType::Shed:
    return R.u32(Out.QueueDepth) && R.str(Out.Text) && R.done();
  case MsgType::Error:
  case MsgType::StatsReply:
    return R.str(Out.Text) && R.done();
  case MsgType::TenantList: {
    uint32_t Count = 0;
    // Each name costs >= 2 bytes on the wire, so the payload length
    // already bounds a sane count; reject anything past the frame cap.
    if (!R.u32(Count) || Count > kMaxFrameBytes / 2)
      return false;
    Out.Names.reserve(Count < 1024 ? Count : 1024);
    for (uint32_t I = 0; I < Count; ++I) {
      std::string N;
      if (!R.str(N))
        return false;
      Out.Names.push_back(std::move(N));
    }
    return R.done();
  }
  case MsgType::Health: {
    if (!R.u64(Out.Pid) || !R.u32(Out.Sessions))
      return false;
    uint32_t Count = 0;
    // Each tenant entry costs >= 18 wire bytes, so the frame cap already
    // bounds a sane count; reject anything past it before reserving.
    if (!R.u32(Count) || Count > kMaxFrameBytes / 18)
      return false;
    Out.Tenants.reserve(Count < 1024 ? Count : 1024);
    for (uint32_t I = 0; I < Count; ++I) {
      TenantHealth T;
      if (!R.str(T.Name) || !R.u64(T.ServiceEpoch) || !R.u64(T.StoreEpoch))
        return false;
      Out.Tenants.push_back(std::move(T));
    }
    return R.done();
  }
  }
  return false; // unknown tag
}

//===----------------------------------------------------------------------===//
// Framed IO
//===----------------------------------------------------------------------===//

FrameStatus readFrame(int Fd, std::string &Payload) {
  uint8_t Hdr[4];
  int R = readAll(Fd, Hdr, sizeof(Hdr));
  if (R == 0)
    return FrameStatus::Closed;
  if (R == -1)
    return FrameStatus::Truncated;
  if (R < 0)
    return FrameStatus::IoError;
  uint32_t Len = 0;
  for (int I = 0; I < 4; ++I)
    Len |= static_cast<uint32_t>(Hdr[I]) << (8 * I);
  if (Len == 0 || Len > kMaxFrameBytes)
    return FrameStatus::TooLarge;
  Payload.resize(Len);
  R = readAll(Fd, &Payload[0], Len);
  if (R == 1)
    return FrameStatus::Ok;
  return R == -2 ? FrameStatus::IoError : FrameStatus::Truncated;
}

FrameStatus readFrameDeadline(int Fd, std::string &Payload,
                              double DeadlineSeconds) {
  if (DeadlineSeconds <= 0)
    return readFrame(Fd, Payload);
  // Block without a deadline for the first byte: idle sessions are
  // legitimate. Once a frame has started, the rest must arrive in time.
  uint8_t Hdr[4];
  int R = readAll(Fd, Hdr, 1);
  if (R == 0)
    return FrameStatus::Closed;
  if (R == -1)
    return FrameStatus::Truncated;
  if (R < 0)
    return FrameStatus::IoError;
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(DeadlineSeconds));
  R = readAllDeadline(Fd, Hdr + 1, 3, Deadline);
  if (R != 1)
    return R == -3   ? FrameStatus::TimedOut
           : R == -1 ? FrameStatus::Truncated
                     : FrameStatus::IoError;
  uint32_t Len = 0;
  for (int I = 0; I < 4; ++I)
    Len |= static_cast<uint32_t>(Hdr[I]) << (8 * I);
  if (Len == 0 || Len > kMaxFrameBytes)
    return FrameStatus::TooLarge;
  Payload.resize(Len);
  R = readAllDeadline(Fd, &Payload[0], Len, Deadline);
  if (R == 1)
    return FrameStatus::Ok;
  return R == -3   ? FrameStatus::TimedOut
         : R == -1 ? FrameStatus::Truncated
                   : FrameStatus::IoError;
}

FrameStatus writeFrame(int Fd, const std::string &Payload) {
  if (Payload.empty() || Payload.size() > kMaxFrameBytes)
    return FrameStatus::TooLarge;
  uint8_t Hdr[4];
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  for (int I = 0; I < 4; ++I)
    Hdr[I] = static_cast<uint8_t>(Len >> (8 * I));
  if (!writeAll(Fd, Hdr, sizeof(Hdr)) ||
      !writeAll(Fd, Payload.data(), Payload.size()))
    return FrameStatus::IoError;
  return FrameStatus::Ok;
}

} // namespace daemon
} // namespace pbt

//===- daemon/Protocol.h - pbt-serve wire protocol -------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The framed request/response protocol between a pbt-serve daemon and
/// its clients, over a Unix-domain stream socket.
///
/// Framing is length-prefixed: every message is a 4-byte little-endian
/// payload length (1 .. kMaxFrameBytes) followed by that many payload
/// bytes. The payload is one tag byte (MsgType) and a fixed
/// little-endian body per type; strings travel as a 2-byte length plus
/// bytes. Decoding is strict and total: every read is bounds-checked,
/// every count is capped before any allocation sizes off it, and a
/// payload must be consumed exactly -- truncated frames, oversized
/// lengths, trailing garbage and unknown tags all decode to a clean
/// failure, never a crash, over-read, or huge allocation. That is the
/// property the daemon fuzz wall (tests/daemon/) hammers on.
///
/// A session speaks: Hello (attach to a tenant by name), then any mix of
/// Predict (a batch of input ids answered by Predictions, or Shed when
/// the server's bounded request queue is full), Stats, ListTenants, and
/// Shutdown. The server answers exactly one response frame per request
/// frame, always.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_DAEMON_PROTOCOL_H
#define PBT_DAEMON_PROTOCOL_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pbt {
namespace daemon {

/// Hard cap on one frame's payload; a length prefix above this is a
/// protocol violation and the connection is dropped without allocating.
inline constexpr uint32_t kMaxFrameBytes = 1u << 20;
/// Cap on any string field (tenant names, error messages) on the wire.
inline constexpr uint32_t kMaxStringBytes = 1u << 12;
/// Cap on input ids per Predict request.
inline constexpr uint32_t kMaxBatchInputs = 1u << 16;

enum class MsgType : uint8_t {
  // Client -> server.
  Hello = 0x01,       ///< str tenant -- attach this session to a tenant
  Predict = 0x02,     ///< u32 count, count x u64 input id
  Stats = 0x03,       ///< no body -- server + per-tenant stats as JSON
  ListTenants = 0x04, ///< no body
  Shutdown = 0x05,    ///< no body -- ask the daemon to exit cleanly
  Ping = 0x06,        ///< no body -- liveness probe, answered by Health
  // Server -> client.
  TenantOk = 0x81,    ///< u64 epoch, u32 landmarks, u64 inputs
  Predictions = 0x82, ///< u32 count, count x (u32 landmark, u64 epoch)
  Shed = 0x83,        ///< u32 queue depth, str reason -- admission refusal
  Error = 0x84,       ///< str message
  StatsReply = 0x85,  ///< str JSON
  TenantList = 0x86,  ///< u32 count, count x str
  Bye = 0x87,         ///< shutdown acknowledged
  Health = 0x88,      ///< u64 pid, u32 sessions, u32 count, count x
                      ///< (str tenant, u64 service epoch, u64 store epoch)
};

/// One answered input of a Predict batch.
struct PredictedChoice {
  uint32_t Landmark = 0;
  uint64_t Epoch = 0;
};

/// One tenant's liveness line in a Health reply. The store epoch lets a
/// supervisor check that a replica has converged onto the model store's
/// CURRENT pointer; the service epoch distinguishes in-process hot-swaps.
struct TenantHealth {
  std::string Name;
  uint64_t ServiceEpoch = 0;
  uint64_t StoreEpoch = 0;
};

/// A decoded payload: the tag plus whichever fields its type carries.
struct Message {
  MsgType Type = MsgType::Error;
  /// Hello tenant / Shed reason / Error message / StatsReply JSON.
  std::string Text;
  /// Predict input ids.
  std::vector<uint64_t> Inputs;
  /// Predictions.
  std::vector<PredictedChoice> Choices;
  /// TenantList names.
  std::vector<std::string> Names;
  /// TenantOk.
  uint64_t Epoch = 0;
  uint32_t Landmarks = 0;
  uint64_t NumInputs = 0;
  /// Shed.
  uint32_t QueueDepth = 0;
  /// Health.
  uint64_t Pid = 0;
  uint32_t Sessions = 0;
  std::vector<TenantHealth> Tenants;
};

/// Strict payload decode (see file comment). Returns false -- with \p Out
/// unspecified -- on any malformed payload.
bool decodeMessage(const uint8_t *Data, size_t Size, Message &Out);
inline bool decodeMessage(const std::string &Payload, Message &Out) {
  return decodeMessage(reinterpret_cast<const uint8_t *>(Payload.data()),
                       Payload.size(), Out);
}

// Payload builders, one per message type.
std::string makeHello(const std::string &Tenant);
std::string makePredict(const std::vector<uint64_t> &Inputs);
std::string makeStats();
std::string makeListTenants();
std::string makeShutdown();
std::string makePing();
std::string makeTenantOk(uint64_t Epoch, uint32_t Landmarks,
                         uint64_t NumInputs);
std::string makePredictions(const std::vector<PredictedChoice> &Choices);
std::string makeShed(uint32_t QueueDepth, const std::string &Reason);
std::string makeError(const std::string &Message);
std::string makeStatsReply(const std::string &Json);
std::string makeTenantList(const std::vector<std::string> &Names);
std::string makeBye();
std::string makeHealth(uint64_t Pid, uint32_t Sessions,
                       const std::vector<TenantHealth> &Tenants);

//===----------------------------------------------------------------------===//
// Framed blocking IO over a connected socket fd
//===----------------------------------------------------------------------===//

enum class FrameStatus {
  Ok,       ///< one whole frame read/written
  Closed,   ///< orderly EOF before any byte of a frame
  Truncated,///< peer vanished mid-frame
  TooLarge, ///< length prefix exceeds kMaxFrameBytes (or is zero)
  IoError,  ///< errno-level failure
  TimedOut, ///< frame started but did not finish within the deadline
};

/// Reads one length-prefixed frame into \p Payload. Handles partial
/// reads; never allocates more than kMaxFrameBytes.
FrameStatus readFrame(int Fd, std::string &Payload);

/// Like readFrame, but once the first byte of a frame has arrived the
/// rest of it must arrive within \p DeadlineSeconds, or the read fails
/// with TimedOut. Waiting for a frame to *start* is unbounded -- an idle
/// session is legitimate; a peer that stalls mid-frame is not allowed to
/// pin a session thread. DeadlineSeconds <= 0 degrades to readFrame.
FrameStatus readFrameDeadline(int Fd, std::string &Payload,
                              double DeadlineSeconds);

/// Writes one length-prefixed frame. Handles partial writes; a peer that
/// disappeared mid-write is IoError, never SIGPIPE.
FrameStatus writeFrame(int Fd, const std::string &Payload);

} // namespace daemon
} // namespace pbt

#endif // PBT_DAEMON_PROTOCOL_H

//===- daemon/Transport.h - stream transports for pbt-serve ----------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Transport abstraction under the framed Protocol: the same
/// length-prefixed frames travel over either a Unix-domain stream socket
/// (co-located clients, the PR 7 default) or a TCP socket (cross-host
/// fleets and supervised replica processes).
///
/// Endpoints are spelled as strings so CLI flags, port files and client
/// endpoint lists stay uniform:
///
///   unix:/path/to.sock   explicit Unix-domain socket
///   /path/to.sock        bare path, Unix-domain (back-compat)
///   tcp:HOST:PORT        TCP; HOST resolves via getaddrinfo, PORT 0
///                        binds an ephemeral port (read it back from
///                        Listener::bound())
///
/// All fds are opened close-on-exec: a supervisor fork/execs replicas,
/// and listener or client fds must never leak into a child server.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_DAEMON_TRANSPORT_H
#define PBT_DAEMON_TRANSPORT_H

#include <cstdint>
#include <string>

namespace pbt {
namespace daemon {

/// A parsed listen/connect address for either transport.
struct Endpoint {
  enum class Kind { Unix, Tcp };
  Kind K = Kind::Unix;
  std::string Path; ///< Unix: socket path.
  std::string Host; ///< Tcp: hostname or numeric address.
  uint16_t Port = 0; ///< Tcp: port; 0 asks the kernel for one.
};

/// Parses an endpoint spec (see file comment). Returns false with \p Err
/// set on a malformed spec (empty path, non-numeric or out-of-range
/// port, missing host).
bool parseEndpoint(const std::string &Spec, Endpoint &Out, std::string &Err);

/// Canonical string form ("unix:/path" or "tcp:host:port"); parses back
/// to an equal endpoint.
std::string endpointString(const Endpoint &E);

/// A bound, listening stream socket on either transport. Not copyable;
/// closing unlinks a Unix socket path it bound.
class Listener {
public:
  Listener() = default;
  ~Listener() { close(); }
  Listener(const Listener &) = delete;
  Listener &operator=(const Listener &) = delete;
  Listener(Listener &&O) noexcept;
  Listener &operator=(Listener &&O) noexcept;

  /// socket/bind/listen. TCP sets SO_REUSEADDR and resolves an ephemeral
  /// port request, so bound() always carries the real port.
  bool open(const Endpoint &E, std::string &Err);

  /// Accepts one pending connection: returns a connected CLOEXEC fd, or
  /// -1 if nothing was pending or the listener is closed. Retries EINTR;
  /// TCP connections get TCP_NODELAY (small framed RPCs).
  int acceptConnection();

  int fd() const { return Fd; }
  bool valid() const { return Fd >= 0; }
  /// The endpoint actually bound (TCP port resolved).
  const Endpoint &bound() const { return Bound; }

  void close();

private:
  int Fd = -1;
  Endpoint Bound;
};

/// Connects to \p E with a wall-clock timeout: nonblocking connect plus
/// poll, EINTR-safe, CLOEXEC, TCP_NODELAY for TCP. Returns a connected
/// blocking fd, or -1 with \p Err set.
int connectEndpoint(const Endpoint &E, double TimeoutSeconds,
                    std::string &Err);

} // namespace daemon
} // namespace pbt

#endif // PBT_DAEMON_TRANSPORT_H

//===- daemon/ModelRegistry.cpp - Multi-tenant hot model registry ----------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "daemon/ModelRegistry.h"

#include "store/ModelStore.h"

#include <algorithm>
#include <utility>

namespace pbt {
namespace daemon {

namespace {

/// Builds the AdaptiveService for \p Model under \p Opts; shared by the
/// file path, the store path, and store hot-swaps (a swapped-in epoch
/// gets a fresh drift monitor and reservoir -- its serving history
/// starts at the promotion).
std::unique_ptr<runtime::AdaptiveService>
buildService(const registry::BenchmarkFactory &Factory,
             runtime::TunableProgram &Program, serialize::TrainedModel Model,
             const ModelRegistryOptions &Opts) {
  runtime::AdaptiveServiceOptions AO;
  AO.Monitor.Window = std::max(8u, Opts.Window);
  AO.Monitor.MinSamples = AO.Monitor.Window / 2;
  AO.Monitor.Cooldown = AO.Monitor.Window;
  AO.ReservoirSize = std::max(8u, Opts.Reservoir);
  AO.MinRetrainInputs = std::min<size_t>(16, AO.ReservoirSize);
  AO.Retrain = registry::reservoirRetrainOptions(
      Factory, Model.Meta.Scale, AO.ReservoirSize, Opts.Pool);
  AO.AutoAdapt = Opts.AutoAdapt;
  AO.Pool = Opts.Pool;
  return std::make_unique<runtime::AdaptiveService>(Program, std::move(Model),
                                                    AO);
}

} // namespace

serialize::LoadStatus
ModelRegistry::buildTenant(const std::string &Name,
                           const std::string &SourceDesc,
                           serialize::TrainedModel Model,
                           std::unique_ptr<Tenant> &Out) {
  const registry::BenchmarkFactory *Factory =
      registry::BenchmarkRegistry::instance().lookup(Model.Meta.Benchmark);
  if (!Factory)
    return serialize::LoadStatus::failure("model benchmark '" +
                                          Model.Meta.Benchmark +
                                          "' is not registered");

  auto T = std::make_unique<Tenant>();
  T->Name = Name.empty() ? Model.Meta.Benchmark : Name;
  T->ModelPath = SourceDesc;
  T->Benchmark = Model.Meta.Benchmark;
  T->Program = Factory->makeProgram(Model.Meta.Scale, Model.Meta.ProgramSeed);
  T->Landmarks = static_cast<unsigned>(Model.System.L1.Landmarks.size());
  T->Service = buildService(*Factory, *T->Program, std::move(Model), Opts);
  if (!T->Service->ready())
    return T->Service->status();
  Out = std::move(T);
  return serialize::LoadStatus::success();
}

serialize::LoadStatus ModelRegistry::publishTenant(std::unique_ptr<Tenant> T) {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (const auto &Existing : Tenants)
    if (Existing->Name == T->Name)
      return serialize::LoadStatus::failure(
          "duplicate tenant name '" + T->Name +
          "' (use --model=NAME=FILE to disambiguate)");
  Tenants.push_back(std::move(T));
  return serialize::LoadStatus::success();
}

serialize::LoadStatus ModelRegistry::addTenant(const std::string &Name,
                                               const std::string &ModelPath) {
  serialize::TrainedModel Model;
  serialize::LoadStatus Loaded = serialize::loadModelFile(ModelPath, Model);
  if (!Loaded)
    return Loaded;
  std::unique_ptr<Tenant> T;
  serialize::LoadStatus Built =
      buildTenant(Name, ModelPath, std::move(Model), T);
  if (!Built)
    return Built;
  return publishTenant(std::move(T));
}

serialize::LoadStatus
ModelRegistry::addStoreTenant(const std::string &Name,
                              const std::string &StoreDir) {
  store::VerifiedModel V;
  serialize::LoadStatus St = store::loadCurrentVerified(StoreDir, V);
  if (!St)
    return St;
  serialize::TrainedModel Model;
  St = serialize::loadModel(V.Text, Model);
  if (!St)
    return serialize::LoadStatus::failure(
        "store '" + StoreDir + "' epoch " + std::to_string(V.Epoch) + ": " +
        St.Error);
  std::unique_ptr<Tenant> T;
  St = buildTenant(Name, StoreDir, std::move(Model), T);
  if (!St)
    return St;
  T->StoreDir = StoreDir;
  T->StoreEpoch.store(V.Epoch);
  T->StoreRejects.store(V.RejectedLoads);
  return publishTenant(std::move(T));
}

size_t ModelRegistry::pollStores() {
  // Snapshot the tenant pointers (append-only table; addresses stable).
  std::vector<Tenant *> Watched;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (const auto &T : Tenants)
      if (!T->StoreDir.empty())
        Watched.push_back(T.get());
  }

  size_t Swapped = 0;
  for (Tenant *T : Watched) {
    uint64_t Pointed = 0;
    if (!store::readCurrentPointer(T->StoreDir, Pointed))
      continue;
    if (Pointed == 0 || Pointed == T->StoreEpoch.load())
      continue;

    store::VerifiedModel V;
    serialize::LoadStatus St = store::loadCurrentVerified(T->StoreDir, V);
    if (!St) {
      T->StoreRejects.fetch_add(1);
      continue; // nothing loadable; keep serving the held epoch
    }
    T->StoreRejects.fetch_add(V.RejectedLoads);
    if (V.Epoch == T->StoreEpoch.load())
      continue; // fallback converged on what we already serve

    serialize::TrainedModel Model;
    St = serialize::loadModel(V.Text, Model);
    if (!St) {
      T->StoreRejects.fetch_add(1);
      continue;
    }
    // Provenance must match: the tenant's compiled program was built for
    // the original model's (benchmark, scale, seed); a store that starts
    // publishing a different program is refused, not served.
    const serialize::ModelMeta &Now = T->Service->currentEpoch()->Model.Meta;
    if (Model.Meta.Benchmark != Now.Benchmark ||
        Model.Meta.Scale != Now.Scale ||
        Model.Meta.ProgramSeed != Now.ProgramSeed) {
      T->StoreRejects.fetch_add(1);
      continue;
    }

    unsigned Landmarks =
        static_cast<unsigned>(Model.System.L1.Landmarks.size());
    // swapModel is the operator-push path: validated against the bound
    // program, thread-safe against serving workers, no shadow gate (the
    // store's canary already gated this epoch).
    St = T->Service->swapModel(std::move(Model));
    if (!St) {
      T->StoreRejects.fetch_add(1);
      continue;
    }
    T->StoreEpoch.store(V.Epoch);
    T->Landmarks = Landmarks;
    T->StoreSwaps.fetch_add(1);
    ++Swapped;
  }
  return Swapped;
}

Tenant *ModelRegistry::find(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (const auto &T : Tenants)
    if (T->Name == Name)
      return T.get();
  return nullptr;
}

Tenant *ModelRegistry::at(size_t Idx) {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Idx < Tenants.size() ? Tenants[Idx].get() : nullptr;
}

size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Tenants.size();
}

std::vector<std::string> ModelRegistry::names() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<std::string> Out;
  Out.reserve(Tenants.size());
  for (const auto &T : Tenants)
    Out.push_back(T->Name);
  return Out;
}

} // namespace daemon
} // namespace pbt

//===- daemon/ModelRegistry.cpp - Multi-tenant hot model registry ----------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "daemon/ModelRegistry.h"

#include <algorithm>
#include <utility>

namespace pbt {
namespace daemon {

serialize::LoadStatus ModelRegistry::addTenant(const std::string &Name,
                                               const std::string &ModelPath) {
  serialize::TrainedModel Model;
  serialize::LoadStatus Loaded = serialize::loadModelFile(ModelPath, Model);
  if (!Loaded)
    return Loaded;

  const registry::BenchmarkFactory *Factory =
      registry::BenchmarkRegistry::instance().lookup(Model.Meta.Benchmark);
  if (!Factory)
    return serialize::LoadStatus::failure("model benchmark '" +
                                          Model.Meta.Benchmark +
                                          "' is not registered");

  auto T = std::make_unique<Tenant>();
  T->Name = Name.empty() ? Model.Meta.Benchmark : Name;
  T->ModelPath = ModelPath;
  T->Benchmark = Model.Meta.Benchmark;
  T->Program = Factory->makeProgram(Model.Meta.Scale, Model.Meta.ProgramSeed);
  T->Landmarks = static_cast<unsigned>(Model.System.L1.Landmarks.size());

  runtime::AdaptiveServiceOptions AO;
  AO.Monitor.Window = std::max(8u, Opts.Window);
  AO.Monitor.MinSamples = AO.Monitor.Window / 2;
  AO.Monitor.Cooldown = AO.Monitor.Window;
  AO.ReservoirSize = std::max(8u, Opts.Reservoir);
  AO.MinRetrainInputs = std::min<size_t>(16, AO.ReservoirSize);
  AO.Retrain = registry::reservoirRetrainOptions(
      *Factory, Model.Meta.Scale, AO.ReservoirSize, Opts.Pool);
  AO.AutoAdapt = Opts.AutoAdapt;
  AO.Pool = Opts.Pool;

  T->Service = std::make_unique<runtime::AdaptiveService>(
      *T->Program, std::move(Model), AO);
  if (!T->Service->ready())
    return T->Service->status();

  std::lock_guard<std::mutex> Lock(Mutex);
  for (const auto &Existing : Tenants)
    if (Existing->Name == T->Name)
      return serialize::LoadStatus::failure(
          "duplicate tenant name '" + T->Name +
          "' (use --model=NAME=FILE to disambiguate)");
  Tenants.push_back(std::move(T));
  return serialize::LoadStatus::success();
}

Tenant *ModelRegistry::find(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (const auto &T : Tenants)
    if (T->Name == Name)
      return T.get();
  return nullptr;
}

Tenant *ModelRegistry::at(size_t Idx) {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Idx < Tenants.size() ? Tenants[Idx].get() : nullptr;
}

size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Tenants.size();
}

std::vector<std::string> ModelRegistry::names() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<std::string> Out;
  Out.reserve(Tenants.size());
  for (const auto &T : Tenants)
    Out.push_back(T->Name);
  return Out;
}

} // namespace daemon
} // namespace pbt

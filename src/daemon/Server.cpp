//===- daemon/Server.cpp - pbt-serve daemon core ---------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "daemon/Server.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace pbt {
namespace daemon {

namespace {

/// Minimal JSON string escape (the daemon does not link the bench
/// harness's helpers).
std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

} // namespace

Server::Server(ModelRegistry &Registry, ServerOptions Options)
    : Registry(Registry), Opts(std::move(Options)),
      Queue(Opts.QueueCapacity) {
  if (Opts.Workers == 0)
    Opts.Workers = 1;
  if (Opts.BatchMax == 0)
    Opts.BatchMax = 1;
}

Server::~Server() { stop(); }

bool Server::start(std::string &Err) {
  if (Started) {
    Err = "server already started";
    return false;
  }
  if (Opts.SocketPath.empty() && Opts.Listen.empty()) {
    Err = "no listen endpoint: set SocketPath and/or Listen";
    return false;
  }
  Listeners.clear();
  auto Fail = [&](const std::string &Msg) {
    Err = Msg;
    Listeners.clear();
    return false;
  };
  if (!Opts.SocketPath.empty()) {
    Endpoint E;
    E.K = Endpoint::Kind::Unix;
    E.Path = Opts.SocketPath;
    Listeners.emplace_back();
    if (!Listeners.back().open(E, Err))
      return Fail(Err);
  }
  for (const std::string &Spec : Opts.Listen) {
    // A bare HOST:PORT here is TCP; "tcp:" prefixed specs also work.
    std::string Full = Spec.rfind("tcp:", 0) == 0 ? Spec : "tcp:" + Spec;
    Endpoint E;
    if (!parseEndpoint(Full, E, Err) || E.K != Endpoint::Kind::Tcp)
      return Fail("bad --listen endpoint '" + Spec + "': " + Err);
    Listeners.emplace_back();
    if (!Listeners.back().open(E, Err))
      return Fail(Err);
  }

  Started = true;
  StopFlag.store(false);
  Acceptor = std::thread([this] { acceptLoop(); });
  for (unsigned I = 0; I < Opts.Workers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
  return true;
}

void Server::requestStop() {
  StopFlag.store(true);
  StopCv.notify_all();
}

void Server::waitForStop() {
  std::unique_lock<std::mutex> Lock(StopMutex);
  StopCv.wait(Lock, [&] { return StopFlag.load(); });
}

void Server::stop() {
  if (!Started)
    return;
  requestStop();
  if (Acceptor.joinable())
    Acceptor.join();
  Listeners.clear(); // closes fds, unlinks Unix paths

  // Unblock every session read; their admitted requests are still served
  // because the workers only exit after the queue drains below.
  {
    std::lock_guard<std::mutex> Lock(SessionsMutex);
    for (auto &S : Sessions)
      if (S->Fd >= 0)
        ::shutdown(S->Fd, SHUT_RDWR);
  }
  for (;;) {
    std::unique_ptr<Session> S;
    {
      std::lock_guard<std::mutex> Lock(SessionsMutex);
      if (Sessions.empty())
        break;
      S = std::move(Sessions.back());
      Sessions.pop_back();
    }
    if (S->Thread.joinable())
      S->Thread.join();
    if (S->Fd >= 0)
      ::close(S->Fd);
  }

  Queue.close();
  for (std::thread &W : Workers)
    if (W.joinable())
      W.join();
  Workers.clear();

  Started = false;
}

std::vector<std::string> Server::boundEndpoints() const {
  std::vector<std::string> Out;
  Out.reserve(Listeners.size());
  for (const Listener &L : Listeners)
    if (L.valid())
      Out.push_back(endpointString(L.bound()));
  return Out;
}

//===----------------------------------------------------------------------===//
// Accept + session threads
//===----------------------------------------------------------------------===//

void Server::acceptLoop() {
  std::vector<pollfd> Polls(Listeners.size());
  while (!StopFlag.load()) {
    for (size_t I = 0; I < Listeners.size(); ++I) {
      Polls[I].fd = Listeners[I].fd();
      Polls[I].events = POLLIN;
      Polls[I].revents = 0;
    }
    int R = ::poll(Polls.data(), Polls.size(), 100);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      break;
    }

    // Reap sessions that ended on their own (client went away).
    {
      std::lock_guard<std::mutex> Lock(SessionsMutex);
      for (size_t I = 0; I < Sessions.size();) {
        if (Sessions[I]->Finished.load()) {
          if (Sessions[I]->Thread.joinable())
            Sessions[I]->Thread.join();
          if (Sessions[I]->Fd >= 0)
            ::close(Sessions[I]->Fd);
          Sessions.erase(Sessions.begin() + static_cast<long>(I));
        } else {
          ++I;
        }
      }
    }

    if (R == 0)
      continue;
    for (size_t I = 0; I < Listeners.size(); ++I) {
      if (!(Polls[I].revents & POLLIN))
        continue;
      int Fd = Listeners[I].acceptConnection();
      if (Fd < 0)
        continue;
      ConnCount.fetch_add(1, std::memory_order_relaxed);

      // Session cap: over the limit, answer one Shed frame and close
      // rather than spawning a thread -- a connection storm degrades to
      // refusals the client can see, not to unbounded thread growth.
      size_t Live;
      {
        std::lock_guard<std::mutex> Lock(SessionsMutex);
        Live = Sessions.size();
      }
      size_t Cap = Opts.MaxSessions > 0 ? Opts.MaxSessions : 1;
      if (Live >= Cap) {
        ShedSessionCount.fetch_add(1, std::memory_order_relaxed);
        writeFrame(Fd, makeShed(static_cast<uint32_t>(Live),
                                "session limit reached"));
        ::close(Fd);
        continue;
      }

      auto S = std::make_unique<Session>();
      S->Fd = Fd;
      Session *Raw = S.get();
      {
        std::lock_guard<std::mutex> Lock(SessionsMutex);
        Sessions.push_back(std::move(S));
      }
      Raw->Thread = std::thread([this, Raw] { sessionLoop(Raw); });
    }
  }
}

void Server::sessionLoop(Session *S) {
  Tenant *Attached = nullptr;
  std::string Payload;
  while (!StopFlag.load()) {
    FrameStatus FS = readFrameDeadline(S->Fd, Payload, Opts.ReadDeadline);
    if (FS == FrameStatus::Closed)
      break;
    if (FS == FrameStatus::TimedOut) {
      // The peer started a frame and stalled: drop it so it cannot pin
      // this session thread. One Error frame explains why, best-effort.
      StalledCount.fetch_add(1, std::memory_order_relaxed);
      writeFrame(S->Fd, makeError("read deadline exceeded mid-frame"));
      break;
    }
    if (FS == FrameStatus::TooLarge) {
      // The one malformed case we can still answer: the length prefix
      // itself was bad, so the stream position is lost -- reply, drop.
      MalformedCount.fetch_add(1, std::memory_order_relaxed);
      writeFrame(S->Fd, makeError("frame length invalid (cap " +
                                  std::to_string(kMaxFrameBytes) + ")"));
      break;
    }
    if (FS != FrameStatus::Ok) {
      // Truncated mid-frame or errno: the peer is gone or hostile.
      MalformedCount.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    Message M;
    if (!decodeMessage(Payload, M)) {
      MalformedCount.fetch_add(1, std::memory_order_relaxed);
      writeFrame(S->Fd, makeError("malformed message payload"));
      break;
    }
    if (!handleMessage(S, M, Attached))
      break;
  }
  S->Finished.store(true);
}

bool Server::handleMessage(Session *S, const Message &M, Tenant *&Attached) {
  switch (M.Type) {
  case MsgType::Hello: {
    Tenant *T = Registry.find(M.Text);
    if (!T)
      return writeFrame(S->Fd, makeError("unknown tenant '" + M.Text +
                                         "'")) == FrameStatus::Ok;
    Attached = T;
    return writeFrame(S->Fd,
                      makeTenantOk(T->Service->epoch(), T->Landmarks,
                                   T->Program->numInputs())) ==
           FrameStatus::Ok;
  }

  case MsgType::Predict: {
    if (!Attached)
      return writeFrame(S->Fd, makeError(
                                   "no tenant attached (send Hello first)")) ==
             FrameStatus::Ok;
    const size_t Universe = Attached->Program->numInputs();
    for (uint64_t In : M.Inputs)
      if (In >= Universe) {
        Attached->Errors.fetch_add(1, std::memory_order_relaxed);
        return writeFrame(S->Fd,
                          makeError("input id " + std::to_string(In) +
                                    " out of range (tenant has " +
                                    std::to_string(Universe) + " inputs)")) ==
               FrameStatus::Ok;
      }

    auto R = std::make_unique<Request>();
    R->T = Attached;
    R->Inputs.assign(M.Inputs.begin(), M.Inputs.end());
    std::future<std::vector<PredictedChoice>> Reply = R->Reply.get_future();

    if (!Queue.tryPush(std::move(R))) {
      // Admission control: the bounded queue is full (or shutting
      // down); refuse now rather than queue without limit.
      ShedCount.fetch_add(1, std::memory_order_relaxed);
      Attached->Shed.fetch_add(1, std::memory_order_relaxed);
      return writeFrame(S->Fd, makeShed(static_cast<uint32_t>(Queue.depth()),
                                        "request queue full")) ==
             FrameStatus::Ok;
    }
    // Recorded after the push so the high-water mark never exceeds the
    // configured capacity (a shed is not a depth).
    noteQueueDepth(Queue.depth());
    RequestCount.fetch_add(1, std::memory_order_relaxed);
    Attached->Requests.fetch_add(1, std::memory_order_relaxed);
    try {
      std::vector<PredictedChoice> Choices = Reply.get();
      return writeFrame(S->Fd, makePredictions(Choices)) == FrameStatus::Ok;
    } catch (const std::exception &E) {
      Attached->Errors.fetch_add(1, std::memory_order_relaxed);
      return writeFrame(S->Fd, makeError(std::string("serving failed: ") +
                                         E.what())) == FrameStatus::Ok;
    }
  }

  case MsgType::Stats:
    return writeFrame(S->Fd, makeStatsReply(statsJson())) == FrameStatus::Ok;

  case MsgType::Ping: {
    // Liveness + convergence probe: which process is this, how loaded,
    // and which store epoch each tenant is actually serving.
    std::vector<TenantHealth> Tenants;
    for (size_t I = 0;; ++I) {
      Tenant *T = Registry.at(I);
      if (!T)
        break;
      TenantHealth H;
      H.Name = T->Name;
      H.ServiceEpoch = T->Service->epoch();
      H.StoreEpoch = T->StoreEpoch.load(std::memory_order_relaxed);
      Tenants.push_back(std::move(H));
    }
    uint32_t Live;
    {
      std::lock_guard<std::mutex> Lock(SessionsMutex);
      Live = static_cast<uint32_t>(Sessions.size());
    }
    return writeFrame(S->Fd,
                      makeHealth(static_cast<uint64_t>(::getpid()), Live,
                                 Tenants)) == FrameStatus::Ok;
  }

  case MsgType::ListTenants:
    return writeFrame(S->Fd, makeTenantList(Registry.names())) ==
           FrameStatus::Ok;

  case MsgType::Shutdown:
    writeFrame(S->Fd, makeBye());
    requestStop();
    return false;

  default:
    // A server->client tag (or anything else) from a client is a
    // protocol violation.
    MalformedCount.fetch_add(1, std::memory_order_relaxed);
    writeFrame(S->Fd, makeError("unexpected message type"));
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Batch workers
//===----------------------------------------------------------------------===//

void Server::noteQueueDepth(size_t Depth) {
  uint64_t Cur = MaxDepth.load(std::memory_order_relaxed);
  while (Depth > Cur &&
         !MaxDepth.compare_exchange_weak(Cur, Depth,
                                         std::memory_order_relaxed)) {
  }
}

void Server::workerLoop() {
  std::vector<RequestPtr> Batch;
  RequestPtr First;
  while (Queue.pop(First)) {
    Batch.clear();
    Batch.push_back(std::move(First));

    // Adaptive micro-batching: the deeper the backlog, the longer this
    // worker lingers to gather a bigger batch; an idle queue costs no
    // added latency at all.
    size_t Depth = Queue.depth();
    noteQueueDepth(Depth);
    uint64_t WindowUs =
        std::min<uint64_t>(Opts.WindowMaxUs,
                           static_cast<uint64_t>(Depth) * Opts.WindowPerDepthUs);
    auto Deadline =
        std::chrono::steady_clock::now() + std::chrono::microseconds(WindowUs);
    while (Batch.size() < Opts.BatchMax) {
      RequestPtr Next;
      if (WindowUs == 0) {
        if (!Queue.tryPop(Next))
          break;
      } else {
        auto Left = Deadline - std::chrono::steady_clock::now();
        if (Left.count() <= 0 || !Queue.tryPopFor(Next, Left))
          break;
      }
      Batch.push_back(std::move(Next));
    }

    BatchCount.fetch_add(1, std::memory_order_relaxed);
    BatchedRequestCount.fetch_add(Batch.size(), std::memory_order_relaxed);
    serveBatch(Batch);
  }
}

void Server::serveBatch(std::vector<RequestPtr> &Batch) {
  // Group by tenant, order-preserving: decisions are per-input
  // deterministic, so grouping never changes an answer, only batching
  // efficiency.
  for (size_t I = 0; I < Batch.size(); ++I) {
    if (!Batch[I])
      continue;
    Tenant *T = Batch[I]->T;
    std::vector<Request *> Group;
    std::vector<size_t> AllInputs;
    for (size_t J = I; J < Batch.size(); ++J) {
      if (!Batch[J] || Batch[J]->T != T)
        continue;
      Group.push_back(Batch[J].get());
      AllInputs.insert(AllInputs.end(), Batch[J]->Inputs.begin(),
                       Batch[J]->Inputs.end());
    }

    try {
      std::vector<runtime::AdaptiveService::Decision> Decisions;
      Decisions.reserve(AllInputs.size());
      {
        std::lock_guard<std::mutex> Lock(T->ServeMutex);
        if (Opts.Adapt) {
          // Observing mode: feed the tenant's drift monitor and
          // reservoir; serve() runs the adaptation loop inline.
          for (size_t In : AllInputs)
            Decisions.push_back(T->Service->serve(In));
        } else {
          Decisions = T->Service->decideBatch(AllInputs, nullptr);
        }
      }
      size_t Cursor = 0;
      for (Request *R : Group) {
        std::vector<PredictedChoice> Choices;
        Choices.reserve(R->Inputs.size());
        for (size_t K = 0; K < R->Inputs.size(); ++K, ++Cursor)
          Choices.push_back({Decisions[Cursor].Landmark,
                             Decisions[Cursor].Epoch});
        R->Reply.set_value(std::move(Choices));
      }
      DecisionCount.fetch_add(AllInputs.size(), std::memory_order_relaxed);
      T->Decisions.fetch_add(AllInputs.size(), std::memory_order_relaxed);
      T->Batches.fetch_add(1, std::memory_order_relaxed);
    } catch (...) {
      std::exception_ptr E = std::current_exception();
      for (Request *R : Group)
        R->Reply.set_exception(E);
    }

    // Consume the group (including Batch[I] itself).
    for (size_t J = I; J < Batch.size(); ++J)
      if (Batch[J] && Batch[J]->T == T)
        Batch[J].reset();
  }
}

//===----------------------------------------------------------------------===//
// Stats
//===----------------------------------------------------------------------===//

ServerStats Server::stats() const {
  ServerStats S;
  S.Connections = ConnCount.load(std::memory_order_relaxed);
  S.Requests = RequestCount.load(std::memory_order_relaxed);
  S.Decisions = DecisionCount.load(std::memory_order_relaxed);
  S.Shed = ShedCount.load(std::memory_order_relaxed);
  S.Malformed = MalformedCount.load(std::memory_order_relaxed);
  S.Batches = BatchCount.load(std::memory_order_relaxed);
  S.BatchedRequests = BatchedRequestCount.load(std::memory_order_relaxed);
  S.MaxQueueDepth = MaxDepth.load(std::memory_order_relaxed);
  S.ShedSessions = ShedSessionCount.load(std::memory_order_relaxed);
  S.Stalled = StalledCount.load(std::memory_order_relaxed);
  return S;
}

std::string Server::statsJson() const {
  ServerStats S = stats();
  std::string J = "{";
  J += "\"connections\": " + std::to_string(S.Connections);
  J += ", \"requests\": " + std::to_string(S.Requests);
  J += ", \"decisions\": " + std::to_string(S.Decisions);
  J += ", \"shed\": " + std::to_string(S.Shed);
  J += ", \"malformed\": " + std::to_string(S.Malformed);
  J += ", \"batches\": " + std::to_string(S.Batches);
  J += ", \"batched_requests\": " + std::to_string(S.BatchedRequests);
  J += ", \"max_queue_depth\": " + std::to_string(S.MaxQueueDepth);
  J += ", \"shed_sessions\": " + std::to_string(S.ShedSessions);
  J += ", \"stalled\": " + std::to_string(S.Stalled);
  J += ", \"max_sessions\": " + std::to_string(Opts.MaxSessions);
  J += ", \"queue_capacity\": " + std::to_string(Queue.capacity());
  J += ", \"workers\": " + std::to_string(Opts.Workers);
  J += ", \"batch_max\": " + std::to_string(Opts.BatchMax);
  J += std::string(", \"adapt\": ") + (Opts.Adapt ? "true" : "false");
  J += ", \"tenants\": [";
  for (size_t I = 0;; ++I) {
    Tenant *T = Registry.at(I);
    if (!T)
      break;
    runtime::AdaptiveService::StatsSnapshot A = T->Service->stats();
    if (I)
      J += ", ";
    J += "{\"name\": \"" + jsonEscape(T->Name) + "\"";
    J += ", \"benchmark\": \"" + jsonEscape(T->Benchmark) + "\"";
    J += ", \"model\": \"" + jsonEscape(T->ModelPath) + "\"";
    J += ", \"epoch\": " + std::to_string(T->Service->epoch());
    J += ", \"landmarks\": " + std::to_string(T->Landmarks);
    J += ", \"inputs\": " + std::to_string(T->Program->numInputs());
    J += ", \"requests\": " +
         std::to_string(T->Requests.load(std::memory_order_relaxed));
    J += ", \"decisions\": " +
         std::to_string(T->Decisions.load(std::memory_order_relaxed));
    J += ", \"batches\": " +
         std::to_string(T->Batches.load(std::memory_order_relaxed));
    J += ", \"shed\": " +
         std::to_string(T->Shed.load(std::memory_order_relaxed));
    J += ", \"errors\": " +
         std::to_string(T->Errors.load(std::memory_order_relaxed));
    J += ", \"service_decisions\": " + std::to_string(A.Decisions);
    J += ", \"memoized\": " + std::to_string(A.MemoizedDecisions);
    J += ", \"drift_detections\": " + std::to_string(A.DriftDetections);
    J += ", \"retrains\": " + std::to_string(A.Retrains);
    J += ", \"swaps\": " + std::to_string(A.Swaps);
    J += ", \"skipped_retrains\": " + std::to_string(A.SkippedRetrains);
    J += ", \"last_skip_reason\": \"" + jsonEscape(A.LastSkipReason) + "\"";
    J += "}";
  }
  J += "]}";
  return J;
}

} // namespace daemon
} // namespace pbt

//===- daemon/ModelRegistry.h - Multi-tenant hot model registry ------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's tenant table: many trained models kept hot in one
/// pbt-serve process, each compiled into its own AdaptiveService with a
/// private DriftMonitor, reservoir, and epoch counter. A tenant is built
/// from a persisted model file -- the model's provenance (benchmark key,
/// scale, program seed) rebuilds the exact program it was trained on,
/// like `pbt-bench predict`/`stream` do -- and is addressed by name on
/// the wire (Hello).
///
/// AdaptiveService's contract is one serving thread; in the daemon any
/// batch worker may pick up any tenant's requests, so each tenant
/// carries a ServeMutex that makes "the serving thread" a role the
/// workers pass around rather than a fixed thread. Registration happens
/// at startup, before the server accepts connections; lookups afterwards
/// are read-only and lock-free.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_DAEMON_MODELREGISTRY_H
#define PBT_DAEMON_MODELREGISTRY_H

#include "registry/BenchmarkRegistry.h"
#include "runtime/AdaptiveService.h"
#include "serialize/ModelIO.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pbt {
namespace daemon {

/// One hot model: the rebuilt program, its adaptive serving loop, and
/// the mutex that serializes serving across batch workers.
struct Tenant {
  std::string Name;
  std::string ModelPath;
  std::string Benchmark;
  registry::ProgramPtr Program;
  std::unique_ptr<runtime::AdaptiveService> Service;
  /// Serializes serve()/decideBatch()/adaptNow() across batch workers
  /// (AdaptiveService expects a single serving thread).
  std::mutex ServeMutex;
  /// Atomic: store hot-swaps update it while Hello handlers read it.
  std::atomic<unsigned> Landmarks{0};
  /// Store-backed tenants (addStoreTenant): the watched store directory
  /// and the store epoch currently serving. Empty/0 for file tenants.
  /// StoreEpoch is atomic so stats readers race cleanly with the poller.
  std::string StoreDir;
  std::atomic<uint64_t> StoreEpoch{0};
  // Daemon-side accounting (the service keeps its own decision totals).
  std::atomic<uint64_t> Requests{0};
  std::atomic<uint64_t> Decisions{0};
  std::atomic<uint64_t> Batches{0};
  std::atomic<uint64_t> StoreSwaps{0};
  std::atomic<uint64_t> StoreRejects{0};
  /// Per-tenant admission refusals and error replies, so dashboards and
  /// quarantine decisions can tell tenants apart (the server also keeps
  /// global totals).
  std::atomic<uint64_t> Shed{0};
  std::atomic<uint64_t> Errors{0};
};

struct ModelRegistryOptions {
  /// Drift-monitor window per tenant (mirrors `pbt-bench stream`
  /// --window).
  unsigned Window = 64;
  /// Shadow-retrain reservoir capacity per tenant (--reservoir).
  unsigned Reservoir = 48;
  /// serve()-driven drift adaptation; off = frozen decideBatch serving.
  bool AutoAdapt = false;
  /// Parallelises per-tenant shadow retraining; may be null.
  support::ThreadPool *Pool = nullptr;
};

class ModelRegistry {
public:
  explicit ModelRegistry(ModelRegistryOptions Options = {})
      : Opts(Options) {}

  /// Loads \p ModelPath, rebuilds its program from provenance, and
  /// publishes it as \p Name (empty = the model's benchmark key).
  /// Duplicate names and unregistered benchmarks fail.
  serialize::LoadStatus addTenant(const std::string &Name,
                                  const std::string &ModelPath);

  /// Like addTenant, but the model comes from a crash-safe model store
  /// directory (store/ModelStore.h): the CURRENT epoch is loaded
  /// checksum-verified (falling back past torn images), and pollStores()
  /// hot-swaps the tenant whenever a rollout promotes a new epoch.
  serialize::LoadStatus addStoreTenant(const std::string &Name,
                                       const std::string &StoreDir);

  /// Polls every store-backed tenant's CURRENT pointer and hot-swaps
  /// those whose store promoted a new epoch (verified load; a torn or
  /// corrupt image is rejected and counted, never served). A swap that
  /// fails provenance/bind leaves the tenant serving its held epoch.
  /// Returns the number of tenants swapped. Safe to call from the
  /// daemon's park loop while workers serve.
  size_t pollStores();

  /// Name lookup (wire path); nullptr when unknown.
  Tenant *find(const std::string &Name);
  Tenant *at(size_t Idx);
  size_t size() const;
  std::vector<std::string> names() const;
  const ModelRegistryOptions &options() const { return Opts; }

private:
  serialize::LoadStatus buildTenant(const std::string &Name,
                                    const std::string &SourceDesc,
                                    serialize::TrainedModel Model,
                                    std::unique_ptr<Tenant> &Out);
  serialize::LoadStatus publishTenant(std::unique_ptr<Tenant> T);

  ModelRegistryOptions Opts;
  mutable std::mutex Mutex;
  /// Append-only; unique_ptr keeps Tenant addresses stable across
  /// growth, so find() results stay valid for the process lifetime.
  std::vector<std::unique_ptr<Tenant>> Tenants;
};

} // namespace daemon
} // namespace pbt

#endif // PBT_DAEMON_MODELREGISTRY_H

//===- daemon/Client.cpp - pbt-serve client --------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "daemon/Client.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace pbt {
namespace daemon {

bool DaemonClient::connect(const std::string &SocketPath, std::string &Err) {
  close();
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.empty() || SocketPath.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path empty or too long: '" + SocketPath + "'";
    return false;
  }
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket(): ") + std::strerror(errno);
    return false;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Err = "connect('" + SocketPath + "'): " + std::strerror(errno);
    ::close(Fd);
    Fd = -1;
    return false;
  }
  return true;
}

bool DaemonClient::connectWithRetry(const std::string &SocketPath,
                                    double TimeoutSeconds, std::string &Err) {
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(TimeoutSeconds);
  for (;;) {
    if (connect(SocketPath, Err))
      return true;
    if (std::chrono::steady_clock::now() >= Deadline)
      return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

void DaemonClient::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool DaemonClient::roundTrip(const std::string &Payload, Message &Reply,
                             std::string &Err) {
  if (Fd < 0) {
    Err = "not connected";
    return false;
  }
  if (writeFrame(Fd, Payload) != FrameStatus::Ok) {
    Err = "request write failed (server gone?)";
    return false;
  }
  std::string In;
  FrameStatus FS = readFrame(Fd, In);
  if (FS != FrameStatus::Ok) {
    Err = FS == FrameStatus::Closed ? "server closed the connection"
                                    : "response read failed";
    return false;
  }
  if (!decodeMessage(In, Reply)) {
    Err = "malformed server reply";
    return false;
  }
  return true;
}

bool DaemonClient::attach(const std::string &Tenant, AttachInfo &Out,
                          std::string &Err) {
  Message Reply;
  if (!roundTrip(makeHello(Tenant), Reply, Err))
    return false;
  if (Reply.Type == MsgType::Error) {
    Err = Reply.Text;
    return false;
  }
  if (Reply.Type != MsgType::TenantOk) {
    Err = "unexpected reply to Hello";
    return false;
  }
  Out.Epoch = Reply.Epoch;
  Out.Landmarks = Reply.Landmarks;
  Out.NumInputs = Reply.NumInputs;
  return true;
}

DaemonClient::PredictOutcome
DaemonClient::predict(const std::vector<uint64_t> &Inputs,
                      std::vector<PredictedChoice> &Choices,
                      std::string &Err) {
  Message Reply;
  if (!roundTrip(makePredict(Inputs), Reply, Err))
    return PredictOutcome::Error;
  switch (Reply.Type) {
  case MsgType::Predictions:
    if (Reply.Choices.size() != Inputs.size()) {
      Err = "prediction count mismatch";
      return PredictOutcome::Error;
    }
    Choices = std::move(Reply.Choices);
    return PredictOutcome::Ok;
  case MsgType::Shed:
    Err = Reply.Text;
    return PredictOutcome::Shed;
  case MsgType::Error:
    Err = Reply.Text;
    return PredictOutcome::Error;
  default:
    Err = "unexpected reply to Predict";
    return PredictOutcome::Error;
  }
}

bool DaemonClient::stats(std::string &JsonOut, std::string &Err) {
  Message Reply;
  if (!roundTrip(makeStats(), Reply, Err))
    return false;
  if (Reply.Type != MsgType::StatsReply) {
    Err = Reply.Type == MsgType::Error ? Reply.Text
                                       : "unexpected reply to Stats";
    return false;
  }
  JsonOut = std::move(Reply.Text);
  return true;
}

bool DaemonClient::listTenants(std::vector<std::string> &Names,
                               std::string &Err) {
  Message Reply;
  if (!roundTrip(makeListTenants(), Reply, Err))
    return false;
  if (Reply.Type != MsgType::TenantList) {
    Err = Reply.Type == MsgType::Error ? Reply.Text
                                       : "unexpected reply to ListTenants";
    return false;
  }
  Names = std::move(Reply.Names);
  return true;
}

bool DaemonClient::shutdownServer(std::string &Err) {
  Message Reply;
  if (!roundTrip(makeShutdown(), Reply, Err))
    return false;
  if (Reply.Type != MsgType::Bye) {
    Err = "unexpected reply to Shutdown";
    return false;
  }
  return true;
}

bool DaemonClient::sendRaw(const void *Data, size_t Size) {
  if (Fd < 0)
    return false;
  const char *P = static_cast<const char *>(Data);
  size_t Sent = 0;
  while (Sent < Size) {
    ssize_t N = ::send(Fd, P + Sent, Size - Sent, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Sent += static_cast<size_t>(N);
  }
  return true;
}

} // namespace daemon
} // namespace pbt

//===- daemon/Client.cpp - pbt-serve client --------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "daemon/Client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

namespace pbt {
namespace daemon {

namespace {

timeval toTimeval(double Seconds) {
  timeval TV{};
  TV.tv_sec = static_cast<time_t>(Seconds);
  TV.tv_usec =
      static_cast<suseconds_t>((Seconds - static_cast<double>(TV.tv_sec)) *
                               1e6);
  if (TV.tv_sec == 0 && TV.tv_usec == 0)
    TV.tv_usec = 1; // 0/0 would mean "no timeout" to setsockopt
  return TV;
}

} // namespace

bool DaemonClient::connect(const std::string &SocketPath, std::string &Err) {
  close();
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.empty() || SocketPath.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path empty or too long: '" + SocketPath + "'";
    return false;
  }
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket(): ") + std::strerror(errno);
    return false;
  }

  auto Abort = [&](const std::string &Msg) {
    Err = Msg;
    ::close(Fd);
    Fd = -1;
    return false;
  };

  // Nonblocking connect + poll bounds the connect itself (a listening
  // socket with a full backlog can otherwise block indefinitely).
  int Flags = 0;
  if (Opts.ConnectTimeout > 0) {
    Flags = ::fcntl(Fd, F_GETFL, 0);
    if (Flags < 0 || ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) < 0)
      return Abort(std::string("fcntl(O_NONBLOCK): ") + std::strerror(errno));
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    if (Opts.ConnectTimeout <= 0 || errno != EINPROGRESS)
      return Abort("connect('" + SocketPath + "'): " + std::strerror(errno));
    pollfd PFD{};
    PFD.fd = Fd;
    PFD.events = POLLOUT;
    int Ms = static_cast<int>(Opts.ConnectTimeout * 1000.0);
    int Ready = ::poll(&PFD, 1, Ms > 0 ? Ms : 1);
    if (Ready == 0)
      return Abort("connect('" + SocketPath + "'): timed out after " +
                   std::to_string(Ms) + "ms");
    if (Ready < 0)
      return Abort(std::string("poll(): ") + std::strerror(errno));
    int SockErr = 0;
    socklen_t Len = sizeof(SockErr);
    if (::getsockopt(Fd, SOL_SOCKET, SO_ERROR, &SockErr, &Len) < 0 ||
        SockErr != 0)
      return Abort("connect('" + SocketPath +
                   "'): " + std::strerror(SockErr ? SockErr : errno));
  }
  if (Opts.ConnectTimeout > 0 && ::fcntl(Fd, F_SETFL, Flags) < 0)
    return Abort(std::string("fcntl(restore): ") + std::strerror(errno));

  // Arm the per-operation I/O timeouts: a server that accepts and then
  // wedges turns into an EAGAIN read error instead of a hung client.
  if (Opts.IoTimeout > 0) {
    timeval TV = toTimeval(Opts.IoTimeout);
    if (::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &TV, sizeof(TV)) < 0 ||
        ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &TV, sizeof(TV)) < 0)
      return Abort(std::string("setsockopt(timeouts): ") +
                   std::strerror(errno));
  }
  return true;
}

bool DaemonClient::connectWithRetry(const std::string &SocketPath,
                                    double TimeoutSeconds, std::string &Err) {
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(TimeoutSeconds);
  double Backoff = Opts.BackoffSeconds;
  unsigned MaxAttempts = std::max(1u, Opts.MaxConnectAttempts);
  for (unsigned Attempt = 1;; ++Attempt) {
    if (connect(SocketPath, Err))
      return true;
    if (Attempt >= MaxAttempts) {
      Err += " (gave up after " + std::to_string(Attempt) + " attempts)";
      return false;
    }
    if (std::chrono::steady_clock::now() >= Deadline)
      return false;
    std::this_thread::sleep_for(std::chrono::duration<double>(Backoff));
    Backoff = std::min(Backoff * 2.0, Opts.BackoffCapSeconds);
  }
}

void DaemonClient::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool DaemonClient::roundTrip(const std::string &Payload, Message &Reply,
                             std::string &Err) {
  if (Fd < 0) {
    Err = "not connected";
    return false;
  }
  if (writeFrame(Fd, Payload) != FrameStatus::Ok) {
    Err = "request write failed (server gone?)";
    return false;
  }
  std::string In;
  FrameStatus FS = readFrame(Fd, In);
  if (FS != FrameStatus::Ok) {
    Err = FS == FrameStatus::Closed ? "server closed the connection"
                                    : "response read failed";
    return false;
  }
  if (!decodeMessage(In, Reply)) {
    Err = "malformed server reply";
    return false;
  }
  return true;
}

bool DaemonClient::attach(const std::string &Tenant, AttachInfo &Out,
                          std::string &Err) {
  Message Reply;
  if (!roundTrip(makeHello(Tenant), Reply, Err))
    return false;
  if (Reply.Type == MsgType::Error) {
    Err = Reply.Text;
    return false;
  }
  if (Reply.Type != MsgType::TenantOk) {
    Err = "unexpected reply to Hello";
    return false;
  }
  Out.Epoch = Reply.Epoch;
  Out.Landmarks = Reply.Landmarks;
  Out.NumInputs = Reply.NumInputs;
  return true;
}

DaemonClient::PredictOutcome
DaemonClient::predict(const std::vector<uint64_t> &Inputs,
                      std::vector<PredictedChoice> &Choices,
                      std::string &Err) {
  Message Reply;
  if (!roundTrip(makePredict(Inputs), Reply, Err))
    return PredictOutcome::Error;
  switch (Reply.Type) {
  case MsgType::Predictions:
    if (Reply.Choices.size() != Inputs.size()) {
      Err = "prediction count mismatch";
      return PredictOutcome::Error;
    }
    Choices = std::move(Reply.Choices);
    return PredictOutcome::Ok;
  case MsgType::Shed:
    Err = Reply.Text;
    return PredictOutcome::Shed;
  case MsgType::Error:
    Err = Reply.Text;
    return PredictOutcome::Error;
  default:
    Err = "unexpected reply to Predict";
    return PredictOutcome::Error;
  }
}

bool DaemonClient::stats(std::string &JsonOut, std::string &Err) {
  Message Reply;
  if (!roundTrip(makeStats(), Reply, Err))
    return false;
  if (Reply.Type != MsgType::StatsReply) {
    Err = Reply.Type == MsgType::Error ? Reply.Text
                                       : "unexpected reply to Stats";
    return false;
  }
  JsonOut = std::move(Reply.Text);
  return true;
}

bool DaemonClient::listTenants(std::vector<std::string> &Names,
                               std::string &Err) {
  Message Reply;
  if (!roundTrip(makeListTenants(), Reply, Err))
    return false;
  if (Reply.Type != MsgType::TenantList) {
    Err = Reply.Type == MsgType::Error ? Reply.Text
                                       : "unexpected reply to ListTenants";
    return false;
  }
  Names = std::move(Reply.Names);
  return true;
}

bool DaemonClient::shutdownServer(std::string &Err) {
  Message Reply;
  if (!roundTrip(makeShutdown(), Reply, Err))
    return false;
  if (Reply.Type != MsgType::Bye) {
    Err = "unexpected reply to Shutdown";
    return false;
  }
  return true;
}

bool DaemonClient::sendRaw(const void *Data, size_t Size) {
  if (Fd < 0)
    return false;
  const char *P = static_cast<const char *>(Data);
  size_t Sent = 0;
  while (Sent < Size) {
    ssize_t N = ::send(Fd, P + Sent, Size - Sent, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Sent += static_cast<size_t>(N);
  }
  return true;
}

} // namespace daemon
} // namespace pbt

//===- daemon/Client.cpp - pbt-serve client --------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "daemon/Client.h"

#include "daemon/Transport.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace pbt {
namespace daemon {

namespace {

timeval toTimeval(double Seconds) {
  timeval TV{};
  TV.tv_sec = static_cast<time_t>(Seconds);
  TV.tv_usec =
      static_cast<suseconds_t>((Seconds - static_cast<double>(TV.tv_sec)) *
                               1e6);
  if (TV.tv_sec == 0 && TV.tv_usec == 0)
    TV.tv_usec = 1; // 0/0 would mean "no timeout" to setsockopt
  return TV;
}

double monotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

} // namespace

bool DaemonClient::connect(const std::string &EndpointSpec, std::string &Err) {
  close();
  Endpoint E;
  if (!parseEndpoint(EndpointSpec, E, Err))
    return false;
  Fd = connectEndpoint(E, Opts.ConnectTimeout, Err);
  if (Fd < 0)
    return false;

  // Arm the per-operation I/O timeouts: a server that accepts and then
  // wedges turns into an EAGAIN read error instead of a hung client.
  if (Opts.IoTimeout > 0) {
    timeval TV = toTimeval(Opts.IoTimeout);
    if (::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &TV, sizeof(TV)) < 0 ||
        ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &TV, sizeof(TV)) < 0) {
      Err = std::string("setsockopt(timeouts): ") + std::strerror(errno);
      close();
      return false;
    }
  }
  return true;
}

bool DaemonClient::connectWithRetry(const std::string &EndpointSpec,
                                    double TimeoutSeconds, std::string &Err) {
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(TimeoutSeconds);
  double Backoff = Opts.BackoffSeconds;
  unsigned MaxAttempts = std::max(1u, Opts.MaxConnectAttempts);
  for (unsigned Attempt = 1;; ++Attempt) {
    if (connect(EndpointSpec, Err))
      return true;
    if (Attempt >= MaxAttempts) {
      Err += " (gave up after " + std::to_string(Attempt) + " attempts)";
      return false;
    }
    if (std::chrono::steady_clock::now() >= Deadline)
      return false;
    if (Opts.SleepHook)
      Opts.SleepHook(Backoff);
    else
      std::this_thread::sleep_for(std::chrono::duration<double>(Backoff));
    Backoff = std::min(Backoff * 2.0, Opts.BackoffCapSeconds);
  }
}

void DaemonClient::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool DaemonClient::roundTrip(const std::string &Payload, Message &Reply,
                             std::string &Err) {
  TransportFailed = true;
  if (Fd < 0) {
    Err = "not connected";
    return false;
  }
  if (writeFrame(Fd, Payload) != FrameStatus::Ok) {
    Err = "request write failed (server gone?)";
    return false;
  }
  std::string In;
  FrameStatus FS = readFrame(Fd, In);
  if (FS != FrameStatus::Ok) {
    Err = FS == FrameStatus::Closed ? "server closed the connection"
                                    : "response read failed";
    return false;
  }
  if (!decodeMessage(In, Reply)) {
    Err = "malformed server reply";
    return false;
  }
  TransportFailed = false;
  return true;
}

bool DaemonClient::attach(const std::string &Tenant, AttachInfo &Out,
                          std::string &Err) {
  Message Reply;
  if (!roundTrip(makeHello(Tenant), Reply, Err))
    return false;
  if (Reply.Type == MsgType::Error || Reply.Type == MsgType::Shed) {
    // Shed here is the session cap ("session limit reached"), answered
    // before the server would spawn a session thread.
    Err = Reply.Text;
    return false;
  }
  if (Reply.Type != MsgType::TenantOk) {
    Err = "unexpected reply to Hello";
    return false;
  }
  Out.Epoch = Reply.Epoch;
  Out.Landmarks = Reply.Landmarks;
  Out.NumInputs = Reply.NumInputs;
  return true;
}

DaemonClient::PredictOutcome
DaemonClient::predict(const std::vector<uint64_t> &Inputs,
                      std::vector<PredictedChoice> &Choices,
                      std::string &Err) {
  Message Reply;
  if (!roundTrip(makePredict(Inputs), Reply, Err))
    return PredictOutcome::Error;
  switch (Reply.Type) {
  case MsgType::Predictions:
    if (Reply.Choices.size() != Inputs.size()) {
      Err = "prediction count mismatch";
      return PredictOutcome::Error;
    }
    Choices = std::move(Reply.Choices);
    return PredictOutcome::Ok;
  case MsgType::Shed:
    Err = Reply.Text;
    return PredictOutcome::Shed;
  case MsgType::Error:
    Err = Reply.Text;
    return PredictOutcome::Error;
  default:
    Err = "unexpected reply to Predict";
    return PredictOutcome::Error;
  }
}

bool DaemonClient::stats(std::string &JsonOut, std::string &Err) {
  Message Reply;
  if (!roundTrip(makeStats(), Reply, Err))
    return false;
  if (Reply.Type != MsgType::StatsReply) {
    Err = Reply.Type == MsgType::Error ? Reply.Text
                                       : "unexpected reply to Stats";
    return false;
  }
  JsonOut = std::move(Reply.Text);
  return true;
}

bool DaemonClient::listTenants(std::vector<std::string> &Names,
                               std::string &Err) {
  Message Reply;
  if (!roundTrip(makeListTenants(), Reply, Err))
    return false;
  if (Reply.Type != MsgType::TenantList) {
    Err = Reply.Type == MsgType::Error ? Reply.Text
                                       : "unexpected reply to ListTenants";
    return false;
  }
  Names = std::move(Reply.Names);
  return true;
}

bool DaemonClient::shutdownServer(std::string &Err) {
  Message Reply;
  if (!roundTrip(makeShutdown(), Reply, Err))
    return false;
  if (Reply.Type != MsgType::Bye) {
    Err = "unexpected reply to Shutdown";
    return false;
  }
  return true;
}

bool DaemonClient::ping(HealthInfo &Out, std::string &Err) {
  Message Reply;
  if (!roundTrip(makePing(), Reply, Err))
    return false;
  if (Reply.Type != MsgType::Health) {
    Err = Reply.Type == MsgType::Error ? Reply.Text
                                       : "unexpected reply to Ping";
    return false;
  }
  Out.Pid = Reply.Pid;
  Out.Sessions = Reply.Sessions;
  Out.Tenants = std::move(Reply.Tenants);
  return true;
}

bool DaemonClient::sendRaw(const void *Data, size_t Size) {
  if (Fd < 0)
    return false;
  const char *P = static_cast<const char *>(Data);
  size_t Sent = 0;
  while (Sent < Size) {
    ssize_t N = ::send(Fd, P + Sent, Size - Sent, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Sent += static_cast<size_t>(N);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// FailoverClient
//===----------------------------------------------------------------------===//

FailoverClient::FailoverClient(std::vector<std::string> Endpoints,
                               std::string TenantName, FailoverOptions Options)
    : Tenant(std::move(TenantName)), Opts(Options), Conn(Options.Client) {
  Replicas.reserve(Endpoints.size());
  for (std::string &E : Endpoints)
    Replicas.push_back(Replica{std::move(E), 0, 0});
}

void FailoverClient::close() {
  Conn.close();
  Attached = SIZE_MAX;
}

void FailoverClient::markDown(size_t I) {
  double Now = monotonicSeconds();
  Replicas[I].DownUntil = Now + Opts.CooldownSeconds;
  Replicas[I].LastFail = Now;
  ++Counters.MarkDowns;
  if (Attached == I)
    close();
}

bool FailoverClient::ensureAttached(size_t I, std::string &Err) {
  if (Attached == I && Conn.connected())
    return true;
  close();
  if (!Conn.connect(Replicas[I].Endpoint, Err))
    return false;
  DaemonClient::AttachInfo Info;
  if (!Conn.attach(Tenant, Info, Err)) {
    Conn.close();
    return false;
  }
  Attached = I;
  Replicas[I].DownUntil = 0;
  ++Counters.Reconnects;
  return true;
}

DaemonClient::PredictOutcome
FailoverClient::predict(const std::vector<uint64_t> &Inputs,
                        std::vector<PredictedChoice> &Choices,
                        std::string &Err) {
  LastFailovers = 0;
  if (Replicas.empty()) {
    Err = "no endpoints";
    return DaemonClient::PredictOutcome::Error;
  }
  std::string LastErr = "no replica reachable";
  unsigned Passes = std::max(1u, Opts.PassesPerCall);
  for (unsigned Pass = 0; Pass < Passes; ++Pass) {
    // Order candidates: the currently-attached replica first (the common
    // no-failure path reuses the warm session), then up replicas round-
    // robin, then cooled-down ones; on the final pass a last-resort probe
    // of the least-recently-failed endpoint beats refusing outright.
    std::vector<size_t> Order;
    Order.reserve(Replicas.size());
    double Now = monotonicSeconds();
    if (Attached != SIZE_MAX && Conn.connected())
      Order.push_back(Attached);
    for (size_t K = 0; K < Replicas.size(); ++K) {
      size_t I = (RoundRobin + K) % Replicas.size();
      if (I != Attached && Replicas[I].DownUntil <= Now)
        Order.push_back(I);
    }
    if (Order.empty() || Pass + 1 == Passes) {
      size_t Oldest = SIZE_MAX;
      for (size_t I = 0; I < Replicas.size(); ++I) {
        bool Listed = false;
        for (size_t O : Order)
          Listed |= O == I;
        if (!Listed && (Oldest == SIZE_MAX ||
                        Replicas[I].LastFail < Replicas[Oldest].LastFail))
          Oldest = I;
      }
      if (Oldest != SIZE_MAX)
        Order.push_back(Oldest);
    }
    for (size_t I : Order) {
      std::string E;
      if (!ensureAttached(I, E)) {
        LastErr = Replicas[I].Endpoint + ": " + E;
        markDown(I);
        ++Counters.Failovers;
        ++LastFailovers;
        continue;
      }
      auto Outcome = Conn.predict(Inputs, Choices, E);
      if (Outcome != DaemonClient::PredictOutcome::Error ||
          !Conn.lastRpcTransportFailed()) {
        // Ok, Shed, and a server's Error *reply* are all answers from a
        // live replica; only transport failures fail over.
        RoundRobin = (I + 1) % Replicas.size();
        LastEndpoint = Replicas[I].Endpoint;
        if (Outcome != DaemonClient::PredictOutcome::Ok)
          Err = E;
        return Outcome;
      }
      LastErr = Replicas[I].Endpoint + ": " + E;
      markDown(I);
      ++Counters.Failovers;
      ++LastFailovers;
    }
  }
  ++Counters.Exhausted;
  Err = "all replicas failed: " + LastErr;
  return DaemonClient::PredictOutcome::Error;
}

} // namespace daemon
} // namespace pbt

//===- daemon/RequestQueue.h - Bounded MPMC queue --------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The admission-control heart of pbt-serve: a bounded multi-producer
/// multi-consumer queue between session threads (producers) and batch
/// workers (consumers). Admission is tryPush -- a full queue refuses the
/// request immediately so the session can answer Shed, and memory use is
/// bounded by construction; the queue never grows past its capacity no
/// matter how many clients pile on. Consumers block on pop() and can
/// gather micro-batches with timed tryPopFor(). close() wakes everyone;
/// items still queued at close() drain normally (pop keeps returning
/// them until empty), so every admitted request is answered even during
/// shutdown.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_DAEMON_REQUESTQUEUE_H
#define PBT_DAEMON_REQUESTQUEUE_H

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace pbt {
namespace daemon {

template <typename T> class BoundedQueue {
public:
  explicit BoundedQueue(size_t Capacity) : Cap(Capacity ? Capacity : 1) {}

  /// Admission: enqueues unless full or closed. Never blocks.
  bool tryPush(T &&Item) {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (Done || Items.size() >= Cap)
        return false;
      Items.push_back(std::move(Item));
    }
    NotEmpty.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed *and*
  /// drained. Returns false only in the latter case.
  bool pop(T &Out) {
    std::unique_lock<std::mutex> Lock(Mutex);
    NotEmpty.wait(Lock, [&] { return Done || !Items.empty(); });
    if (Items.empty())
      return false;
    Out = std::move(Items.front());
    Items.pop_front();
    return true;
  }

  /// Non-blocking pop.
  bool tryPop(T &Out) {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Items.empty())
      return false;
    Out = std::move(Items.front());
    Items.pop_front();
    return true;
  }

  /// Pop with a deadline; the micro-batch gather primitive. Returns
  /// false on timeout or on closed-and-drained.
  template <typename Rep, typename Period>
  bool tryPopFor(T &Out, std::chrono::duration<Rep, Period> Wait) {
    std::unique_lock<std::mutex> Lock(Mutex);
    if (!NotEmpty.wait_for(Lock, Wait,
                           [&] { return Done || !Items.empty(); }))
      return false;
    if (Items.empty())
      return false;
    Out = std::move(Items.front());
    Items.pop_front();
    return true;
  }

  /// Stops admission and wakes all blocked consumers; queued items
  /// remain poppable until drained.
  void close() {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Done = true;
    }
    NotEmpty.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Done;
  }

  size_t depth() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Items.size();
  }

  size_t capacity() const { return Cap; }

private:
  const size_t Cap;
  mutable std::mutex Mutex;
  std::condition_variable NotEmpty;
  std::deque<T> Items;
  bool Done = false;
};

} // namespace daemon
} // namespace pbt

#endif // PBT_DAEMON_REQUESTQUEUE_H

//===- support/ThreadPool.cpp ---------------------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>

using namespace pbt;
using namespace pbt::support;

unsigned ThreadPool::hardwareThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0)
    NumThreads = hardwareThreads();
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

bool ThreadPool::runSomeOf(Job &J) {
  // Claim GrainSize consecutive indices under the lock; execute outside
  // it. Coarse bodies (a full program run) use grain 1, which keeps the
  // scheduling maximally balanced; fine-grained task lists claim chunks
  // so the claim lock stops being the bottleneck.
  size_t First, Last;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (!HasJob || J.NextIndex >= J.End)
      return false;
    First = J.NextIndex;
    Last = std::min(J.End, First + std::max<size_t>(1, J.GrainSize));
    J.NextIndex = Last;
  }
  for (size_t Index = First; Index != Last; ++Index)
    (*J.Body)(Index);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    assert(J.Remaining >= Last - First && "completion underflow");
    J.Remaining -= Last - First;
    if (J.Remaining == 0)
      JobDone.notify_all();
  }
  return true;
}

void ThreadPool::workerLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(Lock, [this] {
        return ShuttingDown || (HasJob && Current.NextIndex < Current.End);
      });
      if (ShuttingDown)
        return;
    }
    while (runSomeOf(Current)) {
    }
  }
}

void ThreadPool::parallelFor(size_t Begin, size_t End,
                             const std::function<void(size_t)> &Body,
                             size_t GrainSize) {
  if (Begin >= End)
    return;
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    assert(!HasJob && "nested/concurrent parallelFor is not supported");
    Current.Begin = Begin;
    Current.End = End;
    Current.Body = &Body;
    Current.NextIndex = Begin;
    Current.Remaining = End - Begin;
    Current.GrainSize = std::max<size_t>(1, GrainSize);
    HasJob = true;
  }
  WorkAvailable.notify_all();
  // The calling thread participates too.
  while (runSomeOf(Current)) {
  }
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    JobDone.wait(Lock, [this] { return Current.Remaining == 0; });
    HasJob = false;
    Current.Body = nullptr;
  }
}

//===- support/FaultInject.h - Armed failpoints for crash testing ----------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny failpoint registry the durable-write paths (store/ModelStore.h)
/// are instrumented with, so the randomized kill-during-publish wall can
/// drive a crash or a corruption into every interesting point of the
/// publish protocol without forking processes or patching the kernel.
///
/// Each FaultPoint names one instrumented site. A point is disarmed by
/// default and free: fire() is one relaxed atomic load on the cold path.
/// Arming attaches a hit index -- the Nth time the point is reached it
/// triggers, earlier hits pass through -- which is how one armed point
/// reaches "the second fsync of this publish" without cooperation from
/// the instrumented code.
///
/// A triggered *crash* point throws FaultCrash. The instrumented code
/// must NOT catch it (beyond cleanup-free propagation): the whole point
/// is that the process state dies mid-protocol and the on-disk state is
/// left exactly as a real SIGKILL would leave it. Harnesses catch
/// FaultCrash at the top, then re-open the store to exercise recovery.
/// Corruption and slow/failing-fsync points do not throw; they degrade
/// the operation in place (flip bytes, fail the fsync, sleep).
///
/// Arming is programmatic (tests, `pbt-bench rollout --faults`) or via
/// the PBT_FAULTS environment variable:
///
///   PBT_FAULTS="torn-write@0,fsync-slow@2"
///
/// meaning "the first torn-write site hit and the third fsync-slow site
/// hit trigger". The registry is process-global and thread-safe; points
/// one-shot by default (they disarm when they trigger) so one armed
/// crash cannot fire twice in a recover-then-retry loop.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_SUPPORT_FAULTINJECT_H
#define PBT_SUPPORT_FAULTINJECT_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace pbt {
namespace support {

/// The failpoint catalog. Every enumerator is one instrumented site in
/// the durable-publish protocol (see store/ModelStore.cpp).
enum class FaultPoint : unsigned {
  /// Image write stops after a prefix, then the process "dies": the
  /// classic torn write a reader must never observe as a model.
  TornWrite = 0,
  /// Image fully written and fsynced, crash before the atomic rename
  /// publishes it (a .tmp orphan is left behind).
  CrashBeforeRename,
  /// Image renamed into place, crash before the manifest records it
  /// (an unreferenced epoch image is left behind).
  CrashBeforeManifest,
  /// Manifest updated, crash before the CURRENT pointer moves -- the
  /// window where roll-forward recovery must finish the promotion.
  CrashBetweenManifestAndCurrent,
  /// The image bytes are silently flipped after the checksum was
  /// recorded: at load the checksum must catch it.
  CorruptChecksum,
  /// fsync reports failure (the store must refuse to publish).
  FsyncFail,
  /// fsync stalls (armed with a small sleep; exercises slow-disk paths).
  FsyncSlow,
};

inline constexpr unsigned kNumFaultPoints = 7;

/// Names matching the enumerators, for PBT_FAULTS and reports.
const char *faultPointName(FaultPoint P);

/// The simulated process death a triggered crash point throws. Derives
/// from std::exception only so accidental catch-all handlers in tests
/// are still detectable by message; production code has no handlers for
/// it by design.
class FaultCrash : public std::runtime_error {
public:
  explicit FaultCrash(FaultPoint P)
      : std::runtime_error(std::string("injected crash at ") +
                           faultPointName(P)),
        Point(P) {}
  FaultPoint point() const { return Point; }

private:
  FaultPoint Point;
};

/// Process-global failpoint registry. All methods are thread-safe.
class FaultInjector {
public:
  static FaultInjector &instance();

  /// Arms \p P to trigger on its \p HitIndex-th future hit (0 = next).
  /// One-shot: the point disarms when it triggers.
  void arm(FaultPoint P, uint64_t HitIndex = 0);

  /// Disarms \p P (pending hit counting is reset).
  void disarm(FaultPoint P);
  /// Disarms everything and zeroes all counters.
  void reset();

  /// Parses a PBT_FAULTS-style spec ("name@hit,name@hit"); returns false
  /// (and arms nothing) on a malformed spec or unknown name.
  bool armFromSpec(const std::string &Spec, std::string &Err);
  /// Reads PBT_FAULTS from the environment; no-op when unset. Malformed
  /// specs are reported on stderr rather than silently ignored.
  void armFromEnv();

  /// The instrumented sites call this. Returns true when the point is
  /// armed and this hit is the armed one (the site then injects its
  /// fault); crash-class sites throw FaultCrash via fireOrCrash below.
  bool fire(FaultPoint P);

  /// fire() for crash-class points: throws FaultCrash when triggered.
  void fireOrCrash(FaultPoint P) {
    if (fire(P))
      throw FaultCrash(P);
  }

  /// Lifetime count of hits (armed or not) per point, for tests.
  uint64_t hits(FaultPoint P) const;
  /// Lifetime count of triggers per point.
  uint64_t triggered(FaultPoint P) const;
  /// True when any point is currently armed.
  bool anyArmed() const;

private:
  FaultInjector() = default;

  struct PointState {
    /// Armed hit index + 1; 0 = disarmed. Relaxed fast-path gate.
    std::atomic<uint64_t> ArmedAt{0};
    std::atomic<uint64_t> Hits{0};
    std::atomic<uint64_t> Triggers{0};
  };
  PointState Points[kNumFaultPoints];
  std::mutex Mutex; // serializes arm/disarm vs fire bookkeeping
};

} // namespace support
} // namespace pbt

#endif // PBT_SUPPORT_FAULTINJECT_H

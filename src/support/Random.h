//===- support/Random.h - Deterministic random number generation ---------===//
//
// Part of the pbtuner project: reproduction of "Autotuning Algorithmic
// Choice for Input Sensitivity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic random number generator (xoshiro256**,
/// seeded through SplitMix64). Every stochastic component of the system
/// (input generators, K-means initialisation, the evolutionary autotuner,
/// subset sampling for Figure 8) draws from an explicitly seeded Rng so
/// that runs are reproducible bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_SUPPORT_RANDOM_H
#define PBT_SUPPORT_RANDOM_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace pbt {
namespace support {

/// Deterministic pseudo random number generator.
///
/// Implements xoshiro256** 1.0 (Blackman & Vigna). State is seeded from a
/// single 64-bit value through SplitMix64, so two Rng instances constructed
/// with the same seed produce identical streams on every platform.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit value.
  uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [Lo, Hi).
  double uniform(double Lo, double Hi);

  /// Uniform integer in the inclusive range [Lo, Hi].
  int64_t range(int64_t Lo, int64_t Hi);

  /// Uniform index in [0, N). N must be positive.
  size_t index(size_t N);

  /// Standard normal deviate scaled to \p Mean and \p StdDev (Box-Muller).
  double gaussian(double Mean = 0.0, double StdDev = 1.0);

  /// Exponential deviate with the given rate parameter.
  double exponential(double Rate = 1.0);

  /// Returns true with probability \p P.
  bool chance(double P);

  /// Fisher-Yates shuffle.
  template <typename T> void shuffle(std::vector<T> &V) {
    if (V.size() < 2)
      return;
    for (size_t I = V.size() - 1; I > 0; --I) {
      size_t J = index(I + 1);
      std::swap(V[I], V[J]);
    }
  }

  /// Pick a uniformly random element of a non-empty vector.
  template <typename T> const T &pick(const std::vector<T> &V) {
    assert(!V.empty() && "cannot pick from an empty vector");
    return V[index(V.size())];
  }

  /// Sample \p K distinct indices from [0, N) in random order.
  std::vector<size_t> sampleWithoutReplacement(size_t N, size_t K);

  /// Derive an independently seeded generator. Useful to hand each parallel
  /// worker or pipeline stage its own stream while keeping determinism.
  Rng split();

private:
  uint64_t State[4];
  double SpareGaussian = 0.0;
  bool HasSpareGaussian = false;
};

} // namespace support
} // namespace pbt

#endif // PBT_SUPPORT_RANDOM_H

//===- support/Table.h - Aligned text tables and CSV output --------------===//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Plain-text table formatting used by the benchmark harnesses to print the
/// paper's tables and figure series, plus a small CSV writer so results can
/// be plotted externally.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_SUPPORT_TABLE_H
#define PBT_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace pbt {
namespace support {

/// Builds a monospace-aligned table. Columns are sized to the widest cell.
class TextTable {
public:
  void setHeader(std::vector<std::string> Names);
  void addRow(std::vector<std::string> Cells);
  /// Renders the table, one trailing newline included.
  std::string format() const;

  size_t numRows() const { return Rows.size(); }

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

/// Formats a double with fixed \p Precision decimal places.
std::string formatDouble(double Value, int Precision = 2);

/// Formats a ratio as the paper prints speedups, e.g. "2.95x".
std::string formatSpeedup(double Value);

/// Formats a fraction in [0,1] as a percentage, e.g. "54.56%".
std::string formatPercent(double Fraction);

/// Accumulates rows and writes an RFC-4180-ish CSV file. Cells containing
/// commas or quotes are quoted.
class CsvWriter {
public:
  void setHeader(std::vector<std::string> Names);
  void addRow(std::vector<std::string> Cells);
  /// Returns true on success.
  bool writeFile(const std::string &Path) const;
  std::string str() const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace support
} // namespace pbt

#endif // PBT_SUPPORT_TABLE_H

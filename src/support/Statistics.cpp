//===- support/Statistics.cpp ---------------------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace pbt;
using namespace pbt::support;

double support::mean(const std::vector<double> &V) {
  if (V.empty())
    return 0.0;
  double Sum = 0.0;
  for (double X : V)
    Sum += X;
  return Sum / static_cast<double>(V.size());
}

double support::variance(const std::vector<double> &V) {
  if (V.size() < 2)
    return 0.0;
  double M = mean(V);
  double Sum = 0.0;
  for (double X : V)
    Sum += (X - M) * (X - M);
  return Sum / static_cast<double>(V.size());
}

double support::stddev(const std::vector<double> &V) {
  return std::sqrt(variance(V));
}

double support::geomean(const std::vector<double> &V) {
  if (V.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double X : V) {
    assert(X > 0.0 && "geomean requires positive values");
    LogSum += std::log(X);
  }
  return std::exp(LogSum / static_cast<double>(V.size()));
}

double support::quantile(std::vector<double> V, double Q) {
  assert(Q >= 0.0 && Q <= 1.0 && "quantile must be in [0,1]");
  if (V.empty())
    return 0.0;
  std::sort(V.begin(), V.end());
  if (V.size() == 1)
    return V[0];
  double Pos = Q * static_cast<double>(V.size() - 1);
  size_t Lo = static_cast<size_t>(Pos);
  size_t Hi = std::min(Lo + 1, V.size() - 1);
  double Frac = Pos - static_cast<double>(Lo);
  return V[Lo] * (1.0 - Frac) + V[Hi] * Frac;
}

double support::median(const std::vector<double> &V) {
  return quantile(V, 0.5);
}

double support::minOf(const std::vector<double> &V) {
  assert(!V.empty() && "minOf of empty vector");
  return *std::min_element(V.begin(), V.end());
}

double support::maxOf(const std::vector<double> &V) {
  assert(!V.empty() && "maxOf of empty vector");
  return *std::max_element(V.begin(), V.end());
}

Summary Summary::of(const std::vector<double> &V) {
  Summary S;
  S.Count = V.size();
  if (V.empty())
    return S;
  S.Mean = mean(V);
  S.StdDev = stddev(V);
  S.Min = minOf(V);
  S.Q1 = quantile(V, 0.25);
  S.Median = median(V);
  S.Q3 = quantile(V, 0.75);
  S.Max = maxOf(V);
  return S;
}

//===- support/SimdDispatch.cpp ---------------------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "support/SimdDispatch.h"

#include <cstdlib>
#include <cstring>

using namespace pbt;
using namespace pbt::support;

const char *support::simdTierName(SimdTier Tier) {
  switch (Tier) {
  case SimdTier::Scalar:
    return "scalar";
  case SimdTier::Sse42:
    return "sse42";
  case SimdTier::Avx2:
    return "avx2";
  }
  return "scalar";
}

bool support::parseSimdTier(const char *Text, SimdTier &Out) {
  if (!Text)
    return false;
  if (std::strcmp(Text, "scalar") == 0) {
    Out = SimdTier::Scalar;
    return true;
  }
  if (std::strcmp(Text, "sse42") == 0) {
    Out = SimdTier::Sse42;
    return true;
  }
  if (std::strcmp(Text, "avx2") == 0) {
    Out = SimdTier::Avx2;
    return true;
  }
  return false;
}

SimdTier support::detectSimdTier() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  if (__builtin_cpu_supports("avx2"))
    return SimdTier::Avx2;
  if (__builtin_cpu_supports("sse4.2"))
    return SimdTier::Sse42;
#endif
  return SimdTier::Scalar;
}

SimdTier support::resolveSimdTier(const char *EnvValue, SimdTier Detected) {
  SimdTier Requested;
  if (!parseSimdTier(EnvValue, Requested))
    return Detected;
  return clampSimdTier(Requested, Detected);
}

SimdTier support::activeSimdTier() {
  static const SimdTier Active =
      resolveSimdTier(std::getenv("PBT_SIMD"), detectSimdTier());
  return Active;
}

std::vector<SimdTier> support::availableSimdTiers() {
  std::vector<SimdTier> Tiers = {SimdTier::Scalar};
  SimdTier Best = detectSimdTier();
  if (Best >= SimdTier::Sse42)
    Tiers.push_back(SimdTier::Sse42);
  if (Best >= SimdTier::Avx2)
    Tiers.push_back(SimdTier::Avx2);
  return Tiers;
}

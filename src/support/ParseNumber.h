//===- support/ParseNumber.h - Checked numeric CLI parsing ----------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strict string-to-number parsing for command-line values. The libc
/// conveniences the CLIs used before (std::atoi, std::atof, strtoull with
/// a discarded end pointer) accept garbage silently: "abc" becomes 0,
/// "1e" half-parses to 1, "-3" wraps to a huge unsigned, and overflow
/// saturates without a word. Every parser here consumes the ENTIRE
/// string, checks the range of the destination type, and returns false
/// on anything else -- so `--threads=abc` is a loud error, never a
/// silent zero-thread run. Shared by `pbt-bench` and the `pbt-serve`
/// daemon CLI.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_SUPPORT_PARSENUMBER_H
#define PBT_SUPPORT_PARSENUMBER_H

#include <cstdint>
#include <string>

namespace pbt {
namespace support {

/// Parses a whole base-10 signed integer; rejects empty strings, trailing
/// junk, and values outside [Min, Max]. \p Out is untouched on failure.
bool parseInt64(const std::string &Text, int64_t &Out,
                int64_t Min = INT64_MIN, int64_t Max = INT64_MAX);

/// Parses a whole base-10 unsigned integer; rejects empty strings,
/// trailing junk, any leading '-' (strtoull would silently wrap it), and
/// values above \p Max. \p Out is untouched on failure.
bool parseUint64(const std::string &Text, uint64_t &Out,
                 uint64_t Max = UINT64_MAX);

/// parseUint64 narrowed to unsigned.
bool parseUnsigned(const std::string &Text, unsigned &Out,
                   unsigned Max = ~0u);

/// Parses a whole finite double; rejects empty strings, trailing junk
/// ("1e", "3.5x"), infinities and NaNs. \p Out is untouched on failure.
bool parseDouble(const std::string &Text, double &Out);

} // namespace support
} // namespace pbt

#endif // PBT_SUPPORT_PARSENUMBER_H

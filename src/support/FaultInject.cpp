//===- support/FaultInject.cpp - Armed failpoints for crash testing --------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInject.h"

#include <cstdio>
#include <cstdlib>

namespace pbt {
namespace support {

const char *faultPointName(FaultPoint P) {
  switch (P) {
  case FaultPoint::TornWrite:
    return "torn-write";
  case FaultPoint::CrashBeforeRename:
    return "crash-before-rename";
  case FaultPoint::CrashBeforeManifest:
    return "crash-before-manifest";
  case FaultPoint::CrashBetweenManifestAndCurrent:
    return "crash-between-manifest-and-current";
  case FaultPoint::CorruptChecksum:
    return "corrupt-checksum";
  case FaultPoint::FsyncFail:
    return "fsync-fail";
  case FaultPoint::FsyncSlow:
    return "fsync-slow";
  }
  return "unknown";
}

FaultInjector &FaultInjector::instance() {
  static FaultInjector Inj;
  return Inj;
}

void FaultInjector::arm(FaultPoint P, uint64_t HitIndex) {
  std::lock_guard<std::mutex> Lock(Mutex);
  PointState &S = Points[static_cast<unsigned>(P)];
  // Armed index is relative to hits from now on: future hit number
  // Hits + HitIndex triggers. Stored +1 so 0 means disarmed.
  S.ArmedAt.store(S.Hits.load(std::memory_order_relaxed) + HitIndex + 1,
                  std::memory_order_relaxed);
}

void FaultInjector::disarm(FaultPoint P) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Points[static_cast<unsigned>(P)].ArmedAt.store(0, std::memory_order_relaxed);
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (PointState &S : Points) {
    S.ArmedAt.store(0, std::memory_order_relaxed);
    S.Hits.store(0, std::memory_order_relaxed);
    S.Triggers.store(0, std::memory_order_relaxed);
  }
}

bool FaultInjector::armFromSpec(const std::string &Spec, std::string &Err) {
  struct Pending {
    FaultPoint P;
    uint64_t Hit;
  };
  std::vector<Pending> Parsed;
  size_t Start = 0;
  while (Start <= Spec.size()) {
    size_t Comma = Spec.find(',', Start);
    if (Comma == std::string::npos)
      Comma = Spec.size();
    std::string Entry = Spec.substr(Start, Comma - Start);
    if (!Entry.empty()) {
      size_t At = Entry.find('@');
      std::string Name = Entry.substr(0, At);
      uint64_t Hit = 0;
      if (At != std::string::npos) {
        std::string HitText = Entry.substr(At + 1);
        if (HitText.empty()) {
          Err = "empty hit index in '" + Entry + "'";
          return false;
        }
        for (char C : HitText) {
          if (C < '0' || C > '9') {
            Err = "bad hit index in '" + Entry + "'";
            return false;
          }
          Hit = Hit * 10 + static_cast<uint64_t>(C - '0');
        }
      }
      bool Found = false;
      for (unsigned I = 0; I != kNumFaultPoints; ++I) {
        if (Name == faultPointName(static_cast<FaultPoint>(I))) {
          Parsed.push_back({static_cast<FaultPoint>(I), Hit});
          Found = true;
          break;
        }
      }
      if (!Found) {
        Err = "unknown fault point '" + Name + "'";
        return false;
      }
    }
    if (Comma == Spec.size())
      break;
    Start = Comma + 1;
  }
  for (const Pending &P : Parsed)
    arm(P.P, P.Hit);
  return true;
}

void FaultInjector::armFromEnv() {
  const char *Spec = std::getenv("PBT_FAULTS");
  if (!Spec || !*Spec)
    return;
  std::string Err;
  if (!armFromSpec(Spec, Err))
    std::fprintf(stderr, "PBT_FAULTS: %s (nothing armed)\n", Err.c_str());
}

bool FaultInjector::fire(FaultPoint P) {
  PointState &S = Points[static_cast<unsigned>(P)];
  uint64_t Hit = S.Hits.fetch_add(1, std::memory_order_relaxed) + 1;
  uint64_t Armed = S.ArmedAt.load(std::memory_order_relaxed);
  if (Armed == 0 || Hit != Armed)
    return false;
  // One-shot: disarm before injecting so a recover-and-retry loop does
  // not re-crash at the same site forever.
  std::lock_guard<std::mutex> Lock(Mutex);
  if (S.ArmedAt.load(std::memory_order_relaxed) != Armed)
    return false; // raced with disarm/re-arm
  S.ArmedAt.store(0, std::memory_order_relaxed);
  S.Triggers.fetch_add(1, std::memory_order_relaxed);
  return true;
}

uint64_t FaultInjector::hits(FaultPoint P) const {
  return Points[static_cast<unsigned>(P)].Hits.load(std::memory_order_relaxed);
}

uint64_t FaultInjector::triggered(FaultPoint P) const {
  return Points[static_cast<unsigned>(P)].Triggers.load(
      std::memory_order_relaxed);
}

bool FaultInjector::anyArmed() const {
  for (const PointState &S : Points)
    if (S.ArmedAt.load(std::memory_order_relaxed) != 0)
      return true;
  return false;
}

} // namespace support
} // namespace pbt

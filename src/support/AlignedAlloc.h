//===- support/AlignedAlloc.h - Over-aligned std::vector storage ----------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal C++17 allocator that over-aligns every allocation. The
/// compiled serving substrate keeps its arenas and lane-major scratch in
/// std::vector<T, AlignedAllocator<T, 64>> so SIMD loads and gathers
/// over them never split a cache line: one lane (8 doubles) is exactly
/// one 64-byte line, and every lane-major row starts on a line boundary.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_SUPPORT_ALIGNEDALLOC_H
#define PBT_SUPPORT_ALIGNEDALLOC_H

#include <cstddef>
#include <new>
#include <vector>

namespace pbt {
namespace support {

template <typename T, std::size_t Alignment> struct AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "alignment below the type's natural alignment");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment> &) noexcept {}

  template <typename U> struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T *allocate(std::size_t N) {
    return static_cast<T *>(
        ::operator new(N * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T *P, std::size_t) noexcept {
    ::operator delete(P, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator &,
                         const AlignedAllocator &) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator &,
                         const AlignedAllocator &) noexcept {
    return false;
  }
};

/// The one alignment the serving substrate uses: a full cache line.
constexpr std::size_t kCacheLineBytes = 64;

template <typename T>
using CacheAlignedVector = std::vector<T, AlignedAllocator<T, kCacheLineBytes>>;

} // namespace support
} // namespace pbt

#endif // PBT_SUPPORT_ALIGNEDALLOC_H

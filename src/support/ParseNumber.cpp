//===- support/ParseNumber.cpp ----------------------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "support/ParseNumber.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>

using namespace pbt;
using namespace pbt::support;

bool support::parseInt64(const std::string &Text, int64_t &Out, int64_t Min,
                         int64_t Max) {
  if (Text.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  long long V = std::strtoll(Text.c_str(), &End, 10);
  if (errno == ERANGE || End != Text.c_str() + Text.size())
    return false;
  if (V < Min || V > Max)
    return false;
  Out = static_cast<int64_t>(V);
  return true;
}

bool support::parseUint64(const std::string &Text, uint64_t &Out,
                          uint64_t Max) {
  if (Text.empty())
    return false;
  // strtoull "helpfully" negates "-3" into a huge unsigned; reject any
  // sign character before it gets the chance ("+3" stays fine).
  if (Text[0] == '-')
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long V = std::strtoull(Text.c_str(), &End, 10);
  if (errno == ERANGE || End != Text.c_str() + Text.size())
    return false;
  if (V > Max)
    return false;
  Out = static_cast<uint64_t>(V);
  return true;
}

bool support::parseUnsigned(const std::string &Text, unsigned &Out,
                            unsigned Max) {
  uint64_t Wide = 0;
  if (!parseUint64(Text, Wide, Max))
    return false;
  Out = static_cast<unsigned>(Wide);
  return true;
}

bool support::parseDouble(const std::string &Text, double &Out) {
  if (Text.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  double V = std::strtod(Text.c_str(), &End);
  if (errno == ERANGE || End != Text.c_str() + Text.size())
    return false;
  if (!std::isfinite(V))
    return false;
  Out = V;
  return true;
}

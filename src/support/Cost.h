//===- support/Cost.h - Deterministic work accounting ---------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deterministic cost model that stands in for wall-clock time.
///
/// The paper measures wall-clock execution time on a 32-core Xeon. The
/// learning pipeline, however, only consumes *relative* performance: which
/// landmark configuration is fastest on which input, and how large the gaps
/// are. Every algorithm kernel in this repository counts its abstract work
/// (comparisons, element moves, floating point operations, stencil point
/// updates) into a CostCounter, producing a machine-independent, perfectly
/// reproducible "time". Wall-clock timing remains available through
/// WallTimer for the benchmark harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_SUPPORT_COST_H
#define PBT_SUPPORT_COST_H

#include <cassert>
#include <chrono>
#include <cstdint>

namespace pbt {
namespace support {

/// Accumulates abstract work units for one measured activity (a program run
/// or a feature extraction).
///
/// The unit weights are deliberately simple -- one unit per elementary
/// operation -- because the pipeline only needs ordering and ratios to be
/// realistic, not absolute nanoseconds. Categories are tracked separately
/// so tests can assert on the *kind* of work an algorithm performs.
class CostCounter {
public:
  void addCompares(double N) { Compares += N; }
  void addMoves(double N) { Moves += N; }
  void addFlops(double N) { Flops += N; }
  void addStencil(double N) { Stencil += N; }
  /// Uncategorised work (e.g. hashing, bookkeeping proportional to N).
  void addOther(double N) { Other += N; }

  double compares() const { return Compares; }
  double moves() const { return Moves; }
  double flops() const { return Flops; }
  double stencil() const { return Stencil; }
  double other() const { return Other; }

  /// Total work units: the stand-in for execution time.
  double units() const { return Compares + Moves + Flops + Stencil + Other; }

  void reset() { Compares = Moves = Flops = Stencil = Other = 0.0; }

  /// Fold another counter into this one.
  void merge(const CostCounter &C) {
    Compares += C.Compares;
    Moves += C.Moves;
    Flops += C.Flops;
    Stencil += C.Stencil;
    Other += C.Other;
  }

private:
  double Compares = 0.0;
  double Moves = 0.0;
  double Flops = 0.0;
  double Stencil = 0.0;
  double Other = 0.0;
};

/// Monotonic wall-clock stopwatch for the benchmark harnesses.
class WallTimer {
public:
  WallTimer() : Start(Clock::now()) {}

  void restart() { Start = Clock::now(); }

  double elapsedSeconds() const {
    auto D = Clock::now() - Start;
    return std::chrono::duration<double>(D).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace support
} // namespace pbt

#endif // PBT_SUPPORT_COST_H
